//! On-the-fly twiddling trade-off: factorization base vs table size vs
//! extra modular multiplications (paper §VII — base-1024 is the sweet
//! spot).
//!
//! Run with: `cargo run --release --example ot_tradeoff [log_n]`

use ntt_warp::core::{ot, NttTable, OtTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let log_n: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(17);
    if !(2..=26).contains(&log_n) {
        return Err(format!("log_n must be in 2..=26, got {log_n}").into());
    }
    let n = 1usize << log_n;

    println!("OT factorization sweep for N = 2^{log_n}");
    println!(
        "full twiddle table (values + Shoup companions): {} entries, {:.2} MB per prime\n",
        n,
        (n * 16) as f64 / (1 << 20) as f64
    );

    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>16}",
        "base", "entries", "table KB", "modmuls", "vs full table"
    );
    for cost in ot::base_sweep(n, &[2, 4, 8, 16, 64, 256, 1024, 4096, 16384]) {
        println!(
            "{:<8} {:>10} {:>12.1} {:>12} {:>15.1}x",
            cost.base,
            cost.entries,
            cost.table_bytes as f64 / 1024.0,
            cost.modmuls,
            (n * 16) as f64 / cost.table_bytes as f64
        );
    }

    // Functional demonstration at a testable size: OT produces the exact
    // same products as the precomputed table.
    let table = NttTable::new_with_bits(1 << 10, 60)?;
    let ot_table = OtTable::new(&table, 32);
    let x = 0xDEAD_BEEF % table.modulus();
    for i in [1usize, 17, 512, 1023] {
        let direct = table.forward(i).mul(x);
        let otv = ot_table.apply(x, i);
        assert_eq!(direct, otv);
    }
    println!(
        "\nfunctional check at N = 2^10, base 32: OT products match the table exactly \
         ({} entries instead of {}, {} modmuls per twiddle)",
        ot_table.entry_count(),
        1 << 10,
        ot_table.levels()
    );

    println!(
        "\nthe paper picks base-1024: for N = 2^17 that is {} + {} = {} entries \
         (~{:.0} KB) instead of 131072 (2 MB), at one extra Shoup modmul per butterfly \
         in the OT stages.",
        1024,
        n / 1024,
        1024 + n / 1024,
        ((1024 + n / 1024) * 16) as f64 / 1024.0
    );
    Ok(())
}
