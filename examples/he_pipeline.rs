//! The paper's motivating workload: homomorphic multiplication, with a
//! breakdown of how much of it is NTT/iNTT time.
//!
//! Run with: `cargo run --release --example he_pipeline`

use ntt_warp::he::{sampling, HeContext, HeLiteParams};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = HeLiteParams::demo();
    println!("he-lite parameters: {params}");
    let ctx = HeContext::new(params)?;
    let mut rng = sampling::seeded_rng(2026);

    let t0 = Instant::now();
    let keys = ctx.keygen(&mut rng);
    println!("keygen: {:?}", t0.elapsed());

    // Encrypt two small polynomials (coefficient encoding).
    let x = ctx.encode(&[1.5, -2.0, 0.25]);
    let y = ctx.encode(&[4.0, 1.0]);
    let t0 = Instant::now();
    let cx = ctx.encrypt(&x, &keys.public, &mut rng);
    let cy = ctx.encrypt(&y, &keys.public, &mut rng);
    println!("2 encryptions: {:?}", t0.elapsed());

    // Homomorphic ops.
    let t0 = Instant::now();
    let sum = ctx.add(&cx, &cy);
    println!("homomorphic add: {:?}", t0.elapsed());

    let t0 = Instant::now();
    let prod = ctx.multiply(&cx, &cy, &keys.relin);
    let mult_time = t0.elapsed();
    println!(
        "homomorphic multiply (tensor + relinearize + rescale): {:?}",
        mult_time
    );

    // Decrypt and check: (1.5 - 2x + 0.25x^2)(4 + x) =
    //   6 + (1.5 - 8)x + (1 - 2)x^2 + 0.25x^3 = 6 - 6.5x - x^2 + 0.25x^3.
    let s = ctx.decode(&ctx.decrypt(&sum, &keys.secret));
    let p = ctx.decode(&ctx.decrypt(&prod, &keys.secret));
    println!("\ndec(cx + cy)  = [{:.4}, {:.4}, {:.4}]", s[0], s[1], s[2]);
    println!(
        "dec(cx * cy)  = [{:.4}, {:.4}, {:.4}, {:.4}]  (exact: [6, -6.5, -1, 0.25])",
        p[0], p[1], p[2], p[3]
    );
    assert!((p[0] - 6.0).abs() < 1e-2);
    assert!((p[1] + 6.5).abs() < 1e-2);

    // How much of a multiplication is NTT? Count transforms:
    // tensor: inputs are already in evaluation form (0 transforms);
    // relinearize: level*digits digit polynomials, each NTT'd over `level`
    // primes, plus the e2 inverse transform; rescale: 2 polys iNTT+NTT.
    let level = cx.level();
    let digits = params.gadget_digits();
    let ntts_relin = level * digits * level + level; // digit NTTs + e2 iNTT rows
    let ntts_rescale = 2 * (level + level - 1); // per poly: iNTT at L, NTT at L-1
    let n = params.n();
    println!(
        "\nNTT workload per multiplication at N = {n}: {} N-point transforms \
         (relinearization {} + rescale {})",
        ntts_relin + ntts_rescale,
        ntts_relin,
        ntts_rescale
    );

    // Direct measurement of the NTT share: time `level` forward transforms
    // of a fresh polynomial vs the full multiply.
    let ring = ctx.ring();
    let mut poly = sampling::uniform_poly(ring, &mut rng);
    let t0 = Instant::now();
    poly.to_evaluation(ring);
    let one_fwd = t0.elapsed();
    let est_ntt = one_fwd / level as u32 * (ntts_relin + ntts_rescale) as u32;
    println!(
        "estimated NTT time inside multiply: {:?} of {:?} ({:.0}%) — the paper's \
         motivation (34-50% of ciphertext multiplication)",
        est_ntt,
        mult_time,
        100.0 * est_ntt.as_secs_f64() / mult_time.as_secs_f64()
    );
    Ok(())
}
