//! Quickstart: forward/inverse NTT and negacyclic polynomial products.
//!
//! Run with: `cargo run --release --example quickstart`

use ntt_warp::core::{ct, NegacyclicRing, NttTable, Polynomial};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A raw transform round-trip -----------------------------------
    let n = 1 << 12;
    let table = NttTable::new_with_bits(n, 60)?;
    println!(
        "NTT over Z_p[X]/(X^{} + 1), p = {} ({} bits)",
        n,
        table.modulus(),
        64 - table.modulus().leading_zeros()
    );

    let input: Vec<u64> = (0..n as u64).map(|i| i * i % table.modulus()).collect();
    let mut data = input.clone();
    ct::ntt(&mut data, &table); // natural order -> bit-reversed evaluations
    ct::intt(&mut data, &table); // and back
    assert_eq!(data, input);
    println!("forward + inverse round-trip: exact");

    // --- 2. Polynomial multiplication via the ring API --------------------
    let ring = NegacyclicRing::new_with_bits(8, 60)?;
    let a = Polynomial::from_coeffs(vec![1, 2, 3], 8); // 1 + 2x + 3x^2
    let b = Polynomial::from_coeffs(vec![5, 0, 7], 8); // 5 + 7x^2
    let c = ring.multiply(&a, &b);
    println!("(1 + 2x + 3x^2)(5 + 7x^2) = {:?}", &c.coeffs()[..5]);
    assert_eq!(&c.coeffs()[..5], &[5, 10, 22, 14, 21]);

    // The ring is negacyclic: X^N = -1.
    let x7 = Polynomial::monomial(7, 1, 8);
    let wrap = ring.multiply(&x7, &x7); // x^14 = -x^6
    assert_eq!(wrap.coeffs()[6], ring.modulus() - 1);
    println!("x^7 * x^7 = -x^6 (mod X^8 + 1): verified");

    // --- 3. The table sizes that drive the paper's analysis --------------
    let params = ntt_warp::core::HeParams::paper_default(17);
    println!(
        "\npaper parameters {params}:\n  polynomial: {:.1} MB, twiddle tables: {:.1} MB \
         (vs 128 KB shared memory per SM)",
        params.polynomial_bytes() as f64 / (1 << 20) as f64,
        params.twiddle_table_bytes() as f64 / (1 << 20) as f64,
    );
    Ok(())
}
