//! Replay the paper's design-space exploration on the simulated GPU.
//!
//! Sweeps the implementation space at a configurable size and prints a
//! ranked table: radix-2 baseline, register-based high radix, and the
//! two-kernel SMEM implementation with its knobs (coalescing, twiddle
//! preload, per-thread size, on-the-fly twiddling).
//!
//! Run with: `cargo run --release --example design_space [log_n] [np]`

use ntt_warp::gpu::radix2::ModMul;
use ntt_warp::gpu::smem::SmemConfig;
use ntt_warp::gpu::{batch::DeviceBatch, high_radix, radix2, smem};
use ntt_warp::sim::{Gpu, GpuConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let log_n: u32 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(14);
    let np: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(8);
    println!("design space at N = 2^{log_n}, np = {np} (simulated Titan V)\n");

    let mut results: Vec<(String, f64, f64, bool)> = Vec::new();

    // Baseline and high-radix variants.
    for r in [0usize, 4, 8, 16, 32, 64] {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let batch = DeviceBatch::sequential(&mut gpu, log_n, np, 60)?;
        let rep = if r == 0 {
            radix2::run(&mut gpu, &batch, ModMul::Shoup)
        } else {
            high_radix::run(&mut gpu, &batch, r)
        };
        let ok = rep.verify(&gpu, &batch);
        results.push((rep.name.clone(), rep.total_us(), rep.dram_mb(&gpu), ok));
    }

    // SMEM variants.
    let splits = SmemConfig::paper_splits(log_n);
    for &n1 in &splits {
        for t in [2usize, 4, 8] {
            for ot in [0u32, 2] {
                let mut gpu = Gpu::new(GpuConfig::titan_v());
                let batch = DeviceBatch::sequential(&mut gpu, log_n, np, 60)?;
                let cfg = SmemConfig::new(n1).per_thread(t).ot_stages(ot);
                let rep = smem::run(&mut gpu, &batch, &cfg);
                let ok = rep.verify(&gpu, &batch);
                results.push((
                    format!("smem {}", cfg.label(batch.n())),
                    rep.total_us(),
                    rep.dram_mb(&gpu),
                    ok,
                ));
            }
        }
    }

    results.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!(
        "{:<4} {:<34} {:>10} {:>10} {:>9}",
        "#", "implementation", "time (us)", "DRAM MB", "verified"
    );
    for (i, (name, us, mb, ok)) in results.iter().enumerate() {
        println!(
            "{:<4} {:<34} {:>10.1} {:>10.1} {:>9}",
            i + 1,
            name,
            us,
            mb,
            if *ok { "yes" } else { "NO" }
        );
    }
    let best = &results[0];
    let baseline = results
        .iter()
        .find(|r| r.0.contains("radix-2"))
        .expect("baseline present");
    println!(
        "\nbest ({}) is {:.1}x faster than the radix-2 baseline — the paper reports 4.2x \
         on average at (2^17, 21)",
        best.0,
        baseline.1 / best.1
    );
    assert!(results.iter().all(|r| r.3), "all variants must verify");
    Ok(())
}
