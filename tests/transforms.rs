//! Cross-crate transform properties (property-based).
//!
//! These tie `ntt-math` and `ntt-core` together: every algorithm variant
//! must agree with the naive O(N²) oracle and with each other on random
//! inputs, moduli, and shapes.

use ntt_warp::core::{bitrev, ct, naive, radix, stockham, HierConfig, HierPlan, NttTable, OtTable};
use proptest::prelude::*;

/// Random (log_n, prime_bits) pairs small enough for quadratic oracles.
fn table_params() -> impl Strategy<Value = (u32, u32)> {
    (
        2u32..=9,
        prop_oneof![Just(40u32), Just(50), Just(59), Just(60)],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ntt_intt_roundtrip((log_n, bits) in table_params(), seed in any::<u64>()) {
        let n = 1usize << log_n;
        let table = NttTable::new_with_bits(n, bits).unwrap();
        let p = table.modulus();
        let a: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(seed | 1).wrapping_add(seed >> 7) % p)
            .collect();
        let mut b = a.clone();
        ct::ntt(&mut b, &table);
        ct::intt(&mut b, &table);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn lazy_and_strict_agree((log_n, bits) in (2u32..=9, Just(59u32)), seed in any::<u64>()) {
        let n = 1usize << log_n;
        let table = NttTable::new_with_bits(n, bits).unwrap();
        let p = table.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(seed | 3) % p).collect();
        let mut strict = a.clone();
        ct::ntt(&mut strict, &table);
        let mut lazy = a;
        ct::ntt_lazy(&mut lazy, &table);
        ct::reduce_from_lazy(&mut lazy, p);
        prop_assert_eq!(strict, lazy);
    }

    #[test]
    fn stockham_equals_ct_up_to_bitrev((log_n, bits) in table_params(), seed in any::<u64>()) {
        let n = 1usize << log_n;
        let table = NttTable::new_with_bits(n, bits).unwrap();
        let p = table.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| (i ^ seed) % p).collect();
        let sorted = stockham::stockham_ntt(&a, &table);
        let mut ct_out = a;
        ct::ntt(&mut ct_out, &table);
        prop_assert_eq!(sorted, bitrev::bit_reversed(&ct_out));
    }

    #[test]
    fn high_radix_equals_ct(log_n in 3u32..=9, log_r in 1u32..=5, seed in any::<u64>()) {
        let n = 1usize << log_n;
        let r = 1usize << log_r.min(log_n);
        let table = NttTable::new_with_bits(n, 60).unwrap();
        let p = table.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(seed | 1) % p).collect();
        let mut blocked = a.clone();
        radix::high_radix_ntt(&mut blocked, &table, r);
        let mut reference = a;
        ct::ntt(&mut reference, &table);
        prop_assert_eq!(blocked, reference);
    }

    #[test]
    fn two_kernel_split_equals_ct(log_n in 2u32..=10, split in 1u32..=9, seed in any::<u64>()) {
        let n = 1usize << log_n;
        let n1 = 1usize << split.min(log_n - 1);
        let table = NttTable::new_with_bits(n, 59).unwrap();
        let p = table.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| (i.rotate_left(7) ^ seed) % p).collect();
        let mut two = a.clone();
        radix::two_kernel_ntt(&mut two, &table, n1);
        let mut reference = a;
        ct::ntt(&mut reference, &table);
        prop_assert_eq!(two, reference);
    }

    #[test]
    fn pointwise_product_is_negacyclic_convolution(
        log_n in 2u32..=6,
        seed in any::<u64>()
    ) {
        let n = 1usize << log_n;
        let table = NttTable::new_with_bits(n, 50).unwrap();
        let p = table.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(seed | 1) % p).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| i.wrapping_add(seed >> 3) % p).collect();
        let mut na = a.clone();
        let mut nb = b.clone();
        ct::ntt(&mut na, &table);
        ct::ntt(&mut nb, &table);
        let mut prod = ct::pointwise(&na, &nb, p);
        ct::intt(&mut prod, &table);
        prop_assert_eq!(prod, naive::negacyclic_convolution(&a, &b, p));
    }

    #[test]
    fn ot_matches_table_for_every_index(
        log_n in 3u32..=8,
        log_base in 1u32..=6,
        x in any::<u64>()
    ) {
        let n = 1usize << log_n;
        let table = NttTable::new_with_bits(n, 60).unwrap();
        let ot = OtTable::new(&table, 1 << log_base);
        let x = x % table.modulus();
        for i in 0..n {
            prop_assert_eq!(ot.apply(x, i), table.forward(i).mul(x));
        }
    }

    #[test]
    fn ntt_diagonalizes_monomial_multiplication(log_n in 2u32..=6, k in 0usize..16) {
        // Multiplying by X^k in the ring = pointwise by NTT(X^k).
        let n = 1usize << log_n;
        let k = k % n;
        let table = NttTable::new_with_bits(n, 59).unwrap();
        let p = table.modulus();
        let a: Vec<u64> = (1..=n as u64).collect();
        let mut xk = vec![0u64; n];
        xk[k] = 1;
        let expected = naive::negacyclic_convolution(&a, &xk, p);
        let (mut na, mut nxk) = (a, xk);
        ct::ntt(&mut na, &table);
        ct::ntt(&mut nxk, &table);
        let mut prod = ct::pointwise(&na, &nxk, p);
        ct::intt(&mut prod, &table);
        prop_assert_eq!(prod, expected);
    }
}

proptest! {
    // Bootstrapping-scale sizes: few cases, each one large.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The hierarchical 4-step plan ≡ the strict in-place CT oracle, and
    /// `inverse ∘ forward` = id, for every bootstrapping-scale size
    /// N ∈ {2^12..2^17} and random power-of-two column splits.
    #[test]
    fn hierarchical_four_step_equals_strict_oracle(
        log_n in 12u32..=17,
        split in 1u32..=16,
        seed in any::<u64>(),
    ) {
        let n = 1usize << log_n;
        let n1 = 1usize << split.min(log_n - 1);
        let table = NttTable::new_with_bits(n, 59).unwrap();
        let p = table.modulus();
        let a: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(seed | 1).wrapping_add(seed >> 9) % p)
            .collect();
        let plan = HierPlan::from_table(&table, &HierConfig::default().split(n1, n / n1));
        let mut hier = a.clone();
        plan.forward(&mut hier);
        let mut reference = a.clone();
        ct::ntt(&mut reference, &table);
        prop_assert_eq!(&hier, &reference);
        plan.inverse(&mut hier);
        prop_assert_eq!(hier, a);
    }
}

#[test]
fn all_modmul_variants_agree_on_fixed_grid() {
    // Barrett, Shoup, Montgomery and native agree on a deterministic grid
    // of operands for several NTT-prime moduli.
    for bits in [40u32, 50, 59, 60] {
        let p = ntt_warp::math::ntt_prime(bits, 1 << 8).unwrap();
        let barrett = ntt_warp::math::Barrett::new(p);
        let mont = ntt_warp::math::mont::Montgomery::new(p);
        for a in (0..p).step_by((p / 17) as usize + 1) {
            for b in (0..p).step_by((p / 13) as usize + 1) {
                let want = ntt_warp::math::mul_mod(a, b, p);
                assert_eq!(barrett.mul(a, b), want);
                let shoup = ntt_warp::math::ShoupMul::new(b, p);
                assert_eq!(shoup.mul(a), want);
                assert_eq!(
                    mont.from_mont(mont.mul(mont.to_mont(a), mont.to_mont(b))),
                    want
                );
            }
        }
    }
}
