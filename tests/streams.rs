//! The stream/queue model, hardened end to end.
//!
//! Three families of checks:
//!
//! * **Interleaving property** — any schedule of launches, uploads,
//!   downloads, event records and event waits, distributed across several
//!   streams, produces results **bit-identical** to the same schedule on
//!   one stream. The simulator executes functionally in enqueue order
//!   (streams only change the *modeled time*), and this suite is the
//!   regression harness pinning that contract, together with the
//!   scheduler invariants: the overlapped makespan never exceeds the
//!   serialized schedule, and waits never move a stream backwards.
//! * **Cross-stream ordering** — event fences order producer/consumer
//!   pairs in modeled time; independent streams overlap.
//! * **Deadlock freedom** — N threads hammering one pooled `HeContext`
//!   (N evaluators on N streams, shared keys, contended device mutex and
//!   bus) all complete with correct results. Event waits only ever push
//!   cursors forward, so the schedule cannot deadlock by construction;
//!   this test pins the lock discipline around it.

use ntt_warp::gpu::SimBackend;
use ntt_warp::he::{sampling, HeContext, HeLiteParams};
use ntt_warp::sim::{Buf, Event, Gpu, GpuConfig, LaunchConfig, WarpCtx, WarpKernel};
use proptest::prelude::*;

/// `x <- x * 3 + c` over a whole buffer — deliberately non-commutative
/// across different `c`, so any functional reordering of the schedule
/// changes the bits.
struct AffineKernel {
    buf: Buf,
    c: u64,
}

impl WarpKernel for AffineKernel {
    fn phases(&self) -> usize {
        1
    }
    fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
        let lanes = ctx.lanes();
        let addrs: Vec<Option<usize>> = (0..lanes)
            .map(|l| {
                let t = ctx.global_thread(l);
                (t < self.buf.len()).then(|| self.buf.word(t))
            })
            .collect();
        let vals = ctx.gmem_load(&addrs);
        let writes: Vec<Option<(usize, u64)>> = (0..lanes)
            .map(|l| {
                let a = addrs[l]?;
                Some((a, vals[l]?.wrapping_mul(3).wrapping_add(self.c)))
            })
            .collect();
        ctx.gmem_store(&writes);
    }
}

/// One step of a multi-stream schedule. `stream_sel` picks the stream
/// (modulo the number of streams in the run), `buf_sel` the buffer.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Launch the affine kernel with constant `c`.
    Launch { c: u64 },
    /// Overwrite the buffer with a seeded pattern (host→device).
    Upload { seed: u64 },
    /// Device→host read of the whole buffer (output is recorded).
    Download,
    /// Record an event on the step's stream.
    RecordEvent,
    /// Wait (on the step's stream) for a previously recorded event.
    WaitEvent { idx: usize },
}

impl Op {
    /// Decode a raw `(code, arg)` pair from the property generator.
    fn decode(code: u8, arg: u64) -> Op {
        match code % 5 {
            0 => Op::Launch { c: arg % 100 },
            1 => Op::Upload { seed: arg % 1000 },
            2 => Op::Download,
            3 => Op::RecordEvent,
            _ => Op::WaitEvent {
                idx: arg as usize % 8,
            },
        }
    }
}

/// Run a schedule on `n_streams` streams; return every download plus the
/// final contents of all buffers, and the device for invariant checks.
fn run_schedule(schedule: &[(u8, u8, Op)], n_streams: usize) -> (Vec<Vec<u64>>, Gpu) {
    const WORDS: usize = 64;
    let mut gpu = Gpu::new(GpuConfig::titan_v());
    let bufs: Vec<Buf> = (0..3)
        .map(|i| gpu.gmem.alloc_from(&vec![i as u64 + 1; WORDS]))
        .collect();
    let streams: Vec<_> = (0..n_streams).map(|_| gpu.create_stream()).collect();
    let mut events: Vec<Event> = Vec::new();
    let mut outputs = Vec::new();
    for &(stream_sel, buf_sel, op) in schedule {
        let s = streams[stream_sel as usize % n_streams];
        let buf = bufs[buf_sel as usize % bufs.len()];
        gpu.set_active_stream(s);
        match op {
            Op::Launch { c } => {
                let cfg = LaunchConfig::new("affine", 1, WORDS).regs_per_thread(16);
                gpu.launch(&AffineKernel { buf, c }, &cfg);
            }
            Op::Upload { seed } => {
                let data: Vec<u64> = (0..WORDS as u64).map(|i| i.wrapping_mul(seed)).collect();
                gpu.stream_upload(buf, 0, &data);
            }
            Op::Download => {
                let mut out = vec![0u64; WORDS];
                gpu.stream_download(buf, &mut out);
                outputs.push(out);
            }
            Op::RecordEvent => events.push(gpu.record_event(s)),
            Op::WaitEvent { idx } => {
                if !events.is_empty() {
                    let e = events[idx % events.len()];
                    gpu.wait_event(s, e);
                }
            }
        }
    }
    for buf in bufs {
        outputs.push(gpu.gmem.slice(buf).to_vec());
    }
    (outputs, gpu)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Multi-stream enqueues are bit-identical to the serialized (single
    /// stream) schedule, and the scheduler invariants hold.
    #[test]
    fn interleaved_streams_match_serialized_schedule(
        raw in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>()), 1..40),
        n_streams in 2usize..5,
    ) {
        let schedule: Vec<(u8, u8, Op)> = raw
            .iter()
            .map(|&(s, b, code, arg)| (s, b, Op::decode(code, arg)))
            .collect();
        let (multi, gpu_multi) = run_schedule(&schedule, n_streams);
        let (serial, gpu_serial) = run_schedule(&schedule, 1);
        prop_assert_eq!(&multi, &serial, "functional results diverge");

        let tm = gpu_multi.timeline();
        let ts = gpu_serial.timeline();
        // Same command counts either way.
        prop_assert_eq!(tm.launches, ts.launches);
        prop_assert_eq!(tm.transfers, ts.transfers);
        // The serialized schedule's cost is stream-independent…
        prop_assert!((tm.serialized_s - ts.serialized_s).abs() < 1e-12);
        // …and overlap can only shrink the makespan, never grow it.
        prop_assert!(tm.overlapped_s <= tm.serialized_s + 1e-9);
        prop_assert!(ts.overlapped_s <= ts.serialized_s + 1e-9);
        // One stream = fully serialized: makespan equals the serial sum.
        prop_assert!((ts.overlapped_s - ts.serialized_s).abs() < 1e-9);
    }
}

/// Producer/consumer across streams: the consumer's kernel must not start
/// (in modeled time) before the producer's event.
#[test]
fn event_fences_order_producer_consumer() {
    let mut gpu = Gpu::new(GpuConfig::titan_v());
    let buf = gpu.gmem.alloc(256);
    let (s1, s2) = (gpu.create_stream(), gpu.create_stream());

    gpu.set_active_stream(s1);
    let cfg = LaunchConfig::new("produce", 8, 256).regs_per_thread(32);
    gpu.launch(&AffineKernel { buf, c: 7 }, &cfg);
    let produced = gpu.record_event(s1);

    gpu.set_active_stream(s2);
    gpu.wait_event(s2, produced);
    let span = gpu.streams.enqueue_kernel(s2, 1e-6, 1);
    assert!(
        span.start_s >= produced.time_s(),
        "consumer started at {} before producer event {}",
        span.start_s,
        produced.time_s()
    );
}

/// Independent small kernels on independent streams overlap; the same
/// kernels on one stream do not.
#[test]
fn independent_streams_overlap_dependent_do_not() {
    let run = |n_streams: usize| -> f64 {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let bufs: Vec<Buf> = (0..4).map(|_| gpu.gmem.alloc(256)).collect();
        let streams: Vec<_> = (0..n_streams).map(|_| gpu.create_stream()).collect();
        for (i, &buf) in bufs.iter().enumerate() {
            gpu.set_active_stream(streams[i % n_streams]);
            let cfg = LaunchConfig::new("k", 1, 256).regs_per_thread(32);
            gpu.launch(&AffineKernel { buf, c: 1 }, &cfg);
        }
        let t = gpu.timeline();
        t.overlap()
    };
    assert!((run(1) - 1.0).abs() < 1e-9, "one stream cannot overlap");
    assert!(
        run(4) > 2.0,
        "four 1-SM kernels on four streams must overlap, got {:.2}x",
        run(4)
    );
}

fn pool_params() -> HeLiteParams {
    HeLiteParams {
        log_n: 5,
        prime_bits: 50,
        levels: 2,
        scale_bits: 40,
        gadget_bits: 10,
        error_eta: 4,
    }
}

/// N pooled evaluators on N streams all complete under contention: every
/// thread drives encrypt → multiply → decrypt chains against shared keys
/// on one context. A deadlock hangs the suite; wrong fencing or broken
/// pool checkout shows up as wrong plaintexts.
#[test]
fn n_pooled_evaluators_on_n_streams_complete_under_contention() {
    const THREADS: usize = 4;
    const ROUNDS: usize = 3;
    let ctx = HeContext::with_backend(pool_params(), Box::new(SimBackend::titan_v())).unwrap();
    let keys = ctx.keygen(&mut sampling::seeded_rng(9));
    let barrier = std::sync::Barrier::new(THREADS);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let (ctx, keys, barrier) = (&ctx, &keys, &barrier);
                s.spawn(move || {
                    let mut rng = sampling::seeded_rng(50 + t as u64);
                    barrier.wait();
                    for round in 0..ROUNDS {
                        let v = (t * ROUNDS + round) as f64 + 1.0;
                        let a = ctx.encrypt(&ctx.encode(&[v]), &keys.public, &mut rng);
                        let b = ctx.encrypt(&ctx.encode(&[2.0]), &keys.public, &mut rng);
                        let prod = ctx.multiply(&a, &b, &keys.relin);
                        let out = ctx.decode(&ctx.decrypt(&prod, &keys.secret));
                        assert!(
                            (out[0] - 2.0 * v).abs() < 1e-2,
                            "thread {t} round {round}: {} != {}",
                            out[0],
                            2.0 * v
                        );
                        let sum = ctx.add(&a, &b);
                        let out = ctx.decode(&ctx.decrypt(&sum, &keys.secret));
                        assert!((out[0] - (v + 2.0)).abs() < 1e-3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    assert!(ctx.evaluator_count() >= 1);
}

/// Regression for ROADMAP item p: a mixed-residency multiply stages its
/// host co-operand through the backend's copy stream, so compute already
/// queued on the evaluator's stream overlaps the upload instead of
/// serializing behind it — and the product stays bit-identical to the
/// all-host path.
#[test]
fn mixed_residency_multiply_overlaps_staging_upload() {
    use ntt_warp::core::backend::Evaluator;
    use ntt_warp::core::{RnsPoly, RnsRing};

    let ring = RnsRing::new(64, ntt_warp::math::ntt_primes(50, 128, 3)).unwrap();
    let sample = |seed: i64| {
        let coeffs: Vec<i64> = (0..64).map(|i| (seed * (i + 2)) % 31 - 15).collect();
        RnsPoly::from_i64_coeffs(&ring, &coeffs)
    };

    // Host-only reference product.
    let (x_host, y_host) = (sample(7), sample(9));
    let expected = Evaluator::cpu(&ring).multiply(&x_host, &y_host);

    let backend = SimBackend::titan_v();
    let handle = backend.memory_handle();
    let mut ev = Evaluator::with_backend(&ring, Box::new(backend));
    fn lock(
        h: &std::sync::Arc<std::sync::Mutex<ntt_warp::gpu::backend::SimMemory>>,
    ) -> std::sync::MutexGuard<'_, ntt_warp::gpu::backend::SimMemory> {
        h.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    // Resident lhs plus warm twiddle tables, then drain the device so the
    // window below measures only the mixed multiply's schedule.
    let mut x = sample(7);
    ev.make_resident(&mut x);
    let mut w = sample(3);
    ev.make_resident(&mut w);
    ev.to_evaluation(&mut w);
    lock(&handle).gpu_mut().sync_all();
    let t0 = lock(&handle).gpu().timeline();

    // Queue compute on the evaluator's stream, then the mixed multiply:
    // its staging upload rides the copy stream, overlapping this backlog.
    for _ in 0..4 {
        ev.to_coefficient(&mut w);
        ev.to_evaluation(&mut w);
    }
    let mut prod = ev.multiply(&x, &y_host);
    let d = lock(&handle).gpu().timeline().since(&t0);

    assert!(d.transfers >= 1, "the host operand crosses the bus: {d:?}");
    assert!(
        d.overlapped_s <= d.serialized_s + 1e-12,
        "overlap cannot exceed the serialized schedule: {d}"
    );
    // The schedule must beat serialization by (at least) the bulk of the
    // staging upload's bus time — before the copy-stream prefetch the two
    // were exactly equal, everything sharing the evaluator's stream.
    assert!(
        d.serialized_s - d.overlapped_s > 5e-6,
        "staging upload must overlap queued compute ({d})"
    );
    prod.sync();
    assert_eq!(prod, expected, "copy-stream prefetch changed the bits");
}

/// The serialized schedule and a per-fork-stream schedule produce
/// bit-identical polynomials through the evaluator layer (streams are a
/// performance model, never a semantic one), and the forked run's
/// overlapped time never exceeds its serialized time.
#[test]
fn forked_evaluator_chains_are_bit_identical_to_root() {
    use ntt_warp::core::backend::{Evaluator, NttBackend};
    use ntt_warp::core::{RnsPoly, RnsRing};

    let ring = RnsRing::new(64, ntt_warp::math::ntt_primes(50, 128, 3)).unwrap();
    let sample = |seed: i64| {
        let coeffs: Vec<i64> = (0..64).map(|i| (seed * (i + 2)) % 31 - 15).collect();
        RnsPoly::from_i64_coeffs(&ring, &coeffs)
    };

    let chain = |ev: &mut Evaluator, seed: i64| -> RnsPoly {
        let (mut x, mut y) = (sample(seed), sample(seed + 1));
        ev.make_resident(&mut x);
        ev.make_resident(&mut y);
        ev.to_evaluation(&mut x);
        ev.to_evaluation(&mut y);
        ev.mul_pointwise(&mut x, &y);
        ev.add_assign(&mut x, &y);
        ev.to_coefficient(&mut x);
        ev.rescale(&mut x);
        x.sync();
        x
    };

    // Root backend only (everything on the default stream).
    let root = SimBackend::titan_v();
    let handle = root.memory_handle();
    let mut ev_root = Evaluator::with_backend(&ring, Box::new(root));
    let serial: Vec<RnsPoly> = (0..3).map(|i| chain(&mut ev_root, 100 + i)).collect();

    // Fresh device, one fork per chain.
    let root2 = SimBackend::titan_v();
    let handle2 = root2.memory_handle();
    let mut forks: Vec<Evaluator> = (0..3)
        .map(|_| Evaluator::new(ring.plan(), root2.fork()))
        .collect();
    drop(root2);
    let forked: Vec<RnsPoly> = forks
        .iter_mut()
        .enumerate()
        .map(|(i, ev)| chain(ev, 100 + i as i64))
        .collect();

    assert_eq!(serial, forked, "stream assignment changed the bits");
    let lock = |h: &std::sync::Arc<std::sync::Mutex<ntt_warp::gpu::backend::SimMemory>>| {
        h.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .gpu()
            .timeline()
    };
    let (t1, t2) = (lock(&handle), lock(&handle2));
    assert!(t1.overlapped_s <= t1.serialized_s + 1e-9);
    assert!(t2.overlapped_s <= t2.serialized_s + 1e-9);
    assert_eq!(t1.launches, t2.launches, "same work either way");
}

/// ROADMAP item o: the same chains driven by real host threads — racing
/// on the shared device mutex, allocator and bus — must produce results
/// bit-identical to the serialized single-threaded driver, whatever
/// interleaving the OS scheduler picks. Flushes latent stream-binding
/// races the deterministic fork driver cannot.
#[test]
fn threaded_stream_chains_match_serialized_driver() {
    use ntt_bench::experiments;

    let serial = experiments::streams_run(6, 4);
    let threaded = experiments::streams_threaded(6, 4);
    assert_eq!(
        serial.digest, threaded.digest,
        "host threading changed the bits"
    );
    let (ts, tt) = (serial.report.timeline, threaded.report.timeline);
    assert!(tt.overlapped_s <= tt.serialized_s + 1e-9);
    assert_eq!(ts.launches, tt.launches, "same work either way");
    assert_eq!(ts.transfers, tt.transfers, "same staging either way");
}
