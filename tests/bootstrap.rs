//! The bootstrapping pipeline across execution substrates.
//!
//! Three families of checks:
//!
//! * **Cross-substrate bit-exactness** — rotations (automorphism + key
//!   switch) and the *entire* `bootstrap()` chain produce bit-identical
//!   ciphertexts on `CpuBackend` and the device-resident `SimBackend`.
//!   The schedule is static and every scale decision is host-side `f64`
//!   arithmetic shared by both paths, so the pipelines must agree to the
//!   last ring coefficient.
//! * **Rotation semantics** — property test: `rotate(ct, g)` for a
//!   random odd Galois element `g` decrypts to the plaintext permuted by
//!   `X → X^g` (coefficient permutation with negacyclic sign wrap).
//! * **Decryption correctness** — the deep-parameter bootstrap output
//!   decrypts back to the input coefficients (the he-boot unit test
//!   covers CPU; here the *Sim* output is pinned to the CPU output, so
//!   correctness transfers).
//!
//! CI runs this file under `NTT_WARP_THREADS=1,2,4`: the thread policy
//! must not leak into results.

use ntt_warp::boot::{BootParams, Bootstrapper};
use ntt_warp::core::backend::NttBackend;
use ntt_warp::core::CpuBackend;
use ntt_warp::gpu::SimBackend;
use ntt_warp::he::{sampling, Ciphertext, HeContext, HeLiteParams, KeySet};
use proptest::prelude::*;
use std::sync::Arc;

fn rot_params() -> HeLiteParams {
    HeLiteParams {
        log_n: 6,
        prime_bits: 50,
        levels: 3,
        scale_bits: 46,
        gadget_bits: 10,
        error_eta: 4,
    }
}

fn ctx_with(params: HeLiteParams, backend: Box<dyn NttBackend>, seed: u64) -> (HeContext, KeySet) {
    let ctx = HeContext::with_backend(params, backend).expect("context builds");
    let keys = ctx.keygen(&mut sampling::seeded_rng(seed));
    (ctx, keys)
}

/// Decrypt-ready bit pattern of a ciphertext: both components, synced.
fn bits(mut ct: Ciphertext) -> (ntt_warp::core::RnsPoly, ntt_warp::core::RnsPoly) {
    ct.sync();
    let (c0, c1) = ct.components();
    (c0.clone(), c1.clone())
}

/// Rotations agree bit-for-bit between the host backend and the
/// device-resident simulated GPU, for baby-step, giant-step and
/// conjugation Galois elements.
#[test]
fn rotate_is_bit_exact_across_backends() {
    let run = |backend: Box<dyn NttBackend>| {
        let (ctx, keys) = ctx_with(rot_params(), backend, 17);
        let two_n = 2 * ctx.params().n() as u64;
        let gs = [5u64, 25, 125 % two_n, two_n - 1];
        let rtk = ctx.keygen_rotation(&keys.secret, &gs, &[3], &mut sampling::seeded_rng(18));
        let values: Vec<f64> = (0..8).map(|i| (i as f64 * 0.9).cos()).collect();
        let ct = ctx.encrypt(
            &ctx.encode(&values),
            &keys.public,
            &mut sampling::seeded_rng(19),
        );
        gs.iter()
            .map(|&g| bits(ctx.rotate(&ct, g, &rtk)))
            .collect::<Vec<_>>()
    };
    let cpu = run(Box::<CpuBackend>::default());
    let sim = run(Box::new(SimBackend::titan_v()));
    assert_eq!(cpu, sim, "rotation diverged between Cpu and Sim");
}

/// The full bootstrap chain — ModRaise, CoeffToSlot, EvalMod,
/// SlotToCoeff, every rotation and rescale — is bit-exact across
/// backends on the depth-minimal (shallow) parameters.
#[test]
fn bootstrap_is_bit_exact_across_backends() {
    let bp = BootParams::shallow();
    let run = |backend: Box<dyn NttBackend>| {
        let ctx = Arc::new(
            HeContext::with_backend(bp.he_params(4, 50), backend).expect("context builds"),
        );
        let mut rng = sampling::seeded_rng(23);
        let keys = ctx.keygen(&mut rng);
        let boot = Bootstrapper::new(Arc::clone(&ctx), &keys, bp, &mut rng);
        let values: Vec<f64> = (0..16).map(|i| ((i as f64) * 0.41).sin() * 0.7).collect();
        let pt = ctx.encode_with_scale(&values, boot.input_scale());
        let ct = ctx.encrypt(&pt, &keys.public, &mut sampling::seeded_rng(24));
        let low = ctx.drop_to_level(&ct, 1);
        let out = boot.bootstrap(&low);
        assert_eq!(out.level(), boot.output_level());
        bits(out)
    };
    let cpu = run(Box::<CpuBackend>::default());
    let sim = run(Box::new(SimBackend::titan_v()));
    assert_eq!(cpu, sim, "bootstrap chain diverged between Cpu and Sim");
}

/// `BootParams::deep()` end-to-end at the bootstrapping-scale ring: the
/// full 21-level pipeline, sparsely packed (`with_matrix_slots` ≪ N/2)
/// so key and diagonal material stays tractable, bit-exact Cpu≡Sim.
/// The Sim side routes its forwards through the size-calibrated winner,
/// which at this scale weighs the hierarchical 4-step plan. Debug
/// builds run the identical pipeline (including the key-adoption path)
/// at N=2^8 to keep `cargo test -q` fast; release builds
/// (`cargo test --release`) run the full N=2^16 ring, where the CPU
/// side crosses the hierarchical threshold and the Sim side launches
/// the three-kernel plan.
#[test]
fn deep_bootstrap_at_bootstrap_ring_is_bit_exact_across_backends() {
    let bp = BootParams::deep();
    let log_n: u32 = if cfg!(debug_assertions) { 8 } else { 16 };
    let values: Vec<f64> = (0..16).map(|i| ((i as f64) * 0.23).cos() * 0.5).collect();
    let run = |ctx: &Arc<HeContext>, boot: &Bootstrapper, keys: &KeySet| {
        let pt = ctx.encode_with_scale(&values, boot.input_scale());
        let ct = ctx.encrypt(&pt, &keys.public, &mut sampling::seeded_rng(31));
        let low = ctx.drop_to_level(&ct, 1);
        let out = boot.bootstrap(&low);
        assert_eq!(out.level(), boot.output_level());
        bits(out)
    };

    // Key generation is host-side, backend-independent math — at this
    // ring it is minutes of single-thread NTTs and ~14 GB of relin
    // material — so pay it once on the CPU context and adopt the
    // identical bits on the device context.
    let cpu_ctx = Arc::new(
        HeContext::with_backend(bp.he_params(log_n, 50), Box::<CpuBackend>::default())
            .expect("context builds"),
    );
    let mut rng = sampling::seeded_rng(29);
    let keys = cpu_ctx.keygen(&mut rng);
    let boot_cpu = Bootstrapper::with_matrix_slots(Arc::clone(&cpu_ctx), &keys, bp, 8, &mut rng);
    let cpu = run(&cpu_ctx, &boot_cpu, &keys);
    let rot = boot_cpu.rotation_keys().clone();
    // Free the CPU engine's relin copy before the device copies land.
    drop(boot_cpu);
    drop(cpu_ctx);

    let sim_ctx = Arc::new(
        HeContext::with_backend(bp.he_params(log_n, 50), Box::new(SimBackend::titan_v()))
            .expect("context builds"),
    );
    let keys_sim = sim_ctx.adopt_keys(&keys);
    let rot_sim = sim_ctx.adopt_rotation_keys(&rot);
    // The host originals are done; at N=2^16 they hold ~23 GB that the
    // Sim phase (device mirrors + the bootstrapper's relin copy) needs.
    drop(keys);
    drop(rot);
    let boot_sim =
        Bootstrapper::with_rotation_keys(Arc::clone(&sim_ctx), &keys_sim, bp, 8, rot_sim);
    let sim = run(&sim_ctx, &boot_sim, &keys_sim);
    assert_eq!(
        cpu, sim,
        "deep bootstrap at N=2^{log_n} diverged between Cpu and Sim"
    );
}

/// The fallible bootstrap with no fault plan armed takes the identical
/// path: `try_bootstrap` ≡ `bootstrap`, bit for bit, on the device.
#[test]
fn try_bootstrap_matches_infallible_path() {
    let bp = BootParams::shallow();
    let ctx = Arc::new(
        HeContext::with_backend(bp.he_params(4, 50), Box::new(SimBackend::titan_v()))
            .expect("context builds"),
    );
    let mut rng = sampling::seeded_rng(31);
    let keys = ctx.keygen(&mut rng);
    let boot = Bootstrapper::new(Arc::clone(&ctx), &keys, bp, &mut rng);
    let pt = ctx.encode_with_scale(&[0.25, -0.5, 0.125], boot.input_scale());
    let ct = ctx.encrypt(&pt, &keys.public, &mut sampling::seeded_rng(32));
    let low = ctx.drop_to_level(&ct, 1);
    let a = bits(boot.bootstrap(&low));
    let b = bits(boot.try_bootstrap(&low).expect("no faults armed"));
    assert_eq!(a, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `rotate(ct, g)` decrypts to the `X → X^g` permutation of the
    /// plaintext (negacyclic sign wrap), for random odd `g` and random
    /// coefficients — the homomorphic automorphism against the plain
    /// oracle.
    #[test]
    fn rotation_decrypts_to_permuted_plaintext(
        g_index in 0usize..32,
        seed in any::<u64>(),
    ) {
        let (ctx, keys) = ctx_with(rot_params(), Box::<CpuBackend>::default(), seed);
        let n = ctx.params().n();
        let two_n = 2 * n;
        let g = (2 * g_index + 1) as u64 % (two_n as u64);
        let rtk = ctx.keygen_rotation(
            &keys.secret,
            &[g],
            &[ctx.params().levels],
            &mut sampling::seeded_rng(seed ^ 0x5a5a),
        );
        let values: Vec<f64> = (0..n)
            .map(|i| (((seed as f64).sin() * 31.0 + i as f64) * 0.37).cos())
            .collect();
        let ct = ctx.encrypt(
            &ctx.encode(&values),
            &keys.public,
            &mut sampling::seeded_rng(seed.wrapping_mul(3)),
        );
        let rotated = ctx.rotate(&ct, g, &rtk);
        let got = ctx.decode(&ctx.decrypt(&rotated, &keys.secret));

        // Oracle: coefficient t of the input lands at (t*g mod 2N),
        // negated when it wraps past N.
        let mut want = vec![0.0f64; n];
        for (t, &v) in values.iter().enumerate() {
            let idx = (t * g as usize) % two_n;
            if idx < n {
                want[idx] += v;
            } else {
                want[idx - n] -= v;
            }
        }
        for i in 0..n {
            prop_assert!(
                (got[i] - want[i]).abs() < 1e-2,
                "g={g} coeff {i}: {} vs {}", got[i], want[i]
            );
        }
    }
}
