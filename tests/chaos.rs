//! Chaos harness for the self-healing serving stack: seeded fault
//! schedules on the simulated device must never produce a wrong answer
//! — every admitted job either completes bit-correct (retried or
//! degraded to the host evaluator as needed) or fails with a classified
//! [`ServeError`](he_serve::ServeError). No panics, no hangs, no
//! silent corruption.
//!
//! The headline schedule is fixed-seed (override with
//! `NTT_WARP_CHAOS_SEED`) so CI runs the *same* fault history under
//! every `NTT_WARP_THREADS` setting; a proptest sweep then randomizes
//! rates, stickiness and retry budgets.

use he_serve::{
    ArrivalMode, HeServer, LoadConfig, Request, Response, RetryPolicy, ServeConfig, ServeError,
    TenantId,
};
use ntt_warp::core::NttBackend;
use ntt_warp::gpu::SimBackend;
use ntt_warp::he::{HeContext, HeLiteParams};
use ntt_warp::sim::{FaultOp, FaultPlan};
use proptest::prelude::*;
use std::time::Duration;

fn chaos_params() -> HeLiteParams {
    HeLiteParams {
        log_n: 5,
        prime_bits: 50,
        levels: 2,
        scale_bits: 40,
        gadget_bits: 10,
        error_eta: 4,
    }
}

/// The fixed chaos seed: env-overridable so a failing schedule can be
/// replayed locally with `NTT_WARP_CHAOS_SEED=<seed>`.
fn chaos_seed() -> u64 {
    std::env::var("NTT_WARP_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7)
}

/// Build a sim-backed server plus a control handle on its shared
/// device. The plan is armed *after* `HeServer::start`, so key
/// generation always runs fault-free (a faulted keygen is a provisioning
/// failure, not a serving one).
fn start_chaotic_server(config: ServeConfig, plan: FaultPlan) -> (HeServer, SimBackend) {
    let sim = SimBackend::titan_v();
    let ctx = HeContext::with_backend(chaos_params(), sim.fork()).expect("sim context builds");
    let server = HeServer::start(ctx, config);
    sim.set_fault_plan(Some(plan));
    (server, sim)
}

/// The headline chaos run: transient upload/launch faults throughout
/// plus a sticky fault partway in. Every chain must still complete with
/// bit-correct decrypted values — retries absorb the transients, and
/// after the device wedges the server degrades to the host evaluator
/// (bit-identical by backend conformance). Nothing may fail, panic or
/// hang, and the recovery machinery must be visible in the metrics.
#[test]
fn seeded_chaos_completes_every_chain_bit_correct() {
    let plan = FaultPlan::seeded(chaos_seed())
        .rate(FaultOp::Upload, 40)
        .rate(FaultOp::Launch, 25)
        .sticky_after(150);
    let (server, sim) = start_chaotic_server(
        ServeConfig {
            workers: 2,
            retry: RetryPolicy {
                max_retries: 3,
                backoff: Duration::from_micros(20),
                backoff_cap: Duration::from_millis(2),
            },
            ..ServeConfig::default()
        },
        plan,
    );

    let report = he_serve::loadgen::run(
        &server,
        &LoadConfig {
            tenants: 4,
            chains_per_tenant: 3,
            mode: ArrivalMode::Closed,
            max_values: 8,
            seed: 11,
        },
    );
    let snap = server.shutdown();

    // Bit-correct or classified — and with no deadline configured and a
    // working host fallback, "classified" never needs to happen.
    assert_eq!(report.mismatches, 0, "a completed answer was wrong");
    assert_eq!(report.failed, 0, "host fallback should absorb every fault");
    assert_eq!(report.rejected, 0, "closed loop never overruns the queue");
    assert_eq!(
        report.chains_completed, 12,
        "every chain runs end to end despite the chaos"
    );
    assert_eq!(report.submitted, report.completed, "job ledger balances");

    // The fault plane really fired, and the recovery machinery really
    // ran: the sticky window guarantees at least one fatal fault, which
    // quarantines a pool member and degrades later work to the host.
    let (transient, sticky, _oom) = sim
        .with_gpu(|gpu| gpu.fault_plan().map(|p| p.injected()))
        .expect("plan is armed");
    assert!(sticky >= 1, "sticky window was never reached");
    assert!(transient >= 1, "transient rates never fired");
    assert!(snap.faults.fatal >= 1, "fatal fault not recorded");
    assert!(snap.degraded_jobs >= 1, "no group degraded to the host");
    assert!(snap.quarantined >= 1, "no pool member was quarantined");
    assert_eq!(snap.worker_panics, 0, "chaos must not panic a worker");
    assert_eq!(snap.failed(), 0, "server-side failure ledger agrees");
}

/// A zero deadline expires every job before dispatch: all answers are
/// `DeadlineExceeded`, all classified, none silently dropped.
#[test]
fn zero_deadline_fails_every_job_classified() {
    let ctx = HeContext::new(chaos_params()).expect("cpu context builds");
    let server = HeServer::start(
        ctx,
        ServeConfig {
            workers: 1,
            deadline: Some(Duration::ZERO),
            ..ServeConfig::default()
        },
    );
    let tickets: Vec<_> = (0..6)
        .map(|i| {
            server
                .submit(
                    TenantId(0),
                    Request::Encrypt {
                        values: vec![f64::from(i)],
                    },
                )
                .expect("queue has room")
        })
        .collect();
    for t in tickets {
        match t.wait().expect("answered, not dropped").response {
            Response::Failed(ServeError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }
    let snap = server.shutdown();
    assert_eq!(snap.deadline_misses, 6);
    assert_eq!(snap.faults.deadline, 6, "misses are classified");
    assert_eq!(snap.failed(), 6);
    assert_eq!(snap.completed(), 0);
}

/// Cancellation is best-effort but never lossy: every cancelled ticket
/// still gets an answer — either the job won the race and completed, or
/// it was shed as `Cancelled` — and the ledgers agree.
#[test]
fn cancelled_tickets_are_answered_not_dropped() {
    let ctx = HeContext::new(chaos_params()).expect("cpu context builds");
    let server = HeServer::start(
        ctx,
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let tickets: Vec<_> = (0..8)
        .map(|i| {
            server
                .submit(
                    TenantId(0),
                    Request::Encrypt {
                        values: vec![f64::from(i), -1.0],
                    },
                )
                .expect("queue has room")
        })
        .collect();
    for t in &tickets {
        t.cancel();
    }
    let mut done = 0u64;
    let mut cancelled = 0u64;
    for t in tickets {
        match t.wait().expect("answered, not dropped").response {
            Response::Encrypted(_) => done += 1,
            Response::Failed(ServeError::Cancelled) => cancelled += 1,
            other => panic!("unexpected answer {other:?}"),
        }
    }
    assert_eq!(done + cancelled, 8, "every ticket answered exactly once");
    let snap = server.shutdown();
    assert_eq!(snap.completed(), done);
    assert_eq!(snap.cancelled, cancelled);
}

/// Quarantine + re-fork keeps the answers conformant: a run whose
/// device wedges immediately (everything degrades to the host
/// evaluator, pool members quarantined along the way) produces
/// bit-identical ciphertexts to a pure-CPU server with the same key
/// seed and submission order.
#[test]
fn quarantine_and_refork_preserve_cpu_sim_conformance() {
    let run = |server: &HeServer| -> Vec<he_lite::Ciphertext> {
        let tickets: Vec<_> = (0..3u32)
            .flat_map(|t| (0..2).map(move |i| (t, i)).collect::<Vec<_>>())
            .map(|(t, i)| {
                server
                    .submit(
                        TenantId(t),
                        Request::Encrypt {
                            values: vec![f64::from(t) - 0.5 * f64::from(i), 2.0],
                        },
                    )
                    .expect("queue has room")
            })
            .collect();
        tickets
            .into_iter()
            .map(
                |ticket| match ticket.wait().expect("server answers").response {
                    Response::Encrypted(ct) => ct,
                    other => panic!("expected Encrypted, got {other:?}"),
                },
            )
            .collect()
    };
    let config = || ServeConfig {
        workers: 1,
        key_seed: 7,
        ..ServeConfig::default()
    };

    let cpu_server = HeServer::start(
        HeContext::new(chaos_params()).expect("cpu context builds"),
        config(),
    );
    let cpu_cts = run(&cpu_server);
    cpu_server.shutdown();

    // Wedge the device on the very first checked op.
    let (sim_server, _sim) =
        start_chaotic_server(config(), FaultPlan::seeded(chaos_seed()).sticky_after(0));
    let sim_cts = run(&sim_server);
    assert!(
        sim_server.context().quarantined_count() >= 1,
        "the wedged evaluator was never quarantined"
    );
    let snap = sim_server.shutdown();
    assert!(snap.degraded_jobs >= 1, "nothing degraded to the host");

    for (a, b) in cpu_cts.iter().zip(&sim_cts) {
        assert_eq!(
            a.components(),
            b.components(),
            "degraded serving diverged from the CPU reference"
        );
        assert_eq!(a.scale().to_bits(), b.scale().to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any fault schedule × retry budget: decrypted answers that arrive
    /// are bit-correct, everything else is a classified failure, the
    /// ledgers balance, and the run terminates (no hang, no panic).
    #[test]
    fn any_fault_schedule_yields_bit_correct_or_classified(
        seed in any::<u64>(),
        upload in 0u16..220,
        launch in 0u16..220,
        sticky_on in any::<bool>(),
        sticky_n in 0u64..300,
        max_retries in 0u32..4,
        open in any::<bool>(),
    ) {
        let mut plan = FaultPlan::seeded(seed)
            .rate(FaultOp::Upload, upload)
            .rate(FaultOp::Launch, launch);
        if sticky_on {
            plan = plan.sticky_after(sticky_n);
        }
        let (server, _sim) = start_chaotic_server(
            ServeConfig {
                workers: 2,
                retry: RetryPolicy {
                    max_retries,
                    backoff: Duration::from_micros(10),
                    backoff_cap: Duration::from_micros(500),
                },
                ..ServeConfig::default()
            },
            plan,
        );
        let mode = if open {
            ArrivalMode::Open { gap: Duration::ZERO }
        } else {
            ArrivalMode::Closed
        };
        let report = he_serve::loadgen::run(
            &server,
            &LoadConfig {
                tenants: 2,
                chains_per_tenant: 2,
                mode,
                max_values: 4,
                seed,
            },
        );
        let snap = server.shutdown();

        prop_assert_eq!(report.mismatches, 0, "completed answer was wrong");
        // Every failure the client saw carries a fault class (no
        // cancellations in this workload), and the job ledger balances.
        prop_assert_eq!(report.failed, report.faults.total());
        prop_assert_eq!(
            report.submitted,
            report.completed + report.failed + report.rejected
        );
        prop_assert_eq!(
            report.chains_completed + report.chains_failed,
            4u64,
            "every chain is accounted for"
        );
        prop_assert_eq!(snap.worker_panics, 0u64);
        prop_assert_eq!(snap.failed(), report.failed);
    }
}

// ---- Bootstrapping under chaos ---------------------------------------

/// Synced bit pattern of a ciphertext, for cross-run comparison.
fn ct_bits(mut ct: he_lite::Ciphertext) -> (ntt_warp::core::RnsPoly, ntt_warp::core::RnsPoly) {
    ct.sync();
    let (c0, c1) = ct.components();
    (c0.clone(), c1.clone())
}

/// The CPU reference for a served bootstrap: replay the server's key
/// schedule (keygen then `Bootstrapper::new` from one seeded stream) on
/// a host context, so the reference ciphertext is bit-comparable by
/// backend conformance.
fn boot_reference(
    bp: he_serve::BootParams,
    params: HeLiteParams,
    key_seed: u64,
) -> (
    std::sync::Arc<HeContext>,
    he_serve::Bootstrapper,
    he_lite::Ciphertext,
) {
    use he_lite::sampling;
    let ctx = std::sync::Arc::new(HeContext::new(params).expect("cpu context builds"));
    let mut rng = sampling::seeded_rng(key_seed);
    let keys = ctx.keygen(&mut rng);
    let boot = he_serve::Bootstrapper::new(std::sync::Arc::clone(&ctx), &keys, bp, &mut rng);
    let pt = ctx.encode_with_scale(&[0.5, -0.25, 0.125], boot.input_scale());
    let ct = ctx.encrypt(&pt, &keys.public, &mut sampling::seeded_rng(100));
    let low = ctx.drop_to_level(&ct, 1);
    (ctx, boot, low)
}

/// Boot jobs under transient launch faults: every answered job is
/// either bit-correct (retries absorbed the faults) or a classified
/// fault — never a silently wrong ciphertext. The fallible path routes
/// every rotation through the fault gate, so the pipeline is genuinely
/// exposed.
#[test]
fn boot_jobs_under_faults_bit_correct_or_classified() {
    let bp = he_serve::BootParams::shallow();
    let params = bp.he_params(4, 50);
    let key_seed = 7u64;
    let (_ref_ctx, ref_boot, input) = boot_reference(bp, params, key_seed);
    let reference = ct_bits(ref_boot.bootstrap(&input));

    let (server, _sim) = {
        let sim = SimBackend::titan_v();
        let ctx = HeContext::with_backend(params, sim.fork()).expect("sim context builds");
        let server = HeServer::start(
            ctx,
            ServeConfig {
                workers: 1,
                batching: false,
                key_seed,
                boot: Some(bp),
                ..ServeConfig::default()
            },
        );
        sim.set_fault_plan(Some(
            FaultPlan::seeded(chaos_seed()).rate(FaultOp::Launch, 10),
        ));
        (server, sim)
    };

    let tickets: Vec<_> = (0..6)
        .map(|_| {
            server
                .submit(TenantId(0), Request::Boot { ct: input.clone() })
                .expect("boot job admitted")
        })
        .collect();
    let mut correct = 0u32;
    let mut classified = 0u32;
    for t in tickets {
        match t.wait().expect("answered, not dropped").response {
            Response::Bootstrapped(ct) => {
                assert_eq!(ct_bits(ct), reference, "served bootstrap bits drifted");
                correct += 1;
            }
            Response::Failed(ServeError::Fault { .. }) => classified += 1,
            other => panic!("unexpected answer {other:?}"),
        }
    }
    assert_eq!(correct + classified, 6, "every ticket answered once");
    assert!(correct >= 1, "no boot job survived modest fault rates");
    let snap = server.shutdown();
    assert_eq!(snap.worker_panics, 0, "chaos must not panic a worker");
    assert_eq!(snap.failed(), u64::from(classified));
}

/// Rotation keys and DFT diagonals live in shared device memory, not in
/// any pool member: after a sticky fault wedges the serving evaluator
/// (quarantine + re-fork), a post-recovery Boot job still completes
/// bit-correct against the CPU reference.
#[test]
fn rotation_keys_survive_quarantine_and_refork() {
    let bp = he_serve::BootParams::shallow();
    let params = bp.he_params(4, 50);
    let key_seed = 7u64;
    let (_ref_ctx, ref_boot, input) = boot_reference(bp, params, key_seed);
    let reference = ct_bits(ref_boot.bootstrap(&input));

    let sim = SimBackend::titan_v();
    let ctx = HeContext::with_backend(params, sim.fork()).expect("sim context builds");
    let server = HeServer::start(
        ctx,
        ServeConfig {
            workers: 1,
            batching: false,
            key_seed,
            boot: Some(bp),
            ..ServeConfig::default()
        },
    );

    // Wedge the device partway into the first bootstrap.
    sim.set_fault_plan(Some(FaultPlan::seeded(chaos_seed()).sticky_after(20)));
    let t = server
        .submit(TenantId(0), Request::Boot { ct: input.clone() })
        .expect("boot job admitted");
    match t.wait().expect("answered").response {
        Response::Failed(ServeError::Fault { .. }) => {}
        Response::Bootstrapped(_) => panic!("sticky plan should wedge the first bootstrap"),
        other => panic!("unexpected answer {other:?}"),
    }
    assert!(
        server.context().quarantined_count() >= 1,
        "the wedged pool member was never quarantined"
    );

    // Device heals (plan disarmed): the re-forked evaluators must find
    // the rotation keys and diagonals still resident and produce the
    // exact reference bits.
    sim.set_fault_plan(None);
    let t = server
        .submit(TenantId(0), Request::Boot { ct: input.clone() })
        .expect("boot job admitted");
    match t.wait().expect("answered").response {
        Response::Bootstrapped(ct) => {
            assert_eq!(
                ct_bits(ct),
                reference,
                "post-recovery bootstrap diverged: rotation keys did not survive"
            );
        }
        other => panic!("expected a bootstrapped answer after recovery, got {other:?}"),
    }
    server.shutdown();
}
