//! Property tests for the HE-as-a-service layer: deficit round-robin
//! fairness, bounded-queue backpressure, and batched-vs-sequential
//! bit-identity of the request batcher on both the CPU and simulated-GPU
//! backends.

use he_serve::{
    job_seed, Batcher, EncryptJob, FairQueue, HeServer, Request, Response, ServeConfig,
    SubmitError, TenantId,
};
use ntt_warp::he::{sampling, HeContext, HeLiteParams};
use proptest::prelude::*;
use std::collections::HashMap;

fn serve_params() -> HeLiteParams {
    HeLiteParams {
        log_n: 6,
        prime_bits: 50,
        levels: 3,
        scale_bits: 40,
        gadget_bits: 10,
        error_eta: 4,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// No starvation under skew: tenant 0 floods the queue, yet every
    /// backlogged tenant's first item is served within the DRR bound —
    /// `ceil(cost/quantum)` visits per tenant, at most
    /// `ceil((quantum+cost)/cost)` items served per visit.
    #[test]
    fn drr_never_starves_a_tenant(
        tenants in 2usize..6,
        flood in 8usize..40,
        cost in 1u64..12,
        quantum in 1u64..8,
    ) {
        let mut q: FairQueue<u64> = FairQueue::new(64, quantum);
        for _ in 0..flood {
            q.push(TenantId(0), cost).unwrap();
        }
        for t in 1..tenants as u32 {
            q.push(TenantId(t), cost).unwrap();
            q.push(TenantId(t), cost).unwrap();
        }
        let drained = q.drain(flood + 2 * (tenants - 1));
        prop_assert!(q.is_empty(), "drain is work-conserving");

        let rounds = cost.div_ceil(quantum) as usize;
        let per_visit = (quantum + cost).div_ceil(cost) as usize;
        let window = tenants * rounds * per_visit;
        for t in 0..tenants as u32 {
            let pos = drained
                .iter()
                .position(|(id, _)| id.0 == t)
                .expect("every tenant is served");
            prop_assert!(
                pos < window,
                "tenant {t} first served at {pos}, outside DRR window {window}"
            );
        }
    }

    /// The bounded queue is really bounded, and its admission ledger
    /// balances: offered = accepted + rejected, accepted = drained +
    /// still queued — per tenant, under arbitrary push/drain interleaving.
    #[test]
    fn backpressure_bounds_and_ledger_balance(
        capacity in 1usize..8,
        ops in proptest::collection::vec((0u32..4, 1u64..6), 1..120),
        drain_every in 1usize..10,
    ) {
        let mut q: FairQueue<u64> = FairQueue::new(capacity, 4);
        let mut offered: HashMap<u32, u64> = HashMap::new();
        let mut drained: HashMap<u32, u64> = HashMap::new();
        for (i, &(t, cost)) in ops.iter().enumerate() {
            *offered.entry(t).or_default() += 1;
            let _ = q.push(TenantId(t), cost);
            for t in 0..4u32 {
                prop_assert!(
                    q.queued_for(TenantId(t)) <= capacity,
                    "tenant {t} queue exceeded capacity {capacity}"
                );
            }
            if i % drain_every == 0 {
                for (id, _) in q.drain(2) {
                    *drained.entry(id.0).or_default() += 1;
                }
            }
        }
        for t in 0..4u32 {
            let id = TenantId(t);
            prop_assert_eq!(
                q.accepted_for(id) + q.rejected_for(id),
                offered.get(&t).copied().unwrap_or(0),
                "offered ledger for tenant {}", t
            );
            prop_assert_eq!(
                q.accepted_for(id),
                drained.get(&t).copied().unwrap_or(0) + q.queued_for(id) as u64,
                "accepted ledger for tenant {}", t
            );
        }
    }
}

/// Run the same jobs through the batcher as one group and as chunk-of-1
/// dispatches, asserting every intermediate ciphertext and the final
/// decrypted values are bit-identical.
fn assert_batched_matches_sequential(ctx: &HeContext, jobs: &[EncryptJob]) {
    let keys = ctx.keygen(&mut sampling::seeded_rng(33));
    let batcher = Batcher::new(&keys);
    let weights = vec![0.75];

    let run = |groups: Vec<&[EncryptJob]>| {
        ctx.with_pooled_evaluator(|ev| {
            let mut cts = Vec::new();
            let mut evald = Vec::new();
            let mut outs = Vec::new();
            for g in groups {
                let c = batcher.encrypt_batch(ctx, ev, g);
                let e = batcher.eval_batch(
                    ctx,
                    ev,
                    c.iter().map(|ct| (ct.clone(), weights.clone())).collect(),
                );
                outs.extend(batcher.decrypt_batch(ctx, ev, e.clone()));
                cts.extend(c);
                evald.extend(e);
            }
            (cts, evald, outs)
        })
    };

    let (b_cts, b_evald, b_outs) = run(vec![jobs]);
    let (s_cts, s_evald, s_outs) = run(jobs.chunks(1).collect());

    for (b, s) in b_cts.iter().zip(&s_cts).chain(b_evald.iter().zip(&s_evald)) {
        assert_eq!(b.components(), s.components(), "ciphertext bits diverged");
        assert_eq!(b.scale().to_bits(), s.scale().to_bits(), "scale diverged");
    }
    assert_eq!(b_outs, s_outs, "decrypted values diverged");
}

fn identity_jobs(seed_base: u64, values: &[Vec<f64>]) -> Vec<EncryptJob> {
    values
        .iter()
        .enumerate()
        .map(|(j, v)| EncryptJob {
            seed: job_seed(seed_base, TenantId(j as u32), j as u64),
            values: v.clone(),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn batching_is_bit_identical_on_cpu(
        values in proptest::collection::vec(
            proptest::collection::vec(-20.0f64..20.0, 1..6), 1..5),
        seed_base in any::<u64>(),
    ) {
        let ctx = HeContext::new(serve_params()).expect("cpu context builds");
        assert_batched_matches_sequential(&ctx, &identity_jobs(seed_base, &values));
    }

    #[test]
    fn batching_is_bit_identical_on_sim(
        values in proptest::collection::vec(
            proptest::collection::vec(-20.0f64..20.0, 1..6), 1..5),
        seed_base in any::<u64>(),
    ) {
        let ctx = HeContext::with_backend(
            serve_params(),
            Box::new(ntt_warp::gpu::SimBackend::titan_v()),
        )
        .expect("sim context builds");
        assert_batched_matches_sequential(&ctx, &identity_jobs(seed_base, &values));
    }
}

/// A serving run's answers depend only on (tenant, seq, key_seed) —
/// never on worker count, batching mode or scheduler interleaving: the
/// same submissions through a 1-worker unbatched server and a 4-worker
/// batched server produce bitwise-equal ciphertexts.
#[test]
fn serving_results_are_independent_of_batching_and_workers() {
    let run = |workers: usize, batching: bool| {
        let ctx = HeContext::new(serve_params()).expect("context builds");
        let server = HeServer::start(
            ctx,
            ServeConfig {
                workers,
                batching,
                key_seed: 7,
                ..ServeConfig::default()
            },
        );
        let tickets: Vec<_> = (0..3u32)
            .flat_map(|t| (0..3).map(move |i| (t, i)).collect::<Vec<_>>())
            .map(|(t, i)| {
                server
                    .submit(
                        TenantId(t),
                        Request::Encrypt {
                            values: vec![f64::from(t) + 0.25 * f64::from(i), -1.0],
                        },
                    )
                    .expect("queue has room")
            })
            .collect();
        let cts: Vec<_> = tickets
            .into_iter()
            .map(
                |ticket| match ticket.wait().expect("server answers").response {
                    Response::Encrypted(ct) => ct,
                    other => panic!("expected Encrypted, got {other:?}"),
                },
            )
            .collect();
        server.shutdown();
        cts
    };
    let serial = run(1, false);
    let fleet = run(4, true);
    for (a, b) in serial.iter().zip(&fleet) {
        assert_eq!(a.components(), b.components(), "serving changed the bits");
    }
}

/// Invalid jobs are refused at the door, not queued: an `Eval` whose
/// ciphertext has no prime left to rescale into can never execute.
#[test]
fn eval_at_last_level_is_rejected_as_invalid() {
    let ctx = HeContext::new(serve_params()).expect("context builds");
    let server = HeServer::start(ctx, ServeConfig::default());
    let t = TenantId(0);

    let submit_ok = |req: Request| match server.submit(t, req).expect("valid job").wait() {
        Some(done) => done.response,
        None => panic!("server dropped a valid job"),
    };
    let Response::Encrypted(ct) = submit_ok(Request::Encrypt {
        values: vec![1.0, 2.0],
    }) else {
        panic!("expected Encrypted");
    };
    // Burn levels 3 → 2 → 1.
    let mut ct = ct;
    for _ in 0..2 {
        let Response::Evaluated(next) = submit_ok(Request::Eval {
            ct: ct.clone(),
            weights: vec![1.0],
        }) else {
            panic!("expected Evaluated");
        };
        ct = next;
    }
    assert_eq!(ct.level(), 1);
    match server.submit(
        t,
        Request::Eval {
            ct,
            weights: vec![1.0],
        },
    ) {
        Err(SubmitError::Invalid(_)) => {}
        other => panic!("expected Invalid, got {other:?}"),
    }
    let snap = server.shutdown();
    assert_eq!(snap.completed(), 3, "three valid jobs answered");
}
