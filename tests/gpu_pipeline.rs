//! GPU-simulator pipeline tests: every kernel family must be bit-exact
//! against the scalar reference on randomized shapes, and the simulator's
//! bookkeeping must satisfy its invariants.

use ntt_warp::gpu::smem::SmemConfig;
use ntt_warp::gpu::{batch::DeviceBatch, dft, high_radix, radix2, smem};
use ntt_warp::sim::{Gpu, GpuConfig};
use proptest::prelude::*;

fn setup(log_n: u32, np: usize) -> (Gpu, DeviceBatch) {
    let mut gpu = Gpu::new(GpuConfig::titan_v());
    let batch = DeviceBatch::sequential(&mut gpu, log_n, np, 60).unwrap();
    (gpu, batch)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn radix2_bit_exact_random_shapes(log_n in 4u32..=9, np in 1usize..=3) {
        let (mut gpu, batch) = setup(log_n, np);
        let rep = radix2::run(&mut gpu, &batch, radix2::ModMul::Shoup);
        prop_assert!(rep.verify(&gpu, &batch));
    }

    #[test]
    fn high_radix_bit_exact_random_shapes(
        log_n in 4u32..=9,
        log_r in 1u32..=6,
        np in 1usize..=3
    ) {
        let (mut gpu, batch) = setup(log_n, np);
        let r = 1usize << log_r.min(log_n);
        let rep = high_radix::run(&mut gpu, &batch, r);
        prop_assert!(rep.verify(&gpu, &batch));
    }

    #[test]
    fn smem_bit_exact_random_configs(
        log_n in 5u32..=10,
        split in 1u32..=8,
        t_sel in 0usize..3,
        coalesced in any::<bool>(),
        preload in any::<bool>(),
        ot in 0u32..=2,
        np in 1usize..=2
    ) {
        let (mut gpu, batch) = setup(log_n, np);
        let n1 = 1usize << split.min(log_n - 2).max(1);
        let t = [2usize, 4, 8][t_sel];
        // OT needs base^2 >= N and stages within Kernel-2.
        let n2 = batch.n() / n1;
        let ot = if (1 << ot) <= n2 { ot } else { 0 };
        let cfg = SmemConfig::new(n1)
            .per_thread(t)
            .coalesced(coalesced)
            .preload(preload)
            .ot_stages(ot);
        let rep = smem::run(&mut gpu, &batch, &cfg);
        prop_assert!(rep.verify(&gpu, &batch), "config {:?}", cfg);
    }

    #[test]
    fn dft_kernels_bit_exact(log_n in 4u32..=9, np in 1usize..=3) {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let batch = dft::DftBatch::sequential(&mut gpu, log_n, np);
        dft::run_radix2(&mut gpu, &batch);
        prop_assert!(batch.verify(&gpu));
        batch.reset_data(&mut gpu);
        dft::run_high_radix(&mut gpu, &batch, 8);
        prop_assert!(batch.verify(&gpu));
        if log_n >= 5 {
            batch.reset_data(&mut gpu);
            dft::run_smem(&mut gpu, &batch, 1 << (log_n / 2), 4);
            prop_assert!(batch.verify(&gpu));
        }
    }

    #[test]
    fn simulator_invariants_hold(log_n in 4u32..=8, np in 1usize..=3) {
        let (mut gpu, batch) = setup(log_n, np);
        let rep = radix2::run(&mut gpu, &batch, radix2::ModMul::Shoup);
        let stats = rep.merged_stats();
        let cfg = &gpu.config;
        // A transaction serves at most one lane-request per word, so there
        // are never more transactions than 8-byte requests. (The reverse
        // bound does not hold: broadcasts and the L2 path serve many
        // requests per DRAM transaction.)
        prop_assert!(stats.dram_read_transactions <= stats.useful_read_bytes / 8);
        // This kernel uses no write merging: write transactions must cover
        // the requested bytes.
        prop_assert!(
            stats.dram_write_transactions * cfg.transaction_bytes as u64
                >= stats.useful_write_bytes
        );
        // Row activations cannot exceed transactions.
        prop_assert!(stats.dram_row_activations
            <= stats.dram_read_transactions + stats.dram_write_transactions);
        // Each stage writes all data exactly once.
        prop_assert_eq!(
            stats.useful_write_bytes,
            (np * (1 << log_n) * 8 * log_n as usize) as u64
        );
        // Timing components are finite and positive.
        for l in &rep.launches {
            prop_assert!(l.timing.total_s.is_finite() && l.timing.total_s > 0.0);
            prop_assert!(l.timing.occupancy > 0.0 && l.timing.occupancy <= 1.0);
        }
    }
}

#[test]
fn all_implementations_compute_the_same_transform() {
    // One batch, every implementation, identical device output.
    let (mut gpu, batch) = setup(9, 2);
    let expected = batch.expected_ntt();

    radix2::run(&mut gpu, &batch, radix2::ModMul::Shoup);
    assert_eq!(batch.download(&gpu), expected, "radix-2");

    for r in [4usize, 16, 64] {
        batch.reset_data(&mut gpu);
        high_radix::run(&mut gpu, &batch, r);
        assert_eq!(batch.download(&gpu), expected, "high-radix {r}");
    }

    for n1 in [8usize, 32] {
        for ot in [0u32, 2] {
            batch.reset_data(&mut gpu);
            smem::run(&mut gpu, &batch, &SmemConfig::new(n1).ot_stages(ot));
            assert_eq!(batch.download(&gpu), expected, "smem n1={n1} ot={ot}");
        }
    }
}

#[test]
fn occupancy_sensitivity_matches_paper_directions() {
    // Bigger radices -> fewer resident threads; spills past the cap.
    let (mut gpu, batch) = setup(12, 2);
    let r8 = high_radix::run(&mut gpu, &batch, 8);
    batch.reset_data(&mut gpu);
    let r64 = high_radix::run(&mut gpu, &batch, 64);
    assert!(r64.min_occupancy() <= r8.min_occupancy());
    assert!(r64.launches[0].occupancy.regs_spilled > 0);
    assert_eq!(r8.launches[0].occupancy.regs_spilled, 0);
}

#[test]
fn dram_traffic_accounting_is_consistent() {
    let (mut gpu, batch) = setup(10, 2);
    let rep = smem::run(&mut gpu, &batch, &SmemConfig::new(32));
    // Reported MB equals the transaction bytes (plus spills, none here).
    let bytes: u64 = rep
        .launches
        .iter()
        .map(|l| l.stats.dram_bytes(&gpu.config))
        .sum();
    assert_eq!(rep.dram_bytes(&gpu), bytes);
    assert!(rep.dram_utilization(&gpu) > 0.0 && rep.dram_utilization(&gpu) <= 1.0);
}
