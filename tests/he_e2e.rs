//! End-to-end homomorphic-encryption tests over the NTT stack.

use ntt_warp::he::{sampling, HeContext, HeLiteParams};
use proptest::prelude::*;

fn small_params() -> HeLiteParams {
    HeLiteParams {
        log_n: 7,
        prime_bits: 50,
        levels: 3,
        scale_bits: 46,
        gadget_bits: 10,
        error_eta: 4,
    }
}

fn ctx_and_keys(seed: u64) -> (HeContext, ntt_warp::he::KeySet) {
    let ctx = HeContext::new(small_params()).expect("context builds");
    let keys = ctx.keygen(&mut sampling::seeded_rng(seed));
    (ctx, keys)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn encrypt_decrypt_preserves_values(
        values in proptest::collection::vec(-100.0f64..100.0, 1..8),
        seed in any::<u64>()
    ) {
        let (ctx, keys) = ctx_and_keys(seed);
        let mut rng = sampling::seeded_rng(seed ^ 0xABCD);
        let ct = ctx.encrypt(&ctx.encode(&values), &keys.public, &mut rng);
        let out = ctx.decode(&ctx.decrypt(&ct, &keys.secret));
        for (i, &v) in values.iter().enumerate() {
            prop_assert!((out[i] - v).abs() < 1e-5, "slot {i}: {} vs {v}", out[i]);
        }
    }

    #[test]
    fn addition_is_homomorphic(
        a in -50.0f64..50.0,
        b in -50.0f64..50.0,
        seed in any::<u64>()
    ) {
        let (ctx, keys) = ctx_and_keys(seed);
        let mut rng = sampling::seeded_rng(seed.wrapping_mul(3));
        let ca = ctx.encrypt(&ctx.encode(&[a]), &keys.public, &mut rng);
        let cb = ctx.encrypt(&ctx.encode(&[b]), &keys.public, &mut rng);
        let out = ctx.decode(&ctx.decrypt(&ctx.add(&ca, &cb), &keys.secret));
        prop_assert!((out[0] - (a + b)).abs() < 1e-4);
        let out = ctx.decode(&ctx.decrypt(&ctx.sub(&ca, &cb), &keys.secret));
        prop_assert!((out[0] - (a - b)).abs() < 1e-4);
    }

    #[test]
    fn multiplication_is_homomorphic(
        a in -10.0f64..10.0,
        b in -10.0f64..10.0,
        seed in any::<u64>()
    ) {
        let (ctx, keys) = ctx_and_keys(seed);
        let mut rng = sampling::seeded_rng(seed.wrapping_add(17));
        let ca = ctx.encrypt(&ctx.encode(&[a]), &keys.public, &mut rng);
        let cb = ctx.encrypt(&ctx.encode(&[b]), &keys.public, &mut rng);
        let prod = ctx.multiply(&ca, &cb, &keys.relin);
        prop_assert_eq!(prod.level(), ca.level() - 1);
        let out = ctx.decode(&ctx.decrypt(&prod, &keys.secret));
        prop_assert!(
            (out[0] - a * b).abs() < 1e-2,
            "{} * {} = {} (expected {})", a, b, out[0], a * b
        );
    }

    #[test]
    fn plain_multiplication_matches(
        a in -10.0f64..10.0,
        k in -10.0f64..10.0,
        seed in any::<u64>()
    ) {
        let (ctx, keys) = ctx_and_keys(seed);
        let mut rng = sampling::seeded_rng(!seed);
        let ca = ctx.encrypt(&ctx.encode(&[a]), &keys.public, &mut rng);
        let out_ct = ctx.multiply_plain(&ca, &ctx.encode(&[k]));
        let out = ctx.decode(&ctx.decrypt(&out_ct, &keys.secret));
        prop_assert!((out[0] - a * k).abs() < 1e-2);
    }
}

#[test]
fn polynomial_products_respect_negacyclic_ring() {
    // Encrypted (1 + x^(N-1)) squared = 1 + 2x^(N-1) + x^(2N-2)
    //                                 = 1 + 2x^(N-1) - x^(N-2).
    let (ctx, keys) = ctx_and_keys(99);
    let n = ctx.params().n();
    let mut coeffs = vec![0.0f64; n];
    coeffs[0] = 1.0;
    coeffs[n - 1] = 1.0;
    let mut rng = sampling::seeded_rng(100);
    let ct = ctx.encrypt(&ctx.encode(&coeffs), &keys.public, &mut rng);
    let sq = ctx.multiply(&ct, &ct, &keys.relin);
    let out = ctx.decode(&ctx.decrypt(&sq, &keys.secret));
    assert!((out[0] - 1.0).abs() < 1e-2);
    assert!((out[n - 1] - 2.0).abs() < 1e-2);
    assert!((out[n - 2] + 1.0).abs() < 1e-2, "negacyclic wrap sign");
}

#[test]
fn noise_stays_within_capacity_over_a_circuit() {
    let (ctx, keys) = ctx_and_keys(7);
    let mut rng = sampling::seeded_rng(8);
    // ((2 * 3) + (1 + 1)) via one mult and adds at matching levels.
    let c2 = ctx.encrypt(&ctx.encode(&[2.0]), &keys.public, &mut rng);
    let c3 = ctx.encrypt(&ctx.encode(&[3.0]), &keys.public, &mut rng);
    let c1 = ctx.encrypt(&ctx.encode(&[1.0]), &keys.public, &mut rng);
    let prod = ctx.multiply(&c2, &c3, &keys.relin); // level-1, 6.0
    let sum = ctx.add(&c1, &c1); // level-full, 2.0
                                 // Bring the sum down a level to match.
    let sum_down = ctx.multiply_plain(&sum, &ctx.encode(&[1.0]));
    let total = ctx.add(&prod, &sum_down);
    let out = ctx.decode(&ctx.decrypt(&total, &keys.secret));
    assert!((out[0] - 8.0).abs() < 1e-2, "got {}", out[0]);
    assert!(ctx.capacity_bits(total.level()) > 0.0);
}

#[test]
fn decryption_with_wrong_key_fails() {
    let (ctx, keys) = ctx_and_keys(1);
    let (_, wrong) = ctx_and_keys(2);
    let mut rng = sampling::seeded_rng(3);
    let ct = ctx.encrypt(&ctx.encode(&[5.0]), &keys.public, &mut rng);
    let pt = ctx.decrypt(&ct, &wrong.secret);
    // Wrong key yields uniform-looking residues mod Q (~2^150): either the
    // centered lift overflows i128 (decode panics) or the value is garbage
    // orders of magnitude away from 5.0.
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.decode(&pt)));
    match out {
        Err(_) => {} // coefficient too large to even represent
        Ok(v) => assert!((v[0] - 5.0).abs() > 1.0, "wrong key should not decrypt"),
    }
}
