//! Multi-device RNS sharding, end to end.
//!
//! Four families of checks over [`ShardedBackend`], the `K`-device
//! partition of the simulated GPU:
//!
//! * **Bit-exactness across K** — a full he-lite chain
//!   (encrypt → multiply/relinearize → rescale → rotate) on
//!   `K ∈ {2, 3, 4}` shards is bit-identical to the single-device
//!   `SimBackend` and to the host-only `CpuBackend`, over random seeds
//!   and payloads.
//! * **Link accounting** — key-switch base conversion is the one step
//!   whose operands cross shard boundaries: relinearize pays inter-device
//!   words when `K > 1` and exactly zero when `K = 1` (the degenerate
//!   single-device configuration).
//! * **Serving wiring** — the multi-worker `he-serve` stack (evaluator
//!   pool, fork-per-worker streams, batching) runs a closed multi-tenant
//!   load over a sharded context with zero failures or mismatches.
//! * **Bootstrap wiring** — the full bootstrapping pipeline (CoeffToSlot,
//!   EvalMod, SlotToCoeff: rotation-heavy, key-switch-heavy) is
//!   bit-identical on a sharded context.

use he_serve::{loadgen, ArrivalMode, HeServer, LoadConfig, ServeConfig};
use ntt_warp::core::backend::NttBackend;
use ntt_warp::core::CpuBackend;
use ntt_warp::gpu::{ShardedBackend, SimBackend};
use ntt_warp::he::{sampling, HeContext, HeLiteParams};
use proptest::prelude::*;

fn chain_params() -> HeLiteParams {
    HeLiteParams {
        log_n: 6,
        prime_bits: 50,
        levels: 3,
        scale_bits: 40,
        gadget_bits: 10,
        error_eta: 4,
    }
}

/// encrypt → multiply (tensor + relinearize) → rescale → rotate on the
/// given backend, returning the final ciphertext's raw component words —
/// the bit-exactness currency the backends are compared in.
fn run_chain(
    backend: Box<dyn NttBackend>,
    seed: u64,
    va: &[f64],
    vb: &[f64],
) -> (Vec<u64>, Vec<u64>) {
    let ctx = HeContext::with_backend(chain_params(), backend).unwrap();
    let keys = ctx.keygen(&mut sampling::seeded_rng(seed));
    let mut rng = sampling::seeded_rng(seed.wrapping_add(1));
    let a = ctx.encrypt(&ctx.encode(va), &keys.public, &mut rng);
    let b = ctx.encrypt(&ctx.encode(vb), &keys.public, &mut rng);
    let mut prod = ctx.multiply(&a, &b, &keys.relin);
    ctx.rescale(&mut prod);
    // Rotation key at the post-rescale level; g = 3 is the "rotate by
    // one slot" Galois element.
    let rtk = ctx.keygen_rotation(
        &keys.secret,
        &[3],
        &[prod.level()],
        &mut sampling::seeded_rng(seed ^ 0x9e37_79b9),
    );
    let mut rot = ctx.rotate(&prod, 3, &rtk);
    rot.sync();
    let (c0, c1) = rot.components();
    (c0.flat().to_vec(), c1.flat().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance gate: sharded chains on K ∈ {2, 3, 4} devices are
    /// bit-identical to the single-device SimBackend and to CpuBackend.
    #[test]
    fn sharded_chains_match_single_device_and_cpu(
        seed in 0u64..1_000_000,
        va in proptest::collection::vec(-4.0f64..4.0, 1..8),
        vb in proptest::collection::vec(-4.0f64..4.0, 1..8),
    ) {
        let n = 1usize << chain_params().log_n;
        let host = run_chain(Box::<CpuBackend>::default(), seed, &va, &vb);
        let sim = run_chain(Box::new(SimBackend::titan_v()), seed, &va, &vb);
        prop_assert_eq!(&host, &sim, "single-device SimBackend departs from CpuBackend");
        for k in [2usize, 3, 4] {
            let sharded = run_chain(Box::new(ShardedBackend::titan_v(k, n)), seed, &va, &vb);
            prop_assert_eq!(&host, &sharded, "ShardedBackend k={} departs from host", k);
        }
    }
}

/// Relinearize's base-conversion all-gather is what crosses the
/// inter-device link — and only when there is more than one device.
#[test]
fn key_switch_pays_link_traffic_only_when_sharded() {
    let n = 1usize << chain_params().log_n;
    for (k, expect_link) in [(1usize, false), (2, true), (4, true)] {
        let backend = ShardedBackend::titan_v(k, n);
        let mem = backend.memory_handle();
        let ctx = HeContext::with_backend(chain_params(), Box::new(backend)).unwrap();
        let keys = ctx.keygen(&mut sampling::seeded_rng(5));
        let mut rng = sampling::seeded_rng(6);
        let a = ctx.encrypt(&ctx.encode(&[1.5, -2.0]), &keys.public, &mut rng);
        let b = ctx.encrypt(&ctx.encode(&[0.5, 3.0]), &keys.public, &mut rng);
        let before = mem.lock().unwrap().link_stats();
        let _ = ctx.multiply(&a, &b, &keys.relin);
        let traffic = mem.lock().unwrap().link_stats().since(&before);
        if expect_link {
            assert!(
                traffic.words > 0,
                "k={k}: relinearize's all-gather must cross the link"
            );
        } else {
            assert_eq!(
                traffic.words, 0,
                "k=1 degenerates to a single device with no link traffic"
            );
        }
    }
}

/// The serving stack (evaluator pool, per-worker forks, batching) over a
/// sharded context: a closed multi-tenant load completes cleanly.
#[test]
fn serving_stack_runs_over_sharded_backend() {
    let n = 1usize << chain_params().log_n;
    let backend = ShardedBackend::titan_v(2, n);
    let ctx = HeContext::with_backend(chain_params(), Box::new(backend)).unwrap();
    let server = HeServer::start(ctx, ServeConfig::default());
    let report = loadgen::run(
        &server,
        &LoadConfig {
            tenants: 2,
            chains_per_tenant: 2,
            mode: ArrivalMode::Closed,
            max_values: 4,
            seed: 9,
        },
    );
    let metrics = server.shutdown();
    assert_eq!(
        report.failed, 0,
        "healthy sharded run failed jobs: {report:?}"
    );
    assert_eq!(report.rejected, 0, "closed load must not hit backpressure");
    assert_eq!(
        report.mismatches, 0,
        "decrypted results must match plaintext math"
    );
    assert!(report.completed > 0, "load ran: {report:?}");
    assert_eq!(metrics.completed(), report.completed);
}

/// The rotation- and key-switch-heavy bootstrapping pipeline is
/// bit-identical between one device and two shards.
#[test]
fn bootstrap_on_sharded_matches_single_device() {
    use ntt_warp::boot::{BootParams, Bootstrapper};
    use std::sync::Arc;

    let bp = BootParams::shallow();
    let run = |backend: Box<dyn NttBackend>| -> Vec<u64> {
        let ctx = Arc::new(HeContext::with_backend(bp.he_params(4, 50), backend).unwrap());
        let mut rng = sampling::seeded_rng(21);
        let keys = ctx.keygen(&mut rng);
        let boot = Bootstrapper::new(Arc::clone(&ctx), &keys, bp, &mut rng);
        let pt = ctx.encode_with_scale(&[0.5, -0.25], boot.input_scale());
        let ct = ctx.encrypt(&pt, &keys.public, &mut sampling::seeded_rng(22));
        let low = ctx.drop_to_level(&ct, 1);
        let mut out = boot.bootstrap(&low);
        out.sync();
        let (c0, c1) = out.components();
        let mut flat = c0.flat().to_vec();
        flat.extend_from_slice(c1.flat());
        flat
    };
    let n = 1usize << bp.he_params(4, 50).log_n;
    let sim = run(Box::new(SimBackend::titan_v()));
    let sharded = run(Box::new(ShardedBackend::titan_v(2, n)));
    assert_eq!(
        sim, sharded,
        "bootstrap pipeline departs between one device and two shards"
    );
}
