//! GPU-simulator edge shapes: degenerate batches, the smallest transforms,
//! and grids that overflow one SM (and the whole device), all asserted
//! bit-exact against the scalar `ntt_core::ct::ntt` reference.
//!
//! The mainline `gpu_pipeline` suite randomizes over comfortable shapes;
//! these tests pin the corners where indexing and partial-warp logic break
//! first.

use ntt_warp::gpu::smem::SmemConfig;
use ntt_warp::gpu::{batch::DeviceBatch, high_radix, radix2, smem};
use ntt_warp::sim::{Gpu, GpuConfig};

/// The scalar reference, computed directly with `ntt_core::ct::ntt` on the
/// batch's pristine input rows.
fn reference_ntt(batch: &DeviceBatch) -> Vec<Vec<u64>> {
    batch
        .input()
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut a = row.clone();
            ntt_warp::core::ct::ntt(&mut a, batch.table(i));
            a
        })
        .collect()
}

#[test]
fn single_prime_batch_np1() {
    // np = 1: the degenerate batch. Every kernel family must handle a
    // grid whose prime index is always zero.
    let mut gpu = Gpu::new(GpuConfig::titan_v());
    let batch = DeviceBatch::sequential(&mut gpu, 8, 1, 60).unwrap();
    let want = reference_ntt(&batch);

    radix2::run(&mut gpu, &batch, radix2::ModMul::Shoup);
    assert_eq!(batch.download(&gpu), want, "radix-2 np=1");

    batch.reset_data(&mut gpu);
    high_radix::run(&mut gpu, &batch, 16);
    assert_eq!(batch.download(&gpu), want, "high-radix-16 np=1");

    batch.reset_data(&mut gpu);
    smem::run(&mut gpu, &batch, &SmemConfig::new(16));
    assert_eq!(batch.download(&gpu), want, "smem np=1");
}

#[test]
fn smallest_log_n_radix2() {
    // The smallest transforms: N = 2 (a single butterfly) up to N = 8.
    // One warp, almost all lanes inactive — the partial-warp predication
    // path in its purest form.
    for log_n in [1u32, 2, 3] {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let batch = DeviceBatch::sequential(&mut gpu, log_n, 2, 60).unwrap();
        let want = reference_ntt(&batch);
        radix2::run(&mut gpu, &batch, radix2::ModMul::Shoup);
        assert_eq!(batch.download(&gpu), want, "radix-2 log_n={log_n}");
    }
}

#[test]
fn smallest_log_n_high_radix() {
    // High-radix with the radix clamped to the transform size.
    for (log_n, r) in [(2u32, 2usize), (2, 4), (3, 8)] {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let batch = DeviceBatch::sequential(&mut gpu, log_n, 2, 60).unwrap();
        let want = reference_ntt(&batch);
        high_radix::run(&mut gpu, &batch, r);
        assert_eq!(batch.download(&gpu), want, "high-radix-{r} log_n={log_n}");
    }
}

#[test]
fn batch_larger_than_one_sm() {
    // np * N/2 butterfly threads > max_threads_per_sm (2048 on Titan V):
    // the grid cannot fit on a single SM, so block scheduling across SMs
    // (and the occupancy model behind it) must not perturb results.
    let mut gpu = Gpu::new(GpuConfig::titan_v());
    let cfg_threads = gpu.config.max_threads_per_sm as usize;
    let (log_n, np) = (7u32, 40usize);
    assert!(
        np * (1 << log_n) / 2 > cfg_threads,
        "shape must exceed one SM's resident threads"
    );
    let batch = DeviceBatch::sequential(&mut gpu, log_n, np, 60).unwrap();
    let want = reference_ntt(&batch);
    radix2::run(&mut gpu, &batch, radix2::ModMul::Shoup);
    assert_eq!(batch.download(&gpu), want, "radix-2 multi-SM batch");
}

#[test]
fn batch_larger_than_full_device_wave() {
    // Total threads > sm_count * max_threads_per_sm (163840): the grid
    // needs multiple scheduling waves even across all 80 SMs. Use the
    // two-kernel SMEM implementation so the test stays fast.
    let mut gpu = Gpu::new(GpuConfig::titan_v());
    let device_threads = (gpu.config.sm_count * gpu.config.max_threads_per_sm) as usize;
    let (log_n, np) = (13u32, 41usize);
    assert!(
        np * (1 << log_n) / 2 > device_threads,
        "shape must exceed a full device wave"
    );
    let batch = DeviceBatch::sequential(&mut gpu, log_n, np, 60).unwrap();
    let want = reference_ntt(&batch);
    let rep = smem::run(&mut gpu, &batch, &SmemConfig::new(64));
    assert!(rep.verify(&gpu, &batch));
    assert_eq!(batch.download(&gpu), want, "smem full-device batch");
}

#[test]
fn np1_smallest_and_oversubscribed_roundtrip() {
    // Forward + inverse at the corners: iNTT(NTT(x)) = x must hold at
    // np = 1 and at the multi-SM shape, not just comfortable sizes.
    for (log_n, np) in [(1u32, 1usize), (7, 40)] {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let batch = DeviceBatch::sequential(&mut gpu, log_n, np, 60).unwrap();
        radix2::run(&mut gpu, &batch, radix2::ModMul::Shoup);
        radix2::run_inverse(&mut gpu, &batch);
        assert_eq!(
            batch.download(&gpu),
            batch.input(),
            "roundtrip log_n={log_n} np={np}"
        );
    }
}
