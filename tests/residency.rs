//! The residency state machine, end to end.
//!
//! Three families of checks:
//!
//! * **Interleaving property** — any interleaving of host reads/writes
//!   and device operations on a device-resident polynomial yields results
//!   bit-identical to a host-only run, on both the identity (CPU arena)
//!   and the simulated-GPU device memories.
//! * **Cross-substrate conformance** — `CpuBackend` and `SimBackend`
//!   agree under device-resident chains, including shapes large enough to
//!   route through the SMEM two-kernel forward path.
//! * **Zero steady-state transfers** — a resident `he-lite`
//!   encrypt → multiply → relinearize → rescale chain on `SimBackend`
//!   performs no host↔device transfers after the initial upload, and the
//!   evaluator pool lets concurrent (and nested) scheme operations
//!   proceed without serializing on one evaluator lock.

use ntt_warp::core::backend::{Evaluator, NttBackend};
use ntt_warp::core::poly::{Representation, Residency};
use ntt_warp::core::{CpuBackend, RnsPoly, RnsRing};
use ntt_warp::gpu::SimBackend;
use ntt_warp::he::{sampling, HeContext, HeLiteParams};
use proptest::prelude::*;

fn ring(n: usize, np: usize) -> RnsRing {
    RnsRing::new(n, ntt_warp::math::ntt_primes(59, 2 * n as u64, np)).unwrap()
}

fn sample(ring: &RnsRing, seed: i64) -> RnsPoly {
    let coeffs: Vec<i64> = (0..ring.degree() as i64)
        .map(|i| (seed.wrapping_mul(i + 3) % 97) - 48)
        .collect();
    RnsPoly::from_i64_coeffs(ring, &coeffs)
}

/// One step of an interleaved host/device schedule. `code` picks the
/// operation, `arg` parameterizes host writes.
fn apply_step(
    ev: &mut Evaluator,
    x: &mut RnsPoly,
    other_eval: &RnsPoly,
    other_coef: &RnsPoly,
    code: u8,
    arg: u64,
) {
    match code % 6 {
        0 => ev.to_evaluation(x),
        1 => ev.to_coefficient(x),
        2 => {
            // Representation-matched binary op.
            if x.repr() == Representation::Evaluation {
                ev.mul_pointwise(x, other_eval);
            } else {
                ev.add_assign(x, other_coef);
            }
        }
        3 => ev.negate(x),
        4 => {
            // Host write: forces a lazy download (if device-dirty), then
            // marks the device copy stale so the next device op re-uploads.
            let n = x.degree();
            let idx = (arg as usize) % n;
            let p = ev.ring().basis().primes()[0];
            x.row_mut(0)[idx] = arg % p;
        }
        _ => {
            // Explicit sync point mid-schedule (host read of a row).
            x.sync();
            let _ = x.row(0)[0];
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any interleaving of host reads/writes and device ops is
    /// bit-identical to the host-only run — on the identity arena and on
    /// the simulated GPU.
    #[test]
    fn interleavings_match_host_only_run(
        steps in proptest::collection::vec((0u8..6, any::<u64>()), 1..16),
        seed in any::<u64>(),
    ) {
        let ring = ring(32, 2);
        let x0 = sample(&ring, (seed % 1000) as i64);
        let mut oe = sample(&ring, 77);
        let oc = sample(&ring, 33);

        // Host-only reference run.
        let mut host_ev = Evaluator::cpu(&ring);
        host_ev.to_evaluation(&mut oe);
        let mut hx = x0.clone();
        for &(code, arg) in &steps {
            apply_step(&mut host_ev, &mut hx, &oe, &oc, code, arg);
        }
        hx.sync();

        // Resident runs: identity arena and simulated GPU.
        let backends: Vec<Box<dyn NttBackend>> = vec![
            Box::new(CpuBackend::default()),
            Box::new(SimBackend::titan_v()),
        ];
        for backend in backends {
            let name = backend.name();
            let mut ev = Evaluator::new(ring.plan(), backend);
            let (mut dx, mut doe, mut doc) = (x0.clone(), oe.clone(), oc.clone());
            ev.make_resident(&mut dx);
            ev.make_resident(&mut doe);
            ev.make_resident(&mut doc);
            for &(code, arg) in &steps {
                apply_step(&mut ev, &mut dx, &doe, &doc, code, arg);
            }
            dx.sync();
            prop_assert_eq!(dx.flat(), hx.flat(), "backend {}", name);
        }
    }
}

/// Cpu and Sim agree on a full device-resident chain at a shape large
/// enough that the sim's forward path routes through the SMEM two-kernel
/// implementation (N = 512 ≥ the routing floor).
#[test]
fn cpu_and_sim_agree_on_resident_chains_through_smem() {
    let ring = ring(512, 3);
    let a = sample(&ring, 5);
    let b = sample(&ring, 11);

    let run = |backend: Box<dyn NttBackend>| -> (RnsPoly, RnsPoly) {
        let mut ev = Evaluator::new(ring.plan(), backend);
        let (mut da, mut db) = (a.clone(), b.clone());
        ev.make_resident(&mut da);
        ev.make_resident(&mut db);
        let mut prod = ev.multiply(&da, &db);
        ev.to_evaluation(&mut da);
        ev.to_evaluation(&mut db);
        ev.mul_pointwise(&mut da, &db);
        ev.to_coefficient(&mut da);
        ev.rescale(&mut da);
        prod.sync();
        da.sync();
        (prod, da)
    };
    let (cpu_prod, cpu_x) = run(Box::<CpuBackend>::default());
    let (sim_prod, sim_x) = run(Box::new(SimBackend::titan_v()));
    assert_eq!(cpu_prod, sim_prod, "fused multiply");
    assert_eq!(cpu_x, sim_x, "pointwise + rescale chain");
}

fn sim_params() -> HeLiteParams {
    HeLiteParams {
        log_n: 7,
        prime_bits: 50,
        levels: 3,
        scale_bits: 46,
        gadget_bits: 10,
        error_eta: 4,
    }
}

/// The acceptance gate: a resident he-lite
/// encrypt → multiply → relinearize → rescale chain on `SimBackend`
/// reports zero host↔device transfers after the initial upload.
#[test]
fn resident_he_chain_has_zero_steady_state_transfers() {
    let ctx = HeContext::with_backend(sim_params(), Box::new(SimBackend::titan_v())).unwrap();
    assert!(ctx.is_resident());
    let keys = ctx.keygen(&mut sampling::seeded_rng(42));
    let mut rng = sampling::seeded_rng(7);
    let a = ctx.encrypt(&ctx.encode(&[2.5, -1.0]), &keys.public, &mut rng);
    let b = ctx.encrypt(&ctx.encode(&[3.0, 0.5]), &keys.public, &mut rng);
    assert_eq!(
        a.residency(),
        Residency::DeviceOnly,
        "ciphertexts stay on-device"
    );

    // Initial upload is over (keys + fresh ciphertexts + tables). The
    // steady-state window covers the whole tensor/relinearize/rescale
    // chain, twice (the second multiply also proves scratch reuse).
    let before = ctx.transfer_stats();
    let prod = ctx.multiply(&a, &b, &keys.relin);
    let prod2 = ctx.multiply(&b, &a, &keys.relin);
    let steady = ctx.transfer_stats().since(&before);
    assert_eq!(
        steady.host_transfers(),
        0,
        "steady-state multiply chain crossed the bus: {steady:?}"
    );
    assert_eq!(prod.residency(), Residency::DeviceOnly);

    // Decrypt/decode are the sync points — and the math still holds.
    let out = ctx.decode(&ctx.decrypt(&prod, &keys.secret));
    assert!((out[0] - 7.5).abs() < 1e-2, "got {}", out[0]);
    let out2 = ctx.decode(&ctx.decrypt(&prod2, &keys.secret));
    assert!((out2[0] - 7.5).abs() < 1e-2, "got {}", out2[0]);
}

/// Ciphertext::sync is the explicit sync point for component access.
#[test]
fn ciphertext_sync_exposes_components() {
    let ctx = HeContext::with_backend(sim_params(), Box::new(SimBackend::titan_v())).unwrap();
    let keys = ctx.keygen(&mut sampling::seeded_rng(1));
    let mut rng = sampling::seeded_rng(2);
    let mut ct = ctx.encrypt(&ctx.encode(&[1.0]), &keys.public, &mut rng);
    assert_eq!(ct.residency(), Residency::DeviceOnly);
    ct.sync();
    assert_eq!(ct.residency(), Residency::Mirrored { host_dirty: false });
    let (c0, c1) = ct.components();
    assert_eq!(c0.level(), c1.level());
    let _ = c0.flat(); // host read is now valid
}

/// The CPU context stays host-resident (the identity backend prefers no
/// staging) and behaves exactly as before.
#[test]
fn cpu_context_stays_host_resident() {
    let ctx = HeContext::new(sim_params()).unwrap();
    assert!(!ctx.is_resident());
    let keys = ctx.keygen(&mut sampling::seeded_rng(3));
    let mut rng = sampling::seeded_rng(4);
    let ct = ctx.encrypt(&ctx.encode(&[2.0]), &keys.public, &mut rng);
    assert_eq!(ct.residency(), Residency::HostOnly);
    assert_eq!(ctx.transfer_stats().host_transfers(), 0);
}

/// Nested checkouts take a second evaluator instead of deadlocking on a
/// single evaluator mutex (the pre-pool design would hang here).
#[test]
fn nested_operations_do_not_deadlock() {
    let ctx = HeContext::new(sim_params()).unwrap();
    let keys = ctx.keygen(&mut sampling::seeded_rng(5));
    let mut rng = sampling::seeded_rng(6);
    let a = ctx.encrypt(&ctx.encode(&[1.0]), &keys.public, &mut rng);
    let b = ctx.encrypt(&ctx.encode(&[2.0]), &keys.public, &mut rng);
    let sum = ctx.with_pooled_evaluator(|_held| {
        // One evaluator is checked out; a scheme op inside must fork or
        // reuse another, not block forever.
        ctx.add(&a, &b)
    });
    let out = ctx.decode(&ctx.decrypt(&sum, &keys.secret));
    assert!((out[0] - 3.0).abs() < 1e-4);
    assert!(
        ctx.evaluator_count() >= 2,
        "nested checkout must use a second evaluator (got {})",
        ctx.evaluator_count()
    );
}

/// Two threads drive one context concurrently; both make progress and
/// the results are correct. (With the old single evaluator mutex they
/// serialized completely; with the pool each thread gets its own
/// evaluator sharing one plan and one device memory.)
#[test]
fn concurrent_threads_share_one_context() {
    for backend in [
        Box::new(CpuBackend::default()) as Box<dyn NttBackend>,
        Box::new(SimBackend::titan_v()),
    ] {
        let ctx = HeContext::with_backend(sim_params(), backend).unwrap();
        let keys = ctx.keygen(&mut sampling::seeded_rng(8));
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|t| {
                    let (ctx, keys, barrier) = (&ctx, &keys, &barrier);
                    s.spawn(move || {
                        let mut rng = sampling::seeded_rng(100 + t);
                        let v = 2.0 + t as f64;
                        barrier.wait();
                        let a = ctx.encrypt(&ctx.encode(&[v]), &keys.public, &mut rng);
                        let b = ctx.encrypt(&ctx.encode(&[3.0]), &keys.public, &mut rng);
                        let prod = ctx.multiply(&a, &b, &keys.relin);
                        let out = ctx.decode(&ctx.decrypt(&prod, &keys.secret));
                        assert!((out[0] - 3.0 * v).abs() < 1e-2, "thread {t}: {}", out[0]);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        assert!(ctx.evaluator_count() >= 1);
    }
}

/// The flagship residency gate: rotation keys and DFT diagonal
/// plaintexts upload once at `Bootstrapper::new`, EvalMod constants on
/// the first bootstrap — and from then on repeated `bootstrap()` calls
/// are pure device work. Three steady-state bootstraps cross the bus
/// zero times.
#[test]
fn repeated_bootstrap_has_zero_steady_state_transfers() {
    use ntt_warp::boot::{BootParams, Bootstrapper};
    use ntt_warp::gpu::SimBackend;
    use std::sync::Arc;

    let bp = BootParams::shallow();
    let ctx = Arc::new(
        HeContext::with_backend(bp.he_params(4, 50), Box::new(SimBackend::titan_v()))
            .expect("sim context builds"),
    );
    let mut rng = sampling::seeded_rng(41);
    let keys = ctx.keygen(&mut rng);
    let boot = Bootstrapper::new(Arc::clone(&ctx), &keys, bp, &mut rng);
    let pt = ctx.encode_with_scale(&[0.5, -0.25, 0.75], boot.input_scale());
    let ct = ctx.encrypt(&pt, &keys.public, &mut sampling::seeded_rng(42));
    let low = ctx.drop_to_level(&ct, 1);
    assert_eq!(low.residency(), Residency::DeviceOnly);

    // Warm-up: populates the EvalMod constant-plaintext cache (counted
    // uploads) and any lazily-built twiddle tables.
    let warm = boot.bootstrap(&low);
    assert_eq!(warm.residency(), Residency::DeviceOnly);

    // Steady state: every rotation key, diagonal and constant is
    // resident; three full pipelines move zero words over the bus.
    let before = ctx.transfer_stats();
    for _ in 0..3 {
        let out = boot.bootstrap(&low);
        assert_eq!(out.residency(), Residency::DeviceOnly);
    }
    let steady = ctx.transfer_stats().since(&before);
    assert_eq!(
        steady.host_transfers(),
        0,
        "steady-state bootstrap crossed the bus: {steady:?}"
    );
}
