//! The paper's headline shapes, asserted at reduced scale.
//!
//! These exercise the same experiment functions as the `figures` binary
//! but at sizes CI can afford (the full paper-scale sweep is run once and
//! recorded in EXPERIMENTS.md).

use ntt_bench::experiments as ex;

const LOG_N: u32 = 12;
const NP: usize = 4;

#[test]
fn batching_saturates_bandwidth() {
    // Fig. 3(a): per-NTT time improves with batch size and utilization
    // approaches the calibrated ceiling.
    let rows = ex::fig3a(LOG_N, &[1, 2, 4]);
    assert!(rows[2].per_ntt_us < rows[0].per_ntt_us);
    assert!(rows[2].utilization > rows[0].utilization);
    assert!(rows[2].utilization <= 0.88);
}

#[test]
fn high_radix_cuts_traffic_until_registers_bite() {
    // Fig. 4's left flank: higher radix means fewer DRAM round trips.
    // (The right flank — radix-64/128 losing to spills and occupancy —
    // needs a saturated grid; it is asserted at paper scale in
    // EXPERIMENTS.md and by the occupancy unit tests.)
    let rows = ex::fig4(LOG_N, NP, &[2, 16]);
    let (r2, r16) = (&rows[0], &rows[1]);
    assert!(r16.time_us < r2.time_us, "radix-16 beats radix-2");
    assert!(r16.dram_mb < r2.dram_mb);
}

#[test]
fn ntt_needs_more_registers_than_dft() {
    // Fig. 4(c) vs 5(c): the NTT thread's prime/companion state costs
    // registers, hence occupancy, at every radix. (End-to-end occupancy
    // only separates once the grid saturates the machine.)
    for r in [8usize, 16, 32, 64] {
        assert!(
            ntt_warp::gpu::high_radix::ntt_regs_per_thread(r)
                > ntt_warp::gpu::dft::dft_regs_per_thread(r)
        );
    }
    let ntt = ex::fig4(LOG_N, NP, &[32]);
    let dft = ex::fig5(LOG_N, NP, &[32]);
    assert!(ntt[0].occupancy <= dft[0].occupancy);
}

#[test]
fn coalescing_and_preload_help() {
    // Fig. 7 / Fig. 9 mechanisms: block-merged Kernel-1 loads avoid the
    // scattered L2 path; preloading twiddles into SMEM removes per-
    // butterfly L2 traffic. (End-to-end time gaps need paper scale.)
    use ntt_warp::gpu::smem::{self, SmemConfig};
    use ntt_warp::gpu::DeviceBatch;
    use ntt_warp::sim::{Gpu, GpuConfig};
    let mut gpu = Gpu::new(GpuConfig::titan_v());
    let batch = DeviceBatch::sequential(&mut gpu, LOG_N, NP, 60).unwrap();
    let coal = smem::run(&mut gpu, &batch, &SmemConfig::new(32));
    batch.reset_data(&mut gpu);
    let uncoal = smem::run(&mut gpu, &batch, &SmemConfig::new(32).coalesced(false));
    assert!(
        uncoal.launches[0].timing.t_l2_s > coal.launches[0].timing.t_l2_s,
        "uncoalesced Kernel-1 pays more L2 time"
    );
    batch.reset_data(&mut gpu);
    let direct = smem::run(&mut gpu, &batch, &SmemConfig::new(32).preload(false));
    assert!(
        direct.launches[0].stats.l2_read_transactions > coal.launches[0].stats.l2_read_transactions,
        "direct twiddle fetches generate more L2 traffic than preload"
    );
}

#[test]
fn ot_trades_traffic_for_modmuls() {
    // Fig. 12(c): OT cuts DRAM bytes at every N.
    for (_, without, with) in ex::fig12(&[11, 12], NP) {
        assert!(with.dram_mb < without.dram_mb);
    }
}

#[test]
fn table2_speedup_hierarchy() {
    // Table II: SMEM beats radix-2, OT beats plain SMEM on traffic and
    // does not lose time.
    for (log_n, r2, s, s_ot) in ex::table2(&[LOG_N], NP) {
        assert!(
            s.time_us < r2.time_us,
            "logN={log_n}: smem {} vs radix2 {}",
            s.time_us,
            r2.time_us
        );
        assert!(s_ot.time_us <= s.time_us * 1.02);
        assert!(s_ot.dram_mb < s.dram_mb);
    }
}

#[test]
fn fpga_comparison_direction() {
    // §VIII: the GPU wins by a healthy factor at bootstrappable sizes.
    let rows = ex::fpga_comparison(14, &[4]);
    assert!(rows[0].3 > 1.0, "GPU should beat the FPGA model");
}

#[test]
fn wordsize_tradeoff_is_nearly_neutral() {
    // §IV: halving the word size doubles np — close to a wash.
    let rows = ex::wordsize(12);
    let ratio = rows[1].time_us / rows[0].time_us;
    assert!((0.7..1.4).contains(&ratio), "ratio {ratio}");
}

#[test]
fn ot_base_sweep_minimizes_midrange() {
    // §VII: tiny bases explode modmuls, huge bases explode table bytes.
    let rows = ex::ot_base_sweep(12, 2);
    let by_base = |b: usize| rows.iter().find(|r| r.0 == b).expect("base present");
    assert!(by_base(2).2 > by_base(1024).2, "base-2 needs more modmuls");
    assert!(
        by_base(8192).1 > by_base(1024).1,
        "base-8192 stores more entries"
    );
}
