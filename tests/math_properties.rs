//! Property tests pinning every modular-multiplication strategy to the
//! native `u128 %` reduction on random 40–62-bit primes.
//!
//! The paper's entire correctness story rests on Shoup / Barrett /
//! Montgomery producing bit-identical results to the schoolbook reduction
//! for *every* operand pair and *every* NTT-class modulus — these
//! properties draw the modulus itself at random (not just from the
//! NTT-friendly chains the transform tests use), so reduction bugs that
//! depend on the magnitude or bit pattern of `p` get caught here.

use ntt_warp::math::{is_prime, mont::Montgomery, shoup, Barrett, ShoupMul};
use proptest::prelude::*;

/// The largest prime at or below `start` (scanning odd candidates down).
/// Prime gaps below 2^62 are tiny, so this terminates in a few dozen
/// Miller–Rabin calls.
fn prime_at_or_below(start: u64) -> u64 {
    let mut c = start | 1;
    loop {
        if is_prime(c) {
            return c;
        }
        c -= 2;
    }
}

/// A prime with exactly `bits` bits, positioned pseudo-randomly in the top
/// half of the range by `seed`.
fn random_prime(bits: u32, seed: u64) -> u64 {
    let lo = 1u64 << (bits - 1);
    let hi = (1u64 << bits) - 1;
    // Keep the scan start in [lo + 2^(bits-2), hi] so the result always has
    // exactly `bits` bits even after scanning downward.
    let start = lo + (lo / 2) + seed % (hi - lo - lo / 2);
    prime_at_or_below(start)
}

/// The oracle: schoolbook 128-bit multiply-then-divide.
fn native(a: u64, b: u64, p: u64) -> u64 {
    ((a as u128 * b as u128) % p as u128) as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn barrett_matches_native(
        bits in 40u32..=62,
        seed in any::<u64>(),
        x in any::<u64>(),
        y in any::<u64>()
    ) {
        let p = random_prime(bits, seed);
        let (a, b) = (x % p, y % p);
        let barrett = Barrett::new(p);
        prop_assert_eq!(barrett.mul(a, b), native(a, b, p));
        prop_assert_eq!(barrett.reduce_u128(a as u128 * b as u128), native(a, b, p));
        prop_assert_eq!(barrett.reduce(x), x % p);
    }

    #[test]
    fn shoup_matches_native(
        bits in 40u32..=62,
        seed in any::<u64>(),
        x in any::<u64>(),
        y in any::<u64>()
    ) {
        let p = random_prime(bits, seed);
        let (a, w) = (x % p, y % p);
        let m = ShoupMul::new(w, p);
        prop_assert_eq!(m.mul(a), native(a, w, p));
        // The Harvey-lazy variant stays in [0, 2p) and agrees mod p.
        let lazy = m.mul_lazy(a);
        prop_assert!(lazy < 2 * p, "lazy result {lazy} outside [0, 2p)");
        prop_assert_eq!(lazy % p, native(a, w, p));
        // The free-function form used inside the GPU kernels agrees too.
        prop_assert_eq!(
            shoup::mul_shoup(a, w, m.companion(), p),
            native(a, w, p)
        );
    }

    #[test]
    fn montgomery_matches_native(
        bits in 40u32..=62,
        seed in any::<u64>(),
        x in any::<u64>(),
        y in any::<u64>()
    ) {
        let p = random_prime(bits, seed);
        let (a, b) = (x % p, y % p);
        let mont = Montgomery::new(p);
        // Round trip through the Montgomery domain is the identity.
        prop_assert_eq!(mont.from_mont(mont.to_mont(a)), a);
        prop_assert_eq!(
            mont.from_mont(mont.mul(mont.to_mont(a), mont.to_mont(b))),
            native(a, b, p)
        );
    }

    #[test]
    fn all_strategies_agree_with_each_other(
        bits in 40u32..=62,
        seed in any::<u64>(),
        x in any::<u64>(),
        y in any::<u64>()
    ) {
        let p = random_prime(bits, seed);
        let (a, b) = (x % p, y % p);
        let want = native(a, b, p);
        prop_assert_eq!(Barrett::new(p).mul(a, b), want);
        prop_assert_eq!(ShoupMul::new(b, p).mul(a), want);
        let mont = Montgomery::new(p);
        prop_assert_eq!(mont.from_mont(mont.mul(mont.to_mont(a), mont.to_mont(b))), want);
        prop_assert_eq!(ntt_warp::math::mul_mod(a, b, p), want);
    }
}

#[test]
fn boundary_operands_at_extreme_moduli() {
    // The lazy-butterfly bound is 62 bits: exercise the largest legal
    // modulus plus the smallest in range, with operands at the edges.
    for p in [
        prime_at_or_below((1 << 62) - 1),
        prime_at_or_below((1 << 40) - 1),
        (1 << 40) + 15,        // smallest prime above 2^40
        0x0FFF_FFFF_FFFC_0001, // largest 60-bit prime ≡ 1 mod 2^18
    ] {
        assert!(is_prime(p), "{p} must be prime");
        let barrett = Barrett::new(p);
        let mont = Montgomery::new(p);
        for &a in &[0u64, 1, 2, p / 2, p - 2, p - 1] {
            for &b in &[0u64, 1, 2, p / 2, p - 2, p - 1] {
                let want = native(a, b, p);
                assert_eq!(barrett.mul(a, b), want, "barrett a={a} b={b} p={p}");
                assert_eq!(ShoupMul::new(b, p).mul(a), want, "shoup a={a} b={b} p={p}");
                assert_eq!(
                    mont.from_mont(mont.mul(mont.to_mont(a), mont.to_mont(b))),
                    want,
                    "mont a={a} b={b} p={p}"
                );
            }
        }
    }
}
