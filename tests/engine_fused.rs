//! The fused lazy-reduction execution engine against the strict path.
//!
//! The engine (`ntt_core::engine`) runs polynomial products as
//! `ntt_lazy → lazy pointwise → intt_lazy` with a single final reduction.
//! These suites pin it, property-based, to the pre-engine strict pipeline
//! (`ntt → mul_mod pointwise → intt`, every stage fully reduced), cover
//! the worst-case inputs allowed by the `[0, 4p)` Harvey bound, and check
//! that the residue-parallel path is bit-deterministic across thread
//! counts.

use ntt_warp::core::engine::{NttExecutor, ThreadPolicy};
use ntt_warp::core::poly::Representation;
use ntt_warp::core::{ct, NegacyclicRing, NttTable, Polynomial, RnsPoly, RnsRing};
use proptest::prelude::*;

/// The seed's strict single-prime multiply, kept verbatim as the oracle.
fn strict_multiply(table: &NttTable, a: &[u64], b: &[u64]) -> Vec<u64> {
    let p = table.modulus();
    let mut na = a.to_vec();
    let mut nb = b.to_vec();
    ct::ntt(&mut na, table);
    ct::ntt(&mut nb, table);
    let mut prod: Vec<u64> = na
        .iter()
        .zip(&nb)
        .map(|(&x, &y)| ntt_warp::math::mul_mod(x, y, p))
        .collect();
    ct::intt(&mut prod, table);
    prod
}

fn pseudo_random_input(n: usize, p: u64, seed: u64) -> Vec<u64> {
    (0..n as u64)
        .map(|i| {
            (seed | 1)
                .wrapping_mul(i.wrapping_add(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(seed >> 13)
                % p
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fused vs strict, random 50–62-bit primes, log_n ∈ 1..=11 (the
    /// cheap bulk of the sweep; 12..=14 are pinned below).
    #[test]
    fn fused_matches_strict_small((log_n, bits) in (1u32..=11, 50u32..=62), seed in any::<u64>()) {
        let n = 1usize << log_n;
        let table = NttTable::new_with_bits(n, bits).unwrap();
        let ring = NegacyclicRing::new(n, table.modulus()).unwrap();
        let a = pseudo_random_input(n, table.modulus(), seed);
        let b = pseudo_random_input(n, table.modulus(), seed.rotate_left(17) ^ 0xDEAD_BEEF);
        let expect = strict_multiply(&table, &a, &b);
        let mut ex = NttExecutor::new(ThreadPolicy::Single);
        let got = ex.negacyclic_multiply(
            &ring,
            &Polynomial::from_coeffs(a, n),
            &Polynomial::from_coeffs(b, n),
        );
        prop_assert_eq!(got.coeffs(), &expect[..]);
    }

    /// Fused RNS multiply vs the strict per-limb pipeline on random bases.
    #[test]
    fn fused_rns_matches_strict(
        (log_n, bits, np) in (2u32..=9, 50u32..=62, 1usize..=4),
        seed in any::<u64>(),
    ) {
        let n = 1usize << log_n;
        let primes = ntt_warp::math::ntt_primes(bits, 2 * n as u64, np);
        let ring = RnsRing::new(n, primes.clone()).unwrap();
        let mut a = RnsPoly::zero(&ring);
        let mut b = RnsPoly::zero(&ring);
        for (i, &p) in primes.iter().enumerate() {
            a.row_mut(i).copy_from_slice(&pseudo_random_input(n, p, seed ^ i as u64));
            b.row_mut(i).copy_from_slice(&pseudo_random_input(n, p, seed.rotate_right(9) ^ (i as u64) << 8));
        }
        let got = ring.multiply(&a, &b); // routed through the fused engine
        prop_assert_eq!(got.repr(), Representation::Coefficient);
        for (i, &p) in primes.iter().enumerate() {
            let t = ring.ring(i).table();
            let expect = strict_multiply(t, a.row(i), b.row(i));
            prop_assert_eq!(got.row(i), &expect[..], "limb {} (p = {})", i, p);
        }
    }
}

/// The expensive tail of the size sweep (log_n ∈ 12..=14), one seed each.
#[test]
fn fused_matches_strict_large_sizes() {
    for (log_n, bits) in [(12u32, 50u32), (13, 55), (14, 62)] {
        let n = 1usize << log_n;
        let table = NttTable::new_with_bits(n, bits).unwrap();
        let ring = NegacyclicRing::new(n, table.modulus()).unwrap();
        let a = pseudo_random_input(n, table.modulus(), 0xC0FF_EE00 + u64::from(log_n));
        let b = pseudo_random_input(n, table.modulus(), 0xBAAD_F00D ^ u64::from(bits));
        let expect = strict_multiply(&table, &a, &b);
        let mut ex = NttExecutor::new(ThreadPolicy::Single);
        let got = ex.negacyclic_multiply(
            &ring,
            &Polynomial::from_coeffs(a, n),
            &Polynomial::from_coeffs(b, n),
        );
        assert_eq!(got.coeffs(), &expect[..], "log_n = {log_n}, bits = {bits}");
    }
}

/// Worst-case magnitudes: all-(p-1) operands under the largest 62-bit
/// NTT-friendly prime — the inputs that push Harvey intermediates right up
/// against the `4p < 2^64` lazy bound.
#[test]
fn fused_survives_worst_case_near_lazy_bound() {
    for log_n in [4u32, 8, 12] {
        let n = 1usize << log_n;
        let p = ntt_warp::math::ntt_prime(62, 2 * n as u64).expect("62-bit NTT prime exists");
        assert!(u128::from(p) < 1u128 << 62, "4p must stay below 2^64");
        let table = NttTable::new(n, p).unwrap();
        let ring = NegacyclicRing::new(n, p).unwrap();
        let a = vec![p - 1; n];
        let expect = strict_multiply(&table, &a, &a);
        let mut ex = NttExecutor::new(ThreadPolicy::Single);
        let am = Polynomial::from_coeffs(a, n);
        let got = ex.negacyclic_multiply(&ring, &am, &am);
        assert_eq!(got.coeffs(), &expect[..], "log_n = {log_n}");
    }
}

/// Residue-parallel determinism: 1 thread and N threads produce
/// bit-identical products (limbs are independent mod their own primes, so
/// this must hold exactly, not approximately).
#[test]
fn threaded_execution_is_deterministic() {
    // Large enough that the engine's minimum-work-per-thread cutoff does
    // not collapse the run to one thread: the parallel branch really runs.
    let n = 8192;
    let ring = RnsRing::new(n, ntt_warp::math::ntt_primes(59, 2 * n as u64, 8)).unwrap();
    let mut a = RnsPoly::zero(&ring);
    let mut b = RnsPoly::zero(&ring);
    for i in 0..8 {
        let p = ring.basis().primes()[i];
        a.row_mut(i)
            .copy_from_slice(&pseudo_random_input(n, p, 0x1111 * (i as u64 + 1)));
        b.row_mut(i)
            .copy_from_slice(&pseudo_random_input(n, p, 0x7777 ^ (i as u64) << 20));
    }
    let mut single = NttExecutor::new(ThreadPolicy::Single);
    let reference = single.rns_multiply(&ring, &a, &b);
    for threads in [2usize, 3, 5, 8, 16] {
        let mut ex = NttExecutor::new(ThreadPolicy::Fixed(threads));
        assert_eq!(
            ex.rns_multiply(&ring, &a, &b),
            reference,
            "{threads} threads"
        );
        // Batched transforms must be thread-count-invariant too.
        let mut ta = a.clone();
        ex.forward_rows(&ring, ta.flat_mut());
        let mut sa = a.clone();
        single.forward_rows(&ring, sa.flat_mut());
        assert_eq!(ta, sa, "forward batch, {threads} threads");
    }
}

/// Steady-state multiplies reuse the workspace: zero buffer growth after
/// the first (warmup) call, across both the single-prime and RNS paths.
#[test]
fn steady_state_multiply_does_not_allocate() {
    let n = 512;
    let ring = RnsRing::new(n, ntt_warp::math::ntt_primes(55, 2 * n as u64, 4)).unwrap();
    let mut a = RnsPoly::zero(&ring);
    let mut b = RnsPoly::zero(&ring);
    for i in 0..4 {
        let p = ring.basis().primes()[i];
        a.row_mut(i).copy_from_slice(&pseudo_random_input(n, p, 3));
        b.row_mut(i).copy_from_slice(&pseudo_random_input(n, p, 5));
    }
    let mut ex = NttExecutor::new(ThreadPolicy::Single);
    let mut out = RnsPoly::zero(&ring);
    ex.rns_multiply_into(&ring, &a, &b, &mut out);
    let warm = ex.workspace().reallocs();
    assert!(warm > 0, "warmup should have grown the workspace");
    for _ in 0..16 {
        ex.rns_multiply_into(&ring, &a, &b, &mut out);
    }
    assert_eq!(
        ex.workspace().reallocs(),
        warm,
        "steady state must not reallocate"
    );
}
