//! Backend conformance: every registered [`NttBackend`] must compute the
//! same transforms, bit for bit.
//!
//! The suite runs three families of checks against **each** backend
//! (currently `CpuBackend` and the simulated-GPU `SimBackend`):
//!
//! * *fused ≡ strict* — `multiply_batch` against the seed's strict
//!   `ntt → mul_mod → intt` pipeline, property-based over random primes
//!   and sizes;
//! * *all-(p−1) bound* — worst-case magnitudes under the largest 62-bit
//!   NTT-friendly prime (the inputs that push Harvey lazy intermediates
//!   against the `4p < 2^64` bound on the CPU path);
//! * *thread determinism* — `CpuBackend` output is bit-identical for every
//!   thread policy.
//!
//! Plus the cross-substrate pin: `CpuBackend` ≡ `SimBackend` on every
//! trait operation, including stacked buffer-of-digits batches and the
//! full `he-lite` pipeline behind `HeContext::with_backend` — which on
//! `SimBackend` now runs **device-resident** (keys and ciphertexts live
//! in simulated GMEM; relinearization decomposes and accumulates on the
//! device), so the pin also covers the residency layer end to end.
//! Interleaved host/device schedules are property-tested separately in
//! `tests/residency.rs`.

use ntt_warp::core::backend::{CpuBackend, Evaluator, LimbBatch, NttBackend, RingPlan};
use ntt_warp::core::engine::ThreadPolicy;
use ntt_warp::core::{ct, RnsPoly, RnsRing};
use ntt_warp::gpu::SimBackend;
use proptest::prelude::*;

/// Every execution substrate under test, freshly constructed.
fn registry() -> Vec<Box<dyn NttBackend>> {
    vec![
        Box::new(CpuBackend::default()),
        Box::new(SimBackend::titan_v()),
    ]
}

fn ring_with(n: usize, bits: u32, np: usize) -> RnsRing {
    RnsRing::new(n, ntt_warp::math::ntt_primes(bits, 2 * n as u64, np)).unwrap()
}

fn pseudo_random_rows(ring: &RnsRing, seed: u64) -> RnsPoly {
    let mut x = RnsPoly::zero(ring);
    for i in 0..ring.np() {
        let p = ring.basis().primes()[i];
        for (j, v) in x.row_mut(i).iter_mut().enumerate() {
            *v = (seed | 1)
                .wrapping_mul((j as u64).wrapping_add(0x9E37_79B9_7F4A_7C15))
                .wrapping_add((i as u64) << 40)
                % p;
        }
    }
    x
}

/// The seed's strict per-limb pipeline, kept verbatim as the oracle.
fn strict_multiply(ring: &RnsRing, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
    let mut out = RnsPoly::zero_at_level(ring, a.level());
    for i in 0..a.level() {
        let t = ring.ring(i).table();
        let mut na = a.row(i).to_vec();
        let mut nb = b.row(i).to_vec();
        ct::ntt(&mut na, t);
        ct::ntt(&mut nb, t);
        let mut prod: Vec<u64> = na
            .iter()
            .zip(&nb)
            .map(|(&x, &y)| ntt_warp::math::mul_mod(x, y, t.modulus()))
            .collect();
        ct::intt(&mut prod, t);
        out.row_mut(i).copy_from_slice(&prod);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fused multiply ≡ strict pipeline, for every backend, over random
    /// primes/sizes/batch widths.
    #[test]
    fn every_backend_multiply_matches_strict(
        (log_n, bits, np) in (2u32..=7, 50u32..=61, 1usize..=3),
        seed in any::<u64>(),
    ) {
        let ring = ring_with(1 << log_n, bits, np);
        let plan = RingPlan::new(&ring);
        let a = pseudo_random_rows(&ring, seed);
        let b = pseudo_random_rows(&ring, seed.rotate_left(21) ^ 0xF00D);
        let strict = strict_multiply(&ring, &a, &b);
        for mut be in registry() {
            let mut out = RnsPoly::zero(&ring);
            be.multiply_batch(&plan, a.flat(), b.flat(), LimbBatch::from_poly(&mut out));
            prop_assert_eq!(out.flat(), strict.flat(), "backend {}", be.name());
        }
    }

    /// Forward/inverse round trips are exact on every backend, and forward
    /// outputs agree with the scalar reference.
    #[test]
    fn every_backend_roundtrips_and_matches_reference(
        (log_n, np) in (2u32..=7, 1usize..=3),
        seed in any::<u64>(),
    ) {
        let ring = ring_with(1 << log_n, 59, np);
        let plan = RingPlan::new(&ring);
        let x = pseudo_random_rows(&ring, seed);
        let mut reference = x.clone();
        for i in 0..np {
            ct::ntt(reference.row_mut(i), ring.ring(i).table());
        }
        for mut be in registry() {
            let mut f = x.clone();
            be.forward_batch(&plan, LimbBatch::from_poly(&mut f));
            prop_assert_eq!(f.flat(), reference.flat(), "forward, backend {}", be.name());
            be.inverse_batch(&plan, LimbBatch::from_poly(&mut f));
            prop_assert_eq!(f.flat(), x.flat(), "roundtrip, backend {}", be.name());
        }
    }
}

/// Bootstrapping-scale conformance: forward ≡ strict CT reference and
/// `inverse ∘ forward` = id on **every** backend for N ∈ {2^12..2^17} —
/// the sizes where the Sim auto-router weighs the hierarchical 4-step
/// plan against the two-kernel SMEM split. One backend instance per
/// substrate is reused across sizes so the Sim calibrates each shape
/// once (the verdict cache is per backend family).
#[test]
fn every_backend_agrees_at_bootstrap_scale() {
    let mut backends = registry();
    for log_n in 12u32..=17 {
        let n = 1usize << log_n;
        let ring = ring_with(n, 59, 1);
        let plan = RingPlan::new(&ring);
        let x = pseudo_random_rows(&ring, 0xB007_0000 + u64::from(log_n));
        let mut reference = x.clone();
        ct::ntt(reference.row_mut(0), ring.ring(0).table());
        for be in &mut backends {
            let mut f = x.clone();
            be.forward_batch(&plan, LimbBatch::from_poly(&mut f));
            assert_eq!(
                f.flat(),
                reference.flat(),
                "forward, N=2^{log_n}, backend {}",
                be.name()
            );
            be.inverse_batch(&plan, LimbBatch::from_poly(&mut f));
            assert_eq!(
                f.flat(),
                x.flat(),
                "roundtrip, N=2^{log_n}, backend {}",
                be.name()
            );
        }
    }
}

/// Cpu ≡ Sim under a device-resident chain at N = 2^16 (the deep
/// bootstrapping ring): forward → pointwise-square → negate → inverse,
/// all device-side on the Sim, must be bit-identical to the host-only
/// CPU run.
#[test]
fn cpu_and_sim_agree_on_resident_chain_at_deep_ring() {
    use ntt_warp::core::backend::Evaluator;
    let ring = ring_with(1 << 16, 59, 2);
    let x = pseudo_random_rows(&ring, 0xDEE9);

    let chain = |ev: &mut Evaluator| -> RnsPoly {
        let mut a = x.clone();
        let mut be = x.clone();
        ev.make_resident(&mut a);
        ev.make_resident(&mut be);
        ev.to_evaluation(&mut a);
        ev.to_evaluation(&mut be);
        ev.mul_pointwise(&mut a, &be);
        ev.negate(&mut a);
        ev.to_coefficient(&mut a);
        a.sync();
        a
    };

    let cpu = chain(&mut Evaluator::cpu(&ring));
    let mut sim_ev = Evaluator::with_backend(&ring, Box::new(SimBackend::titan_v()));
    let sim = chain(&mut sim_ev);
    assert_eq!(cpu.flat(), sim.flat(), "resident chain at N=2^16");
}

/// Worst-case magnitudes: all-(p−1) rows under the largest 62-bit
/// NTT-friendly prime, on every backend.
#[test]
fn every_backend_survives_all_p_minus_one_at_lazy_bound() {
    let n = 64usize;
    let p = ntt_warp::math::ntt_prime(62, 2 * n as u64).expect("62-bit NTT prime exists");
    let ring = RnsRing::new(n, vec![p]).unwrap();
    let plan = RingPlan::new(&ring);
    let mut a = RnsPoly::zero(&ring);
    a.row_mut(0).fill(p - 1);
    let strict = strict_multiply(&ring, &a, &a);
    for mut be in registry() {
        let mut out = RnsPoly::zero(&ring);
        be.multiply_batch(&plan, a.flat(), a.flat(), LimbBatch::from_poly(&mut out));
        assert_eq!(out.flat(), strict.flat(), "backend {}", be.name());
    }
}

/// CpuBackend is bit-deterministic across thread policies (and therefore
/// stays pinned to SimBackend regardless of `NTT_WARP_THREADS`).
#[test]
fn cpu_backend_thread_policies_are_bit_identical() {
    let ring = ring_with(256, 59, 4);
    let plan = RingPlan::new(&ring);
    let a = pseudo_random_rows(&ring, 0xAB);
    let b = pseudo_random_rows(&ring, 0xCD);
    let mut reference = RnsPoly::zero(&ring);
    CpuBackend::new(ThreadPolicy::Single).multiply_batch(
        &plan,
        a.flat(),
        b.flat(),
        LimbBatch::from_poly(&mut reference),
    );
    for threads in [2usize, 3, 8] {
        let mut be = CpuBackend::new(ThreadPolicy::Fixed(threads));
        let mut out = RnsPoly::zero(&ring);
        be.multiply_batch(&plan, a.flat(), b.flat(), LimbBatch::from_poly(&mut out));
        assert_eq!(out, reference, "{threads} threads");
        let mut f = a.clone();
        be.forward_batch(&plan, LimbBatch::from_poly(&mut f));
        let mut fs = a.clone();
        CpuBackend::new(ThreadPolicy::Single).forward_batch(&plan, LimbBatch::from_poly(&mut fs));
        assert_eq!(f, fs, "forward batch, {threads} threads");
    }
}

/// Cpu ≡ Sim on pointwise and on stacked (buffer-of-digits) batches — the
/// exact shape `he-lite` key switching submits.
#[test]
fn cpu_and_sim_agree_on_stacked_digit_batches() {
    let ring = ring_with(32, 59, 3);
    let plan = RingPlan::new(&ring);
    let polys: Vec<RnsPoly> = (0..4)
        .map(|k| pseudo_random_rows(&ring, 0x51 * k + 7))
        .collect();
    let stacked: Vec<u64> = polys.iter().flat_map(|p| p.flat().to_vec()).collect();

    let mut cpu = CpuBackend::default();
    let mut sim = SimBackend::titan_v();
    let (mut hc, mut hs) = (stacked.clone(), stacked.clone());
    cpu.forward_batch(&plan, LimbBatch::new(&mut hc, 32, 3));
    sim.forward_batch(&plan, LimbBatch::new(&mut hs, 32, 3));
    assert_eq!(hc, hs, "stacked forward");

    // Pointwise on the transformed stack (rhs = the stack itself).
    let rhs = hc.clone();
    cpu.pointwise_batch(&plan, LimbBatch::new(&mut hc, 32, 3), &rhs);
    sim.pointwise_batch(&plan, LimbBatch::new(&mut hs, 32, 3), &rhs);
    assert_eq!(hc, hs, "stacked pointwise");

    cpu.inverse_batch(&plan, LimbBatch::new(&mut hc, 32, 3));
    sim.inverse_batch(&plan, LimbBatch::new(&mut hs, 32, 3));
    assert_eq!(hc, hs, "stacked inverse");
}

/// The full `he-lite` pipeline (keygen, encrypt, multiply/relinearize/
/// rescale, decrypt) produces the same ciphertexts and plaintexts on both
/// substrates — the Evaluator swap really is one line. The Sim run is
/// device-resident end to end (the CPU run is host-only), so this also
/// pins host chains ≡ resident chains bit for bit.
#[test]
fn he_pipeline_is_bit_identical_across_backends() {
    use ntt_warp::he::{sampling, HeContext, HeLiteParams};
    let params = HeLiteParams {
        log_n: 5,
        prime_bits: 50,
        levels: 3,
        scale_bits: 46,
        gadget_bits: 10,
        error_eta: 4,
    };
    let run = |backend: Box<dyn NttBackend>| {
        let ctx = HeContext::with_backend(params, backend).unwrap();
        let keys = ctx.keygen(&mut sampling::seeded_rng(42));
        let mut rng = sampling::seeded_rng(7);
        let a = ctx.encrypt(&ctx.encode(&[2.5, -1.0]), &keys.public, &mut rng);
        let b = ctx.encrypt(&ctx.encode(&[3.0, 0.5]), &keys.public, &mut rng);
        let prod = ctx.multiply(&a, &b, &keys.relin);
        let pt = ctx.decrypt(&prod, &keys.secret);
        (ctx.decode(&pt), prod.level())
    };
    let (cpu_out, cpu_level) = run(Box::<CpuBackend>::default());
    let (sim_out, sim_level) = run(Box::new(SimBackend::titan_v()));
    assert_eq!(cpu_level, sim_level);
    // Same seeds, bit-identical backends => bit-identical decodes.
    assert_eq!(cpu_out, sim_out);
    // And the arithmetic is actually right.
    assert!((cpu_out[0] - 7.5).abs() < 1e-2, "got {}", cpu_out[0]);
}

/// Evaluators over both substrates expose the right names and agree on a
/// multiply (the user-facing swap surface).
#[test]
fn evaluator_substrate_swap_is_transparent() {
    let ring = ring_with(16, 59, 2);
    let a = RnsPoly::from_i64_coeffs(&ring, &[1, 2, -3]);
    let b = RnsPoly::from_i64_coeffs(&ring, &[4, 0, 5]);
    let mut cpu_ev = Evaluator::cpu(&ring);
    let mut sim_ev = Evaluator::with_backend(&ring, Box::new(SimBackend::titan_v()));
    assert_eq!(cpu_ev.backend_name(), "cpu");
    assert_eq!(sim_ev.backend_name(), "gpu-sim");
    assert_eq!(cpu_ev.multiply(&a, &b), sim_ev.multiply(&a, &b));
}

/// Concurrent pool conformance: the same batch of `he-lite` op sequences
/// driven through the evaluator pool by several threads yields identical
/// ciphertexts on `CpuBackend` and `SimBackend`, **regardless of stream
/// assignment** — which pool member (hence which device stream, on the
/// sim) executes any given operation is scheduler-dependent, and must
/// never show up in the bits. Each chain's ops are internally ordered and
/// chains are independent, so per-chain results are deterministic even
/// though the cross-chain interleaving is not.
#[test]
fn concurrent_pool_chains_are_bit_identical_across_backends() {
    use ntt_warp::he::{sampling, HeContext, HeLiteParams};
    const CHAINS: usize = 4;
    let params = HeLiteParams {
        log_n: 5,
        prime_bits: 50,
        levels: 3,
        scale_bits: 46,
        gadget_bits: 10,
        error_eta: 4,
    };
    // One chain = encrypt two values, multiply, add, sub — returns the
    // synced raw ciphertext rows (bit-level, not just decoded values).
    let run = |backend: Box<dyn NttBackend>| -> Vec<Vec<u64>> {
        let ctx = HeContext::with_backend(params, backend).unwrap();
        let keys = ctx.keygen(&mut sampling::seeded_rng(42));
        let barrier = std::sync::Barrier::new(CHAINS);
        let mut results: Vec<Vec<u64>> = vec![Vec::new(); CHAINS];
        std::thread::scope(|s| {
            let handles: Vec<_> = results
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    let (ctx, keys, barrier) = (&ctx, &keys, &barrier);
                    s.spawn(move || {
                        let mut rng = sampling::seeded_rng(1000 + i as u64);
                        barrier.wait();
                        let a = ctx.encrypt(&ctx.encode(&[i as f64 + 0.5]), &keys.public, &mut rng);
                        let b = ctx.encrypt(&ctx.encode(&[2.0, -1.0]), &keys.public, &mut rng);
                        let mut prod = ctx.multiply(&a, &b, &keys.relin);
                        let sum = ctx.add(&a, &b);
                        let mut diff = ctx.sub(&sum, &b);
                        prod.sync();
                        diff.sync();
                        let (p0, p1) = prod.components();
                        let (d0, d1) = diff.components();
                        let mut bits = Vec::new();
                        for poly in [p0, p1, d0, d1] {
                            bits.extend_from_slice(poly.flat());
                        }
                        *slot = bits;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        results
    };
    let cpu = run(Box::<CpuBackend>::default());
    let sim = run(Box::new(SimBackend::titan_v()));
    for (i, (c, s)) in cpu.iter().zip(&sim).enumerate() {
        assert!(!c.is_empty(), "chain {i} produced no bits");
        assert_eq!(c, s, "chain {i} diverged between Cpu and Sim pools");
    }
}
