#!/usr/bin/env bash
# Bench-regression smoke: re-measure the wall-clock benchmark suite and
# enforce WITHIN-RUN ratio gates — structural speedups that must hold on
# any host because both sides of each gate come from the same run:
#
#   * the fused lazy RNS multiply stays well under the strict legacy
#     pipeline it replaced (PR 2 measured ~5.8x; the gate allows 0.6x);
#   * the backend-routed ring multiply stays at parity with the in-run
#     strict reference (1.15x headroom for measurement noise);
#   * an he-lite multiply/relinearize/rescale (key-switch digits batched
#     through one backend call) stays within an NTT-count-derived bound of
#     the in-run forward-NTT benchmark (~25 NTT-equivalents of work; the
#     80x bound trips if a strict path sneaks back into the hot loop);
#   * a device-resident he-lite multiply chain on SimBackend performs
#     ZERO steady-state host<->device transfers (the he_ops bench records
#     the counted transfers + 1 as a pseudo-benchmark, so
#     "steady_transfers_plus_one <= 1.0 * unit" holds iff transfers == 0);
#   * a 4-evaluator SimBackend pool running independent
#     encrypt->multiply->rescale chains on 4 streams overlaps modeled
#     device time >= 1.3x vs the serialized schedule
#     (overlapped <= 0.77 * serialized; both sides are modeled time from
#     one deterministic run, so the gate holds on any host);
#   * the he-serve request batcher packs 8 encrypt->eval->decrypt jobs
#     into flat group dispatches at >= 1.5x less modeled device time
#     than the one-job-at-a-time control (batched <= 0.667 * unbatched;
#     modeled time again, host-independent);
#   * the fault-injection plane is free when no fault fires: the same
#     jobs through the fallible serve pipelines with a zero-rate
#     FaultPlan armed stay within 5% modeled device time of the
#     disarmed run (armed_zero <= 1.05 * off);
#   * the title workload holds its shape: in one steady-state CKKS-style
#     bootstrap on SimBackend, NTT + key-switch kernels carry >= 60% of
#     the modeled device time (total <= 1.6667 * ntt_keyswitch), and the
#     bootstrap crosses the bus zero times (steady_transfers_plus_one
#     <= 1.0 * unit);
#   * the hierarchical 4-step NTT earns its keep at bootstrapping scale:
#     at N = 2^16 the 3-kernel plan stays under the best single
#     fused-SMEM kernel's c*N*logN extrapolation from N = 2^13
#     (four_step <= 1.0 * single_kernel_extrapolated), and at N = 2^13
#     the auto-routed forward stays within 5% of the best single kernel
#     (auto <= 1.05 * best_single_kernel) -- the 4-step rollout cannot
#     regress the mid-size rings it should lose on;
#   * multi-device sharding scales: the same deep-chain multiply/
#     relinearize/rescale job on 4 simulated devices (cyclic RNS row
#     partition, key-switch all-gather over the modeled link) finishes
#     in <= 0.45x the single-device modeled time at N = 2^15 / 16
#     levels (k4_device_time <= 0.45 * k1_device_time; the sweep also
#     asserts every K decrypts bit-identical to the CPU reference).
#
# Usage:
#   scripts/bench_smoke.sh                  # within-run ratio gates (CI)
#   scripts/bench_smoke.sh BASELINE.json [THRESHOLD]
#                                           # legacy absolute comparison
#                                           # (comparable hosts only)
#
# Ratio gates replace the old absolute-ns comparison against the
# checked-in BENCH_seed.json, which only held on hosts comparable to the
# recording machine (ROADMAP item e).
set -euo pipefail
cd "$(dirname "$0")/.."

# Absolute path: cargo runs bench binaries with cwd set to the package dir.
NOW="$(pwd)/target/bench_now.json"

rm -f "$NOW"
# The figure harness is the shape smoke; the criterion benches are the
# timing smoke. Keep both on the same build.
cargo build --release --quiet
cargo run --release --quiet --bin figures -- --quick > /dev/null
CRITERION_JSON="$NOW" cargo bench -p ntt-bench --bench cpu_ntt --bench he_ops --bench modmul

if [[ $# -ge 1 ]]; then
    # Legacy mode: absolute comparison against a recorded baseline.
    BASELINE="$1"
    THRESHOLD="${2:-1.25}"
    cargo run --release --quiet -p ntt-bench --bin bench_guard -- \
        "$BASELINE" "$NOW" --threshold "$THRESHOLD" \
        --only "cpu_ntt_pipeline/,rns_multiply,he_lite,modmul_"
else
    cargo run --release --quiet -p ntt-bench --bin bench_guard -- "$NOW" \
        --gate "rns_multiply_n8192_np8/fused_1thread<=0.6*rns_multiply_n8192_np8/strict_legacy" \
        --gate "cpu_ntt_pipeline/negacyclic_multiply_4096<=1.15*cpu_ntt_pipeline/negacyclic_multiply_strict_4096" \
        --gate "he_lite_n2048_l3/multiply_relinearize_rescale<=80*he_lite_n2048_l3/forward_ntt_all_primes" \
        --gate "he_lite_sim_n256_l3/steady_transfers_plus_one<=1.0*he_lite_sim_n256_l3/unit" \
        --gate "sim_streams_4ev/overlapped_device_time<=0.77*sim_streams_4ev/serialized_device_time" \
        --gate "he_serve_sim/batched_device_time<=0.667*he_serve_sim/unbatched_device_time" \
        --gate "he_serve_sim/fault_plane_armed_zero_device_time<=1.05*he_serve_sim/fault_plane_off_device_time" \
        --gate "he_boot_sim/total_device_time<=1.6667*he_boot_sim/ntt_keyswitch_device_time" \
        --gate "he_boot_sim/steady_transfers_plus_one<=1.0*he_boot_sim/unit" \
        --gate "ntt_hier_n65536/four_step_device_time<=1.0*ntt_hier_n65536/single_kernel_extrapolated_device_time" \
        --gate "ntt_hier_n8192/auto_device_time<=1.05*ntt_hier_n8192/best_single_kernel_device_time" \
        --gate "ntt_sharded/k4_device_time<=0.45*ntt_sharded/k1_device_time"
fi
