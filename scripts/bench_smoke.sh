#!/usr/bin/env bash
# Bench-regression smoke: re-measure the wall-clock benchmark suite and
# compare against the recorded baseline, failing on > 25% regressions.
#
#   scripts/bench_smoke.sh [baseline.json] [threshold]
#
# Defaults to BENCH_seed.json and 1.25. Timings come from the vendored
# criterion shim (60 ms budget per benchmark), so the threshold is
# deliberately loose; this catches order-of-magnitude mistakes (a strict
# path sneaking back into a hot loop), not single-digit noise.
#
# Caveat: absolute ns/iter comparisons are only meaningful when baseline
# and current run come from comparable hosts. On much slower/faster
# hardware, pass a locally recorded baseline (CRITERION_JSON=... cargo
# bench) instead of the checked-in one, or raise the threshold.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${1:-BENCH_seed.json}"
THRESHOLD="${2:-1.25}"
# Absolute path: cargo runs bench binaries with cwd set to the package dir.
NOW="$(pwd)/target/bench_now.json"

rm -f "$NOW"
# The figure harness is the shape smoke; the criterion benches are the
# timing smoke. Keep both on the same build.
cargo build --release --quiet
cargo run --release --quiet --bin figures -- --quick > /dev/null
CRITERION_JSON="$NOW" cargo bench -p ntt-bench --bench cpu_ntt --bench he_ops --bench modmul

# Gate on the key pipeline/HE/modmul benchmarks. The per-kernel forward-NTT
# micro-benches (ct/stockham/high-radix, 60 ms windows at small N) swing
# with code layout and host state and are excluded from the hard gate; run
# bench_guard without --only to eyeball the full table.
cargo run --release --quiet -p ntt-bench --bin bench_guard -- \
    "$BASELINE" "$NOW" --threshold "$THRESHOLD" \
    --only "cpu_ntt_pipeline/,rns_multiply,he_lite,modmul_"
