//! # ntt-warp
//!
//! A Rust reproduction of *"Accelerating Number Theoretic Transformations
//! for Bootstrappable Homomorphic Encryption on GPUs"* (Kim, Jung, Park &
//! Ahn, IISWC 2020).
//!
//! This façade crate re-exports the workspace members:
//!
//! * [`math`] — modular arithmetic (Shoup / Barrett / Montgomery), primes,
//!   roots of unity, big integers ([`ntt_math`]).
//! * [`core`] — reference NTT/iNTT/DFT transforms, twiddle tables,
//!   on-the-fly twiddling, RNS/CRT, polynomial rings, and the pluggable
//!   execution-backend layer (`backend::{NttBackend, RingPlan,
//!   Evaluator}`) ([`ntt_core`]).
//! * [`sim`] — the warp-level GPU functional + performance simulator
//!   ([`gpu_sim`]).
//! * [`gpu`] — the paper's GPU kernels running on the simulator, plus
//!   `SimBackend`, the simulated-GPU execution backend ([`ntt_gpu`]).
//! * [`he`] — a small RNS-HE (CKKS-style) layer exercising the NTT
//!   ([`he_lite`]).
//! * [`boot`] — the title workload: a CKKS-style bootstrapping pipeline
//!   (ModRaise, homomorphic DFT via rotations, EvalMod) ([`he_boot`]).
//!
//! See `README.md` for a tour of the workspace, the test pyramid, the
//! benchmark targets, and the `figures` binary that regenerates every
//! table and figure of the paper.
//!
//! # Quickstart
//!
//! ```
//! use ntt_warp::core::{NegacyclicRing, Polynomial};
//!
//! // A negacyclic ring Z_p[X]/(X^1024 + 1) with an NTT-friendly prime.
//! let ring = NegacyclicRing::new_with_bits(1024, 60)?;
//! let a = Polynomial::from_coeffs(vec![1, 2, 3], ring.degree());
//! let b = Polynomial::from_coeffs(vec![5, 0, 7], ring.degree());
//! let c = ring.multiply(&a, &b);
//! // (1 + 2x + 3x^2)(5 + 7x^2) = 5 + 10x + 22x^2 + 14x^3 + 21x^4
//! assert_eq!(&c.coeffs()[..5], &[5, 10, 22, 14, 21]);
//! # Ok::<(), ntt_warp::core::RingError>(())
//! ```

#![forbid(unsafe_code)]

pub use gpu_sim as sim;
pub use he_boot as boot;
pub use he_lite as he;
pub use ntt_core as core;
pub use ntt_gpu as gpu;
pub use ntt_math as math;
