//! `he-boot`: the title workload — CKKS-style bootstrapping over
//! `he-lite`, composed entirely from the scheme's public surface.
//!
//! A ciphertext that has spent all its levels is *re-encrypted under
//! homomorphic evaluation* in four macro-ops (HEAAN-style; see PAPERS.md
//! "HEAAN Demystified" / "BTS" for the architecture-level breakdown this
//! reproduces):
//!
//! ```text
//!           ┌───────────┐   ┌──────────────┐   ┌─────────┐   ┌──────────────┐
//!  ct (L=1) │  ModRaise │ → │  CoeffToSlot │ → │ EvalMod │ → │  SlotToCoeff │ → ct (L≥1, fresh)
//!           └───────────┘   │ hom. DFT via │   │ sine ≈  │   │ inverse DFT  │
//!                           │ rotations +  │   │ mod q₀  │   │ (rotations)  │
//!                           │ diag mults   │   └─────────┘   └──────────────┘
//! ```
//!
//! * **ModRaise** re-embeds the level-1 ciphertext into the full RNS
//!   basis; the plaintext underneath becomes `Δ·m + q₀·I` for a small
//!   *integer* polynomial `I`.
//! * **CoeffToSlot** applies the inverse canonical embedding `σ⁻¹`
//!   homomorphically — a baby-step/giant-step (BSGS) matrix–vector
//!   product built from slot rotations (Galois automorphisms + key
//!   switches) and diagonal plaintext multiplications — so that each
//!   *coefficient* `Δ·m_t + q₀·I_t` lands in a *slot*, where ring
//!   multiplication acts on it independently.
//! * **EvalMod** evaluates `(q₀/2π)·sin(2π·y/q₀)` by a Taylor core plus
//!   `r` double-angle iterations. Since `I_t` is an integer, the sine
//!   kills the `q₀·I` term exactly and returns `≈ Δ·m_t`.
//! * **SlotToCoeff** applies `σ` to move the cleaned values back into
//!   coefficients.
//!
//! The op mix is exactly the paper's: rotations are key switches (gadget
//! digit NTTs + FMAs) and every stage is NTT-dominated, which is what
//! `figures bootstrap` measures and `bench_smoke.sh` gates.
//!
//! **Scale discipline.** Every ciphertext×ciphertext product drifts the
//! scale off the working point `T` (the squaring recursion
//! `e' = 2e − log₂ q` diverges), so the pipeline re-pins scales with
//! *exact plain multiplications*: multiply by `v` encoded at
//! `out_scale·q/scale` and rescale — landing precisely on `out_scale`.
//! The level/scale schedule is static (independent of ciphertext data),
//! so every bootstrap runs the identical op sequence — the property that
//! makes Cpu≡Sim bit-exactness and the device-residency gate testable.
//!
//! All rotation keys and DFT diagonal plaintexts are generated once at
//! [`Bootstrapper::new`] and cached device-resident: repeated
//! [`Bootstrapper::bootstrap`] calls perform **zero** steady-state
//! host↔device transfers (gated in `tests/residency.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod embedding;

use embedding::{Complex, SlotEmbedding};
use he_lite::{Ciphertext, HeContext, KeySet, Plaintext, RelinKeys, RotationKeys};
use ntt_core::backend::BackendError;
use rand::{Rng, RngExt};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Bootstrapping pipeline parameters. The level/scale schedule they
/// induce is static; [`BootParams::min_levels`] is the exact depth the
/// scheme parameters must provide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootParams {
    /// Taylor terms in `t = x²` for the sine core: `sin x = x·P(t)` with
    /// `P` of degree `sin_terms − 1` (so `sin_terms = 4` is a degree-7
    /// sine). Must be ≥ 2.
    pub sin_terms: usize,
    /// Double-angle iterations `r`: the Taylor core runs at argument
    /// `x/2ʳ` and `r` doublings recover `sin x`, trading levels for a
    /// smaller (more accurate) Taylor argument.
    pub double_angle: usize,
    /// `log₂` of the mod-raise headroom `K ≈ q₀/Δ_in`: the input
    /// ciphertext scale is `2^(prime_bits − k_bits)`. Larger `k_bits`
    /// means more EvalMod precision but a tighter bound on message
    /// magnitude (`|m| ≪ K/2π`).
    pub k_bits: u32,
}

impl BootParams {
    /// Accuracy-first parameters: degree-7 sine, 6 doublings — the
    /// configuration the CPU correctness test decrypts through.
    pub fn deep() -> Self {
        BootParams {
            sin_terms: 4,
            double_angle: 6,
            k_bits: 6,
        }
    }

    /// Depth-minimal parameters: degree-3 sine, 1 doubling. Numerically
    /// too coarse to decrypt accurately, but runs the identical code
    /// path — the configuration for bit-exactness, chaos, residency and
    /// serving tests where only the op sequence matters.
    pub fn shallow() -> Self {
        BootParams {
            sin_terms: 2,
            double_angle: 1,
            k_bits: 6,
        }
    }

    /// Exact scheme depth the schedule consumes: 1 (CoeffToSlot) +
    /// `sin_terms + 2` (Taylor core) + 1 (re-pin) + `2·double_angle`
    /// (doublings) + 1 (SlotToCoeff), ending at level 1.
    pub fn min_levels(&self) -> usize {
        assert!(self.sin_terms >= 2, "need at least a degree-3 sine");
        self.sin_terms + 5 + 2 * self.double_angle
    }

    /// Convenience scheme parameters providing exactly
    /// [`BootParams::min_levels`] depth at the working scale
    /// `2^(prime_bits − 1)`.
    pub fn he_params(&self, log_n: u32, prime_bits: u32) -> he_lite::HeLiteParams {
        he_lite::HeLiteParams {
            log_n,
            prime_bits,
            levels: self.min_levels(),
            scale_bits: prime_bits - 1,
            gadget_bits: 15,
            error_eta: 2,
        }
    }
}

/// Diagonal plaintexts for one BSGS matrix: `diags[i][j0]` multiplies the
/// `j0`-th baby-step rotation inside the `i`-th giant step (`None` where
/// the diagonal index `i·g1 + j0` falls outside the matrix).
type Diags = Vec<Vec<Option<Plaintext>>>;

/// The bootstrapping engine: rotation keys, cached DFT diagonals, and
/// the EvalMod constant cache, all generated once and device-resident.
pub struct Bootstrapper {
    ctx: Arc<HeContext>,
    params: BootParams,
    emb: SlotEmbedding,
    relin: RelinKeys,
    rot: RotationKeys,
    /// BSGS split of the `N/2 × N/2` slot matrices.
    g1: usize,
    g2: usize,
    /// CoeffToSlot diagonals: `F`/`F̄` produce the first-half
    /// coefficients, `G`/`Ḡ` the second half (the conjugate pair handles
    /// the real-part extraction).
    cts_f: Diags,
    cts_fc: Diags,
    cts_g: Diags,
    cts_gc: Diags,
    /// SlotToCoeff diagonals (`C` on the first-half ciphertext, `D` on
    /// the second).
    stc_c: Diags,
    stc_d: Diags,
    /// EvalMod constants keyed by `(value, scale, level)` bit patterns —
    /// populated on the first bootstrap, hit (no upload) from then on.
    consts: Mutex<HashMap<(u64, u64, usize), Arc<Plaintext>>>,
    /// Input ciphertext scale `Δ_in`.
    input_scale: f64,
    /// Working scale `T` (the scheme's parameter scale).
    work_scale: f64,
    /// Level at which SlotToCoeff rotations run.
    level_stc: usize,
}

impl std::fmt::Debug for Bootstrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bootstrapper")
            .field("params", &self.params)
            .field("g1", &self.g1)
            .field("g2", &self.g2)
            .field("level_stc", &self.level_stc)
            .finish_non_exhaustive()
    }
}

fn factorial(k: usize) -> f64 {
    (1..=k).map(|v| v as f64).product()
}

impl Bootstrapper {
    /// Build the engine: generate rotation keys for the BSGS Galois
    /// elements at the two levels rotations occur, and precompute all
    /// DFT diagonal plaintexts (encoded host-side, then uploaded once
    /// and kept resident).
    ///
    /// # Panics
    ///
    /// Panics if the context's depth is below
    /// [`BootParams::min_levels`].
    pub fn new<R: Rng + RngExt>(
        ctx: Arc<HeContext>,
        keys: &KeySet,
        params: BootParams,
        rng: &mut R,
    ) -> Self {
        let slots = ctx.params().n() / 2;
        Self::with_matrix_slots(ctx, keys, params, slots, rng)
    }

    /// [`Bootstrapper::new`] with the homomorphic-DFT matrix dimension
    /// capped at `mat_slots` ≤ N/2 — the sparsely packed configuration
    /// for bootstrapping-scale rings (N = 2¹⁶–2¹⁷), where the dense
    /// N/2-dimension build needs hundreds of gigabytes of diagonal
    /// plaintexts. The BSGS structure, rotation/key-switch op sequence
    /// and level schedule are identical to the dense build (so op-mix
    /// accounting and Cpu≡Sim bit-exactness are representative);
    /// decryption recovers the message only in the dense case
    /// `mat_slots = N/2`, exactly like the structural
    /// [`BootParams::shallow`] preset trades accuracy for speed.
    ///
    /// # Panics
    ///
    /// Panics if the context's depth is below [`BootParams::min_levels`]
    /// or `mat_slots` is not a power of two in `[2, N/2]`.
    pub fn with_matrix_slots<R: Rng + RngExt>(
        ctx: Arc<HeContext>,
        keys: &KeySet,
        params: BootParams,
        mat_slots: usize,
        rng: &mut R,
    ) -> Self {
        let (gs, level_cts, level_stc) = Self::required_rotations(&ctx, &params, mat_slots);
        let rot = ctx.keygen_rotation(&keys.secret, &gs, &[level_cts, level_stc], rng);
        Self::with_rotation_keys(ctx, keys, params, mat_slots, rot)
    }

    /// The BSGS Galois elements and the two rotation levels a
    /// `(params, mat_slots)` pipeline key-switches at — the exact
    /// coverage [`HeContext::keygen_rotation`] must provide.
    fn required_rotations(
        ctx: &HeContext,
        params: &BootParams,
        mat_slots: usize,
    ) -> (Vec<u64>, usize, usize) {
        let he = *ctx.params();
        let emb = SlotEmbedding::new(he.n());
        let ns = mat_slots;
        let g1 = (ns as f64).sqrt().ceil() as usize;
        let g2 = ns.div_ceil(g1);
        let level_cts = he.levels;
        let level_stc = he.levels - (params.sin_terms + 3 + 2 * params.double_angle);
        let mut gs: Vec<u64> = Vec::new();
        for j0 in 1..g1 {
            gs.push(emb.galois_for_rotation(j0));
        }
        for i in 1..g2 {
            gs.push(emb.galois_for_rotation(i * g1));
        }
        gs.push(emb.galois_conjugate());
        (gs, level_cts, level_stc)
    }

    /// [`Bootstrapper::with_matrix_slots`] with **precomputed** rotation
    /// keys. Rotation-key generation is host-side, backend-independent
    /// math — at bootstrapping-scale rings it is minutes of host NTTs —
    /// so a cross-substrate comparison can generate the keys once (via a
    /// first construction plus [`Bootstrapper::rotation_keys`]) and hand
    /// an [`HeContext::adopt_rotation_keys`] copy to every other
    /// backend's engine.
    ///
    /// # Panics
    ///
    /// Panics if the context's depth is below
    /// [`BootParams::min_levels`], `mat_slots` is not a power of two in
    /// `[2, N/2]`, or `rot` does not cover every BSGS Galois element at
    /// both rotation levels.
    pub fn with_rotation_keys(
        ctx: Arc<HeContext>,
        keys: &KeySet,
        params: BootParams,
        mat_slots: usize,
        rot: RotationKeys,
    ) -> Self {
        let he = *ctx.params();
        assert!(
            he.levels >= params.min_levels(),
            "bootstrap needs {} levels, context has {}",
            params.min_levels(),
            he.levels
        );
        let emb = SlotEmbedding::new(he.n());
        assert!(
            mat_slots.is_power_of_two() && mat_slots >= 2 && mat_slots <= emb.slots(),
            "mat_slots must be a power of two in [2, N/2]"
        );
        let ns = mat_slots;
        let g1 = (ns as f64).sqrt().ceil() as usize;
        let g2 = ns.div_ceil(g1);

        let (gs, level_cts, level_stc) = Self::required_rotations(&ctx, &params, mat_slots);
        for &g in &gs {
            let g = g % (2 * he.n() as u64);
            assert!(
                rot.contains(g, level_cts) && rot.contains(g, level_stc),
                "rotation keys missing Galois element {g} at a required level"
            );
        }

        let primes = ctx.ring().basis().primes().to_vec();
        let work_scale = he.scale();
        let input_scale = (he.prime_bits - params.k_bits) as f64;
        let input_scale = input_scale.exp2();
        let k_ratio = primes[0] as f64 / input_scale;
        // Fold the EvalMod input scaling 2π/(2ʳ·K) into the CoeffToSlot
        // matrices and the output scaling K/(2π) into SlotToCoeff.
        let c_fold = 2.0 * std::f64::consts::PI / ((1u64 << params.double_angle) as f64 * k_ratio);
        let c_unfold = k_ratio / (2.0 * std::f64::consts::PI);
        let dp_cts = work_scale * primes[level_cts - 1] as f64 / input_scale;
        let dp_stc = primes[level_stc - 1] as f64;

        let inv_n = 1.0 / he.n() as f64;
        let f = |j: usize, k: usize| emb.zeta_pow(k, -(j as i64)).scale(c_fold * inv_n);
        let g = |j: usize, k: usize| emb.zeta_pow(k, -((j + ns) as i64)).scale(c_fold * inv_n);
        let c = |j: usize, k: usize| emb.zeta_pow(j, k as i64).scale(c_unfold);
        let d = |j: usize, k: usize| emb.zeta_pow(j, (k + ns) as i64).scale(c_unfold);

        let build = |entry: &dyn Fn(usize, usize) -> Complex, scale: f64, level: usize| {
            Self::build_diags(&ctx, &emb, ns, g1, g2, entry, scale, level)
        };
        let cts_f = build(&f, dp_cts, level_cts);
        let cts_fc = build(&|j, k| f(j, k).conj(), dp_cts, level_cts);
        let cts_g = build(&g, dp_cts, level_cts);
        let cts_gc = build(&|j, k| g(j, k).conj(), dp_cts, level_cts);
        let stc_c = build(&c, dp_stc, level_stc);
        let stc_d = build(&d, dp_stc, level_stc);

        Bootstrapper {
            ctx,
            params,
            emb,
            relin: keys.relin.clone(),
            rot,
            g1,
            g2,
            cts_f,
            cts_fc,
            cts_g,
            cts_gc,
            stc_c,
            stc_d,
            consts: Mutex::new(HashMap::new()),
            input_scale,
            work_scale,
            level_stc,
        }
    }

    /// The scale a level-1 input ciphertext must carry (`Δ_in`): encode
    /// bootstrap inputs with
    /// [`encode_with_scale`](HeContext::encode_with_scale) at this value.
    pub fn input_scale(&self) -> f64 {
        self.input_scale
    }

    /// Level of the ciphertext [`Bootstrapper::bootstrap`] returns.
    pub fn output_level(&self) -> usize {
        self.level_stc - 1
    }

    /// The rotation keys (for diagnostics / key accounting).
    pub fn rotation_keys(&self) -> &RotationKeys {
        &self.rot
    }

    /// The pipeline parameters.
    pub fn params(&self) -> &BootParams {
        &self.params
    }

    /// Bootstrap: run ModRaise → CoeffToSlot → EvalMod → SlotToCoeff.
    /// The result encrypts the same coefficients at the working scale
    /// with [`Bootstrapper::output_level`] levels of fresh depth.
    ///
    /// # Panics
    ///
    /// Panics unless `ct` is at level 1 with scale
    /// [`Bootstrapper::input_scale`].
    pub fn bootstrap(&self, ct: &Ciphertext) -> Ciphertext {
        match self.run(ct, false) {
            Ok(out) => out,
            Err(_) => unreachable!("infallible path returned an error"),
        }
    }

    /// Fallible [`Bootstrapper::bootstrap`]: every rotation (the
    /// fault-gated op class — each is a transform + automorphism + key
    /// switch) runs through [`HeContext::try_rotate`], so injected
    /// faults surface as classified [`BackendError`]s with the
    /// ciphertext argument unchanged, and the serving layer can apply
    /// its retry/degrade policy. Rotation keys are owned by the
    /// bootstrapper (not any pool member), so they survive evaluator
    /// quarantine + re-fork.
    ///
    /// # Errors
    ///
    /// Any [`BackendError`] from the underlying evaluator ops.
    pub fn try_bootstrap(&self, ct: &Ciphertext) -> Result<Ciphertext, BackendError> {
        self.run(ct, true)
    }

    fn run(&self, ct: &Ciphertext, fallible: bool) -> Result<Ciphertext, BackendError> {
        assert_eq!(ct.level(), 1, "bootstrap input must be at level 1");
        assert!(
            (ct.scale() / self.input_scale - 1.0).abs() < 1e-9,
            "bootstrap input must be encoded at input_scale() = {}, got {}",
            self.input_scale,
            ct.scale()
        );
        let raised = self.ctx.mod_raise(ct, self.ctx.params().levels);
        let (m1, m2) = self.coeff_to_slot(&raised, fallible)?;
        let s1 = self.eval_mod(&m1);
        let s2 = self.eval_mod(&m2);
        self.slot_to_coeff(&s1, &s2, fallible)
    }

    // ---- CoeffToSlot / SlotToCoeff (homomorphic DFT) -----------------

    /// Rotate by Galois element `g`, through the fallible path when
    /// requested.
    fn rot(&self, ct: &Ciphertext, g: u64, fallible: bool) -> Result<Ciphertext, BackendError> {
        if fallible {
            self.ctx.try_rotate(ct, g, &self.rot)
        } else {
            Ok(self.ctx.rotate(ct, g, &self.rot))
        }
    }

    /// Baby-step rotations `rot_{j0}(ct)` for `j0 ∈ 0..g1` (index 0 is
    /// the ciphertext itself).
    fn baby_steps(&self, ct: &Ciphertext, fallible: bool) -> Result<Vec<Ciphertext>, BackendError> {
        let mut rots = Vec::with_capacity(self.g1);
        rots.push(ct.clone());
        for j0 in 1..self.g1 {
            rots.push(self.rot(ct, self.emb.galois_for_rotation(j0), fallible)?);
        }
        Ok(rots)
    }

    /// One BSGS matrix–vector product over a *pair* of operands sharing
    /// the giant-step rotations: `Σ_i rot_{i·g1}(Σ_{j0} da[i][j0] ⊙
    /// rots_a[j0] + db[i][j0] ⊙ rots_b[j0])`. All plain products are
    /// raw (same scale), summed, then rescaled **once** — one level per
    /// stage, and every rotation at one level.
    fn bsgs(
        &self,
        rots_a: &[Ciphertext],
        rots_b: &[Ciphertext],
        da: &Diags,
        db: &Diags,
        fallible: bool,
    ) -> Result<Ciphertext, BackendError> {
        let mut out: Option<Ciphertext> = None;
        for i in 0..self.g2 {
            let mut inner: Option<Ciphertext> = None;
            for j0 in 0..self.g1 {
                for (rots, diags) in [(rots_a, da), (rots_b, db)] {
                    if let Some(pt) = &diags[i][j0] {
                        let term = self.ctx.multiply_plain_raw(&rots[j0], pt);
                        inner = Some(match inner {
                            Some(acc) => self.ctx.add(&acc, &term),
                            None => term,
                        });
                    }
                }
            }
            let mut v = inner.expect("empty BSGS giant step");
            if i > 0 {
                v = self.rot(&v, self.emb.galois_for_rotation(i * self.g1), fallible)?;
            }
            out = Some(match out {
                Some(acc) => self.ctx.add(&acc, &v),
                None => v,
            });
        }
        let mut out = out.expect("empty BSGS");
        self.ctx.rescale(&mut out);
        Ok(out)
    }

    /// Homomorphic `σ⁻¹`: two ciphertexts whose slots are the first and
    /// second halves of the input's coefficients (times the folded
    /// EvalMod input scaling).
    fn coeff_to_slot(
        &self,
        ct: &Ciphertext,
        fallible: bool,
    ) -> Result<(Ciphertext, Ciphertext), BackendError> {
        let conj = self.rot(ct, self.emb.galois_conjugate(), fallible)?;
        let rots_u = self.baby_steps(ct, fallible)?;
        let rots_c = self.baby_steps(&conj, fallible)?;
        let out1 = self.bsgs(&rots_u, &rots_c, &self.cts_f, &self.cts_fc, fallible)?;
        let out2 = self.bsgs(&rots_u, &rots_c, &self.cts_g, &self.cts_gc, fallible)?;
        Ok((out1, out2))
    }

    /// Homomorphic `σ`: recombine the two slot ciphertexts into one
    /// coefficient-domain ciphertext.
    fn slot_to_coeff(
        &self,
        m1: &Ciphertext,
        m2: &Ciphertext,
        fallible: bool,
    ) -> Result<Ciphertext, BackendError> {
        assert_eq!(m1.level(), self.level_stc, "EvalMod level drift");
        assert_eq!(m2.level(), self.level_stc, "EvalMod level drift");
        let rots_1 = self.baby_steps(m1, fallible)?;
        let rots_2 = self.baby_steps(m2, fallible)?;
        self.bsgs(&rots_1, &rots_2, &self.stc_c, &self.stc_d, fallible)
    }

    /// Precompute the pre-rotated BSGS diagonals of one slot matrix as
    /// prepared (truncated, resident, NTT-form) plaintexts.
    #[allow(clippy::too_many_arguments)]
    fn build_diags(
        ctx: &HeContext,
        emb: &SlotEmbedding,
        ns: usize,
        g1: usize,
        g2: usize,
        entry: &dyn Fn(usize, usize) -> Complex,
        scale: f64,
        level: usize,
    ) -> Diags {
        (0..g2)
            .map(|i| {
                (0..g1)
                    .map(|j0| {
                        let k = i * g1 + j0;
                        if k >= ns {
                            return None;
                        }
                        // d_k[j] = M[j][(j+k) mod ns], pre-rotated by
                        // −i·g1 so the giant-step rotation lands it on
                        // the right slots.
                        let vals: Vec<Complex> = (0..ns)
                            .map(|j| {
                                let jj = (j + ns - (i * g1) % ns) % ns;
                                entry(jj, (jj + k) % ns)
                            })
                            .collect();
                        let coeffs = emb.unembed(&vals);
                        let pt = ctx.encode_with_scale(&coeffs, scale);
                        Some(ctx.prepare_plaintext(&pt, level))
                    })
                    .collect()
            })
            .collect()
    }

    // ---- EvalMod (sine approximation of mod q₀) ----------------------

    /// A cached prepared constant plaintext: `v` encoded at `scale`,
    /// truncated/resident/NTT at `level`. First use per key uploads
    /// once; the schedule is static, so steady-state bootstraps only hit.
    fn cached_const(&self, v: f64, scale: f64, level: usize) -> Arc<Plaintext> {
        let key = (v.to_bits(), scale.to_bits(), level);
        if let Some(pt) = self
            .consts
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            return Arc::clone(pt);
        }
        let pt = Arc::new(
            self.ctx
                .prepare_plaintext(&self.ctx.encode_with_scale(&[v], scale), level),
        );
        self.consts
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(key)
            .or_insert(pt)
            .clone()
    }

    /// Multiply by the constant `v` landing **exactly** on `out_scale`:
    /// the plaintext is encoded at `out_scale·q/scale`, so the single
    /// rescale pins the result — the scale-repin primitive that stops
    /// the `e' = 2e − log₂ q` drift of ciphertext products.
    fn mul_const_exact(&self, ct: &Ciphertext, v: f64, out_scale: f64) -> Ciphertext {
        let q = self.ctx.ring().basis().primes()[ct.level() - 1] as f64;
        let pt = self.cached_const(v, out_scale * q / ct.scale(), ct.level());
        let mut out = self.ctx.multiply_plain_raw(ct, &pt);
        self.ctx.rescale(&mut out);
        out
    }

    /// Add the constant `v` (encoded at exactly the ciphertext's scale).
    fn add_const(&self, ct: &Ciphertext, v: f64) -> Ciphertext {
        let pt = self.cached_const(v, ct.scale(), ct.level());
        self.ctx.add_plain(ct, &pt)
    }

    /// Ciphertext product with level alignment (basis truncation of the
    /// deeper operand) and relinearization.
    fn mul_ct(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let lvl = a.level().min(b.level());
        let aa;
        let bb;
        let a = if a.level() > lvl {
            aa = self.ctx.drop_to_level(a, lvl);
            &aa
        } else {
            a
        };
        let b = if b.level() > lvl {
            bb = self.ctx.drop_to_level(b, lvl);
            &bb
        } else {
            b
        };
        self.ctx.multiply(a, b, &self.relin)
    }

    /// Homomorphic `(K/2π)·sin(2π·y/K)` up to the folded scalars: the
    /// input carries `x = 2π·y/(2ʳ·K)` (folded into CoeffToSlot), the
    /// Taylor core computes `sin x`/`cos x`, and `r` double-angle
    /// iterations recover `sin(2π·y/K)` (the `K/2π` is folded into
    /// SlotToCoeff). Constants enter via exact-scale plain ops, so no
    /// two ciphertexts ever meet at mismatched scales.
    fn eval_mod(&self, x: &Ciphertext) -> Ciphertext {
        let m = self.params.sin_terms;
        let t_work = self.work_scale;
        debug_assert!((x.scale() / t_work - 1.0).abs() < 1e-9, "CtS scale drift");

        // sin x = x·P(t), cos x = Q(t), t = x².
        let t = self.mul_ct(x, x);
        let sin_c: Vec<f64> = (0..m)
            .map(|u| if u % 2 == 0 { 1.0 } else { -1.0 } / factorial(2 * u + 1))
            .collect();
        let cos_c: Vec<f64> = (0..m)
            .map(|u| if u % 2 == 0 { 1.0 } else { -1.0 } / factorial(2 * u))
            .collect();
        let horner = |coeffs: &[f64]| {
            let mut acc = self.mul_const_exact(&t, coeffs[m - 1], t_work);
            acc = self.add_const(&acc, coeffs[m - 2]);
            for u in (0..m - 2).rev() {
                acc = self.mul_ct(&acc, &t);
                acc = self.add_const(&acc, coeffs[u]);
            }
            acc
        };
        let sin = self.mul_ct(&horner(&sin_c), x);
        let cos = self.ctx.drop_to_level(&horner(&cos_c), sin.level());

        // Re-pin both to the working scale, then double the angle r
        // times: s' = 2sc, c' = 2c² − 1 (each iteration one product
        // level + one re-pin level, applied to s and c in parallel).
        let mut s = self.mul_const_exact(&sin, 1.0, t_work);
        let mut c = self.mul_const_exact(&cos, 1.0, t_work);
        for _ in 0..self.params.double_angle {
            let sc = self.mul_ct(&s, &c);
            let s_next = self.ctx.add(&sc, &sc);
            let cc = self.mul_ct(&c, &c);
            let c_next = self.add_const(&self.ctx.add(&cc, &cc), -1.0);
            s = self.mul_const_exact(&s_next, 1.0, t_work);
            c = self.mul_const_exact(&c_next, 1.0, t_work);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use he_lite::sampling::seeded_rng;

    #[test]
    fn boot_params_depth_formula() {
        assert_eq!(BootParams::shallow().min_levels(), 9);
        assert_eq!(BootParams::deep().min_levels(), 21);
    }

    #[test]
    fn shallow_bootstrap_runs_end_to_end() {
        let bp = BootParams::shallow();
        let ctx = Arc::new(HeContext::new(bp.he_params(4, 50)).unwrap());
        let mut rng = seeded_rng(11);
        let keys = ctx.keygen(&mut rng);
        let boot = Bootstrapper::new(Arc::clone(&ctx), &keys, bp, &mut rng);
        let pt = ctx.encode_with_scale(&[0.5, -0.25], boot.input_scale());
        let ct = ctx.encrypt(&pt, &keys.public, &mut rng);
        let low = ctx.drop_to_level(&ct, 1);
        let out = boot.bootstrap(&low);
        assert_eq!(out.level(), boot.output_level());
        assert!((out.scale() / ctx.params().scale() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deep_bootstrap_recovers_message() {
        let bp = BootParams::deep();
        let ctx = Arc::new(HeContext::new(bp.he_params(4, 50)).unwrap());
        let mut rng = seeded_rng(13);
        let keys = ctx.keygen(&mut rng);
        let boot = Bootstrapper::new(Arc::clone(&ctx), &keys, bp, &mut rng);
        let n = ctx.params().n();
        let values: Vec<f64> = (0..n).map(|i| ((i as f64 * 0.7).sin()) * 0.8).collect();
        let pt = ctx.encode_with_scale(&values, boot.input_scale());
        let ct = ctx.encrypt(&pt, &keys.public, &mut rng);
        let low = ctx.drop_to_level(&ct, 1);
        let out = boot.bootstrap(&low);
        assert!(out.level() >= 1);
        let dec = ctx.decode(&ctx.decrypt(&out, &keys.secret));
        for (i, &v) in values.iter().enumerate() {
            assert!(
                (dec[i] - v).abs() < 0.02,
                "coeff {i}: {} vs {v} (err {})",
                dec[i],
                (dec[i] - v).abs()
            );
        }
    }
}
