//! Complex DFT kernels — the paper's comparison path (Fig. 3(b), 5, 11(b)).
//!
//! The DFT mirrors every NTT implementation point with three differences
//! the paper's analysis hinges on:
//!
//! 1. elements are single-precision complex (two `f32`s packed into one
//!    64-bit word — same element width as the NTT's residues);
//! 2. twiddles need **no Shoup companions** (half the table traffic per
//!    entry) and **one table is shared by the entire batch** (DFTs of any
//!    batch use the same roots of unity, unlike per-prime NTT tables);
//! 3. the butterfly is cheap floating-point arithmetic, and threads hold
//!    no modulus/companion state (lower register pressure, higher
//!    occupancy — the paper's Fig. 4(c) vs 5(c) contrast).
//!
//! All kernels realize the identical Cooley–Tukey dataflow graph as their
//! NTT twins, so outputs are bit-exact reproducible against a scalar
//! reference executing the same f32 operations.

// Kernel code models warp lanes with explicit indices into parallel
// per-lane arrays (live/base/vals/regs), mirroring the CUDA original;
// iterator rewrites would obscure the lane addressing the simulator counts.
#![allow(clippy::needless_range_loop)]

use crate::report::RunReport;
use gpu_sim::{Buf, Gpu, LaunchConfig, OpClass, WarpCtx, WarpKernel};
use ntt_core::bitrev::bit_reverse;

/// Pack a complex value into one GMEM word.
#[inline]
pub fn pack(re: f32, im: f32) -> u64 {
    (u64::from(re.to_bits()) << 32) | u64::from(im.to_bits())
}

/// Unpack a GMEM word into (re, im).
#[inline]
pub fn unpack(w: u64) -> (f32, f32) {
    (f32::from_bits((w >> 32) as u32), f32::from_bits(w as u32))
}

/// Packed complex multiply.
#[inline]
fn cmul(a: u64, b: u64) -> u64 {
    let (ar, ai) = unpack(a);
    let (br, bi) = unpack(b);
    pack(ar * br - ai * bi, ar * bi + ai * br)
}

/// Packed complex add.
#[inline]
fn cadd(a: u64, b: u64) -> u64 {
    let (ar, ai) = unpack(a);
    let (br, bi) = unpack(b);
    pack(ar + br, ai + bi)
}

/// Packed complex subtract.
#[inline]
fn csub(a: u64, b: u64) -> u64 {
    let (ar, ai) = unpack(a);
    let (br, bi) = unpack(b);
    pack(ar - br, ai - bi)
}

/// Modeled registers for a radix-`r` DFT thread: same ~4/point footprint
/// as the NTT but without the prime/companion working set — the source of
/// the occupancy gap in Fig. 4(c)/5(c).
pub fn dft_regs_per_thread(r: usize) -> u32 {
    4 * r as u32 + 16
}

/// A batched DFT problem in GMEM: `np` sequences plus ONE shared table.
#[derive(Debug)]
pub struct DftBatch {
    n: usize,
    np: usize,
    /// `np × n` packed complex data words.
    pub data: Buf,
    /// `n` packed twiddles `psi^{bitrev(i)}`, `psi = exp(-iπ/N)` — shared.
    pub table: Buf,
    input: Vec<Vec<u64>>,
    table_host: Vec<u64>,
}

impl DftBatch {
    /// Build a batch with deterministic pseudo-random complex input.
    ///
    /// # Panics
    ///
    /// Panics if `np == 0`.
    pub fn sequential(gpu: &mut Gpu, log_n: u32, np: usize) -> Self {
        assert!(np > 0, "batch needs at least one sequence");
        let n = 1usize << log_n;
        let table_host: Vec<u64> = (0..n)
            .map(|i| {
                let r = bit_reverse(i, log_n) as f64;
                let theta = -std::f64::consts::PI * r / n as f64;
                pack(theta.cos() as f32, theta.sin() as f32)
            })
            .collect();
        let input: Vec<Vec<u64>> = (0..np)
            .map(|b| {
                (0..n)
                    .map(|i| {
                        let x = (i as f64 * 0.37 + b as f64).sin() as f32;
                        let y = (i as f64 * 0.11 - b as f64).cos() as f32;
                        pack(x, y)
                    })
                    .collect()
            })
            .collect();
        let mut data_host = Vec::with_capacity(np * n);
        for row in &input {
            data_host.extend_from_slice(row);
        }
        let data = gpu.gmem.alloc_from(&data_host);
        let table = gpu.gmem.alloc_from(&table_host);
        Self {
            n,
            np,
            data,
            table,
            input,
            table_host,
        }
    }

    /// Transform size.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Batch size.
    #[inline]
    pub fn np(&self) -> usize {
        self.np
    }

    /// Restore pristine input on the device.
    pub fn reset_data(&self, gpu: &mut Gpu) {
        for (i, row) in self.input.iter().enumerate() {
            gpu.gmem.write(self.data, i * self.n, row);
        }
    }

    /// Scalar reference output (same f32 dataflow ⇒ bit-exact).
    pub fn expected(&self) -> Vec<Vec<u64>> {
        self.input
            .iter()
            .map(|row| {
                let mut a = row.clone();
                let n = self.n;
                let mut t = n / 2;
                let mut m = 1;
                while m < n {
                    for i in 0..m {
                        let w = self.table_host[m + i];
                        let j1 = 2 * i * t;
                        for j in j1..j1 + t {
                            let u = a[j];
                            let v = cmul(a[j + t], w);
                            a[j] = cadd(u, v);
                            a[j + t] = csub(u, v);
                        }
                    }
                    m *= 2;
                    t /= 2;
                }
                a
            })
            .collect()
    }

    /// Verify device data against the reference (bit-exact).
    pub fn verify(&self, gpu: &Gpu) -> bool {
        (0..self.np)
            .all(|i| gpu.gmem.slice(self.data.sub(i * self.n, self.n)) == &self.expected()[i][..])
    }
}

// ---------------------------------------------------------------------------
// Radix-2 baseline (Fig. 3(b))
// ---------------------------------------------------------------------------

struct DftStageKernel {
    data: Buf,
    table: Buf,
    n: usize,
    np: usize,
    m: usize,
}

impl WarpKernel for DftStageKernel {
    fn phases(&self) -> usize {
        1
    }

    fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
        let half_n = self.n / 2;
        let total = self.np * half_n;
        let t = self.n / (2 * self.m);
        let lanes = ctx.lanes();
        let mut addr_a = vec![None; lanes];
        let mut addr_b = vec![None; lanes];
        let mut addr_w = vec![None; lanes];
        let mut active = 0u64;
        for l in 0..lanes {
            let gt = ctx.global_thread(l);
            if gt >= total {
                continue;
            }
            active += 1;
            let pr = gt / half_n;
            let b = gt % half_n;
            let i = b / t;
            let k = b % t;
            let x = i * 2 * t + k;
            addr_a[l] = Some(self.data.word(pr * self.n + x));
            addr_b[l] = Some(self.data.word(pr * self.n + x + t));
            addr_w[l] = Some(self.table.word(self.m + i));
        }
        if active == 0 {
            return;
        }
        let (a, b) = ctx.gmem_load2(&addr_a, &addr_b);
        let w = ctx.gmem_load_cached(&addr_w);
        let mut out_a = vec![None; lanes];
        let mut out_b = vec![None; lanes];
        for l in 0..lanes {
            let (Some(av), Some(bv), Some(wv)) = (a[l], b[l], w[l]) else {
                continue;
            };
            let v = cmul(bv, wv);
            out_a[l] = Some((addr_a[l].expect("active"), cadd(av, v)));
            out_b[l] = Some((addr_b[l].expect("active"), csub(av, v)));
        }
        ctx.count_op(OpClass::ComplexMul, active);
        ctx.count_op(OpClass::ComplexAddSub, 2 * active);
        ctx.gmem_store2(&out_a, &out_b);
    }
}

/// Run the batched DFT as `log2 N` radix-2 stage launches.
pub fn run_radix2(gpu: &mut Gpu, batch: &DftBatch) -> RunReport {
    let n = batch.n();
    let blocks = (batch.np() * n / 2).div_ceil(256);
    let mut m = 1;
    let mut launches = 0;
    while m < n {
        let kernel = DftStageKernel {
            data: batch.data,
            table: batch.table,
            n,
            np: batch.np(),
            m,
        };
        let cfg = LaunchConfig::new(format!("dft-radix2-m{m}"), blocks, 256).regs_per_thread(32);
        gpu.launch(&kernel, &cfg);
        launches += 1;
        m *= 2;
    }
    RunReport::from_trace("dft radix-2", gpu, launches)
}

// ---------------------------------------------------------------------------
// Register-based high radix (Fig. 5)
// ---------------------------------------------------------------------------

struct DftPassKernel {
    data: Buf,
    table: Buf,
    n: usize,
    np: usize,
    m0: usize,
    r: usize,
}

impl WarpKernel for DftPassKernel {
    fn phases(&self) -> usize {
        1
    }

    fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
        let items_per_prime = self.n / self.r;
        let total = self.np * items_per_prime;
        let sigma = self.n / (self.m0 * self.r);
        let seg_len = self.n / self.m0;
        let lanes = ctx.lanes();
        let mut base = vec![0usize; lanes];
        let mut i0 = vec![0usize; lanes];
        let mut live = vec![false; lanes];
        let mut active = 0u64;
        for l in 0..lanes {
            let gt = ctx.global_thread(l);
            if gt >= total {
                continue;
            }
            live[l] = true;
            active += 1;
            let pr = gt / items_per_prime;
            let item = gt % items_per_prime;
            i0[l] = item / sigma;
            base[l] = pr * self.n + i0[l] * seg_len + (item % sigma);
        }
        if active == 0 {
            return;
        }
        let mut vals = vec![vec![0u64; self.r]; lanes];
        for s in 0..self.r {
            let addrs: Vec<Option<usize>> = (0..lanes)
                .map(|l| live[l].then(|| self.data.word(base[l] + s * sigma)))
                .collect();
            let loaded = ctx.gmem_load(&addrs);
            for l in 0..lanes {
                if let Some(v) = loaded[l] {
                    vals[l][s] = v;
                }
            }
        }
        let mut m_loc = 1;
        let mut t_loc = self.r / 2;
        while m_loc < self.r {
            for i_loc in 0..m_loc {
                let w_addrs: Vec<Option<usize>> = (0..lanes)
                    .map(|l| live[l].then(|| self.table.word(m_loc * (self.m0 + i0[l]) + i_loc)))
                    .collect();
                let w = ctx.gmem_load_cached(&w_addrs);
                let j1 = 2 * i_loc * t_loc;
                for j in j1..j1 + t_loc {
                    for l in 0..lanes {
                        if !live[l] {
                            continue;
                        }
                        let u = vals[l][j];
                        let v = cmul(vals[l][j + t_loc], w[l].expect("active"));
                        vals[l][j] = cadd(u, v);
                        vals[l][j + t_loc] = csub(u, v);
                    }
                    ctx.count_op(OpClass::ComplexMul, active);
                    ctx.count_op(OpClass::ComplexAddSub, 2 * active);
                }
            }
            m_loc *= 2;
            t_loc /= 2;
        }
        for s in 0..self.r {
            let writes: Vec<Option<(usize, u64)>> = (0..lanes)
                .map(|l| live[l].then(|| (self.data.word(base[l] + s * sigma), vals[l][s])))
                .collect();
            ctx.gmem_store(&writes);
        }
    }
}

/// Run the batched DFT with radix-`r` register passes.
///
/// # Panics
///
/// Panics if `r` is not a power of two in `2..=N`.
pub fn run_high_radix(gpu: &mut Gpu, batch: &DftBatch, r: usize) -> RunReport {
    let n = batch.n();
    assert!(r.is_power_of_two() && r >= 2 && r <= n, "invalid radix");
    let mut m0 = 1usize;
    let mut launches = 0;
    while m0 < n {
        let r_pass = r.min(n / m0);
        let kernel = DftPassKernel {
            data: batch.data,
            table: batch.table,
            n,
            np: batch.np(),
            m0,
            r: r_pass,
        };
        let blocks = (batch.np() * n / r_pass).div_ceil(64);
        let cfg = LaunchConfig::new(format!("dft-radix{r}-m{m0}"), blocks, 64)
            .regs_per_thread(dft_regs_per_thread(r_pass));
        gpu.launch(&kernel, &cfg);
        launches += 1;
        m0 *= r_pass;
    }
    RunReport::from_trace(format!("dft high-radix-{r}"), gpu, launches)
}

// ---------------------------------------------------------------------------
// Two-kernel SMEM implementation (Fig. 11(b))
// ---------------------------------------------------------------------------

struct DftTwoStepKernel {
    data: Buf,
    table: Buf,
    n: usize,
    r: usize,
    t: usize,
    levels: Vec<usize>,
    c: usize,
    /// Kernel-1 (strided columns, `tw_base = 1`) vs Kernel-2 (rows).
    strided: bool,
}

impl DftTwoStepKernel {
    fn threads_per_group(&self) -> usize {
        self.r / self.t
    }

    fn groups_per_prime(&self) -> usize {
        self.n / self.r
    }

    fn split_tid(&self, tid: usize) -> (usize, usize) {
        if self.strided {
            (tid % self.c, tid / self.c)
        } else {
            (
                tid / self.threads_per_group(),
                tid % self.threads_per_group(),
            )
        }
    }

    fn elem_addr(&self, prime: usize, group: usize, e: usize) -> usize {
        let off = if self.strided {
            group + e * self.groups_per_prime()
        } else {
            group * self.r + e
        };
        self.data.word(prime * self.n + off)
    }

    fn m_before(&self, level: usize) -> usize {
        self.levels[..level].iter().product()
    }

    fn item_elem(&self, level: usize, item: usize, s: usize) -> usize {
        let m = self.m_before(level);
        let size = self.levels[level];
        let sigma = self.r / (m * size);
        (item / sigma) * (self.r / m) + (item % sigma) + s * sigma
    }

    fn twiddle_index(
        &self,
        level: usize,
        item: usize,
        m_loc: usize,
        i_loc: usize,
        group: usize,
    ) -> usize {
        let m = self.m_before(level);
        let size = self.levels[level];
        let sigma = self.r / (m * size);
        let base = if self.strided {
            1
        } else {
            self.groups_per_prime() + group
        };
        m_loc * (m * base + item / sigma) + i_loc
    }
}

impl WarpKernel for DftTwoStepKernel {
    fn phases(&self) -> usize {
        2 * self.levels.len()
    }

    fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
        let lanes = ctx.lanes();
        let tpg = self.threads_per_group();
        let blocks_per_prime = self.groups_per_prime() / self.c;
        let prime = ctx.block / blocks_per_prime;
        let block_in_prime = ctx.block % blocks_per_prime;
        let phase = ctx.phase;
        let n_levels = self.levels.len();

        if phase == 0 {
            let size = self.levels[0];
            for b in 0..self.t / size {
                for s in 0..size {
                    let addrs: Vec<Option<usize>> = (0..lanes)
                        .map(|l| {
                            let (c, u) = self.split_tid(ctx.thread_in_block(l));
                            let group = block_in_prime * self.c + c;
                            let e = self.item_elem(0, u + b * tpg, s);
                            Some(self.elem_addr(prime, group, e))
                        })
                        .collect();
                    let vals = ctx.gmem_load(&addrs);
                    for l in 0..lanes {
                        ctx.regs(l)[b * size + s] = vals[l].expect("active");
                    }
                }
            }
            return;
        }

        if phase % 2 == 1 {
            let level = (phase - 1) / 2;
            let size = self.levels[level];
            let subs = self.t / size;
            // Compute.
            for b in 0..subs {
                let mut m_loc = 1;
                let mut t_loc = size / 2;
                while m_loc < size {
                    for i_loc in 0..m_loc {
                        let w_addrs: Vec<Option<usize>> = (0..lanes)
                            .map(|l| {
                                let (c, u) = self.split_tid(ctx.thread_in_block(l));
                                let group = block_in_prime * self.c + c;
                                let idx =
                                    self.twiddle_index(level, u + b * tpg, m_loc, i_loc, group);
                                Some(self.table.word(idx))
                            })
                            .collect();
                        let w = ctx.gmem_load_cached(&w_addrs);
                        let j1 = 2 * i_loc * t_loc;
                        for j in j1..j1 + t_loc {
                            for l in 0..lanes {
                                let (s_lo, s_hi) = (b * size + j, b * size + j + t_loc);
                                let regs = ctx.regs(l);
                                let u_val = regs[s_lo];
                                let v = cmul(regs[s_hi], w[l].expect("active"));
                                regs[s_lo] = cadd(u_val, v);
                                regs[s_hi] = csub(u_val, v);
                            }
                            ctx.count_op(OpClass::ComplexMul, lanes as u64);
                            ctx.count_op(OpClass::ComplexAddSub, 2 * lanes as u64);
                        }
                    }
                    m_loc *= 2;
                    t_loc /= 2;
                }
            }
            // Store.
            let last = level + 1 == n_levels;
            for b in 0..subs {
                for s in 0..size {
                    let writes: Vec<Option<(usize, u64)>> = (0..lanes)
                        .map(|l| {
                            let (c, u) = self.split_tid(ctx.thread_in_block(l));
                            let e = self.item_elem(level, u + b * tpg, s);
                            let v = ctx.regs(l)[b * size + s];
                            if last {
                                let group = block_in_prime * self.c + c;
                                Some((self.elem_addr(prime, group, e), v))
                            } else {
                                Some((c * self.r + e, v))
                            }
                        })
                        .collect();
                    if last {
                        ctx.gmem_store(&writes);
                    } else {
                        ctx.smem_store(&writes);
                    }
                }
            }
        } else {
            let level = phase / 2;
            let size = self.levels[level];
            for b in 0..self.t / size {
                for s in 0..size {
                    let addrs: Vec<Option<usize>> = (0..lanes)
                        .map(|l| {
                            let (c, u) = self.split_tid(ctx.thread_in_block(l));
                            let e = self.item_elem(level, u + b * tpg, s);
                            Some(c * self.r + e)
                        })
                        .collect();
                    let vals = ctx.smem_load(&addrs);
                    for l in 0..lanes {
                        ctx.regs(l)[b * size + s] = vals[l].expect("active");
                    }
                }
            }
        }
    }
}

fn dft_level_sizes(r: usize, t: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut rem = r;
    while rem > 1 {
        let s = t.min(rem);
        out.push(s);
        rem /= s;
    }
    out
}

/// Run the two-kernel SMEM DFT with Kernel-1 size `n1` and `t`-point
/// per-thread DFTs.
///
/// # Panics
///
/// Panics on invalid `n1`/`t` (not powers of two, or out of range).
pub fn run_smem(gpu: &mut Gpu, batch: &DftBatch, n1: usize, t: usize) -> RunReport {
    let n = batch.n();
    assert!(n1.is_power_of_two() && n1 >= 2 && n1 <= n / 2, "invalid N1");
    assert!(t.is_power_of_two() && t >= 2, "invalid per-thread size");
    for (strided, r) in [(true, n1), (false, n / n1)] {
        let t_k = t.min(r);
        let tpg = r / t_k;
        let c = (256 / tpg).max(1).min(n / r);
        let kernel = DftTwoStepKernel {
            data: batch.data,
            table: batch.table,
            n,
            r,
            t: t_k,
            levels: dft_level_sizes(r, t_k),
            c,
            strided,
        };
        let blocks = batch.np() * (n / r) / c;
        let cfg = LaunchConfig::new(
            format!("dft-smem-{}-{r}", if strided { "k1" } else { "k2" }),
            blocks,
            c * tpg,
        )
        .regs_per_thread(dft_regs_per_thread(t_k))
        .smem_bytes(c * r * 8)
        .reg_slots(t_k);
        gpu.launch(&kernel, &cfg);
    }
    RunReport::from_trace(format!("dft smem {}x{} t{}", n1, n / n1, t), gpu, 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    #[test]
    fn pack_unpack_roundtrip() {
        let w = pack(1.5, -2.25);
        assert_eq!(unpack(w), (1.5, -2.25));
        let z = pack(0.0, 0.0);
        assert_eq!(unpack(z), (0.0, 0.0));
    }

    #[test]
    fn complex_ops_on_packed_words() {
        let i = pack(0.0, 1.0);
        assert_eq!(unpack(cmul(i, i)), (-1.0, 0.0));
        assert_eq!(unpack(cadd(pack(1.0, 2.0), pack(3.0, 4.0))), (4.0, 6.0));
        assert_eq!(unpack(csub(pack(1.0, 2.0), pack(3.0, 4.0))), (-2.0, -2.0));
    }

    #[test]
    fn radix2_dft_bit_exact() {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let batch = DftBatch::sequential(&mut gpu, 8, 3);
        let rep = run_radix2(&mut gpu, &batch);
        assert!(batch.verify(&gpu));
        assert_eq!(rep.launches.len(), 8);
    }

    #[test]
    fn high_radix_dft_bit_exact() {
        for r in [4usize, 16, 32] {
            let mut gpu = Gpu::new(GpuConfig::titan_v());
            let batch = DftBatch::sequential(&mut gpu, 9, 2);
            run_high_radix(&mut gpu, &batch, r);
            assert!(batch.verify(&gpu), "radix {r}");
        }
    }

    #[test]
    fn smem_dft_bit_exact() {
        for t in [2usize, 4, 8] {
            let mut gpu = Gpu::new(GpuConfig::titan_v());
            let batch = DftBatch::sequential(&mut gpu, 10, 2);
            run_smem(&mut gpu, &batch, 32, t);
            assert!(batch.verify(&gpu), "t={t}");
        }
    }

    #[test]
    fn dft_table_traffic_is_batch_independent() {
        // The paper's core DFT-vs-NTT contrast: one shared table.
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let b1 = DftBatch::sequential(&mut gpu, 10, 1);
        let r1 = run_radix2(&mut gpu, &b1);
        let mut gpu2 = Gpu::new(GpuConfig::titan_v());
        let b4 = DftBatch::sequential(&mut gpu2, 10, 4);
        let r4 = run_radix2(&mut gpu2, &b4);
        // Data traffic quadruples; unique table DRAM fetches do not.
        let d1 = r1.merged_stats().useful_write_bytes;
        let d4 = r4.merged_stats().useful_write_bytes;
        assert_eq!(d4, 4 * d1);
        // DRAM reads grow by ~4x data but table adds only a constant.
        let reads1 = r1.merged_stats().dram_read_transactions;
        let reads4 = r4.merged_stats().dram_read_transactions;
        assert!(reads4 < 4 * reads1 + 1024);
    }

    #[test]
    fn dft_occupancy_beats_ntt_at_radix_32() {
        // Fig. 4(c)/5(c): NTT's extra register state costs occupancy.
        assert!(dft_regs_per_thread(32) < crate::high_radix::ntt_regs_per_thread(32));
    }
}
