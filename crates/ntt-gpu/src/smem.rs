//! The two-kernel shared-memory (SMEM) implementation (paper §VI-C).
//!
//! An N-point NTT factors as `N = N1 × N2`:
//!
//! * **Kernel-1** performs `N2` strided `N1`-point NTTs (the first
//!   `log2 N1` Cooley–Tukey stages). All columns share the same `N1 - 1`
//!   twiddles, which can be *preloaded into SMEM* (Fig. 9). Loads touch
//!   addresses `column + s·N2`; merging several columns per block makes
//!   adjacent lanes read adjacent addresses (*coalescing*, Fig. 6/7).
//! * **Kernel-2** performs `N1` contiguous `N2`-point NTTs (the remaining
//!   stages). Each row needs its own twiddle-table slice — this is where
//!   the table traffic lives, and where on-the-fly twiddling (§VII) is
//!   applied to the last one or two stages.
//!
//! Within a kernel, an `R`-point NTT is decomposed into *per-thread
//! `T`-point NTTs* (T ∈ {2,4,8}, Fig. 2/10): each level runs in registers,
//! with a block barrier and an SMEM transpose between levels. The twiddle
//! index algebra is the `tw_base` composition derived in
//! `ntt_core::radix`.

// Kernel code models warp lanes with explicit indices into parallel
// per-lane arrays (live/base/vals/regs), mirroring the CUDA original;
// iterator rewrites would obscure the lane addressing the simulator counts.
#![allow(clippy::needless_range_loop)]

use crate::batch::DeviceBatch;
use crate::ot::DeviceOt;
use crate::radix2::ModMul;
use crate::report::RunReport;
use gpu_sim::{Buf, Gpu, LaunchConfig, OpClass, WarpCtx, WarpKernel};
use ntt_core::bitrev::bit_reverse;
use ntt_math::modops::{add_mod, mul_mod, sub_mod};
use ntt_math::shoup::mul_shoup;

/// Configuration of the SMEM implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmemConfig {
    /// Kernel-1 size `N1` (Kernel-2 size is `N / N1`).
    pub n1: usize,
    /// Per-thread NTT size `T` (2, 4 or 8 in the paper's Fig. 11).
    pub per_thread: usize,
    /// Merge columns into blocks so warp lanes hit adjacent addresses
    /// (paper Fig. 6(b); `false` reproduces the uncoalesced Fig. 6(a)).
    pub coalesced: bool,
    /// Preload Kernel-1's twiddles into shared memory (paper Fig. 9).
    pub preload: bool,
    /// Apply on-the-fly twiddling to the last `ot_stages` stages (0–2).
    pub ot_stages: u32,
    /// OT factorization base (the paper's best: 1024).
    pub ot_base: usize,
    /// Modular multiplication flavor (paper Fig. 1 runs this kernel with
    /// the native `%` sequence for comparison).
    pub modmul: ModMul,
}

impl SmemConfig {
    /// Defaults per the paper's best configuration: 8-point per-thread
    /// NTTs, coalesced, twiddles preloaded, OT off.
    pub fn new(n1: usize) -> Self {
        Self {
            n1,
            per_thread: 8,
            coalesced: true,
            preload: true,
            ot_stages: 0,
            ot_base: 1024,
            modmul: ModMul::Shoup,
        }
    }

    /// Set the per-thread NTT size.
    pub fn per_thread(mut self, t: usize) -> Self {
        self.per_thread = t;
        self
    }

    /// Toggle Kernel-1 coalescing.
    pub fn coalesced(mut self, on: bool) -> Self {
        self.coalesced = on;
        self
    }

    /// Toggle twiddle preloading into SMEM.
    pub fn preload(mut self, on: bool) -> Self {
        self.preload = on;
        self
    }

    /// Apply OT to the last `k` stages (0 disables).
    pub fn ot_stages(mut self, k: u32) -> Self {
        self.ot_stages = k;
        self
    }

    /// Select the modular-multiplication flavor.
    pub fn modmul(mut self, mode: ModMul) -> Self {
        self.modmul = mode;
        self
    }

    /// The Kernel-1 sizes the paper sweeps for a given `log2 N`
    /// (Fig. 12(a)'s four splits per N).
    pub fn paper_splits(log_n: u32) -> Vec<usize> {
        match log_n {
            14 => vec![256, 128, 64, 32],
            15 => vec![512, 256, 128, 64],
            16 => vec![512, 256, 128, 64],
            17 => vec![512, 256, 128, 64],
            _ => vec![1 << (log_n / 2)],
        }
    }

    /// Short label like `512x256 t8 +OT1`.
    pub fn label(&self, n: usize) -> String {
        let mut s = format!("{}x{} t{}", self.n1, n / self.n1, self.per_thread);
        if !self.coalesced {
            s.push_str(" uncoal");
        }
        if !self.preload {
            s.push_str(" nopre");
        }
        if self.ot_stages > 0 {
            s.push_str(&format!(" +OT{}", self.ot_stages));
        }
        if self.modmul == ModMul::Native {
            s.push_str(" native");
        }
        s
    }
}

/// Modeled 32-bit registers for a T-point-per-thread SMEM kernel.
pub(crate) fn regs_per_thread(t: usize) -> u32 {
    4 * t as u32 + 64
}

/// Which half of the factorization a kernel instance runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Orientation {
    /// Kernel-1: strided columns, shared twiddles (`tw_base = 1`).
    Strided,
    /// Kernel-2: contiguous rows, per-row twiddles (`tw_base = N1 + row`).
    Contiguous,
}

struct TwoStepKernel {
    data: Buf,
    /// Output buffer of the final level (same as `data` for the classic
    /// two-kernel split; the hierarchical row kernel stores into the
    /// original array while reading the transposed intermediate).
    out: Buf,
    /// Final stores go through SMEM and a cooperative coalesced write-out
    /// that *transposes* the block's tile: group `g`'s `r` points land
    /// contiguously at `out[g*r ..]` even though the kernel reads them
    /// strided. Used by the hierarchical row kernel so the result comes
    /// back in natural row-major layout.
    transposed_out: bool,
    tw: Buf,
    twc: Buf,
    n: usize,
    log_n: u32,
    moduli: Vec<u64>,
    /// RNS prime index of each data row (identity for a plain `np`-prime
    /// batch; `r % level` for stacked buffer-of-digits batches). Data
    /// addressing uses the row index, twiddle/modulus selection the prime.
    row_prime: Vec<usize>,
    /// This kernel's transform size (N1 or N2).
    r: usize,
    /// Per-thread NTT size.
    t: usize,
    /// Level sizes (all `t`, except a possibly smaller last level).
    levels: Vec<usize>,
    /// Groups (columns or rows) per block.
    c: usize,
    orientation: Orientation,
    coalesced: bool,
    preload: bool,
    /// Use the native `%` multiplication instead of Shoup's.
    native: bool,
    /// OT tables plus the first twiddle index handled by OT.
    ot: Option<(DeviceOt, usize)>,
}

impl TwoStepKernel {
    fn threads_per_group(&self) -> usize {
        self.r / self.t
    }

    fn groups_per_prime(&self) -> usize {
        self.n / self.r
    }

    /// (group-in-block, thread-in-group) for a block-local thread id.
    fn split_tid(&self, tid: usize) -> (usize, usize) {
        match self.orientation {
            // Kernel-1: adjacent lanes take adjacent columns (coalescing).
            Orientation::Strided => (tid % self.c, tid / self.c),
            // Kernel-2: adjacent lanes walk within a row (contiguous).
            Orientation::Contiguous => (
                tid / self.threads_per_group(),
                tid % self.threads_per_group(),
            ),
        }
    }

    /// Global word in `buf` for (row, group, local element).
    fn elem_addr(&self, buf: Buf, row: usize, group: usize, e: usize) -> usize {
        let off = match self.orientation {
            Orientation::Strided => group + e * self.groups_per_prime(),
            Orientation::Contiguous => group * self.r + e,
        };
        buf.word(row * self.n + off)
    }

    /// Global group index for (block-in-prime, group-in-block).
    fn global_group(&self, block_in_prime: usize, c: usize) -> usize {
        let blocks_per_prime = self.groups_per_prime() / self.c;
        if self.coalesced || self.orientation == Orientation::Contiguous {
            block_in_prime * self.c + c
        } else {
            // The paper's Fig. 6(a): columns strided across blocks.
            c * blocks_per_prime + block_in_prime
        }
    }

    /// The `tw_base` of a group's R-point NTT in the global table.
    fn group_tw_base(&self, group: usize) -> usize {
        match self.orientation {
            Orientation::Strided => 1,
            Orientation::Contiguous => self.groups_per_prime() + group,
        }
    }

    /// Product of level sizes before `level`.
    fn m_before(&self, level: usize) -> usize {
        self.levels[..level].iter().product()
    }

    /// Local element index of point `s` for work item `item` at `level`.
    fn item_elem(&self, level: usize, item: usize, s: usize) -> usize {
        let m = self.m_before(level);
        let size = self.levels[level];
        let sigma = self.r / (m * size);
        let i0 = item / sigma;
        let k = item % sigma;
        i0 * (self.r / m) + k + s * sigma
    }

    /// The global twiddle-table index for a butterfly of `level`.
    fn twiddle_index(
        &self,
        level: usize,
        item: usize,
        m_loc: usize,
        i_loc: usize,
        group: usize,
    ) -> usize {
        let m = self.m_before(level);
        let size = self.levels[level];
        let sigma = self.r / (m * size);
        let i0 = item / sigma;
        let tw_block = m * self.group_tw_base(group) + i0;
        m_loc * tw_block + i_loc
    }

    /// SMEM word of local element `e` for block-group `c`.
    fn smem_elem(&self, c: usize, e: usize) -> usize {
        c * self.r + e
    }

    /// SMEM offsets of the preloaded twiddle regions (values, companions).
    fn smem_tw_region(&self) -> (usize, usize) {
        (self.c * self.r, self.c * self.r + self.r)
    }

    /// Run one compute level over the warp, registers in `t`-slot frames.
    fn compute_level(&self, ctx: &mut WarpCtx<'_>, level: usize) {
        let lanes = ctx.lanes();
        let tpg = self.threads_per_group();
        let size = self.levels[level];
        let subs = self.t / size;
        let blocks_per_row = self.groups_per_prime() / self.c;
        let prime = self.row_prime[ctx.block / blocks_per_row];
        let block_in_prime = ctx.block % blocks_per_row;

        for b in 0..subs {
            let mut m_loc = 1;
            let mut t_loc = size / 2;
            while m_loc < size {
                for i_loc in 0..m_loc {
                    // Per-lane twiddle index (uniform stage, per-lane group).
                    let mut idxs = vec![0usize; lanes];
                    for l in 0..lanes {
                        let tid = ctx.thread_in_block(l);
                        let (c, u) = self.split_tid(tid);
                        let group = self.global_group(block_in_prime, c);
                        let item = u + b * tpg;
                        idxs[l] = self.twiddle_index(level, item, m_loc, i_loc, group);
                    }
                    let use_ot = self
                        .ot
                        .as_ref()
                        .map(|(_, thr)| idxs[0] >= *thr)
                        .unwrap_or(false);

                    // Fetch twiddles (or OT factors) for all lanes.
                    let (w, wc, hw, hc);
                    if use_ot {
                        let (ot, _) = self.ot.as_ref().expect("ot checked");
                        let mut a0 = vec![None; lanes];
                        let mut a1 = vec![None; lanes];
                        let mut a2 = vec![None; lanes];
                        let mut a3 = vec![None; lanes];
                        for l in 0..lanes {
                            let e = bit_reverse(idxs[l], self.log_n);
                            let (w0, c0, w1, c1) = ot.factor_addrs(prime, e);
                            a0[l] = Some(w0);
                            a1[l] = Some(c0);
                            a2[l] = Some(w1);
                            a3[l] = Some(c1);
                        }
                        w = ctx.gmem_load_cached(&a0);
                        wc = ctx.gmem_load_cached(&a1);
                        hw = Some(ctx.gmem_load_cached(&a2));
                        hc = Some(ctx.gmem_load_cached(&a3));
                    } else if self.preload && self.orientation == Orientation::Strided {
                        let (wr, cr) = self.smem_tw_region();
                        let a0: Vec<Option<usize>> = idxs.iter().map(|&i| Some(wr + i)).collect();
                        w = ctx.smem_load(&a0);
                        wc = if self.native {
                            vec![None; lanes]
                        } else {
                            let a1: Vec<Option<usize>> =
                                idxs.iter().map(|&i| Some(cr + i)).collect();
                            ctx.smem_load(&a1)
                        };
                        hw = None;
                        hc = None;
                    } else {
                        let a0: Vec<Option<usize>> = idxs
                            .iter()
                            .map(|&i| Some(self.tw.word(prime * self.n + i)))
                            .collect();
                        w = ctx.gmem_load_cached(&a0);
                        wc = if self.native {
                            vec![None; lanes]
                        } else {
                            let a1: Vec<Option<usize>> = idxs
                                .iter()
                                .map(|&i| Some(self.twc.word(prime * self.n + i)))
                                .collect();
                            ctx.gmem_load_cached(&a1)
                        };
                        hw = None;
                        hc = None;
                    }

                    // Butterflies for this (m_loc, i_loc) over all lanes.
                    let j1 = 2 * i_loc * t_loc;
                    for j in j1..j1 + t_loc {
                        for l in 0..lanes {
                            let p = self.moduli[prime];
                            let (s_lo, s_hi) = (b * size + j, b * size + j + t_loc);
                            let regs = ctx.regs(l);
                            let u_val = regs[s_lo];
                            let b_val = regs[s_hi];
                            let wv = w[l].expect("twiddle loaded");
                            let mut v = if self.native {
                                mul_mod(b_val, wv, p)
                            } else {
                                mul_shoup(b_val, wv, wc[l].expect("companion loaded"), p)
                            };
                            if use_ot {
                                let hwv = hw.as_ref().expect("ot hi")[l].expect("lane");
                                let hcv = hc.as_ref().expect("ot hi")[l].expect("lane");
                                v = mul_shoup(v, hwv, hcv, p);
                            }
                            let regs = ctx.regs(l);
                            regs[s_lo] = add_mod(u_val, v, p);
                            regs[s_hi] = sub_mod(u_val, v, p);
                        }
                        let n_ops = lanes as u64;
                        if self.native {
                            ctx.count_op(OpClass::NativeModMul, n_ops);
                        } else {
                            ctx.count_op(OpClass::ShoupMul, if use_ot { 2 * n_ops } else { n_ops });
                        }
                        ctx.count_op(OpClass::ModAddSub, 2 * n_ops);
                    }
                }
                m_loc *= 2;
                t_loc /= 2;
            }
        }
    }
}

impl WarpKernel for TwoStepKernel {
    fn phases(&self) -> usize {
        // The transposing write-out needs one extra cooperative phase.
        2 * self.levels.len() + usize::from(self.transposed_out)
    }

    fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
        let lanes = ctx.lanes();
        let tpg = self.threads_per_group();
        let threads = self.c * tpg;
        let blocks_per_row = self.groups_per_prime() / self.c;
        let row = ctx.block / blocks_per_row;
        let prime = self.row_prime[row];
        let block_in_prime = ctx.block % blocks_per_row;
        let n_levels = self.levels.len();
        let phase = ctx.phase;

        if phase == 0 {
            // Optional twiddle preload (Kernel-1 only): all threads
            // cooperatively stage Ψ[0..r] and companions into SMEM.
            if self.preload && self.orientation == Orientation::Strided {
                let (wr, cr) = self.smem_tw_region();
                let mut idx = ctx.warp * 32;
                while idx < self.r {
                    let g_addrs: Vec<Option<usize>> = (0..lanes)
                        .map(|l| {
                            let i = idx + l;
                            (i < self.r).then(|| self.tw.word(prime * self.n + i))
                        })
                        .collect();
                    let vals = ctx.gmem_load_cached(&g_addrs);
                    let writes: Vec<Option<(usize, u64)>> = (0..lanes)
                        .map(|l| vals[l].map(|v| (wr + idx + l, v)))
                        .collect();
                    ctx.smem_store(&writes);
                    if !self.native {
                        let c_addrs: Vec<Option<usize>> = (0..lanes)
                            .map(|l| {
                                let i = idx + l;
                                (i < self.r).then(|| self.twc.word(prime * self.n + i))
                            })
                            .collect();
                        let vals = ctx.gmem_load_cached(&c_addrs);
                        let writes: Vec<Option<(usize, u64)>> = (0..lanes)
                            .map(|l| vals[l].map(|v| (cr + idx + l, v)))
                            .collect();
                        ctx.smem_store(&writes);
                    }
                    idx += threads; // all warps advance together
                }
            }
            // Level-0 gather: GMEM -> registers. Without block merging the
            // per-warp pattern is scattered but dense across the grid, so
            // the loads are served through L2 (Fig. 6(a) behaviour).
            for s in 0..self.levels[0] {
                let subs = self.t / self.levels[0];
                for b in 0..subs {
                    let addrs: Vec<Option<usize>> = (0..lanes)
                        .map(|l| {
                            let tid = ctx.thread_in_block(l);
                            let (c, u) = self.split_tid(tid);
                            let group = self.global_group(block_in_prime, c);
                            let e = self.item_elem(0, u + b * tpg, s);
                            Some(self.elem_addr(self.data, row, group, e))
                        })
                        .collect();
                    let vals = if self.coalesced || self.orientation == Orientation::Contiguous {
                        ctx.gmem_load(&addrs)
                    } else {
                        ctx.gmem_load_cached(&addrs)
                    };
                    for l in 0..lanes {
                        ctx.regs(l)[b * self.levels[0] + s] = vals[l].expect("lane active");
                    }
                }
            }
            return;
        }

        if phase == 2 * n_levels {
            // Transposing write-out (hierarchical row kernel): the block's
            // finished tile sits in SMEM as `c` groups × `r` points; group
            // `g`'s points go contiguously to `out[(u0+g)*r ..]`, so SMEM
            // word `q` maps straight to output word `u0*r + q` and every
            // warp writes adjacent addresses (coalesced despite the
            // strided compute layout).
            let u0 = block_in_prime * self.c;
            let base = self.out.word(row * self.n + u0 * self.r);
            let tile = self.c * self.r;
            let mut q = ctx.warp * 32;
            while q < tile {
                let addrs: Vec<Option<usize>> = (0..lanes)
                    .map(|l| {
                        let i = q + l;
                        (i < tile).then_some(i)
                    })
                    .collect();
                let vals = ctx.smem_load(&addrs);
                let writes: Vec<Option<(usize, u64)>> = (0..lanes)
                    .map(|l| vals[l].map(|v| (base + q + l, v)))
                    .collect();
                ctx.gmem_store(&writes);
                q += threads; // all warps advance together
            }
            return;
        }

        if phase % 2 == 1 {
            // Compute level and store out.
            let level = (phase - 1) / 2;
            self.compute_level(ctx, level);
            let size = self.levels[level];
            let subs = self.t / size;
            // With a transposing write-out the last level parks its
            // results in SMEM for the final cooperative phase instead of
            // scattering strided stores to GMEM.
            let last = level + 1 == n_levels && !self.transposed_out;
            for b in 0..subs {
                for s in 0..size {
                    if last {
                        let writes: Vec<Option<(usize, u64)>> = (0..lanes)
                            .map(|l| {
                                let tid = ctx.thread_in_block(l);
                                let (c, u) = self.split_tid(tid);
                                let group = self.global_group(block_in_prime, c);
                                let e = self.item_elem(level, u + b * tpg, s);
                                let v = ctx.regs(l)[b * size + s];
                                Some((self.elem_addr(self.out, row, group, e), v))
                            })
                            .collect();
                        if self.coalesced || self.orientation == Orientation::Contiguous {
                            ctx.gmem_store(&writes);
                        } else {
                            ctx.gmem_store_merged(&writes);
                        }
                    } else {
                        let writes: Vec<Option<(usize, u64)>> = (0..lanes)
                            .map(|l| {
                                let tid = ctx.thread_in_block(l);
                                let (c, u) = self.split_tid(tid);
                                let e = self.item_elem(level, u + b * tpg, s);
                                let v = ctx.regs(l)[b * size + s];
                                Some((self.smem_elem(c, e), v))
                            })
                            .collect();
                        ctx.smem_store(&writes);
                    }
                }
            }
        } else {
            // Gather the next level from SMEM (the Fig. 2 "transposed" load).
            let level = phase / 2;
            let size = self.levels[level];
            let subs = self.t / size;
            for b in 0..subs {
                for s in 0..size {
                    let addrs: Vec<Option<usize>> = (0..lanes)
                        .map(|l| {
                            let tid = ctx.thread_in_block(l);
                            let (c, u) = self.split_tid(tid);
                            let e = self.item_elem(level, u + b * tpg, s);
                            Some(self.smem_elem(c, e))
                        })
                        .collect();
                    let vals = ctx.smem_load(&addrs);
                    for l in 0..lanes {
                        ctx.regs(l)[b * size + s] = vals[l].expect("lane active");
                    }
                }
            }
        }
    }
}

/// Decompose `r` into per-thread levels: `t`-sized levels, big first, with
/// a smaller final level when `log2 t ∤ log2 r`.
pub(crate) fn level_sizes(r: usize, t: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut rem = r;
    while rem > 1 {
        let s = t.min(rem);
        out.push(s);
        rem /= s;
    }
    out
}

/// Block shape for an `r`-point kernel with `t`-point threads: ~256-thread
/// blocks built from whole groups (never more groups than exist).
pub(crate) fn launch_shape(r: usize, t: usize, groups_per_prime: usize) -> (usize, usize) {
    let tpg = r / t;
    let c = (256 / tpg).max(1).min(groups_per_prime);
    (c, c * tpg)
}

/// A device-side SMEM NTT problem decoupled from [`DeviceBatch`]: raw data
/// and twiddle buffers plus the row→prime mapping. This is what lets the
/// `SimBackend` route arbitrary (stacked, device-resident) batches through
/// the two-kernel implementation.
pub(crate) struct SmemJob<'a> {
    /// `rows × N` data words, transformed in place.
    pub data: Buf,
    /// `np × N` forward twiddle values (bit-reversed).
    pub tw: Buf,
    /// `np × N` Shoup companions.
    pub twc: Buf,
    /// Transform size `N`.
    pub n: usize,
    /// `log2 N`.
    pub log_n: u32,
    /// Per-prime moduli (indexed by prime id).
    pub moduli: &'a [u64],
    /// RNS prime index of each data row.
    pub row_prime: &'a [usize],
}

/// Whether an `n`-point SMEM run with this config fits the device's
/// launch limits (threads per block, shared memory per block) for **both**
/// kernels. Used by the `SimBackend` split selection to skip infeasible
/// candidates instead of panicking inside the launch asserts.
pub(crate) fn job_feasible(n: usize, cfg: &SmemConfig, config: &gpu_sim::GpuConfig) -> bool {
    for r in [cfg.n1, n / cfg.n1] {
        if r < 2 {
            return false;
        }
        let t = cfg.per_thread.min(r);
        let (c, threads) = launch_shape(r, t, n / r);
        if threads > config.max_threads_per_block as usize {
            return false;
        }
        let smem_words = c * r + 2 * r; // worst case: preload on
        if smem_words * 8 > config.max_smem_per_block as usize {
            return false;
        }
    }
    true
}

fn make_kernel(
    job: &SmemJob<'_>,
    cfg: &SmemConfig,
    orientation: Orientation,
    ot: Option<(DeviceOt, usize)>,
) -> (TwoStepKernel, LaunchConfig) {
    let n = job.n;
    let r = match orientation {
        Orientation::Strided => cfg.n1,
        Orientation::Contiguous => n / cfg.n1,
    };
    let t = cfg.per_thread.min(r);
    let (c, threads) = launch_shape(r, t, n / r);
    let levels = level_sizes(r, t);
    let preload = cfg.preload && orientation == Orientation::Strided;
    let smem_words = c * r + if preload { 2 * r } else { 0 };
    let blocks = job.row_prime.len() * (n / r) / c;
    let name = match orientation {
        Orientation::Strided => format!("smem-k1-{r}"),
        Orientation::Contiguous => format!("smem-k2-{r}"),
    };
    let kernel = TwoStepKernel {
        data: job.data,
        out: job.data,
        transposed_out: false,
        tw: job.tw,
        twc: job.twc,
        n,
        log_n: job.log_n,
        moduli: job.moduli.to_vec(),
        row_prime: job.row_prime.to_vec(),
        r,
        t,
        levels,
        c,
        orientation,
        coalesced: cfg.coalesced,
        preload: cfg.preload,
        native: cfg.modmul == ModMul::Native,
        ot,
    };
    let launch = LaunchConfig::new(name, blocks, threads)
        .regs_per_thread(regs_per_thread(t))
        .smem_bytes(smem_words * 8)
        .reg_slots(t);
    (kernel, launch)
}

/// One sub-NTT stage of the hierarchical (4-step) plan: `N/r` strided
/// compact `r`-point NTTs per row. Because every group sits below an
/// inter-block twist, they all share `tw_base = 1`, i.e. the first `r`
/// entries of the global table — which *are* the compact size-`r` table —
/// so the stage needs no twiddle uploads of its own and preloads them into
/// SMEM like Kernel-1.
pub(crate) struct HierStageJob<'a> {
    /// Input buffer (`rows × N`), read strided: element `e` of group `g`
    /// lives at `g + e·(N/r)`.
    pub data: Buf,
    /// Output buffer (`rows × N`). Equal to `data` for the in-place column
    /// stage; the row stage writes the transposed intermediate back to the
    /// original array.
    pub out: Buf,
    /// Store group `g` contiguously at `out[g·r ..]` via the SMEM-staged
    /// transposing write-out (row stage) instead of in place (column
    /// stage).
    pub contiguous_out: bool,
    /// `np × N` forward twiddle values (bit-reversed global table).
    pub tw: Buf,
    /// `np × N` Shoup companions.
    pub twc: Buf,
    /// Full transform size `N` (row stride).
    pub n: usize,
    /// `log2 N`.
    pub log_n: u32,
    /// This stage's sub-NTT size.
    pub r: usize,
    /// Per-thread NTT size.
    pub per_thread: usize,
    /// Per-prime moduli (indexed by prime id).
    pub moduli: &'a [u64],
    /// RNS prime index of each data row.
    pub row_prime: &'a [usize],
    /// Kernel label, e.g. `hier-col-256`.
    pub name: String,
}

/// Launch one hierarchical sub-NTT stage (one kernel).
pub(crate) fn launch_hier_stage(gpu: &mut Gpu, job: &HierStageJob<'_>) {
    assert!(
        job.r.is_power_of_two() && job.r >= 2 && job.r <= job.n / 2,
        "invalid hierarchical sub-NTT size"
    );
    let t = job.per_thread.min(job.r);
    let groups = job.n / job.r;
    let (c, threads) = launch_shape(job.r, t, groups);
    let levels = level_sizes(job.r, t);
    // Data tile + preloaded twiddle values and companions.
    let smem_words = c * job.r + 2 * job.r;
    let blocks = job.row_prime.len() * groups / c;
    let kernel = TwoStepKernel {
        data: job.data,
        out: job.out,
        transposed_out: job.contiguous_out,
        tw: job.tw,
        twc: job.twc,
        n: job.n,
        log_n: job.log_n,
        moduli: job.moduli.to_vec(),
        row_prime: job.row_prime.to_vec(),
        r: job.r,
        t,
        levels,
        c,
        orientation: Orientation::Strided,
        coalesced: true,
        preload: true,
        native: false,
        ot: None,
    };
    let launch = LaunchConfig::new(job.name.clone(), blocks, threads)
        .regs_per_thread(regs_per_thread(t))
        .smem_bytes(smem_words * 8)
        .reg_slots(t);
    gpu.launch(&kernel, &launch);
}

/// Launch the two SMEM kernels over an arbitrary row-mapped job. Returns
/// the launch count (always 2). Shared by [`run_with_ot`] (identity
/// mapping over a [`DeviceBatch`]) and the `SimBackend` forward path
/// (stacked / device-resident batches).
///
/// # Panics
///
/// Panics on invalid splits (`n1` must be a power of two with
/// `2 ≤ n1 ≤ N/2`), or if OT stages are requested without tables.
pub(crate) fn launch_job(
    gpu: &mut Gpu,
    job: &SmemJob<'_>,
    cfg: &SmemConfig,
    ot: Option<&DeviceOt>,
) -> usize {
    let n = job.n;
    assert!(
        cfg.n1.is_power_of_two() && cfg.n1 >= 2 && cfg.n1 <= n / 2,
        "invalid N1 split"
    );
    assert!(
        cfg.per_thread.is_power_of_two() && cfg.per_thread >= 2,
        "invalid per-thread size"
    );
    assert!(cfg.ot_stages <= 2, "OT supported on the last 1-2 stages");
    assert!(
        !(cfg.ot_stages > 0 && cfg.modmul == ModMul::Native),
        "OT requires Shoup multiplication"
    );
    let ot_pair = if cfg.ot_stages > 0 {
        let tables = *ot.expect("OT stages requested but no tables supplied");
        let threshold = n >> cfg.ot_stages;
        assert!(
            (1usize << cfg.ot_stages) <= n / cfg.n1,
            "OT stages must lie within Kernel-2"
        );
        Some((tables, threshold))
    } else {
        None
    };

    let (k1, l1) = make_kernel(job, cfg, Orientation::Strided, None);
    gpu.launch(&k1, &l1);
    let (k2, l2) = make_kernel(job, cfg, Orientation::Contiguous, ot_pair);
    gpu.launch(&k2, &l2);
    2
}

/// Run the two-kernel SMEM NTT with pre-uploaded OT tables (reuse across
/// sweeps). `ot` is required iff `cfg.ot_stages > 0`.
///
/// # Panics
///
/// Panics on invalid splits (`n1` must be a power of two with
/// `2 ≤ n1 ≤ N/2`), or if OT stages are requested without tables.
pub fn run_with_ot(
    gpu: &mut Gpu,
    batch: &DeviceBatch,
    cfg: &SmemConfig,
    ot: Option<&DeviceOt>,
) -> RunReport {
    let n = batch.n();
    let job = SmemJob {
        data: batch.data,
        tw: batch.twiddles,
        twc: batch.companions,
        n,
        log_n: batch.log_n(),
        moduli: batch.moduli(),
        row_prime: batch.row_prime(),
    };
    let launches = launch_job(gpu, &job, cfg, ot);
    RunReport::from_trace(format!("smem {}", cfg.label(n)), gpu, launches)
}

/// Run the two-kernel SMEM NTT, uploading OT tables on demand.
pub fn run(gpu: &mut Gpu, batch: &DeviceBatch, cfg: &SmemConfig) -> RunReport {
    let ot = (cfg.ot_stages > 0).then(|| DeviceOt::upload(gpu, batch, cfg.ot_base));
    run_with_ot(gpu, batch, cfg, ot.as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    fn setup(log_n: u32, np: usize) -> (Gpu, DeviceBatch) {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let batch = DeviceBatch::sequential(&mut gpu, log_n, np, 60).unwrap();
        (gpu, batch)
    }

    #[test]
    fn bit_exact_across_splits_and_thread_sizes() {
        for n1 in [4usize, 16, 64] {
            for t in [2usize, 4, 8] {
                let (mut gpu, batch) = setup(10, 2);
                let cfg = SmemConfig::new(n1).per_thread(t);
                let rep = run(&mut gpu, &batch, &cfg);
                assert!(rep.verify(&gpu, &batch), "n1={n1} t={t}");
                assert_eq!(rep.launches.len(), 2);
            }
        }
    }

    #[test]
    fn bit_exact_without_coalescing_or_preload() {
        let (mut gpu, batch) = setup(9, 2);
        let cfg = SmemConfig::new(32).coalesced(false).preload(false);
        let rep = run(&mut gpu, &batch, &cfg);
        assert!(rep.verify(&gpu, &batch));
    }

    #[test]
    fn bit_exact_with_ot() {
        for stages in [1u32, 2] {
            let (mut gpu, batch) = setup(10, 2);
            let cfg = SmemConfig::new(32).ot_stages(stages);
            let rep = run(&mut gpu, &batch, &cfg);
            assert!(rep.verify(&gpu, &batch), "ot_stages={stages}");
        }
    }

    #[test]
    fn coalescing_reduces_l2_pressure_and_time() {
        // Uncoalesced Kernel-1 accesses are scattered per warp but dense
        // across the grid, so they are absorbed by L2 (Fig. 6(a)): the
        // penalty shows as L2 transactions and time, not DRAM waste.
        let (mut gpu, batch) = setup(12, 2);
        let coal = run(&mut gpu, &batch, &SmemConfig::new(64));
        batch.reset_data(&mut gpu);
        let uncoal = run(&mut gpu, &batch, &SmemConfig::new(64).coalesced(false));
        let l2_c = coal.launches[0].stats.l2_read_transactions;
        let l2_u = uncoal.launches[0].stats.l2_read_transactions;
        assert!(l2_u > 2 * l2_c, "coalesced {l2_c} vs uncoalesced {l2_u}");
        // The end-to-end time penalty (~21% at paper scale, Fig. 7) needs
        // a saturated grid; at this test size we check the modeled L2
        // component directly.
        assert!(
            uncoal.launches[0].timing.t_l2_s > 2.0 * coal.launches[0].timing.t_l2_s,
            "uncoalesced should pay more L2 time"
        );
    }

    #[test]
    fn preload_cuts_l2_pressure() {
        let (mut gpu, batch) = setup(12, 2);
        let pre = run(&mut gpu, &batch, &SmemConfig::new(64));
        batch.reset_data(&mut gpu);
        let nopre = run(&mut gpu, &batch, &SmemConfig::new(64).preload(false));
        assert!(
            nopre.launches[0].stats.l2_read_transactions
                > 2 * pre.launches[0].stats.l2_read_transactions
        );
    }

    #[test]
    fn ot_reduces_dram_traffic() {
        let (mut gpu, batch) = setup(12, 4);
        let base = run(&mut gpu, &batch, &SmemConfig::new(64));
        batch.reset_data(&mut gpu);
        let ot = run(&mut gpu, &batch, &SmemConfig::new(64).ot_stages(2));
        let d_base = base.dram_bytes(&gpu);
        let d_ot = ot.dram_bytes(&gpu);
        assert!(
            d_ot < d_base,
            "OT should reduce traffic: {d_ot} vs {d_base}"
        );
        // And it costs extra Shoup muls.
        assert!(
            ot.merged_stats().op(OpClass::ShoupMul) > base.merged_stats().op(OpClass::ShoupMul)
        );
    }

    #[test]
    fn smaller_per_thread_means_more_barriers() {
        let (mut gpu, batch) = setup(12, 1);
        let t8 = run(&mut gpu, &batch, &SmemConfig::new(64).per_thread(8));
        batch.reset_data(&mut gpu);
        let t2 = run(&mut gpu, &batch, &SmemConfig::new(64).per_thread(2));
        assert!(t2.merged_stats().barriers > t8.merged_stats().barriers);
    }

    #[test]
    fn two_dram_round_trips_for_data() {
        // The SMEM design's whole point: data crosses DRAM twice
        // (once per kernel), not log2(N) times.
        let (mut gpu, batch) = setup(12, 2);
        let rep = run(&mut gpu, &batch, &SmemConfig::new(64));
        let stats = rep.merged_stats();
        let data_words = (2 * 4096 * 2) as u64; // np * N * (two kernels)
        assert_eq!(stats.useful_write_bytes, data_words * 8);
    }

    #[test]
    fn paper_splits_shape() {
        assert_eq!(SmemConfig::paper_splits(17), vec![512, 256, 128, 64]);
        assert_eq!(SmemConfig::paper_splits(14).len(), 4);
    }
}
