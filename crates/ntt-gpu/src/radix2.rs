//! The radix-2 baseline: one kernel launch per Cooley–Tukey stage.
//!
//! This is the paper's baseline implementation (Table II "Radix-2",
//! Fig. 3(a)): `log2 N` kernel launches, each performing `np · N/2`
//! butterflies with one thread per butterfly. Twiddles (and their Shoup
//! companions) are fetched through the read-only path. The whole working
//! set streams through DRAM once per stage — which is exactly why the
//! paper's optimized versions exist.
//!
//! The same kernel doubles as the Fig. 1 experiment: [`ModMul::Native`]
//! replaces Shoup's multiplication with the native `%`-based sequence
//! (no companion loads, vastly more compute slots).

use crate::batch::DeviceBatch;
use crate::report::RunReport;
use gpu_sim::{Buf, Gpu, LaunchConfig, OpClass, WarpCtx, WarpKernel};
use ntt_math::modops::{add_mod, mul_mod, sub_mod};
use ntt_math::shoup::mul_shoup;

/// Which modular multiplication the butterfly uses (paper Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModMul {
    /// Shoup's multiplication with precomputed companions (Algorithm 4).
    Shoup,
    /// Native `%`-based reduction (the 68-instruction sequence).
    Native,
}

/// Threads per block for the baseline kernel.
const THREADS: usize = 256;

/// Modeled 32-bit registers per thread: two u64 operands, twiddle pair,
/// modulus and addressing — far below any occupancy cliff.
const REGS: u32 = 48;

/// One forward Cooley–Tukey stage over a batch of limb rows.
///
/// Rows are mapped to primes through `row_prime` (identity for a plain
/// `np`-prime batch; `r % level` for a buffer-of-digits batch with stacked
/// polynomials), so the same kernel serves [`run`] and the `SimBackend`
/// trait calls. Twiddles are consumed as the per-stage
/// `(value, companion)` **slice-pair** `Ψ[m..2m]` — the hoisted stage
/// iteration of `ntt_core::ct` — fetched through one paired read-only load
/// per warp ([`gpu_sim::WarpCtx::gmem_load_cached2`]).
pub(crate) struct StageKernel<'a> {
    pub(crate) data: Buf,
    pub(crate) tw: Buf,
    pub(crate) twc: Buf,
    pub(crate) n: usize,
    pub(crate) rows: usize,
    /// RNS prime index of each data row (twiddle/modulus selector).
    pub(crate) row_prime: &'a [usize],
    pub(crate) moduli: &'a [u64],
    /// Stage value `m` (1, 2, 4, … N/2).
    pub(crate) m: usize,
    pub(crate) mode: ModMul,
}

impl WarpKernel for StageKernel<'_> {
    fn phases(&self) -> usize {
        1
    }

    fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
        let half_n = self.n / 2;
        let total = self.rows * half_n;
        let t = self.n / (2 * self.m);
        let lanes = ctx.lanes();

        // Per-lane butterfly coordinates. The stage's twiddle slice starts
        // at word `m` of each prime's table (the `m..2m` slice-pair); only
        // the block index `i` varies per lane.
        let mut addr_a = vec![None; lanes];
        let mut addr_b = vec![None; lanes];
        let mut addr_w = vec![None; lanes];
        let mut prime = vec![0usize; lanes];
        let mut active = 0u64;
        for l in 0..lanes {
            let gt = ctx.global_thread(l);
            if gt >= total {
                continue;
            }
            active += 1;
            let row = gt / half_n;
            let pr = self.row_prime[row];
            let b = gt % half_n;
            let i = b / t;
            let k = b % t;
            let x = i * 2 * t + k;
            prime[l] = pr;
            addr_a[l] = Some(self.data.word(row * self.n + x));
            addr_b[l] = Some(self.data.word(row * self.n + x + t));
            addr_w[l] = Some(pr * self.n + self.m + i);
        }
        if active == 0 {
            return;
        }

        let (a, b) = ctx.gmem_load2(&addr_a, &addr_b);
        let w_addrs: Vec<Option<usize>> =
            addr_w.iter().map(|o| o.map(|i| self.tw.word(i))).collect();
        let (w, wc) = match self.mode {
            ModMul::Shoup => {
                // Hoisted (value, companion) slice-pair: one paired cached
                // fetch per warp instead of two independent table walks.
                let c_addrs: Vec<Option<usize>> =
                    addr_w.iter().map(|o| o.map(|i| self.twc.word(i))).collect();
                let (w, wc) = ctx.gmem_load_cached2(&w_addrs, &c_addrs);
                (w, Some(wc))
            }
            ModMul::Native => (ctx.gmem_load_cached(&w_addrs), None),
        };

        let mut out_a = vec![None; lanes];
        let mut out_b = vec![None; lanes];
        for l in 0..lanes {
            let (Some(av), Some(bv), Some(wv)) = (a[l], b[l], w[l]) else {
                continue;
            };
            let p = self.moduli[prime[l]];
            let v = match self.mode {
                ModMul::Shoup => {
                    let cv = wc.as_ref().expect("companions loaded")[l].expect("lane active");
                    mul_shoup(bv, wv, cv, p)
                }
                ModMul::Native => mul_mod(bv, wv, p),
            };
            out_a[l] = Some((addr_a[l].expect("lane active"), add_mod(av, v, p)));
            out_b[l] = Some((addr_b[l].expect("lane active"), sub_mod(av, v, p)));
        }
        match self.mode {
            ModMul::Shoup => ctx.count_op(OpClass::ShoupMul, active),
            ModMul::Native => ctx.count_op(OpClass::NativeModMul, active),
        }
        ctx.count_op(OpClass::ModAddSub, 2 * active);
        ctx.gmem_store2(&out_a, &out_b);
    }
}

/// Gentleman-Sande inverse stage: butterflies `(u, v) -> (u+v, w*(u-v))`
/// with inverse twiddles; a final launch folds in `N^{-1}`. Rows map to
/// primes through `row_prime` and the stage's `(value, companion)`
/// slice-pair `Ψ⁻¹[h..2h]` is fetched as one paired cached load, exactly
/// like [`StageKernel`].
pub(crate) struct InverseStageKernel<'a> {
    pub(crate) data: Buf,
    pub(crate) itw: Buf,
    pub(crate) itwc: Buf,
    pub(crate) n: usize,
    pub(crate) rows: usize,
    pub(crate) row_prime: &'a [usize],
    pub(crate) moduli: &'a [u64],
    /// Half-group count `h` (N/2, N/4, ... 1).
    pub(crate) h: usize,
}

impl WarpKernel for InverseStageKernel<'_> {
    fn phases(&self) -> usize {
        1
    }

    fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
        let half_n = self.n / 2;
        let total = self.rows * half_n;
        let t = half_n / self.h;
        let lanes = ctx.lanes();
        let mut addr_a = vec![None; lanes];
        let mut addr_b = vec![None; lanes];
        let mut addr_w = vec![None; lanes];
        let mut prime = vec![0usize; lanes];
        let mut active = 0u64;
        for l in 0..lanes {
            let gt = ctx.global_thread(l);
            if gt >= total {
                continue;
            }
            active += 1;
            let row = gt / half_n;
            let pr = self.row_prime[row];
            let b = gt % half_n;
            let i = b / t;
            let k = b % t;
            let x = i * 2 * t + k;
            prime[l] = pr;
            addr_a[l] = Some(self.data.word(row * self.n + x));
            addr_b[l] = Some(self.data.word(row * self.n + x + t));
            addr_w[l] = Some(pr * self.n + self.h + i);
        }
        if active == 0 {
            return;
        }
        let (a, b) = ctx.gmem_load2(&addr_a, &addr_b);
        let w_addrs: Vec<Option<usize>> =
            addr_w.iter().map(|o| o.map(|i| self.itw.word(i))).collect();
        let c_addrs: Vec<Option<usize>> = addr_w
            .iter()
            .map(|o| o.map(|i| self.itwc.word(i)))
            .collect();
        let (w, wc) = ctx.gmem_load_cached2(&w_addrs, &c_addrs);
        let mut out_a = vec![None; lanes];
        let mut out_b = vec![None; lanes];
        for l in 0..lanes {
            let (Some(av), Some(bv), Some(wv)) = (a[l], b[l], w[l]) else {
                continue;
            };
            let p = self.moduli[prime[l]];
            let cv = wc[l].expect("companion loaded");
            out_a[l] = Some((addr_a[l].expect("active"), add_mod(av, bv, p)));
            out_b[l] = Some((
                addr_b[l].expect("active"),
                mul_shoup(sub_mod(av, bv, p), wv, cv, p),
            ));
        }
        ctx.count_op(OpClass::ShoupMul, active);
        ctx.count_op(OpClass::ModAddSub, 2 * active);
        ctx.gmem_store2(&out_a, &out_b);
    }
}

/// Final `x <- N^{-1} * x` scaling pass of the inverse transform.
pub(crate) struct ScaleKernel<'a> {
    pub(crate) data: Buf,
    pub(crate) n: usize,
    pub(crate) rows: usize,
    pub(crate) row_prime: &'a [usize],
    /// Per-prime `(N^{-1}, companion, p)`.
    pub(crate) n_inv: &'a [(u64, u64, u64)],
}

impl WarpKernel for ScaleKernel<'_> {
    fn phases(&self) -> usize {
        1
    }

    fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
        let total = self.rows * self.n;
        let lanes = ctx.lanes();
        let mut addrs = vec![None; lanes];
        let mut prime = vec![0usize; lanes];
        let mut active = 0u64;
        for l in 0..lanes {
            let gt = ctx.global_thread(l);
            if gt >= total {
                continue;
            }
            active += 1;
            prime[l] = self.row_prime[gt / self.n];
            addrs[l] = Some(self.data.word(gt));
        }
        if active == 0 {
            return;
        }
        let vals = ctx.gmem_load(&addrs);
        let writes: Vec<Option<(usize, u64)>> = (0..lanes)
            .map(|l| {
                vals[l].map(|v| {
                    let (ninv, c, p) = self.n_inv[prime[l]];
                    (addrs[l].expect("active"), mul_shoup(v, ninv, c, p))
                })
            })
            .collect();
        ctx.count_op(OpClass::ShoupMul, active);
        ctx.gmem_store(&writes);
    }
}

/// Launch the `log2 N` forward stage kernels over `rows` limb rows held at
/// `data`, row `r` under prime `row_prime[r]`. Returns the launch count.
/// Shared by [`run`] (identity mapping over a [`DeviceBatch`]) and the
/// `SimBackend` trait calls (stacked-polynomial mappings).
// Mirrors the CUDA-style launch signature (device pointers + shape); a
// params struct would only rename the same eight fields.
#[allow(clippy::too_many_arguments)]
pub(crate) fn launch_forward(
    gpu: &mut Gpu,
    data: Buf,
    tw: Buf,
    twc: Buf,
    n: usize,
    row_prime: &[usize],
    moduli: &[u64],
    mode: ModMul,
) -> usize {
    let rows = row_prime.len();
    let blocks = (rows * n / 2).div_ceil(THREADS);
    let mut m = 1;
    let mut launches = 0;
    while m < n {
        let kernel = StageKernel {
            data,
            tw,
            twc,
            n,
            rows,
            row_prime,
            moduli,
            m,
            mode,
        };
        let cfg = LaunchConfig::new(format!("radix2-m{m}"), blocks, THREADS).regs_per_thread(REGS);
        gpu.launch(&kernel, &cfg);
        launches += 1;
        m *= 2;
    }
    launches
}

/// Launch the inverse stage kernels plus the `N^{-1}` scaling pass
/// (see [`launch_forward`] for the row mapping). `n_inv` holds one
/// `(N^{-1}, companion, p)` triple per prime. Returns the launch count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn launch_inverse(
    gpu: &mut Gpu,
    data: Buf,
    itw: Buf,
    itwc: Buf,
    n: usize,
    row_prime: &[usize],
    moduli: &[u64],
    n_inv: &[(u64, u64, u64)],
) -> usize {
    let rows = row_prime.len();
    let blocks = (rows * n / 2).div_ceil(THREADS);
    let mut h = n / 2;
    let mut launches = 0;
    while h >= 1 {
        let kernel = InverseStageKernel {
            data,
            itw,
            itwc,
            n,
            rows,
            row_prime,
            moduli,
            h,
        };
        let cfg = LaunchConfig::new(format!("iradix2-h{h}"), blocks, THREADS).regs_per_thread(REGS);
        gpu.launch(&kernel, &cfg);
        launches += 1;
        h /= 2;
    }
    let scale = ScaleKernel {
        data,
        n,
        rows,
        row_prime,
        n_inv,
    };
    let cfg = LaunchConfig::new("intt-scale", (rows * n).div_ceil(THREADS), THREADS)
        .regs_per_thread(REGS);
    gpu.launch(&scale, &cfg);
    launches + 1
}

/// Run the batched **inverse** NTT (bit-reversed input, natural-order
/// output, `N^{-1}` folded into a final scaling launch). Inverse twiddle
/// tables are uploaded on demand from the batch's host tables.
pub fn run_inverse(gpu: &mut Gpu, batch: &DeviceBatch) -> RunReport {
    let n = batch.n();
    let np = batch.np();
    let mut itw_host = Vec::with_capacity(np * n);
    let mut itwc_host = Vec::with_capacity(np * n);
    let mut n_inv = Vec::with_capacity(np);
    for i in 0..np {
        let t = batch.table(i);
        itw_host.extend_from_slice(t.inverse_values());
        itwc_host.extend_from_slice(t.inverse_companions());
        n_inv.push((t.n_inv().value(), t.n_inv().companion(), t.modulus()));
    }
    let itw = gpu.gmem.alloc_from(&itw_host);
    let itwc = gpu.gmem.alloc_from(&itwc_host);

    let launches = launch_inverse(
        gpu,
        batch.data,
        itw,
        itwc,
        n,
        batch.row_prime(),
        batch.moduli(),
        &n_inv,
    );
    RunReport::from_trace("radix-2 inverse", gpu, launches)
}

/// Run the full batched forward NTT as `log2 N` stage launches.
///
/// The transform is in place on `batch.data` (bit-reversed output).
pub fn run(gpu: &mut Gpu, batch: &DeviceBatch, mode: ModMul) -> RunReport {
    let launches = launch_forward(
        gpu,
        batch.data,
        batch.twiddles,
        batch.companions,
        batch.n(),
        batch.row_prime(),
        batch.moduli(),
        mode,
    );
    RunReport::from_trace(
        match mode {
            ModMul::Shoup => "radix-2 (Shoup)",
            ModMul::Native => "radix-2 (native)",
        },
        gpu,
        launches,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    fn setup(log_n: u32, np: usize) -> (Gpu, DeviceBatch) {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let batch = DeviceBatch::sequential(&mut gpu, log_n, np, 60).unwrap();
        (gpu, batch)
    }

    #[test]
    fn shoup_output_is_bit_exact() {
        let (mut gpu, batch) = setup(8, 3);
        let run = run(&mut gpu, &batch, ModMul::Shoup);
        assert!(run.verify(&gpu, &batch));
        assert_eq!(run.launches.len(), 8);
    }

    #[test]
    fn native_output_is_bit_exact() {
        let (mut gpu, batch) = setup(7, 2);
        let run = run(&mut gpu, &batch, ModMul::Native);
        assert!(run.verify(&gpu, &batch));
    }

    #[test]
    fn native_costs_far_more_compute() {
        // Fig. 1's premise: the native reduction burns ~8x the issue
        // slots. (End-to-end time only diverges once compute rivals the
        // DRAM floor — the figure harness shows that at N = 2^17.)
        let (mut gpu, batch) = setup(10, 4);
        let shoup = run(&mut gpu, &batch, ModMul::Shoup);
        batch.reset_data(&mut gpu);
        let native = run(&mut gpu, &batch, ModMul::Native);
        let tc_s: f64 = shoup.launches.iter().map(|l| l.timing.t_comp_s).sum();
        let tc_n: f64 = native.launches.iter().map(|l| l.timing.t_comp_s).sum();
        assert!(tc_n > 5.0 * tc_s, "native {tc_n} vs shoup {tc_s}");
        assert!(native.total_s() >= shoup.total_s() * 0.99);
    }

    #[test]
    fn data_traffic_scales_with_stages() {
        let (mut gpu, batch) = setup(9, 2);
        let run = run(&mut gpu, &batch, ModMul::Shoup);
        let stats = run.merged_stats();
        // Each stage reads and writes all np*N words at least once.
        let min_words = 9 * 2 * 512;
        assert!(stats.useful_read_bytes >= (min_words * 8) as u64);
        assert!(stats.useful_write_bytes == (min_words * 8) as u64);
    }

    #[test]
    fn inverse_recovers_input_after_forward() {
        let (mut gpu, batch) = setup(9, 3);
        run(&mut gpu, &batch, ModMul::Shoup);
        let rep = run_inverse(&mut gpu, &batch);
        assert_eq!(batch.download(&gpu), batch.input(), "iNTT(NTT(x)) = x");
        assert_eq!(rep.launches.len(), 10); // 9 stages + scaling
    }

    #[test]
    fn inverse_matches_scalar_reference() {
        // Inverse applied to arbitrary (non-transformed) data matches the
        // scalar intt on the same bit-reversed-domain input.
        let (mut gpu, batch) = setup(6, 2);
        run_inverse(&mut gpu, &batch);
        let got = batch.download(&gpu);
        for (i, row) in got.iter().enumerate().take(2) {
            let mut want = batch.input()[i].clone();
            ntt_core::ct::intt(&mut want, batch.table(i));
            assert_eq!(row, &want, "prime {i}");
        }
    }

    #[test]
    fn fig8_stage_twiddle_traffic_matches_table_accounting() {
        // Re-check of the paper's Fig. 8 with *measured* traffic: per
        // stage, the (value, companion) slice-pair Ψ[m..2m] streamed
        // through the read-only path must cost exactly the bytes the
        // analytic accounting (`NttTable::relative_stage_sizes`) predicts.
        // Holds from m = 4 up (below that, a slice underfills one 32-byte
        // transaction per table and the model floors at a full sector).
        let (mut gpu, batch) = setup(10, 2);
        let (n, np) = (batch.n(), batch.np());
        let rep = run(&mut gpu, &batch, ModMul::Shoup);
        let ratios = batch.table(0).relative_stage_sizes();
        assert_eq!(rep.launches.len(), ratios.len());
        for (s, launch) in rep.launches.iter().enumerate() {
            let m = 1usize << s;
            if m < 4 {
                continue;
            }
            // Data: every one of the np·N words crosses DRAM once (4-word
            // sectors). The rest of the read traffic is the twiddle pair.
            let data_txns = (np * n / 4) as u64;
            let tw_txns = launch.stats.dram_read_transactions - data_txns;
            assert_eq!(tw_txns, (np * m / 2) as u64, "stage {}", s + 1);
            let measured = (tw_txns * 32) as f64 / (np * n * 8) as f64;
            assert!(
                (measured - ratios[s].1).abs() < 1e-12,
                "stage {}: measured {measured} vs analytic {}",
                s + 1,
                ratios[s].1
            );
        }
    }

    #[test]
    fn butterfly_op_counts_match_formula() {
        let (mut gpu, batch) = setup(8, 3);
        let run = run(&mut gpu, &batch, ModMul::Shoup);
        let stats = run.merged_stats();
        // np * N/2 * log2(N) butterflies, one Shoup mul each.
        assert_eq!(stats.op(OpClass::ShoupMul), 3 * 128 * 8);
        assert_eq!(stats.op(OpClass::ModAddSub), 2 * 3 * 128 * 8);
        assert_eq!(stats.op(OpClass::NativeModMul), 0);
    }
}
