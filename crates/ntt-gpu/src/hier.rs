//! The hierarchical (4-step) NTT: three kernels for bootstrapping-scale
//! rings.
//!
//! Above `N ≈ 2^15` the two-kernel SMEM split runs out of room: one of the
//! two sub-transforms no longer fits a thread block's shared memory. The
//! classical 4-step factorization `N = N1 × N2` keeps *both* sides
//! SMEM-resident by paying one extra data round trip:
//!
//! * **`hier-col`** — `N2` strided `N1`-point NTTs, in place. Every column
//!   is a *compact* negacyclic transform with root `ψ^(N/N1)`, whose
//!   twiddle table equals the first `N1` entries of the global table
//!   (bit-reversed layout), so the kernel preloads that prefix into SMEM
//!   and shares it across all columns (`tw_base = 1`).
//! * **`hier-twt`** — transpose + inter-block twist: element `(u, s)`
//!   moves to the transposed intermediate and picks up `ψ^(e_u·s)`, where
//!   `e_u = 2·bitrev(u) + 1 − N1 (mod 2N)`. The twist factors come from a
//!   two-level factor table over the exponent range `[0, 2N)`
//!   ([`DeviceTwist`], the §VII on-the-fly construction) — two Shoup
//!   modmuls per element instead of an `N`-entry twist table.
//! * **`hier-row`** — `N1` compact `N2`-point NTTs, reading the
//!   intermediate strided and storing the finished rows *contiguously*
//!   back into the original array through an SMEM-staged transposing
//!   write-out.
//!
//! The result is bit-identical to `ntt_core::ct::ntt` (and to the CPU
//! [`ntt_core::HierPlan`], which runs the same factorization).

use crate::batch::DeviceBatch;
use crate::report::RunReport;
use crate::smem::{self, HierStageJob};
use gpu_sim::{Buf, Gpu, GpuConfig, LaunchConfig, OpClass, WarpCtx, WarpKernel};
use ntt_core::bitrev::bit_reverse;
use ntt_math::modops::pow_mod;
use ntt_math::shoup::{mul_shoup, precompute};

/// Threads per block for the twist kernel.
const THREADS: usize = 256;

/// Modeled registers for the twist kernel: one operand, two factor pairs,
/// modulus and addressing.
const REGS: u32 = 48;

/// Default per-thread NTT size for the sub-NTT stages (paper Fig. 11).
pub const PER_THREAD: usize = 8;

/// Default twist-factor base (matches the paper's OT base).
pub const TWIST_BASE: usize = 1024;

/// Device-resident twist-factor tables, one pair per prime.
///
/// Like [`crate::ot::DeviceOt`], but over the exponent range `[0, 2N)`:
/// the inter-block twist needs `ψ^e` for arbitrary `e mod 2N`, not just
/// the `N` bit-reversed table entries. `ψ^e = lo[e mod B] · hi[e div B]`,
/// two Shoup modmuls.
#[derive(Debug, Clone, Copy)]
pub struct DeviceTwist {
    /// Factorization base `B`.
    pub base: usize,
    /// Entries in the low-digit table per prime (`min(B, 2N)`).
    pub lo_len: usize,
    /// Entries in the high-digit table per prime (`ceil(2N/B)`).
    pub hi_len: usize,
    /// `np × lo_len` low factor values.
    pub lo_w: Buf,
    /// `np × lo_len` low factor companions.
    pub lo_c: Buf,
    /// `np × hi_len` high factor values.
    pub hi_w: Buf,
    /// `np × hi_len` high factor companions.
    pub hi_c: Buf,
}

impl DeviceTwist {
    /// Build and upload the twist-factor tables for every prime in the
    /// batch.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not a power of two ≥ 2.
    pub fn upload(gpu: &mut Gpu, batch: &DeviceBatch, base: usize) -> Self {
        let tables: Vec<&ntt_core::NttTable> = (0..batch.np()).map(|i| batch.table(i)).collect();
        Self::upload_tables(gpu, batch.n(), &tables, base)
    }

    /// Build and upload the factor tables from explicit per-prime tables
    /// (the plan-driven path used by `SimBackend`).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not a power of two ≥ 2.
    pub fn upload_tables(
        gpu: &mut Gpu,
        n: usize,
        tables: &[&ntt_core::NttTable],
        base: usize,
    ) -> Self {
        assert!(base.is_power_of_two() && base >= 2, "invalid twist base");
        let range = 2 * n;
        let lo_len = base.min(range);
        let hi_len = range.div_ceil(base);
        let np = tables.len();
        let mut lo_w = Vec::with_capacity(np * lo_len);
        let mut lo_c = Vec::with_capacity(np * lo_len);
        let mut hi_w = Vec::with_capacity(np * hi_len);
        let mut hi_c = Vec::with_capacity(np * hi_len);
        for table in tables {
            let (p, psi) = (table.modulus(), table.psi());
            for d in 0..lo_len as u64 {
                let v = pow_mod(psi, d, p);
                lo_w.push(v);
                lo_c.push(precompute(v, p));
            }
            for d in 0..hi_len as u64 {
                let v = pow_mod(psi, (d * base as u64) % (range as u64), p);
                hi_w.push(v);
                hi_c.push(precompute(v, p));
            }
        }
        // Stream-charged uploads: every factor word crosses the modeled
        // bus and lands in the transfer ledger (same policy as DeviceOt).
        let upload = |gpu: &mut Gpu, data: &[u64]| -> Buf {
            let buf = gpu.gmem.alloc(data.len());
            gpu.stream_upload(buf, 0, data);
            buf
        };
        Self {
            base,
            lo_len,
            hi_len,
            lo_w: upload(gpu, &lo_w),
            lo_c: upload(gpu, &lo_c),
            hi_w: upload(gpu, &hi_w),
            hi_c: upload(gpu, &hi_c),
        }
    }

    /// Total factor-table bytes across the batch (values + companions).
    pub fn table_bytes(&self, np: usize) -> usize {
        np * (self.lo_len + self.hi_len) * 16
    }

    /// GMEM word addresses of the factor pair for `prime` and `exponent`
    /// (`exponent < 2N`): `(lo_w, lo_c, hi_w, hi_c)`.
    #[inline]
    pub fn factor_addrs(&self, prime: usize, exponent: usize) -> (usize, usize, usize, usize) {
        let (d0, d1) = (exponent % self.base, exponent / self.base);
        (
            self.lo_w.word(prime * self.lo_len + d0),
            self.lo_c.word(prime * self.lo_len + d0),
            self.hi_w.word(prime * self.hi_len + d1),
            self.hi_c.word(prime * self.hi_len + d1),
        )
    }
}

/// Per-column twist exponents: `e_u = 2·bitrev(u, log2 N1) + 1 − N1`
/// (mod `2N`), the negacyclic inter-block factors of the 4-step identity.
pub(crate) fn twist_exponents(n: usize, n1: usize) -> Vec<u64> {
    let log_n1 = n1.trailing_zeros();
    let two_n = 2 * n as u64;
    (0..n1)
        .map(|u| (2 * bit_reverse(u, log_n1) as u64 + 1 + two_n - n1 as u64) % two_n)
        .collect()
}

/// The transpose + twist kernel (`hier-twt`): one thread per element.
///
/// Thread `gt` owns *output* word `gt` of the transposed intermediate
/// (`T[row][s·N1 + u]`, coalesced stores), reads `x[row][u·N2 + s]`
/// through the cached path (strided within a warp, dense across the
/// grid), and multiplies by `ψ^(e_u·s)` via two Shoup modmuls against the
/// [`DeviceTwist`] factor tables.
struct TwistKernel<'a> {
    src: Buf,
    dst: Buf,
    n: usize,
    n1: usize,
    rows: usize,
    row_prime: &'a [usize],
    moduli: &'a [u64],
    /// Per-column twist exponents (length `N1`).
    exps: &'a [u64],
    twist: DeviceTwist,
}

impl WarpKernel for TwistKernel<'_> {
    fn phases(&self) -> usize {
        1
    }

    fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
        let total = self.rows * self.n;
        let n2 = self.n / self.n1;
        let two_n = 2 * self.n as u64;
        let lanes = ctx.lanes();

        let mut src_addr = vec![None; lanes];
        let mut lo_w = vec![None; lanes];
        let mut lo_c = vec![None; lanes];
        let mut hi_w = vec![None; lanes];
        let mut hi_c = vec![None; lanes];
        let mut prime = vec![0usize; lanes];
        let mut active = 0u64;
        for l in 0..lanes {
            let gt = ctx.global_thread(l);
            if gt >= total {
                continue;
            }
            active += 1;
            let row = gt / self.n;
            let idx = gt % self.n;
            // Output-indexed: T[s·N1 + u] <- x[u·N2 + s] · ψ^(e_u·s).
            let u = idx % self.n1;
            let s = idx / self.n1;
            let e = (self.exps[u] * s as u64 % two_n) as usize;
            prime[l] = self.row_prime[row];
            src_addr[l] = Some(self.src.word(row * self.n + u * n2 + s));
            let (a0, a1, a2, a3) = self.twist.factor_addrs(prime[l], e);
            lo_w[l] = Some(a0);
            lo_c[l] = Some(a1);
            hi_w[l] = Some(a2);
            hi_c[l] = Some(a3);
        }
        if active == 0 {
            return;
        }

        let x = ctx.gmem_load_cached(&src_addr);
        let (lw, lc) = ctx.gmem_load_cached2(&lo_w, &lo_c);
        let (hw, hc) = ctx.gmem_load_cached2(&hi_w, &hi_c);

        let writes: Vec<Option<(usize, u64)>> = (0..lanes)
            .map(|l| {
                x[l].map(|v| {
                    let p = self.moduli[prime[l]];
                    let step = mul_shoup(v, lw[l].expect("lo"), lc[l].expect("lo"), p);
                    let out = mul_shoup(step, hw[l].expect("hi"), hc[l].expect("hi"), p);
                    (self.dst.word(ctx.global_thread(l)), out)
                })
            })
            .collect();
        ctx.count_op(OpClass::ShoupMul, 2 * active);
        ctx.gmem_store(&writes);
    }
}

/// A device-side hierarchical NTT problem decoupled from [`DeviceBatch`]
/// (the `SimBackend` routes stacked, device-resident batches through it).
pub(crate) struct HierJob<'a> {
    /// `rows × N` data words, transformed in place.
    pub data: Buf,
    /// `rows × N` scratch words for the transposed intermediate.
    pub scratch: Buf,
    /// `np × N` forward twiddle values (bit-reversed global tables).
    pub tw: Buf,
    /// `np × N` Shoup companions.
    pub twc: Buf,
    /// Transform size `N`.
    pub n: usize,
    /// `log2 N`.
    pub log_n: u32,
    /// Per-prime moduli (indexed by prime id).
    pub moduli: &'a [u64],
    /// RNS prime index of each data row.
    pub row_prime: &'a [usize],
}

/// Whether an `N = n1 × n2` hierarchical run fits the device's launch
/// limits for **both** sub-NTT kernels.
pub(crate) fn job_feasible(n: usize, n1: usize, per_thread: usize, config: &GpuConfig) -> bool {
    if !n1.is_power_of_two() || n1 < 2 || n1 > n / 2 {
        return false;
    }
    for r in [n1, n / n1] {
        let t = per_thread.min(r);
        let (c, threads) = smem::launch_shape(r, t, n / r);
        if threads > config.max_threads_per_block as usize {
            return false;
        }
        let smem_words = c * r + 2 * r; // data tile + preloaded twiddles
        if smem_words * 8 > config.max_smem_per_block as usize {
            return false;
        }
    }
    true
}

/// Launch the three hierarchical kernels over an arbitrary row-mapped job.
/// Returns the launch count (always 3).
///
/// # Panics
///
/// Panics on invalid splits (`n1` must be a power of two with
/// `2 ≤ n1 ≤ N/2`).
pub(crate) fn launch_job(
    gpu: &mut Gpu,
    job: &HierJob<'_>,
    n1: usize,
    twist: &DeviceTwist,
    per_thread: usize,
) -> usize {
    let n = job.n;
    assert!(
        n1.is_power_of_two() && n1 >= 2 && n1 <= n / 2,
        "invalid N1 split"
    );
    let n2 = n / n1;

    // Kernel 1: compact N1-point column NTTs, in place.
    smem::launch_hier_stage(
        gpu,
        &HierStageJob {
            data: job.data,
            out: job.data,
            contiguous_out: false,
            tw: job.tw,
            twc: job.twc,
            n,
            log_n: job.log_n,
            r: n1,
            per_thread,
            moduli: job.moduli,
            row_prime: job.row_prime,
            name: format!("hier-col-{n1}"),
        },
    );

    // Kernel 2: transpose + inter-block twist into the scratch buffer.
    let exps = twist_exponents(n, n1);
    let rows = job.row_prime.len();
    let kernel = TwistKernel {
        src: job.data,
        dst: job.scratch,
        n,
        n1,
        rows,
        row_prime: job.row_prime,
        moduli: job.moduli,
        exps: &exps,
        twist: *twist,
    };
    let cfg =
        LaunchConfig::new("hier-twt", (rows * n).div_ceil(THREADS), THREADS).regs_per_thread(REGS);
    gpu.launch(&kernel, &cfg);

    // Kernel 3: compact N2-point row NTTs, strided over the intermediate,
    // stored contiguously back into the original array.
    smem::launch_hier_stage(
        gpu,
        &HierStageJob {
            data: job.scratch,
            out: job.data,
            contiguous_out: true,
            tw: job.tw,
            twc: job.twc,
            n,
            log_n: job.log_n,
            r: n2,
            per_thread,
            moduli: job.moduli,
            row_prime: job.row_prime,
            name: format!("hier-row-{n2}"),
        },
    );
    3
}

/// Run the hierarchical forward NTT over a [`DeviceBatch`] with split
/// `N = n1 × (N/n1)`, uploading twist-factor tables and allocating the
/// transposed intermediate on demand.
///
/// # Panics
///
/// Panics on invalid splits (`n1` must be a power of two with
/// `2 ≤ n1 ≤ N/2`).
pub fn run(gpu: &mut Gpu, batch: &DeviceBatch, n1: usize) -> RunReport {
    let twist = DeviceTwist::upload(gpu, batch, TWIST_BASE.min(2 * batch.n()));
    run_with_twist(gpu, batch, n1, &twist)
}

/// [`run`] with pre-uploaded twist-factor tables (reuse across sweeps).
///
/// # Panics
///
/// Panics on invalid splits (`n1` must be a power of two with
/// `2 ≤ n1 ≤ N/2`).
pub fn run_with_twist(
    gpu: &mut Gpu,
    batch: &DeviceBatch,
    n1: usize,
    twist: &DeviceTwist,
) -> RunReport {
    let n = batch.n();
    let rows = batch.row_prime().len();
    let scratch = gpu.gmem.alloc(rows * n);
    let job = HierJob {
        data: batch.data,
        scratch,
        tw: batch.twiddles,
        twc: batch.companions,
        n,
        log_n: batch.log_n(),
        moduli: batch.moduli(),
        row_prime: batch.row_prime(),
    };
    let launches = launch_job(gpu, &job, n1, twist, PER_THREAD);
    gpu.gmem.free(scratch);
    RunReport::from_trace(format!("hier {}x{}", n1, n / n1), gpu, launches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    fn setup(log_n: u32, np: usize) -> (Gpu, DeviceBatch) {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let batch = DeviceBatch::sequential(&mut gpu, log_n, np, 60).unwrap();
        (gpu, batch)
    }

    #[test]
    fn twist_factors_reconstruct_every_power() {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let batch = DeviceBatch::sequential(&mut gpu, 7, 2, 60).unwrap();
        let tw = DeviceTwist::upload(&mut gpu, &batch, 32);
        for prime in 0..2 {
            let table = batch.table(prime);
            let (p, psi) = (table.modulus(), table.psi());
            for e in 0..256usize {
                let (a0, a1, a2, a3) = tw.factor_addrs(prime, e);
                let lw = gpu.gmem.slice(tw.lo_w)[a0 - tw.lo_w.base()];
                let lc = gpu.gmem.slice(tw.lo_c)[a1 - tw.lo_c.base()];
                let hw = gpu.gmem.slice(tw.hi_w)[a2 - tw.hi_w.base()];
                let hc = gpu.gmem.slice(tw.hi_c)[a3 - tw.hi_c.base()];
                let x = 0xABCDEFu64 % p;
                let got = mul_shoup(mul_shoup(x, lw, lc, p), hw, hc, p);
                let want = ntt_math::mul_mod(x, pow_mod(psi, e as u64, p), p);
                assert_eq!(got, want, "prime {prime} exponent {e}");
            }
        }
    }

    #[test]
    fn bit_exact_across_splits() {
        for n1 in [8usize, 32, 64, 256] {
            let (mut gpu, batch) = setup(10, 2);
            let rep = run(&mut gpu, &batch, n1);
            assert!(rep.verify(&gpu, &batch), "n1={n1}");
            assert_eq!(rep.launches.len(), 3);
        }
    }

    #[test]
    fn kernel_names_and_structure() {
        let (mut gpu, batch) = setup(12, 1);
        let rep = run(&mut gpu, &batch, 64);
        let names: Vec<&str> = rep
            .launches
            .iter()
            .map(|l| l.launch.label.as_str())
            .collect();
        assert_eq!(names, ["hier-col-64", "hier-twt", "hier-row-64"]);
        assert!(rep.verify(&gpu, &batch));
    }

    #[test]
    fn bootstrapping_scale_is_bit_exact() {
        // The whole point: N = 2^16 with both sub-NTTs SMEM-resident.
        let (mut gpu, batch) = setup(16, 1);
        let rep = run(&mut gpu, &batch, 256);
        assert!(rep.verify(&gpu, &batch));
    }

    #[test]
    fn matches_cpu_hier_plan() {
        // Same factorization as the CPU HierPlan: identical bits.
        let (mut gpu, batch) = setup(12, 1);
        run(&mut gpu, &batch, 64);
        let got = batch.download(&gpu);
        let plan = ntt_core::HierPlan::with_root(
            batch.n(),
            batch.table(0).modulus(),
            batch.table(0).psi(),
            &ntt_core::HierConfig::default().split(64, 64),
        );
        let mut want = batch.input()[0].clone();
        plan.forward(&mut want);
        assert_eq!(got[0], want);
    }

    #[test]
    fn three_dram_round_trips_for_data() {
        // 4-step trades one extra data round trip (3 total: column NTT,
        // twist+transpose, row NTT) for SMEM residency of both sub-NTTs.
        let (mut gpu, batch) = setup(12, 2);
        let rep = run(&mut gpu, &batch, 64);
        let data_words = (2 * 4096 * 3) as u64;
        assert_eq!(rep.merged_stats().useful_write_bytes, data_words * 8);
    }

    #[test]
    fn feasible_at_bootstrap_sizes() {
        let config = GpuConfig::titan_v();
        assert!(job_feasible(1 << 17, 512, PER_THREAD, &config));
        assert!(job_feasible(1 << 16, 256, PER_THREAD, &config));
        // Degenerate or non-power-of-two splits are rejected.
        assert!(!job_feasible(1 << 17, 1, PER_THREAD, &config));
        assert!(!job_feasible(1 << 17, 1 << 17, PER_THREAD, &config));
        assert!(!job_feasible(1 << 17, 513, PER_THREAD, &config));
    }

    #[test]
    fn twist_tables_stay_small() {
        // The §VII story at twist scale: [0, 2N) factor coverage in
        // 1024 + 2N/1024 entries per prime instead of an N-entry table.
        let (mut gpu, batch) = setup(16, 1);
        let tw = DeviceTwist::upload(&mut gpu, &batch, 1024);
        assert_eq!(tw.lo_len, 1024);
        assert_eq!(tw.hi_len, (2 << 16) / 1024);
        assert!(tw.table_bytes(1) < batch.table_bytes() / 16);
    }
}
