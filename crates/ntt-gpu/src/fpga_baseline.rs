//! Analytic model of the FCCM'20 FPGA NTT accelerator (paper §VIII, \[20\]).
//!
//! The paper compares its best GPU configuration against Kim et al.,
//! *"Hardware Architecture of a Number Theoretic Transform for a
//! Bootstrappable RNS-based Homomorphic Encryption Scheme"* (FCCM 2020):
//! a deeply pipelined butterfly-array design that also generates some
//! twiddles on the fly. We model it as `B` butterfly units at clock `f`
//! processing one butterfly per unit per cycle with perfect pipelining —
//! generous to the FPGA, since it ignores fill/drain and memory stalls.
//!
//! The defaults (`B = 48`, `f = 250 MHz`) are derived by inverting the
//! paper's reported speedups (6.56×/6.48× at `N = 2^17`, `np = 36/42`)
//! against the modeled GPU times, and are consistent with the resource
//! envelope of a large FPGA of that generation.

/// Pipelined butterfly-array NTT accelerator model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaNtt {
    /// Parallel butterfly units.
    pub butterfly_units: u32,
    /// Pipeline clock in Hz.
    pub clock_hz: f64,
}

impl FpgaNtt {
    /// The §VIII comparator configuration.
    pub fn fccm20() -> Self {
        Self {
            butterfly_units: 48,
            clock_hz: 250.0e6,
        }
    }

    /// Butterflies in a batched N-point NTT: `np · N/2 · log2 N`.
    pub fn butterflies(n: usize, np: usize) -> u64 {
        (np as u64) * (n as u64 / 2) * n.trailing_zeros() as u64
    }

    /// Modeled execution time for `np` N-point NTTs, seconds.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn time_s(&self, n: usize, np: usize) -> f64 {
        assert!(n.is_power_of_two(), "N must be a power of two");
        Self::butterflies(n, np) as f64 / (self.butterfly_units as f64 * self.clock_hz)
    }

    /// Time in microseconds.
    pub fn time_us(&self, n: usize, np: usize) -> f64 {
        self.time_s(n, np) * 1e6
    }
}

impl Default for FpgaNtt {
    fn default() -> Self {
        Self::fccm20()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn butterfly_count() {
        assert_eq!(FpgaNtt::butterflies(8, 1), 12);
        assert_eq!(FpgaNtt::butterflies(1 << 17, 36), 36 * (1 << 16) * 17);
    }

    #[test]
    fn time_scales_linearly_with_batch() {
        let f = FpgaNtt::fccm20();
        let t36 = f.time_s(1 << 17, 36);
        let t42 = f.time_s(1 << 17, 42);
        assert!((t42 / t36 - 42.0 / 36.0).abs() < 1e-12);
    }

    #[test]
    fn magnitude_is_milliseconds_at_bootstrappable_sizes() {
        // ~40M butterflies over 12G butterflies/s ≈ 3.3 ms.
        let f = FpgaNtt::fccm20();
        let t = f.time_s(1 << 17, 36);
        assert!(t > 1e-3 && t < 10e-3, "t = {t}");
    }
}
