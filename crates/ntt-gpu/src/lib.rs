//! The paper's GPU NTT/DFT kernels, running on the `gpu-sim` substrate.
//!
//! Implements every implementation point of *"Accelerating NTT for
//! Bootstrappable HE on GPUs"* (IISWC 2020):
//!
//! * [`radix2`] — the baseline: one kernel launch per Cooley–Tukey stage,
//!   batched over the `np` RNS primes, with Shoup or native modular
//!   multiplication (paper Fig. 1, Table II baseline).
//! * [`high_radix`] — register-based radix-2^k passes (paper §V/VI-B,
//!   Fig. 4/5).
//! * [`smem`] — the two-kernel shared-memory implementation with
//!   block-merged coalescing, twiddle preloading, and configurable
//!   per-thread NTT size (paper §VI-C, Fig. 7/9/11/12, Table II).
//! * [`ot`] — on-the-fly twiddling applied to the last 1–2 stages
//!   (paper §VII).
//! * [`dft`] — the complex (2×f32) DFT counterparts of all of the above
//!   (paper Fig. 3(b)/5/11(b)).
//! * [`fpga_baseline`] — an analytic model of the FCCM'20 FPGA NTT
//!   accelerator the paper compares against in §VIII.
//! * [`batch`] — device-side layout of polynomial data and twiddle tables.
//! * [`backend`] — [`SimBackend`], the simulated-GPU implementation of
//!   `ntt_core::backend::NttBackend`: the same plan-based batched trait
//!   calls the CPU engine serves, executed through the warp kernels
//!   (bit-identical outputs, full traffic accounting).
//! * [`sharded`] — [`ShardedBackend`], the same trait surface over `K`
//!   simulated devices: RNS residue rows partition across shards and
//!   key-switch base conversion pays an explicit all-gather over a
//!   modeled inter-device link.
//! * [`report`] — run summaries (time, traffic, utilization) used by the
//!   figure harness.
//!
//! Every kernel is *functionally* executed: results are bit-exact equal to
//! `ntt_core::ct::ntt` (asserted throughout the test suite), while the
//! simulator counts the traffic the paper profiles.
//!
//! # Example
//!
//! ```
//! use ntt_gpu::{batch::DeviceBatch, radix2};
//! use gpu_sim::{Gpu, GpuConfig};
//!
//! let mut gpu = Gpu::new(GpuConfig::titan_v());
//! // A small batched NTT: N = 2^10, np = 2.
//! let batch = DeviceBatch::sequential(&mut gpu, 10, 2, 60)?;
//! let run = radix2::run(&mut gpu, &batch, radix2::ModMul::Shoup);
//! assert!(run.verify(&gpu, &batch), "radix-2 output matches scalar NTT");
//! # Ok::<(), ntt_core::RingError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod batch;
pub mod dft;
pub mod fpga_baseline;
pub mod hier;
pub mod high_radix;
pub mod ot;
pub mod radix2;
pub mod report;
pub mod sharded;
pub mod smem;

pub use backend::SimBackend;
pub use batch::DeviceBatch;
pub use report::RunReport;
pub use sharded::{LinkStats, ShardedBackend, ShardedMemory};
