//! Register-based high-radix implementation (paper §V, Fig. 4).
//!
//! Each pass covers `log2 r` consecutive stages: a thread gathers `r`
//! strided elements into registers, performs an r-point NTT locally, and
//! scatters the results back — cutting DRAM round trips from `log2 N`
//! (radix-2) to `ceil(log2 N / log2 r)`. The cost is register pressure:
//! past radix-16 occupancy collapses, and at radix-64/128 the modeled
//! demand exceeds the 255-register cap and spills to local memory —
//! reproducing Fig. 4's inverted-U.

// Kernel code models warp lanes with explicit indices into parallel
// per-lane arrays (live/base/vals/regs), mirroring the CUDA original;
// iterator rewrites would obscure the lane addressing the simulator counts.
#![allow(clippy::needless_range_loop)]

use crate::batch::DeviceBatch;
use crate::report::RunReport;
use gpu_sim::{Buf, Gpu, LaunchConfig, OpClass, WarpCtx, WarpKernel};
use ntt_math::modops::{add_mod, sub_mod};
use ntt_math::shoup::mul_shoup;

/// Threads per block. 64 keeps register-file granularity fine enough to
/// resolve the occupancy steps the paper reports across radices.
const THREADS: usize = 64;

/// Modeled 32-bit register demand for a radix-`r` NTT thread: ~4 registers
/// per resident u64 point (value + butterfly temporaries + addressing)
/// plus the Shoup working set (prime, companion, indices).
///
/// Calibration anchors (see `gpu-sim/src/calibrate.rs`): radix-16 still
/// saturates DRAM bandwidth, radix-32 reaches ≈60% utilization, radix-64
/// and radix-128 exceed the 255-register cap and spill.
pub fn ntt_regs_per_thread(r: usize) -> u32 {
    4 * r as u32 + 64
}

struct PassKernel {
    data: Buf,
    tw: Buf,
    twc: Buf,
    n: usize,
    np: usize,
    moduli: Vec<u64>,
    /// First stage value covered by this pass.
    m0: usize,
    /// Pass radix (points per thread).
    r: usize,
}

impl WarpKernel for PassKernel {
    fn phases(&self) -> usize {
        1
    }

    fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
        let items_per_prime = self.n / self.r;
        let total = self.np * items_per_prime;
        let sigma = self.n / (self.m0 * self.r);
        let seg_len = self.n / self.m0;
        let lanes = ctx.lanes();

        let mut prime = vec![0usize; lanes];
        let mut base = vec![0usize; lanes];
        let mut i0 = vec![0usize; lanes];
        let mut live = vec![false; lanes];
        let mut active = 0u64;
        for l in 0..lanes {
            let gt = ctx.global_thread(l);
            if gt >= total {
                continue;
            }
            live[l] = true;
            active += 1;
            let pr = gt / items_per_prime;
            let item = gt % items_per_prime;
            prime[l] = pr;
            i0[l] = item / sigma;
            base[l] = pr * self.n + i0[l] * seg_len + (item % sigma);
        }
        if active == 0 {
            return;
        }

        // Gather r points per lane.
        let mut vals = vec![vec![0u64; self.r]; lanes];
        for s in 0..self.r {
            let addrs: Vec<Option<usize>> = (0..lanes)
                .map(|l| live[l].then(|| self.data.word(base[l] + s * sigma)))
                .collect();
            let loaded = ctx.gmem_load(&addrs);
            for l in 0..lanes {
                if let Some(v) = loaded[l] {
                    vals[l][s] = v;
                }
            }
        }

        // Local r-point NTT: stage m_loc, twiddle Ψ[m_loc·(m0+i0) + i_loc].
        let mut m_loc = 1;
        let mut t_loc = self.r / 2;
        while m_loc < self.r {
            for i_loc in 0..m_loc {
                let w_addrs: Vec<Option<usize>> = (0..lanes)
                    .map(|l| {
                        live[l].then(|| {
                            self.tw
                                .word(prime[l] * self.n + m_loc * (self.m0 + i0[l]) + i_loc)
                        })
                    })
                    .collect();
                let w = ctx.gmem_load_cached(&w_addrs);
                let c_addrs: Vec<Option<usize>> = (0..lanes)
                    .map(|l| {
                        live[l].then(|| {
                            self.twc
                                .word(prime[l] * self.n + m_loc * (self.m0 + i0[l]) + i_loc)
                        })
                    })
                    .collect();
                let wc = ctx.gmem_load_cached(&c_addrs);
                let j1 = 2 * i_loc * t_loc;
                for j in j1..j1 + t_loc {
                    for l in 0..lanes {
                        if !live[l] {
                            continue;
                        }
                        let p = self.moduli[prime[l]];
                        let u = vals[l][j];
                        let v = mul_shoup(
                            vals[l][j + t_loc],
                            w[l].expect("active lane"),
                            wc[l].expect("active lane"),
                            p,
                        );
                        vals[l][j] = add_mod(u, v, p);
                        vals[l][j + t_loc] = sub_mod(u, v, p);
                    }
                    ctx.count_op(OpClass::ShoupMul, active);
                    ctx.count_op(OpClass::ModAddSub, 2 * active);
                }
            }
            m_loc *= 2;
            t_loc /= 2;
        }

        // Scatter back.
        for s in 0..self.r {
            let writes: Vec<Option<(usize, u64)>> = (0..lanes)
                .map(|l| live[l].then(|| (self.data.word(base[l] + s * sigma), vals[l][s])))
                .collect();
            ctx.gmem_store(&writes);
        }
    }
}

/// Run the batched forward NTT with radix-`r` register passes.
///
/// The final pass shrinks when `log2 r` does not divide `log2 N`, exactly
/// like the reference `ntt_core::radix::high_radix_ntt`.
///
/// # Panics
///
/// Panics if `r` is not a power of two in `2..=N`.
pub fn run(gpu: &mut Gpu, batch: &DeviceBatch, r: usize) -> RunReport {
    let n = batch.n();
    assert!(r.is_power_of_two() && r >= 2 && r <= n, "invalid radix");
    let mut m0 = 1usize;
    let mut launches = 0;
    while m0 < n {
        let r_pass = r.min(n / m0);
        let kernel = PassKernel {
            data: batch.data,
            tw: batch.twiddles,
            twc: batch.companions,
            n,
            np: batch.np(),
            moduli: batch.moduli().to_vec(),
            m0,
            r: r_pass,
        };
        let total_threads = batch.np() * n / r_pass;
        let blocks = total_threads.div_ceil(THREADS);
        let cfg = LaunchConfig::new(format!("radix{r}-pass-m{m0}"), blocks, THREADS)
            .regs_per_thread(ntt_regs_per_thread(r_pass));
        gpu.launch(&kernel, &cfg);
        launches += 1;
        m0 *= r_pass;
    }
    RunReport::from_trace(format!("high-radix-{r}"), gpu, launches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    fn setup(log_n: u32, np: usize) -> (Gpu, DeviceBatch) {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let batch = DeviceBatch::sequential(&mut gpu, log_n, np, 60).unwrap();
        (gpu, batch)
    }

    #[test]
    fn all_radices_bit_exact() {
        for r in [2usize, 4, 8, 16, 32, 64] {
            let (mut gpu, batch) = setup(9, 2);
            let rep = run(&mut gpu, &batch, r);
            assert!(rep.verify(&gpu, &batch), "radix {r}");
        }
    }

    #[test]
    fn non_dividing_log_still_exact() {
        // log2 N = 9, radix 16: passes of 16, 16, 2.
        let (mut gpu, batch) = setup(9, 1);
        let rep = run(&mut gpu, &batch, 16);
        assert!(rep.verify(&gpu, &batch));
        assert_eq!(rep.launches.len(), 3);
    }

    #[test]
    fn fewer_passes_less_data_traffic() {
        let (mut gpu, batch) = setup(10, 2);
        let r2 = run(&mut gpu, &batch, 2);
        batch.reset_data(&mut gpu);
        let r16 = run(&mut gpu, &batch, 16);
        // Radix-16 runs ceil(10/4)=3 passes vs 10: data traffic shrinks.
        assert!(
            r16.merged_stats().useful_write_bytes * 3 < r2.merged_stats().useful_write_bytes,
            "expected >3x write-traffic reduction"
        );
        assert!(r16.launches.len() == 3 && r2.launches.len() == 10);
    }

    #[test]
    fn register_model_spills_only_past_32() {
        assert!(ntt_regs_per_thread(16) < 255);
        assert!(ntt_regs_per_thread(32) < 255);
        assert!(ntt_regs_per_thread(64) > 255);
        assert!(ntt_regs_per_thread(128) > 255);
    }

    #[test]
    fn occupancy_decreases_with_radix() {
        // Needs a grid large enough that resources, not grid size, limit
        // residency (the paper's sweeps run at N = 2^16..17, np = 21).
        let (mut gpu, batch) = setup(13, 4);
        let r4 = run(&mut gpu, &batch, 4);
        batch.reset_data(&mut gpu);
        let r32 = run(&mut gpu, &batch, 32);
        assert!(
            r32.min_occupancy() < r4.min_occupancy(),
            "r32 {} vs r4 {}",
            r32.min_occupancy(),
            r4.min_occupancy()
        );
    }

    #[test]
    fn gathers_are_coalesced_on_first_pass() {
        // First pass: sigma = n/r, lanes access consecutive addresses.
        let (mut gpu, batch) = setup(10, 1);
        let kernel_run = run(&mut gpu, &batch, 16);
        let first = &kernel_run.launches[0];
        // Useful bytes == moved bytes on data reads would require
        // separating table traffic; instead check overall waste is small.
        let waste = first.stats.read_waste(&gpu.config);
        assert!(waste < 0.1, "waste = {waste}");
    }
}
