//! Run summaries: what a profiler would report for a whole transform.

use crate::batch::DeviceBatch;
use gpu_sim::{Gpu, KernelStats, LaunchRecord};

/// Aggregated result of running one batched transform (a sequence of
/// kernel launches) on the simulator.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Human-readable implementation name.
    pub name: String,
    /// One record per kernel launch, in order.
    pub launches: Vec<LaunchRecord>,
}

impl RunReport {
    /// Collect the trailing `count` launches from the GPU trace.
    pub fn from_trace(name: impl Into<String>, gpu: &Gpu, count: usize) -> Self {
        let start = gpu.trace.len().saturating_sub(count);
        Self {
            name: name.into(),
            launches: gpu.trace[start..].to_vec(),
        }
    }

    /// Total modeled time, seconds.
    pub fn total_s(&self) -> f64 {
        self.launches.iter().map(|l| l.timing.total_s).sum()
    }

    /// Total modeled time, microseconds (the paper's unit).
    pub fn total_us(&self) -> f64 {
        self.total_s() * 1e6
    }

    /// Per-NTT time (total / np), microseconds.
    pub fn per_ntt_us(&self, np: usize) -> f64 {
        self.total_us() / np as f64
    }

    /// Total DRAM traffic including spills, bytes.
    pub fn dram_bytes(&self, gpu: &Gpu) -> u64 {
        self.launches
            .iter()
            .map(|l| l.dram_bytes(&gpu.config))
            .sum()
    }

    /// DRAM traffic in megabytes (the paper's Fig. 4(b)/12(c) unit).
    pub fn dram_mb(&self, gpu: &Gpu) -> f64 {
        self.dram_bytes(gpu) as f64 / (1 << 20) as f64
    }

    /// Achieved DRAM bandwidth utilization over the run (fraction of peak).
    pub fn dram_utilization(&self, gpu: &Gpu) -> f64 {
        let t = self.total_s();
        if t == 0.0 {
            return 0.0;
        }
        self.dram_bytes(gpu) as f64 / t / gpu.config.peak_dram_bw
    }

    /// Lowest occupancy across the launches (the binding constraint).
    pub fn min_occupancy(&self) -> f64 {
        self.launches
            .iter()
            .map(|l| l.timing.occupancy)
            .fold(f64::INFINITY, f64::min)
    }

    /// Merged statistics across all launches.
    pub fn merged_stats(&self) -> KernelStats {
        let mut s = KernelStats::default();
        for l in &self.launches {
            s.merge(&l.stats);
        }
        s
    }

    /// Check the device data against the scalar reference NTT output.
    pub fn verify(&self, gpu: &Gpu, batch: &DeviceBatch) -> bool {
        batch.download(gpu) == batch.expected_ntt()
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.1} us over {} launches",
            self.name,
            self.total_us(),
            self.launches.len()
        )
    }
}
