//! `ShardedBackend`: multi-device RNS sharding behind the
//! [`NttBackend`] seam.
//!
//! The RNS row decomposition that makes the paper's batched NTT
//! embarrassingly parallel *within* one GPU also partitions cleanly
//! *across* GPUs: residue rows are independent under forward/inverse
//! NTTs and every element-wise ring op, so row `r` can live on shard
//! `r % K` (cyclic, at local row `r / K`) for its whole life and never
//! move. The partition is cyclic rather than block-contiguous because
//! of how the key-switch inner loop slices its operands: digit
//! sub-views sit at row offsets `d * level` of the decompose scratch,
//! and under a cyclic partition those views land on the same shards as
//! the `level`-row accumulators whenever `level % K == 0` — the digit
//! FMAs stay link-free instead of re-gathering near-full operands for
//! every digit. What does move is the key-switch base-conversion
//! itself: gadget digit decomposition reads **every** residue row of
//! the source polynomial to build each digit, so a `K`-way sharded
//! decompose pays an explicit all-gather of the remote rows over the
//! inter-device link — the same traffic pattern multi-GPU HE systems
//! report as their scaling ceiling. Rescale (broadcast of the dropped
//! last row) and mod-raise (broadcast of the level-1 row) pay the same
//! way, just `N` words instead of `level * N`.
//!
//! Every shard is a full simulated device ([`SimMemory`] over its own
//! [`gpu_sim::Gpu`]): its own GMEM, its own stream scheduler, its own
//! PCIe link, and its own fault plane. The shards are joined by a
//! modeled point-to-point link (`GpuConfig::link_bw` /
//! `GpuConfig::link_latency_s`); cross-shard moves are driven by a
//! dedicated **copy-engine stream** on each endpoint (the modeled
//! analogue of the DMA engines that feed a GPU's NVLink ports): the
//! source engine fences on the producing kernel's completion event,
//! both engines charge the wire ([`gpu_sim::Gpu::link_stall`]), and
//! the consuming compute stream fences on the landing. Compute and
//! communication overlap exactly as far as the data dependencies
//! allow — a transfer never serializes behind unrelated kernels
//! already enqueued on either device, which is what a real NCCL copy
//! on its own stream buys. Functional bytes move through the raw
//! (uncharged) GMEM accessors — the modeled cost is the explicit link
//! charge, not a double-counted PCIe transfer.
//!
//! The swap is one constructor: [`ShardedBackend::titan_v`]`(k, n)`
//! instead of [`crate::SimBackend::titan_v`]`()`. `K = 1` degenerates
//! to the single-device backend (no link traffic, identical routing),
//! and every output is **bit-identical** to `SimBackend` and
//! [`ntt_core::backend::CpuBackend`] for any `K` — pinned by
//! `tests/sharded.rs`.
//!
//! # Operand misalignment
//!
//! Device ops receive *views*, and two operands of one op can slice
//! allocations with different row counts — the key-switch inner loop
//! passes digit sub-views of a `level·digits·level`-row scratch
//! against `level`-row accumulators, so their partitions need not line
//! up. The *written* operand's partition decides placement: each of
//! its shard-local pieces runs where it lives, and any secondary
//! operand piece resident elsewhere is gathered into shard-local
//! scratch over the link first ([`ShardedMemory::gather`]). Aligned
//! operands (the common case) gather into a zero-copy direct
//! reference; misaligned ones pay honest link traffic.

use crate::backend::{
    calibrate_forward_choice, classify, ensure_tables, launch_automorphism, launch_elemwise,
    run_forward, run_inverse, DevData, ElemOp, ForwardImpl, ForwardMode, ShapeChoice, SimMemory,
    SMEM_MIN_N, THREADS,
};
use gpu_sim::{
    Buf, DeviceTimeline, Event, FaultOp, GpuConfig, LaunchConfig, OpClass, Stream, WarpCtx,
    WarpKernel,
};
use ntt_core::backend::{
    handle_namespace, BackendError, DeviceBuf, DeviceMemory, LimbBatch, NttBackend, RingPlan,
    SharedDeviceMemory, TransferStats,
};
use ntt_math::modops::{mul_mod, neg_mod, sub_mod};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::{Arc, Mutex, MutexGuard};

/// Inter-device link traffic ledger (the sharded counterpart of
/// [`TransferStats`]; one entry per cross-shard move, words summed over
/// both directions of nothing — each move is counted once).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LinkStats {
    /// Cross-shard moves issued.
    pub transfers: usize,
    /// Total words moved between shards.
    pub words: usize,
}

impl LinkStats {
    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &LinkStats) -> LinkStats {
        LinkStats {
            transfers: self.transfers - earlier.transfers,
            words: self.words - earlier.words,
        }
    }
}

/// Row range of a `rows`-row *host batch* handled by shard `s` of `k`
/// (contiguous block split; early shards take the larger halves when
/// `rows % k != 0`). Host-batch operands are transient — uploaded,
/// transformed, downloaded in one call — so their split is free to
/// differ from the cyclic partition device-resident allocations use.
fn shard_rows(rows: usize, k: usize, s: usize) -> Range<usize> {
    (s * rows / k)..((s + 1) * rows / k)
}

/// Number of residue rows of a `rows`-row allocation owned by shard
/// `s` of `k` under the cyclic partition (row `r` lives on shard
/// `r % k`, at local row `r / k`). Requires `s < k`.
fn rows_on_shard(rows: usize, k: usize, s: usize) -> usize {
    (rows + k - 1 - s) / k
}

/// One logical allocation spread over the shard set.
struct ShardAlloc {
    /// Total words of the logical allocation.
    len: usize,
    /// Residue rows partitioned across shards; `0` means the
    /// allocation is not row-shaped and lives whole on shard 0.
    rows: usize,
    /// Per-shard local handle (`None` where the shard owns no rows).
    parts: Vec<Option<DeviceBuf>>,
}

/// A shard-local piece of a logical view.
struct Seg {
    /// Owning shard.
    shard: usize,
    /// Word range of the *view* this piece covers.
    view: Range<usize>,
    /// The piece as a view into the shard-local allocation.
    local: DeviceBuf,
}

/// A secondary operand materialized on one shard: either a zero-copy
/// reference to the resident piece or gathered scratch that must go
/// back via [`ShardedMemory::release_gather`].
struct Gathered {
    buf: Buf,
    scratch: bool,
}

/// `K` simulated devices joined by a modeled inter-device link, behind
/// one [`DeviceMemory`]: logical handles map to per-shard pieces, row
/// `r` of a row-shaped allocation living on shard `r % K` at local row
/// `r / K` (the cyclic partition — see the module docs for why).
/// Shared by every fork of a [`ShardedBackend`] the way [`SimMemory`]
/// is shared by forks of `SimBackend`.
pub struct ShardedMemory {
    shards: Vec<SimMemory>,
    /// Per-shard copy-engine stream: cross-shard transfers charge these,
    /// not the compute streams, so a gather in flight never serializes
    /// behind unrelated kernels already enqueued on either endpoint —
    /// the modeled analogue of a GPU's dedicated copy engine driving the
    /// NVLink port while the SMs keep working.
    link_streams: Vec<Stream>,
    map: HashMap<u64, ShardAlloc>,
    next_id: u64,
    /// Row granularity (ring degree `N`) used to partition allocations.
    n: usize,
    link: LinkStats,
}

impl ShardedMemory {
    /// `k` fresh devices of the same model, partitioning at ring
    /// degree `degree`.
    pub fn new(config: GpuConfig, k: usize, degree: usize) -> Self {
        assert!(k >= 1, "need at least one shard");
        assert!(degree >= 1, "ring degree must be positive");
        let mut shards: Vec<SimMemory> = (0..k).map(|_| SimMemory::new(config.clone())).collect();
        let link_streams = shards
            .iter_mut()
            .map(|sh| sh.gpu_mut().create_stream())
            .collect();
        Self {
            shards,
            link_streams,
            map: HashMap::new(),
            next_id: handle_namespace(),
            n: degree,
            link: LinkStats::default(),
        }
    }

    /// Number of devices in the shard set.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The ring degree allocations are partitioned at.
    pub fn degree(&self) -> usize {
        self.n
    }

    /// One shard's simulated device memory (timeline, trace, GMEM).
    pub fn shard(&self, s: usize) -> &SimMemory {
        &self.shards[s]
    }

    /// The inter-device traffic ledger.
    pub fn link_stats(&self) -> LinkStats {
        self.link
    }

    /// Aggregate device timeline: makespan is the slowest shard's
    /// overlapped clock (the devices run concurrently), while
    /// serialized time, launches and transfers sum over the set.
    pub fn timeline(&self) -> DeviceTimeline {
        let mut agg = DeviceTimeline::default();
        for sh in &self.shards {
            let t = sh.gpu().timeline();
            agg.serialized_s += t.serialized_s;
            agg.overlapped_s = agg.overlapped_s.max(t.overlapped_s);
            agg.launches += t.launches;
            agg.transfers += t.transfers;
        }
        agg
    }

    /// Per-shard timelines (for balance diagnostics in the harness).
    pub fn shard_timelines(&self) -> Vec<DeviceTimeline> {
        self.shards.iter().map(|sh| sh.gpu().timeline()).collect()
    }

    /// Drain every shard's stream schedule.
    pub fn sync_all(&mut self) {
        for sh in &mut self.shards {
            sh.gpu_mut().sync_all();
        }
    }

    /// Whether a logical handle view still resolves to a live
    /// allocation (mirrors `SimMemory::is_live`).
    fn is_live(&self, buf: DeviceBuf) -> bool {
        self.map
            .get(&buf.id())
            .is_some_and(|a| buf.base() + buf.len() <= a.len)
    }

    /// Split a logical view into its shard-local pieces, in view order.
    /// Under the cyclic partition a multi-row view alternates shards
    /// every `n` words, so pieces are at most one row long; adjacent
    /// pieces that are contiguous on one shard (the `K = 1` degenerate
    /// case) are merged.
    fn segments(&self, view: DeviceBuf) -> Vec<Seg> {
        let a = self
            .map
            .get(&view.id())
            .expect("freed or foreign DeviceBuf");
        assert!(
            view.base() + view.len() <= a.len,
            "view outside its allocation"
        );
        let k = self.shards.len();
        if a.rows == 0 {
            let local = a.parts[0].expect("unpartitioned alloc lives on shard 0");
            return vec![Seg {
                shard: 0,
                view: 0..view.len(),
                local: local.sub(view.base(), view.len()),
            }];
        }
        let n = self.n;
        let (v0, v1) = (view.base(), view.base() + view.len());
        let mut out: Vec<Seg> = Vec::new();
        let mut w = v0;
        while w < v1 {
            let r = w / n;
            let hi = v1.min((r + 1) * n);
            let s = r % k;
            let part = a.parts[s].expect("owned rows have a local part");
            let l0 = (r / k) * n + (w - r * n);
            match out.last_mut() {
                Some(prev)
                    if prev.shard == s
                        && prev.local.base() + prev.local.len() == part.base() + l0 =>
                {
                    prev.view.end += hi - w;
                    let start = prev.local.base() - part.base();
                    prev.local = part.sub(start, prev.view.end - prev.view.start);
                }
                _ => out.push(Seg {
                    shard: s,
                    view: (w - v0)..(hi - v0),
                    local: part.sub(l0, hi - w),
                }),
            }
            w = hi;
        }
        out
    }

    /// Per-shard contiguous local span of a view plus the (view-order)
    /// view ranges that fill it — the host-transfer batching shape.
    /// The cyclic pieces of one shard interleave in *view* order but
    /// sit back to back in *local* order (interior rows are whole, only
    /// the view's first and last row can be partial), so each shard's
    /// traffic stays one PCIe transfer.
    fn shard_pieces(&self, view: DeviceBuf) -> Vec<(usize, DeviceBuf, Vec<Range<usize>>)> {
        let segs = self.segments(view);
        let a = self
            .map
            .get(&view.id())
            .expect("freed or foreign DeviceBuf");
        let k = self.shards.len();
        let mut out = Vec::new();
        for s in 0..k {
            let mine: Vec<&Seg> = segs.iter().filter(|g| g.shard == s).collect();
            let Some(first) = mine.first() else { continue };
            let part = a.parts[s].expect("owned rows have a local part");
            let start = first.local.base() - part.base();
            let total: usize = mine.iter().map(|g| g.view.len()).sum();
            debug_assert!(
                mine.windows(2)
                    .all(|w| w[0].local.base() + w[0].local.len() == w[1].local.base()),
                "per-shard pieces must be locally contiguous"
            );
            out.push((
                s,
                part.sub(start, total),
                mine.iter().map(|g| g.view.clone()).collect(),
            ));
        }
        out
    }

    /// Move `src.len()` words from a raw buffer on shard `from` to a
    /// raw buffer on shard `to` over the modeled link, driven by the
    /// two endpoints' **copy-engine streams** rather than their compute
    /// streams. The source engine fences on `ready` (the data
    /// dependency — events are modeled times on clocks that share
    /// `t = 0`, so they compare across devices), charges the wire, and
    /// hands its completion event to the destination engine, which
    /// charges its side and records the landing. Compute on both
    /// shards keeps running: a transfer serializes only behind earlier
    /// transfers on the same engine and the data it actually needs,
    /// never behind unrelated kernels already enqueued.
    ///
    /// Returns `(sent, landed)`: the source-side completion (the
    /// write-after-read fence for the source allocation) and the
    /// destination-side completion (what a consumer of `dst` must wait
    /// on). Readiness bookkeeping for tracked allocations is the
    /// caller's job.
    fn link_words(
        &mut self,
        from: usize,
        ready: Event,
        src: Buf,
        to: usize,
        dst: Buf,
    ) -> (Event, Event) {
        debug_assert_ne!(from, to, "link move within one shard");
        let words = src.len();
        assert_eq!(words, dst.len(), "link endpoints must agree on size");
        // Functional move through the raw (uncharged) GMEM accessors;
        // the modeled cost is the explicit link charge below.
        let data = self.shards[from].gpu().gmem.slice(src).to_vec();
        let ls = self.link_streams[from];
        let sg = self.shards[from].gpu_mut();
        let prev = sg.active_stream();
        sg.wait_event(ls, ready);
        sg.set_active_stream(ls);
        sg.link_stall(words);
        let sent = sg.record_event(ls);
        sg.set_active_stream(prev);
        let ld = self.link_streams[to];
        let dg = self.shards[to].gpu_mut();
        let prev = dg.active_stream();
        dg.wait_event(ld, sent);
        dg.set_active_stream(ld);
        dg.link_stall(words);
        let landed = dg.record_event(ld);
        dg.set_active_stream(prev);
        dg.gmem.write(dst, 0, &data);
        self.link.transfers += 1;
        self.link.words += words;
        (sent, landed)
    }

    /// Materialize the given view rows of a row-aligned `view` on
    /// shard `to`, in list order (`rows` are view-relative indices,
    /// ascending).
    ///
    /// If every row already lives on `to` at consecutive local rows,
    /// that span is returned directly — zero traffic, the
    /// aligned-operand fast path (this is what the cyclic partition
    /// buys: key-switch digit views hit it whenever `level % K == 0`).
    /// Otherwise scratch is acquired on `to` and every row is pulled
    /// in: same-shard rows move d2d, remote rows over the link. This
    /// *is* the base-conversion all-gather when `view` is a decompose
    /// source. Pair with [`release_gather`].
    ///
    /// [`release_gather`]: ShardedMemory::release_gather
    fn gather_rows(&mut self, view: DeviceBuf, rows: &[usize], to: usize) -> Gathered {
        let n = self.n;
        // Resolve each requested row to (owning shard, span within the
        // shard-local part) before touching any device state.
        let locs: Vec<(usize, DeviceBuf)> = {
            let a = self
                .map
                .get(&view.id())
                .expect("freed or foreign DeviceBuf");
            assert!(
                view.base() + view.len() <= a.len,
                "view outside its allocation"
            );
            assert_eq!(view.base() % n, 0, "gathered views must be row-aligned");
            let k = self.shards.len();
            let vb = view.base() / n;
            rows.iter()
                .map(|&j| {
                    assert!((j + 1) * n <= view.len(), "gathered row outside the view");
                    if a.rows == 0 {
                        let part = a.parts[0].expect("unpartitioned alloc lives on shard 0");
                        (0, part.sub(view.base() + j * n, n))
                    } else {
                        let g = vb + j;
                        let part = a.parts[g % k].expect("owned rows have a local part");
                        (g % k, part.sub((g / k) * n, n))
                    }
                })
                .collect()
        };
        let aligned = !locs.is_empty()
            && locs.iter().all(|(s, _)| *s == to)
            && locs.windows(2).all(|w| w[0].1.base() + n == w[1].1.base());
        if aligned {
            let (b0, total) = (locs[0].1, rows.len() * n);
            let span = DeviceBuf::root(b0.id(), b0.base() + total).sub(b0.base(), total);
            let root = self.shards[to].root_base(span);
            self.shards[to].wait_ready(&[root]);
            return Gathered {
                buf: self.shards[to].raw_buf(span),
                scratch: false,
            };
        }
        let scratch = self.shards[to].acquire_scratch(rows.len() * n);
        let mut landings: Vec<Event> = Vec::new();
        for (i, (s, local)) in locs.iter().enumerate() {
            let dst = scratch.sub(i * n, n);
            let root = self.shards[*s].root_base(*local);
            let raw = self.shards[*s].raw_buf(*local);
            if *s == to {
                self.shards[to].wait_ready(&[root]);
                self.shards[to].gpu_mut().gmem.copy(raw, dst);
            } else {
                // The copy engines do the waiting; `to`'s compute
                // stream only fences on the landings, collected below.
                let ready = self.shards[*s].ready_fence(&[root]);
                let (sent, landed) = self.link_words(*s, ready, raw, to, dst);
                self.shards[*s].fence_until(root, sent);
                landings.push(landed);
            }
        }
        let g = self.shards[to].gpu_mut();
        let cs = g.active_stream();
        for e in landings {
            g.wait_event(cs, e);
        }
        Gathered {
            buf: scratch,
            scratch: true,
        }
    }

    /// Return gathered scratch to shard `s`'s free list (no-op for the
    /// zero-copy direct case).
    fn release_gather(&mut self, s: usize, g: Gathered) {
        if g.scratch {
            self.shards[s].release_scratch(g.buf);
        }
    }
}

impl DeviceMemory for ShardedMemory {
    fn alloc(&mut self, words: usize) -> DeviceBuf {
        let k = self.shards.len();
        let rows = if words.is_multiple_of(self.n) {
            words / self.n
        } else {
            0
        };
        let mut parts = vec![None; k];
        if rows == 0 {
            // Not row-shaped at the partition granularity: keep it
            // whole on shard 0 (tables and odd scratch land here).
            parts[0] = Some(self.shards[0].alloc(words));
        } else {
            for (s, part) in parts.iter_mut().enumerate() {
                let share = rows_on_shard(rows, k, s);
                if share > 0 {
                    *part = Some(self.shards[s].alloc(share * self.n));
                }
            }
        }
        self.next_id += 1;
        self.map.insert(
            self.next_id,
            ShardAlloc {
                len: words,
                rows,
                parts,
            },
        );
        DeviceBuf::root(self.next_id, words)
    }

    fn upload(&mut self, dst: DeviceBuf, src: &[u64]) {
        // Front-of-view fill, fanned out: each shard charges its own
        // PCIe link (one transfer per shard, the cyclic rows packed
        // into local order host-side), so a K-way upload overlaps K
        // ways.
        for (s, span, views) in self.shard_pieces(dst.sub(0, src.len())) {
            if let [v] = views.as_slice() {
                self.shards[s].upload(span, &src[v.clone()]);
            } else {
                let mut host = Vec::with_capacity(span.len());
                for v in &views {
                    host.extend_from_slice(&src[v.clone()]);
                }
                self.shards[s].upload(span, &host);
            }
        }
    }

    fn download(&mut self, src: DeviceBuf, dst: &mut [u64]) {
        for (s, span, views) in self.shard_pieces(src.sub(0, dst.len())) {
            if let [v] = views.as_slice() {
                self.shards[s].download(span, &mut dst[v.clone()]);
            } else {
                let mut host = vec![0u64; span.len()];
                self.shards[s].download(span, &mut host);
                let mut off = 0;
                for v in &views {
                    dst[v.clone()].copy_from_slice(&host[off..off + v.len()]);
                    off += v.len();
                }
            }
        }
    }

    fn copy(&mut self, src: DeviceBuf, dst: DeviceBuf) {
        // Word-wise intersection of the two partitions: co-resident
        // stretches copy d2d, the rest crosses the link.
        let s_segs = self.segments(src);
        let d_segs = self.segments(dst.sub(0, src.len()));
        for ss in &s_segs {
            for ds in &d_segs {
                let lo = ss.view.start.max(ds.view.start);
                let hi = ss.view.end.min(ds.view.end);
                if lo >= hi {
                    continue;
                }
                let sl = ss.local.sub(lo - ss.view.start, hi - lo);
                let dl = ds.local.sub(lo - ds.view.start, hi - lo);
                if ss.shard == ds.shard {
                    self.shards[ss.shard].copy(sl, dl);
                } else {
                    // The wire waits for both the source bytes and the
                    // destination's previous readers/writers (flow
                    // control), then the landing becomes the
                    // destination allocation's readiness fence — no
                    // compute stream on either side stalls here.
                    let sroot = self.shards[ss.shard].root_base(sl);
                    let droot = self.shards[ds.shard].root_base(dl);
                    let ready = self.shards[ss.shard]
                        .ready_fence(&[sroot])
                        .max(self.shards[ds.shard].ready_fence(&[droot]));
                    let sraw = self.shards[ss.shard].raw_buf(sl);
                    let draw = self.shards[ds.shard].raw_buf(dl);
                    let (sent, landed) = self.link_words(ss.shard, ready, sraw, ds.shard, draw);
                    self.shards[ss.shard].fence_until(sroot, sent);
                    self.shards[ds.shard].fence_until(droot, landed);
                }
            }
        }
    }

    fn free(&mut self, buf: DeviceBuf) {
        if let Some(a) = self.map.remove(&buf.id()) {
            for (s, part) in a.parts.iter().enumerate() {
                if let Some(p) = part {
                    self.shards[s].free(*p);
                }
            }
        }
    }

    fn stats(&self) -> TransferStats {
        // Sum over shards: each card drives its own PCIe link.
        let mut t = TransferStats::default();
        for sh in &self.shards {
            let s = sh.stats();
            t.uploads += s.uploads;
            t.upload_words += s.upload_words;
            t.downloads += s.downloads;
            t.download_words += s.download_words;
            t.d2d_copies += s.d2d_copies;
            t.allocs += s.allocs;
            t.frees += s.frees;
        }
        t
    }

    fn reset_stats(&mut self) {
        for sh in &mut self.shards {
            sh.reset_stats();
        }
    }

    fn try_alloc(&mut self, words: usize) -> Result<DeviceBuf, BackendError> {
        let k = self.shards.len();
        let rows = if words.is_multiple_of(self.n) {
            words / self.n
        } else {
            0
        };
        for s in 0..k {
            let share = if rows == 0 {
                if s == 0 {
                    words
                } else {
                    0
                }
            } else {
                rows_on_shard(rows, k, s) * self.n
            };
            if share == 0 {
                continue;
            }
            let projected = self.shards[s].gpu().gmem.allocated_words() + share;
            self.shards[s]
                .gpu_mut()
                .fault_check_alloc(projected)
                .map_err(|kind| classify(kind, "alloc", share))?;
        }
        Ok(self.alloc(words))
    }

    fn try_upload(&mut self, dst: DeviceBuf, src: &[u64]) -> Result<(), BackendError> {
        if !self.is_live(dst) || src.len() > dst.len() {
            return Err(BackendError::Fatal { op: "upload" });
        }
        let mut involved: Vec<usize> = self
            .segments(dst.sub(0, src.len()))
            .iter()
            .map(|s| s.shard)
            .collect();
        involved.sort_unstable();
        involved.dedup();
        for s in involved {
            self.shards[s].fault_gate("upload", FaultOp::Upload)?;
        }
        self.upload(dst, src);
        Ok(())
    }

    fn try_download(&mut self, src: DeviceBuf, dst: &mut [u64]) -> Result<(), BackendError> {
        if !self.is_live(src) || dst.len() > src.len() {
            return Err(BackendError::Fatal { op: "download" });
        }
        let mut involved: Vec<usize> = self
            .segments(src.sub(0, dst.len()))
            .iter()
            .map(|s| s.shard)
            .collect();
        involved.sort_unstable();
        involved.dedup();
        for s in involved {
            self.shards[s].fault_gate("download", FaultOp::Download)?;
        }
        self.download(src, dst);
        Ok(())
    }
}

/// Lock a shared [`ShardedMemory`], recovering from poisoning.
fn lock_sharded(mem: &Arc<Mutex<ShardedMemory>>) -> MutexGuard<'_, ShardedMemory> {
    mem.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One shard's slice of a device-op view under the cyclic partition:
/// the view-relative row indices it owns (an ascending stride-`K`
/// progression) and the locally *contiguous* piece holding them in
/// that order.
struct RowSeg {
    shard: usize,
    /// View-relative indices of the rows this shard owns, ascending.
    rows: Vec<usize>,
    /// The rows as one contiguous view into the shard-local part.
    local: DeviceBuf,
}

/// Row-aligned shard pieces of a device-op view. Device ops always
/// pass row-aligned views (the evaluator slices at digit boundaries),
/// and the cyclic partition cuts on row boundaries by construction, so
/// alignment is an invariant — the asserts catch a plan whose degree
/// differs from the partition granularity before a kernel reads
/// garbage.
fn row_segments(m: &ShardedMemory, view: DeviceBuf, n: usize) -> Vec<RowSeg> {
    assert_eq!(
        n, m.n,
        "ShardedBackend partitions at the ring degree it was constructed for"
    );
    let a = m.map.get(&view.id()).expect("freed or foreign DeviceBuf");
    assert!(
        view.base() + view.len() <= a.len,
        "view outside its allocation"
    );
    assert_eq!(view.base() % n, 0, "device-op views must be row-aligned");
    assert_eq!(view.len() % n, 0, "device-op views must be row-aligned");
    let vrows = view.len() / n;
    if a.rows == 0 {
        let part = a.parts[0].expect("unpartitioned alloc lives on shard 0");
        return vec![RowSeg {
            shard: 0,
            rows: (0..vrows).collect(),
            local: part.sub(view.base(), view.len()),
        }];
    }
    let k = m.shards.len();
    let vb = view.base() / n;
    let mut out = Vec::new();
    for s in 0..k {
        // First global row >= vb congruent to s mod k.
        let g0 = vb + ((s + k - vb % k) % k);
        if g0 >= vb + vrows {
            continue;
        }
        let count = (vb + vrows - g0).div_ceil(k);
        let part = a.parts[s].expect("owned rows have a local part");
        out.push(RowSeg {
            shard: s,
            rows: (0..count).map(|i| g0 + i * k - vb).collect(),
            local: part.sub((g0 / k) * n, count * n),
        });
    }
    out
}

/// Per-shard staging buffers (one [`SimBackend`]-style set per device).
///
/// [`SimBackend`]: crate::SimBackend
#[derive(Default)]
struct ShardStaging {
    /// Primary host-batch operand.
    data: DevData,
    /// Secondary host-batch operand.
    scratch: DevData,
    /// `dev_multiply`'s second-operand scratch.
    mul_scratch: DevData,
}

/// The multi-device backend: `K` simulated GPUs, each owning the
/// cyclic slice `r ≡ s (mod K)` of the RNS residue rows, joined by a
/// modeled inter-device link. Same [`NttBackend`] surface as
/// [`crate::SimBackend`] — the swap is the constructor. See the module
/// docs for the partition and traffic model.
pub struct ShardedBackend {
    mem: Arc<Mutex<ShardedMemory>>,
    /// This executor's stream on each shard (index = shard).
    streams: Vec<Stream>,
    /// This executor's staging buffers on each shard.
    staging: Vec<ShardStaging>,
    /// Memoized per-`N` forward choice, shared by forks.
    split_cache: Arc<Mutex<HashMap<usize, ShapeChoice>>>,
}

impl ShardedBackend {
    /// `shards` devices of one model, partitioning rings of `degree`.
    ///
    /// An `NTT_WARP_FAULTS` plan is armed on **every** shard — each
    /// device draws its own schedule, so fault rates scale with the
    /// device count the way a real multi-GPU node's do.
    pub fn new(config: GpuConfig, shards: usize, degree: usize) -> Self {
        let backend = Self {
            mem: Arc::new(Mutex::new(ShardedMemory::new(config, shards, degree))),
            streams: vec![Stream::DEFAULT; shards],
            staging: (0..shards).map(|_| ShardStaging::default()).collect(),
            split_cache: Arc::new(Mutex::new(HashMap::new())),
        };
        if let Some(plan) = gpu_sim::FaultPlan::from_env() {
            backend.set_fault_plan(Some(plan));
        }
        backend
    }

    /// `shards` Titan-V-model devices for rings of `degree`.
    pub fn titan_v(shards: usize, degree: usize) -> Self {
        Self::new(GpuConfig::titan_v(), shards, degree)
    }

    /// Arm (or disarm) a deterministic fault schedule on every shard.
    pub fn set_fault_plan(&self, plan: Option<gpu_sim::FaultPlan>) {
        let mut m = self.lock();
        for sh in &mut m.shards {
            sh.gpu_mut().set_fault_plan(plan.clone());
        }
    }

    fn lock(&self) -> MutexGuard<'_, ShardedMemory> {
        lock_sharded(&self.mem)
    }

    /// A clone of the shared sharded-memory handle (timeline, link
    /// ledger, per-shard devices) for harness observation.
    pub fn memory_handle(&self) -> Arc<Mutex<ShardedMemory>> {
        Arc::clone(&self.mem)
    }

    /// Number of devices in the shard set.
    pub fn shard_count(&self) -> usize {
        self.streams.len()
    }

    /// Aggregate timeline over the shard set (see
    /// [`ShardedMemory::timeline`]).
    pub fn timeline(&self) -> DeviceTimeline {
        self.lock().timeline()
    }

    /// The inter-device traffic ledger.
    pub fn link_stats(&self) -> LinkStats {
        self.lock().link_stats()
    }

    /// Drain every shard's stream schedule.
    pub fn sync_all(&self) {
        self.lock().sync_all();
    }

    /// Host↔device transfer ledger summed over shards.
    pub fn transfer_stats(&self) -> TransferStats {
        self.lock().stats()
    }

    /// Bind every shard's active stream to this executor.
    fn bind_all(&self, m: &mut ShardedMemory) {
        for (s, sh) in m.shards.iter_mut().enumerate() {
            sh.bind(self.streams[s]);
        }
    }

    /// Forward-implementation routing, identical to
    /// [`crate::SimBackend`]'s: env override, small-shape radix-2
    /// floor, else the memoized calibration winner (swept on a scratch
    /// single device — per-shard row counts shrink with `K`, but the
    /// shape class is decided by `N`).
    fn forward_choice(&self, n: usize, rows: usize) -> ForwardImpl {
        match crate::backend::forward_mode() {
            ForwardMode::Radix2 => return ForwardImpl::Radix2,
            ForwardMode::Smem if n >= 4 => {
                return self.cached_or_calibrated(n, rows).best_smem;
            }
            ForwardMode::Hier if n >= 4 => {
                return self.cached_or_calibrated(n, rows).best_hier;
            }
            _ => {}
        }
        if n < SMEM_MIN_N {
            return ForwardImpl::Radix2;
        }
        self.cached_or_calibrated(n, rows).auto
    }

    fn cached_or_calibrated(&self, n: usize, rows: usize) -> ShapeChoice {
        if let Some(&c) = self
            .split_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&n)
        {
            return c;
        }
        let config = self.lock().shards[0].gpu().config.clone();
        let choice = calibrate_forward_choice(&config, n, rows);
        self.split_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(n, choice);
        choice
    }

    /// Fault gates for one staged host-batch op: every shard stages
    /// its own rows, so each draws upload + launch + download.
    fn gate_staged(&self, op: &'static str) -> Result<(), BackendError> {
        let mut m = self.lock();
        for (s, sh) in m.shards.iter_mut().enumerate() {
            sh.bind(self.streams[s]);
            sh.fault_gate(op, FaultOp::Upload)?;
            sh.fault_gate(op, FaultOp::Launch)?;
            sh.fault_gate(op, FaultOp::Download)?;
        }
        Ok(())
    }

    /// Launch-class gate for one device-resident op, drawn per shard.
    fn gate_launch(&self, op: &'static str) -> Result<(), BackendError> {
        let mut m = self.lock();
        for (s, sh) in m.shards.iter_mut().enumerate() {
            sh.bind(self.streams[s]);
            sh.fault_gate(op, FaultOp::Launch)?;
        }
        Ok(())
    }

    /// Freed/foreign handles surface as [`BackendError::Fatal`] on the
    /// fallible paths (the infallible ones treat them as invariant
    /// violations, as on [`crate::SimBackend`]).
    fn check_handles(&self, op: &'static str, bufs: &[DeviceBuf]) -> Result<(), BackendError> {
        let m = self.lock();
        if bufs.iter().all(|&b| m.is_live(b)) {
            Ok(())
        } else {
            Err(BackendError::Fatal { op })
        }
    }
}

impl Drop for ShardedBackend {
    fn drop(&mut self) {
        let mut m = lock_sharded(&self.mem);
        for (s, &st) in self.streams.iter().enumerate() {
            if st != Stream::DEFAULT {
                m.shards[s].gpu_mut().destroy_stream(st);
            }
        }
    }
}

impl NttBackend for ShardedBackend {
    fn name(&self) -> &'static str {
        "gpu-sim-sharded"
    }

    fn memory(&self) -> SharedDeviceMemory {
        let shared: SharedDeviceMemory = self.mem.clone();
        shared
    }

    fn fork(&self) -> Box<dyn NttBackend> {
        let mut m = self.lock();
        let streams: Vec<Stream> = m
            .shards
            .iter_mut()
            .map(|sh| sh.gpu_mut().create_stream())
            .collect();
        let shards = streams.len();
        Box::new(ShardedBackend {
            mem: Arc::clone(&self.mem),
            streams,
            staging: (0..shards).map(|_| ShardStaging::default()).collect(),
            split_cache: Arc::clone(&self.split_cache),
        })
    }

    fn prefers_residency(&self) -> bool {
        true
    }

    fn bind_stream(&self) {
        let mut m = self.lock();
        self.bind_all(&mut m);
    }

    fn forward_batch(&mut self, plan: &RingPlan, mut batch: LimbBatch<'_>) {
        let (n, level) = (batch.n(), batch.level());
        let rows = batch.rows();
        let choice = self.forward_choice(n, rows);
        let mut m = lock_sharded(&self.mem);
        let k = m.shards.len();
        for s in 0..k {
            let r = shard_rows(rows, k, s);
            if r.is_empty() {
                continue;
            }
            let row_prime: Vec<usize> = r.clone().map(|r| r % level).collect();
            let words = r.len() * n;
            let sh = &mut m.shards[s];
            sh.bind(self.streams[s]);
            ensure_tables(sh, plan);
            let buf = self.staging[s].data.ensure(sh.gpu_mut(), words);
            let buf = buf.sub(0, words);
            sh.wait_ready(&[buf.base()]);
            sh.gpu_mut()
                .stream_upload(buf, 0, &batch.as_slice()[r.start * n..r.end * n]);
            run_forward(sh, plan, buf, &row_prime, choice);
            sh.gpu_mut()
                .stream_download(buf, &mut batch.data()[r.start * n..r.end * n]);
            sh.mark_written(&[buf.base()]);
        }
    }

    fn inverse_batch(&mut self, plan: &RingPlan, mut batch: LimbBatch<'_>) {
        let (n, level) = (batch.n(), batch.level());
        let rows = batch.as_slice().len() / n;
        let mut m = lock_sharded(&self.mem);
        let k = m.shards.len();
        for s in 0..k {
            let r = shard_rows(rows, k, s);
            if r.is_empty() {
                continue;
            }
            let row_prime: Vec<usize> = r.clone().map(|r| r % level).collect();
            let words = r.len() * n;
            let sh = &mut m.shards[s];
            sh.bind(self.streams[s]);
            ensure_tables(sh, plan);
            let buf = self.staging[s].data.ensure(sh.gpu_mut(), words);
            let buf = buf.sub(0, words);
            sh.wait_ready(&[buf.base()]);
            sh.gpu_mut()
                .stream_upload(buf, 0, &batch.as_slice()[r.start * n..r.end * n]);
            run_inverse(sh, buf, &row_prime);
            sh.gpu_mut()
                .stream_download(buf, &mut batch.data()[r.start * n..r.end * n]);
            sh.mark_written(&[buf.base()]);
        }
    }

    fn pointwise_batch(&mut self, plan: &RingPlan, mut acc: LimbBatch<'_>, rhs: &[u64]) {
        assert_eq!(acc.as_slice().len(), rhs.len(), "operand shape mismatch");
        let (n, level) = (acc.n(), acc.level());
        let rows = acc.as_slice().len() / n;
        let mut m = lock_sharded(&self.mem);
        let k = m.shards.len();
        for s in 0..k {
            let r = shard_rows(rows, k, s);
            if r.is_empty() {
                continue;
            }
            let row_prime: Vec<usize> = r.clone().map(|r| r % level).collect();
            let words = r.len() * n;
            let sh = &mut m.shards[s];
            sh.bind(self.streams[s]);
            ensure_tables(sh, plan);
            let abuf = self.staging[s].data.ensure(sh.gpu_mut(), words);
            let abuf = abuf.sub(0, words);
            let bbuf = self.staging[s].scratch.ensure(sh.gpu_mut(), words);
            let bbuf = bbuf.sub(0, words);
            sh.wait_ready(&[abuf.base(), bbuf.base()]);
            sh.gpu_mut()
                .stream_upload(abuf, 0, &acc.as_slice()[r.start * n..r.end * n]);
            sh.gpu_mut()
                .stream_upload(bbuf, 0, &rhs[r.start * n..r.end * n]);
            launch_elemwise(sh, ElemOp::Mul, abuf, Some(bbuf), None, n, &row_prime);
            sh.gpu_mut()
                .stream_download(abuf, &mut acc.data()[r.start * n..r.end * n]);
            sh.mark_written(&[abuf.base(), bbuf.base()]);
        }
    }

    fn multiply_batch(&mut self, plan: &RingPlan, a: &[u64], b: &[u64], mut out: LimbBatch<'_>) {
        assert_eq!(a.len(), out.as_slice().len(), "operand shape mismatch");
        assert_eq!(b.len(), out.as_slice().len(), "operand shape mismatch");
        let (n, level) = (out.n(), out.level());
        let rows = a.len() / n;
        let choice = self.forward_choice(n, rows);
        let mut m = lock_sharded(&self.mem);
        let k = m.shards.len();
        for s in 0..k {
            let r = shard_rows(rows, k, s);
            if r.is_empty() {
                continue;
            }
            let row_prime: Vec<usize> = r.clone().map(|r| r % level).collect();
            let words = r.len() * n;
            let sh = &mut m.shards[s];
            sh.bind(self.streams[s]);
            ensure_tables(sh, plan);
            let abuf = self.staging[s].data.ensure(sh.gpu_mut(), words);
            let abuf = abuf.sub(0, words);
            let bbuf = self.staging[s].scratch.ensure(sh.gpu_mut(), words);
            let bbuf = bbuf.sub(0, words);
            sh.wait_ready(&[abuf.base(), bbuf.base()]);
            sh.gpu_mut()
                .stream_upload(abuf, 0, &a[r.start * n..r.end * n]);
            sh.gpu_mut()
                .stream_upload(bbuf, 0, &b[r.start * n..r.end * n]);
            run_forward(sh, plan, abuf, &row_prime, choice);
            run_forward(sh, plan, bbuf, &row_prime, choice);
            launch_elemwise(sh, ElemOp::Mul, abuf, Some(bbuf), None, n, &row_prime);
            run_inverse(sh, abuf, &row_prime);
            sh.gpu_mut()
                .stream_download(abuf, &mut out.data()[r.start * n..r.end * n]);
            sh.mark_written(&[abuf.base(), bbuf.base()]);
        }
    }

    // ---- Device-resident execution ---------------------------------

    fn dev_forward(&mut self, plan: &RingPlan, buf: DeviceBuf, level: usize) {
        let n = plan.degree();
        let rows = buf.len() / n;
        let choice = self.forward_choice(n, rows);
        let mut m = self.lock();
        self.bind_all(&mut m);
        for seg in row_segments(&m, buf, n) {
            let row_prime: Vec<usize> = seg.rows.iter().map(|&r| r % level).collect();
            let sh = &mut m.shards[seg.shard];
            ensure_tables(sh, plan);
            let root = sh.root_base(seg.local);
            let data = sh.raw_buf(seg.local);
            sh.wait_ready(&[root]);
            run_forward(sh, plan, data, &row_prime, choice);
            sh.mark_written(&[root]);
        }
    }

    fn dev_inverse(&mut self, plan: &RingPlan, buf: DeviceBuf, level: usize) {
        let n = plan.degree();
        let mut m = self.lock();
        self.bind_all(&mut m);
        for seg in row_segments(&m, buf, n) {
            let row_prime: Vec<usize> = seg.rows.iter().map(|&r| r % level).collect();
            let sh = &mut m.shards[seg.shard];
            ensure_tables(sh, plan);
            let root = sh.root_base(seg.local);
            let data = sh.raw_buf(seg.local);
            sh.wait_ready(&[root]);
            run_inverse(sh, data, &row_prime);
            sh.mark_written(&[root]);
        }
    }

    fn dev_multiply(
        &mut self,
        plan: &RingPlan,
        a: DeviceBuf,
        b: DeviceBuf,
        out: DeviceBuf,
        level: usize,
    ) {
        let n = plan.degree();
        let rows = out.len() / n;
        let choice = self.forward_choice(n, rows);
        let mut m = lock_sharded(&self.mem);
        self.bind_all(&mut m);
        for seg in row_segments(&m, out, n) {
            let s = seg.shard;
            let row_prime: Vec<usize> = seg.rows.iter().map(|&r| r % level).collect();
            let words = seg.rows.len() * n;
            ensure_tables(&mut m.shards[s], plan);
            let ga = m.gather_rows(a, &seg.rows, s);
            let gb = m.gather_rows(b, &seg.rows, s);
            let sh = &mut m.shards[s];
            let oroot = sh.root_base(seg.local);
            let oraw = sh.raw_buf(seg.local);
            let scratch = self.staging[s].mul_scratch.ensure(sh.gpu_mut(), words);
            let scratch = scratch.sub(0, words);
            sh.wait_ready(&[oroot, scratch.base()]);
            // Stage both operands on the owning shard (inputs intact).
            sh.gpu_mut().gmem.copy(ga.buf, oraw);
            sh.gpu_mut().gmem.copy(gb.buf, scratch);
            run_forward(sh, plan, oraw, &row_prime, choice);
            run_forward(sh, plan, scratch, &row_prime, choice);
            launch_elemwise(sh, ElemOp::Mul, oraw, Some(scratch), None, n, &row_prime);
            run_inverse(sh, oraw, &row_prime);
            sh.mark_written(&[oroot, scratch.base()]);
            m.release_gather(s, ga);
            m.release_gather(s, gb);
        }
    }

    fn dev_pointwise(&mut self, plan: &RingPlan, acc: DeviceBuf, rhs: DeviceBuf, level: usize) {
        let n = plan.degree();
        let mut m = self.lock();
        self.bind_all(&mut m);
        for seg in row_segments(&m, acc, n) {
            let s = seg.shard;
            let row_prime: Vec<usize> = seg.rows.iter().map(|&r| r % level).collect();
            ensure_tables(&mut m.shards[s], plan);
            let g = m.gather_rows(rhs, &seg.rows, s);
            let sh = &mut m.shards[s];
            let root = sh.root_base(seg.local);
            let araw = sh.raw_buf(seg.local);
            sh.wait_ready(&[root]);
            launch_elemwise(sh, ElemOp::Mul, araw, Some(g.buf), None, n, &row_prime);
            sh.mark_written(&[root]);
            m.release_gather(s, g);
        }
    }

    fn dev_fma(
        &mut self,
        plan: &RingPlan,
        acc: DeviceBuf,
        x: DeviceBuf,
        y: DeviceBuf,
        level: usize,
    ) {
        let n = plan.degree();
        let mut m = self.lock();
        self.bind_all(&mut m);
        for seg in row_segments(&m, acc, n) {
            let s = seg.shard;
            let row_prime: Vec<usize> = seg.rows.iter().map(|&r| r % level).collect();
            ensure_tables(&mut m.shards[s], plan);
            // The key-switch inner product lands here: `x` is a digit
            // sub-view of the decompose scratch at row offset
            // `d * level`. The cyclic partition makes that view land on
            // the accumulator's shards whenever `level % K == 0` — the
            // zero-copy fast path in `gather_rows` — and any genuinely
            // misaligned view (e.g. `K = 3` with `level = 8`) arrives
            // over the link, correct either way.
            let gx = m.gather_rows(x, &seg.rows, s);
            let gy = m.gather_rows(y, &seg.rows, s);
            let sh = &mut m.shards[s];
            let root = sh.root_base(seg.local);
            let araw = sh.raw_buf(seg.local);
            sh.wait_ready(&[root]);
            launch_elemwise(
                sh,
                ElemOp::Fma,
                araw,
                Some(gx.buf),
                Some(gy.buf),
                n,
                &row_prime,
            );
            sh.mark_written(&[root]);
            m.release_gather(s, gx);
            m.release_gather(s, gy);
        }
    }

    fn dev_addsub(
        &mut self,
        plan: &RingPlan,
        acc: DeviceBuf,
        rhs: DeviceBuf,
        level: usize,
        subtract: bool,
    ) {
        let n = plan.degree();
        let op = if subtract { ElemOp::Sub } else { ElemOp::Add };
        let mut m = self.lock();
        self.bind_all(&mut m);
        for seg in row_segments(&m, acc, n) {
            let s = seg.shard;
            let row_prime: Vec<usize> = seg.rows.iter().map(|&r| r % level).collect();
            ensure_tables(&mut m.shards[s], plan);
            let g = m.gather_rows(rhs, &seg.rows, s);
            let sh = &mut m.shards[s];
            let root = sh.root_base(seg.local);
            let araw = sh.raw_buf(seg.local);
            sh.wait_ready(&[root]);
            launch_elemwise(sh, op, araw, Some(g.buf), None, n, &row_prime);
            sh.mark_written(&[root]);
            m.release_gather(s, g);
        }
    }

    fn dev_negate(&mut self, plan: &RingPlan, buf: DeviceBuf, level: usize) {
        let n = plan.degree();
        let mut m = self.lock();
        self.bind_all(&mut m);
        for seg in row_segments(&m, buf, n) {
            let row_prime: Vec<usize> = seg.rows.iter().map(|&r| r % level).collect();
            let sh = &mut m.shards[seg.shard];
            ensure_tables(sh, plan);
            let root = sh.root_base(seg.local);
            let araw = sh.raw_buf(seg.local);
            sh.wait_ready(&[root]);
            launch_elemwise(sh, ElemOp::Neg, araw, None, None, n, &row_prime);
            sh.mark_written(&[root]);
        }
    }

    fn dev_rescale(&mut self, plan: &RingPlan, buf: DeviceBuf, level: usize) {
        assert!(level > 1, "cannot rescale past the last prime");
        let n = plan.degree();
        let primes = plan.ring().basis().primes();
        let p_last = primes[level - 1];
        let inv_p: Vec<(u64, u64)> = primes[..level - 1]
            .iter()
            .map(|&p| {
                (
                    ntt_math::inv_mod(p_last % p, p).expect("distinct primes are coprime"),
                    p,
                )
            })
            .collect();
        let mut m = self.lock();
        self.bind_all(&mut m);
        // Rows 0..level-1 rescale in place; every owning shard needs
        // the dropped last row — a broadcast of N words per remote
        // shard over the link.
        let data_view = buf.sub(0, (level - 1) * n);
        for seg in row_segments(&m, data_view, n) {
            let s = seg.shard;
            ensure_tables(&mut m.shards[s], plan);
            let last = m.gather_rows(buf, &[level - 1], s);
            let inv: Vec<(u64, u64)> = seg.rows.iter().map(|&r| inv_p[r]).collect();
            let sh = &mut m.shards[s];
            let root = sh.root_base(seg.local);
            let data = sh.raw_buf(seg.local);
            sh.wait_ready(&[root]);
            let kernel = ShardRescaleKernel {
                data,
                last: last.buf,
                n,
                rows: seg.rows.len(),
                inv_p: &inv,
            };
            let blocks = (seg.rows.len() * n).div_ceil(THREADS);
            let cfg = LaunchConfig::new("sim-rescale", blocks, THREADS).regs_per_thread(40);
            sh.gpu_mut().launch(&kernel, &cfg);
            sh.mark_written(&[root]);
            m.release_gather(s, last);
        }
    }

    fn dev_decompose(
        &mut self,
        plan: &RingPlan,
        src: DeviceBuf,
        dst: DeviceBuf,
        level: usize,
        digits: usize,
        gadget_bits: u32,
    ) {
        let n = plan.degree();
        assert_eq!(src.len(), level * n, "source must be level x N");
        assert_eq!(
            dst.len(),
            level * digits * level * n,
            "digit buffer shape mismatch"
        );
        let mut m = self.lock();
        self.bind_all(&mut m);
        // Every digit reads every residue row of the source: the
        // sharded base conversion is an all-gather of the remote rows
        // (≈ (K-1)/K · level · N words across the link per shard).
        let all_src_rows: Vec<usize> = (0..level).collect();
        for seg in row_segments(&m, dst, n) {
            let s = seg.shard;
            ensure_tables(&mut m.shards[s], plan);
            let gsrc = m.gather_rows(src, &all_src_rows, s);
            let sh = &mut m.shards[s];
            let root = sh.root_base(seg.local);
            let draw = sh.raw_buf(seg.local);
            sh.wait_ready(&[root]);
            let kernel = ShardDecomposeKernel {
                src: gsrc.buf,
                dst: draw,
                n,
                level,
                digits,
                gadget_bits,
                rows: &seg.rows,
            };
            let blocks = (seg.rows.len() * n).div_ceil(THREADS);
            let cfg = LaunchConfig::new("sim-decompose", blocks, THREADS).regs_per_thread(40);
            sh.gpu_mut().launch(&kernel, &cfg);
            sh.mark_written(&[root]);
            m.release_gather(s, gsrc);
        }
    }

    fn dev_automorphism(
        &mut self,
        plan: &RingPlan,
        src: DeviceBuf,
        dst: DeviceBuf,
        level: usize,
        g: u64,
    ) {
        let n = plan.degree();
        assert_eq!(src.len(), dst.len(), "operand shape mismatch");
        let g = g % (2 * n as u64);
        assert_eq!(g % 2, 1, "Galois element must be odd");
        let mut m = self.lock();
        self.bind_all(&mut m);
        // The permutation is row-local, so each dst row needs exactly
        // its own src row — aligned allocations stay link-free.
        for seg in row_segments(&m, dst, n) {
            let s = seg.shard;
            let row_prime: Vec<usize> = seg.rows.iter().map(|&r| r % level).collect();
            ensure_tables(&mut m.shards[s], plan);
            let gsrc = m.gather_rows(src, &seg.rows, s);
            let sh = &mut m.shards[s];
            let root = sh.root_base(seg.local);
            let draw = sh.raw_buf(seg.local);
            sh.wait_ready(&[root]);
            launch_automorphism(sh, gsrc.buf, draw, n, g, &row_prime);
            sh.mark_written(&[root]);
            m.release_gather(s, gsrc);
        }
    }

    fn dev_modraise(&mut self, plan: &RingPlan, src: DeviceBuf, dst: DeviceBuf, to_level: usize) {
        let n = plan.degree();
        assert_eq!(src.len(), n, "mod-raise source must be one level-1 row");
        assert_eq!(dst.len(), to_level * n, "mod-raise destination shape");
        let moduli = plan.ring().basis().primes().to_vec();
        let p0 = moduli[0];
        let mut m = self.lock();
        self.bind_all(&mut m);
        // Broadcast the single source row to every shard owning
        // destination rows.
        for seg in row_segments(&m, dst, n) {
            let s = seg.shard;
            ensure_tables(&mut m.shards[s], plan);
            let gsrc = m.gather_rows(src, &[0], s);
            let sh = &mut m.shards[s];
            let root = sh.root_base(seg.local);
            let draw = sh.raw_buf(seg.local);
            sh.wait_ready(&[root]);
            let kernel = ShardModRaiseKernel {
                src: gsrc.buf,
                dst: draw,
                n,
                rows: &seg.rows,
                p0,
                moduli: &moduli,
            };
            let blocks = (seg.rows.len() * n).div_ceil(THREADS);
            let cfg = LaunchConfig::new("sim-modraise", blocks, THREADS).regs_per_thread(40);
            sh.gpu_mut().launch(&kernel, &cfg);
            sh.mark_written(&[root]);
            m.release_gather(s, gsrc);
        }
    }

    // ---- Fallible surface: gate-then-delegate, per shard -----------

    fn try_forward_batch(
        &mut self,
        plan: &RingPlan,
        batch: LimbBatch<'_>,
    ) -> Result<(), BackendError> {
        self.gate_staged("forward_batch")?;
        self.forward_batch(plan, batch);
        Ok(())
    }

    fn try_inverse_batch(
        &mut self,
        plan: &RingPlan,
        batch: LimbBatch<'_>,
    ) -> Result<(), BackendError> {
        self.gate_staged("inverse_batch")?;
        self.inverse_batch(plan, batch);
        Ok(())
    }

    fn try_pointwise_batch(
        &mut self,
        plan: &RingPlan,
        acc: LimbBatch<'_>,
        rhs: &[u64],
    ) -> Result<(), BackendError> {
        self.gate_staged("pointwise_batch")?;
        self.pointwise_batch(plan, acc, rhs);
        Ok(())
    }

    fn try_multiply_batch(
        &mut self,
        plan: &RingPlan,
        a: &[u64],
        b: &[u64],
        out: LimbBatch<'_>,
    ) -> Result<(), BackendError> {
        self.gate_staged("multiply_batch")?;
        self.multiply_batch(plan, a, b, out);
        Ok(())
    }

    fn try_dev_forward(
        &mut self,
        plan: &RingPlan,
        buf: DeviceBuf,
        level: usize,
    ) -> Result<(), BackendError> {
        self.check_handles("dev_forward", &[buf])?;
        self.gate_launch("dev_forward")?;
        self.dev_forward(plan, buf, level);
        Ok(())
    }

    fn try_dev_inverse(
        &mut self,
        plan: &RingPlan,
        buf: DeviceBuf,
        level: usize,
    ) -> Result<(), BackendError> {
        self.check_handles("dev_inverse", &[buf])?;
        self.gate_launch("dev_inverse")?;
        self.dev_inverse(plan, buf, level);
        Ok(())
    }

    fn try_dev_multiply(
        &mut self,
        plan: &RingPlan,
        a: DeviceBuf,
        b: DeviceBuf,
        out: DeviceBuf,
        level: usize,
    ) -> Result<(), BackendError> {
        self.check_handles("dev_multiply", &[a, b, out])?;
        self.gate_launch("dev_multiply")?;
        self.dev_multiply(plan, a, b, out, level);
        Ok(())
    }

    fn try_dev_pointwise(
        &mut self,
        plan: &RingPlan,
        acc: DeviceBuf,
        rhs: DeviceBuf,
        level: usize,
    ) -> Result<(), BackendError> {
        self.check_handles("dev_pointwise", &[acc, rhs])?;
        self.gate_launch("dev_pointwise")?;
        self.dev_pointwise(plan, acc, rhs, level);
        Ok(())
    }

    fn try_dev_fma(
        &mut self,
        plan: &RingPlan,
        acc: DeviceBuf,
        x: DeviceBuf,
        y: DeviceBuf,
        level: usize,
    ) -> Result<(), BackendError> {
        self.check_handles("dev_fma", &[acc, x, y])?;
        self.gate_launch("dev_fma")?;
        self.dev_fma(plan, acc, x, y, level);
        Ok(())
    }

    fn try_dev_rescale(
        &mut self,
        plan: &RingPlan,
        buf: DeviceBuf,
        level: usize,
    ) -> Result<(), BackendError> {
        self.check_handles("dev_rescale", &[buf])?;
        self.gate_launch("dev_rescale")?;
        self.dev_rescale(plan, buf, level);
        Ok(())
    }

    fn try_dev_decompose(
        &mut self,
        plan: &RingPlan,
        src: DeviceBuf,
        dst: DeviceBuf,
        level: usize,
        digits: usize,
        gadget_bits: u32,
    ) -> Result<(), BackendError> {
        self.check_handles("dev_decompose", &[src, dst])?;
        self.gate_launch("dev_decompose")?;
        self.dev_decompose(plan, src, dst, level, digits, gadget_bits);
        Ok(())
    }

    fn try_dev_automorphism(
        &mut self,
        plan: &RingPlan,
        src: DeviceBuf,
        dst: DeviceBuf,
        level: usize,
        g: u64,
    ) -> Result<(), BackendError> {
        self.check_handles("dev_automorphism", &[src, dst])?;
        self.gate_launch("dev_automorphism")?;
        self.dev_automorphism(plan, src, dst, level, g);
        Ok(())
    }

    fn try_dev_modraise(
        &mut self,
        plan: &RingPlan,
        src: DeviceBuf,
        dst: DeviceBuf,
        to_level: usize,
    ) -> Result<(), BackendError> {
        self.check_handles("dev_modraise", &[src, dst])?;
        self.gate_launch("dev_modraise")?;
        self.dev_modraise(plan, src, dst, to_level);
        Ok(())
    }
}

// ---- Sharded cross-row kernels -------------------------------------
//
// The single-device rescale/decompose/mod-raise kernels index the whole
// operand; the sharded variants run on a shard-local row slice plus a
// gathered copy of the rows the slice reads from other shards, with a
// per-local-row map (the cyclic partition's stride-K progression)
// restoring the global row index the math depends on. Per-lane
// arithmetic is copied verbatim from the `backend.rs` kernels so shard
// outputs stay bit-identical.

/// Rescale on a shard-local slice of data rows, the dropped last row
/// arriving as a separate (gathered) buffer.
struct ShardRescaleKernel<'a> {
    data: Buf,
    last: Buf,
    n: usize,
    rows: usize,
    /// `(p_last^{-1} mod p_i, p_i)` per *local* row (global slice
    /// already applied by the caller).
    inv_p: &'a [(u64, u64)],
}

impl WarpKernel for ShardRescaleKernel<'_> {
    fn phases(&self) -> usize {
        1
    }

    fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
        let total = self.rows * self.n;
        let lanes = ctx.lanes();
        let mut addr_x = vec![None; lanes];
        let mut addr_l = vec![None; lanes];
        let mut row = vec![0usize; lanes];
        let mut active = 0u64;
        for l in 0..lanes {
            let gt = ctx.global_thread(l);
            if gt >= total {
                continue;
            }
            active += 1;
            row[l] = gt / self.n;
            addr_x[l] = Some(self.data.word(gt));
            addr_l[l] = Some(self.last.word(gt % self.n));
        }
        if active == 0 {
            return;
        }
        let (x, last) = ctx.gmem_load2(&addr_x, &addr_l);
        let writes: Vec<Option<(usize, u64)>> = (0..lanes)
            .map(|l| {
                let xv = x[l]?;
                let lv = last[l].expect("last row loaded");
                let (inv, p) = self.inv_p[row[l]];
                let diff = sub_mod(xv, lv % p, p);
                Some((addr_x[l].expect("lane active"), mul_mod(diff, inv, p)))
            })
            .collect();
        ctx.count_op(OpClass::NativeModMul, active);
        ctx.count_op(OpClass::ModAddSub, active);
        ctx.gmem_store(&writes);
    }
}

/// Gadget digit decomposition writing a shard-local slice of the
/// digit-poly rows, reading a gathered full `level × N` source.
struct ShardDecomposeKernel<'a> {
    src: Buf,
    dst: Buf,
    n: usize,
    level: usize,
    digits: usize,
    gadget_bits: u32,
    /// Global row index per local destination row (the shard's cyclic
    /// stride-`K` progression).
    rows: &'a [usize],
}

impl WarpKernel for ShardDecomposeKernel<'_> {
    fn phases(&self) -> usize {
        1
    }

    fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
        let total = self.rows.len() * self.n;
        let mask = (1u64 << self.gadget_bits) - 1;
        let lanes = ctx.lanes();
        let mut addr_s = vec![None; lanes];
        let mut shift = vec![0u32; lanes];
        let mut active = 0u64;
        for l in 0..lanes {
            let gt = ctx.global_thread(l);
            if gt >= total {
                continue;
            }
            active += 1;
            let poly = self.rows[gt / self.n] / self.level;
            let (j, d) = (poly / self.digits, poly % self.digits);
            let t = gt % self.n;
            shift[l] = self.gadget_bits * d as u32;
            addr_s[l] = Some(self.src.word(j * self.n + t));
        }
        if active == 0 {
            return;
        }
        // Replicated rows re-read the same source words; the read-only
        // path absorbs the repeats the way twiddle broadcasts do.
        let vals = ctx.gmem_load_cached(&addr_s);
        let writes: Vec<Option<(usize, u64)>> = (0..lanes)
            .map(|l| {
                let v = vals[l]?;
                Some((self.dst.word(ctx.global_thread(l)), (v >> shift[l]) & mask))
            })
            .collect();
        ctx.count_op(OpClass::Generic, active);
        ctx.gmem_store(&writes);
    }
}

/// Mod-raise writing a shard-local slice of the raised rows, reading
/// the gathered single source row.
struct ShardModRaiseKernel<'a> {
    src: Buf,
    dst: Buf,
    n: usize,
    /// Global row index (= prime index) per local destination row.
    rows: &'a [usize],
    p0: u64,
    moduli: &'a [u64],
}

impl WarpKernel for ShardModRaiseKernel<'_> {
    fn phases(&self) -> usize {
        1
    }

    fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
        let total = self.rows.len() * self.n;
        let half = self.p0 >> 1;
        let lanes = ctx.lanes();
        let mut addr_s = vec![None; lanes];
        let mut prime = vec![0usize; lanes];
        let mut active = 0u64;
        for l in 0..lanes {
            let gt = ctx.global_thread(l);
            if gt >= total {
                continue;
            }
            active += 1;
            prime[l] = self.rows[gt / self.n];
            addr_s[l] = Some(self.src.word(gt % self.n));
        }
        if active == 0 {
            return;
        }
        let vals = ctx.gmem_load_cached(&addr_s);
        let writes: Vec<Option<(usize, u64)>> = (0..lanes)
            .map(|l| {
                let v = vals[l]?;
                let p = self.moduli[prime[l]];
                let lifted = if v <= half {
                    v % p
                } else {
                    neg_mod((self.p0 - v) % p, p)
                };
                Some((self.dst.word(ctx.global_thread(l)), lifted))
            })
            .collect();
        ctx.count_op(OpClass::Generic, active);
        ctx.gmem_store(&writes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimBackend;
    use ntt_core::backend::Evaluator;
    use ntt_core::{RnsPoly, RnsRing};

    fn ring(n: usize, np: usize) -> RnsRing {
        RnsRing::new(n, ntt_math::ntt_primes(59, 2 * n as u64, np)).unwrap()
    }

    fn sample(ring: &RnsRing, seed: i64) -> RnsPoly {
        let coeffs: Vec<i64> = (0..ring.degree() as i64)
            .map(|i| (seed.wrapping_mul(i + 3) % 97) - 48)
            .collect();
        RnsPoly::from_i64_coeffs(ring, &coeffs)
    }

    #[test]
    fn cyclic_partition_covers_every_row_once() {
        for rows in [1, 2, 3, 5, 8, 12] {
            for k in [1, 2, 3, 4, 8] {
                // Walking rows in order assigns each to shard r % k at
                // the next free local index — r / k by construction.
                let mut local = vec![0usize; k];
                for r in 0..rows {
                    let s = r % k;
                    assert_eq!(r / k, local[s], "local rows count up densely");
                    local[s] += 1;
                }
                assert_eq!(local.iter().sum::<usize>(), rows, "total");
                for (s, &got) in local.iter().enumerate() {
                    assert_eq!(got, rows_on_shard(rows, k, s), "per-shard row count");
                }
            }
        }
    }

    #[test]
    fn host_batch_split_is_contiguous_and_total() {
        for rows in [1, 2, 3, 5, 8, 12] {
            for k in [1, 2, 3, 4, 8] {
                let mut covered = 0;
                for s in 0..k {
                    let r = shard_rows(rows, k, s);
                    assert_eq!(r.start, covered, "contiguous");
                    covered = r.end;
                }
                assert_eq!(covered, rows, "total");
            }
        }
    }

    #[test]
    fn sharded_matches_sim_on_every_trait_op() {
        let ring = ring(32, 3);
        let plan = RingPlan::new(&ring);
        let a = sample(&ring, 5);
        let b = sample(&ring, 11);

        for k in [1, 2, 3] {
            let mut sim = SimBackend::titan_v();
            let mut sharded = ShardedBackend::titan_v(k, 32);

            let (mut fs, mut fk) = (a.clone(), a.clone());
            sim.forward_batch(&plan, LimbBatch::from_poly(&mut fs));
            sharded.forward_batch(&plan, LimbBatch::from_poly(&mut fk));
            assert_eq!(fs.flat(), fk.flat(), "forward k={k}");

            let (mut ps, mut pk) = (fs.clone(), fk.clone());
            sim.pointwise_batch(&plan, LimbBatch::from_poly(&mut ps), fs.flat());
            sharded.pointwise_batch(&plan, LimbBatch::from_poly(&mut pk), fk.flat());
            assert_eq!(ps.flat(), pk.flat(), "pointwise k={k}");

            sim.inverse_batch(&plan, LimbBatch::from_poly(&mut ps));
            sharded.inverse_batch(&plan, LimbBatch::from_poly(&mut pk));
            assert_eq!(ps.flat(), pk.flat(), "inverse k={k}");

            let (mut ms, mut mk) = (RnsPoly::zero(&ring), RnsPoly::zero(&ring));
            sim.multiply_batch(&plan, a.flat(), b.flat(), LimbBatch::from_poly(&mut ms));
            sharded.multiply_batch(&plan, a.flat(), b.flat(), LimbBatch::from_poly(&mut mk));
            assert_eq!(ms.flat(), mk.flat(), "multiply k={k}");
        }
    }

    #[test]
    fn sharded_evaluator_matches_cpu_resident_chain() {
        let ring = ring(16, 3);
        let a = sample(&ring, 7);
        let b = sample(&ring, 13);
        let mut cpu = Evaluator::cpu(&ring);
        let want = cpu.multiply(&a, &b);
        for k in [1, 2, 4] {
            let mut ev = Evaluator::with_backend(&ring, Box::new(ShardedBackend::titan_v(k, 16)));
            assert_eq!(ev.backend_name(), "gpu-sim-sharded");
            let (mut ra, mut rb) = (a.clone(), b.clone());
            ev.make_resident(&mut ra);
            ev.make_resident(&mut rb);
            let mut got = ev.multiply(&ra, &rb);
            got.sync();
            assert_eq!(want.flat(), got.flat(), "resident multiply k={k}");
        }
    }

    #[test]
    fn upload_download_roundtrip_across_shards() {
        let mut m = ShardedMemory::new(GpuConfig::titan_v(), 3, 8);
        // Row-shaped: 5 rows of 8 words over 3 shards.
        let buf = m.alloc(40);
        let data: Vec<u64> = (0..40).collect();
        m.upload(buf, &data);
        let mut back = vec![0u64; 40];
        m.download(buf, &mut back);
        assert_eq!(data, back);
        // Sub-view crossing a shard boundary.
        let mut mid = vec![0u64; 16];
        m.download(buf.sub(12, 16), &mut mid);
        assert_eq!(&data[12..28], &mid[..]);
        // Not row-shaped: lands whole on shard 0.
        let odd = m.alloc(13);
        let odd_data: Vec<u64> = (100..113).collect();
        m.upload(odd, &odd_data);
        let mut odd_back = vec![0u64; 13];
        m.download(odd, &mut odd_back);
        assert_eq!(odd_data, odd_back);
        m.free(buf);
        m.free(odd);
    }

    #[test]
    fn cross_shard_copy_pays_link_traffic() {
        let mut m = ShardedMemory::new(GpuConfig::titan_v(), 2, 8);
        let src = m.alloc(16); // row 0 on shard 0, row 1 on shard 1
        let dst = m.alloc(16);
        let data: Vec<u64> = (0..16).collect();
        m.upload(src, &data);
        let t0 = m.link_stats();
        // Aligned copy: both partitions match, no link traffic.
        m.copy(src, dst);
        assert_eq!(m.link_stats().since(&t0).words, 0, "aligned copy is local");
        let mut back = vec![0u64; 16];
        m.download(dst, &mut back);
        assert_eq!(data, back);
        // Misaligned copy: shard-1 row of src into the front (shard-0)
        // row of a fresh view crosses the link.
        let t1 = m.link_stats();
        m.copy(src.sub(8, 8), dst.sub(0, 8));
        assert_eq!(m.link_stats().since(&t1).words, 8, "row crossed the link");
        m.download(dst.sub(0, 8), &mut back[..8]);
        assert_eq!(&data[8..], &back[..8]);
    }

    #[test]
    fn decompose_all_gather_crosses_the_link_only_when_sharded() {
        // Drive the key-switch digit shape directly: decompose a
        // level × N source into the level·digits·level digit rows,
        // then FMA a digit sub-view (whose partition is misaligned
        // with the accumulator's) — the two ops that carry the
        // base-conversion traffic.
        let ring = ring(16, 4);
        let plan = RingPlan::new(&ring);
        let (n, level, digits, gadget_bits) = (16usize, 4usize, 2usize, 30u32);
        let src_host: Vec<u64> = (0..(level * n) as u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9) % (1 << 59))
            .collect();
        let digit_rows = level * digits * level;

        let decompose = |backend: &mut dyn NttBackend| -> Vec<u64> {
            let mem = backend.memory();
            let mut mem = mem.lock().unwrap();
            let src = mem.alloc(level * n);
            let dst = mem.alloc(digit_rows * n);
            mem.upload(src, &src_host);
            drop(mem);
            backend.dev_decompose(&plan, src, dst, level, digits, gadget_bits);
            let mut out = vec![0u64; digit_rows * n];
            let mem = backend.memory();
            let mut mem = mem.lock().unwrap();
            mem.download(dst, &mut out);
            mem.free(src);
            mem.free(dst);
            out
        };

        let mut sim = SimBackend::titan_v();
        let want = decompose(&mut sim);
        for (k, expect_link) in [(1usize, false), (2, true), (4, true)] {
            let mut sharded = ShardedBackend::titan_v(k, 16);
            let handle = sharded.memory_handle();
            let got = decompose(&mut sharded);
            assert_eq!(want, got, "decompose k={k}");
            let link = lock_sharded(&handle).link_stats();
            if expect_link {
                assert!(link.words > 0, "k={k} must all-gather over the link");
            } else {
                assert_eq!(link.words, 0, "k=1 has no link to cross");
            }
        }
    }

    #[test]
    fn misaligned_fma_digit_view_matches_sim() {
        // acc is a level-row poly; x is a digit sub-view of a
        // digit_rows-row scratch at a row offset — partitions that
        // cannot line up for K > 1, exercising the gather fallback.
        let ring = ring(16, 3);
        let plan = RingPlan::new(&ring);
        let (n, level) = (16usize, 3usize);
        let digit_rows = 2 * level; // two stacked digit polys
        let acc_host: Vec<u64> = (0..(level * n) as u64).map(|i| i % 97).collect();
        let x_host: Vec<u64> = (0..(digit_rows * n) as u64).map(|i| (i * 7) % 89).collect();
        let y_host: Vec<u64> = (0..(level * n) as u64).map(|i| (i * 13) % 83).collect();

        let run = |backend: &mut dyn NttBackend| -> Vec<u64> {
            let mem = backend.memory();
            let mut mem = mem.lock().unwrap();
            let acc = mem.alloc(level * n);
            let x = mem.alloc(digit_rows * n);
            let y = mem.alloc(level * n);
            mem.upload(acc, &acc_host);
            mem.upload(x, &x_host);
            mem.upload(y, &y_host);
            drop(mem);
            // Second digit poly: rows level..2*level of the scratch.
            let xview = x.sub(level * n, level * n);
            backend.dev_fma(&plan, acc, xview, y, level);
            let mut out = vec![0u64; level * n];
            let mem = backend.memory();
            let mut mem = mem.lock().unwrap();
            mem.download(acc, &mut out);
            for b in [acc, x, y] {
                mem.free(b);
            }
            out
        };

        let mut sim = SimBackend::titan_v();
        let want = run(&mut sim);
        for k in [2usize, 3] {
            let mut sharded = ShardedBackend::titan_v(k, 16);
            let got = run(&mut sharded);
            assert_eq!(want, got, "misaligned fma k={k}");
        }
    }

    #[test]
    fn foreign_handle_is_fatal_on_the_fallible_surface() {
        let ring = ring(16, 2);
        let plan = RingPlan::new(&ring);
        let mut sharded = ShardedBackend::titan_v(2, 16);
        let mut other = ShardedMemory::new(GpuConfig::titan_v(), 2, 16);
        let foreign = other.alloc(32);
        let err = sharded
            .try_dev_forward(&plan, foreign, 2)
            .expect_err("foreign handle must not resolve");
        assert!(
            matches!(err, BackendError::Fatal { op: "dev_forward" }),
            "got {err:?}"
        );
    }

    #[test]
    fn k1_degenerates_to_zero_link_traffic() {
        let ring = ring(32, 3);
        let a = sample(&ring, 3);
        let backend = ShardedBackend::titan_v(1, 32);
        let handle = backend.memory_handle();
        let mut ev = Evaluator::with_backend(&ring, Box::new(backend));
        let mut ra = a.clone();
        ev.make_resident(&mut ra);
        let mut got = ev.multiply(&ra, &ra);
        got.sync();
        assert_eq!(lock_sharded(&handle).link_stats(), LinkStats::default());
    }

    #[test]
    fn fork_runs_on_its_own_streams_and_matches() {
        let ring = ring(16, 2);
        let plan = RingPlan::new(&ring);
        let mut root = ShardedBackend::titan_v(2, 16);
        let mut fork = root.fork();
        let a = sample(&ring, 5);
        let (mut x, mut y) = (a.clone(), a.clone());
        root.forward_batch(&plan, LimbBatch::from_poly(&mut x));
        fork.forward_batch(&plan, LimbBatch::from_poly(&mut y));
        assert_eq!(x.flat(), y.flat());
    }

    #[test]
    fn timeline_aggregates_max_overlap_and_sums_counts() {
        let ring = ring(32, 4);
        let a = sample(&ring, 5);
        let backend = ShardedBackend::titan_v(4, 32);
        let handle = backend.memory_handle();
        let mut ev = Evaluator::with_backend(&ring, Box::new(backend));
        let mut ra = a.clone();
        ev.make_resident(&mut ra);
        let mut got = ev.multiply(&ra, &ra);
        got.sync();
        let mut m = lock_sharded(&handle);
        m.sync_all();
        let agg = m.timeline();
        let per: Vec<DeviceTimeline> = m.shard_timelines();
        let max_overlap = per.iter().fold(0.0f64, |acc, t| acc.max(t.overlapped_s));
        assert!(agg.overlapped_s >= max_overlap - 1e-12);
        assert_eq!(agg.launches, per.iter().map(|t| t.launches).sum());
    }
}
