//! Device-side on-the-fly twiddling tables (paper §VII).
//!
//! For factorization base `B` (1024 in the paper), each prime stores two
//! small factor tables instead of the N-entry twiddle table for the stages
//! OT covers:
//!
//! * `lo[d]  = psi^d`          for `d < B`
//! * `hi[d]  = psi^(d·B)`      for `d < N/B`
//!
//! each with Shoup companions. A butterfly needing `Ψ[i] = psi^{bitrev(i)}`
//! multiplies its operand by `lo[e % B]` then `hi[e / B]` (`e = bitrev(i)`)
//! — two Shoup modmuls, no native reduction, and (for `N = 2^17`)
//! `1024 + 128` entries instead of 131072.

use crate::batch::DeviceBatch;
use gpu_sim::{Buf, Gpu};
use ntt_math::modops::pow_mod;
use ntt_math::shoup::precompute;

/// OT factor tables resident in GMEM, one set per prime.
#[derive(Debug, Clone, Copy)]
pub struct DeviceOt {
    /// Factorization base `B`.
    pub base: usize,
    /// Entries in the low-digit table per prime (`B`).
    pub lo_len: usize,
    /// Entries in the high-digit table per prime (`ceil(N/B)`).
    pub hi_len: usize,
    /// `np × lo_len` low factor values.
    pub lo_w: Buf,
    /// `np × lo_len` low factor companions.
    pub lo_c: Buf,
    /// `np × hi_len` high factor values.
    pub hi_w: Buf,
    /// `np × hi_len` high factor companions.
    pub hi_c: Buf,
}

impl DeviceOt {
    /// Build and upload the factor tables for every prime in the batch.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not a power of two ≥ 2, or if two levels do not
    /// suffice (`base² < N`).
    pub fn upload(gpu: &mut Gpu, batch: &DeviceBatch, base: usize) -> Self {
        let tables: Vec<&ntt_core::NttTable> = (0..batch.np()).map(|i| batch.table(i)).collect();
        Self::upload_tables(gpu, batch.n(), &tables, base)
    }

    /// Build and upload the factor tables from explicit per-prime twiddle
    /// tables (the plan-driven path used by `SimBackend`, which has no
    /// [`DeviceBatch`]).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not a power of two ≥ 2, or if two levels do not
    /// suffice (`base² < N`).
    pub fn upload_tables(
        gpu: &mut Gpu,
        n: usize,
        tables: &[&ntt_core::NttTable],
        base: usize,
    ) -> Self {
        assert!(base.is_power_of_two() && base >= 2, "invalid OT base");
        assert!(
            base * base >= n,
            "two-level OT requires base^2 >= N (base {base}, N {n})"
        );
        let lo_len = base.min(n);
        let hi_len = (n / base).max(1);
        let np = tables.len();
        let mut lo_w = Vec::with_capacity(np * lo_len);
        let mut lo_c = Vec::with_capacity(np * lo_len);
        let mut hi_w = Vec::with_capacity(np * hi_len);
        let mut hi_c = Vec::with_capacity(np * hi_len);
        for table in tables {
            let (p, psi) = (table.modulus(), table.psi());
            for d in 0..lo_len as u64 {
                let v = pow_mod(psi, d, p);
                lo_w.push(v);
                lo_c.push(precompute(v, p));
            }
            for d in 0..hi_len as u64 {
                let v = pow_mod(psi, d * base as u64, p);
                hi_w.push(v);
                hi_c.push(precompute(v, p));
            }
        }
        // Charge every table upload to the active stream: `alloc_from`
        // bypasses the PCIe bus model *and* the transfer ledger, which
        // made OT setup look free in the timeline (ROADMAP item n).
        let upload = |gpu: &mut Gpu, data: &[u64]| -> Buf {
            let buf = gpu.gmem.alloc(data.len());
            gpu.stream_upload(buf, 0, data);
            buf
        };
        Self {
            base,
            lo_len,
            hi_len,
            lo_w: upload(gpu, &lo_w),
            lo_c: upload(gpu, &lo_c),
            hi_w: upload(gpu, &hi_w),
            hi_c: upload(gpu, &hi_c),
        }
    }

    /// Total factor-table bytes across the batch (values + companions).
    pub fn table_bytes(&self, np: usize) -> usize {
        np * (self.lo_len + self.hi_len) * 16
    }

    /// Split a twiddle exponent into (lo index, hi index).
    #[inline]
    pub fn digits(&self, exponent: usize) -> (usize, usize) {
        (exponent % self.base, exponent / self.base)
    }

    /// GMEM word addresses of the factor pair for `prime` and `exponent`:
    /// `(lo_w, lo_c, hi_w, hi_c)`.
    #[inline]
    pub fn factor_addrs(&self, prime: usize, exponent: usize) -> (usize, usize, usize, usize) {
        let (d0, d1) = self.digits(exponent);
        (
            self.lo_w.word(prime * self.lo_len + d0),
            self.lo_c.word(prime * self.lo_len + d0),
            self.hi_w.word(prime * self.hi_len + d1),
            self.hi_c.word(prime * self.hi_len + d1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;
    use ntt_core::bitrev::bit_reverse;
    use ntt_math::shoup::mul_shoup;

    #[test]
    fn factors_reconstruct_every_twiddle() {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let batch = DeviceBatch::sequential(&mut gpu, 8, 2, 60).unwrap();
        let ot = DeviceOt::upload(&mut gpu, &batch, 32);
        for prime in 0..2 {
            let table = batch.table(prime);
            let p = table.modulus();
            for i in 1..256usize {
                let e = bit_reverse(i, 8);
                let (a0, a1, a2, a3) = ot.factor_addrs(prime, e);
                let (lw, lc) = (gpu.gmem.slice(ot.lo_w)[a0 - ot.lo_w.base()], {
                    let _ = a1;
                    gpu.gmem.slice(ot.lo_c)[a1 - ot.lo_c.base()]
                });
                let (hw, hc) = (
                    gpu.gmem.slice(ot.hi_w)[a2 - ot.hi_w.base()],
                    gpu.gmem.slice(ot.hi_c)[a3 - ot.hi_c.base()],
                );
                // Applying lo then hi to x equals multiplying by Ψ[i].
                let x = 0xABCDEFu64 % p;
                let step = mul_shoup(x, lw, lc, p);
                let got = mul_shoup(step, hw, hc, p);
                assert_eq!(got, table.forward(i).mul(x), "prime {prime} idx {i}");
            }
        }
    }

    #[test]
    fn matches_core_ot_table_costs() {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let batch = DeviceBatch::sequential(&mut gpu, 10, 1, 60).unwrap();
        let ot = DeviceOt::upload(&mut gpu, &batch, 64);
        let core_ot = ntt_core::OtTable::new(batch.table(0), 64);
        assert_eq!(ot.lo_len + ot.hi_len, core_ot.entry_count());
        assert_eq!(ot.table_bytes(1), core_ot.table_bytes());
    }

    #[test]
    fn paper_sizes_for_base_1024() {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let batch = DeviceBatch::sequential(&mut gpu, 14, 1, 60).unwrap();
        let ot = DeviceOt::upload(&mut gpu, &batch, 1024);
        assert_eq!(ot.lo_len, 1024);
        assert_eq!(ot.hi_len, (1 << 14) / 1024);
    }

    /// Regression for ROADMAP item n: the four factor-table uploads must
    /// cross the modeled PCIe bus (timeline transfers) and be counted in
    /// the `TransferStats` ledger, like every other host→device copy.
    #[test]
    fn table_uploads_charge_bus_and_ledger() {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let batch = DeviceBatch::sequential(&mut gpu, 8, 2, 60).unwrap();
        let t0 = gpu.timeline();
        let s0 = gpu.gmem.transfer_stats();
        let ot = DeviceOt::upload(&mut gpu, &batch, 32);
        let dt = gpu.timeline().since(&t0);
        let ds = gpu.gmem.transfer_stats().since(&s0);
        assert_eq!(dt.transfers, 4, "four factor tables cross the bus");
        assert_eq!(ds.uploads, 4, "four uploads in the ledger");
        // Each table holds np × len entries, and values + companions double it.
        let words = 2 * (batch.np() * (ot.lo_len + ot.hi_len)) as u64;
        assert_eq!(ds.upload_words, words, "every table word is counted");
        assert!(dt.serialized_s > 0.0, "bus time must be charged: {dt:?}");
    }

    #[test]
    #[should_panic(expected = "base^2 >= N")]
    fn rejects_undersized_base() {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let batch = DeviceBatch::sequential(&mut gpu, 12, 1, 60).unwrap();
        DeviceOt::upload(&mut gpu, &batch, 32);
    }
}
