//! Device-side layout of a batched NTT problem.
//!
//! A batch is `np` polynomials of degree `N`, one per RNS prime, stored
//! row-major in GMEM, plus the per-prime twiddle tables (values and Shoup
//! companions, bit-reversed order) — the precomputed data whose size
//! drives the paper's bandwidth analysis. Prime moduli travel as host
//! constants (CMEM in the paper's terms: broadcast, no DRAM traffic).
//!
//! Two allocation paths:
//!
//! * [`DeviceBatch::upload`] — raw GMEM buffers on a bare [`Gpu`]
//!   (self-contained micro-experiments and tests);
//! * [`DeviceBatch::upload_on`] / [`DeviceBatch::sequential_on`] — through
//!   the [`SimMemory`] **handle layer** ([`DeviceBuf`] handles + counted
//!   transfer ledger + stream-charged uploads), the same allocator the
//!   `SimBackend` residency layer uses. The figure experiments run on
//!   this path, so their setup traffic shows up in the same ledger and
//!   device timeline as everything else.

use crate::backend::SimMemory;
use gpu_sim::{Buf, Gpu};
use ntt_core::backend::{DeviceBuf, DeviceMemory};
use ntt_core::poly::RingError;
use ntt_core::NttTable;

/// A batched NTT problem resident in simulated GMEM.
#[derive(Debug)]
pub struct DeviceBatch {
    n: usize,
    log_n: u32,
    np: usize,
    moduli: Vec<u64>,
    /// Host copies of the tables (for verification and OT construction).
    tables: Vec<NttTable>,
    /// `np × n` data words (in-place transform target).
    pub data: Buf,
    /// `np × n` forward twiddle values, bit-reversed order.
    pub twiddles: Buf,
    /// `np × n` Shoup companions.
    pub companions: Buf,
    /// Handle-layer identities of `[data, twiddles, companions]` when the
    /// batch was allocated through a [`SimMemory`] (None on the raw path).
    handles: Option<[DeviceBuf; 3]>,
    /// RNS prime index of each data row (identity unless remapped with
    /// [`DeviceBatch::with_row_prime`]).
    row_prime: Vec<usize>,
    /// Pristine input copy (host side) for verification.
    input: Vec<Vec<u64>>,
}

/// Host-side staging for one batch: tables plus the flat upload images.
struct HostBatch {
    tables: Vec<NttTable>,
    primes: Vec<u64>,
    data: Vec<u64>,
    tw: Vec<u64>,
    twc: Vec<u64>,
}

fn build_host(log_n: u32, prime_bits: u32, rows: &[Vec<u64>]) -> Result<HostBatch, RingError> {
    let n = 1usize << log_n;
    let np = rows.len();
    assert!(np > 0, "batch needs at least one prime");
    let primes = ntt_math::ntt_primes(prime_bits, 2 * n as u64, np);
    let tables = primes
        .iter()
        .map(|&p| NttTable::new(n, p).map_err(RingError::from))
        .collect::<Result<Vec<_>, _>>()?;

    let mut data = Vec::with_capacity(np * n);
    let mut tw = Vec::with_capacity(np * n);
    let mut twc = Vec::with_capacity(np * n);
    for (row, table) in rows.iter().zip(&tables) {
        assert_eq!(row.len(), n, "row length must equal N");
        data.extend_from_slice(row);
        tw.extend_from_slice(table.forward_values());
        twc.extend_from_slice(table.forward_companions());
    }
    Ok(HostBatch {
        tables,
        primes,
        data,
        tw,
        twc,
    })
}

/// Deterministic pseudo-input rows
/// (`x_i = (i * 0x9E3779B97F4A7C15) mod p` per prime).
fn sequential_rows(n: usize, primes: &[u64]) -> Vec<Vec<u64>> {
    primes
        .iter()
        .map(|&p| {
            (0..n as u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % p)
                .collect()
        })
        .collect()
}

impl DeviceBatch {
    /// Upload a batch with caller-provided per-prime input rows.
    ///
    /// # Errors
    ///
    /// Propagates table construction failures ([`RingError`]).
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != np` or any row length differs from `N`.
    pub fn upload(
        gpu: &mut Gpu,
        log_n: u32,
        prime_bits: u32,
        rows: Vec<Vec<u64>>,
    ) -> Result<Self, RingError> {
        let host = build_host(log_n, prime_bits, &rows)?;
        let data = gpu.gmem.alloc_from(&host.data);
        let twiddles = gpu.gmem.alloc_from(&host.tw);
        let companions = gpu.gmem.alloc_from(&host.twc);
        Ok(Self {
            n: 1 << log_n,
            log_n,
            np: rows.len(),
            moduli: host.primes,
            tables: host.tables,
            data,
            twiddles,
            companions,
            handles: None,
            row_prime: (0..rows.len()).collect(),
            input: rows,
        })
    }

    /// Upload a batch through the [`SimMemory`] handle layer: buffers are
    /// allocated as [`DeviceBuf`] handles and staged with counted,
    /// stream-charged transfers — the same path `SimBackend`-resident
    /// polynomials take. The raw GMEM views stay available in
    /// [`DeviceBatch::data`] and friends for driving kernels directly.
    ///
    /// # Errors
    ///
    /// Propagates table construction failures ([`RingError`]).
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != np` or any row length differs from `N`.
    pub fn upload_on(
        mem: &mut SimMemory,
        log_n: u32,
        prime_bits: u32,
        rows: Vec<Vec<u64>>,
    ) -> Result<Self, RingError> {
        let host = build_host(log_n, prime_bits, &rows)?;
        let mut stage = |image: &[u64]| -> (DeviceBuf, Buf) {
            let h = mem.alloc(image.len());
            mem.upload(h, image);
            let raw = mem.raw_buf(h);
            (h, raw)
        };
        let (dh, data) = stage(&host.data);
        let (th, twiddles) = stage(&host.tw);
        let (ch, companions) = stage(&host.twc);
        Ok(Self {
            n: 1 << log_n,
            log_n,
            np: rows.len(),
            moduli: host.primes,
            tables: host.tables,
            data,
            twiddles,
            companions,
            handles: Some([dh, th, ch]),
            row_prime: (0..rows.len()).collect(),
            input: rows,
        })
    }

    /// Override the row→prime mapping (e.g. a stacked buffer-of-digits
    /// layout where row `r` carries prime `r % level`). Kernels draw their
    /// modulus and twiddle slice from this map instead of assuming row
    /// `i` ↔ prime `i`.
    ///
    /// # Panics
    ///
    /// Panics if the map's length differs from `np` or any entry is out of
    /// range.
    pub fn with_row_prime(mut self, map: Vec<usize>) -> Self {
        assert_eq!(map.len(), self.np, "row map must cover every row");
        assert!(map.iter().all(|&p| p < self.np), "prime index out of range");
        self.row_prime = map;
        self
    }

    /// Convenience batch with deterministic pseudo-input
    /// (`x_i = (i * 0x9E3779B97F4A7C15) mod p` per prime).
    ///
    /// # Errors
    ///
    /// Propagates table construction failures.
    pub fn sequential(
        gpu: &mut Gpu,
        log_n: u32,
        np: usize,
        prime_bits: u32,
    ) -> Result<Self, RingError> {
        let n = 1usize << log_n;
        let primes = ntt_math::ntt_primes(prime_bits, 2 * n as u64, np);
        Self::upload(gpu, log_n, prime_bits, sequential_rows(n, &primes))
    }

    /// [`DeviceBatch::sequential`] through the handle layer (see
    /// [`DeviceBatch::upload_on`]).
    ///
    /// # Errors
    ///
    /// Propagates table construction failures.
    pub fn sequential_on(
        mem: &mut SimMemory,
        log_n: u32,
        np: usize,
        prime_bits: u32,
    ) -> Result<Self, RingError> {
        let n = 1usize << log_n;
        let primes = ntt_math::ntt_primes(prime_bits, 2 * n as u64, np);
        Self::upload_on(mem, log_n, prime_bits, sequential_rows(n, &primes))
    }

    /// The handle-layer identities of `[data, twiddles, companions]`
    /// (`None` when the batch was allocated on the raw GMEM path).
    pub fn handles(&self) -> Option<&[DeviceBuf; 3]> {
        self.handles.as_ref()
    }

    /// Transform size `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// `log2 N`.
    #[inline]
    pub fn log_n(&self) -> u32 {
        self.log_n
    }

    /// Batch size `np`.
    #[inline]
    pub fn np(&self) -> usize {
        self.np
    }

    /// The prime moduli (host constants; CMEM-like broadcast access).
    #[inline]
    pub fn moduli(&self) -> &[u64] {
        &self.moduli
    }

    /// Host-side table for prime `i` (verification, OT table building).
    #[inline]
    pub fn table(&self, i: usize) -> &NttTable {
        &self.tables[i]
    }

    /// RNS prime index of each data row.
    #[inline]
    pub fn row_prime(&self) -> &[usize] {
        &self.row_prime
    }

    /// The pristine input rows.
    #[inline]
    pub fn input(&self) -> &[Vec<u64>] {
        &self.input
    }

    /// Reset device data to the pristine input (transforms run in place).
    pub fn reset_data(&self, gpu: &mut Gpu) {
        for (i, row) in self.input.iter().enumerate() {
            gpu.gmem.write(self.data, i * self.n, row);
        }
    }

    /// Download the (transformed) data rows from the device.
    pub fn download(&self, gpu: &Gpu) -> Vec<Vec<u64>> {
        (0..self.np)
            .map(|i| gpu.gmem.slice(self.data.sub(i * self.n, self.n)).to_vec())
            .collect()
    }

    /// The expected forward-NTT output (scalar reference, bit-reversed
    /// order), computed on the host.
    pub fn expected_ntt(&self) -> Vec<Vec<u64>> {
        self.input
            .iter()
            .zip(&self.tables)
            .map(|(row, table)| {
                let mut a = row.clone();
                ntt_core::ct::ntt(&mut a, table);
                a
            })
            .collect()
    }

    /// Per-prime twiddle-table bytes (values + companions) on the device.
    pub fn table_bytes(&self) -> usize {
        self.np * self.n * 16
    }

    /// Data bytes (one batch of polynomials).
    pub fn data_bytes(&self) -> usize {
        self.np * self.n * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    #[test]
    fn upload_download_roundtrip() {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let b = DeviceBatch::sequential(&mut gpu, 6, 3, 59).unwrap();
        assert_eq!(b.n(), 64);
        assert_eq!(b.np(), 3);
        let rows = b.download(&gpu);
        assert_eq!(rows.len(), 3);
        assert_eq!(&rows[0], &b.input()[0]);
        // Moduli are distinct NTT-friendly primes.
        for &p in b.moduli() {
            assert!(ntt_math::is_prime(p));
            assert_eq!(p % 128, 1);
        }
    }

    #[test]
    fn reset_restores_input() {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let b = DeviceBatch::sequential(&mut gpu, 5, 2, 60).unwrap();
        // Clobber device data, then reset.
        gpu.gmem.write(b.data, 0, &vec![7u64; 32]);
        b.reset_data(&mut gpu);
        assert_eq!(b.download(&gpu), b.input());
    }

    #[test]
    fn expected_ntt_matches_reference_shape() {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let b = DeviceBatch::sequential(&mut gpu, 4, 2, 60).unwrap();
        let exp = b.expected_ntt();
        assert_eq!(exp.len(), 2);
        assert_eq!(exp[0].len(), 16);
        // Forward NTT is invertible: applying intt recovers the input.
        let mut back = exp[1].clone();
        ntt_core::ct::intt(&mut back, b.table(1));
        assert_eq!(back, b.input()[1]);
    }

    #[test]
    fn handle_layer_batch_matches_raw_path_and_counts_transfers() {
        let mut mem = SimMemory::new(GpuConfig::titan_v());
        let b = DeviceBatch::sequential_on(&mut mem, 6, 3, 59).unwrap();
        let handles = *b.handles().expect("handle-layer batch carries ids");
        assert_eq!(handles[0].len(), 3 * 64);
        // The three staging uploads land in the counted ledger…
        let stats = mem.stats();
        assert_eq!(stats.uploads, 3);
        assert_eq!(stats.allocs, 3);
        // …and in the modeled device timeline (stream-charged).
        assert_eq!(mem.gpu().timeline().transfers, 3);
        // Raw views still drive kernels / reads like the raw path.
        assert_eq!(mem.gpu().gmem.slice(b.data.sub(0, 64)), &b.input()[0][..]);
        // Same bits as the raw-path batch.
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let raw = DeviceBatch::sequential(&mut gpu, 6, 3, 59).unwrap();
        assert_eq!(mem.gpu().gmem.slice(b.data), gpu.gmem.slice(raw.data));
    }

    #[test]
    fn byte_accounting() {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let b = DeviceBatch::sequential(&mut gpu, 10, 4, 60).unwrap();
        assert_eq!(b.data_bytes(), 4 * 1024 * 8);
        assert_eq!(b.table_bytes(), 4 * 1024 * 16);
    }
}
