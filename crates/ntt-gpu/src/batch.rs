//! Device-side layout of a batched NTT problem.
//!
//! A batch is `np` polynomials of degree `N`, one per RNS prime, stored
//! row-major in GMEM, plus the per-prime twiddle tables (values and Shoup
//! companions, bit-reversed order) — the precomputed data whose size
//! drives the paper's bandwidth analysis. Prime moduli travel as host
//! constants (CMEM in the paper's terms: broadcast, no DRAM traffic).

use gpu_sim::{Buf, Gpu};
use ntt_core::poly::RingError;
use ntt_core::NttTable;

/// A batched NTT problem resident in simulated GMEM.
#[derive(Debug)]
pub struct DeviceBatch {
    n: usize,
    log_n: u32,
    np: usize,
    moduli: Vec<u64>,
    /// Host copies of the tables (for verification and OT construction).
    tables: Vec<NttTable>,
    /// `np × n` data words (in-place transform target).
    pub data: Buf,
    /// `np × n` forward twiddle values, bit-reversed order.
    pub twiddles: Buf,
    /// `np × n` Shoup companions.
    pub companions: Buf,
    /// Pristine input copy (host side) for verification.
    input: Vec<Vec<u64>>,
}

impl DeviceBatch {
    /// Upload a batch with caller-provided per-prime input rows.
    ///
    /// # Errors
    ///
    /// Propagates table construction failures ([`RingError`]).
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != np` or any row length differs from `N`.
    pub fn upload(
        gpu: &mut Gpu,
        log_n: u32,
        prime_bits: u32,
        rows: Vec<Vec<u64>>,
    ) -> Result<Self, RingError> {
        let n = 1usize << log_n;
        let np = rows.len();
        assert!(np > 0, "batch needs at least one prime");
        let primes = ntt_math::ntt_primes(prime_bits, 2 * n as u64, np);
        let tables = primes
            .iter()
            .map(|&p| NttTable::new(n, p).map_err(RingError::from))
            .collect::<Result<Vec<_>, _>>()?;

        let mut data_host = Vec::with_capacity(np * n);
        let mut tw_host = Vec::with_capacity(np * n);
        let mut twc_host = Vec::with_capacity(np * n);
        for (row, table) in rows.iter().zip(&tables) {
            assert_eq!(row.len(), n, "row length must equal N");
            data_host.extend_from_slice(row);
            tw_host.extend_from_slice(table.forward_values());
            twc_host.extend_from_slice(table.forward_companions());
        }
        let data = gpu.gmem.alloc_from(&data_host);
        let twiddles = gpu.gmem.alloc_from(&tw_host);
        let companions = gpu.gmem.alloc_from(&twc_host);
        Ok(Self {
            n,
            log_n,
            np,
            moduli: primes,
            tables,
            data,
            twiddles,
            companions,
            input: rows,
        })
    }

    /// Convenience batch with deterministic pseudo-input
    /// (`x_i = (i * 0x9E3779B97F4A7C15) mod p` per prime).
    ///
    /// # Errors
    ///
    /// Propagates table construction failures.
    pub fn sequential(
        gpu: &mut Gpu,
        log_n: u32,
        np: usize,
        prime_bits: u32,
    ) -> Result<Self, RingError> {
        let n = 1usize << log_n;
        let primes = ntt_math::ntt_primes(prime_bits, 2 * n as u64, np);
        let rows = primes
            .iter()
            .map(|&p| {
                (0..n as u64)
                    .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % p)
                    .collect()
            })
            .collect();
        Self::upload(gpu, log_n, prime_bits, rows)
    }

    /// Transform size `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// `log2 N`.
    #[inline]
    pub fn log_n(&self) -> u32 {
        self.log_n
    }

    /// Batch size `np`.
    #[inline]
    pub fn np(&self) -> usize {
        self.np
    }

    /// The prime moduli (host constants; CMEM-like broadcast access).
    #[inline]
    pub fn moduli(&self) -> &[u64] {
        &self.moduli
    }

    /// Host-side table for prime `i` (verification, OT table building).
    #[inline]
    pub fn table(&self, i: usize) -> &NttTable {
        &self.tables[i]
    }

    /// The pristine input rows.
    #[inline]
    pub fn input(&self) -> &[Vec<u64>] {
        &self.input
    }

    /// Reset device data to the pristine input (transforms run in place).
    pub fn reset_data(&self, gpu: &mut Gpu) {
        for (i, row) in self.input.iter().enumerate() {
            gpu.gmem.write(self.data, i * self.n, row);
        }
    }

    /// Download the (transformed) data rows from the device.
    pub fn download(&self, gpu: &Gpu) -> Vec<Vec<u64>> {
        (0..self.np)
            .map(|i| gpu.gmem.slice(self.data.sub(i * self.n, self.n)).to_vec())
            .collect()
    }

    /// The expected forward-NTT output (scalar reference, bit-reversed
    /// order), computed on the host.
    pub fn expected_ntt(&self) -> Vec<Vec<u64>> {
        self.input
            .iter()
            .zip(&self.tables)
            .map(|(row, table)| {
                let mut a = row.clone();
                ntt_core::ct::ntt(&mut a, table);
                a
            })
            .collect()
    }

    /// Per-prime twiddle-table bytes (values + companions) on the device.
    pub fn table_bytes(&self) -> usize {
        self.np * self.n * 16
    }

    /// Data bytes (one batch of polynomials).
    pub fn data_bytes(&self) -> usize {
        self.np * self.n * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    #[test]
    fn upload_download_roundtrip() {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let b = DeviceBatch::sequential(&mut gpu, 6, 3, 59).unwrap();
        assert_eq!(b.n(), 64);
        assert_eq!(b.np(), 3);
        let rows = b.download(&gpu);
        assert_eq!(rows.len(), 3);
        assert_eq!(&rows[0], &b.input()[0]);
        // Moduli are distinct NTT-friendly primes.
        for &p in b.moduli() {
            assert!(ntt_math::is_prime(p));
            assert_eq!(p % 128, 1);
        }
    }

    #[test]
    fn reset_restores_input() {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let b = DeviceBatch::sequential(&mut gpu, 5, 2, 60).unwrap();
        // Clobber device data, then reset.
        gpu.gmem.write(b.data, 0, &vec![7u64; 32]);
        b.reset_data(&mut gpu);
        assert_eq!(b.download(&gpu), b.input());
    }

    #[test]
    fn expected_ntt_matches_reference_shape() {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let b = DeviceBatch::sequential(&mut gpu, 4, 2, 60).unwrap();
        let exp = b.expected_ntt();
        assert_eq!(exp.len(), 2);
        assert_eq!(exp[0].len(), 16);
        // Forward NTT is invertible: applying intt recovers the input.
        let mut back = exp[1].clone();
        ntt_core::ct::intt(&mut back, b.table(1));
        assert_eq!(back, b.input()[1]);
    }

    #[test]
    fn byte_accounting() {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let b = DeviceBatch::sequential(&mut gpu, 10, 4, 60).unwrap();
        assert_eq!(b.data_bytes(), 4 * 1024 * 8);
        assert_eq!(b.table_bytes(), 4 * 1024 * 16);
    }
}
