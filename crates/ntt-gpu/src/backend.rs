//! `SimBackend`: the simulated-GPU implementation of
//! [`ntt_core::backend::NttBackend`].
//!
//! Every trait call executes through the warp kernels of [`crate::radix2`]
//! on the `gpu-sim` substrate — data really moves through simulated GMEM,
//! twiddles stream through the read-only cache path as per-stage
//! `(value, companion)` slice-pairs, and the launch trace keeps the
//! paper's traffic accounting. Outputs are **bit-identical** to
//! [`ntt_core::backend::CpuBackend`] (pinned by
//! `tests/backend_conformance.rs`): both substrates produce canonical
//! residues of the same exact transforms.
//!
//! Device state is cached between calls: twiddle tables upload once per
//! plan (re-uploaded only when the plan changes) and data buffers are
//! reused when shapes repeat, so an [`ntt_core::backend::Evaluator`]
//! holding a `SimBackend` amortizes uploads the way the paper's pipeline
//! amortizes host↔device transfers over the `np` batch.
//!
//! # Example
//!
//! ```
//! use ntt_core::backend::Evaluator;
//! use ntt_core::{RnsPoly, RnsRing};
//! use ntt_gpu::SimBackend;
//!
//! let ring = RnsRing::new(16, ntt_math::ntt_primes(59, 32, 2))?;
//! // The one-line substrate swap: Evaluator::cpu(&ring) vs this.
//! let mut ev = Evaluator::with_backend(&ring, Box::new(SimBackend::titan_v()));
//! let a = RnsPoly::from_i64_coeffs(&ring, &[1, 1]);
//! let c = ev.multiply(&a, &a); // runs on the simulated warp kernels
//! assert_eq!(c.coefficient_centered(&ring, 1), Some(2));
//! # Ok::<(), ntt_core::RingError>(())
//! ```

use crate::radix2::{launch_forward, launch_inverse, ModMul};
use gpu_sim::{Buf, Gpu, GpuConfig, LaunchConfig, OpClass, WarpCtx, WarpKernel};
use ntt_core::backend::{LimbBatch, NttBackend, RingPlan};
use ntt_math::modops::mul_mod;

/// Threads per block for the element-wise kernels.
const THREADS: usize = 256;

/// Device-resident twiddle tables for one plan.
struct DevTables {
    n: usize,
    primes: Vec<u64>,
    tw: Buf,
    twc: Buf,
    itw: Buf,
    itwc: Buf,
    /// Per-prime `(N^{-1}, companion, p)` for the inverse scaling pass.
    n_inv: Vec<(u64, u64, u64)>,
}

/// A reusable device data buffer (grown monotonically; simulated GMEM has
/// no free, so outgrown buffers are simply abandoned).
#[derive(Default, Clone, Copy)]
struct DevData {
    buf: Option<Buf>,
}

impl DevData {
    fn ensure(&mut self, gpu: &mut Gpu, words: usize) -> Buf {
        match self.buf {
            Some(b) if b.len() >= words => b,
            _ => {
                let b = gpu.gmem.alloc(words);
                self.buf = Some(b);
                b
            }
        }
    }
}

/// Element-wise modular product `acc[i] <- acc[i] * rhs[i]` over a batch
/// of limb rows, one thread per element (the paper's pointwise stage
/// between forward and inverse transforms).
struct PointwiseKernel<'a> {
    acc: Buf,
    rhs: Buf,
    n: usize,
    rows: usize,
    row_prime: &'a [usize],
    moduli: &'a [u64],
}

impl WarpKernel for PointwiseKernel<'_> {
    fn phases(&self) -> usize {
        1
    }

    fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
        let total = self.rows * self.n;
        let lanes = ctx.lanes();
        let mut addr_a = vec![None; lanes];
        let mut addr_b = vec![None; lanes];
        let mut prime = vec![0usize; lanes];
        let mut active = 0u64;
        for l in 0..lanes {
            let gt = ctx.global_thread(l);
            if gt >= total {
                continue;
            }
            active += 1;
            prime[l] = self.row_prime[gt / self.n];
            addr_a[l] = Some(self.acc.word(gt));
            addr_b[l] = Some(self.rhs.word(gt));
        }
        if active == 0 {
            return;
        }
        let (a, b) = ctx.gmem_load2(&addr_a, &addr_b);
        let writes: Vec<Option<(usize, u64)>> = (0..lanes)
            .map(|l| {
                let (Some(av), Some(bv)) = (a[l], b[l]) else {
                    return None;
                };
                let p = self.moduli[prime[l]];
                Some((addr_a[l].expect("lane active"), mul_mod(av, bv, p)))
            })
            .collect();
        ctx.count_op(OpClass::NativeModMul, active);
        ctx.gmem_store(&writes);
    }
}

/// The simulated-GPU backend: a [`Gpu`] plus cached device tables and
/// data buffers.
pub struct SimBackend {
    gpu: Gpu,
    tables: Option<DevTables>,
    data: DevData,
    scratch: DevData,
}

impl Default for SimBackend {
    fn default() -> Self {
        Self::titan_v()
    }
}

impl SimBackend {
    /// Backend over an explicit device model.
    pub fn new(config: GpuConfig) -> Self {
        Self {
            gpu: Gpu::new(config),
            tables: None,
            data: DevData::default(),
            scratch: DevData::default(),
        }
    }

    /// Backend over the paper's Titan-V device model.
    pub fn titan_v() -> Self {
        Self::new(GpuConfig::titan_v())
    }

    /// The underlying simulated device (launch trace, traffic counters).
    #[inline]
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// Clear the device launch trace (keeps memory and cached tables).
    pub fn reset_trace(&mut self) {
        self.gpu.reset_trace();
    }

    /// Upload (or reuse) the plan's twiddle tables. Tables are keyed on
    /// `(N, primes)`; a plan over the same ring never re-uploads.
    fn ensure_tables(&mut self, plan: &RingPlan) {
        let n = plan.degree();
        let primes = plan.ring().basis().primes();
        if let Some(t) = &self.tables {
            if t.n == n && t.primes == primes {
                return;
            }
        }
        let np = plan.np();
        let mut tw = Vec::with_capacity(np * n);
        let mut twc = Vec::with_capacity(np * n);
        let mut itw = Vec::with_capacity(np * n);
        let mut itwc = Vec::with_capacity(np * n);
        let mut n_inv = Vec::with_capacity(np);
        for i in 0..np {
            let t = plan.table(i);
            tw.extend_from_slice(t.forward_values());
            twc.extend_from_slice(t.forward_companions());
            itw.extend_from_slice(t.inverse_values());
            itwc.extend_from_slice(t.inverse_companions());
            n_inv.push((t.n_inv().value(), t.n_inv().companion(), t.modulus()));
        }
        self.tables = Some(DevTables {
            n,
            primes: primes.to_vec(),
            tw: self.gpu.gmem.alloc_from(&tw),
            twc: self.gpu.gmem.alloc_from(&twc),
            itw: self.gpu.gmem.alloc_from(&itw),
            itwc: self.gpu.gmem.alloc_from(&itwc),
            n_inv,
        });
    }

    /// Upload the batch into the primary device buffer; returns the buffer
    /// and the per-row prime mapping.
    fn upload(&mut self, host: &[u64], n: usize, level: usize) -> (Buf, Vec<usize>) {
        let buf = self.data.ensure(&mut self.gpu, host.len());
        self.gpu.gmem.write(buf, 0, host);
        let row_prime = (0..host.len() / n).map(|r| r % level).collect();
        (buf, row_prime)
    }

    fn download(&self, buf: Buf, out: &mut [u64]) {
        out.copy_from_slice(self.gpu.gmem.slice(buf.sub(0, out.len())));
    }
}

/// Launch the element-wise product kernel (free function so callers can
/// hold the cached tables borrowed while the device is borrowed mutably).
fn launch_pointwise(
    gpu: &mut Gpu,
    moduli: &[u64],
    acc: Buf,
    rhs: Buf,
    n: usize,
    row_prime: &[usize],
) {
    let kernel = PointwiseKernel {
        acc,
        rhs,
        n,
        rows: row_prime.len(),
        row_prime,
        moduli,
    };
    let blocks = (row_prime.len() * n).div_ceil(THREADS);
    let cfg = LaunchConfig::new("sim-pointwise", blocks, THREADS).regs_per_thread(40);
    gpu.launch(&kernel, &cfg);
}

impl NttBackend for SimBackend {
    fn name(&self) -> &'static str {
        "gpu-sim"
    }

    fn forward_batch(&mut self, plan: &RingPlan, mut batch: LimbBatch<'_>) {
        self.ensure_tables(plan);
        let (n, level) = (batch.n(), batch.level());
        let (buf, row_prime) = self.upload(batch.as_slice(), n, level);
        let t = self.tables.as_ref().expect("tables uploaded");
        launch_forward(
            &mut self.gpu,
            buf,
            t.tw,
            t.twc,
            n,
            &row_prime,
            &t.primes,
            ModMul::Shoup,
        );
        self.download(buf, batch.data());
    }

    fn inverse_batch(&mut self, plan: &RingPlan, mut batch: LimbBatch<'_>) {
        self.ensure_tables(plan);
        let (n, level) = (batch.n(), batch.level());
        let (buf, row_prime) = self.upload(batch.as_slice(), n, level);
        let t = self.tables.as_ref().expect("tables uploaded");
        launch_inverse(
            &mut self.gpu,
            buf,
            t.itw,
            t.itwc,
            n,
            &row_prime,
            &t.primes,
            &t.n_inv,
        );
        self.download(buf, batch.data());
    }

    fn pointwise_batch(&mut self, plan: &RingPlan, mut acc: LimbBatch<'_>, rhs: &[u64]) {
        assert_eq!(acc.as_slice().len(), rhs.len(), "operand shape mismatch");
        self.ensure_tables(plan);
        let (n, level) = (acc.n(), acc.level());
        let (abuf, row_prime) = self.upload(acc.as_slice(), n, level);
        let bbuf = self.scratch.ensure(&mut self.gpu, rhs.len());
        self.gpu.gmem.write(bbuf, 0, rhs);
        let t = self.tables.as_ref().expect("tables uploaded");
        launch_pointwise(&mut self.gpu, &t.primes, abuf, bbuf, n, &row_prime);
        self.download(abuf, acc.data());
    }

    fn multiply_batch(&mut self, plan: &RingPlan, a: &[u64], b: &[u64], mut out: LimbBatch<'_>) {
        assert_eq!(a.len(), out.as_slice().len(), "operand shape mismatch");
        assert_eq!(b.len(), out.as_slice().len(), "operand shape mismatch");
        self.ensure_tables(plan);
        let (n, level) = (out.n(), out.level());
        let (abuf, row_prime) = self.upload(a, n, level);
        let bbuf = self.scratch.ensure(&mut self.gpu, b.len());
        self.gpu.gmem.write(bbuf, 0, b);
        let t = self.tables.as_ref().expect("tables uploaded");
        let (tw, twc, itw, itwc) = (t.tw, t.twc, t.itw, t.itwc);
        // The classic device pipeline: NTT(a), NTT(b), pointwise, iNTT —
        // four launch groups over one resident batch.
        launch_forward(
            &mut self.gpu,
            abuf,
            tw,
            twc,
            n,
            &row_prime,
            &t.primes,
            ModMul::Shoup,
        );
        launch_forward(
            &mut self.gpu,
            bbuf,
            tw,
            twc,
            n,
            &row_prime,
            &t.primes,
            ModMul::Shoup,
        );
        launch_pointwise(&mut self.gpu, &t.primes, abuf, bbuf, n, &row_prime);
        launch_inverse(
            &mut self.gpu,
            abuf,
            itw,
            itwc,
            n,
            &row_prime,
            &t.primes,
            &t.n_inv,
        );
        self.download(abuf, out.data());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt_core::backend::{CpuBackend, Evaluator};
    use ntt_core::{RnsPoly, RnsRing};

    fn ring(n: usize, np: usize) -> RnsRing {
        RnsRing::new(n, ntt_math::ntt_primes(59, 2 * n as u64, np)).unwrap()
    }

    fn sample(ring: &RnsRing, seed: i64) -> RnsPoly {
        let coeffs: Vec<i64> = (0..ring.degree() as i64)
            .map(|i| (seed.wrapping_mul(i + 3) % 97) - 48)
            .collect();
        RnsPoly::from_i64_coeffs(ring, &coeffs)
    }

    #[test]
    fn sim_matches_cpu_on_every_trait_op() {
        let ring = ring(32, 3);
        let plan = RingPlan::new(&ring);
        let a = sample(&ring, 5);
        let b = sample(&ring, 11);

        let mut cpu = CpuBackend::default();
        let mut sim = SimBackend::titan_v();

        // forward
        let (mut fc, mut fs) = (a.clone(), a.clone());
        cpu.forward_batch(&plan, LimbBatch::from_poly(&mut fc));
        sim.forward_batch(&plan, LimbBatch::from_poly(&mut fs));
        assert_eq!(fc.flat(), fs.flat(), "forward");

        // pointwise on the transformed rows
        let (mut pc, mut ps) = (fc.clone(), fs.clone());
        cpu.pointwise_batch(&plan, LimbBatch::from_poly(&mut pc), fc.flat());
        sim.pointwise_batch(&plan, LimbBatch::from_poly(&mut ps), fs.flat());
        assert_eq!(pc.flat(), ps.flat(), "pointwise");

        // inverse
        cpu.inverse_batch(&plan, LimbBatch::from_poly(&mut pc));
        sim.inverse_batch(&plan, LimbBatch::from_poly(&mut ps));
        assert_eq!(pc.flat(), ps.flat(), "inverse");

        // fused multiply
        let (mut mc, mut ms) = (RnsPoly::zero(&ring), RnsPoly::zero(&ring));
        cpu.multiply_batch(&plan, a.flat(), b.flat(), LimbBatch::from_poly(&mut mc));
        sim.multiply_batch(&plan, a.flat(), b.flat(), LimbBatch::from_poly(&mut ms));
        assert_eq!(mc.flat(), ms.flat(), "multiply");
    }

    #[test]
    fn sim_evaluator_multiplies_correctly() {
        let ring = ring(16, 2);
        let mut ev = Evaluator::with_backend(&ring, Box::new(SimBackend::titan_v()));
        assert_eq!(ev.backend_name(), "gpu-sim");
        // (1 + 2x)(3 + x) = 3 + 7x + 2x^2
        let a = RnsPoly::from_i64_coeffs(&ring, &[1, 2]);
        let b = RnsPoly::from_i64_coeffs(&ring, &[3, 1]);
        let c = ev.multiply(&a, &b);
        assert_eq!(c.coefficient_centered(&ring, 0), Some(3));
        assert_eq!(c.coefficient_centered(&ring, 1), Some(7));
        assert_eq!(c.coefficient_centered(&ring, 2), Some(2));
    }

    #[test]
    fn stacked_digit_batch_matches_cpu() {
        // The key-switch shape: 2 polynomials of `level` limbs stacked in
        // one buffer — prime mapping r % level must hold on both backends.
        let ring = ring(16, 3);
        let plan = RingPlan::new(&ring);
        let x = sample(&ring, 7);
        let y = sample(&ring, 13);
        let mut host: Vec<u64> = [x.flat(), y.flat()].concat();
        let mut host_sim = host.clone();
        let mut cpu = CpuBackend::default();
        let mut sim = SimBackend::titan_v();
        cpu.forward_batch(&plan, LimbBatch::new(&mut host, 16, 3));
        sim.forward_batch(&plan, LimbBatch::new(&mut host_sim, 16, 3));
        assert_eq!(host, host_sim);
    }

    #[test]
    fn tables_upload_once_per_plan() {
        let ring = ring(16, 2);
        let plan = RingPlan::new(&ring);
        let mut sim = SimBackend::titan_v();
        let mut x = sample(&ring, 3);
        sim.forward_batch(&plan, LimbBatch::from_poly(&mut x));
        let after_first = sim.gpu().gmem.allocated_words();
        sim.inverse_batch(&plan, LimbBatch::from_poly(&mut x));
        sim.forward_batch(&plan, LimbBatch::from_poly(&mut x));
        assert_eq!(
            sim.gpu().gmem.allocated_words(),
            after_first,
            "repeat calls must reuse device tables and data buffers"
        );
    }
}
