//! `SimBackend`: the simulated-GPU implementation of
//! [`ntt_core::backend::NttBackend`].
//!
//! Every trait call executes through the warp kernels on the `gpu-sim`
//! substrate — data really moves through simulated GMEM, twiddles stream
//! through the read-only cache path as per-stage `(value, companion)`
//! slice-pairs, and the launch trace keeps the paper's traffic accounting.
//! Outputs are **bit-identical** to [`ntt_core::backend::CpuBackend`]
//! (pinned by `tests/backend_conformance.rs` and `tests/residency.rs`).
//!
//! Three layers of device state:
//!
//! * **Tables** upload once per plan (re-uploaded only when the plan
//!   changes) and are shared by every fork of the backend.
//! * **Host-batch staging** ([`NttBackend::forward_batch`] and friends)
//!   reuses cached device buffers, but still pays one upload and one
//!   download per call — both charged to the [`gpu_sim::Gmem`] transfer
//!   ledger, which is exactly the per-call round-trip the residency layer
//!   exists to remove.
//! * **Device-resident execution** (the `dev_*` trait ops over
//!   [`DeviceBuf`] handles) runs whole pipelines on buffers that live in
//!   simulated GMEM: forward/inverse NTTs, element-wise ring ops,
//!   rescaling and gadget digit decomposition, with **zero** host↔device
//!   transfers.
//!
//! Forward transforms are routed per shape: large batches go through the
//! two-kernel SMEM implementation (+OT) the paper's Table II favors or
//! the three-kernel hierarchical 4-step plan ([`crate::hier`]) at
//! bootstrapping scale, with the winner chosen like `best_split` — by the
//! minimum *modeled* time over the Fig. 12(a) candidates plus the
//! near-square hierarchical column counts, measured once per `N` on a
//! scratch device and cached (deterministic, so plans are reproducible).
//! Small shapes keep the radix-2 stage kernels. Set
//! `NTT_WARP_SIM_FORWARD=radix2` (or `smem`, or `hier`) to pin one
//! implementation, and `NTT_WARP_SPLIT=AxB` to pin the hierarchical
//! split itself; swept hierarchical winners persist in the per-host
//! calibration file (`ntt_core::calibration`).
//!
//! # Fallible surface and fault injection
//!
//! The `try_*` overrides of the [`NttBackend`] / [`DeviceMemory`] hot ops
//! return a classified [`BackendError`] instead of panicking. They are
//! **gate-then-delegate**: each draws the device's armed
//! [`gpu_sim::FaultPlan`] (and validates operand handles) *before* any
//! data moves, then runs the unchanged infallible body — so an `Err`
//! always leaves host and device state untouched and the identical call
//! can be retried. The infallible entry points never consult the plan,
//! which keeps calibration sweeps and the figure harness fault-free even
//! when `NTT_WARP_FAULTS` is set (the env plan is armed in
//! [`SimBackend::new`], not in [`SimMemory::new`], for the same reason).
//!
//! # Panic audit
//!
//! The panic sites that remain in this crate after the fallible surface
//! was introduced are *invariant assertions*, not recoverable device
//! conditions:
//!
//! * `resolve`/`root_base`'s "freed or foreign DeviceBuf" — a caller
//!   using a handle after `free` or against the wrong memory. The
//!   fallible surface pre-validates handles (`is_live`) and reports
//!   [`BackendError::Fatal`] instead; reaching the panic means an
//!   *infallible* caller broke the handle contract.
//! * "tables uploaded" — every trait op calls `ensure_tables` before the
//!   kernel helpers run, so an absent table is an internal sequencing
//!   bug, unreachable through the trait.
//! * "distinct primes are coprime" (`dev_rescale`) — an RNS basis with a
//!   repeated prime can't be constructed (`RnsRing::new` rejects it).
//! * Shape `assert!`s on trait entry (`dev_decompose`, `pointwise`) —
//!   caller-contract violations, mirrored from the documented panics of
//!   the `ntt-core` trait defaults.
//! * Kernel-lane `expect`s ("rhs loaded", "lane active") — a warp lane
//!   reading a value its own address computation requested; failure is a
//!   kernel bug, independent of any device state a caller controls.
//!
//! # Example
//!
//! ```
//! use ntt_core::backend::Evaluator;
//! use ntt_core::{RnsPoly, RnsRing};
//! use ntt_gpu::SimBackend;
//!
//! let ring = RnsRing::new(16, ntt_math::ntt_primes(59, 32, 2))?;
//! // The one-line substrate swap: Evaluator::cpu(&ring) vs this.
//! let mut ev = Evaluator::with_backend(&ring, Box::new(SimBackend::titan_v()));
//! let mut a = RnsPoly::from_i64_coeffs(&ring, &[1, 1]);
//! ev.make_resident(&mut a); // one upload; every op below stays on-device
//! let mut c = ev.multiply(&a, &a); // fused multiply on the warp kernels
//! c.sync(); // one download
//! assert_eq!(c.coefficient_centered(&ring, 1), Some(2));
//! # Ok::<(), ntt_core::RingError>(())
//! ```

use crate::hier::{self, DeviceTwist};
use crate::ot::DeviceOt;
use crate::radix2::{launch_forward, launch_inverse, ModMul};
use crate::smem::{self, SmemConfig, SmemJob};
use gpu_sim::{Buf, Event, Gpu, GpuConfig, LaunchConfig, OpClass, Stream, WarpCtx, WarpKernel};
use ntt_core::backend::{
    BackendError, DeviceBuf, DeviceMemory, LimbBatch, NttBackend, RingPlan, SharedDeviceMemory,
    TransferStats,
};
use ntt_math::modops::{add_mod, mul_mod, neg_mod, sub_mod};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Threads per block for the element-wise kernels.
pub(crate) const THREADS: usize = 256;

/// Shapes below this row length keep the radix-2 stage kernels: the
/// two-kernel split needs enough columns per kernel to fill blocks.
pub(crate) const SMEM_MIN_N: usize = 256;

/// Device-resident twiddle tables for one plan (shared by all forks).
struct DevTables {
    n: usize,
    primes: Vec<u64>,
    tw: Buf,
    twc: Buf,
    itw: Buf,
    itwc: Buf,
    /// Per-prime `(N^{-1}, companion, p)` for the inverse scaling pass.
    n_inv: Vec<(u64, u64, u64)>,
    /// Cached OT factor tables (built on first OT-routed forward).
    ot: Option<DeviceOt>,
    /// Cached hierarchical twist-factor tables (built on first
    /// hier-routed forward).
    twist: Option<DeviceTwist>,
}

/// A reusable device data buffer (outgrown buffers are returned to the
/// GMEM free list).
#[derive(Default, Clone, Copy)]
pub(crate) struct DevData {
    buf: Option<Buf>,
}

impl DevData {
    pub(crate) fn ensure(&mut self, gpu: &mut Gpu, words: usize) -> Buf {
        match self.buf {
            Some(b) if b.len() >= words => b,
            old => {
                if let Some(b) = old {
                    gpu.gmem.free(b);
                }
                let b = gpu.gmem.alloc(words);
                self.buf = Some(b);
                b
            }
        }
    }
}

/// The simulated device memory behind [`SimBackend`]: the [`Gpu`] itself
/// (GMEM + launch trace + stream scheduler), the [`DeviceBuf`] handle map,
/// the shared plan tables, and the per-buffer readiness events that guard
/// cross-stream buffer reuse. One mutex guards all of it — forks of a
/// backend share this structure, so resident data is visible to every
/// fork. The mutex keeps the *functional* execution sequentially
/// consistent (one simulated address space); the *modeled* time is no
/// longer serialized: each fork enqueues its kernels and transfers on its
/// own [`Stream`], and the scheduler overlaps them subject to SM capacity
/// (see [`gpu_sim::stream`]).
pub struct SimMemory {
    gpu: Gpu,
    bufs: HashMap<u64, Buf>,
    next_id: u64,
    tables: Option<DevTables>,
    /// Completion event of the last *write* touching an allocation, keyed
    /// by its GMEM base address. Because the free list recycles exact
    /// sizes at stable addresses, a recycled buffer inherits its previous
    /// life's event — which is precisely the fence a new owner on another
    /// stream must wait on before reusing the storage.
    buf_ready: HashMap<usize, Event>,
    /// Fence for the one-time plan-table upload (every kernel reads the
    /// tables, so every op waits on it).
    tables_ready: Event,
}

impl SimMemory {
    /// Fresh simulated device memory over an explicit device model.
    ///
    /// Handle ids start in a process-unique namespace
    /// ([`ntt_core::backend::handle_namespace`]) so a [`DeviceBuf`] minted
    /// by one memory never accidentally resolves against another — a
    /// foreign handle misses the map and surfaces as
    /// [`BackendError::Fatal`] on the fallible paths instead of silently
    /// aliasing an unrelated allocation.
    pub fn new(config: GpuConfig) -> Self {
        Self {
            gpu: Gpu::new(config),
            bufs: HashMap::new(),
            next_id: ntt_core::backend::handle_namespace(),
            tables: None,
            buf_ready: HashMap::new(),
            tables_ready: Event::DONE,
        }
    }

    /// Translate an opaque handle view into a GMEM buffer view.
    ///
    /// # Panics
    ///
    /// Panics on a freed or foreign handle — an invariant assertion on
    /// the infallible paths (the fallible surface pre-validates with
    /// [`is_live`](SimMemory::is_live) and returns
    /// [`BackendError::Fatal`] instead).
    pub(crate) fn resolve(&self, buf: DeviceBuf) -> Buf {
        self.bufs
            .get(&buf.id())
            .expect("freed or foreign DeviceBuf")
            .sub(buf.base(), buf.len())
    }

    /// The GMEM view behind a handle (for kernels driven outside the
    /// backend, e.g. figure experiments on the handle layer).
    pub fn raw_buf(&self, buf: DeviceBuf) -> Buf {
        self.resolve(buf)
    }

    /// The simulated device (launch trace, traffic counters, timeline).
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// Mutable access to the simulated device (for experiments that drive
    /// kernels directly over handle-layer buffers).
    pub fn gpu_mut(&mut self) -> &mut Gpu {
        &mut self.gpu
    }

    /// Root allocation base of a handle (the readiness-map key).
    pub(crate) fn root_base(&self, buf: DeviceBuf) -> usize {
        self.bufs
            .get(&buf.id())
            .expect("freed or foreign DeviceBuf")
            .base()
    }

    /// Route subsequent launches and charged transfers to `s`.
    pub(crate) fn bind(&mut self, s: Stream) {
        self.gpu.set_active_stream(s);
    }

    /// Fence the active stream on the table upload and on the last write
    /// to each involved allocation (keys are GMEM base addresses).
    pub(crate) fn wait_ready(&mut self, bases: &[usize]) {
        let s = self.gpu.active_stream();
        let mut fence = self.tables_ready;
        for b in bases {
            if let Some(e) = self.buf_ready.get(b) {
                fence = fence.max(*e);
            }
        }
        self.gpu.wait_event(s, fence);
    }

    /// The readiness fence for a set of allocations *without* waiting on
    /// it: the latest of the table upload and the last recorded write to
    /// each base. Cross-device copy engines fence **their own** streams
    /// on this event instead of stalling this device's compute stream —
    /// the data dependency crosses the link, the schedule does not.
    pub(crate) fn ready_fence(&self, bases: &[usize]) -> Event {
        let mut fence = self.tables_ready;
        for b in bases {
            if let Some(e) = self.buf_ready.get(b) {
                fence = fence.max(*e);
            }
        }
        fence
    }

    /// Push an allocation's readiness fence forward to `e` if it is
    /// later than what is recorded (write-after-read hazard: a
    /// cross-device read in flight must finish before the next local
    /// writer may land).
    pub(crate) fn fence_until(&mut self, base: usize, e: Event) {
        let cur = self.buf_ready.entry(base).or_insert(e);
        *cur = cur.max(e);
    }

    /// Record the active stream's completion event as the readiness fence
    /// of each written allocation.
    pub(crate) fn mark_written(&mut self, bases: &[usize]) {
        let s = self.gpu.active_stream();
        let e = self.gpu.record_event(s);
        for &b in bases {
            self.buf_ready.insert(b, e);
        }
    }

    /// Borrow a scratch allocation from the GMEM free list for one
    /// multi-kernel launch plan (e.g. the hierarchical NTT's transposed
    /// intermediate). The stale readiness event a recycled base may carry
    /// is *consumed* — the active stream fences on it and then owns the
    /// storage — so repeated acquire/release cycles keep at most one
    /// [`buf_ready`](SimMemory::buf_ready) entry per recycled base
    /// instead of leaking one per cycle. Pair every call with
    /// [`release_scratch`](SimMemory::release_scratch).
    pub fn acquire_scratch(&mut self, words: usize) -> Buf {
        let buf = self.gpu.gmem.alloc(words);
        if let Some(e) = self.buf_ready.remove(&buf.base()) {
            let s = self.gpu.active_stream();
            self.gpu.wait_event(s, e);
        }
        buf
    }

    /// Return a scratch allocation to the free list, recording the active
    /// stream's completion event as the base's readiness fence (the next
    /// owner of the recycled storage waits on it before touching the
    /// bytes).
    pub fn release_scratch(&mut self, buf: Buf) {
        let s = self.gpu.active_stream();
        let e = self.gpu.record_event(s);
        self.buf_ready.insert(buf.base(), e);
        self.gpu.gmem.free(buf);
    }

    /// Number of live per-allocation readiness entries (test hook for the
    /// boundedness of the event map under scratch recycling).
    pub fn readiness_entries(&self) -> usize {
        self.buf_ready.len()
    }

    /// Whether a handle view still resolves to a live allocation (the
    /// fallible surface's non-panicking counterpart of [`resolve`]).
    ///
    /// [`resolve`]: SimMemory::resolve
    pub(crate) fn is_live(&self, buf: DeviceBuf) -> bool {
        self.bufs
            .get(&buf.id())
            .is_some_and(|b| buf.base() + buf.len() <= b.len())
    }

    /// Draw the device's armed fault plan (if any) for one fallible
    /// backend entry point, classifying a fired fault into the typed
    /// error surface. A fault charges a stall on the active stream — see
    /// [`Gpu::fault_check`].
    pub(crate) fn fault_gate(
        &mut self,
        op: &'static str,
        kind: gpu_sim::FaultOp,
    ) -> Result<(), BackendError> {
        self.gpu.fault_check(kind).map_err(|k| classify(k, op, 0))
    }
}

/// Map an injected [`gpu_sim::FaultKind`] onto the typed error surface:
/// transient faults stay retryable, a sticky-wedged device is fatal for
/// every executor sharing it, and OOM carries the request size.
pub(crate) fn classify(kind: gpu_sim::FaultKind, op: &'static str, words: usize) -> BackendError {
    match kind {
        gpu_sim::FaultKind::Transient => BackendError::Transient { op },
        gpu_sim::FaultKind::Sticky => BackendError::Fatal { op },
        gpu_sim::FaultKind::Oom => BackendError::Oom { op, words },
    }
}

impl DeviceMemory for SimMemory {
    fn alloc(&mut self, words: usize) -> DeviceBuf {
        let b = self.gpu.gmem.alloc(words);
        self.next_id += 1;
        self.bufs.insert(self.next_id, b);
        DeviceBuf::root(self.next_id, words)
    }

    fn upload(&mut self, dst: DeviceBuf, src: &[u64]) {
        let b = self.resolve(dst);
        let root = self.root_base(dst);
        self.wait_ready(&[root]);
        self.gpu.stream_upload(b, 0, src);
        self.mark_written(&[root]);
    }

    fn download(&mut self, src: DeviceBuf, dst: &mut [u64]) {
        let b = self.resolve(src);
        let root = self.root_base(src);
        self.wait_ready(&[root]);
        self.gpu.stream_download(b.sub(0, dst.len()), dst);
    }

    fn copy(&mut self, src: DeviceBuf, dst: DeviceBuf) {
        let (s, d) = (self.resolve(src), self.resolve(dst));
        let roots = [self.root_base(src), self.root_base(dst)];
        self.wait_ready(&roots);
        self.gpu.gmem.copy(s, d);
        self.mark_written(&roots[1..]);
    }

    fn free(&mut self, buf: DeviceBuf) {
        if let Some(b) = self.bufs.remove(&buf.id()) {
            self.gpu.gmem.free(b);
        }
    }

    fn stats(&self) -> TransferStats {
        let t = self.gpu.gmem.transfer_stats();
        TransferStats {
            uploads: t.uploads,
            upload_words: t.upload_words,
            downloads: t.downloads,
            download_words: t.download_words,
            d2d_copies: t.d2d_copies,
            allocs: t.allocs,
            frees: t.frees,
        }
    }

    fn reset_stats(&mut self) {
        self.gpu.gmem.reset_transfer_stats();
    }

    // The fallible surface: each op draws the armed fault plan *before*
    // touching any data, so an `Err` leaves host and device state exactly
    // as they were and the identical call can be retried.

    fn try_alloc(&mut self, words: usize) -> Result<DeviceBuf, BackendError> {
        let projected = self.gpu.gmem.allocated_words() + words;
        self.gpu
            .fault_check_alloc(projected)
            .map_err(|k| classify(k, "alloc", words))?;
        Ok(self.alloc(words))
    }

    fn try_upload(&mut self, dst: DeviceBuf, src: &[u64]) -> Result<(), BackendError> {
        if !self.is_live(dst) {
            return Err(BackendError::Fatal { op: "upload" });
        }
        self.fault_gate("upload", gpu_sim::FaultOp::Upload)?;
        self.upload(dst, src);
        Ok(())
    }

    fn try_download(&mut self, src: DeviceBuf, dst: &mut [u64]) -> Result<(), BackendError> {
        if !self.is_live(src) {
            return Err(BackendError::Fatal { op: "download" });
        }
        self.fault_gate("download", gpu_sim::FaultOp::Download)?;
        self.download(src, dst);
        Ok(())
    }
}

/// Lock a shared [`SimMemory`], recovering from poisoning (free function
/// so callers can hold `&mut` to other backend fields across the guard).
pub(crate) fn lock_mem(mem: &Arc<Mutex<SimMemory>>) -> MutexGuard<'_, SimMemory> {
    mem.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Which implementation a forward batch of a given shape routes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ForwardImpl {
    /// One stage-kernel launch per Cooley–Tukey stage.
    Radix2,
    /// Two-kernel SMEM implementation with this split (+OT stages).
    Smem { n1: usize, ot_stages: u32 },
    /// Three-kernel hierarchical (4-step) implementation with this
    /// column count (`n2 = N / n1`).
    Hier { n1: usize },
}

/// The memoized calibration verdict for one shape: the overall
/// modeled-time winner, plus the best SMEM split for the forced-`smem`
/// mode and the best hierarchical split for the forced-`hier` mode
/// (radix-2 when no candidate is feasible at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ShapeChoice {
    pub(crate) auto: ForwardImpl,
    pub(crate) best_smem: ForwardImpl,
    pub(crate) best_hier: ForwardImpl,
}

/// Forced routing mode from `NTT_WARP_SIM_FORWARD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ForwardMode {
    Auto,
    Radix2,
    Smem,
    Hier,
}

/// The routing mode, resolved from `NTT_WARP_SIM_FORWARD` once per
/// process (this sits on every launch's hot path).
pub(crate) fn forward_mode() -> ForwardMode {
    static MODE: std::sync::OnceLock<ForwardMode> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| {
        match std::env::var("NTT_WARP_SIM_FORWARD")
            .unwrap_or_default()
            .trim()
            .to_ascii_lowercase()
            .as_str()
        {
            "radix2" => ForwardMode::Radix2,
            "smem" => ForwardMode::Smem,
            "hier" => ForwardMode::Hier,
            _ => ForwardMode::Auto,
        }
    })
}

/// Element-wise warp kernels over batches of limb rows: one thread per
/// element, row `r` reduced mod `moduli[row_prime[r]]`.
#[derive(Clone, Copy)]
pub(crate) enum ElemOp {
    /// `a[i] <- a[i] * b[i]` (the paper's pointwise stage).
    Mul,
    /// `a[i] <- a[i] + b[i] * c[i]` (key-switch accumulate).
    Fma,
    /// `a[i] <- a[i] + b[i]`.
    Add,
    /// `a[i] <- a[i] - b[i]`.
    Sub,
    /// `a[i] <- -a[i]`.
    Neg,
}

impl ElemOp {
    fn label(&self) -> &'static str {
        match self {
            ElemOp::Mul => "sim-pointwise",
            ElemOp::Fma => "sim-fma",
            ElemOp::Add => "sim-add",
            ElemOp::Sub => "sim-sub",
            ElemOp::Neg => "sim-neg",
        }
    }
}

struct ElemwiseKernel<'a> {
    op: ElemOp,
    a: Buf,
    b: Option<Buf>,
    c: Option<Buf>,
    n: usize,
    rows: usize,
    row_prime: &'a [usize],
    moduli: &'a [u64],
}

impl WarpKernel for ElemwiseKernel<'_> {
    fn phases(&self) -> usize {
        1
    }

    fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
        let total = self.rows * self.n;
        let lanes = ctx.lanes();
        let mut addr_a = vec![None; lanes];
        let mut addr_b = vec![None; lanes];
        let mut addr_c = vec![None; lanes];
        let mut prime = vec![0usize; lanes];
        let mut active = 0u64;
        for l in 0..lanes {
            let gt = ctx.global_thread(l);
            if gt >= total {
                continue;
            }
            active += 1;
            prime[l] = self.row_prime[gt / self.n];
            addr_a[l] = Some(self.a.word(gt));
            if let Some(b) = self.b {
                addr_b[l] = Some(b.word(gt));
            }
            if let Some(c) = self.c {
                addr_c[l] = Some(c.word(gt));
            }
        }
        if active == 0 {
            return;
        }
        let (a, b) = if self.b.is_some() {
            ctx.gmem_load2(&addr_a, &addr_b)
        } else {
            (ctx.gmem_load(&addr_a), vec![None; lanes])
        };
        let c = if self.c.is_some() {
            ctx.gmem_load(&addr_c)
        } else {
            vec![None; lanes]
        };
        let writes: Vec<Option<(usize, u64)>> = (0..lanes)
            .map(|l| {
                let av = a[l]?;
                let p = self.moduli[prime[l]];
                let v = match self.op {
                    ElemOp::Mul => mul_mod(av, b[l].expect("rhs loaded"), p),
                    ElemOp::Fma => add_mod(
                        av,
                        mul_mod(b[l].expect("x loaded"), c[l].expect("y loaded"), p),
                        p,
                    ),
                    ElemOp::Add => add_mod(av, b[l].expect("rhs loaded"), p),
                    ElemOp::Sub => sub_mod(av, b[l].expect("rhs loaded"), p),
                    ElemOp::Neg => neg_mod(av, p),
                };
                Some((addr_a[l].expect("lane active"), v))
            })
            .collect();
        match self.op {
            ElemOp::Mul => ctx.count_op(OpClass::NativeModMul, active),
            ElemOp::Fma => {
                ctx.count_op(OpClass::NativeModMul, active);
                ctx.count_op(OpClass::ModAddSub, active);
            }
            ElemOp::Add | ElemOp::Sub | ElemOp::Neg => ctx.count_op(OpClass::ModAddSub, active),
        }
        ctx.gmem_store(&writes);
    }
}

/// The device-side CKKS rescale step (see
/// `ntt_core::backend::NttBackend::dev_rescale` for the contract): one
/// thread per element of rows `0..level-1`, each reading its own word and
/// the last row's word of the same column.
struct RescaleKernel<'a> {
    data: Buf,
    n: usize,
    level: usize,
    /// Per-prime `(p_last^{-1} mod p_i, p_i)` for rows `0..level-1`.
    inv_p: &'a [(u64, u64)],
}

impl WarpKernel for RescaleKernel<'_> {
    fn phases(&self) -> usize {
        1
    }

    fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
        let total = (self.level - 1) * self.n;
        let lanes = ctx.lanes();
        let mut addr_x = vec![None; lanes];
        let mut addr_l = vec![None; lanes];
        let mut row = vec![0usize; lanes];
        let mut active = 0u64;
        for l in 0..lanes {
            let gt = ctx.global_thread(l);
            if gt >= total {
                continue;
            }
            active += 1;
            row[l] = gt / self.n;
            addr_x[l] = Some(self.data.word(gt));
            addr_l[l] = Some(self.data.word((self.level - 1) * self.n + gt % self.n));
        }
        if active == 0 {
            return;
        }
        let (x, last) = ctx.gmem_load2(&addr_x, &addr_l);
        let writes: Vec<Option<(usize, u64)>> = (0..lanes)
            .map(|l| {
                let xv = x[l]?;
                let lv = last[l].expect("last row loaded");
                let (inv, p) = self.inv_p[row[l]];
                let diff = sub_mod(xv, lv % p, p);
                Some((addr_x[l].expect("lane active"), mul_mod(diff, inv, p)))
            })
            .collect();
        ctx.count_op(OpClass::NativeModMul, active);
        ctx.count_op(OpClass::ModAddSub, active);
        ctx.gmem_store(&writes);
    }
}

/// Device-side gadget digit decomposition (layout per
/// `ntt_core::backend::NttBackend::dev_decompose`): one thread per output
/// element, each reading its source word and extracting one base-`2^w`
/// digit.
struct DecomposeKernel {
    src: Buf,
    dst: Buf,
    n: usize,
    level: usize,
    digits: usize,
    gadget_bits: u32,
}

impl WarpKernel for DecomposeKernel {
    fn phases(&self) -> usize {
        1
    }

    fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
        let total = self.level * self.digits * self.level * self.n;
        let mask = (1u64 << self.gadget_bits) - 1;
        let lanes = ctx.lanes();
        let mut addr_s = vec![None; lanes];
        let mut shift = vec![0u32; lanes];
        let mut active = 0u64;
        for l in 0..lanes {
            let gt = ctx.global_thread(l);
            if gt >= total {
                continue;
            }
            active += 1;
            let poly = gt / (self.level * self.n);
            let (j, d) = (poly / self.digits, poly % self.digits);
            let t = gt % self.n;
            shift[l] = self.gadget_bits * d as u32;
            addr_s[l] = Some(self.src.word(j * self.n + t));
        }
        if active == 0 {
            return;
        }
        // Replicated rows re-read the same source words; the read-only
        // path absorbs the repeats the way twiddle broadcasts do.
        let vals = ctx.gmem_load_cached(&addr_s);
        let writes: Vec<Option<(usize, u64)>> = (0..lanes)
            .map(|l| {
                let v = vals[l]?;
                Some((self.dst.word(ctx.global_thread(l)), (v >> shift[l]) & mask))
            })
            .collect();
        ctx.count_op(OpClass::Generic, active);
        ctx.gmem_store(&writes);
    }
}

/// Device-side Galois automorphism `X → X^g` (index map per
/// `ntt_core::backend::NttBackend::dev_automorphism`): one thread per
/// *input* element — a coalesced read, a scattered sign-wrapped write —
/// the same shape a real permutation kernel takes.
struct AutomorphismKernel<'a> {
    src: Buf,
    dst: Buf,
    n: usize,
    rows: usize,
    /// Galois element already reduced mod `2N`.
    g: u64,
    row_prime: &'a [usize],
    moduli: &'a [u64],
}

impl WarpKernel for AutomorphismKernel<'_> {
    fn phases(&self) -> usize {
        1
    }

    fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
        let total = self.rows * self.n;
        let two_n = 2 * self.n as u64;
        let lanes = ctx.lanes();
        let mut addr_s = vec![None; lanes];
        let mut addr_d = vec![0usize; lanes];
        let mut wrap = vec![false; lanes];
        let mut prime = vec![0usize; lanes];
        let mut active = 0u64;
        for l in 0..lanes {
            let gt = ctx.global_thread(l);
            if gt >= total {
                continue;
            }
            active += 1;
            let (r, i) = (gt / self.n, gt % self.n);
            prime[l] = self.row_prime[r];
            let idx = (i as u64 * self.g) % two_n;
            wrap[l] = idx >= self.n as u64;
            let t = if wrap[l] {
                idx as usize - self.n
            } else {
                idx as usize
            };
            addr_s[l] = Some(self.src.word(gt));
            addr_d[l] = self.dst.word(r * self.n + t);
        }
        if active == 0 {
            return;
        }
        let vals = ctx.gmem_load(&addr_s);
        let writes: Vec<Option<(usize, u64)>> = (0..lanes)
            .map(|l| {
                let v = vals[l]?;
                let p = self.moduli[prime[l]];
                Some((addr_d[l], if wrap[l] { neg_mod(v, p) } else { v }))
            })
            .collect();
        ctx.count_op(OpClass::ModAddSub, active);
        ctx.gmem_store(&writes);
    }
}

/// Device-side mod-raise (centered lift per
/// `ntt_core::backend::NttBackend::dev_modraise`): one thread per *output*
/// element; each of the `to_level` rows re-reads the same `N` source words,
/// so the read goes through the cached path like the decompose kernel's
/// replicated rows.
struct ModRaiseKernel<'a> {
    src: Buf,
    dst: Buf,
    n: usize,
    to_level: usize,
    p0: u64,
    moduli: &'a [u64],
}

impl WarpKernel for ModRaiseKernel<'_> {
    fn phases(&self) -> usize {
        1
    }

    fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
        let total = self.to_level * self.n;
        let half = self.p0 >> 1;
        let lanes = ctx.lanes();
        let mut addr_s = vec![None; lanes];
        let mut prime = vec![0usize; lanes];
        let mut active = 0u64;
        for l in 0..lanes {
            let gt = ctx.global_thread(l);
            if gt >= total {
                continue;
            }
            active += 1;
            prime[l] = gt / self.n;
            addr_s[l] = Some(self.src.word(gt % self.n));
        }
        if active == 0 {
            return;
        }
        let vals = ctx.gmem_load_cached(&addr_s);
        let writes: Vec<Option<(usize, u64)>> = (0..lanes)
            .map(|l| {
                let v = vals[l]?;
                let p = self.moduli[prime[l]];
                let lifted = if v <= half {
                    v % p
                } else {
                    neg_mod((self.p0 - v) % p, p)
                };
                Some((self.dst.word(ctx.global_thread(l)), lifted))
            })
            .collect();
        ctx.count_op(OpClass::Generic, active);
        ctx.gmem_store(&writes);
    }
}

/// Upload (or reuse) the plan's twiddle tables into shared device state.
/// Tables are keyed on `(N, primes)`; a plan over the same ring never
/// re-uploads (table uploads are the counted, one-time part of a resident
/// chain's "initial upload").
pub(crate) fn ensure_tables(m: &mut SimMemory, plan: &RingPlan) {
    let n = plan.degree();
    let primes = plan.ring().basis().primes();
    if let Some(t) = &m.tables {
        if t.n == n && t.primes == primes {
            return;
        }
    }
    // Plan change: return the previous plan's table (and OT) buffers to
    // the free list before uploading the new ones, so alternating between
    // rings does not grow the simulated address space without bound.
    if let Some(old) = m.tables.take() {
        for buf in [old.tw, old.twc, old.itw, old.itwc] {
            m.gpu.gmem.free(buf);
        }
        if let Some(ot) = old.ot {
            for buf in [ot.lo_w, ot.lo_c, ot.hi_w, ot.hi_c] {
                m.gpu.gmem.free(buf);
            }
        }
        if let Some(tw) = old.twist {
            for buf in [tw.lo_w, tw.lo_c, tw.hi_w, tw.hi_c] {
                m.gpu.gmem.free(buf);
            }
        }
    }
    let np = plan.np();
    let mut tw = Vec::with_capacity(np * n);
    let mut twc = Vec::with_capacity(np * n);
    let mut itw = Vec::with_capacity(np * n);
    let mut itwc = Vec::with_capacity(np * n);
    let mut n_inv = Vec::with_capacity(np);
    for i in 0..np {
        let t = plan.table(i);
        tw.extend_from_slice(t.forward_values());
        twc.extend_from_slice(t.forward_companions());
        itw.extend_from_slice(t.inverse_values());
        itwc.extend_from_slice(t.inverse_companions());
        n_inv.push((t.n_inv().value(), t.n_inv().companion(), t.modulus()));
    }
    // Table uploads are charged to whichever stream first needs the plan
    // (typically the keygen/setup stream); every later op on any stream
    // fences on `tables_ready` before launching.
    let up = |m: &mut SimMemory, host: &[u64]| -> Buf {
        let b = m.gpu.gmem.alloc(host.len());
        m.gpu.stream_upload(b, 0, host);
        b
    };
    let (tw, twc, itw, itwc) = (up(m, &tw), up(m, &twc), up(m, &itw), up(m, &itwc));
    m.tables = Some(DevTables {
        n,
        primes: primes.to_vec(),
        tw,
        twc,
        itw,
        itwc,
        n_inv,
        ot: None,
        twist: None,
    });
    let s = m.gpu.active_stream();
    m.tables_ready = m.gpu.record_event(s);
}

/// The cached OT factor tables for the current plan tables, built on the
/// first OT-routed forward.
fn ensure_ot(m: &mut SimMemory, plan: &RingPlan, base: usize) -> DeviceOt {
    let tables = m.tables.as_ref().expect("tables uploaded");
    if let Some(ot) = tables.ot {
        return ot;
    }
    let host_tables: Vec<&ntt_core::NttTable> = (0..plan.np()).map(|i| plan.table(i)).collect();
    let ot = DeviceOt::upload_tables(&mut m.gpu, plan.degree(), &host_tables, base);
    m.tables.as_mut().expect("tables uploaded").ot = Some(ot);
    ot
}

/// The cached hierarchical twist-factor tables for the current plan
/// tables, built on the first hier-routed forward.
fn ensure_twist(m: &mut SimMemory, plan: &RingPlan) -> DeviceTwist {
    let tables = m.tables.as_ref().expect("tables uploaded");
    if let Some(twist) = tables.twist {
        return twist;
    }
    let host_tables: Vec<&ntt_core::NttTable> = (0..plan.np()).map(|i| plan.table(i)).collect();
    let base = hier::TWIST_BASE.min(2 * plan.degree());
    let twist = DeviceTwist::upload_tables(&mut m.gpu, plan.degree(), &host_tables, base);
    m.tables.as_mut().expect("tables uploaded").twist = Some(twist);
    twist
}

/// Launch a forward NTT over `row_prime.len()` rows at `data` through the
/// chosen implementation (radix-2 stage kernels, the SMEM two-kernel
/// split, or the hierarchical three-kernel plan, per `choice`).
pub(crate) fn run_forward(
    m: &mut SimMemory,
    plan: &RingPlan,
    data: Buf,
    row_prime: &[usize],
    choice: ForwardImpl,
) {
    match choice {
        ForwardImpl::Radix2 => {
            let SimMemory { gpu, tables, .. } = m;
            let t = tables.as_ref().expect("tables uploaded");
            launch_forward(
                gpu,
                data,
                t.tw,
                t.twc,
                t.n,
                row_prime,
                &t.primes,
                ModMul::Shoup,
            );
        }
        ForwardImpl::Smem { n1, ot_stages } => {
            let cfg = SmemConfig::new(n1).ot_stages(ot_stages);
            let ot = (ot_stages > 0).then(|| ensure_ot(m, plan, cfg.ot_base));
            let SimMemory { gpu, tables, .. } = m;
            let t = tables.as_ref().expect("tables uploaded");
            let job = SmemJob {
                data,
                tw: t.tw,
                twc: t.twc,
                n: t.n,
                log_n: t.n.trailing_zeros(),
                moduli: &t.primes,
                row_prime,
            };
            smem::launch_job(gpu, &job, &cfg, ot.as_ref());
        }
        ForwardImpl::Hier { n1 } => {
            let twist = ensure_twist(m, plan);
            let scratch = m.acquire_scratch(row_prime.len() * plan.degree());
            {
                let SimMemory { gpu, tables, .. } = &mut *m;
                let t = tables.as_ref().expect("tables uploaded");
                let job = hier::HierJob {
                    data,
                    scratch,
                    tw: t.tw,
                    twc: t.twc,
                    n: t.n,
                    log_n: t.n.trailing_zeros(),
                    moduli: &t.primes,
                    row_prime,
                };
                hier::launch_job(gpu, &job, n1, &twist, hier::PER_THREAD);
            }
            m.release_scratch(scratch);
        }
    }
}

/// Launch the inverse NTT (always the radix-2 stage kernels — the SMEM
/// implementation is forward-only, matching the paper's Table II setup).
pub(crate) fn run_inverse(m: &mut SimMemory, data: Buf, row_prime: &[usize]) {
    let SimMemory { gpu, tables, .. } = m;
    let t = tables.as_ref().expect("tables uploaded");
    launch_inverse(
        gpu, data, t.itw, t.itwc, t.n, row_prime, &t.primes, &t.n_inv,
    );
}

/// Launch one element-wise kernel.
pub(crate) fn launch_elemwise(
    m: &mut SimMemory,
    op: ElemOp,
    a: Buf,
    b: Option<Buf>,
    c: Option<Buf>,
    n: usize,
    row_prime: &[usize],
) {
    let t = m.tables.as_ref().expect("tables uploaded");
    let kernel = ElemwiseKernel {
        a,
        b,
        c,
        n,
        rows: row_prime.len(),
        row_prime,
        moduli: &t.primes,
        op,
    };
    let blocks = (row_prime.len() * n).div_ceil(THREADS);
    let cfg = LaunchConfig::new(kernel.op.label(), blocks, THREADS).regs_per_thread(40);
    m.gpu.launch(&kernel, &cfg);
}

/// Launch the Galois automorphism kernel over `row_prime.len()` local
/// rows (`X → X^g`, `g` already reduced mod `2N`). The permutation is
/// row-local — row `r` of `dst` depends only on row `r` of `src` — which
/// is what lets the sharded backend run it shard-parallel on row slices.
pub(crate) fn launch_automorphism(
    m: &mut SimMemory,
    src: Buf,
    dst: Buf,
    n: usize,
    g: u64,
    row_prime: &[usize],
) {
    let t = m.tables.as_ref().expect("tables uploaded");
    let kernel = AutomorphismKernel {
        src,
        dst,
        n,
        rows: row_prime.len(),
        g,
        row_prime,
        moduli: &t.primes,
    };
    let blocks = (row_prime.len() * n).div_ceil(THREADS);
    let cfg = LaunchConfig::new("sim-automorphism", blocks, THREADS).regs_per_thread(40);
    m.gpu.launch(&kernel, &cfg);
}

/// The simulated-GPU backend: shared device memory (GMEM + handle map +
/// plan tables) plus per-fork staging buffers, the memoized forward
/// routing table, and this executor's [`Stream`].
///
/// The root backend runs on [`Stream::DEFAULT`]; every [`NttBackend::fork`]
/// allocates its own stream, so concurrent evaluators from the pool
/// enqueue on independent queues and their modeled device time overlaps
/// (subject to SM capacity) instead of serializing the way the old
/// single-launch-lock model did.
pub struct SimBackend {
    mem: Arc<Mutex<SimMemory>>,
    /// The stream this executor's launches and transfers are charged to.
    stream: Stream,
    /// Lazily created copy stream for staging prefetches
    /// ([`NttBackend::stage_upload`]): uploads ride here so compute
    /// queued on `stream` overlaps the transfer, fenced per buffer by
    /// the readiness events.
    copy_stream: Option<Stream>,
    /// Staging buffer for host-batch primary operands.
    data: DevData,
    /// Staging buffer for host-batch secondary operands.
    scratch: DevData,
    /// Device scratch for `dev_multiply`'s second operand.
    mul_scratch: DevData,
    /// Memoized per-`N` forward implementation choice (shared by forks so
    /// the calibration runs once per shape per backend family).
    split_cache: Arc<Mutex<HashMap<usize, ShapeChoice>>>,
}

impl Default for SimBackend {
    fn default() -> Self {
        Self::titan_v()
    }
}

impl Drop for SimBackend {
    fn drop(&mut self) {
        if self.stream != Stream::DEFAULT {
            self.lock().gpu.destroy_stream(self.stream);
        }
        if let Some(copy) = self.copy_stream {
            self.lock().gpu.destroy_stream(copy);
        }
    }
}

impl SimBackend {
    /// Backend over an explicit device model.
    ///
    /// If `NTT_WARP_FAULTS` is set, the parsed [`gpu_sim::FaultPlan`] is
    /// armed on this backend's device. Arming happens *here*, not in
    /// [`SimMemory::new`], so the scratch devices the forward-choice
    /// calibration sweeps build stay fault-free by construction.
    pub fn new(config: GpuConfig) -> Self {
        let backend = Self {
            mem: Arc::new(Mutex::new(SimMemory::new(config))),
            stream: Stream::DEFAULT,
            copy_stream: None,
            data: DevData::default(),
            scratch: DevData::default(),
            mul_scratch: DevData::default(),
            split_cache: Arc::new(Mutex::new(HashMap::new())),
        };
        if let Some(plan) = gpu_sim::FaultPlan::from_env() {
            backend.set_fault_plan(Some(plan));
        }
        backend
    }

    /// Backend over the paper's Titan-V device model.
    pub fn titan_v() -> Self {
        Self::new(GpuConfig::titan_v())
    }

    /// Arm (or with `None`, disarm) a deterministic fault schedule on the
    /// shared device. Affects every fork sharing this backend's memory;
    /// only the fallible `try_*` entry points draw from the plan. See
    /// [`gpu_sim::FaultPlan`].
    pub fn set_fault_plan(&self, plan: Option<gpu_sim::FaultPlan>) {
        self.lock().gpu.set_fault_plan(plan);
    }

    fn lock(&self) -> MutexGuard<'_, SimMemory> {
        lock_mem(&self.mem)
    }

    /// The stream this executor enqueues on (the root backend uses the
    /// default stream; forks get their own).
    pub fn stream(&self) -> Stream {
        self.stream
    }

    /// A clone of the shared device-memory handle, typed — lets harnesses
    /// observe the device (timeline, trace) after the backend has been
    /// boxed into an evaluator or `HeContext`.
    pub fn memory_handle(&self) -> Arc<Mutex<SimMemory>> {
        Arc::clone(&self.mem)
    }

    /// Inspect the underlying simulated device (launch trace, traffic
    /// counters) under the shared-memory lock.
    pub fn with_gpu<R>(&self, f: impl FnOnce(&Gpu) -> R) -> R {
        f(&self.lock().gpu)
    }

    /// Clear the device launch trace (keeps memory and cached tables).
    pub fn reset_trace(&mut self) {
        self.lock().gpu.reset_trace();
    }

    /// The host↔device transfer ledger (see [`gpu_sim::Gmem`]).
    pub fn transfer_stats(&self) -> TransferStats {
        self.lock().stats()
    }

    /// The device's stream-schedule accounting: serialized vs overlapped
    /// modeled time across every fork's stream.
    pub fn timeline(&self) -> gpu_sim::DeviceTimeline {
        self.lock().gpu.timeline()
    }

    /// The forward implementation for an `n`-point batch: the env
    /// override, the small-shape radix-2 floor, or the memoized
    /// modeled-time winner over the paper's split candidates.
    fn forward_choice(&self, n: usize, rows: usize) -> ForwardImpl {
        match forward_mode() {
            ForwardMode::Radix2 => return ForwardImpl::Radix2,
            ForwardMode::Smem if n >= 4 => {
                return self.cached_or_calibrated(n, rows).best_smem;
            }
            ForwardMode::Hier if n >= 4 => {
                return self.cached_or_calibrated(n, rows).best_hier;
            }
            _ => {}
        }
        if n < SMEM_MIN_N {
            return ForwardImpl::Radix2;
        }
        self.cached_or_calibrated(n, rows).auto
    }

    fn cached_or_calibrated(&self, n: usize, rows: usize) -> ShapeChoice {
        if let Some(&c) = self
            .split_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&n)
        {
            return c;
        }
        let config = self.lock().gpu.config.clone();
        let choice = calibrate_forward_choice(&config, n, rows);
        self.split_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(n, choice);
        choice
    }

    // ---- Fault gates for the fallible surface ---------------------------
    //
    // Every `try_*` override below is gate-then-delegate: draw the armed
    // fault plan (and validate operand handles) *up front*, then run the
    // unchanged infallible body. Injected faults therefore fire between
    // ops — never mid-op — which is what makes a failed call retry-safe:
    // on `Err`, no operand byte has moved. The gates draw one schedule
    // slot per hardware command class the op would issue (a staged host
    // batch is upload + launch + download; a device-resident op is one
    // launch), so fault *rates* scale with real command traffic.

    /// Gates for one staged host-batch op (upload, launch, download — in
    /// issue order, on this executor's stream).
    fn gate_staged(&self, op: &'static str) -> Result<(), BackendError> {
        let mut m = self.lock();
        m.bind(self.stream);
        m.fault_gate(op, gpu_sim::FaultOp::Upload)?;
        m.fault_gate(op, gpu_sim::FaultOp::Launch)?;
        m.fault_gate(op, gpu_sim::FaultOp::Download)
    }

    /// Launch-class gate for one device-resident op.
    fn gate_launch(&self, op: &'static str) -> Result<(), BackendError> {
        let mut m = self.lock();
        m.bind(self.stream);
        m.fault_gate(op, gpu_sim::FaultOp::Launch)
    }

    /// Handle validation for device-resident try ops: a freed or foreign
    /// handle is a caller bug the infallible path treats as an invariant
    /// violation (panic in [`SimMemory::resolve`]); on the typed surface
    /// it comes back as a fatal error instead.
    fn check_handles(&self, op: &'static str, bufs: &[DeviceBuf]) -> Result<(), BackendError> {
        let m = self.lock();
        if bufs.iter().all(|&b| m.is_live(b)) {
            Ok(())
        } else {
            Err(BackendError::Fatal { op })
        }
    }
}

/// A forward-implementation candidate in the calibration sweep.
enum Cand {
    Radix2,
    Smem(SmemConfig),
    Hier(usize),
}

/// Pick the forward implementation for `n`-point rows the way
/// `best_split` does: run every feasible Fig. 12(a) split (with and
/// without OT), every hierarchical 4-step column count, and the radix-2
/// baseline on a **scratch** device of the same model, and keep the
/// minimum modeled time. Purely simulated, so the verdict is
/// deterministic and reproducible across runs. The overall winner
/// (`auto`, which may be radix-2), the best SMEM split (forced-`smem`
/// mode) and the best hierarchical split (forced-`hier` mode) are all
/// returned and cached — a radix-2 verdict must not re-trigger the
/// sweep on every launch.
///
/// Hierarchical candidates follow a precedence chain: an
/// `NTT_WARP_SPLIT=AxB` override (with `A*B == n`) is authoritative; a
/// split persisted in the per-host calibration file is reused next; only
/// when neither applies does the sweep try the near-square column counts,
/// persisting the winner for future processes.
pub(crate) fn calibrate_forward_choice(config: &GpuConfig, n: usize, rows: usize) -> ShapeChoice {
    let log_n = n.trailing_zeros();
    let np = rows.clamp(1, 4);
    let bench = |cand: &Cand| -> Option<f64> {
        // Scratch device through the handle layer, so even calibration
        // sweeps exercise the same allocator as resident execution.
        let mut mem = SimMemory::new(config.clone());
        let batch = crate::batch::DeviceBatch::sequential_on(&mut mem, log_n, np, 60).ok()?;
        let rep = match cand {
            Cand::Radix2 => crate::radix2::run(mem.gpu_mut(), &batch, ModMul::Shoup),
            Cand::Smem(c) => smem::run(mem.gpu_mut(), &batch, c),
            Cand::Hier(n1) => hier::run(mem.gpu_mut(), &batch, *n1),
        };
        Some(rep.total_s())
    };
    let mut auto: Option<(ForwardImpl, f64)> =
        bench(&Cand::Radix2).map(|t| (ForwardImpl::Radix2, t));
    let mut best_smem: Option<(ForwardImpl, f64)> = None;
    for n1 in SmemConfig::paper_splits(log_n) {
        if !(n1.is_power_of_two() && n1 >= 2 && n1 <= n / 2) {
            continue;
        }
        for ot_stages in [0u32, 2] {
            let cfg = SmemConfig::new(n1).ot_stages(ot_stages);
            if ot_stages > 0 && ((1usize << ot_stages) > n / n1 || cfg.ot_base * cfg.ot_base < n) {
                continue;
            }
            if !smem::job_feasible(n, &cfg, config) {
                continue;
            }
            if let Some(t) = bench(&Cand::Smem(cfg)) {
                let choice = ForwardImpl::Smem { n1, ot_stages };
                if best_smem.as_ref().is_none_or(|(_, b)| t < *b) {
                    best_smem = Some((choice, t));
                }
                if auto.as_ref().is_none_or(|(_, b)| t < *b) {
                    auto = Some((choice, t));
                }
            }
        }
    }
    let forced = ntt_core::hier::env_split().filter(|&(a, b)| a * b == n);
    let calib_path = ntt_core::calibration::calibration_path();
    // Persisted splits are keyed by the device-model fingerprint: a split
    // swept under one config is never adopted under another (it would be
    // stale the moment SM count, bandwidths, or link parameters change).
    let fp = config.fingerprint();
    let persisted = if forced.is_none() {
        calib_path
            .as_deref()
            .and_then(|p| ntt_core::calibration::load_hier_split(p, n, fp))
    } else {
        None
    };
    let hier_splits: Vec<usize> = match forced.or(persisted) {
        Some((a, _)) => vec![a],
        None => {
            let l = log_n as usize;
            let mut v = vec![
                1usize << (l / 2),
                1usize << l.div_ceil(2),
                1usize << (l / 2 + 1),
            ];
            if l / 2 >= 1 {
                v.push(1usize << (l / 2 - 1));
            }
            v.sort_unstable();
            v.dedup();
            v
        }
    };
    let mut best_hier: Option<(ForwardImpl, f64)> = None;
    for n1 in hier_splits {
        if !hier::job_feasible(n, n1, hier::PER_THREAD, config) {
            continue;
        }
        if let Some(t) = bench(&Cand::Hier(n1)) {
            let choice = ForwardImpl::Hier { n1 };
            if best_hier.as_ref().is_none_or(|(_, b)| t < *b) {
                best_hier = Some((choice, t));
            }
            if auto.as_ref().is_none_or(|(_, b)| t < *b) {
                auto = Some((choice, t));
            }
        }
    }
    if forced.is_none() && persisted.is_none() {
        if let (Some(path), Some((ForwardImpl::Hier { n1 }, _))) =
            (calib_path.as_deref(), best_hier.as_ref())
        {
            ntt_core::calibration::store_hier_split(path, n, fp, (*n1, n / n1));
        }
    }
    ShapeChoice {
        auto: auto.map_or(ForwardImpl::Radix2, |(c, _)| c),
        best_smem: best_smem.map_or(ForwardImpl::Radix2, |(c, _)| c),
        best_hier: best_hier.map_or(ForwardImpl::Radix2, |(c, _)| c),
    }
}

impl NttBackend for SimBackend {
    fn name(&self) -> &'static str {
        "gpu-sim"
    }

    fn memory(&self) -> SharedDeviceMemory {
        let shared: SharedDeviceMemory = self.mem.clone();
        shared
    }

    fn fork(&self) -> Box<dyn NttBackend> {
        let stream = self.lock().gpu.create_stream();
        Box::new(SimBackend {
            mem: Arc::clone(&self.mem),
            stream,
            copy_stream: None,
            data: DevData::default(),
            scratch: DevData::default(),
            mul_scratch: DevData::default(),
            split_cache: Arc::clone(&self.split_cache),
        })
    }

    fn prefers_residency(&self) -> bool {
        true
    }

    fn bind_stream(&self) {
        self.lock().bind(self.stream);
    }

    /// Prefetch a staging upload on this executor's copy stream: the
    /// transfer is enqueued off the compute stream and the buffer's
    /// readiness event is recorded on the copy stream, so consuming
    /// kernels (which fence per buffer via `wait_ready`) start exactly
    /// when the copy lands while previously queued compute overlaps it
    /// (ROADMAP item p).
    fn stage_upload(&mut self, data: &[u64]) -> DeviceBuf {
        let mut m = lock_mem(&self.mem);
        let copy = *self
            .copy_stream
            .get_or_insert_with(|| m.gpu.create_stream());
        let buf = m.alloc(data.len());
        m.bind(copy);
        // `upload` fences the copy stream on any stale readiness event a
        // recycled base may carry, then records the new one there.
        m.upload(buf, data);
        m.bind(self.stream);
        buf
    }

    fn forward_batch(&mut self, plan: &RingPlan, mut batch: LimbBatch<'_>) {
        let (n, level) = (batch.n(), batch.level());
        let rows = batch.rows();
        let choice = self.forward_choice(n, rows);
        let row_prime: Vec<usize> = (0..rows).map(|r| r % level).collect();
        let mut m = lock_mem(&self.mem);
        m.bind(self.stream);
        ensure_tables(&mut m, plan);
        let buf = self.data.ensure(&mut m.gpu, batch.as_slice().len());
        let buf = buf.sub(0, batch.as_slice().len());
        m.wait_ready(&[buf.base()]);
        m.gpu.stream_upload(buf, 0, batch.as_slice());
        run_forward(&mut m, plan, buf, &row_prime, choice);
        m.gpu.stream_download(buf, batch.data());
        m.mark_written(&[buf.base()]);
    }

    fn inverse_batch(&mut self, plan: &RingPlan, mut batch: LimbBatch<'_>) {
        let (n, level) = (batch.n(), batch.level());
        let rows = batch.as_slice().len() / n;
        let row_prime: Vec<usize> = (0..rows).map(|r| r % level).collect();
        let mut m = lock_mem(&self.mem);
        m.bind(self.stream);
        ensure_tables(&mut m, plan);
        let buf = self.data.ensure(&mut m.gpu, batch.as_slice().len());
        let buf = buf.sub(0, batch.as_slice().len());
        m.wait_ready(&[buf.base()]);
        m.gpu.stream_upload(buf, 0, batch.as_slice());
        run_inverse(&mut m, buf, &row_prime);
        m.gpu.stream_download(buf, batch.data());
        m.mark_written(&[buf.base()]);
    }

    fn pointwise_batch(&mut self, plan: &RingPlan, mut acc: LimbBatch<'_>, rhs: &[u64]) {
        assert_eq!(acc.as_slice().len(), rhs.len(), "operand shape mismatch");
        let (n, level) = (acc.n(), acc.level());
        let rows = acc.as_slice().len() / n;
        let row_prime: Vec<usize> = (0..rows).map(|r| r % level).collect();
        let mut m = lock_mem(&self.mem);
        m.bind(self.stream);
        ensure_tables(&mut m, plan);
        let abuf = self.data.ensure(&mut m.gpu, acc.as_slice().len());
        let abuf = abuf.sub(0, acc.as_slice().len());
        let bbuf = self.scratch.ensure(&mut m.gpu, rhs.len());
        let bbuf = bbuf.sub(0, rhs.len());
        m.wait_ready(&[abuf.base(), bbuf.base()]);
        m.gpu.stream_upload(abuf, 0, acc.as_slice());
        m.gpu.stream_upload(bbuf, 0, rhs);
        launch_elemwise(&mut m, ElemOp::Mul, abuf, Some(bbuf), None, n, &row_prime);
        m.gpu.stream_download(abuf, acc.data());
        m.mark_written(&[abuf.base(), bbuf.base()]);
    }

    fn multiply_batch(&mut self, plan: &RingPlan, a: &[u64], b: &[u64], mut out: LimbBatch<'_>) {
        assert_eq!(a.len(), out.as_slice().len(), "operand shape mismatch");
        assert_eq!(b.len(), out.as_slice().len(), "operand shape mismatch");
        let (n, level) = (out.n(), out.level());
        let rows = a.len() / n;
        let choice = self.forward_choice(n, rows);
        let row_prime: Vec<usize> = (0..rows).map(|r| r % level).collect();
        let mut m = lock_mem(&self.mem);
        m.bind(self.stream);
        ensure_tables(&mut m, plan);
        let abuf = self.data.ensure(&mut m.gpu, a.len());
        let abuf = abuf.sub(0, a.len());
        let bbuf = self.scratch.ensure(&mut m.gpu, b.len());
        let bbuf = bbuf.sub(0, b.len());
        m.wait_ready(&[abuf.base(), bbuf.base()]);
        m.gpu.stream_upload(abuf, 0, a);
        m.gpu.stream_upload(bbuf, 0, b);
        // The classic device pipeline: NTT(a), NTT(b), pointwise, iNTT —
        // four launch groups over one resident batch.
        run_forward(&mut m, plan, abuf, &row_prime, choice);
        run_forward(&mut m, plan, bbuf, &row_prime, choice);
        launch_elemwise(&mut m, ElemOp::Mul, abuf, Some(bbuf), None, n, &row_prime);
        run_inverse(&mut m, abuf, &row_prime);
        m.gpu.stream_download(abuf, out.data());
        m.mark_written(&[abuf.base(), bbuf.base()]);
    }

    // ---- Device-resident execution (zero host↔device traffic) ----------

    fn dev_forward(&mut self, plan: &RingPlan, buf: DeviceBuf, level: usize) {
        let n = plan.degree();
        let rows = buf.len() / n;
        let choice = self.forward_choice(n, rows);
        let row_prime: Vec<usize> = (0..rows).map(|r| r % level).collect();
        let mut m = lock_mem(&self.mem);
        m.bind(self.stream);
        ensure_tables(&mut m, plan);
        let data = m.resolve(buf);
        let root = m.root_base(buf);
        m.wait_ready(&[root]);
        run_forward(&mut m, plan, data, &row_prime, choice);
        m.mark_written(&[root]);
    }

    fn dev_inverse(&mut self, plan: &RingPlan, buf: DeviceBuf, level: usize) {
        let n = plan.degree();
        let row_prime: Vec<usize> = (0..buf.len() / n).map(|r| r % level).collect();
        let mut m = lock_mem(&self.mem);
        m.bind(self.stream);
        ensure_tables(&mut m, plan);
        let data = m.resolve(buf);
        let root = m.root_base(buf);
        m.wait_ready(&[root]);
        run_inverse(&mut m, data, &row_prime);
        m.mark_written(&[root]);
    }

    fn dev_multiply(
        &mut self,
        plan: &RingPlan,
        a: DeviceBuf,
        b: DeviceBuf,
        out: DeviceBuf,
        level: usize,
    ) {
        let n = plan.degree();
        let rows = out.len() / n;
        let choice = self.forward_choice(n, rows);
        let row_prime: Vec<usize> = (0..rows).map(|r| r % level).collect();
        let mut m = lock_mem(&self.mem);
        m.bind(self.stream);
        ensure_tables(&mut m, plan);
        let (abuf, bbuf, obuf) = (m.resolve(a), m.resolve(b), m.resolve(out));
        let scratch = self.mul_scratch.ensure(&mut m.gpu, bbuf.len());
        let scratch = scratch.sub(0, bbuf.len());
        let reads = [
            m.root_base(a),
            m.root_base(b),
            m.root_base(out),
            scratch.base(),
        ];
        m.wait_ready(&reads);
        // Stage both operands on the device (d2d; inputs stay intact).
        m.gpu.gmem.copy(abuf, obuf);
        m.gpu.gmem.copy(bbuf, scratch);
        run_forward(&mut m, plan, obuf, &row_prime, choice);
        run_forward(&mut m, plan, scratch, &row_prime, choice);
        launch_elemwise(
            &mut m,
            ElemOp::Mul,
            obuf,
            Some(scratch),
            None,
            n,
            &row_prime,
        );
        run_inverse(&mut m, obuf, &row_prime);
        m.mark_written(&[reads[2], reads[3]]);
    }

    fn dev_pointwise(&mut self, plan: &RingPlan, acc: DeviceBuf, rhs: DeviceBuf, level: usize) {
        let n = plan.degree();
        let row_prime: Vec<usize> = (0..acc.len() / n).map(|r| r % level).collect();
        let mut m = lock_mem(&self.mem);
        m.bind(self.stream);
        ensure_tables(&mut m, plan);
        let (a, b) = (m.resolve(acc), m.resolve(rhs));
        let roots = [m.root_base(acc), m.root_base(rhs)];
        m.wait_ready(&roots);
        launch_elemwise(&mut m, ElemOp::Mul, a, Some(b), None, n, &row_prime);
        m.mark_written(&roots[..1]);
    }

    fn dev_fma(
        &mut self,
        plan: &RingPlan,
        acc: DeviceBuf,
        x: DeviceBuf,
        y: DeviceBuf,
        level: usize,
    ) {
        let n = plan.degree();
        let row_prime: Vec<usize> = (0..acc.len() / n).map(|r| r % level).collect();
        let mut m = lock_mem(&self.mem);
        m.bind(self.stream);
        ensure_tables(&mut m, plan);
        let (a, xb, yb) = (m.resolve(acc), m.resolve(x), m.resolve(y));
        let roots = [m.root_base(acc), m.root_base(x), m.root_base(y)];
        m.wait_ready(&roots);
        launch_elemwise(&mut m, ElemOp::Fma, a, Some(xb), Some(yb), n, &row_prime);
        m.mark_written(&roots[..1]);
    }

    fn dev_addsub(
        &mut self,
        plan: &RingPlan,
        acc: DeviceBuf,
        rhs: DeviceBuf,
        level: usize,
        subtract: bool,
    ) {
        let n = plan.degree();
        let row_prime: Vec<usize> = (0..acc.len() / n).map(|r| r % level).collect();
        let op = if subtract { ElemOp::Sub } else { ElemOp::Add };
        let mut m = lock_mem(&self.mem);
        m.bind(self.stream);
        ensure_tables(&mut m, plan);
        let (a, b) = (m.resolve(acc), m.resolve(rhs));
        let roots = [m.root_base(acc), m.root_base(rhs)];
        m.wait_ready(&roots);
        launch_elemwise(&mut m, op, a, Some(b), None, n, &row_prime);
        m.mark_written(&roots[..1]);
    }

    fn dev_negate(&mut self, plan: &RingPlan, buf: DeviceBuf, level: usize) {
        let n = plan.degree();
        let row_prime: Vec<usize> = (0..buf.len() / n).map(|r| r % level).collect();
        let mut m = lock_mem(&self.mem);
        m.bind(self.stream);
        ensure_tables(&mut m, plan);
        let a = m.resolve(buf);
        let root = m.root_base(buf);
        m.wait_ready(&[root]);
        launch_elemwise(&mut m, ElemOp::Neg, a, None, None, n, &row_prime);
        m.mark_written(&[root]);
    }

    fn dev_rescale(&mut self, plan: &RingPlan, buf: DeviceBuf, level: usize) {
        assert!(level > 1, "cannot rescale past the last prime");
        let n = plan.degree();
        let primes = plan.ring().basis().primes();
        let p_last = primes[level - 1];
        let inv_p: Vec<(u64, u64)> = primes[..level - 1]
            .iter()
            .map(|&p| {
                (
                    ntt_math::inv_mod(p_last % p, p).expect("distinct primes are coprime"),
                    p,
                )
            })
            .collect();
        let mut m = lock_mem(&self.mem);
        m.bind(self.stream);
        ensure_tables(&mut m, plan);
        let data = m.resolve(buf);
        let root = m.root_base(buf);
        m.wait_ready(&[root]);
        let kernel = RescaleKernel {
            data,
            n,
            level,
            inv_p: &inv_p,
        };
        let blocks = ((level - 1) * n).div_ceil(THREADS);
        let cfg = LaunchConfig::new("sim-rescale", blocks, THREADS).regs_per_thread(40);
        m.gpu.launch(&kernel, &cfg);
        m.mark_written(&[root]);
    }

    fn dev_decompose(
        &mut self,
        plan: &RingPlan,
        src: DeviceBuf,
        dst: DeviceBuf,
        level: usize,
        digits: usize,
        gadget_bits: u32,
    ) {
        let n = plan.degree();
        assert_eq!(src.len(), level * n, "source must be level x N");
        assert_eq!(
            dst.len(),
            level * digits * level * n,
            "digit buffer shape mismatch"
        );
        let mut m = lock_mem(&self.mem);
        m.bind(self.stream);
        ensure_tables(&mut m, plan);
        let kernel = DecomposeKernel {
            src: m.resolve(src),
            dst: m.resolve(dst),
            n,
            level,
            digits,
            gadget_bits,
        };
        let roots = [m.root_base(src), m.root_base(dst)];
        m.wait_ready(&roots);
        let blocks = (level * digits * level * n).div_ceil(THREADS);
        let cfg = LaunchConfig::new("sim-decompose", blocks, THREADS).regs_per_thread(40);
        m.gpu.launch(&kernel, &cfg);
        m.mark_written(&roots[1..]);
    }

    fn dev_automorphism(
        &mut self,
        plan: &RingPlan,
        src: DeviceBuf,
        dst: DeviceBuf,
        level: usize,
        g: u64,
    ) {
        let n = plan.degree();
        let rows = src.len() / n;
        assert_eq!(src.len(), dst.len(), "operand shape mismatch");
        let g = g % (2 * n as u64);
        assert_eq!(g % 2, 1, "Galois element must be odd");
        let row_prime: Vec<usize> = (0..rows).map(|r| r % level).collect();
        let mut m = lock_mem(&self.mem);
        m.bind(self.stream);
        ensure_tables(&mut m, plan);
        let (src_raw, dst_raw) = (m.resolve(src), m.resolve(dst));
        let roots = [m.root_base(src), m.root_base(dst)];
        m.wait_ready(&roots);
        launch_automorphism(&mut m, src_raw, dst_raw, n, g, &row_prime);
        m.mark_written(&roots[1..]);
    }

    fn dev_modraise(&mut self, plan: &RingPlan, src: DeviceBuf, dst: DeviceBuf, to_level: usize) {
        let n = plan.degree();
        assert_eq!(src.len(), n, "mod-raise source must be one level-1 row");
        assert_eq!(dst.len(), to_level * n, "mod-raise destination shape");
        let moduli = plan.ring().basis().primes().to_vec();
        let p0 = moduli[0];
        let mut m = lock_mem(&self.mem);
        m.bind(self.stream);
        ensure_tables(&mut m, plan);
        let kernel = ModRaiseKernel {
            src: m.resolve(src),
            dst: m.resolve(dst),
            n,
            to_level,
            p0,
            moduli: &moduli,
        };
        let roots = [m.root_base(src), m.root_base(dst)];
        m.wait_ready(&roots);
        let blocks = (to_level * n).div_ceil(THREADS);
        let cfg = LaunchConfig::new("sim-modraise", blocks, THREADS).regs_per_thread(40);
        m.gpu.launch(&kernel, &cfg);
        m.mark_written(&roots[1..]);
    }

    // ---- Fallible surface: gate-then-delegate (see the fault-gate
    // helpers on `SimBackend` for the granularity contract). ------------

    fn try_forward_batch(
        &mut self,
        plan: &RingPlan,
        batch: LimbBatch<'_>,
    ) -> Result<(), BackendError> {
        self.gate_staged("forward_batch")?;
        self.forward_batch(plan, batch);
        Ok(())
    }

    fn try_inverse_batch(
        &mut self,
        plan: &RingPlan,
        batch: LimbBatch<'_>,
    ) -> Result<(), BackendError> {
        self.gate_staged("inverse_batch")?;
        self.inverse_batch(plan, batch);
        Ok(())
    }

    fn try_pointwise_batch(
        &mut self,
        plan: &RingPlan,
        acc: LimbBatch<'_>,
        rhs: &[u64],
    ) -> Result<(), BackendError> {
        self.gate_staged("pointwise_batch")?;
        self.pointwise_batch(plan, acc, rhs);
        Ok(())
    }

    fn try_multiply_batch(
        &mut self,
        plan: &RingPlan,
        a: &[u64],
        b: &[u64],
        out: LimbBatch<'_>,
    ) -> Result<(), BackendError> {
        self.gate_staged("multiply_batch")?;
        self.multiply_batch(plan, a, b, out);
        Ok(())
    }

    fn try_dev_forward(
        &mut self,
        plan: &RingPlan,
        buf: DeviceBuf,
        level: usize,
    ) -> Result<(), BackendError> {
        self.check_handles("dev_forward", &[buf])?;
        self.gate_launch("dev_forward")?;
        self.dev_forward(plan, buf, level);
        Ok(())
    }

    fn try_dev_inverse(
        &mut self,
        plan: &RingPlan,
        buf: DeviceBuf,
        level: usize,
    ) -> Result<(), BackendError> {
        self.check_handles("dev_inverse", &[buf])?;
        self.gate_launch("dev_inverse")?;
        self.dev_inverse(plan, buf, level);
        Ok(())
    }

    fn try_dev_multiply(
        &mut self,
        plan: &RingPlan,
        a: DeviceBuf,
        b: DeviceBuf,
        out: DeviceBuf,
        level: usize,
    ) -> Result<(), BackendError> {
        self.check_handles("dev_multiply", &[a, b, out])?;
        self.gate_launch("dev_multiply")?;
        self.dev_multiply(plan, a, b, out, level);
        Ok(())
    }

    fn try_dev_pointwise(
        &mut self,
        plan: &RingPlan,
        acc: DeviceBuf,
        rhs: DeviceBuf,
        level: usize,
    ) -> Result<(), BackendError> {
        self.check_handles("dev_pointwise", &[acc, rhs])?;
        self.gate_launch("dev_pointwise")?;
        self.dev_pointwise(plan, acc, rhs, level);
        Ok(())
    }

    fn try_dev_fma(
        &mut self,
        plan: &RingPlan,
        acc: DeviceBuf,
        x: DeviceBuf,
        y: DeviceBuf,
        level: usize,
    ) -> Result<(), BackendError> {
        self.check_handles("dev_fma", &[acc, x, y])?;
        self.gate_launch("dev_fma")?;
        self.dev_fma(plan, acc, x, y, level);
        Ok(())
    }

    fn try_dev_rescale(
        &mut self,
        plan: &RingPlan,
        buf: DeviceBuf,
        level: usize,
    ) -> Result<(), BackendError> {
        self.check_handles("dev_rescale", &[buf])?;
        self.gate_launch("dev_rescale")?;
        self.dev_rescale(plan, buf, level);
        Ok(())
    }

    fn try_dev_decompose(
        &mut self,
        plan: &RingPlan,
        src: DeviceBuf,
        dst: DeviceBuf,
        level: usize,
        digits: usize,
        gadget_bits: u32,
    ) -> Result<(), BackendError> {
        self.check_handles("dev_decompose", &[src, dst])?;
        self.gate_launch("dev_decompose")?;
        self.dev_decompose(plan, src, dst, level, digits, gadget_bits);
        Ok(())
    }

    fn try_dev_automorphism(
        &mut self,
        plan: &RingPlan,
        src: DeviceBuf,
        dst: DeviceBuf,
        level: usize,
        g: u64,
    ) -> Result<(), BackendError> {
        self.check_handles("dev_automorphism", &[src, dst])?;
        self.gate_launch("dev_automorphism")?;
        self.dev_automorphism(plan, src, dst, level, g);
        Ok(())
    }

    fn try_dev_modraise(
        &mut self,
        plan: &RingPlan,
        src: DeviceBuf,
        dst: DeviceBuf,
        to_level: usize,
    ) -> Result<(), BackendError> {
        self.check_handles("dev_modraise", &[src, dst])?;
        self.gate_launch("dev_modraise")?;
        self.dev_modraise(plan, src, dst, to_level);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt_core::backend::{CpuBackend, Evaluator};
    use ntt_core::{RnsPoly, RnsRing};

    fn ring(n: usize, np: usize) -> RnsRing {
        RnsRing::new(n, ntt_math::ntt_primes(59, 2 * n as u64, np)).unwrap()
    }

    fn sample(ring: &RnsRing, seed: i64) -> RnsPoly {
        let coeffs: Vec<i64> = (0..ring.degree() as i64)
            .map(|i| (seed.wrapping_mul(i + 3) % 97) - 48)
            .collect();
        RnsPoly::from_i64_coeffs(ring, &coeffs)
    }

    #[test]
    fn sim_matches_cpu_on_every_trait_op() {
        let ring = ring(32, 3);
        let plan = RingPlan::new(&ring);
        let a = sample(&ring, 5);
        let b = sample(&ring, 11);

        let mut cpu = CpuBackend::default();
        let mut sim = SimBackend::titan_v();

        // forward
        let (mut fc, mut fs) = (a.clone(), a.clone());
        cpu.forward_batch(&plan, LimbBatch::from_poly(&mut fc));
        sim.forward_batch(&plan, LimbBatch::from_poly(&mut fs));
        assert_eq!(fc.flat(), fs.flat(), "forward");

        // pointwise on the transformed rows
        let (mut pc, mut ps) = (fc.clone(), fs.clone());
        cpu.pointwise_batch(&plan, LimbBatch::from_poly(&mut pc), fc.flat());
        sim.pointwise_batch(&plan, LimbBatch::from_poly(&mut ps), fs.flat());
        assert_eq!(pc.flat(), ps.flat(), "pointwise");

        // inverse
        cpu.inverse_batch(&plan, LimbBatch::from_poly(&mut pc));
        sim.inverse_batch(&plan, LimbBatch::from_poly(&mut ps));
        assert_eq!(pc.flat(), ps.flat(), "inverse");

        // fused multiply
        let (mut mc, mut ms) = (RnsPoly::zero(&ring), RnsPoly::zero(&ring));
        cpu.multiply_batch(&plan, a.flat(), b.flat(), LimbBatch::from_poly(&mut mc));
        sim.multiply_batch(&plan, a.flat(), b.flat(), LimbBatch::from_poly(&mut ms));
        assert_eq!(mc.flat(), ms.flat(), "multiply");
    }

    #[test]
    fn sim_evaluator_multiplies_correctly() {
        let ring = ring(16, 2);
        let mut ev = Evaluator::with_backend(&ring, Box::new(SimBackend::titan_v()));
        assert_eq!(ev.backend_name(), "gpu-sim");
        // (1 + 2x)(3 + x) = 3 + 7x + 2x^2
        let a = RnsPoly::from_i64_coeffs(&ring, &[1, 2]);
        let b = RnsPoly::from_i64_coeffs(&ring, &[3, 1]);
        let c = ev.multiply(&a, &b);
        assert_eq!(c.coefficient_centered(&ring, 0), Some(3));
        assert_eq!(c.coefficient_centered(&ring, 1), Some(7));
        assert_eq!(c.coefficient_centered(&ring, 2), Some(2));
    }

    #[test]
    fn stacked_digit_batch_matches_cpu() {
        // The key-switch shape: 2 polynomials of `level` limbs stacked in
        // one buffer — prime mapping r % level must hold on both backends.
        let ring = ring(16, 3);
        let plan = RingPlan::new(&ring);
        let x = sample(&ring, 7);
        let y = sample(&ring, 13);
        let mut host: Vec<u64> = [x.flat(), y.flat()].concat();
        let mut host_sim = host.clone();
        let mut cpu = CpuBackend::default();
        let mut sim = SimBackend::titan_v();
        cpu.forward_batch(&plan, LimbBatch::new(&mut host, 16, 3));
        sim.forward_batch(&plan, LimbBatch::new(&mut host_sim, 16, 3));
        assert_eq!(host, host_sim);
    }

    #[test]
    fn tables_upload_once_per_plan() {
        let ring = ring(16, 2);
        let plan = RingPlan::new(&ring);
        let mut sim = SimBackend::titan_v();
        let mut x = sample(&ring, 3);
        sim.forward_batch(&plan, LimbBatch::from_poly(&mut x));
        let after_first = sim.with_gpu(|g| g.gmem.allocated_words());
        sim.inverse_batch(&plan, LimbBatch::from_poly(&mut x));
        sim.forward_batch(&plan, LimbBatch::from_poly(&mut x));
        assert_eq!(
            sim.with_gpu(|g| g.gmem.allocated_words()),
            after_first,
            "repeat calls must reuse device tables and data buffers"
        );
    }

    #[test]
    fn host_batch_calls_pay_roundtrip_transfers() {
        // The pre-residency behavior, now *measured*: every host-batch
        // trait call costs one upload and one download.
        let ring = ring(16, 2);
        let plan = RingPlan::new(&ring);
        let mut sim = SimBackend::titan_v();
        let mut x = sample(&ring, 3);
        sim.forward_batch(&plan, LimbBatch::from_poly(&mut x));
        let t0 = sim.transfer_stats();
        sim.forward_batch(&plan, LimbBatch::from_poly(&mut x));
        let dt = sim.transfer_stats().since(&t0);
        assert_eq!(dt.uploads, 1);
        assert_eq!(dt.downloads, 1);
    }

    #[test]
    fn smem_routing_matches_radix2_and_cpu() {
        // Above the SMEM floor the forward path routes through the
        // two-kernel implementation; results must stay bit-exact with the
        // radix-2 route and the CPU reference.
        let ring = ring(512, 2);
        let plan = RingPlan::new(&ring);
        let x = sample(&ring, 21);

        let mut cpu = CpuBackend::default();
        let mut fc = x.clone();
        cpu.forward_batch(&plan, LimbBatch::from_poly(&mut fc));

        let mut sim = SimBackend::titan_v();
        let mut fs = x.clone();
        sim.forward_batch(&plan, LimbBatch::from_poly(&mut fs));
        assert_eq!(fc.flat(), fs.flat(), "auto-routed forward");

        // The auto route above the floor must actually be SMEM: its trace
        // contains the two smem kernels rather than log2(N) stage
        // launches.
        let launches: Vec<String> =
            sim.with_gpu(|g| g.trace.iter().map(|l| l.launch.label.clone()).collect());
        assert!(
            launches.iter().any(|l| l.starts_with("smem-k1-")),
            "expected smem routing in {launches:?}"
        );
    }

    #[test]
    fn forked_backends_share_device_memory_and_tables() {
        let ring = ring(16, 2);
        let plan = RingPlan::new(&ring);
        let mut sim = SimBackend::titan_v();
        let mut x = sample(&ring, 3);
        sim.forward_batch(&plan, LimbBatch::from_poly(&mut x));
        let words = sim.with_gpu(|g| g.gmem.allocated_words());
        let mut forked = sim.fork();
        assert!(ntt_core::backend::same_memory(
            &sim.memory(),
            &forked.memory()
        ));
        // The fork reuses the shared tables (no re-upload) but allocates
        // its own staging buffer.
        let mut y = sample(&ring, 4);
        forked.forward_batch(&plan, LimbBatch::from_poly(&mut y));
        let words_after = sim.with_gpu(|g| g.gmem.allocated_words());
        assert_eq!(words_after, words + x.flat().len());
    }

    #[test]
    fn resident_elementwise_ops_match_cpu_reference() {
        let ring = ring(32, 3);
        let mut sim_ev = Evaluator::with_backend(&ring, Box::new(SimBackend::titan_v()));
        let mut cpu_ev = Evaluator::cpu(&ring);
        let a = sample(&ring, 9);
        let b = sample(&ring, 17);

        let (mut ca, mut cb) = (a.clone(), b.clone());
        cpu_ev.to_evaluation(&mut ca);
        cpu_ev.to_evaluation(&mut cb);
        cpu_ev.mul_pointwise(&mut ca, &cb);
        cpu_ev.add_assign(&mut ca, &cb);
        cpu_ev.sub_assign(&mut ca, &cb);
        cpu_ev.negate(&mut ca);
        cpu_ev.to_coefficient(&mut ca);

        let (mut sa, mut sb) = (a.clone(), b.clone());
        sim_ev.make_resident(&mut sa);
        sim_ev.make_resident(&mut sb);
        // Warm-up round trip: uploads the plan tables (the one-time part
        // of the "initial upload") before the steady-state window opens.
        sim_ev.to_evaluation(&mut sa);
        sim_ev.to_coefficient(&mut sa);
        let before = sim_ev.transfer_stats();
        sim_ev.to_evaluation(&mut sa);
        sim_ev.to_evaluation(&mut sb);
        sim_ev.mul_pointwise(&mut sa, &sb);
        sim_ev.add_assign(&mut sa, &sb);
        sim_ev.sub_assign(&mut sa, &sb);
        sim_ev.negate(&mut sa);
        sim_ev.to_coefficient(&mut sa);
        assert_eq!(
            sim_ev.transfer_stats().since(&before).host_transfers(),
            0,
            "resident chain crosses the bus"
        );
        sa.sync();
        assert_eq!(sa, ca);
    }

    #[test]
    fn resident_automorphism_matches_host() {
        let ring = ring(32, 3);
        for g in [1u64, 3, 5, 63, 2 * 32 - 1] {
            let x = sample(&ring, 27);
            let mut cpu_ev = Evaluator::cpu(&ring);
            let mut host = x.clone();
            cpu_ev.automorphism(&mut host, g);
            let mut ev = Evaluator::with_backend(&ring, Box::new(SimBackend::titan_v()));
            let mut dev = x.clone();
            ev.make_resident(&mut dev);
            // Warm-up: uploads the plan tables (the one-time part of the
            // "initial upload") before the steady-state window opens.
            ev.automorphism(&mut dev, 1);
            let before = ev.transfer_stats();
            ev.automorphism(&mut dev, g);
            assert_eq!(
                ev.transfer_stats().since(&before).host_transfers(),
                0,
                "resident automorphism crosses the bus (g={g})"
            );
            dev.sync();
            assert_eq!(dev, host, "g={g}");
        }
    }

    #[test]
    fn resident_modraise_matches_host() {
        let ring = ring(32, 4);
        let x = sample(&ring, 41);
        let mut cpu_ev = Evaluator::cpu(&ring);
        let mut low = x.clone();
        cpu_ev.drop_level(&mut low, 1);
        let mut host_low = low.clone();
        let host = cpu_ev.mod_raise(&mut host_low, 4);

        let mut ev = Evaluator::with_backend(&ring, Box::new(SimBackend::titan_v()));
        let mut dev_low = low.clone();
        ev.make_resident(&mut dev_low);
        // Warm-up launch uploads the plan tables before the window opens.
        ev.automorphism(&mut dev_low, 1);
        let before = ev.transfer_stats();
        let mut dev = ev.mod_raise(&mut dev_low, 4);
        assert_eq!(
            ev.transfer_stats().since(&before).host_transfers(),
            0,
            "resident mod-raise crosses the bus"
        );
        dev.sync();
        assert_eq!(dev, host);
    }

    #[test]
    fn resident_rescale_matches_host() {
        let ring = ring(32, 3);
        let mut ev = Evaluator::with_backend(&ring, Box::new(SimBackend::titan_v()));
        let x = sample(&ring, 31);
        let mut host = x.clone();
        host.rescale(&ring);
        let mut dev = x.clone();
        ev.make_resident(&mut dev);
        ev.rescale(&mut dev);
        dev.sync();
        assert_eq!(dev, host);
    }

    /// A backend with the forward route pinned to the hierarchical
    /// implementation for one shape (bypasses the process-global
    /// `NTT_WARP_SIM_FORWARD` OnceLock so tests stay independent).
    fn hier_pinned(n: usize, n1: usize) -> SimBackend {
        let sim = SimBackend::titan_v();
        let choice = ForwardImpl::Hier { n1 };
        sim.split_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(
                n,
                ShapeChoice {
                    auto: choice,
                    best_smem: choice,
                    best_hier: choice,
                },
            );
        sim
    }

    #[test]
    fn hier_routing_matches_cpu_at_bootstrap_scale() {
        // The full trait path through the 3-kernel hierarchical plan at
        // N = 2^16 — twist upload, scratch acquire/release, forward —
        // must stay bit-exact with the CPU reference, and the trace must
        // actually contain the hier kernels.
        let n = 1 << 16;
        let ring = ring(n, 2);
        let plan = RingPlan::new(&ring);
        let x = sample(&ring, 77);

        let mut fc = x.clone();
        CpuBackend::default().forward_batch(&plan, LimbBatch::from_poly(&mut fc));

        let mut sim = hier_pinned(n, 256);
        let mut fs = x.clone();
        sim.forward_batch(&plan, LimbBatch::from_poly(&mut fs));
        assert_eq!(fc.flat(), fs.flat(), "hier-routed forward");

        let launches: Vec<String> =
            sim.with_gpu(|g| g.trace.iter().map(|l| l.launch.label.clone()).collect());
        for k in ["hier-col-256", "hier-twt", "hier-row-256"] {
            assert!(
                launches.iter().any(|l| l == k),
                "missing {k} in {launches:?}"
            );
        }

        // And the inverse (radix-2) undoes it.
        sim.inverse_batch(&plan, LimbBatch::from_poly(&mut fs));
        assert_eq!(fs.flat(), x.flat(), "roundtrip through hier forward");
    }

    #[test]
    fn hier_scratch_recycling_keeps_readiness_map_bounded() {
        // Satellite (f): repeated hier forwards acquire and release the
        // transpose scratch every call. The consumed-on-acquire protocol
        // must keep the per-base readiness map bounded instead of leaking
        // one event per launch.
        let n = 1 << 12;
        let ring = ring(n, 1);
        let plan = RingPlan::new(&ring);
        let mut sim = hier_pinned(n, 64);
        let mut x = sample(&ring, 5);
        sim.forward_batch(&plan, LimbBatch::from_poly(&mut x));
        let baseline = sim.lock().readiness_entries();
        for _ in 0..32 {
            sim.forward_batch(&plan, LimbBatch::from_poly(&mut x));
        }
        let after = sim.lock().readiness_entries();
        assert!(
            after <= baseline + 1,
            "readiness map grew {baseline} -> {after} across 32 hier forwards"
        );
    }

    #[test]
    fn auto_calibration_includes_hier_candidates() {
        // The sweep itself (no pin, no env): calibrating a large shape
        // must produce a feasible hierarchical winner in `best_hier` and
        // leave `auto` pointing at *some* modeled-time winner that stays
        // bit-exact (checked via the normal forward path).
        let config = GpuConfig::titan_v();
        let n = 1 << 13;
        let choice = calibrate_forward_choice(&config, n, 2);
        match choice.best_hier {
            ForwardImpl::Hier { n1 } => {
                assert!(n1.is_power_of_two() && n1 >= 2 && n1 <= n / 2);
            }
            other => panic!("expected a hier split for N=2^13, got {other:?}"),
        }

        let ring = ring(n, 2);
        let plan = RingPlan::new(&ring);
        let x = sample(&ring, 19);
        let mut fc = x.clone();
        CpuBackend::default().forward_batch(&plan, LimbBatch::from_poly(&mut fc));
        let mut sim = SimBackend::titan_v();
        let mut fs = x.clone();
        sim.forward_batch(&plan, LimbBatch::from_poly(&mut fs));
        assert_eq!(fc.flat(), fs.flat(), "auto-routed forward at N=2^13");
    }
}
