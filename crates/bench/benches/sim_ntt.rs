//! Simulator-throughput benchmarks: how fast the warp-level functional
//! model executes each kernel family (host wall-clock, not modeled GPU
//! time — the modeled times are the `figures` binary's output).

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{Gpu, GpuConfig};
use ntt_gpu::radix2::ModMul;
use ntt_gpu::smem::SmemConfig;
use ntt_gpu::{batch::DeviceBatch, high_radix, radix2, smem};

const LOG_N: u32 = 10;
const NP: usize = 2;

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator_throughput");
    g.sample_size(10);

    g.bench_function("radix2_n1024_np2", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::titan_v());
            let batch = DeviceBatch::sequential(&mut gpu, LOG_N, NP, 60).unwrap();
            radix2::run(&mut gpu, &batch, ModMul::Shoup)
        })
    });

    g.bench_function("high_radix16_n1024_np2", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::titan_v());
            let batch = DeviceBatch::sequential(&mut gpu, LOG_N, NP, 60).unwrap();
            high_radix::run(&mut gpu, &batch, 16)
        })
    });

    g.bench_function("smem_32x32_t8_n1024_np2", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::titan_v());
            let batch = DeviceBatch::sequential(&mut gpu, LOG_N, NP, 60).unwrap();
            smem::run(&mut gpu, &batch, &SmemConfig::new(32))
        })
    });

    g.bench_function("smem_ot2_n1024_np2", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::titan_v());
            let batch = DeviceBatch::sequential(&mut gpu, LOG_N, NP, 60).unwrap();
            smem::run(&mut gpu, &batch, &SmemConfig::new(32).ot_stages(2))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
