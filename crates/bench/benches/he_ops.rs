//! Wall-clock benchmarks of the HE layer — the workload whose NTT share
//! motivates the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use he_lite::{sampling, HeContext, HeLiteParams};
use std::hint::black_box;

fn params() -> HeLiteParams {
    HeLiteParams {
        log_n: 11,
        prime_bits: 55,
        levels: 3,
        scale_bits: 50,
        gadget_bits: 12,
        error_eta: 6,
    }
}

fn bench_he(c: &mut Criterion) {
    let ctx = HeContext::new(params()).unwrap();
    let mut rng = sampling::seeded_rng(11);
    let keys = ctx.keygen(&mut rng);
    let pt_a = ctx.encode(&[1.5, 2.5, -3.0]);
    let pt_b = ctx.encode(&[0.5, -1.0, 2.0]);
    let ct_a = ctx.encrypt(&pt_a, &keys.public, &mut rng);
    let ct_b = ctx.encrypt(&pt_b, &keys.public, &mut rng);

    let mut g = c.benchmark_group("he_lite_n2048_l3");
    g.sample_size(10);

    g.bench_function("encrypt", |b| {
        let mut rng = sampling::seeded_rng(12);
        b.iter(|| ctx.encrypt(black_box(&pt_a), &keys.public, &mut rng))
    });

    g.bench_function("decrypt", |b| {
        b.iter(|| ctx.decrypt(black_box(&ct_a), &keys.secret))
    });

    g.bench_function("add", |b| b.iter(|| ctx.add(black_box(&ct_a), &ct_b)));

    g.bench_function("multiply_relinearize_rescale", |b| {
        b.iter(|| ctx.multiply(black_box(&ct_a), &ct_b, &keys.relin))
    });

    g.bench_function("forward_ntt_all_primes", |b| {
        let ring = ctx.ring();
        let poly = sampling::uniform_poly(ring, &mut sampling::seeded_rng(13));
        b.iter(|| {
            let mut p = poly.clone();
            p.to_evaluation(ring);
            p
        })
    });

    g.finish();
}

criterion_group!(benches, bench_he);
criterion_main!(benches);
