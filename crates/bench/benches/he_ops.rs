//! Wall-clock benchmarks of the HE layer — the workload whose NTT share
//! motivates the paper — plus the device-resident `SimBackend` chain,
//! whose steady-state transfer count is recorded as a pseudo-benchmark so
//! `bench_guard` can gate residency regressions
//! (`steady_transfers_plus_one <= 1.0 * unit` holds iff transfers == 0).

use criterion::{criterion_group, criterion_main, Criterion};
use he_lite::{sampling, HeContext, HeLiteParams};
use ntt_gpu::SimBackend;
use std::hint::black_box;
use std::io::Write as _;

/// Append a non-timing value to the `CRITERION_JSON` recording in the
/// same `{"id", "ns_per_iter"}` shape the criterion shim writes, so
/// `bench_guard` ratio gates can reference it like any benchmark.
fn record_value(id: &str, value: f64) {
    println!("bench: {id:<48} {value:>14.1} (recorded value)");
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(
                f,
                "{{\"id\": \"{id}\", \"ns_per_iter\": {value:.1}, \"iters\": 1}}"
            );
        }
    }
}

fn params() -> HeLiteParams {
    HeLiteParams {
        log_n: 11,
        prime_bits: 55,
        levels: 3,
        scale_bits: 50,
        gadget_bits: 12,
        error_eta: 6,
    }
}

fn bench_he(c: &mut Criterion) {
    let ctx = HeContext::new(params()).unwrap();
    let mut rng = sampling::seeded_rng(11);
    let keys = ctx.keygen(&mut rng);
    let pt_a = ctx.encode(&[1.5, 2.5, -3.0]);
    let pt_b = ctx.encode(&[0.5, -1.0, 2.0]);
    let ct_a = ctx.encrypt(&pt_a, &keys.public, &mut rng);
    let ct_b = ctx.encrypt(&pt_b, &keys.public, &mut rng);

    let mut g = c.benchmark_group("he_lite_n2048_l3");
    g.sample_size(10);

    g.bench_function("encrypt", |b| {
        let mut rng = sampling::seeded_rng(12);
        b.iter(|| ctx.encrypt(black_box(&pt_a), &keys.public, &mut rng))
    });

    g.bench_function("decrypt", |b| {
        b.iter(|| ctx.decrypt(black_box(&ct_a), &keys.secret))
    });

    g.bench_function("add", |b| b.iter(|| ctx.add(black_box(&ct_a), &ct_b)));

    g.bench_function("multiply_relinearize_rescale", |b| {
        b.iter(|| ctx.multiply(black_box(&ct_a), &ct_b, &keys.relin))
    });

    g.bench_function("forward_ntt_all_primes", |b| {
        let ring = ctx.ring();
        let poly = sampling::uniform_poly(ring, &mut sampling::seeded_rng(13));
        b.iter(|| {
            let mut p = poly.clone();
            p.to_evaluation(ring);
            p
        })
    });

    g.finish();
}

/// The device-resident chain on the simulated GPU: times the resident
/// multiply and records the steady-state transfer count for the residency
/// gate.
fn bench_he_sim_resident(c: &mut Criterion) {
    let params = HeLiteParams {
        log_n: 8,
        prime_bits: 50,
        levels: 3,
        scale_bits: 46,
        gadget_bits: 10,
        error_eta: 6,
    };
    let ctx = HeContext::with_backend(params, Box::new(SimBackend::titan_v())).unwrap();
    let mut rng = sampling::seeded_rng(21);
    let keys = ctx.keygen(&mut rng);
    let ct_a = ctx.encrypt(&ctx.encode(&[1.5, 2.5]), &keys.public, &mut rng);
    let ct_b = ctx.encrypt(&ctx.encode(&[0.5, -1.0]), &keys.public, &mut rng);

    let mut g = c.benchmark_group("he_lite_sim_n256_l3");
    g.bench_function("multiply_resident", |b| {
        b.iter(|| ctx.multiply(black_box(&ct_a), &ct_b, &keys.relin))
    });
    g.finish();

    // Residency gate inputs: one steady-state multiply after everything
    // is warm must cross the bus zero times.
    let before = ctx.transfer_stats();
    let _ = ctx.multiply(&ct_a, &ct_b, &keys.relin);
    let steady = ctx.transfer_stats().since(&before).host_transfers();
    record_value(
        "he_lite_sim_n256_l3/steady_transfers_plus_one",
        (steady + 1) as f64,
    );
    record_value("he_lite_sim_n256_l3/unit", 1.0);
}

/// The stream scheduler's overlap gate inputs: 4 pooled evaluators on 4
/// streams run independent encrypt → multiply → rescale chains; the
/// overlapped modeled device time must undercut the serialized schedule
/// by ≥ 1.3× (`overlapped <= 0.77 * serialized` in `bench_smoke.sh`).
/// Values are modeled nanoseconds from one deterministic run, so the
/// gate holds on any host.
fn bench_sim_streams(_c: &mut Criterion) {
    let r = ntt_bench::experiments::streams(8, 4);
    record_value(
        "sim_streams_4ev/overlapped_device_time",
        r.timeline.overlapped_s * 1e9,
    );
    record_value(
        "sim_streams_4ev/serialized_device_time",
        r.timeline.serialized_s * 1e9,
    );
    println!(
        "bench: sim_streams_4ev overlap = {:.2}x over {} launches",
        r.overlap(),
        r.timeline.launches
    );
}

/// The request batcher's gate inputs: the same 8 encrypt → eval →
/// decrypt serving jobs dispatched through the he-serve batcher once as
/// three flat group calls and once one job at a time. Batched modeled
/// device time must undercut the unbatched control by ≥ 1.5×
/// (`batched <= 0.667 * unbatched` in `bench_smoke.sh`). Both sides are
/// modeled nanoseconds from one deterministic run, so the gate holds on
/// any host.
fn bench_serve_batching(_c: &mut Criterion) {
    let r = ntt_bench::experiments::serve_batching(6, 8);
    record_value(
        "he_serve_sim/batched_device_time",
        r.batched.serialized_s * 1e9,
    );
    record_value(
        "he_serve_sim/unbatched_device_time",
        r.unbatched.serialized_s * 1e9,
    );
    println!(
        "bench: he_serve_sim batching = {:.2}x over {} jobs",
        r.speedup(),
        r.jobs
    );
}

/// The fault plane's zero-fault overhead gate inputs: the same jobs
/// through the fallible serve pipelines with the plane disarmed vs
/// armed with all-zero rates. The armed modeled device time must stay
/// within 5% of off (`fault_plane_armed_zero_device_time <= 1.05 *
/// fault_plane_off_device_time` in `bench_smoke.sh`) — the fault checks
/// are bookkeeping only and must never reach the modeled timeline when
/// no fault fires.
fn bench_serve_fault_overhead(_c: &mut Criterion) {
    let r = ntt_bench::experiments::serve_fault_overhead(6, 8);
    record_value(
        "he_serve_sim/fault_plane_off_device_time",
        r.off.serialized_s * 1e9,
    );
    record_value(
        "he_serve_sim/fault_plane_armed_zero_device_time",
        r.armed.serialized_s * 1e9,
    );
    println!(
        "bench: he_serve_sim fault plane overhead = {:.4}x over {} jobs",
        r.overhead(),
        r.jobs
    );
}

/// The flagship bootstrap workload's gate inputs: one steady-state
/// CKKS-style bootstrap on the simulated device, with modeled device
/// time split by kernel class. Two gates in `bench_smoke.sh`:
///
/// * op-mix — NTT + key-switch kernels carry ≥ 60% of the modeled
///   device time (`total_device_time <= 1.6667 *
///   ntt_keyswitch_device_time`), the paper's motivating measurement;
/// * residency — the steady-state bootstrap moves zero words across
///   the bus (`steady_transfers_plus_one <= 1.0 * unit`).
///
/// Both sides of each gate come from one deterministic modeled run, so
/// they hold on any host.
fn bench_bootstrap(_c: &mut Criterion) {
    let r = ntt_bench::experiments::bootstrap(4);
    record_value("he_boot_sim/total_device_time", r.total_s() * 1e9);
    record_value(
        "he_boot_sim/ntt_keyswitch_device_time",
        (r.ntt.time_s + r.key_switch.time_s) * 1e9,
    );
    record_value(
        "he_boot_sim/steady_transfers_plus_one",
        (r.steady.host_transfers() + 1) as f64,
    );
    record_value("he_boot_sim/unit", 1.0);
    println!(
        "bench: he_boot_sim op-mix = {:.1}% NTT+key-switch over {} launches",
        r.ntt_keyswitch_share() * 100.0,
        r.ntt.launches + r.key_switch.launches + r.pointwise.launches
    );
}

/// The hierarchical 4-step NTT's gate inputs: modeled device time at the
/// bootstrapping-scale ring vs the single-kernel family. Two gates in
/// `bench_smoke.sh`:
///
/// * at N = 2¹⁶ the 3-kernel 4-step plan must not exceed the best
///   single fused-SMEM kernel's cost extrapolated from N = 2¹³ by its
///   `c · N log N` scaling law (`four_step_device_time <= 1.0 *
///   single_kernel_extrapolated_device_time`);
/// * at N = 2¹³ the backend's auto-routed forward (calibrated over
///   radix-2, fused-SMEM and hierarchical candidates) stays within 5%
///   of the best single fused kernel (`auto_device_time <= 1.05 *
///   best_single_kernel_device_time`) — the 4-step rollout cannot
///   regress mid-size rings.
///
/// All values are modeled time from one deterministic run, so the gates
/// hold on any host.
fn bench_ntt_hier(_c: &mut Criterion) {
    let r = ntt_bench::experiments::hier_bench(13, 16, 2);
    record_value(
        "ntt_hier_n65536/four_step_device_time",
        r.four_step_big_us * 1e3,
    );
    record_value(
        "ntt_hier_n65536/single_kernel_extrapolated_device_time",
        r.single_extrapolated_big_us * 1e3,
    );
    record_value("ntt_hier_n8192/auto_device_time", r.auto_small_us * 1e3);
    record_value(
        "ntt_hier_n8192/best_single_kernel_device_time",
        r.best_single_small_us * 1e3,
    );
    println!(
        "bench: ntt_hier 4-step {}x{} at 2^{} = {:.1} us vs extrapolated single-kernel {:.1} us",
        r.split_big,
        (1usize << r.log_big) / r.split_big,
        r.log_big,
        r.four_step_big_us,
        r.single_extrapolated_big_us
    );
}

/// The multi-device sharding gate inputs: modeled device time for the
/// same deep-chain multiply/relinearize/rescale job on K = 4 simulated
/// devices vs a single device, at a bootstrapping-adjacent ring
/// (N = 2¹⁵, 16 levels — scaling efficiency is a function of work per
/// launch, so the gate runs where the kernels are row-work-bound; see
/// `experiments::sharding_params`). One gate in `bench_smoke.sh`:
///
/// * `ntt_sharded/k4_device_time <= 0.45 * ntt_sharded/k1_device_time`
///   — the 4-way RNS row partition must convert to real modeled
///   speedup through the key-switch all-gather traffic, not just
///   divide the row counts.
///
/// The sweep itself asserts every configuration decrypts bit-identical
/// to the CPU reference, so the gate cannot pass on a partition that
/// broke the math. Both sides are modeled time from one deterministic
/// run, so the gate holds on any host.
fn bench_sharding(_c: &mut Criterion) {
    let sweep = ntt_bench::experiments::sharding(15, 16, 1, &[1, 4]);
    let time_of = |k: usize| {
        sweep
            .reports
            .iter()
            .find(|r| r.shards == k)
            .expect("sweep ran this shard count")
            .timeline
            .overlapped_s
    };
    let (t1, t4) = (time_of(1), time_of(4));
    record_value("ntt_sharded/k1_device_time", t1 * 1e9);
    record_value("ntt_sharded/k4_device_time", t4 * 1e9);
    println!(
        "bench: ntt_sharded K=4 {:.1} us vs K=1 {:.1} us modeled device time ({:.2}x)",
        t4 * 1e6,
        t1 * 1e6,
        t4 / t1.max(f64::MIN_POSITIVE)
    );
}

criterion_group!(
    benches,
    bench_he,
    bench_he_sim_resident,
    bench_sim_streams,
    bench_serve_batching,
    bench_serve_fault_overhead,
    bench_bootstrap,
    bench_ntt_hier,
    bench_sharding
);
criterion_main!(benches);
