//! Wall-clock comparison of modular-multiplication strategies (the
//! CPU-side counterpart of the paper's Fig. 1).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ntt_math::{mont::Montgomery, Barrett, ShoupMul};
use std::hint::black_box;

// Largest 60-bit prime ≡ 1 (mod 2^18): NTT-friendly at the paper's
// headline N = 2^17. (The seed used (1<<59)+21 here, which is composite.)
const P: u64 = 0x0FFF_FFFF_FFFC_0001;

fn operands() -> Vec<u64> {
    (0..4096u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % P)
        .collect()
}

fn bench_modmul(c: &mut Criterion) {
    let xs = operands();
    let w = 0x0123_4567_89AB_CDEF % P;
    let shoup = ShoupMul::new(w, P);
    let barrett = Barrett::new(P);
    let mont = Montgomery::new(P);
    let w_mont = mont.to_mont(w);

    let mut g = c.benchmark_group("modmul_4096ops");
    g.sample_size(20);

    g.bench_function("native_u128_rem", |b| {
        b.iter_batched(
            || xs.clone(),
            |xs| {
                let mut acc = 0u64;
                for &x in &xs {
                    acc ^= ntt_math::mul_mod(black_box(x), w, P);
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("shoup", |b| {
        b.iter_batched(
            || xs.clone(),
            |xs| {
                let mut acc = 0u64;
                for &x in &xs {
                    acc ^= shoup.mul(black_box(x));
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("barrett", |b| {
        b.iter_batched(
            || xs.clone(),
            |xs| {
                let mut acc = 0u64;
                for &x in &xs {
                    acc ^= barrett.mul(black_box(x), w);
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("montgomery", |b| {
        b.iter_batched(
            || xs.iter().map(|&x| mont.to_mont(x)).collect::<Vec<_>>(),
            |xs| {
                let mut acc = 0u64;
                for &x in &xs {
                    acc ^= mont.mul(black_box(x), w_mont);
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });

    g.finish();
}

criterion_group!(benches, bench_modmul);
criterion_main!(benches);
