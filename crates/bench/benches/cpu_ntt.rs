//! Wall-clock benchmarks of the scalar transform implementations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntt_core::{ct, radix, stockham, NttTable};
use std::hint::black_box;

fn input(n: usize, p: u64) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x2545_F491_4F6C_DD1D) % p)
        .collect()
}

fn bench_forward_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_forward_ntt");
    g.sample_size(20);
    for log_n in [10u32, 12, 14] {
        let n = 1usize << log_n;
        let table = NttTable::new_with_bits(n, 60).unwrap();
        let a = input(n, table.modulus());

        g.bench_with_input(BenchmarkId::new("ct_strict", log_n), &a, |b, a| {
            b.iter(|| {
                let mut x = a.clone();
                ct::ntt(black_box(&mut x), &table);
                x
            })
        });
        g.bench_with_input(BenchmarkId::new("ct_lazy", log_n), &a, |b, a| {
            b.iter(|| {
                let mut x = a.clone();
                ct::ntt_lazy(black_box(&mut x), &table);
                x
            })
        });
        g.bench_with_input(BenchmarkId::new("stockham", log_n), &a, |b, a| {
            b.iter(|| stockham::stockham_ntt(black_box(a), &table))
        });
        g.bench_with_input(BenchmarkId::new("high_radix_16", log_n), &a, |b, a| {
            b.iter(|| {
                let mut x = a.clone();
                radix::high_radix_ntt(black_box(&mut x), &table, 16);
                x
            })
        });
    }
    g.finish();
}

fn bench_roundtrip_and_multiply(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_ntt_pipeline");
    g.sample_size(20);
    let n = 1 << 12;
    let ring = ntt_core::NegacyclicRing::new_with_bits(n, 60).unwrap();
    let table = NttTable::new_with_bits(n, 60).unwrap();
    let a = input(n, table.modulus());

    g.bench_function("ntt_intt_roundtrip_4096", |b| {
        b.iter(|| {
            let mut x = a.clone();
            ct::ntt(&mut x, &table);
            ct::intt(&mut x, &table);
            x
        })
    });

    let pa = ntt_core::Polynomial::from_coeffs(a.clone(), n);
    let pb = ntt_core::Polynomial::from_coeffs(input(n, ring.modulus()), n);
    g.bench_function("negacyclic_multiply_4096", |b| {
        b.iter(|| ring.multiply(black_box(&pa), black_box(&pb)))
    });

    g.finish();
}

criterion_group!(
    benches,
    bench_forward_variants,
    bench_roundtrip_and_multiply
);
criterion_main!(benches);
