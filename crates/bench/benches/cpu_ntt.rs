//! Wall-clock benchmarks of the scalar transform implementations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntt_core::engine::{NttExecutor, ThreadPolicy};
use ntt_core::{ct, radix, stockham, NttTable, RnsPoly, RnsRing};
use std::hint::black_box;

fn input(n: usize, p: u64) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x2545_F491_4F6C_DD1D) % p)
        .collect()
}

fn bench_forward_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_forward_ntt");
    g.sample_size(20);
    for log_n in [10u32, 12, 14] {
        let n = 1usize << log_n;
        let table = NttTable::new_with_bits(n, 60).unwrap();
        let a = input(n, table.modulus());

        g.bench_with_input(BenchmarkId::new("ct_strict", log_n), &a, |b, a| {
            b.iter(|| {
                let mut x = a.clone();
                ct::ntt(black_box(&mut x), &table);
                x
            })
        });
        g.bench_with_input(BenchmarkId::new("ct_lazy", log_n), &a, |b, a| {
            b.iter(|| {
                let mut x = a.clone();
                ct::ntt_lazy(black_box(&mut x), &table);
                x
            })
        });
        g.bench_with_input(BenchmarkId::new("stockham", log_n), &a, |b, a| {
            b.iter(|| stockham::stockham_ntt(black_box(a), &table))
        });
        g.bench_with_input(BenchmarkId::new("high_radix_16", log_n), &a, |b, a| {
            b.iter(|| {
                let mut x = a.clone();
                radix::high_radix_ntt(black_box(&mut x), &table, 16);
                x
            })
        });
    }
    g.finish();
}

fn bench_roundtrip_and_multiply(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_ntt_pipeline");
    g.sample_size(20);
    let n = 1 << 12;
    let ring = ntt_core::NegacyclicRing::new_with_bits(n, 60).unwrap();
    let table = NttTable::new_with_bits(n, 60).unwrap();
    let a = input(n, table.modulus());

    g.bench_function("ntt_intt_roundtrip_4096", |b| {
        b.iter(|| {
            let mut x = a.clone();
            ct::ntt(&mut x, &table);
            ct::intt(&mut x, &table);
            x
        })
    });

    let pa = ntt_core::Polynomial::from_coeffs(a.clone(), n);
    let pb = ntt_core::Polynomial::from_coeffs(input(n, ring.modulus()), n);
    // `ring.multiply` now routes through the fused lazy engine; the seed's
    // strict pipeline is benchmarked alongside for an in-run comparison.
    g.bench_function("negacyclic_multiply_4096", |b| {
        b.iter(|| ring.multiply(black_box(&pa), black_box(&pb)))
    });
    g.bench_function("negacyclic_multiply_strict_4096", |b| {
        b.iter(|| {
            let mut na = pa.coeffs().to_vec();
            let mut nb = pb.coeffs().to_vec();
            ct::ntt(&mut na, &table);
            ct::ntt(&mut nb, &table);
            let mut prod: Vec<u64> = na
                .iter()
                .zip(&nb)
                .map(|(&x, &y)| ntt_math::mul_mod(x, y, table.modulus()))
                .collect();
            ct::intt(&mut prod, &table);
            prod
        })
    });

    g.finish();
}

/// The paper's batched workload shape: one RNS polynomial product over
/// `np = 8` primes at `N = 2^13` — strict legacy pipeline (the seed code
/// path: clone, per-stage reduction, `u128 %` pointwise) vs the fused
/// lazy engine, single-threaded and residue-parallel.
fn bench_rns_multiply(c: &mut Criterion) {
    let mut g = c.benchmark_group("rns_multiply_n8192_np8");
    g.sample_size(10);
    let n = 1usize << 13;
    let np = 8;
    let primes = ntt_math::ntt_primes(55, 2 * n as u64, np);
    let ring = RnsRing::new(n, primes.clone()).unwrap();
    let mut a = RnsPoly::zero(&ring);
    let mut b = RnsPoly::zero(&ring);
    for (i, &p) in primes.iter().enumerate() {
        a.row_mut(i).copy_from_slice(&input(n, p));
        let mut rhs = input(n, p);
        rhs.reverse();
        b.row_mut(i).copy_from_slice(&rhs);
    }

    g.bench_function("strict_legacy", |bch| {
        bch.iter(|| {
            let mut out = RnsPoly::zero(&ring);
            for i in 0..np {
                let t = ring.ring(i).table();
                let mut na = a.row(i).to_vec();
                let mut nb = b.row(i).to_vec();
                ct::ntt(&mut na, t);
                ct::ntt(&mut nb, t);
                let mut prod: Vec<u64> = na
                    .iter()
                    .zip(&nb)
                    .map(|(&x, &y)| ntt_math::mul_mod(x, y, t.modulus()))
                    .collect();
                ct::intt(&mut prod, t);
                out.row_mut(i).copy_from_slice(&prod);
            }
            out
        })
    });

    let mut ex1 = NttExecutor::new(ThreadPolicy::Single);
    let mut out = RnsPoly::zero(&ring);
    g.bench_function("fused_1thread", |bch| {
        bch.iter(|| {
            ex1.rns_multiply_into(&ring, black_box(&a), black_box(&b), &mut out);
            out.row(0)[0]
        })
    });

    let mut exn = NttExecutor::new(ThreadPolicy::Auto);
    g.bench_function("fused_auto_threads", |bch| {
        bch.iter(|| {
            exn.rns_multiply_into(&ring, black_box(&a), black_box(&b), &mut out);
            out.row(0)[0]
        })
    });

    g.finish();
}

criterion_group!(
    benches,
    bench_forward_variants,
    bench_roundtrip_and_multiply,
    bench_rns_multiply
);
criterion_main!(benches);
