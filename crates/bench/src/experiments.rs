//! The experiments behind every figure and table in the paper.

use gpu_sim::{Gpu, GpuConfig};
use ntt_gpu::backend::SimMemory;
use ntt_gpu::batch::DeviceBatch;
use ntt_gpu::dft::DftBatch;
use ntt_gpu::fpga_baseline::FpgaNtt;
use ntt_gpu::ot::DeviceOt;
use ntt_gpu::radix2::ModMul;
use ntt_gpu::smem::SmemConfig;
use ntt_gpu::{dft, high_radix, radix2, smem, RunReport};

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Configuration label.
    pub label: String,
    /// Total modeled time for the whole batch, microseconds.
    pub time_us: f64,
    /// Time per transform (total / np), microseconds.
    pub per_ntt_us: f64,
    /// DRAM traffic (including spills), megabytes.
    pub dram_mb: f64,
    /// Achieved DRAM bandwidth utilization (fraction of peak).
    pub utilization: f64,
    /// Minimum occupancy across the launches.
    pub occupancy: f64,
}

fn measure(label: impl Into<String>, gpu: &Gpu, report: &RunReport, np: usize) -> Measurement {
    Measurement {
        label: label.into(),
        time_us: report.total_us(),
        per_ntt_us: report.per_ntt_us(np),
        dram_mb: report.dram_mb(gpu),
        utilization: report.dram_utilization(gpu),
        occupancy: report.min_occupancy(),
    }
}

/// A fresh simulated device **through the handle layer** ([`SimMemory`]):
/// the batch's buffers are [`ntt_core::backend::DeviceBuf`] handles with
/// counted, stream-charged staging — the same allocator the residency
/// layer uses — while the raw views still drive the kernels.
fn fresh_batch(log_n: u32, np: usize) -> (SimMemory, DeviceBatch) {
    let mut mem = SimMemory::new(GpuConfig::titan_v());
    let batch = DeviceBatch::sequential_on(&mut mem, log_n, np, 60)
        .expect("paper parameters always have valid prime chains");
    (mem, batch)
}

/// The best-performing SMEM split for a given `log N`, determined the way
/// the paper does (minimum over the Fig. 12(a) splits), per-thread size 8.
pub fn best_split(log_n: u32, np: usize, ot_stages: u32) -> (usize, Measurement) {
    let mut best: Option<(usize, Measurement)> = None;
    for n1 in SmemConfig::paper_splits(log_n) {
        let (mut mem, batch) = fresh_batch(log_n, np);
        let gpu = mem.gpu_mut();
        let cfg = SmemConfig::new(n1).ot_stages(ot_stages);
        let rep = smem::run(gpu, &batch, &cfg);
        debug_assert!(rep.verify(gpu, &batch));
        let m = measure(cfg.label(batch.n()), gpu, &rep, np);
        if best.as_ref().is_none_or(|(_, b)| m.time_us < b.time_us) {
            best = Some((n1, m));
        }
    }
    best.expect("at least one split")
}

/// Fig. 1 — Shoup's modmul vs the native modulo on the optimized NTT
/// (the paper: 332.9 µs vs 789.2 µs, 2.4×, at `N = 2^17`, `np = 45`).
pub fn fig1(log_n: u32, np: usize) -> Vec<Measurement> {
    let n1 = SmemConfig::paper_splits(log_n)[0];
    [ModMul::Shoup, ModMul::Native]
        .into_iter()
        .map(|mode| {
            let (mut mem, batch) = fresh_batch(log_n, np);
            let gpu = mem.gpu_mut();
            let cfg = SmemConfig::new(n1).modmul(mode);
            let rep = smem::run(gpu, &batch, &cfg);
            measure(
                match mode {
                    ModMul::Shoup => "Shoup",
                    ModMul::Native => "Native",
                },
                gpu,
                &rep,
                np,
            )
        })
        .collect()
}

/// Fig. 3(a) — radix-2 NTT across batch sizes: per-NTT time drops then
/// saturates while DRAM utilization climbs to ~86.7%.
pub fn fig3a(log_n: u32, batch_sizes: &[usize]) -> Vec<Measurement> {
    batch_sizes
        .iter()
        .map(|&np| {
            let (mut mem, batch) = fresh_batch(log_n, np);
            let gpu = mem.gpu_mut();
            let rep = radix2::run(gpu, &batch, ModMul::Shoup);
            measure(format!("batch {np}"), gpu, &rep, np)
        })
        .collect()
}

/// Fig. 3(b) — the same batching sweep for the radix-2 DFT.
pub fn fig3b(log_n: u32, batch_sizes: &[usize]) -> Vec<Measurement> {
    batch_sizes
        .iter()
        .map(|&np| {
            let mut gpu = Gpu::new(GpuConfig::titan_v());
            let batch = DftBatch::sequential(&mut gpu, log_n, np);
            let rep = dft::run_radix2(&mut gpu, &batch);
            debug_assert!(batch.verify(&gpu));
            measure(format!("batch {np}"), &gpu, &rep, np)
        })
        .collect()
}

/// Fig. 4(a,b,c) — NTT register-based high-radix sweep.
pub fn fig4(log_n: u32, np: usize, radices: &[usize]) -> Vec<Measurement> {
    radices
        .iter()
        .map(|&r| {
            let (mut mem, batch) = fresh_batch(log_n, np);
            let gpu = mem.gpu_mut();
            let rep = high_radix::run(gpu, &batch, r);
            measure(format!("radix-{r}"), gpu, &rep, np)
        })
        .collect()
}

/// Fig. 5(a,b,c) — DFT register-based high-radix sweep.
pub fn fig5(log_n: u32, np: usize, radices: &[usize]) -> Vec<Measurement> {
    radices
        .iter()
        .map(|&r| {
            let mut gpu = Gpu::new(GpuConfig::titan_v());
            let batch = DftBatch::sequential(&mut gpu, log_n, np);
            let rep = dft::run_high_radix(&mut gpu, &batch, r);
            measure(format!("radix-{r}"), &gpu, &rep, np)
        })
        .collect()
}

/// Fig. 7 — Kernel-1 with and without coalesced access, across Kernel-1
/// sizes. Returns (label, kernel-1 time µs) pairs: first uncoalesced,
/// then coalesced, per size.
pub fn fig7(log_n: u32, np: usize, k1_sizes: &[usize]) -> Vec<Measurement> {
    let mut out = Vec::new();
    for &n1 in k1_sizes {
        for coalesced in [false, true] {
            let (mut mem, batch) = fresh_batch(log_n, np);
            let gpu = mem.gpu_mut();
            let cfg = SmemConfig::new(n1).coalesced(coalesced);
            let rep = smem::run(gpu, &batch, &cfg);
            let k1_us = rep.launches[0].timing.total_s * 1e6;
            out.push(Measurement {
                label: format!(
                    "K1={n1} {}",
                    if coalesced {
                        "coalesced"
                    } else {
                        "uncoalesced"
                    }
                ),
                time_us: k1_us,
                per_ntt_us: k1_us / np as f64,
                dram_mb: rep.launches[0].dram_bytes(&gpu.config) as f64 / (1 << 20) as f64,
                utilization: rep.launches[0]
                    .timing
                    .dram_utilization(rep.launches[0].dram_bytes(&gpu.config), &gpu.config),
                occupancy: rep.launches[0].timing.occupancy,
            });
        }
    }
    out
}

/// Fig. 8 — relative twiddle-table vs input bytes per radix-2 stage
/// (pure accounting; returns `(stage, ratio)`).
pub fn fig8(log_n: u32) -> Vec<(u32, f64)> {
    let table = ntt_core::NttTable::new_with_bits(1 << log_n, 60).expect("valid table");
    table.relative_stage_sizes()
}

/// Fig. 8, measured: run the radix-2 stage launches and derive the same
/// ratio from counted DRAM transactions — per stage, twiddle read
/// transactions (total reads minus the one-pass data traffic) over input
/// bytes. Returns `(stage, analytic, measured)`; the two columns agree
/// exactly from the first stage whose slice-pair fills a 32-byte sector
/// (`m ≥ 4` — below that the model floors at one sector per table).
pub fn fig8_measured(log_n: u32, np: usize) -> Vec<(u32, f64, f64)> {
    let (mut mem, batch) = fresh_batch(log_n, np);
    let gpu = mem.gpu_mut();
    let n = batch.n();
    let rep = radix2::run(gpu, &batch, ModMul::Shoup);
    let analytic = fig8(log_n);
    rep.launches
        .iter()
        .zip(analytic)
        .map(|(launch, (stage, ratio))| {
            let data_txns = (np * n / 4) as u64;
            let tw_txns = launch
                .stats
                .dram_read_transactions
                .saturating_sub(data_txns);
            let measured = (tw_txns * 32) as f64 / (np * n * 8) as f64;
            (stage, ratio, measured)
        })
        .collect()
}

/// Fig. 9 — Kernel-1 with and without preloading twiddles into SMEM.
pub fn fig9(log_n: u32, np: usize, k1_sizes: &[usize]) -> Vec<Measurement> {
    let mut out = Vec::new();
    for &n1 in k1_sizes {
        for preload in [false, true] {
            let (mut mem, batch) = fresh_batch(log_n, np);
            let gpu = mem.gpu_mut();
            let cfg = SmemConfig::new(n1).preload(preload);
            let rep = smem::run(gpu, &batch, &cfg);
            let k1_us = rep.launches[0].timing.total_s * 1e6;
            out.push(Measurement {
                label: format!("K1={n1} {}", if preload { "preload" } else { "direct" }),
                time_us: k1_us,
                per_ntt_us: k1_us / np as f64,
                dram_mb: rep.launches[0].dram_bytes(&gpu.config) as f64 / (1 << 20) as f64,
                utilization: 0.0,
                occupancy: rep.launches[0].timing.occupancy,
            });
        }
    }
    out
}

/// Fig. 11(a) — SMEM NTT across splits and per-thread sizes 2/4/8.
pub fn fig11a(log_n: u32, np: usize) -> Vec<Measurement> {
    let mut out = Vec::new();
    for t in [2usize, 4, 8] {
        for n1 in SmemConfig::paper_splits(log_n) {
            let (mut mem, batch) = fresh_batch(log_n, np);
            let gpu = mem.gpu_mut();
            let cfg = SmemConfig::new(n1).per_thread(t);
            let rep = smem::run(gpu, &batch, &cfg);
            out.push(measure(cfg.label(batch.n()), gpu, &rep, np));
        }
    }
    out
}

/// Fig. 11(b) — SMEM DFT across splits and per-thread sizes.
pub fn fig11b(log_n: u32, np: usize) -> Vec<Measurement> {
    let mut out = Vec::new();
    for t in [2usize, 4, 8] {
        for n1 in SmemConfig::paper_splits(log_n) {
            let mut gpu = Gpu::new(GpuConfig::titan_v());
            let batch = DftBatch::sequential(&mut gpu, log_n, np);
            let rep = dft::run_smem(&mut gpu, &batch, n1, t);
            out.push(measure(
                format!("{}x{} t{}", n1, batch.n() / n1, t),
                &gpu,
                &rep,
                np,
            ));
        }
    }
    out
}

/// Fig. 11(c) — OT on the last 0/1/2 stages across splits (t = 8).
pub fn fig11c(log_n: u32, np: usize) -> Vec<Measurement> {
    let mut out = Vec::new();
    for ot in [0u32, 1, 2] {
        for n1 in SmemConfig::paper_splits(log_n) {
            let (mut mem, batch) = fresh_batch(log_n, np);
            let gpu = mem.gpu_mut();
            let cfg = SmemConfig::new(n1).ot_stages(ot);
            let rep = smem::run(gpu, &batch, &cfg);
            out.push(measure(cfg.label(batch.n()), gpu, &rep, np));
        }
    }
    out
}

/// Fig. 12(b,c) — best SMEM configuration with and without OT per `log N`:
/// returns `(log_n, without, with)` rows.
pub fn fig12(log_ns: &[u32], np: usize) -> Vec<(u32, Measurement, Measurement)> {
    log_ns
        .iter()
        .map(|&log_n| {
            let (_, without) = best_split(log_n, np, 0);
            let (_, with) = best_split(log_n, np, 2);
            (log_n, without, with)
        })
        .collect()
}

/// Fig. 13 — execution time vs batch size at the best split of `N = 2^17`
/// (returns one measurement per `np`, with nominal `log Q = 60·np`).
pub fn fig13(log_n: u32, batch_sizes: &[usize]) -> Vec<Measurement> {
    let n1 = SmemConfig::paper_splits(log_n)[0];
    batch_sizes
        .iter()
        .map(|&np| {
            let (mut mem, batch) = fresh_batch(log_n, np);
            let gpu = mem.gpu_mut();
            let cfg = SmemConfig::new(n1);
            let rep = smem::run(gpu, &batch, &cfg);
            measure(format!("np={np} logQ={}", 60 * np), gpu, &rep, np)
        })
        .collect()
}

/// Table II — radix-2 vs SMEM without OT vs SMEM with OT, per `log N`.
/// Returns `(log_n, radix2, smem, smem_ot)`.
pub fn table2(log_ns: &[u32], np: usize) -> Vec<(u32, Measurement, Measurement, Measurement)> {
    log_ns
        .iter()
        .map(|&log_n| {
            let (mut mem, batch) = fresh_batch(log_n, np);
            let gpu = mem.gpu_mut();
            let rep = radix2::run(gpu, &batch, ModMul::Shoup);
            let r2 = measure("radix-2", gpu, &rep, np);
            let (_, s) = best_split(log_n, np, 0);
            let (_, s_ot) = best_split(log_n, np, 2);
            (log_n, r2, s, s_ot)
        })
        .collect()
}

/// §VIII — comparison against the FCCM'20 FPGA accelerator at
/// `(N = 2^17, np = 36)` and `(N = 2^17, np = 42)`.
/// Returns `(np, gpu_us, fpga_us, speedup)`.
pub fn fpga_comparison(log_n: u32, batch_sizes: &[usize]) -> Vec<(usize, f64, f64, f64)> {
    let fpga = FpgaNtt::fccm20();
    batch_sizes
        .iter()
        .map(|&np| {
            let (_, m) = best_split(log_n, np, 2);
            let f_us = fpga.time_us(1 << log_n, np);
            (np, m.time_us, f_us, f_us / m.time_us)
        })
        .collect()
}

/// §IV word-size ablation: `Q ≈ 2^1200` as 40 × 30-bit vs 20 × 60-bit
/// primes. Returns the two measurements (30-bit path models half-width
/// elements by halving N-word traffic — see EXPERIMENTS.md).
pub fn wordsize(log_n: u32) -> Vec<Measurement> {
    // 60-bit path: 20 primes of full-width words.
    let n1 = SmemConfig::paper_splits(log_n)[0];
    let (mut mem, batch) = fresh_batch(log_n, 20);
    let gpu = mem.gpu_mut();
    let rep = smem::run(gpu, &batch, &SmemConfig::new(n1));
    let m60 = measure("20 x 60-bit", gpu, &rep, 20);
    // 30-bit path: 40 primes; elements are half-width so the modeled time
    // halves the per-element traffic but doubles the transform count.
    let (mut mem2, batch2) = fresh_batch(log_n, 40);
    let gpu2 = mem2.gpu_mut();
    let rep2 = smem::run(gpu2, &batch2, &SmemConfig::new(n1));
    let mut m30 = measure("40 x 30-bit", gpu2, &rep2, 40);
    m30.time_us *= 0.5;
    m30.dram_mb *= 0.5;
    vec![m60, m30]
}

/// Residency accounting for a device-resident `he-lite` chain on the
/// simulated GPU.
#[derive(Debug, Clone)]
pub struct ResidencyReport {
    /// Parameter description.
    pub params: String,
    /// Transfers during setup: table upload, keygen key upload, two
    /// encryptions (the chain's "initial upload").
    pub initial: ntt_core::TransferStats,
    /// Transfers during one steady-state multiply/relinearize/rescale —
    /// the quantity the residency gates pin to zero.
    pub steady: ntt_core::TransferStats,
    /// Modeled device-time accounting (serialized vs overlapped) over the
    /// steady-state window — the `figures residency` overlap line.
    pub timeline: gpu_sim::DeviceTimeline,
}

/// Run keygen → encrypt ×2 → multiply on a `SimBackend`-resident
/// `HeContext` and split the transfer ledger into the initial-upload and
/// steady-state windows (the figures harness prints this as the
/// transfer-count line; `tests/residency.rs` and the `bench_guard` gate
/// assert the steady window stays at zero).
pub fn residency(log_n: u32) -> ResidencyReport {
    use he_lite::{sampling, HeContext, HeLiteParams};
    let params = HeLiteParams {
        log_n,
        prime_bits: 50,
        levels: 3,
        scale_bits: 46,
        gadget_bits: 10,
        error_eta: 6,
    };
    let backend = ntt_gpu::SimBackend::titan_v();
    let dev = backend.memory_handle();
    let timeline_of = |dev: &std::sync::Arc<std::sync::Mutex<SimMemory>>| {
        dev.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .gpu()
            .timeline()
    };
    let ctx = HeContext::with_backend(params, Box::new(backend)).expect("sim context builds");
    let keys = ctx.keygen(&mut sampling::seeded_rng(42));
    let mut rng = sampling::seeded_rng(7);
    let a = ctx.encrypt(&ctx.encode(&[2.5, -1.0]), &keys.public, &mut rng);
    let b = ctx.encrypt(&ctx.encode(&[3.0, 0.5]), &keys.public, &mut rng);
    let initial = ctx.transfer_stats();
    let t0 = timeline_of(&dev);
    let _ = ctx.multiply(&a, &b, &keys.relin);
    let steady = ctx.transfer_stats().since(&initial);
    let timeline = timeline_of(&dev).since(&t0);
    ResidencyReport {
        params: format!("{params}"),
        initial,
        steady,
        timeline,
    }
}

/// Modeled-overlap accounting for independent chains on pooled-evaluator
/// streams (the `figures streams` line and the `bench_guard` overlap
/// gate's input).
#[derive(Debug, Clone, Copy)]
pub struct StreamsReport {
    /// Evaluators (= streams = chains).
    pub evaluators: usize,
    /// The measured window's device-time accounting (serialized schedule
    /// cost vs overlapped makespan, launch/transfer counts).
    pub timeline: gpu_sim::DeviceTimeline,
}

impl StreamsReport {
    /// Serialized / overlapped — the headline overlap factor (gated at
    /// ≥ 1.3× for the 4-evaluator chain in `scripts/bench_smoke.sh`).
    pub fn overlap(&self) -> f64 {
        self.timeline.overlap()
    }
}

/// A [`streams`] run plus the result digest needed for cross-driver
/// bit-identity checks: the synced host rows of every polynomial each
/// chain produced, in chain order. Streams (and host threads) are a
/// performance model, never a semantic one — any driver enqueueing the
/// same chains must produce an equal digest, which `tests/streams.rs`
/// pins for the threaded driver against the serialized one.
#[derive(Debug, Clone)]
pub struct StreamsRun {
    /// Modeled-time accounting over the chain window.
    pub report: StreamsReport,
    /// Per-chain host rows of every polynomial the chain produced.
    pub digest: Vec<Vec<u64>>,
}

/// Deterministic chain input polynomial.
fn streams_poly(ring: &ntt_core::RnsRing, seed: i64) -> ntt_core::RnsPoly {
    let coeffs: Vec<i64> = (0..ring.degree() as i64)
        .map(|i| (seed.wrapping_mul(i + 3) % 97) - 48)
        .collect();
    ntt_core::RnsPoly::from_i64_coeffs(ring, &coeffs)
}

/// One independent encrypt ×2 → tensor-multiply → rescale chain on one
/// evaluator. Returns every polynomial the chain touched so its device
/// buffers stay alive until the measurement window closes — the
/// multi-stream discipline real CUDA code follows: a freed buffer may be
/// recycled by another stream, whose first use then (correctly) fences
/// on the previous owner's completion event and serializes the chains
/// right back.
fn streams_chain(
    ev: &mut ntt_core::backend::Evaluator,
    ring: &ntt_core::RnsRing,
    pk_b: &ntt_core::RnsPoly,
    pk_a: &ntt_core::RnsPoly,
    index: usize,
) -> Vec<ntt_core::RnsPoly> {
    use ntt_core::backend::Evaluator;
    use ntt_core::RnsPoly;

    let seed = 11 + 7 * index as i64;
    let mut keep: Vec<RnsPoly> = Vec::new();
    let encrypt = |ev: &mut Evaluator, keep: &mut Vec<RnsPoly>, s: i64| -> (RnsPoly, RnsPoly) {
        let (mut u, mut e0, mut e1, mut msg) = (
            streams_poly(ring, s),
            streams_poly(ring, s + 1),
            streams_poly(ring, s + 2),
            streams_poly(ring, s + 3),
        );
        ev.make_resident(&mut u);
        ev.make_resident(&mut e0);
        ev.make_resident(&mut e1);
        ev.make_resident(&mut msg);
        ev.forward_polys(&mut [&mut u, &mut e0, &mut e1, &mut msg]);
        let mut c0 = pk_b.clone();
        ev.mul_pointwise(&mut c0, &u);
        ev.add_assign(&mut c0, &e0);
        ev.add_assign(&mut c0, &msg);
        let mut c1 = pk_a.clone();
        ev.mul_pointwise(&mut c1, &u);
        ev.add_assign(&mut c1, &e1);
        keep.extend([u, e0, e1, msg]);
        (c0, c1)
    };
    let (mut c0, c1) = encrypt(ev, &mut keep, seed);
    let (d0, d1) = encrypt(ev, &mut keep, seed + 40);
    // Tensor multiply (no relinearization: chains stay independent).
    let mut cross = c0.clone();
    ev.mul_pointwise(&mut cross, &d1);
    let mut cross2 = c1.clone();
    ev.mul_pointwise(&mut cross2, &d0);
    ev.add_assign(&mut cross, &cross2);
    let mut e2 = c1.clone();
    ev.mul_pointwise(&mut e2, &d1);
    ev.mul_pointwise(&mut c0, &d0);
    // Rescale every component a level down.
    for poly in [&mut c0, &mut cross, &mut e2] {
        ev.to_coefficient(poly);
        ev.rescale(poly);
        ev.to_evaluation(poly);
    }
    keep.extend([c0, c1, d0, d1, cross, cross2, e2]);
    keep
}

/// Everything the streams drivers share: the ring, the device handle, the
/// setup evaluator (owner of the root stream and the resident "public
/// key" halves every chain fences on), and one forked evaluator per
/// chain. The device is drained on return, so the caller's window starts
/// from a synchronized clock.
struct StreamsSetup {
    ring: ntt_core::RnsRing,
    dev: std::sync::Arc<std::sync::Mutex<SimMemory>>,
    /// Keeps the root backend (and its stream) alive for the run.
    _setup: ntt_core::backend::Evaluator,
    evs: Vec<ntt_core::backend::Evaluator>,
    pk_b: ntt_core::RnsPoly,
    pk_a: ntt_core::RnsPoly,
}

fn streams_setup(log_n: u32, evaluators: usize) -> StreamsSetup {
    use ntt_core::backend::{Evaluator, NttBackend};
    use ntt_core::RnsRing;
    use ntt_gpu::SimBackend;

    let n = 1usize << log_n;
    let ring = RnsRing::new(n, ntt_math::ntt_primes(50, 2 * n as u64, 3)).expect("valid ring");
    let root = SimBackend::titan_v();
    let dev = root.memory_handle();
    let forks: Vec<Box<dyn NttBackend>> = (0..evaluators).map(|_| root.fork()).collect();
    let mut setup = Evaluator::with_backend(&ring, Box::new(root));
    let evs: Vec<Evaluator> = forks
        .into_iter()
        .map(|b| Evaluator::new(ring.plan(), b))
        .collect();

    // Shared "public key" halves, uploaded and transformed on the root
    // backend's stream — the setup stream every chain fences on once.
    let (mut pk_b, mut pk_a) = (streams_poly(&ring, 3), streams_poly(&ring, 5));
    setup.make_resident(&mut pk_b);
    setup.make_resident(&mut pk_a);
    setup.to_evaluation(&mut pk_b);
    setup.to_evaluation(&mut pk_a);

    // Drain the device before the window opens (modeled
    // `cudaDeviceSynchronize`): every fork stream is fenced on the setup
    // work, so the makespan growth the caller measures is exactly the
    // chain schedule's length — no chain work can hide under the setup
    // schedule's tail and inflate the overlap factor.
    dev.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .gpu_mut()
        .sync_all();
    StreamsSetup {
        ring,
        dev,
        _setup: setup,
        evs,
        pk_b,
        pk_a,
    }
}

fn device_timeline(dev: &std::sync::Arc<std::sync::Mutex<SimMemory>>) -> gpu_sim::DeviceTimeline {
    dev.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .gpu()
        .timeline()
}

/// Sync every chain polynomial and flatten its host rows, per chain.
fn streams_digest(chains: &mut [Vec<ntt_core::RnsPoly>]) -> Vec<Vec<u64>> {
    chains
        .iter_mut()
        .map(|polys| {
            polys
                .iter_mut()
                .flat_map(|p| {
                    p.sync();
                    p.flat().to_vec()
                })
                .collect()
        })
        .collect()
}

/// Run `evaluators` independent encrypt → multiply → rescale chains, one
/// per pooled `SimBackend` fork (each fork owns a device stream), and
/// report serialized vs overlapped modeled device time over the chain
/// window.
///
/// The driver is single-threaded and fully deterministic: overlap comes
/// from the *stream schedule*, not host threading — chain `i`'s kernels
/// enqueue on fork `i`'s stream, fenced only by the shared "public key"
/// upload on the root (setup) stream, so the modeled makespan approaches
/// the longest single chain rather than the serial sum.
pub fn streams(log_n: u32, evaluators: usize) -> StreamsReport {
    streams_run(log_n, evaluators).report
}

/// [`streams`] with the result digest attached (the serialized driver).
pub fn streams_run(log_n: u32, evaluators: usize) -> StreamsRun {
    let mut s = streams_setup(log_n, evaluators);
    let t0 = device_timeline(&s.dev);
    let mut chains: Vec<Vec<ntt_core::RnsPoly>> = s
        .evs
        .iter_mut()
        .enumerate()
        .map(|(i, ev)| streams_chain(ev, &s.ring, &s.pk_b, &s.pk_a, i))
        .collect();
    let d = device_timeline(&s.dev).since(&t0);
    StreamsRun {
        report: StreamsReport {
            evaluators,
            timeline: d,
        },
        digest: streams_digest(&mut chains),
    }
}

/// The same chains driven by **real host threads** — one thread per
/// evaluator, racing on the shared device mutex, allocator and bus the
/// way a multi-tenant server does (ROADMAP item o). Stream assignment,
/// event fencing and the free-list recycling discipline must keep every
/// chain's results bit-identical to [`streams_run`]'s serialized driver,
/// whatever interleaving the OS scheduler picks; `tests/streams.rs`
/// asserts exactly that on the returned digest.
pub fn streams_threaded(log_n: u32, evaluators: usize) -> StreamsRun {
    let s = streams_setup(log_n, evaluators);
    let StreamsSetup {
        ring,
        dev,
        _setup,
        mut evs,
        pk_b,
        pk_a,
    } = s;
    let t0 = device_timeline(&dev);
    let barrier = std::sync::Barrier::new(evs.len().max(1));
    let mut chains: Vec<Vec<ntt_core::RnsPoly>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = evs
            .iter_mut()
            .enumerate()
            .map(|(i, ev)| {
                let (ring, pk_b, pk_a, barrier) = (&ring, &pk_b, &pk_a, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    streams_chain(ev, ring, pk_b, pk_a, i)
                })
            })
            .collect();
        chains = handles
            .into_iter()
            .map(|h| h.join().expect("chain thread panicked"))
            .collect();
    });
    let d = device_timeline(&dev).since(&t0);
    StreamsRun {
        report: StreamsReport {
            evaluators,
            timeline: d,
        },
        digest: streams_digest(&mut chains),
    }
}

/// One serving configuration's outcome: wall-clock throughput and tail
/// latency from a closed-loop multi-tenant load run, plus the modeled
/// device-time accounting over the serving window (the `figures serve`
/// rows).
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Serving worker threads (each borrows a pooled evaluator, so this
    /// is also the stream count).
    pub workers: usize,
    /// Jobs answered.
    pub completed: u64,
    /// Jobs refused with backpressure.
    pub rejected: u64,
    /// Dispatch groups executed (`batched_jobs / batches` is the
    /// achieved batching factor).
    pub batches: u64,
    /// Jobs executed across all groups.
    pub batched_jobs: u64,
    /// Chain results that missed the expected value (must be 0).
    pub mismatches: u64,
    /// Median end-to-end latency, microseconds (interpolated within
    /// the histogram's log2 bucket, clamped to the recorded maximum).
    pub p50_us: f64,
    /// 99th-percentile end-to-end latency, microseconds.
    pub p99_us: f64,
    /// Answered jobs per wall-clock second.
    pub throughput: f64,
    /// Modeled device time over the serving window.
    pub timeline: gpu_sim::DeviceTimeline,
}

fn serve_params(log_n: u32) -> he_lite::HeLiteParams {
    he_lite::HeLiteParams {
        log_n,
        prime_bits: 50,
        levels: 3,
        scale_bits: 40,
        gadget_bits: 10,
        error_eta: 4,
    }
}

fn drain_device(dev: &std::sync::Arc<std::sync::Mutex<SimMemory>>) {
    dev.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .gpu_mut()
        .sync_all();
}

/// Serve a closed-loop multi-tenant load (encrypt → eval → decrypt
/// chains per tenant) through an [`he_serve::HeServer`] on a simulated
/// device, and report throughput, tail latency and the modeled device
/// window. Deterministic in results (seeded randomness end to end);
/// wall-clock throughput and batch sizes vary with the host scheduler.
pub fn serve(log_n: u32, workers: usize, tenants: u32, chains_per_tenant: usize) -> ServeReport {
    use he_serve::{loadgen, ArrivalMode, HeServer, LoadConfig, ServeConfig};

    let backend = ntt_gpu::SimBackend::titan_v();
    let dev = backend.memory_handle();
    let ctx = he_lite::HeContext::with_backend(serve_params(log_n), Box::new(backend))
        .expect("sim context builds");
    let server = HeServer::start(
        ctx,
        ServeConfig {
            workers,
            ..ServeConfig::default()
        },
    );
    // Key generation is setup traffic; open the window after it drains.
    drain_device(&dev);
    let t0 = device_timeline(&dev);
    let load = loadgen::run(
        &server,
        &LoadConfig {
            tenants,
            chains_per_tenant,
            mode: ArrivalMode::Closed,
            max_values: 8,
            seed: 1,
        },
    );
    let snap = server.shutdown();
    drain_device(&dev);
    let timeline = device_timeline(&dev).since(&t0);
    let lat = snap.merged_latency();
    ServeReport {
        workers,
        completed: snap.completed(),
        rejected: snap.rejected(),
        batches: snap.batches,
        batched_jobs: snap.batched_jobs,
        mismatches: load.mismatches,
        p50_us: lat.p50() as f64 / 1e3,
        p99_us: lat.p99() as f64 / 1e3,
        throughput: load.throughput(),
        timeline,
    }
}

/// Modeled device time for one job set through the batched pipelines vs
/// the identical set dispatched one job at a time — the deterministic
/// input to the `bench_smoke` batching gate (≥ 1.5× required).
#[derive(Debug, Clone, Copy)]
pub struct ServeBatchingReport {
    /// Jobs in the set.
    pub jobs: usize,
    /// Modeled device window for the batched dispatch (one flat call
    /// per pipeline stage for the whole set).
    pub batched: gpu_sim::DeviceTimeline,
    /// Modeled device window for the chunk-of-1 control.
    pub unbatched: gpu_sim::DeviceTimeline,
}

impl ServeBatchingReport {
    /// Unbatched / batched modeled serialized device time — how much
    /// schedule the batcher saves by amortizing staging round trips and
    /// launch overhead.
    pub fn speedup(&self) -> f64 {
        self.unbatched.serialized_s / self.batched.serialized_s.max(f64::MIN_POSITIVE)
    }
}

/// Run `jobs` encrypt → eval → decrypt chains through the
/// [`he_serve::Batcher`] twice on a simulated device — once batched
/// (three group dispatches) and once as a chunk-of-1 control — and
/// measure the modeled device time of each window. Asserts the two
/// dispatch shapes produce identical results before returning.
pub fn serve_batching(log_n: u32, jobs: usize) -> ServeBatchingReport {
    use he_serve::{job_seed, Batcher, EncryptJob, TenantId};

    let backend = ntt_gpu::SimBackend::titan_v();
    let dev = backend.memory_handle();
    let ctx = he_lite::HeContext::with_backend(serve_params(log_n), Box::new(backend))
        .expect("sim context builds");
    let keys = ctx.keygen(&mut he_lite::sampling::seeded_rng(7));
    let batcher = Batcher::new(&keys);
    let encrypt_jobs: Vec<EncryptJob> = (0..jobs)
        .map(|j| EncryptJob {
            seed: job_seed(7, TenantId(j as u32), 0),
            values: vec![1.0 + j as f64, -0.5 * j as f64],
        })
        .collect();
    let chain = |group: &[EncryptJob]| -> Vec<Vec<f64>> {
        ctx.with_pooled_evaluator(|ev| {
            let cts = batcher.encrypt_batch(&ctx, ev, group);
            let evald = batcher.eval_batch(
                &ctx,
                ev,
                cts.into_iter().map(|ct| (ct, vec![2.0])).collect(),
            );
            batcher.decrypt_batch(&ctx, ev, evald)
        })
    };

    drain_device(&dev);
    let t0 = device_timeline(&dev);
    let batched_out = chain(&encrypt_jobs);
    drain_device(&dev);
    let batched = device_timeline(&dev).since(&t0);

    let t1 = device_timeline(&dev);
    let unbatched_out: Vec<Vec<f64>> = encrypt_jobs.chunks(1).flat_map(&chain).collect();
    drain_device(&dev);
    let unbatched = device_timeline(&dev).since(&t1);

    assert_eq!(
        batched_out, unbatched_out,
        "batched dispatch changed the bits"
    );
    ServeBatchingReport {
        jobs,
        batched,
        unbatched,
    }
}

/// Modeled device time for the serve-path fallible pipelines with the
/// fault plane disarmed vs armed with all-zero rates — the input to the
/// `bench_smoke` fault-plane overhead gate (armed must stay within 5%
/// of off).
#[derive(Debug, Clone, Copy)]
pub struct ServeFaultOverheadReport {
    /// Jobs in the set.
    pub jobs: usize,
    /// Modeled device window with no [`gpu_sim::FaultPlan`] armed.
    pub off: gpu_sim::DeviceTimeline,
    /// Modeled device window with a zero-rate plan armed: every `try_*`
    /// dispatch consults the plane, no fault ever fires.
    pub armed: gpu_sim::DeviceTimeline,
}

impl ServeFaultOverheadReport {
    /// Armed / off modeled serialized device time — the fault plane's
    /// zero-fault overhead factor.
    pub fn overhead(&self) -> f64 {
        self.armed.serialized_s / self.off.serialized_s.max(f64::MIN_POSITIVE)
    }
}

/// Run `jobs` encrypt → eval → decrypt chains through the he-serve
/// batcher's *fallible* pipelines twice — fault plane disarmed, then
/// armed with a zero-rate [`gpu_sim::FaultPlan`] — and measure each
/// window's modeled device time. A zero-rate plan draws the same gate
/// checks a chaotic one would but never injects, so the difference is
/// exactly the fault plane's bookkeeping. Asserts both runs produce
/// identical results before returning.
pub fn serve_fault_overhead(log_n: u32, jobs: usize) -> ServeFaultOverheadReport {
    use he_serve::{job_seed, Batcher, EncryptJob, TenantId};

    let backend = ntt_gpu::SimBackend::titan_v();
    let dev = backend.memory_handle();
    let ctx = he_lite::HeContext::with_backend(serve_params(log_n), Box::new(backend))
        .expect("sim context builds");
    let keys = ctx.keygen(&mut he_lite::sampling::seeded_rng(7));
    let batcher = Batcher::new(&keys);
    let encrypt_jobs: Vec<EncryptJob> = (0..jobs)
        .map(|j| EncryptJob {
            seed: job_seed(7, TenantId(j as u32), 0),
            values: vec![1.0 + j as f64, -0.5 * j as f64],
        })
        .collect();
    let chain = |group: &[EncryptJob]| -> Vec<Vec<f64>> {
        ctx.try_with_pooled_evaluator(|ev| {
            let cts = batcher.try_encrypt_batch(&ctx, ev, group)?;
            let evald = batcher.try_eval_batch(
                &ctx,
                ev,
                cts.into_iter().map(|ct| (ct, vec![2.0])).collect(),
            )?;
            batcher.try_decrypt_batch(&ctx, ev, evald)
        })
        .expect("a zero-rate fault plan never faults")
    };
    let set_plan = |plan: Option<gpu_sim::FaultPlan>| {
        dev.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .gpu_mut()
            .set_fault_plan(plan);
    };

    // Warm-up pass: tables, calibration and pool setup happen once, so
    // the two measured windows see the same steady state.
    let _ = chain(&encrypt_jobs);

    drain_device(&dev);
    let t0 = device_timeline(&dev);
    let off_out = chain(&encrypt_jobs);
    drain_device(&dev);
    let off = device_timeline(&dev).since(&t0);

    set_plan(Some(gpu_sim::FaultPlan::seeded(1)));
    let t1 = device_timeline(&dev);
    let armed_out = chain(&encrypt_jobs);
    drain_device(&dev);
    let armed = device_timeline(&dev).since(&t1);
    set_plan(None);

    assert_eq!(off_out, armed_out, "the fault plane changed the bits");
    ServeFaultOverheadReport { jobs, off, armed }
}

/// One kernel-class row of the bootstrap op-mix: launches and modeled
/// device seconds attributed to the class.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpMixRow {
    /// Kernel launches in the class.
    pub launches: u64,
    /// Modeled device seconds in the class.
    pub time_s: f64,
}

/// The flagship workload's accounting: one full CKKS-style bootstrap on
/// the simulated GPU, with modeled device time split by kernel class.
///
/// The paper's thesis is that NTTs (and the key switches they feed)
/// dominate bootstrappable HE — `figures bootstrap` prints this split
/// and `bench_smoke.sh` gates the NTT + key-switch share at ≥ 60% of
/// the modeled device time.
#[derive(Debug, Clone)]
pub struct BootstrapReport {
    /// Parameter description.
    pub params: String,
    /// Transfers during setup: keygen, rotation-key + DFT-diagonal
    /// upload, encryption, and the warm-up bootstrap that populates the
    /// EvalMod constant cache.
    pub initial: ntt_core::TransferStats,
    /// Transfers during one steady-state bootstrap — pinned to zero by
    /// `tests/residency.rs` and the bench gate.
    pub steady: ntt_core::TransferStats,
    /// Forward/inverse NTT kernels (every transform family the paper
    /// studies: fused SMEM, radix-2, high-radix, DFT).
    pub ntt: OpMixRow,
    /// Key-switch kernels: gadget decompose, fused multiply-add
    /// accumulation, Galois automorphism.
    pub key_switch: OpMixRow,
    /// Everything else (pointwise multiply/add/sub/neg, rescale,
    /// mod-raise).
    pub pointwise: OpMixRow,
}

impl BootstrapReport {
    /// Total modeled device seconds across every class.
    pub fn total_s(&self) -> f64 {
        self.ntt.time_s + self.key_switch.time_s + self.pointwise.time_s
    }

    /// Fraction of modeled device time in NTT + key-switch kernels —
    /// the headline the title workload exists to measure.
    pub fn ntt_keyswitch_share(&self) -> f64 {
        (self.ntt.time_s + self.key_switch.time_s) / self.total_s()
    }
}

/// Kernel class of a simulated launch label (see `BootstrapReport`).
fn launch_class(label: &str) -> usize {
    if label.starts_with("smem-k")
        || label.starts_with("radix")
        || label.starts_with("iradix2")
        || label.starts_with("dft-")
        || label.starts_with("hier-")
        || label == "intt-scale"
    {
        0 // NTT
    } else if matches!(label, "sim-decompose" | "sim-fma" | "sim-automorphism") {
        1 // key switch
    } else {
        2 // pointwise / other
    }
}

/// Run one full bootstrap (ModRaise → CoeffToSlot → EvalMod →
/// SlotToCoeff) on a device-resident context and split the kernel trace
/// into the op-mix classes. Depth-minimal [`he_boot::BootParams`], so
/// the quick CI path stays fast; the mix is structural, not
/// size-dependent.
pub fn bootstrap(log_n: u32) -> BootstrapReport {
    bootstrap_with(he_boot::BootParams::shallow(), log_n, None)
}

/// The same accounting at bootstrapping scale: `BootParams::deep()` (the
/// full 21-level pipeline — 4 sine terms, 6 double-angle steps) with a
/// sparsely packed slot matrix (`mat_slots` ≪ N/2), which keeps DFT
/// diagonal and key material tractable at N = 2¹⁶ while preserving the
/// op sequence — and therefore the kernel-class mix — of a dense run.
/// The Sim forwards route through the size-calibrated plan, which at
/// this ring weighs the hierarchical 4-step kernels (`hier-*` labels).
pub fn bootstrap_deep(log_n: u32, mat_slots: usize) -> BootstrapReport {
    bootstrap_with(he_boot::BootParams::deep(), log_n, Some(mat_slots))
}

fn bootstrap_with(
    bp: he_boot::BootParams,
    log_n: u32,
    mat_slots: Option<usize>,
) -> BootstrapReport {
    use he_boot::Bootstrapper;
    use he_lite::{sampling, HeContext};
    use std::sync::Arc;

    let params = bp.he_params(log_n, 50);
    let backend = ntt_gpu::SimBackend::titan_v();
    let dev = backend.memory_handle();
    let ctx =
        Arc::new(HeContext::with_backend(params, Box::new(backend)).expect("sim context builds"));
    let mut rng = sampling::seeded_rng(42);
    let keys = ctx.keygen(&mut rng);
    let boot = match mat_slots {
        Some(ms) => Bootstrapper::with_matrix_slots(Arc::clone(&ctx), &keys, bp, ms, &mut rng),
        None => Bootstrapper::new(Arc::clone(&ctx), &keys, bp, &mut rng),
    };
    let pt = ctx.encode_with_scale(&[0.4, -0.2, 0.1], boot.input_scale());
    let ct = ctx.encrypt(&pt, &keys.public, &mut sampling::seeded_rng(7));
    let low = ctx.drop_to_level(&ct, 1);

    // Warm-up: uploads the twiddle tables and fills the EvalMod constant
    // cache, so the measured window is the steady state a serving loop
    // lives in.
    let _ = boot.bootstrap(&low);
    drain_device(&dev);

    let initial = ctx.transfer_stats();
    let trace_from = dev
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .gpu()
        .trace
        .len();
    let _ = boot.bootstrap(&low);
    drain_device(&dev);
    let steady = ctx.transfer_stats().since(&initial);

    let mut rows = [OpMixRow::default(); 3];
    {
        let mem = dev
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for rec in &mem.gpu().trace[trace_from..] {
            let row = &mut rows[launch_class(&rec.launch.label)];
            row.launches += 1;
            row.time_s += rec.timing.total_s;
        }
    }
    let [ntt, key_switch, pointwise] = rows;
    BootstrapReport {
        params: format!("{params} ({} boot levels)", bp.min_levels()),
        initial,
        steady,
        ntt,
        key_switch,
        pointwise,
    }
}

/// The hierarchical 4-step NTT against the single-kernel family — the
/// inputs behind the `ntt_hier/*` pseudo-benchmarks and their
/// `bench_smoke.sh` ratio gates. All values are modeled device time
/// from one deterministic simulated device, so the gates hold on any
/// host.
#[derive(Debug, Clone)]
pub struct HierBenchReport {
    /// Mid-size ring exponent (the single-kernel home turf).
    pub log_small: u32,
    /// Bootstrapping-scale ring exponent.
    pub log_big: u32,
    /// Column split `n1` used for the big-ring 4-step run.
    pub split_big: usize,
    /// 3-kernel hierarchical plan at `2^log_big`, µs.
    pub four_step_big_us: f64,
    /// Best single fused-SMEM kernel at `2^log_small`, extrapolated to
    /// `2^log_big` by its `c · N log N` scaling law, µs.
    pub single_extrapolated_big_us: f64,
    /// The backend's auto-routed forward at `2^log_small` (calibrated
    /// over radix-2, fused-SMEM and hierarchical candidates), µs.
    pub auto_small_us: f64,
    /// Best single fused-SMEM kernel at `2^log_small`, measured, µs.
    pub best_single_small_us: f64,
}

/// Measure the [`HierBenchReport`] pair of comparisons:
///
/// * at `2^log_big` the 4-step plan must not exceed the single-kernel
///   cost extrapolated from its mid-size measurement (`c · N log N`) —
///   the hierarchy's reduced table traffic has to pay for its extra
///   global-memory pass;
/// * at `2^log_small` the auto-routed choice must stay within 5% of the
///   best single fused kernel — rolling out the 4-step path cannot
///   regress the rings it should lose on.
pub fn hier_bench(log_small: u32, log_big: u32, np: usize) -> HierBenchReport {
    use ntt_core::backend::{Evaluator, RingPlan};

    // Best single fused-SMEM kernel, measured at the mid-size ring.
    let (_, small_best) = best_split(log_small, np, 0);

    // The 3-kernel hierarchical plan at the bootstrapping-scale ring,
    // near-square split.
    let split_big = 1usize << (log_big / 2);
    let (mut mem, batch) = fresh_batch(log_big, np);
    let gpu = mem.gpu_mut();
    let rep = ntt_gpu::hier::run(gpu, &batch, split_big);
    debug_assert!(rep.verify(gpu, &batch));
    let four_step_big_us = rep.total_us();

    // `c · N log N` extrapolation of the single-kernel family.
    let scale = ((1u64 << log_big) * u64::from(log_big)) as f64
        / ((1u64 << log_small) * u64::from(log_small)) as f64;
    let single_extrapolated_big_us = small_best.time_us * scale;

    // The auto-routed forward at the mid-size ring, end to end through
    // the backend: warm once (calibration sweep + table upload), then
    // sum the launch timings of one steady-state forward.
    let backend = ntt_gpu::SimBackend::titan_v();
    let dev = backend.memory_handle();
    let n_small = 1usize << log_small;
    let ring = ntt_core::RnsRing::new(n_small, ntt_math::ntt_primes(59, 2 * n_small as u64, np))
        .expect("bench ring builds");
    let mut ev = Evaluator::new(RingPlan::new(&ring), Box::new(backend));
    let rand_poly = |seed: u64| {
        let mut x = ntt_core::RnsPoly::zero(&ring);
        for i in 0..ring.np() {
            let p = ring.basis().primes()[i];
            for (j, v) in x.row_mut(i).iter_mut().enumerate() {
                *v = (seed | 1)
                    .wrapping_mul((j as u64).wrapping_add(0x9E37_79B9_7F4A_7C15))
                    .wrapping_add((i as u64) << 40)
                    % p;
            }
        }
        x
    };
    let mut warm = rand_poly(0x41);
    ev.make_resident(&mut warm);
    ev.to_evaluation(&mut warm);
    let mut x = rand_poly(0x42);
    ev.make_resident(&mut x);
    let trace_from = {
        let mem = dev
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        mem.gpu().trace.len()
    };
    ev.to_evaluation(&mut x);
    let auto_small_us = {
        let mem = dev
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        mem.gpu().trace[trace_from..]
            .iter()
            .map(|r| r.timing.total_s)
            .sum::<f64>()
            * 1e6
    };

    HierBenchReport {
        log_small,
        log_big,
        split_big,
        four_step_big_us,
        single_extrapolated_big_us,
        auto_small_us,
        best_single_small_us: small_best.time_us,
    }
}

/// §VII — OT base sweep: analytic table cost plus simulated time for the
/// feasible two-level bases. Returns `(base, entries, modmuls, time_us)`;
/// time is `NaN` for analytic-only rows.
pub fn ot_base_sweep(log_n: u32, np: usize) -> Vec<(usize, usize, usize, f64)> {
    let n = 1usize << log_n;
    let analytic = ntt_core::ot::base_sweep(n, &[2, 4, 16, 64, 256, 512, 1024, 2048, 4096, 8192]);
    let n1 = SmemConfig::paper_splits(log_n)[0];
    analytic
        .into_iter()
        .map(|c| {
            let time = if c.base * c.base >= n && c.base >= 2 {
                let (mut mem, batch) = fresh_batch(log_n, np);
                let gpu = mem.gpu_mut();
                let ot = DeviceOt::upload(gpu, &batch, c.base);
                let cfg = SmemConfig {
                    ot_base: c.base,
                    ..SmemConfig::new(n1).ot_stages(2)
                };
                let rep = smem::run_with_ot(gpu, &batch, &cfg, Some(&ot));
                rep.total_us()
            } else {
                f64::NAN
            };
            (c.base, c.entries, c.modmuls, time)
        })
        .collect()
}

/// One shard count's outcome in the multi-device sweep.
#[derive(Debug, Clone)]
pub struct ShardingReport {
    /// Simulated devices the RNS residue rows partition across.
    pub shards: usize,
    /// Modeled device window for the job set: `overlapped_s` is the
    /// slowest shard's clock (the devices run concurrently), while
    /// serialized time and launches sum over the set.
    pub timeline: gpu_sim::DeviceTimeline,
    /// Inter-device words moved inside the window — the key-switch base
    /// conversion's all-gather traffic (zero at K = 1).
    pub link_words: usize,
    /// Inter-device transfer messages inside the window.
    pub link_transfers: usize,
}

/// The multi-device sweep: the same serving job set per shard count,
/// with the K = 1 entry as the single-device control (the `figures
/// sharding` rows and the `bench_smoke` scaling gate's inputs).
#[derive(Debug, Clone)]
pub struct ShardingSweep {
    /// Ring degree log2.
    pub log_n: u32,
    /// Modulus-chain depth (residue rows at full level).
    pub levels: usize,
    /// encrypt → multiply/relinearize → rescale → decrypt chains per
    /// configuration.
    pub jobs: usize,
    /// One report per requested shard count, in request order.
    pub reports: Vec<ShardingReport>,
}

impl ShardingSweep {
    /// The single-device control (the K = 1 entry; falls back to the
    /// smallest swept K when 1 was not requested).
    pub fn baseline(&self) -> &ShardingReport {
        self.reports
            .iter()
            .min_by_key(|r| r.shards)
            .expect("sweep ran at least one shard count")
    }

    /// Modeled device-time speedup of `r` over the single-device
    /// control (overlapped clocks: the devices run concurrently).
    pub fn speedup(&self, r: &ShardingReport) -> f64 {
        self.baseline().timeline.overlapped_s / r.timeline.overlapped_s.max(f64::MIN_POSITIVE)
    }

    /// Scaling efficiency of `r`: speedup over the control divided by
    /// its device count (1.0 = perfect linear scaling).
    pub fn efficiency(&self, r: &ShardingReport) -> f64 {
        self.speedup(r) / r.shards as f64
    }
}

/// Scheme parameters for the sharding sweep: a deeper modulus chain
/// than [`serve_params`] (5 key-switch digits, caller-chosen depth) so
/// an 8-way partition still has residue rows on every device and the
/// kernels are row-work-bound rather than launch-overhead-bound. Every
/// kernel launch costs a fixed modeled overhead regardless of its row
/// count, and the per-shard launch count does not shrink with K — so
/// scaling efficiency is a function of ring degree and chain depth
/// (work per launch), which is exactly the regime split real multi-GPU
/// HE stacks report: small rings don't scale, bootstrapping-scale
/// rings do. Keep `levels % 8 == 0` so the K = 1/2/4/8 sweep hits the
/// key-switch digit-alignment fast path at every point.
fn sharding_params(log_n: u32, levels: usize) -> he_lite::HeLiteParams {
    he_lite::HeLiteParams {
        log_n,
        prime_bits: 50,
        levels,
        scale_bits: 40,
        gadget_bits: 10,
        error_eta: 4,
    }
}

/// The serving chain body shared by every sweep configuration: `jobs`
/// seeded encrypt → multiply/relinearize → rescale → decrypt chains,
/// returning the decoded results (the bit-exactness digest).
fn sharding_run(ctx: &he_lite::HeContext, keys: &he_lite::KeySet, jobs: usize) -> Vec<Vec<f64>> {
    (0..jobs)
        .map(|j| {
            let mut rng = he_lite::sampling::seeded_rng(100 + j as u64);
            let a = ctx.encrypt(&ctx.encode(&[1.0 + j as f64, -0.5]), &keys.public, &mut rng);
            let b = ctx.encrypt(&ctx.encode(&[2.0, 0.25 * j as f64]), &keys.public, &mut rng);
            let mut prod = ctx.multiply(&a, &b, &keys.relin);
            ctx.rescale(&mut prod);
            ctx.decode(&ctx.decrypt(&prod, &keys.secret))
        })
        .collect()
}

/// Sweep the serving chain across shard counts on the multi-device
/// [`ntt_gpu::ShardedBackend`], asserting every configuration's results
/// are bit-identical to a `CpuBackend` reference before reporting
/// modeled device windows and inter-device link traffic. Modeled time
/// on both sides of any derived gate comes from the same deterministic
/// run, so the gates hold on any host.
///
/// Keys are generated **once** on the CPU backend and adopted into
/// every sharded configuration ([`he_lite::HeContext::adopt_keys`],
/// the PR 9 cross-backend key-adoption path): keygen is bit-identical
/// across backends, and re-simulating the key NTTs per configuration
/// would dominate the sweep's wall clock at gate scale without
/// changing a single measured number.
pub fn sharding(log_n: u32, levels: usize, jobs: usize, shard_counts: &[usize]) -> ShardingSweep {
    type SharedShards = std::sync::Arc<std::sync::Mutex<ntt_gpu::ShardedMemory>>;
    fn drain_shards(dev: &SharedShards) {
        dev.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .sync_all();
    }
    fn snapshot(dev: &SharedShards) -> (gpu_sim::DeviceTimeline, ntt_gpu::LinkStats) {
        let m = dev
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (m.timeline(), m.link_stats())
    }

    let params = sharding_params(log_n, levels);
    let cpu = he_lite::HeContext::new(params).expect("cpu context builds");
    let keys = cpu.keygen(&mut he_lite::sampling::seeded_rng(7));
    let reference = sharding_run(&cpu, &keys, jobs);

    let mut reports = Vec::new();
    for &k in shard_counts {
        let backend = ntt_gpu::ShardedBackend::titan_v(k, 1usize << log_n);
        let dev = backend.memory_handle();
        let ctx = he_lite::HeContext::with_backend(params, Box::new(backend))
            .expect("sharded context builds");
        let keys = ctx.adopt_keys(&keys);

        // Warm-up: twiddle tables, forward-path calibration and pool
        // setup happen once, outside the measured window.
        let _ = sharding_run(&ctx, &keys, 1);
        drain_shards(&dev);
        let (t0, l0) = snapshot(&dev);
        let outs = sharding_run(&ctx, &keys, jobs);
        drain_shards(&dev);
        let (t1, l1) = snapshot(&dev);

        assert_eq!(
            outs, reference,
            "K={k} sharded chains depart from the CPU reference"
        );
        let link = l1.since(&l0);
        reports.push(ShardingReport {
            shards: k,
            timeline: t1.since(&t0),
            link_words: link.words,
            link_transfers: link.transfers,
        });
    }
    ShardingSweep {
        log_n,
        levels,
        jobs,
        reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Shape tests at reduced size (log_n = 10, np = 3) so the suite stays
    // fast; the figures binary runs the paper-scale versions.

    #[test]
    fn streams_overlap_independent_chains() {
        let r = streams(6, 4);
        assert_eq!(r.evaluators, 4);
        assert!(r.timeline.launches > 0);
        assert!(
            r.timeline.overlapped_s <= r.timeline.serialized_s + 1e-12,
            "overlap cannot exceed the serialized schedule: {r:?}"
        );
        assert!(
            r.overlap() > 1.3,
            "4 independent chains must overlap >= 1.3x, got {:.2}x",
            r.overlap()
        );
        // More evaluators -> more overlap than a single-stream run.
        let solo = streams(6, 1);
        assert!(r.overlap() > solo.overlap());
    }

    #[test]
    fn residency_reports_overlap_line() {
        let r = residency(6);
        assert!(r.timeline.serialized_s > 0.0);
        assert!(r.timeline.overlapped_s <= r.timeline.serialized_s + 1e-12);
    }

    #[test]
    fn fig1_shoup_wins() {
        // Needs enough butterflies for compute to rival the DRAM floor
        // (at paper scale the gap is 2.4x; here it is smaller but real).
        let rows = fig1(14, 8);
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].time_us > rows[0].time_us,
            "native {} vs shoup {}",
            rows[1].time_us,
            rows[0].time_us
        );
    }

    #[test]
    fn fig3_batching_improves_per_ntt_time() {
        let rows = fig3a(10, &[1, 2, 4, 8]);
        assert!(rows.last().unwrap().per_ntt_us < rows[0].per_ntt_us);
        // Utilization should be non-decreasing-ish from batch 1 to max.
        assert!(rows.last().unwrap().utilization > rows[0].utilization * 0.9);
    }

    #[test]
    fn fig4_high_radix_beats_radix2() {
        let rows = fig4(12, 3, &[2, 16]);
        assert!(rows[1].time_us < rows[0].time_us);
        assert!(rows[1].dram_mb < rows[0].dram_mb);
    }

    #[test]
    fn fig8_ends_at_parity() {
        let rows = fig8(12);
        assert_eq!(rows.len(), 12);
        assert!((rows[11].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table2_ordering_holds() {
        // N must be large enough that the OT factor tables (1024 + N/1024
        // entries) are smaller than the late-stage twiddles they replace.
        let rows = table2(&[12], 3);
        let (_, r2, s, s_ot) = &rows[0];
        assert!(s.time_us < r2.time_us, "SMEM beats radix-2");
        assert!(
            s_ot.dram_mb < s.dram_mb,
            "OT cuts traffic: {} vs {}",
            s_ot.dram_mb,
            s.dram_mb
        );
    }

    #[test]
    fn fpga_rows_have_positive_speedup() {
        let rows = fpga_comparison(10, &[2]);
        assert!(rows[0].3 > 0.0);
    }
}
