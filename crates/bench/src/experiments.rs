//! The experiments behind every figure and table in the paper.

use gpu_sim::{Gpu, GpuConfig};
use ntt_gpu::batch::DeviceBatch;
use ntt_gpu::dft::DftBatch;
use ntt_gpu::fpga_baseline::FpgaNtt;
use ntt_gpu::ot::DeviceOt;
use ntt_gpu::radix2::ModMul;
use ntt_gpu::smem::SmemConfig;
use ntt_gpu::{dft, high_radix, radix2, smem, RunReport};

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Configuration label.
    pub label: String,
    /// Total modeled time for the whole batch, microseconds.
    pub time_us: f64,
    /// Time per transform (total / np), microseconds.
    pub per_ntt_us: f64,
    /// DRAM traffic (including spills), megabytes.
    pub dram_mb: f64,
    /// Achieved DRAM bandwidth utilization (fraction of peak).
    pub utilization: f64,
    /// Minimum occupancy across the launches.
    pub occupancy: f64,
}

fn measure(label: impl Into<String>, gpu: &Gpu, report: &RunReport, np: usize) -> Measurement {
    Measurement {
        label: label.into(),
        time_us: report.total_us(),
        per_ntt_us: report.per_ntt_us(np),
        dram_mb: report.dram_mb(gpu),
        utilization: report.dram_utilization(gpu),
        occupancy: report.min_occupancy(),
    }
}

fn fresh_batch(log_n: u32, np: usize) -> (Gpu, DeviceBatch) {
    let mut gpu = Gpu::new(GpuConfig::titan_v());
    let batch = DeviceBatch::sequential(&mut gpu, log_n, np, 60)
        .expect("paper parameters always have valid prime chains");
    (gpu, batch)
}

/// The best-performing SMEM split for a given `log N`, determined the way
/// the paper does (minimum over the Fig. 12(a) splits), per-thread size 8.
pub fn best_split(log_n: u32, np: usize, ot_stages: u32) -> (usize, Measurement) {
    let mut best: Option<(usize, Measurement)> = None;
    for n1 in SmemConfig::paper_splits(log_n) {
        let (mut gpu, batch) = fresh_batch(log_n, np);
        let cfg = SmemConfig::new(n1).ot_stages(ot_stages);
        let rep = smem::run(&mut gpu, &batch, &cfg);
        debug_assert!(rep.verify(&gpu, &batch));
        let m = measure(cfg.label(batch.n()), &gpu, &rep, np);
        if best.as_ref().is_none_or(|(_, b)| m.time_us < b.time_us) {
            best = Some((n1, m));
        }
    }
    best.expect("at least one split")
}

/// Fig. 1 — Shoup's modmul vs the native modulo on the optimized NTT
/// (the paper: 332.9 µs vs 789.2 µs, 2.4×, at `N = 2^17`, `np = 45`).
pub fn fig1(log_n: u32, np: usize) -> Vec<Measurement> {
    let n1 = SmemConfig::paper_splits(log_n)[0];
    [ModMul::Shoup, ModMul::Native]
        .into_iter()
        .map(|mode| {
            let (mut gpu, batch) = fresh_batch(log_n, np);
            let cfg = SmemConfig::new(n1).modmul(mode);
            let rep = smem::run(&mut gpu, &batch, &cfg);
            measure(
                match mode {
                    ModMul::Shoup => "Shoup",
                    ModMul::Native => "Native",
                },
                &gpu,
                &rep,
                np,
            )
        })
        .collect()
}

/// Fig. 3(a) — radix-2 NTT across batch sizes: per-NTT time drops then
/// saturates while DRAM utilization climbs to ~86.7%.
pub fn fig3a(log_n: u32, batch_sizes: &[usize]) -> Vec<Measurement> {
    batch_sizes
        .iter()
        .map(|&np| {
            let (mut gpu, batch) = fresh_batch(log_n, np);
            let rep = radix2::run(&mut gpu, &batch, ModMul::Shoup);
            measure(format!("batch {np}"), &gpu, &rep, np)
        })
        .collect()
}

/// Fig. 3(b) — the same batching sweep for the radix-2 DFT.
pub fn fig3b(log_n: u32, batch_sizes: &[usize]) -> Vec<Measurement> {
    batch_sizes
        .iter()
        .map(|&np| {
            let mut gpu = Gpu::new(GpuConfig::titan_v());
            let batch = DftBatch::sequential(&mut gpu, log_n, np);
            let rep = dft::run_radix2(&mut gpu, &batch);
            debug_assert!(batch.verify(&gpu));
            measure(format!("batch {np}"), &gpu, &rep, np)
        })
        .collect()
}

/// Fig. 4(a,b,c) — NTT register-based high-radix sweep.
pub fn fig4(log_n: u32, np: usize, radices: &[usize]) -> Vec<Measurement> {
    radices
        .iter()
        .map(|&r| {
            let (mut gpu, batch) = fresh_batch(log_n, np);
            let rep = high_radix::run(&mut gpu, &batch, r);
            measure(format!("radix-{r}"), &gpu, &rep, np)
        })
        .collect()
}

/// Fig. 5(a,b,c) — DFT register-based high-radix sweep.
pub fn fig5(log_n: u32, np: usize, radices: &[usize]) -> Vec<Measurement> {
    radices
        .iter()
        .map(|&r| {
            let mut gpu = Gpu::new(GpuConfig::titan_v());
            let batch = DftBatch::sequential(&mut gpu, log_n, np);
            let rep = dft::run_high_radix(&mut gpu, &batch, r);
            measure(format!("radix-{r}"), &gpu, &rep, np)
        })
        .collect()
}

/// Fig. 7 — Kernel-1 with and without coalesced access, across Kernel-1
/// sizes. Returns (label, kernel-1 time µs) pairs: first uncoalesced,
/// then coalesced, per size.
pub fn fig7(log_n: u32, np: usize, k1_sizes: &[usize]) -> Vec<Measurement> {
    let mut out = Vec::new();
    for &n1 in k1_sizes {
        for coalesced in [false, true] {
            let (mut gpu, batch) = fresh_batch(log_n, np);
            let cfg = SmemConfig::new(n1).coalesced(coalesced);
            let rep = smem::run(&mut gpu, &batch, &cfg);
            let k1_us = rep.launches[0].timing.total_s * 1e6;
            out.push(Measurement {
                label: format!(
                    "K1={n1} {}",
                    if coalesced {
                        "coalesced"
                    } else {
                        "uncoalesced"
                    }
                ),
                time_us: k1_us,
                per_ntt_us: k1_us / np as f64,
                dram_mb: rep.launches[0].dram_bytes(&gpu.config) as f64 / (1 << 20) as f64,
                utilization: rep.launches[0]
                    .timing
                    .dram_utilization(rep.launches[0].dram_bytes(&gpu.config), &gpu.config),
                occupancy: rep.launches[0].timing.occupancy,
            });
        }
    }
    out
}

/// Fig. 8 — relative twiddle-table vs input bytes per radix-2 stage
/// (pure accounting; returns `(stage, ratio)`).
pub fn fig8(log_n: u32) -> Vec<(u32, f64)> {
    let table = ntt_core::NttTable::new_with_bits(1 << log_n, 60).expect("valid table");
    table.relative_stage_sizes()
}

/// Fig. 8, measured: run the radix-2 stage launches and derive the same
/// ratio from counted DRAM transactions — per stage, twiddle read
/// transactions (total reads minus the one-pass data traffic) over input
/// bytes. Returns `(stage, analytic, measured)`; the two columns agree
/// exactly from the first stage whose slice-pair fills a 32-byte sector
/// (`m ≥ 4` — below that the model floors at one sector per table).
pub fn fig8_measured(log_n: u32, np: usize) -> Vec<(u32, f64, f64)> {
    let (mut gpu, batch) = fresh_batch(log_n, np);
    let n = batch.n();
    let rep = radix2::run(&mut gpu, &batch, ModMul::Shoup);
    let analytic = fig8(log_n);
    rep.launches
        .iter()
        .zip(analytic)
        .map(|(launch, (stage, ratio))| {
            let data_txns = (np * n / 4) as u64;
            let tw_txns = launch
                .stats
                .dram_read_transactions
                .saturating_sub(data_txns);
            let measured = (tw_txns * 32) as f64 / (np * n * 8) as f64;
            (stage, ratio, measured)
        })
        .collect()
}

/// Fig. 9 — Kernel-1 with and without preloading twiddles into SMEM.
pub fn fig9(log_n: u32, np: usize, k1_sizes: &[usize]) -> Vec<Measurement> {
    let mut out = Vec::new();
    for &n1 in k1_sizes {
        for preload in [false, true] {
            let (mut gpu, batch) = fresh_batch(log_n, np);
            let cfg = SmemConfig::new(n1).preload(preload);
            let rep = smem::run(&mut gpu, &batch, &cfg);
            let k1_us = rep.launches[0].timing.total_s * 1e6;
            out.push(Measurement {
                label: format!("K1={n1} {}", if preload { "preload" } else { "direct" }),
                time_us: k1_us,
                per_ntt_us: k1_us / np as f64,
                dram_mb: rep.launches[0].dram_bytes(&gpu.config) as f64 / (1 << 20) as f64,
                utilization: 0.0,
                occupancy: rep.launches[0].timing.occupancy,
            });
        }
    }
    out
}

/// Fig. 11(a) — SMEM NTT across splits and per-thread sizes 2/4/8.
pub fn fig11a(log_n: u32, np: usize) -> Vec<Measurement> {
    let mut out = Vec::new();
    for t in [2usize, 4, 8] {
        for n1 in SmemConfig::paper_splits(log_n) {
            let (mut gpu, batch) = fresh_batch(log_n, np);
            let cfg = SmemConfig::new(n1).per_thread(t);
            let rep = smem::run(&mut gpu, &batch, &cfg);
            out.push(measure(cfg.label(batch.n()), &gpu, &rep, np));
        }
    }
    out
}

/// Fig. 11(b) — SMEM DFT across splits and per-thread sizes.
pub fn fig11b(log_n: u32, np: usize) -> Vec<Measurement> {
    let mut out = Vec::new();
    for t in [2usize, 4, 8] {
        for n1 in SmemConfig::paper_splits(log_n) {
            let mut gpu = Gpu::new(GpuConfig::titan_v());
            let batch = DftBatch::sequential(&mut gpu, log_n, np);
            let rep = dft::run_smem(&mut gpu, &batch, n1, t);
            out.push(measure(
                format!("{}x{} t{}", n1, batch.n() / n1, t),
                &gpu,
                &rep,
                np,
            ));
        }
    }
    out
}

/// Fig. 11(c) — OT on the last 0/1/2 stages across splits (t = 8).
pub fn fig11c(log_n: u32, np: usize) -> Vec<Measurement> {
    let mut out = Vec::new();
    for ot in [0u32, 1, 2] {
        for n1 in SmemConfig::paper_splits(log_n) {
            let (mut gpu, batch) = fresh_batch(log_n, np);
            let cfg = SmemConfig::new(n1).ot_stages(ot);
            let rep = smem::run(&mut gpu, &batch, &cfg);
            out.push(measure(cfg.label(batch.n()), &gpu, &rep, np));
        }
    }
    out
}

/// Fig. 12(b,c) — best SMEM configuration with and without OT per `log N`:
/// returns `(log_n, without, with)` rows.
pub fn fig12(log_ns: &[u32], np: usize) -> Vec<(u32, Measurement, Measurement)> {
    log_ns
        .iter()
        .map(|&log_n| {
            let (_, without) = best_split(log_n, np, 0);
            let (_, with) = best_split(log_n, np, 2);
            (log_n, without, with)
        })
        .collect()
}

/// Fig. 13 — execution time vs batch size at the best split of `N = 2^17`
/// (returns one measurement per `np`, with nominal `log Q = 60·np`).
pub fn fig13(log_n: u32, batch_sizes: &[usize]) -> Vec<Measurement> {
    let n1 = SmemConfig::paper_splits(log_n)[0];
    batch_sizes
        .iter()
        .map(|&np| {
            let (mut gpu, batch) = fresh_batch(log_n, np);
            let cfg = SmemConfig::new(n1);
            let rep = smem::run(&mut gpu, &batch, &cfg);
            measure(format!("np={np} logQ={}", 60 * np), &gpu, &rep, np)
        })
        .collect()
}

/// Table II — radix-2 vs SMEM without OT vs SMEM with OT, per `log N`.
/// Returns `(log_n, radix2, smem, smem_ot)`.
pub fn table2(log_ns: &[u32], np: usize) -> Vec<(u32, Measurement, Measurement, Measurement)> {
    log_ns
        .iter()
        .map(|&log_n| {
            let (mut gpu, batch) = fresh_batch(log_n, np);
            let rep = radix2::run(&mut gpu, &batch, ModMul::Shoup);
            let r2 = measure("radix-2", &gpu, &rep, np);
            let (_, s) = best_split(log_n, np, 0);
            let (_, s_ot) = best_split(log_n, np, 2);
            (log_n, r2, s, s_ot)
        })
        .collect()
}

/// §VIII — comparison against the FCCM'20 FPGA accelerator at
/// `(N = 2^17, np = 36)` and `(N = 2^17, np = 42)`.
/// Returns `(np, gpu_us, fpga_us, speedup)`.
pub fn fpga_comparison(log_n: u32, batch_sizes: &[usize]) -> Vec<(usize, f64, f64, f64)> {
    let fpga = FpgaNtt::fccm20();
    batch_sizes
        .iter()
        .map(|&np| {
            let (_, m) = best_split(log_n, np, 2);
            let f_us = fpga.time_us(1 << log_n, np);
            (np, m.time_us, f_us, f_us / m.time_us)
        })
        .collect()
}

/// §IV word-size ablation: `Q ≈ 2^1200` as 40 × 30-bit vs 20 × 60-bit
/// primes. Returns the two measurements (30-bit path models half-width
/// elements by halving N-word traffic — see EXPERIMENTS.md).
pub fn wordsize(log_n: u32) -> Vec<Measurement> {
    // 60-bit path: 20 primes of full-width words.
    let n1 = SmemConfig::paper_splits(log_n)[0];
    let (mut gpu, batch) = fresh_batch(log_n, 20);
    let rep = smem::run(&mut gpu, &batch, &SmemConfig::new(n1));
    let m60 = measure("20 x 60-bit", &gpu, &rep, 20);
    // 30-bit path: 40 primes; elements are half-width so the modeled time
    // halves the per-element traffic but doubles the transform count.
    let (mut gpu2, batch2) = fresh_batch(log_n, 40);
    let rep2 = smem::run(&mut gpu2, &batch2, &SmemConfig::new(n1));
    let mut m30 = measure("40 x 30-bit", &gpu2, &rep2, 40);
    m30.time_us *= 0.5;
    m30.dram_mb *= 0.5;
    vec![m60, m30]
}

/// Residency accounting for a device-resident `he-lite` chain on the
/// simulated GPU.
#[derive(Debug, Clone)]
pub struct ResidencyReport {
    /// Parameter description.
    pub params: String,
    /// Transfers during setup: table upload, keygen key upload, two
    /// encryptions (the chain's "initial upload").
    pub initial: ntt_core::TransferStats,
    /// Transfers during one steady-state multiply/relinearize/rescale —
    /// the quantity the residency gates pin to zero.
    pub steady: ntt_core::TransferStats,
}

/// Run keygen → encrypt ×2 → multiply on a `SimBackend`-resident
/// `HeContext` and split the transfer ledger into the initial-upload and
/// steady-state windows (the figures harness prints this as the
/// transfer-count line; `tests/residency.rs` and the `bench_guard` gate
/// assert the steady window stays at zero).
pub fn residency(log_n: u32) -> ResidencyReport {
    use he_lite::{sampling, HeContext, HeLiteParams};
    let params = HeLiteParams {
        log_n,
        prime_bits: 50,
        levels: 3,
        scale_bits: 46,
        gadget_bits: 10,
        error_eta: 6,
    };
    let ctx = HeContext::with_backend(params, Box::new(ntt_gpu::SimBackend::titan_v()))
        .expect("sim context builds");
    let keys = ctx.keygen(&mut sampling::seeded_rng(42));
    let mut rng = sampling::seeded_rng(7);
    let a = ctx.encrypt(&ctx.encode(&[2.5, -1.0]), &keys.public, &mut rng);
    let b = ctx.encrypt(&ctx.encode(&[3.0, 0.5]), &keys.public, &mut rng);
    let initial = ctx.transfer_stats();
    let _ = ctx.multiply(&a, &b, &keys.relin);
    let steady = ctx.transfer_stats().since(&initial);
    ResidencyReport {
        params: format!("{params}"),
        initial,
        steady,
    }
}

/// §VII — OT base sweep: analytic table cost plus simulated time for the
/// feasible two-level bases. Returns `(base, entries, modmuls, time_us)`;
/// time is `NaN` for analytic-only rows.
pub fn ot_base_sweep(log_n: u32, np: usize) -> Vec<(usize, usize, usize, f64)> {
    let n = 1usize << log_n;
    let analytic = ntt_core::ot::base_sweep(n, &[2, 4, 16, 64, 256, 512, 1024, 2048, 4096, 8192]);
    let n1 = SmemConfig::paper_splits(log_n)[0];
    analytic
        .into_iter()
        .map(|c| {
            let time = if c.base * c.base >= n && c.base >= 2 {
                let (mut gpu, batch) = fresh_batch(log_n, np);
                let ot = DeviceOt::upload(&mut gpu, &batch, c.base);
                let cfg = SmemConfig {
                    ot_base: c.base,
                    ..SmemConfig::new(n1).ot_stages(2)
                };
                let rep = smem::run_with_ot(&mut gpu, &batch, &cfg, Some(&ot));
                rep.total_us()
            } else {
                f64::NAN
            };
            (c.base, c.entries, c.modmuls, time)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Shape tests at reduced size (log_n = 10, np = 3) so the suite stays
    // fast; the figures binary runs the paper-scale versions.

    #[test]
    fn fig1_shoup_wins() {
        // Needs enough butterflies for compute to rival the DRAM floor
        // (at paper scale the gap is 2.4x; here it is smaller but real).
        let rows = fig1(14, 8);
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].time_us > rows[0].time_us,
            "native {} vs shoup {}",
            rows[1].time_us,
            rows[0].time_us
        );
    }

    #[test]
    fn fig3_batching_improves_per_ntt_time() {
        let rows = fig3a(10, &[1, 2, 4, 8]);
        assert!(rows.last().unwrap().per_ntt_us < rows[0].per_ntt_us);
        // Utilization should be non-decreasing-ish from batch 1 to max.
        assert!(rows.last().unwrap().utilization > rows[0].utilization * 0.9);
    }

    #[test]
    fn fig4_high_radix_beats_radix2() {
        let rows = fig4(12, 3, &[2, 16]);
        assert!(rows[1].time_us < rows[0].time_us);
        assert!(rows[1].dram_mb < rows[0].dram_mb);
    }

    #[test]
    fn fig8_ends_at_parity() {
        let rows = fig8(12);
        assert_eq!(rows.len(), 12);
        assert!((rows[11].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table2_ordering_holds() {
        // N must be large enough that the OT factor tables (1024 + N/1024
        // entries) are smaller than the late-stage twiddles they replace.
        let rows = table2(&[12], 3);
        let (_, r2, s, s_ot) = &rows[0];
        assert!(s.time_us < r2.time_us, "SMEM beats radix-2");
        assert!(
            s_ot.dram_mb < s.dram_mb,
            "OT cuts traffic: {} vs {}",
            s_ot.dram_mb,
            s.dram_mb
        );
    }

    #[test]
    fn fpga_rows_have_positive_speedup() {
        let rows = fpga_comparison(10, &[2]);
        assert!(rows[0].3 > 0.0);
    }
}
