//! Gate benchmark recordings against regressions.
//!
//! Two modes:
//!
//! **Within-run ratio gates** (the CI default) — one recording, gates
//! between benchmarks *of that same run*:
//!
//! ```text
//! bench_guard <current.json> --gate "GROUP/FAST<=0.6*GROUP/SLOW" [--gate ...]
//! ```
//!
//! A gate `A<=F*B` passes when `ns(A) ≤ F · ns(B)`. Because both sides
//! come from the same host, the same build, and the same measurement
//! window, the comparison is immune to the cross-host variance that made
//! absolute-ns baselines flake (a slow CI runner slows both sides
//! equally). Use this to pin structural speedups — e.g. the fused lazy
//! pipeline must stay well under the strict pipeline it replaced.
//!
//! **Absolute baseline comparison** (legacy; only meaningful on
//! comparable hosts):
//!
//! ```text
//! bench_guard <baseline.json> <current.json> [--threshold 1.25] [--only PFX1,PFX2]
//! ```
//!
//! Files may be either the repository's wrapped baseline format
//! (`{"benchmarks": [{"id": ..., "ns_per_iter": ...}, ...]}`, e.g.
//! `BENCH_seed.json`) or the raw JSON-lines the criterion shim appends
//! under `CRITERION_JSON=`.
//!
//! Timings are wall-clock medians from short (60 ms) measurement windows,
//! so factors with less than ~25% headroom will flake on shared CI
//! hardware.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Extract `(id, ns_per_iter)` pairs by scanning for the two keys in
/// order. Tolerates both the wrapped and the JSON-lines layout without a
/// full JSON parser (the shim writes one object per line; the wrapped
/// format nests the same objects in an array).
fn parse_benchmarks(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let mut pending_id: Option<String> = None;
    let mut rest = text;
    loop {
        // Find whichever key comes next.
        let next_id = rest.find("\"id\"");
        let next_ns = rest.find("\"ns_per_iter\"");
        match (next_id, next_ns) {
            (Some(i), ns) if ns.is_none_or(|n| i < n) => {
                let after = &rest[i + 4..];
                let Some(start) = after.find('"') else { break };
                let Some(len) = after[start + 1..].find('"') else {
                    break;
                };
                pending_id = Some(after[start + 1..start + 1 + len].to_string());
                rest = &after[start + 1 + len..];
            }
            (_, Some(i)) => {
                let after = &rest[i + 13..];
                let Some(colon) = after.find(':') else { break };
                let num: String = after[colon + 1..]
                    .chars()
                    .skip_while(|c| c.is_whitespace())
                    .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
                    .collect();
                if let (Some(id), Ok(ns)) = (pending_id.take(), num.parse::<f64>()) {
                    out.insert(id, ns);
                }
                rest = &after[colon + 1..];
            }
            _ => break,
        }
    }
    out
}

/// One within-run gate: `current <= factor * reference`.
struct RatioGate {
    current: String,
    factor: f64,
    reference: String,
}

/// Parse `"A<=F*B"` into a [`RatioGate`].
fn parse_gate(spec: &str) -> Option<RatioGate> {
    let (current, rhs) = spec.split_once("<=")?;
    let (factor, reference) = rhs.split_once('*')?;
    Some(RatioGate {
        current: current.trim().to_string(),
        factor: factor.trim().parse().ok()?,
        reference: reference.trim().to_string(),
    })
}

/// Evaluate within-run ratio gates against one recording. Missing
/// benchmark ids are hard errors (exit 2): a gate that cannot run must
/// not silently pass.
fn run_ratio_gates(file: &str, gates: &[RatioGate]) -> ExitCode {
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| panic!("read {file}: {e}"));
    let benchmarks = parse_benchmarks(&text);
    let mut failures = 0usize;
    let mut missing = 0usize;
    println!(
        "{:<52} {:>12} {:>12} {:>8}",
        "gate (current <= factor * reference)", "current ns", "bound ns", "ratio"
    );
    for g in gates {
        let (Some(&cur), Some(&reference)) =
            (benchmarks.get(&g.current), benchmarks.get(&g.reference))
        else {
            eprintln!(
                "missing benchmark for gate {} <= {} * {}",
                g.current, g.factor, g.reference
            );
            missing += 1;
            continue;
        };
        let bound = g.factor * reference;
        let ratio = cur / reference;
        let flag = if cur > bound {
            failures += 1;
            "  << GATE FAILED"
        } else {
            ""
        };
        println!(
            "{:<52} {:>12.1} {:>12.1} {:>7.2}x{}",
            format!("{} <= {}x {}", g.current, g.factor, g.reference),
            cur,
            bound,
            ratio,
            flag
        );
    }
    println!();
    if missing > 0 {
        eprintln!("{missing} gates had missing benchmarks");
        return ExitCode::from(2);
    }
    if failures > 0 {
        eprintln!("{failures}/{} within-run ratio gates failed", gates.len());
        return ExitCode::FAILURE;
    }
    println!("{} within-run ratio gates passed", gates.len());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut threshold = 1.25f64;
    let mut only: Vec<String> = Vec::new();
    let mut gates: Vec<RatioGate> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threshold needs a number");
            }
            "--only" => {
                only = it
                    .next()
                    .map(|v| v.split(',').map(str::to_string).collect())
                    .unwrap_or_default();
            }
            "--gate" => {
                let spec = it.next().expect("--gate needs a SPEC");
                gates.push(
                    parse_gate(spec)
                        .unwrap_or_else(|| panic!("bad gate spec {spec:?} (want \"A<=F*B\")")),
                );
            }
            _ => files.push(a.clone()),
        }
    }
    if !gates.is_empty() {
        if files.len() != 1 {
            eprintln!("usage: bench_guard <current.json> --gate \"A<=F*B\" [--gate ...]");
            return ExitCode::from(2);
        }
        return run_ratio_gates(&files[0], &gates);
    }
    if files.len() != 2 {
        eprintln!(
            "usage: bench_guard <current.json> --gate \"A<=F*B\" [--gate ...]\n       bench_guard <baseline.json> <current.json> [--threshold X] [--only PFX1,PFX2]"
        );
        return ExitCode::from(2);
    }
    let read = |p: &str| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read {p}: {e}"));
    let baseline = parse_benchmarks(&read(&files[0]));
    let current = parse_benchmarks(&read(&files[1]));

    let mut regressions = 0usize;
    let mut compared = 0usize;
    println!(
        "{:<52} {:>12} {:>12} {:>8}",
        "benchmark", "baseline ns", "current ns", "ratio"
    );
    for (id, &base) in &baseline {
        if !only.is_empty() && !only.iter().any(|pfx| id.starts_with(pfx.as_str())) {
            continue;
        }
        let Some(&cur) = current.get(id) else {
            continue;
        };
        compared += 1;
        let ratio = cur / base;
        let flag = if ratio > threshold {
            regressions += 1;
            "  << REGRESSION"
        } else {
            ""
        };
        println!("{id:<52} {base:>12.1} {cur:>12.1} {ratio:>7.2}x{flag}");
    }
    println!();
    if compared == 0 {
        eprintln!("no common benchmarks between the two files — nothing compared");
        return ExitCode::from(2);
    }
    if regressions > 0 {
        eprintln!("{regressions}/{compared} benchmarks regressed beyond {threshold}x the baseline");
        return ExitCode::FAILURE;
    }
    println!("{compared} benchmarks within {threshold}x of the baseline");
    ExitCode::SUCCESS
}
