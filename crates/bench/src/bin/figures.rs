//! Regenerate every table and figure of the paper on the simulator.
//!
//! Usage:
//!
//! ```text
//! figures [--quick] [fig1 fig3 fig4 fig5 fig7 fig8 fig9 fig11a fig11b
//!          fig11c fig12 fig13 table2 fpga wordsize residency streams
//!          serve sharding bootstrap otbase]
//! ```
//!
//! With no figure names, everything runs. `--quick` shrinks N/np so a full
//! sweep finishes in seconds (shape-preserving, used by CI).

use ntt_bench::experiments as ex;

struct Scale {
    log_n: u32,
    log_n_small: u32,
    np: usize,
    np_fig1: usize,
    batch_sweep: Vec<usize>,
    fig13_sweep: Vec<usize>,
    table2_logs: Vec<u32>,
}

fn paper_scale() -> Scale {
    Scale {
        log_n: 17,
        log_n_small: 16,
        np: 21,
        np_fig1: 45,
        batch_sweep: vec![1, 2, 3, 5, 8, 13, 21],
        fig13_sweep: vec![1, 6, 11, 16, 21, 26, 31, 36, 41, 45],
        table2_logs: vec![14, 15, 16, 17],
    }
}

fn quick_scale() -> Scale {
    Scale {
        log_n: 13,
        log_n_small: 12,
        np: 4,
        np_fig1: 6,
        batch_sweep: vec![1, 2, 4],
        fig13_sweep: vec![1, 2, 4, 6],
        table2_logs: vec![11, 12, 13],
    }
}

fn header(title: &str, paper: &str) {
    println!();
    println!("== {title}");
    println!("   paper: {paper}");
    println!("{:-<78}", "");
}

fn print_rows(rows: &[ex::Measurement], np: usize) {
    println!(
        "{:<28} {:>10} {:>10} {:>9} {:>7} {:>6}",
        "config", "total us", "per-NTT us", "DRAM MB", "util%", "occ%"
    );
    for m in rows {
        println!(
            "{:<28} {:>10.1} {:>10.1} {:>9.1} {:>7.1} {:>6.1}",
            m.label,
            m.time_us,
            m.time_us / np as f64,
            m.dram_mb,
            m.utilization * 100.0,
            m.occupancy * 100.0
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let run = |name: &str| wanted.is_empty() || wanted.contains(&name);
    let s = if quick { quick_scale() } else { paper_scale() };

    println!(
        "ntt-warp figure harness -- {} scale (N=2^{}, np={})",
        if quick { "quick" } else { "paper" },
        s.log_n,
        s.np
    );

    if run("fig1") {
        header(
            "Fig. 1: Shoup vs native modmul",
            "Shoup 332.9 us vs native 789.2 us (2.4x) at N=2^17, np=45",
        );
        let rows = ex::fig1(s.log_n, s.np_fig1);
        print_rows(&rows, s.np_fig1);
        println!(
            "   native/Shoup ratio: {:.2}x",
            rows[1].time_us / rows[0].time_us
        );
    }

    if run("fig3") {
        header(
            "Fig. 3(a): batching radix-2 NTT",
            "per-NTT 2751.5 -> 1426.4 us (1.92x); DRAM util saturates at 86.7%",
        );
        let rows = ex::fig3a(s.log_n, &s.batch_sweep);
        println!(
            "{:<10} {:>12} {:>12} {:>8}",
            "batch", "per-NTT us", "total us", "util%"
        );
        for m in &rows {
            println!(
                "{:<10} {:>12.1} {:>12.1} {:>8.1}",
                m.label,
                m.per_ntt_us,
                m.time_us,
                m.utilization * 100.0
            );
        }
        println!(
            "   batching speedup (per-NTT, batch 1 -> max): {:.2}x",
            rows[0].per_ntt_us / rows.last().unwrap().per_ntt_us
        );

        header(
            "Fig. 3(b): batching radix-2 DFT",
            "speedup 1.84x; util saturates at 86.7%",
        );
        let rows = ex::fig3b(s.log_n, &s.batch_sweep);
        for m in &rows {
            println!(
                "{:<10} {:>12.1} {:>12.1} {:>8.1}",
                m.label,
                m.per_ntt_us,
                m.time_us,
                m.utilization * 100.0
            );
        }
        println!(
            "   batching speedup: {:.2}x",
            rows[0].per_ntt_us / rows.last().unwrap().per_ntt_us
        );
    }

    let radices: Vec<usize> = vec![2, 4, 8, 16, 32, 64, 128];
    if run("fig4") {
        header(
            "Fig. 4: NTT high-radix sweep (time / DRAM / occupancy)",
            "radix-16 best (2.41x over radix-2); radix-32 -15.5% DRAM but util 59.9%; 64/128 spill",
        );
        for log_n in [s.log_n_small, s.log_n] {
            println!("-- N = 2^{log_n}");
            print_rows(&ex::fig4(log_n, s.np, &radices), s.np);
        }
    }

    if run("fig5") {
        header(
            "Fig. 5: DFT high-radix sweep",
            "radix-32 best (364.2 us at N=2^17); NTT occupancy ~31% below DFT at radix-32",
        );
        for log_n in [s.log_n_small, s.log_n] {
            println!("-- N = 2^{log_n}");
            print_rows(&ex::fig5(log_n, s.np, &radices), s.np);
        }
    }

    let k1_sizes: Vec<usize> = if quick {
        vec![16, 32, 64]
    } else {
        vec![32, 64, 128, 256, 512]
    };
    if run("fig7") {
        header(
            "Fig. 7: Kernel-1 coalescing via block merge",
            "+21.6% average speedup from coalesced accesses",
        );
        let rows = ex::fig7(s.log_n, s.np, &k1_sizes);
        print_rows(&rows, s.np);
        let mut ratios = Vec::new();
        for pair in rows.chunks(2) {
            ratios.push(pair[0].time_us / pair[1].time_us);
        }
        let avg: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!("   average uncoalesced/coalesced ratio: {:.3}x", avg);
    }

    if run("fig8") {
        header(
            "Fig. 8: per-stage twiddle vs input bytes (radix-2)",
            "twiddles grow from ~0 to input-size parity at the last stage",
        );
        for (stage, ratio) in ex::fig8(s.log_n) {
            println!("stage {:>2}: twiddle/input = {:.4}", stage, ratio);
        }
        // Cross-check the accounting against *measured* simulated DRAM
        // transactions of the radix-2 stage launches (kept at 2^12 so the
        // check is cheap at paper scale too).
        let measured_log_n = s.log_n.min(12);
        println!("measured check (radix-2 launches at N = 2^{measured_log_n}):");
        for (stage, analytic, measured) in ex::fig8_measured(measured_log_n, 2.min(s.np)) {
            if (1usize << (stage - 1)) >= 4 {
                println!(
                    "stage {:>2}: analytic {:.4}  measured {:.4}  {}",
                    stage,
                    analytic,
                    measured,
                    if (analytic - measured).abs() < 1e-12 {
                        "ok"
                    } else {
                        "MISMATCH"
                    }
                );
            }
        }
    }

    if run("fig9") {
        header(
            "Fig. 9: preloading Kernel-1 twiddles into SMEM",
            "+8.4% average speedup",
        );
        let rows = ex::fig9(s.log_n, s.np, &k1_sizes);
        print_rows(&rows, s.np);
        let mut ratios = Vec::new();
        for pair in rows.chunks(2) {
            ratios.push(pair[0].time_us / pair[1].time_us);
        }
        let avg: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!("   average direct/preload ratio: {:.3}x", avg);
    }

    if run("fig11a") {
        header(
            "Fig. 11(a): SMEM NTT per-thread sizes across splits",
            "4-point ~30.1% faster than 2-point; 4 ~ 8; all beat radix-16 register version",
        );
        print_rows(&ex::fig11a(s.log_n, s.np), s.np);
    }

    if run("fig11b") {
        header(
            "Fig. 11(b): SMEM DFT per-thread sizes",
            "8-point best; all beat the radix-32 register DFT (364.2 us)",
        );
        print_rows(&ex::fig11b(s.log_n, s.np), s.np);
    }

    if run("fig11c") {
        header(
            "Fig. 11(c): OT on the last 1 vs 2 stages",
            "OT on last 2 stages generally best (except 128x1024)",
        );
        print_rows(&ex::fig11c(s.log_n, s.np), s.np);
    }

    if run("fig12") {
        header(
            "Fig. 12: best SMEM config with/without OT per N",
            "OT: -24.5/23.5/24.5/25.1% DRAM, util -16.7%, speedup 9.3% avg",
        );
        println!(
            "{:<7} {:>12} {:>12} {:>9} {:>10} {:>10} {:>9}",
            "logN", "w/o OT us", "w/ OT us", "speedup", "MB w/o", "MB w/", "dMB%"
        );
        for (log_n, wo, w) in ex::fig12(&s.table2_logs, s.np) {
            println!(
                "{:<7} {:>12.1} {:>12.1} {:>8.1}% {:>10.1} {:>10.1} {:>8.1}%",
                log_n,
                wo.time_us,
                w.time_us,
                (wo.time_us / w.time_us - 1.0) * 100.0,
                wo.dram_mb,
                w.dram_mb,
                (1.0 - w.dram_mb / wo.dram_mb) * 100.0
            );
        }
    }

    if run("fig13") {
        header(
            "Fig. 13: time vs batch size np (best split, N=2^17)",
            "linear growth past saturation",
        );
        let rows = ex::fig13(s.log_n, &s.fig13_sweep);
        print_rows(&rows, 1);
    }

    if run("table2") {
        header(
            "Table II: radix-2 vs SMEM w/o OT vs SMEM w/ OT",
            "speedups 3.4-4.3x (w/o OT) and 3.8-4.7x (w/ OT); OT adds 8.1-10.1%",
        );
        println!(
            "{:<6} {:>11} {:>14} {:>8} {:>14} {:>8} {:>7}",
            "logN", "radix-2 us", "SMEM us", "[x]", "SMEM+OT us", "[x]", "OT +%"
        );
        for (log_n, r2, sm, sm_ot) in ex::table2(&s.table2_logs, s.np) {
            println!(
                "{:<6} {:>11.1} {:>14.1} {:>7.1}x {:>14.1} {:>7.1}x {:>6.1}%",
                log_n,
                r2.time_us,
                sm.time_us,
                r2.time_us / sm.time_us,
                sm_ot.time_us,
                r2.time_us / sm_ot.time_us,
                (sm.time_us / sm_ot.time_us - 1.0) * 100.0
            );
        }
    }

    if run("fpga") {
        header(
            "SVIII: comparison vs FCCM'20 FPGA NTT",
            "6.56x and 6.48x faster at (2^17, np=36) and (2^17, np=42)",
        );
        let nps = if quick { vec![2, 3] } else { vec![36, 42] };
        for (np, gpu_us, fpga_us, speedup) in ex::fpga_comparison(s.log_n, &nps) {
            println!(
                "np={:<4} gpu {:>10.1} us   fpga {:>10.1} us   speedup {:.2}x",
                np, gpu_us, fpga_us, speedup
            );
        }
    }

    if run("wordsize") {
        header("SIV: 32b vs 64b word size at Q = 2^1200", "difference ~5%");
        let rows = ex::wordsize(s.log_n);
        for m in &rows {
            println!("{:<16} {:>10.1} us", m.label, m.time_us);
        }
        println!(
            "   ratio 30-bit/60-bit: {:.3}",
            rows[1].time_us / rows[0].time_us
        );
    }

    if run("residency") {
        header(
            "Residency: device-resident he-lite transfer accounting",
            "Kim et al. keep ciphertexts GPU-resident; steady-state chain moves 0 bytes",
        );
        let r = ex::residency(if quick { 8 } else { 11 });
        println!("params: {}", r.params);
        println!(
            "initial upload (tables + keys + 2 encrypts): h2d {} ({} words), d2h {} ({} words)",
            r.initial.uploads,
            r.initial.upload_words,
            r.initial.downloads,
            r.initial.download_words
        );
        println!(
            "steady-state multiply/relinearize/rescale:   h2d+d2h transfers = {} ({} words moved, {} d2d copies)",
            r.steady.host_transfers(),
            r.steady.upload_words + r.steady.download_words,
            r.steady.d2d_copies
        );
        println!(
            "   residency gate: steady-state transfers {} (must be 0)",
            if r.steady.host_transfers() == 0 {
                "OK"
            } else {
                "VIOLATED"
            }
        );
        println!(
            "steady-state modeled device time: serialized {:.1} us, overlapped {:.1} us ({:.2}x)",
            r.timeline.serialized_s * 1e6,
            r.timeline.overlapped_s * 1e6,
            r.timeline.overlap()
        );
    }

    if run("streams") {
        header(
            "Streams: overlapped device execution across pooled evaluators",
            "HEAAN Demystified: overlap is where bootstrappable workloads win; 4 chains on 4 streams",
        );
        let log_n = if quick { 8 } else { 11 };
        println!(
            "{:<12} {:>14} {:>14} {:>9} {:>9}",
            "evaluators", "serialized us", "overlapped us", "overlap", "launches"
        );
        let mut gate = None;
        for evs in [1usize, 2, 4] {
            let r = ex::streams(log_n, evs);
            println!(
                "{:<12} {:>14.1} {:>14.1} {:>8.2}x {:>9}",
                r.evaluators,
                r.timeline.serialized_s * 1e6,
                r.timeline.overlapped_s * 1e6,
                r.overlap(),
                r.timeline.launches
            );
            gate = Some(r);
        }
        let gate = gate.expect("loop runs at least once");
        println!(
            "   overlap gate (4 evaluators >= 1.3x): {:.2}x {}",
            gate.overlap(),
            if gate.overlap() >= 1.3 {
                "OK"
            } else {
                "VIOLATED"
            }
        );
    }

    if run("serve") {
        header(
            "Serve: HE-as-a-service over the evaluator pool",
            "multi-tenant request serving is the workload GPU NTT acceleration feeds",
        );
        let log_n = if quick { 6 } else { 9 };
        let (tenants, chains) = if quick { (3, 2) } else { (6, 4) };
        println!(
            "{:<9} {:>9} {:>9} {:>8} {:>10} {:>10} {:>10} {:>12}",
            "workers", "jobs", "rejected", "batches", "p50 us", "p99 us", "jobs/s", "dev-ser us"
        );
        for workers in [1usize, 2, 4] {
            let r = ex::serve(log_n, workers, tenants, chains);
            println!(
                "{:<9} {:>9} {:>9} {:>8} {:>10.1} {:>10.1} {:>10.0} {:>12.1}",
                r.workers,
                r.completed,
                r.rejected,
                r.batches,
                r.p50_us,
                r.p99_us,
                r.throughput,
                r.timeline.serialized_s * 1e6
            );
            assert_eq!(r.mismatches, 0, "served chain results drifted");
        }
        let b = ex::serve_batching(log_n, if quick { 6 } else { 12 });
        println!(
            "batching ({} jobs): unbatched {:.1} us vs batched {:.1} us modeled device time",
            b.jobs,
            b.unbatched.serialized_s * 1e6,
            b.batched.serialized_s * 1e6
        );
        println!(
            "   batching gate (>= 1.5x): {:.2}x {}",
            b.speedup(),
            if b.speedup() >= 1.5 { "OK" } else { "VIOLATED" }
        );
    }

    if run("sharding") {
        header(
            "Sharding: RNS residue rows across K simulated devices",
            "multi-GPU scale-out is the paper's stated path past one device's memory",
        );
        // Scaling efficiency is a function of work per launch (launch
        // overhead is fixed and the per-shard launch count does not
        // shrink with K), so the quick table runs at smoke scale while
        // the gate-bearing sweep needs the deep chain at a
        // bootstrapping-adjacent ring — paper mode here, and enforced
        // in CI by the `ntt_sharded/*` gate in `bench_smoke.sh`.
        let (log_n, levels, jobs) = if quick { (12, 8, 2) } else { (15, 16, 2) };
        let sweep = ex::sharding(log_n, levels, jobs, &[1, 2, 4, 8]);
        println!(
            "N = 2^{}, {} levels, {} chains per configuration",
            sweep.log_n, sweep.levels, sweep.jobs
        );
        println!(
            "{:<8} {:>14} {:>9} {:>11} {:>12} {:>10}",
            "devices", "device us", "speedup", "efficiency", "link words", "launches"
        );
        for r in &sweep.reports {
            println!(
                "{:<8} {:>14.1} {:>8.2}x {:>10.0}% {:>12} {:>10}",
                r.shards,
                r.timeline.overlapped_s * 1e6,
                sweep.speedup(r),
                sweep.efficiency(r) * 100.0,
                r.link_words,
                r.timeline.launches
            );
        }
        let k4 = sweep
            .reports
            .iter()
            .find(|r| r.shards == 4)
            .expect("sweep includes K=4");
        let ratio = k4.timeline.overlapped_s / sweep.baseline().timeline.overlapped_s;
        if quick {
            println!(
                "   K=4 at smoke scale: {ratio:.2}x single device (launch-overhead-bound; \
                 the 0.45x gate runs at paper scale / in bench_smoke.sh)"
            );
        } else {
            println!(
                "   scaling gate (K=4 <= 0.45x single device): {:.2}x {}",
                ratio,
                if ratio <= 0.45 { "OK" } else { "VIOLATED" }
            );
        }
    }

    if run("bootstrap") {
        header(
            "Bootstrap: the title workload -- CKKS-style bootstrapping op-mix",
            "NTT + key-switch kernels dominate bootstrappable HE device time",
        );
        let print_report = |r: &ex::BootstrapReport| {
            println!("params: {}", r.params);
            let total = r.total_s();
            println!(
                "{:<14} {:>9} {:>12} {:>8}",
                "kernel class", "launches", "device us", "share"
            );
            for (name, row) in [
                ("NTT", r.ntt),
                ("key-switch", r.key_switch),
                ("pointwise", r.pointwise),
            ] {
                println!(
                    "{:<14} {:>9} {:>12.1} {:>7.1}%",
                    name,
                    row.launches,
                    row.time_s * 1e6,
                    row.time_s / total * 100.0
                );
            }
            println!(
                "total modeled device time: {:.1} us over one steady-state bootstrap",
                total * 1e6
            );
            println!(
                "   op-mix gate (NTT + key-switch >= 60%): {:.1}% {}",
                r.ntt_keyswitch_share() * 100.0,
                if r.ntt_keyswitch_share() >= 0.60 {
                    "OK"
                } else {
                    "VIOLATED"
                }
            );
            println!(
                "   residency gate: steady-state bootstrap transfers {} (must be 0)",
                if r.steady.host_transfers() == 0 {
                    "OK"
                } else {
                    "VIOLATED"
                }
            );
        };
        let r = ex::bootstrap(if quick { 4 } else { 6 });
        print_report(&r);

        // The deep pipeline at bootstrapping scale: full 21-level
        // parameters, sparse slot matrix so key/diagonal material stays
        // tractable. Quick mode shrinks the ring (host keygen at 2^16 is
        // minutes of single-thread NTTs); the full run is the paper-scale
        // measurement the BTS cross-check below refers to.
        let deep_log_n: u32 = if quick { 12 } else { 16 };
        println!();
        let d = ex::bootstrap_deep(deep_log_n, 8);
        print_report(&d);
        // Cross-check against BTS (Kim et al., arXiv:2112.15479), which
        // profiles CKKS bootstrapping at comparable ring degrees
        // (N = 2^16-2^17) and reports execution dominated by
        // key-switching with (i)NTT as the single largest kernel class —
        // together carrying on the order of 80-90% of device time.
        println!(
            "   BTS cross-check (arXiv:2112.15479, N=2^16-2^17): reported NTT+key-switch \
             ~80-90% of bootstrap time; ours {:.1}% NTT + {:.1}% key-switch = {:.1}% -- {}",
            d.ntt.time_s / d.total_s() * 100.0,
            d.key_switch.time_s / d.total_s() * 100.0,
            d.ntt_keyswitch_share() * 100.0,
            if d.ntt_keyswitch_share() >= 0.60 {
                "same NTT-dominated regime"
            } else {
                "OUTSIDE the reported regime"
            }
        );
    }

    if run("otbase") {
        header(
            "SVII: OT factorization base sweep",
            "base-1024 performs best (table size vs extra modmuls)",
        );
        println!(
            "{:<8} {:>10} {:>9} {:>12}",
            "base", "entries", "modmuls", "sim us"
        );
        for (base, entries, modmuls, time) in ex::ot_base_sweep(s.log_n, s.np) {
            if time.is_nan() {
                println!("{:<8} {:>10} {:>9} {:>12}", base, entries, modmuls, "-");
            } else {
                println!("{:<8} {:>10} {:>9} {:>12.1}", base, entries, modmuls, time);
            }
        }
    }

    println!();
    println!("done.");
}
