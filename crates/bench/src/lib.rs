//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each `fig*`/`table2` function runs the corresponding experiment on the
//! GPU simulator at caller-chosen parameters (the paper's defaults live in
//! the `figures` binary) and returns structured rows, so integration tests
//! can assert the paper's *shapes* — who wins, by what factor, where the
//! crossovers are — at reduced sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

pub use experiments::Measurement;
