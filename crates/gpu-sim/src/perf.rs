//! The timing model: counted statistics → modeled kernel time.
//!
//! ```text
//! t_kernel = ((t_dram)^k + (t_comp)^k)^(1/k)  ⊔  t_l2 ⊔ t_smem   (k = 3)
//!            + t_barrier + LAUNCH_OVERHEAD
//! ```
//!
//! * `t_dram` — transaction bytes (plus register-spill traffic) over the
//!   achieved bandwidth `peak · MAX_BW_EFF · min(1, occ/OCC_KNEE)`.
//! * `t_comp` — weighted issue slots over peak scalar throughput, derated
//!   when occupancy is too low to hide latency.
//! * `t_l2`, `t_smem` — read-only-path and shared-memory floors (`⊔` = max).
//! * `t_barrier` — serialized block-barrier cost.
//!
//! All constants live in [`crate::calibrate`] with their anchors.

use crate::calibrate as cal;
use crate::config::GpuConfig;
use crate::engine::LaunchConfig;
use crate::occupancy::{occupancy, OccupancyInfo};
use crate::stats::{KernelStats, OpClass};

/// Timing breakdown for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTiming {
    /// Achieved occupancy used by the model.
    pub occupancy: f64,
    /// DRAM efficiency `MAX_BW_EFF · min(1, occ/OCC_KNEE)`.
    pub bw_eff: f64,
    /// Register-spill (LMEM) bytes added to DRAM traffic.
    pub lmem_bytes: u64,
    /// DRAM-bound time component, seconds.
    pub t_dram_s: f64,
    /// Compute-bound time component, seconds.
    pub t_comp_s: f64,
    /// Read-only (L2/TMEM) path floor, seconds.
    pub t_l2_s: f64,
    /// Shared-memory floor, seconds.
    pub t_smem_s: f64,
    /// Serialized barrier cost, seconds.
    pub t_barrier_s: f64,
    /// Total modeled time including launch overhead, seconds.
    pub total_s: f64,
}

impl KernelTiming {
    /// Total time in microseconds (the paper's reporting unit).
    pub fn total_us(&self) -> f64 {
        self.total_s * 1e6
    }

    /// Achieved DRAM bandwidth as a fraction of peak for this kernel,
    /// given its byte count (`dram_bytes` must include spills).
    pub fn dram_utilization(&self, dram_bytes: u64, cfg: &GpuConfig) -> f64 {
        if self.total_s == 0.0 {
            return 0.0;
        }
        dram_bytes as f64 / self.total_s / cfg.peak_dram_bw
    }
}

/// Slot weight of one operation of the given class.
pub fn op_slots(op: OpClass) -> f64 {
    match op {
        OpClass::ShoupMul => cal::SHOUP_MUL_SLOTS,
        OpClass::NativeModMul => cal::NATIVE_MODMUL_SLOTS,
        OpClass::ModAddSub => cal::MOD_ADDSUB_SLOTS,
        OpClass::ComplexMul => cal::COMPLEX_MUL_SLOTS,
        OpClass::ComplexAddSub => cal::COMPLEX_ADDSUB_SLOTS,
        OpClass::Generic => cal::GENERIC_SLOTS,
    }
}

/// Model the time of one launch from its statistics.
pub fn kernel_time(cfg: &GpuConfig, launch: &LaunchConfig, stats: &KernelStats) -> KernelTiming {
    let occ_info: OccupancyInfo = occupancy(cfg, launch);
    let occ = occ_info.occupancy;

    // --- DRAM ---
    let bw_eff = cal::MAX_BW_EFF * (occ / cal::OCC_KNEE).min(1.0);
    let total_threads = launch.blocks as f64 * launch.threads_per_block as f64;
    let lmem_bytes =
        (occ_info.regs_spilled as f64 * cal::SPILL_BYTES_PER_REG * total_threads) as u64;
    let dram_bytes = stats.dram_bytes(cfg) + lmem_bytes;
    // Row-activation overhead: scattered transactions sustain less of the
    // pin bandwidth than streaming ones (see calibrate::ROW_ACTIVATION_BYTES).
    let effective_bytes =
        dram_bytes as f64 + stats.dram_row_activations as f64 * cal::ROW_ACTIVATION_BYTES;
    let t_dram = if dram_bytes == 0 {
        0.0
    } else {
        effective_bytes / (cfg.peak_dram_bw * bw_eff.max(1e-6))
    };

    // --- compute ---
    let slots: f64 = OpClass::all()
        .iter()
        .map(|&op| stats.op(op) as f64 * op_slots(op))
        .sum();
    let hide = (occ / cal::COMPUTE_HIDE_KNEE).clamp(1e-6, 1.0);
    let t_comp = slots / cfg.peak_ops_per_s() / hide;

    // --- read-only path & shared memory floors ---
    let t_l2 = stats.l2_read_transactions as f64 * cfg.transaction_bytes as f64 / cfg.l2_bw;
    let t_smem = (stats.smem_read_bytes + stats.smem_write_bytes) as f64 / cfg.smem_bw();

    // --- barriers: each resident wave of blocks pays serially ---
    let concurrent_blocks = (occ_info.blocks_per_sm.max(1) as f64) * cfg.sm_count as f64;
    let t_barrier =
        stats.barriers as f64 * cal::BARRIER_CYCLES / cfg.clock_hz / concurrent_blocks.max(1.0);

    let k = cal::OVERLAP_NORM;
    // L2 and SMEM service times share the SM's load/store path with DRAM
    // returns, so they add to the memory side before overlap with compute.
    let t_mem = t_dram + t_l2 + t_smem;
    let core = (t_mem.powf(k) + t_comp.powf(k)).powf(1.0 / k);
    let total = core + t_barrier + cal::LAUNCH_OVERHEAD_S;

    KernelTiming {
        occupancy: occ,
        bw_eff,
        lmem_bytes,
        t_dram_s: t_dram,
        t_comp_s: t_comp,
        t_l2_s: t_l2,
        t_smem_s: t_smem,
        t_barrier_s: t_barrier,
        total_s: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big_launch(regs: u32) -> LaunchConfig {
        LaunchConfig::new("t", 100_000, 256).regs_per_thread(regs)
    }

    #[test]
    fn bandwidth_bound_kernel_time_tracks_bytes() {
        let cfg = GpuConfig::titan_v();
        // 651 MB at 86.7% of 651 GB/s ≈ 1.153 ms.
        let s = KernelStats {
            dram_read_transactions: 651_000_000 / 32,
            ..Default::default()
        };
        let t = kernel_time(&cfg, &big_launch(32), &s);
        assert!((t.total_s - 1.153e-3).abs() < 0.05e-3, "t = {}", t.total_s);
        assert!(t.bw_eff > 0.86);
    }

    #[test]
    fn low_occupancy_derates_bandwidth() {
        let cfg = GpuConfig::titan_v();
        let s = KernelStats {
            dram_read_transactions: 1 << 20,
            ..Default::default()
        };
        let fast = kernel_time(&cfg, &big_launch(64), &s);
        let slow = kernel_time(&cfg, &big_launch(176), &s); // occ ~0.19
        assert!(slow.total_s > fast.total_s);
        assert!(slow.bw_eff < 0.7);
    }

    #[test]
    fn compute_bound_kernel_scales_with_ops() {
        let cfg = GpuConfig::titan_v();
        let mut s = KernelStats::default();
        s.count_op(OpClass::NativeModMul, 100_000_000);
        let t1 = kernel_time(&cfg, &big_launch(32), &s);
        s.count_op(OpClass::NativeModMul, 100_000_000);
        let t2 = kernel_time(&cfg, &big_launch(32), &s);
        let r = (t2.total_s - cal::LAUNCH_OVERHEAD_S) / (t1.total_s - cal::LAUNCH_OVERHEAD_S);
        assert!((r - 2.0).abs() < 0.05, "ratio {r}");
    }

    #[test]
    fn spills_add_dram_traffic() {
        let cfg = GpuConfig::titan_v();
        let s = KernelStats::default();
        let launch = LaunchConfig::new("t", 1000, 128).regs_per_thread(304);
        let t = kernel_time(&cfg, &launch, &s);
        assert!(t.lmem_bytes > 0);
        assert_eq!(t.lmem_bytes, (49.0 * 8.0 * 128_000.0) as u64);
    }

    #[test]
    fn empty_kernel_costs_launch_overhead() {
        let cfg = GpuConfig::titan_v();
        let t = kernel_time(&cfg, &big_launch(32), &KernelStats::default());
        assert!((t.total_s - cal::LAUNCH_OVERHEAD_S).abs() < 1e-9);
    }

    #[test]
    fn utilization_helper() {
        let cfg = GpuConfig::titan_v();
        let s = KernelStats {
            dram_read_transactions: 10_000_000,
            ..Default::default()
        };
        let t = kernel_time(&cfg, &big_launch(32), &s);
        let u = t.dram_utilization(s.dram_bytes(&cfg), &cfg);
        assert!(u > 0.5 && u <= cal::MAX_BW_EFF + 1e-9, "u = {u}");
    }
}
