//! Kernel execution engine: warp programs over simulated memory.
//!
//! A kernel is a [`WarpKernel`]: a *warp program* invoked once per warp per
//! phase. Phases are separated by block-level barriers (the CUDA
//! `__syncthreads()` the paper's Fig. 2 shows between per-thread NTTs), so
//! shared-memory communication is race-free as long as a phase either
//! writes or reads a given SMEM region, never both across warps.
//!
//! Per-thread state that must survive across phases (the "registers"
//! holding a per-thread NTT's points) lives in a block-wide register file
//! the context hands out per lane.
//!
//! Memory accesses are warp-wide (`&[Option<usize>]`, one slot per lane,
//! `None` = inactive lane) so the engine can group them into 32-byte DRAM
//! transactions exactly as the coalescer in §II does.

use crate::config::GpuConfig;
use crate::mem::Gmem;
use crate::occupancy::{occupancy, OccupancyInfo};
use crate::perf::{kernel_time, KernelTiming};
use crate::stats::{KernelStats, OpClass};

/// Grid/block shape and modeled resource usage of one launch.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchConfig {
    /// Label for traces and reports.
    pub label: String,
    /// Number of thread blocks in the grid.
    pub blocks: usize,
    /// Threads per block (≤ 1024).
    pub threads_per_block: usize,
    /// Modeled 32-bit register demand per thread (occupancy/spill input).
    pub regs_per_thread: u32,
    /// Shared memory bytes per block.
    pub smem_bytes_per_block: usize,
    /// Functional per-thread `u64` register slots (state across phases).
    pub reg_slots: usize,
}

impl LaunchConfig {
    /// A launch with the given shape and default resource estimates.
    pub fn new(label: impl Into<String>, blocks: usize, threads_per_block: usize) -> Self {
        Self {
            label: label.into(),
            blocks,
            threads_per_block,
            regs_per_thread: 32,
            smem_bytes_per_block: 0,
            reg_slots: 0,
        }
    }

    /// Set the modeled 32-bit register demand per thread.
    pub fn regs_per_thread(mut self, regs: u32) -> Self {
        self.regs_per_thread = regs;
        self
    }

    /// Set shared-memory bytes per block.
    pub fn smem_bytes(mut self, bytes: usize) -> Self {
        self.smem_bytes_per_block = bytes;
        self
    }

    /// Set functional `u64` register slots per thread.
    pub fn reg_slots(mut self, slots: usize) -> Self {
        self.reg_slots = slots;
        self
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> usize {
        self.blocks * self.threads_per_block
    }
}

/// A kernel expressed as a warp program.
pub trait WarpKernel {
    /// Number of barrier-separated phases.
    fn phases(&self) -> usize;

    /// Execute one warp for the phase in `ctx.phase`.
    fn run_warp(&self, ctx: &mut WarpCtx<'_>);
}

/// Execution context handed to a warp program.
#[derive(Debug)]
pub struct WarpCtx<'a> {
    /// Current phase (0-based).
    pub phase: usize,
    /// Block index within the grid.
    pub block: usize,
    /// Warp index within the block.
    pub warp: usize,
    lanes: usize,
    threads_per_block: usize,
    words_per_txn: usize,
    reg_slots: usize,
    gmem: &'a mut Gmem,
    smem: &'a mut [u64],
    regs: &'a mut [u64],
    stats: &'a mut KernelStats,
    /// Bitmap of 32-byte segments already resident in the read-only cache.
    cached: &'a mut [u64],
}

impl<'a> WarpCtx<'a> {
    /// Active lanes in this warp (< 32 only for a ragged last warp).
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Block-local thread id of `lane`.
    #[inline]
    pub fn thread_in_block(&self, lane: usize) -> usize {
        self.warp * 32 + lane
    }

    /// Grid-global thread id of `lane`.
    #[inline]
    pub fn global_thread(&self, lane: usize) -> usize {
        self.block * self.threads_per_block + self.thread_in_block(lane)
    }

    /// This lane's persistent register slice (`reg_slots` words).
    #[inline]
    pub fn regs(&mut self, lane: usize) -> &mut [u64] {
        let t = self.thread_in_block(lane);
        &mut self.regs[t * self.reg_slots..(t + 1) * self.reg_slots]
    }

    /// Record `n` arithmetic operations of class `op` (one warp
    /// instruction bundle).
    #[inline]
    pub fn count_op(&mut self, op: OpClass, n: u64) {
        self.stats.count_op(op, n);
        self.stats.warp_instructions += 1;
    }

    /// Distinct 32-byte segments and maximal consecutive runs among them.
    fn count_segments(&self, addrs: &[Option<usize>]) -> (u64, u64) {
        // ≤ 32 lanes: collect segment ids and count distinct ones.
        let mut segs = [usize::MAX; 32];
        let mut n = 0;
        for a in addrs.iter().flatten() {
            let s = a / self.words_per_txn;
            if !segs[..n].contains(&s) {
                segs[n] = s;
                n += 1;
            }
        }
        segs[..n].sort_unstable();
        let mut runs = 0u64;
        for i in 0..n {
            if i == 0 || segs[i] != segs[i - 1] + 1 {
                runs += 1;
            }
        }
        (n as u64, runs)
    }

    /// Warp-wide GMEM load. One slot per lane; `None` = inactive.
    /// Counts coalesced 32-byte transactions.
    pub fn gmem_load(&mut self, addrs: &[Option<usize>]) -> Vec<Option<u64>> {
        debug_assert!(addrs.len() <= self.lanes);
        let (txns, runs) = self.count_segments(addrs);
        self.stats.dram_read_transactions += txns;
        self.stats.dram_row_activations += runs;
        self.stats.warp_instructions += 1;
        let mut useful = 0;
        let out = addrs
            .iter()
            .map(|a| {
                a.map(|addr| {
                    useful += 8;
                    self.gmem.word(addr)
                })
            })
            .collect();
        self.stats.useful_read_bytes += useful;
        out
    }

    /// Paired warp-wide GMEM load: both operand sets are fetched in one
    /// transaction-counting unit, so segments shared between the two (e.g.
    /// the butterfly pair `a[x]`/`a[x+t]` once `t` drops below a
    /// transaction) are only charged once — modeling the L1 hit the second
    /// access gets on real hardware.
    pub fn gmem_load2(
        &mut self,
        addrs_a: &[Option<usize>],
        addrs_b: &[Option<usize>],
    ) -> (Vec<Option<u64>>, Vec<Option<u64>>) {
        debug_assert!(addrs_a.len() <= self.lanes && addrs_b.len() <= self.lanes);
        let mut segs = Vec::with_capacity(64);
        for a in addrs_a.iter().chain(addrs_b).flatten() {
            let s = a / self.words_per_txn;
            if !segs.contains(&s) {
                segs.push(s);
            }
        }
        segs.sort_unstable();
        let mut runs = 0u64;
        for i in 0..segs.len() {
            if i == 0 || segs[i] != segs[i - 1] + 1 {
                runs += 1;
            }
        }
        self.stats.dram_read_transactions += segs.len() as u64;
        self.stats.dram_row_activations += runs;
        self.stats.warp_instructions += 2;
        let mut useful = 0;
        let read = |gmem: &Gmem, a: &Option<usize>, useful: &mut u64| {
            a.map(|addr| {
                *useful += 8;
                gmem.word(addr)
            })
        };
        let va = addrs_a
            .iter()
            .map(|a| read(self.gmem, a, &mut useful))
            .collect();
        let vb = addrs_b
            .iter()
            .map(|a| read(self.gmem, a, &mut useful))
            .collect();
        self.stats.useful_read_bytes += useful;
        (va, vb)
    }

    /// Paired warp-wide GMEM store (see [`Self::gmem_load2`]).
    pub fn gmem_store2(
        &mut self,
        writes_a: &[Option<(usize, u64)>],
        writes_b: &[Option<(usize, u64)>],
    ) {
        debug_assert!(writes_a.len() <= self.lanes && writes_b.len() <= self.lanes);
        let mut segs = Vec::with_capacity(64);
        for w in writes_a.iter().chain(writes_b).flatten() {
            let s = w.0 / self.words_per_txn;
            if !segs.contains(&s) {
                segs.push(s);
            }
        }
        segs.sort_unstable();
        let mut runs = 0u64;
        for i in 0..segs.len() {
            if i == 0 || segs[i] != segs[i - 1] + 1 {
                runs += 1;
            }
        }
        self.stats.dram_write_transactions += segs.len() as u64;
        self.stats.dram_row_activations += runs;
        self.stats.warp_instructions += 2;
        for w in writes_a.iter().chain(writes_b).flatten() {
            self.stats.useful_write_bytes += 8;
            self.gmem.set_word(w.0, w.1);
        }
    }

    /// Count read-only-path traffic for up to two warp address sets
    /// treated as one transaction-counting unit: per unique 32-byte
    /// segment across the union, one L2 transaction, plus one DRAM
    /// transaction on the first touch in this launch. This is the single
    /// home of the cached-path accounting — [`Self::gmem_load_cached`]
    /// and [`Self::gmem_load_cached2`] must stay in lockstep, or paired
    /// vs unpaired counts diverge and the Fig. 8 measured cross-check
    /// breaks.
    fn count_cached_segments(&mut self, sets: &[&[Option<usize>]]) {
        let mut segs = [usize::MAX; 64]; // ≤ 32 lanes per set, ≤ 2 sets
        let mut nseg = 0;
        let mut l2 = 0u64;
        for addrs in sets {
            for a in addrs.iter().flatten() {
                let s = a / self.words_per_txn;
                if !segs[..nseg].contains(&s) {
                    segs[nseg] = s;
                    nseg += 1;
                    l2 += 1;
                    let (w, b) = (s / 64, s % 64);
                    if self.cached[w] & (1 << b) == 0 {
                        self.cached[w] |= 1 << b;
                        self.stats.dram_read_transactions += 1;
                    }
                }
            }
        }
        self.stats.l2_read_transactions += l2;
    }

    /// Warp-wide load through the read-only (L2/texture) path: the first
    /// touch of a 32-byte segment in this launch costs a DRAM transaction;
    /// repeat touches only cost L2 transactions. Use for twiddle tables
    /// (the paper's TMEM caching, §V).
    pub fn gmem_load_cached(&mut self, addrs: &[Option<usize>]) -> Vec<Option<u64>> {
        debug_assert!(addrs.len() <= self.lanes);
        self.count_cached_segments(&[addrs]);
        self.stats.warp_instructions += 1;
        let mut useful = 0;
        let out = addrs
            .iter()
            .map(|a| {
                a.map(|addr| {
                    useful += 8;
                    self.gmem.word(addr)
                })
            })
            .collect();
        self.stats.useful_read_bytes += useful;
        out
    }

    /// Paired warp-wide load through the read-only path (see
    /// [`Self::gmem_load_cached`]): both halves of a per-stage
    /// (value, companion) twiddle slice-pair are fetched in one
    /// transaction-counting unit, deduplicating any 32-byte segment shared
    /// between the two address sets the way [`Self::gmem_load2`] does for
    /// butterfly operand pairs. This is the device-side counterpart of the
    /// hoisted `values[m..2m].zip(&companions[m..2m])` stage iteration in
    /// `ntt_core::ct`: one paired fetch per stage slice instead of two
    /// independent table walks.
    pub fn gmem_load_cached2(
        &mut self,
        addrs_a: &[Option<usize>],
        addrs_b: &[Option<usize>],
    ) -> (Vec<Option<u64>>, Vec<Option<u64>>) {
        debug_assert!(addrs_a.len() <= self.lanes && addrs_b.len() <= self.lanes);
        self.count_cached_segments(&[addrs_a, addrs_b]);
        self.stats.warp_instructions += 2;
        let mut useful = 0;
        let read = |gmem: &Gmem, a: &Option<usize>, useful: &mut u64| {
            a.map(|addr| {
                *useful += 8;
                gmem.word(addr)
            })
        };
        let va = addrs_a
            .iter()
            .map(|a| read(self.gmem, a, &mut useful))
            .collect();
        let vb = addrs_b
            .iter()
            .map(|a| read(self.gmem, a, &mut useful))
            .collect();
        self.stats.useful_read_bytes += useful;
        (va, vb)
    }

    /// Warp-wide GMEM store through the L2 write-back path: scattered 8-byte
    /// writes from different warps to the same 32-byte sector merge in L2,
    /// so DRAM write transactions are counted once per unique sector per
    /// launch while every warp access costs an L2 transaction. Use for
    /// store patterns that are uncoalesced per warp but dense across the
    /// grid (the paper's Fig. 6(a) case).
    pub fn gmem_store_merged(&mut self, writes: &[Option<(usize, u64)>]) {
        debug_assert!(writes.len() <= self.lanes);
        let mut l2 = 0u64;
        let mut segs = [usize::MAX; 32];
        let mut nseg = 0;
        for w in writes.iter().flatten() {
            let s = w.0 / self.words_per_txn;
            if !segs[..nseg].contains(&s) {
                segs[nseg] = s;
                nseg += 1;
                l2 += 1;
                let (word, bit) = (s / 64, s % 64);
                if self.cached[word] & (1 << bit) == 0 {
                    self.cached[word] |= 1 << bit;
                    self.stats.dram_write_transactions += 1;
                    self.stats.dram_row_activations += 1;
                }
            }
        }
        self.stats.l2_read_transactions += l2;
        self.stats.warp_instructions += 1;
        for w in writes.iter().flatten() {
            self.stats.useful_write_bytes += 8;
            self.gmem.set_word(w.0, w.1);
        }
    }

    /// Warp-wide GMEM store; counts coalesced transactions.
    pub fn gmem_store(&mut self, writes: &[Option<(usize, u64)>]) {
        debug_assert!(writes.len() <= self.lanes);
        let addrs: Vec<Option<usize>> = writes.iter().map(|w| w.map(|(a, _)| a)).collect();
        let (txns, runs) = self.count_segments(&addrs);
        self.stats.dram_write_transactions += txns;
        self.stats.dram_row_activations += runs;
        self.stats.warp_instructions += 1;
        for w in writes.iter().flatten() {
            self.stats.useful_write_bytes += 8;
            self.gmem.set_word(w.0, w.1);
        }
    }

    /// Warp-wide shared-memory load (block-local word addresses).
    ///
    /// Lanes reading the same word are served by one bank broadcast, so
    /// traffic is counted per *unique* address (the hardware broadcast of
    /// §II that makes SMEM twiddle reads nearly free).
    pub fn smem_load(&mut self, addrs: &[Option<usize>]) -> Vec<Option<u64>> {
        debug_assert!(addrs.len() <= self.lanes);
        self.stats.warp_instructions += 1;
        let mut uniq = [usize::MAX; 32];
        let mut n = 0u64;
        for a in addrs.iter().flatten() {
            if !uniq[..n as usize].contains(a) {
                uniq[n as usize] = *a;
                n += 1;
            }
        }
        self.stats.smem_read_bytes += 8 * n;
        addrs
            .iter()
            .map(|a| a.map(|addr| self.smem[addr]))
            .collect()
    }

    /// Warp-wide shared-memory store (unique addresses counted once).
    pub fn smem_store(&mut self, writes: &[Option<(usize, u64)>]) {
        debug_assert!(writes.len() <= self.lanes);
        self.stats.warp_instructions += 1;
        let mut uniq = [usize::MAX; 32];
        let mut n = 0u64;
        for w in writes.iter().flatten() {
            if !uniq[..n as usize].contains(&w.0) {
                uniq[n as usize] = w.0;
                n += 1;
            }
        }
        self.stats.smem_write_bytes += 8 * n;
        for w in writes.iter().flatten() {
            self.smem[w.0] = w.1;
        }
    }
}

/// One launch: configuration, counters, occupancy and modeled time.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchRecord {
    /// The launch configuration (including its label).
    pub launch: LaunchConfig,
    /// Gathered counters.
    pub stats: KernelStats,
    /// Occupancy analysis.
    pub occupancy: OccupancyInfo,
    /// Modeled timing breakdown.
    pub timing: KernelTiming,
}

impl LaunchRecord {
    /// DRAM bytes including spill traffic.
    pub fn dram_bytes(&self, cfg: &GpuConfig) -> u64 {
        self.stats.dram_bytes(cfg) + self.timing.lmem_bytes
    }
}

/// Execute a kernel to completion, producing its [`LaunchRecord`].
///
/// # Panics
///
/// Panics if the launch shape violates device limits.
pub fn run_kernel<K: WarpKernel>(
    cfg: &GpuConfig,
    gmem: &mut Gmem,
    kernel: &K,
    launch: &LaunchConfig,
) -> LaunchRecord {
    assert!(launch.blocks > 0, "grid must contain at least one block");
    assert!(
        launch.threads_per_block >= 1
            && launch.threads_per_block <= cfg.max_threads_per_block as usize,
        "threads per block out of range"
    );
    assert!(
        launch.smem_bytes_per_block <= cfg.max_smem_per_block as usize,
        "shared memory per block exceeds device limit"
    );
    assert_eq!(
        launch.smem_bytes_per_block % 8,
        0,
        "shared memory must be word-aligned"
    );

    let mut stats = KernelStats::default();
    let smem_words = launch.smem_bytes_per_block / 8;
    let warps_per_block = launch.threads_per_block.div_ceil(32);
    let seg_count = gmem.allocated_words().div_ceil(cfg.words_per_transaction());
    let mut cached = vec![0u64; seg_count.div_ceil(64)];
    let mut smem = vec![0u64; smem_words];
    let mut regs = vec![0u64; launch.threads_per_block * launch.reg_slots];
    let phases = kernel.phases();

    for block in 0..launch.blocks {
        smem.fill(0);
        regs.fill(0);
        for phase in 0..phases {
            for warp in 0..warps_per_block {
                let lanes = 32.min(launch.threads_per_block - warp * 32);
                let mut ctx = WarpCtx {
                    phase,
                    block,
                    warp,
                    lanes,
                    threads_per_block: launch.threads_per_block,
                    words_per_txn: cfg.words_per_transaction(),
                    reg_slots: launch.reg_slots,
                    gmem,
                    smem: &mut smem,
                    regs: &mut regs,
                    stats: &mut stats,
                    cached: &mut cached,
                };
                kernel.run_warp(&mut ctx);
            }
            if phase + 1 < phases {
                stats.barriers += 1;
            }
        }
    }

    let occupancy_info = occupancy(cfg, launch);
    let timing = kernel_time(cfg, launch, &stats);
    LaunchRecord {
        launch: launch.clone(),
        stats,
        occupancy: occupancy_info,
        timing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Strided reader: lane l reads word l*stride (tests coalescing math).
    struct StridedRead {
        buf: crate::Buf,
        stride: usize,
    }

    impl WarpKernel for StridedRead {
        fn phases(&self) -> usize {
            1
        }
        fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
            let addrs: Vec<Option<usize>> = (0..ctx.lanes())
                .map(|l| Some(self.buf.word(ctx.global_thread(l) * self.stride)))
                .collect();
            ctx.gmem_load(&addrs);
        }
    }

    #[test]
    fn unit_stride_coalesces_perfectly() {
        let mut gmem = Gmem::new();
        let buf = gmem.alloc(1024);
        let cfg = GpuConfig::titan_v();
        let launch = LaunchConfig::new("r", 1, 32);
        let rec = run_kernel(&cfg, &mut gmem, &StridedRead { buf, stride: 1 }, &launch);
        // 32 lanes x 8 B = 256 B = 8 transactions of 32 B.
        assert_eq!(rec.stats.dram_read_transactions, 8);
        assert_eq!(rec.stats.useful_read_bytes, 256);
        assert!((rec.stats.read_waste(&cfg) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn stride_four_wastes_three_quarters() {
        // Lane addresses 4 words apart: each 32 B transaction serves one
        // lane — the paper's Fig. 6(a) 75%-waste case.
        let mut gmem = Gmem::new();
        let buf = gmem.alloc(4096);
        let cfg = GpuConfig::titan_v();
        let launch = LaunchConfig::new("r", 1, 32);
        let rec = run_kernel(&cfg, &mut gmem, &StridedRead { buf, stride: 4 }, &launch);
        assert_eq!(rec.stats.dram_read_transactions, 32);
        assert!((rec.stats.read_waste(&cfg) - 0.75).abs() < 1e-12);
    }

    /// All lanes read the same word (twiddle broadcast).
    struct Broadcast {
        buf: crate::Buf,
        cached: bool,
    }

    impl WarpKernel for Broadcast {
        fn phases(&self) -> usize {
            1
        }
        fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
            let addrs: Vec<Option<usize>> =
                (0..ctx.lanes()).map(|_| Some(self.buf.word(0))).collect();
            if self.cached {
                ctx.gmem_load_cached(&addrs);
            } else {
                ctx.gmem_load(&addrs);
            }
        }
    }

    #[test]
    fn broadcast_is_one_transaction_per_warp() {
        let mut gmem = Gmem::new();
        let buf = gmem.alloc(4);
        let cfg = GpuConfig::titan_v();
        let launch = LaunchConfig::new("b", 8, 256);
        let rec = run_kernel(&cfg, &mut gmem, &Broadcast { buf, cached: false }, &launch);
        // 8 blocks x 8 warps, each warp 1 transaction.
        assert_eq!(rec.stats.dram_read_transactions, 64);
    }

    /// Lane l reads word l from two parallel tables (value + companion),
    /// either as two independent cached loads or one paired load.
    struct PairedTableRead {
        va: crate::Buf,
        vb: crate::Buf,
        paired: bool,
    }

    impl WarpKernel for PairedTableRead {
        fn phases(&self) -> usize {
            1
        }
        fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
            let a: Vec<Option<usize>> = (0..ctx.lanes())
                .map(|l| Some(self.va.word(ctx.global_thread(l))))
                .collect();
            let b: Vec<Option<usize>> = (0..ctx.lanes())
                .map(|l| Some(self.vb.word(ctx.global_thread(l))))
                .collect();
            if self.paired {
                let (x, y) = ctx.gmem_load_cached2(&a, &b);
                assert!(x.iter().chain(&y).all(Option::is_some));
            } else {
                ctx.gmem_load_cached(&a);
                ctx.gmem_load_cached(&b);
            }
        }
    }

    #[test]
    fn paired_cached_load_matches_two_single_loads() {
        // Distinct tables: the pair shares no segments, so DRAM/L2 counts
        // must agree exactly with two independent cached loads.
        for paired in [false, true] {
            let mut gmem = Gmem::new();
            let va = gmem.alloc_from(&(0..64u64).collect::<Vec<_>>());
            let vb = gmem.alloc_from(&(64..128u64).collect::<Vec<_>>());
            let cfg = GpuConfig::titan_v();
            let launch = LaunchConfig::new("pair", 1, 64);
            let rec = run_kernel(
                &cfg,
                &mut gmem,
                &PairedTableRead { va, vb, paired },
                &launch,
            );
            assert_eq!(rec.stats.dram_read_transactions, 32, "paired={paired}");
            assert_eq!(rec.stats.l2_read_transactions, 32, "paired={paired}");
            assert_eq!(rec.stats.useful_read_bytes, 128 * 8, "paired={paired}");
        }
    }

    #[test]
    fn cached_broadcast_hits_dram_once() {
        let mut gmem = Gmem::new();
        let buf = gmem.alloc(4);
        let cfg = GpuConfig::titan_v();
        let launch = LaunchConfig::new("b", 8, 256);
        let rec = run_kernel(&cfg, &mut gmem, &Broadcast { buf, cached: true }, &launch);
        assert_eq!(rec.stats.dram_read_transactions, 1);
        assert_eq!(rec.stats.l2_read_transactions, 64);
    }

    /// Two-phase SMEM exchange: phase 0 writes tid, phase 1 reads reversed.
    struct SmemReverse {
        out: crate::Buf,
    }

    impl WarpKernel for SmemReverse {
        fn phases(&self) -> usize {
            2
        }
        fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
            let lanes = ctx.lanes();
            let n = 64; // threads per block in the test
            if ctx.phase == 0 {
                let writes: Vec<Option<(usize, u64)>> = (0..lanes)
                    .map(|l| {
                        let t = ctx.thread_in_block(l);
                        Some((t, ctx.global_thread(l) as u64))
                    })
                    .collect();
                ctx.smem_store(&writes);
            } else {
                let addrs: Vec<Option<usize>> = (0..lanes)
                    .map(|l| Some(n - 1 - ctx.thread_in_block(l)))
                    .collect();
                let vals = ctx.smem_load(&addrs);
                let writes: Vec<Option<(usize, u64)>> = (0..lanes)
                    .map(|l| Some((self.out.word(ctx.global_thread(l)), vals[l].unwrap())))
                    .collect();
                ctx.gmem_store(&writes);
            }
        }
    }

    #[test]
    fn smem_exchange_across_barrier() {
        let mut gmem = Gmem::new();
        let out = gmem.alloc(128);
        let cfg = GpuConfig::titan_v();
        let launch = LaunchConfig::new("rev", 2, 64).smem_bytes(64 * 8);
        let rec = run_kernel(&cfg, &mut gmem, &SmemReverse { out }, &launch);
        // Block 0 reverses 0..64, block 1 reverses 64..128.
        let data = gmem.slice(out);
        assert_eq!(data[0], 63);
        assert_eq!(data[63], 0);
        assert_eq!(data[64], 127);
        assert_eq!(rec.stats.barriers, 2); // one per block
        assert_eq!(rec.stats.smem_write_bytes, 128 * 8);
    }

    #[test]
    fn register_state_survives_phases() {
        struct RegCarry {
            out: crate::Buf,
        }
        impl WarpKernel for RegCarry {
            fn phases(&self) -> usize {
                2
            }
            fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
                let lanes = ctx.lanes();
                if ctx.phase == 0 {
                    for l in 0..lanes {
                        let v = ctx.global_thread(l) as u64 * 3;
                        ctx.regs(l)[0] = v;
                    }
                } else {
                    let writes: Vec<Option<(usize, u64)>> = (0..lanes)
                        .map(|l| {
                            let v = ctx.regs(l)[0];
                            Some((self.out.word(ctx.global_thread(l)), v))
                        })
                        .collect();
                    ctx.gmem_store(&writes);
                }
            }
        }
        let mut gmem = Gmem::new();
        let out = gmem.alloc(64);
        let cfg = GpuConfig::titan_v();
        let launch = LaunchConfig::new("reg", 2, 32).reg_slots(1);
        run_kernel(&cfg, &mut gmem, &RegCarry { out }, &launch);
        assert_eq!(gmem.slice(out)[10], 30);
        assert_eq!(gmem.slice(out)[63], 189);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_rejected() {
        let mut gmem = Gmem::new();
        let buf = gmem.alloc(4);
        run_kernel(
            &GpuConfig::titan_v(),
            &mut gmem,
            &StridedRead { buf, stride: 1 },
            &LaunchConfig::new("x", 0, 32),
        );
    }
}
