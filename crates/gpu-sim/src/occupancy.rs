//! Occupancy: how many threads an SM can keep resident.
//!
//! §II of the paper: "if each thread occupies a large amount of these
//! resources [registers, SMEM], fewer threads can run simultaneously on an
//! SM; the ratio of the number of concurrently running threads over the
//! maximum of a machine is called the occupancy rate."

use crate::config::GpuConfig;
use crate::engine::LaunchConfig;

/// Result of the occupancy calculation for one launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancyInfo {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident threads per SM.
    pub threads_per_sm: u32,
    /// Occupancy rate: resident threads / max threads.
    pub occupancy: f64,
    /// 32-bit registers the hardware actually allocates per thread
    /// (demand capped at `max_regs_per_thread`).
    pub regs_allocated: u32,
    /// Registers spilled to local memory per thread (demand beyond cap).
    pub regs_spilled: u32,
    /// Which resource bounds the block count.
    pub limiter: Limiter,
}

/// The resource that limits residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    /// Register file exhausted first.
    Registers,
    /// Shared memory exhausted first.
    SharedMemory,
    /// Thread count cap reached first.
    Threads,
    /// Block count cap reached first.
    Blocks,
    /// Fewer blocks launched than one SM could hold.
    GridSize,
}

/// Compute occupancy for a launch configuration.
///
/// Register demand beyond the hardware cap spills: the thread still only
/// *allocates* `max_regs_per_thread`, and the excess becomes per-thread
/// local memory traffic (priced by the timing model). This mirrors the
/// paper's observation for radix-64/128 that "the compiler allocates LMEM
/// … while the occupancy remains mostly unchanged".
pub fn occupancy(cfg: &GpuConfig, launch: &LaunchConfig) -> OccupancyInfo {
    let regs_demand = launch.regs_per_thread.max(1);
    let threads = launch.threads_per_block as u32;
    let bounds = resource_bounds(cfg, launch);
    let regs_spilled = regs_demand - bounds.regs_allocated;

    let mut blocks_per_sm = bounds.blocks_per_sm();
    let mut limiter = if blocks_per_sm == bounds.by_regs {
        Limiter::Registers
    } else if blocks_per_sm == bounds.by_smem {
        Limiter::SharedMemory
    } else if blocks_per_sm == bounds.by_threads {
        Limiter::Threads
    } else {
        Limiter::Blocks
    };

    // A small grid cannot fill the machine regardless of resources.
    let grid_blocks_per_sm = (launch.blocks as u32).div_ceil(cfg.sm_count);
    if grid_blocks_per_sm < blocks_per_sm {
        blocks_per_sm = grid_blocks_per_sm;
        limiter = Limiter::GridSize;
    }

    let threads_per_sm = blocks_per_sm * threads;
    OccupancyInfo {
        blocks_per_sm,
        threads_per_sm,
        occupancy: f64::from(threads_per_sm) / f64::from(cfg.max_threads_per_sm),
        regs_allocated: bounds.regs_allocated,
        regs_spilled,
        limiter,
    }
}

/// The per-resource residency bounds for one launch — the single source
/// both [`occupancy`] (block count + limiter classification) and the
/// stream scheduler's [`resource_blocks_per_sm`] derive from.
struct ResourceBounds {
    by_regs: u32,
    by_smem: u32,
    by_threads: u32,
    by_blocks: u32,
    regs_allocated: u32,
}

impl ResourceBounds {
    fn blocks_per_sm(&self) -> u32 {
        self.by_regs
            .min(self.by_smem)
            .min(self.by_threads)
            .min(self.by_blocks)
    }
}

fn resource_bounds(cfg: &GpuConfig, launch: &LaunchConfig) -> ResourceBounds {
    let threads = launch.threads_per_block as u32;
    let regs_demand = launch.regs_per_thread.max(1);
    // The compiler caps allocation at the hardware per-thread limit AND at
    // whatever lets at least one block fit the register file (the effect
    // of `maxrregcount`); everything beyond spills to local memory.
    let fit_cap = (cfg.regfile_words_per_sm / threads.max(1)).max(16);
    let regs_allocated = regs_demand.min(cfg.max_regs_per_thread).min(fit_cap);
    ResourceBounds {
        by_regs: cfg.regfile_words_per_sm / (regs_allocated * threads).max(1),
        by_smem: if launch.smem_bytes_per_block == 0 {
            u32::MAX
        } else {
            cfg.smem_bytes_per_sm / launch.smem_bytes_per_block as u32
        },
        by_threads: cfg.max_threads_per_sm / threads.max(1),
        by_blocks: cfg.max_blocks_per_sm,
        regs_allocated,
    }
}

/// Blocks one SM can hold for this launch, limited by **resources only**
/// (registers, shared memory, thread and block caps) — without the
/// small-grid clamp [`occupancy`] applies. This is the residency the
/// stream scheduler divides the grid by to get a launch's SM demand.
pub fn resource_blocks_per_sm(cfg: &GpuConfig, launch: &LaunchConfig) -> u32 {
    resource_bounds(cfg, launch).blocks_per_sm()
}

/// SMs a launch needs to keep its whole grid resident at once, capped at
/// the device size — the stream scheduler's admission demand: small grids
/// leave SMs for kernels from other streams, device-filling grids
/// serialize.
pub fn sm_demand(cfg: &GpuConfig, launch: &LaunchConfig) -> u32 {
    let per_sm = resource_blocks_per_sm(cfg, launch).max(1);
    ((launch.blocks as u64).div_ceil(u64::from(per_sm)) as u32).clamp(1, cfg.sm_count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn launch(blocks: usize, threads: usize, regs: u32, smem: usize) -> LaunchConfig {
        LaunchConfig::new("t", blocks, threads)
            .regs_per_thread(regs)
            .smem_bytes(smem)
    }

    #[test]
    fn full_occupancy_with_light_kernels() {
        let cfg = GpuConfig::titan_v();
        let o = occupancy(&cfg, &launch(10_000, 256, 32, 0));
        assert_eq!(o.occupancy, 1.0);
        assert_eq!(o.regs_spilled, 0);
        assert_eq!(o.blocks_per_sm, 8);
    }

    #[test]
    fn register_pressure_lowers_occupancy() {
        let cfg = GpuConfig::titan_v();
        // 65536 regs / (176 regs * 256 thr) -> 1 block of 256 threads.
        let o = occupancy(&cfg, &launch(10_000, 256, 176, 0));
        assert_eq!(o.limiter, Limiter::Registers);
        assert!(o.occupancy < 0.25, "occ = {}", o.occupancy);
    }

    #[test]
    fn spill_beyond_register_cap() {
        let cfg = GpuConfig::titan_v();
        let o = occupancy(&cfg, &launch(10_000, 128, 304, 0));
        assert_eq!(o.regs_allocated, 255);
        assert_eq!(o.regs_spilled, 49);
        // Occupancy pinned at the 255-reg point: 65536/(255*128) = 2 blocks.
        assert_eq!(o.blocks_per_sm, 2);
    }

    #[test]
    fn spilled_kernels_share_occupancy_floor() {
        // The paper (§VI-B): radix-64 and radix-128 both spill; their
        // occupancy "remains mostly unchanged".
        let cfg = GpuConfig::titan_v();
        let o64 = occupancy(&cfg, &launch(10_000, 128, 304, 0));
        let o128 = occupancy(&cfg, &launch(10_000, 128, 560, 0));
        assert_eq!(o64.occupancy, o128.occupancy);
        assert!(o128.regs_spilled > o64.regs_spilled);
    }

    #[test]
    fn smem_limits_blocks() {
        let cfg = GpuConfig::titan_v();
        let o = occupancy(&cfg, &launch(10_000, 128, 32, 48 * 1024));
        assert_eq!(o.limiter, Limiter::SharedMemory);
        assert_eq!(o.blocks_per_sm, 2);
    }

    #[test]
    fn sm_demand_tracks_grid_and_resources() {
        let cfg = GpuConfig::titan_v();
        // 3 blocks fit one SM (6 blocks/SM by registers): demand 1 SM.
        assert_eq!(sm_demand(&cfg, &launch(3, 256, 40, 0)), 1);
        // A device-filling grid demands every SM.
        assert_eq!(sm_demand(&cfg, &launch(10_000, 256, 32, 0)), cfg.sm_count);
        // Resource pressure raises demand: 1 block/SM at 176 regs.
        assert_eq!(sm_demand(&cfg, &launch(8, 256, 176, 0)), 8);
    }

    #[test]
    fn small_grids_underfill() {
        let cfg = GpuConfig::titan_v();
        let o = occupancy(&cfg, &launch(80, 256, 32, 0));
        assert_eq!(o.limiter, Limiter::GridSize);
        assert_eq!(o.blocks_per_sm, 1);
        assert!((o.occupancy - 0.125).abs() < 1e-12);
    }
}
