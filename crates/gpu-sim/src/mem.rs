//! Simulated global memory (GMEM).
//!
//! A single flat array of 64-bit words with bump allocation. Buffers are
//! cheap handles (`Buf`) carrying their base word address, so kernels can
//! compute global addresses the way CUDA kernels compute pointers.

/// A handle to an allocated GMEM region (word-addressed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Buf {
    base: usize,
    len: usize,
}

impl Buf {
    /// Base word address.
    #[inline]
    pub fn base(&self) -> usize {
        self.base
    }

    /// Length in 64-bit words.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` for zero-length buffers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Global word address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `i` is out of bounds.
    #[inline]
    pub fn word(&self, i: usize) -> usize {
        debug_assert!(
            i < self.len,
            "buffer index {i} out of bounds ({})",
            self.len
        );
        self.base + i
    }

    /// A sub-buffer view (`offset..offset+len`).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the buffer.
    pub fn sub(&self, offset: usize, len: usize) -> Buf {
        assert!(offset + len <= self.len, "sub-buffer out of range");
        Buf {
            base: self.base + offset,
            len,
        }
    }
}

/// Simulated device global memory.
#[derive(Debug, Default)]
pub struct Gmem {
    words: Vec<u64>,
}

impl Gmem {
    /// Empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate `len` zeroed words.
    pub fn alloc(&mut self, len: usize) -> Buf {
        let base = self.words.len();
        self.words.resize(base + len, 0);
        Buf { base, len }
    }

    /// Allocate and initialize from host data.
    pub fn alloc_from(&mut self, data: &[u64]) -> Buf {
        let base = self.words.len();
        self.words.extend_from_slice(data);
        Buf {
            base,
            len: data.len(),
        }
    }

    /// Host-side read of a whole buffer.
    pub fn slice(&self, buf: Buf) -> &[u64] {
        &self.words[buf.base..buf.base + buf.len]
    }

    /// Host-side write into a buffer at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the write exceeds the buffer.
    pub fn write(&mut self, buf: Buf, offset: usize, data: &[u64]) {
        assert!(offset + data.len() <= buf.len, "write out of bounds");
        self.words[buf.base + offset..buf.base + offset + data.len()].copy_from_slice(data);
    }

    /// Total words allocated.
    pub fn allocated_words(&self) -> usize {
        self.words.len()
    }

    /// Raw word access for the engine.
    #[inline]
    pub(crate) fn word(&self, addr: usize) -> u64 {
        self.words[addr]
    }

    /// Raw word store for the engine.
    #[inline]
    pub(crate) fn set_word(&mut self, addr: usize, v: u64) {
        self.words[addr] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_roundtrip() {
        let mut g = Gmem::new();
        let a = g.alloc(8);
        let b = g.alloc_from(&[1, 2, 3]);
        assert_eq!(a.len(), 8);
        assert_eq!(g.slice(a), &[0; 8]);
        assert_eq!(g.slice(b), &[1, 2, 3]);
        assert_eq!(b.base(), 8);
        assert_eq!(g.allocated_words(), 11);
    }

    #[test]
    fn write_and_word_addresses() {
        let mut g = Gmem::new();
        let a = g.alloc(4);
        g.write(a, 1, &[9, 9]);
        assert_eq!(g.slice(a), &[0, 9, 9, 0]);
        assert_eq!(a.word(2), a.base() + 2);
    }

    #[test]
    fn sub_buffer_addressing() {
        let mut g = Gmem::new();
        let a = g.alloc_from(&[10, 11, 12, 13, 14, 15]);
        let s = a.sub(2, 3);
        assert_eq!(g.slice(s), &[12, 13, 14]);
        assert_eq!(s.word(0), a.word(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sub_buffer_bounds_checked() {
        let mut g = Gmem::new();
        let a = g.alloc(4);
        a.sub(2, 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn write_bounds_checked() {
        let mut g = Gmem::new();
        let a = g.alloc(2);
        g.write(a, 1, &[1, 2]);
    }
}
