//! Simulated global memory (GMEM).
//!
//! A single flat array of 64-bit words with bump allocation plus an
//! exact-size free list ([`Gmem::free`] / recycled by [`Gmem::alloc`]), so
//! long-lived device-resident workloads can release buffers without
//! growing the address space. Buffers are cheap handles (`Buf`) carrying
//! their base word address, so kernels can compute global addresses the
//! way CUDA kernels compute pointers.
//!
//! Host↔device traffic is charged through [`Gmem::upload`] /
//! [`Gmem::download`] into a [`TransferStats`] ledger — the accounting
//! behind the residency gates (`SimBackend` routes every staging copy
//! through these, so "zero steady-state transfers" is a counted fact, not
//! a claim). The raw [`Gmem::write`] / [`Gmem::slice`] accessors remain
//! for test scaffolding and verification reads, which model no bus
//! traffic.

use crate::stats::TransferStats;
use std::collections::HashMap;

/// A handle to an allocated GMEM region (word-addressed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Buf {
    base: usize,
    len: usize,
}

impl Buf {
    /// Base word address.
    #[inline]
    pub fn base(&self) -> usize {
        self.base
    }

    /// Length in 64-bit words.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` for zero-length buffers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Global word address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `i` is out of bounds.
    #[inline]
    pub fn word(&self, i: usize) -> usize {
        debug_assert!(
            i < self.len,
            "buffer index {i} out of bounds ({})",
            self.len
        );
        self.base + i
    }

    /// A sub-buffer view (`offset..offset+len`).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the buffer.
    pub fn sub(&self, offset: usize, len: usize) -> Buf {
        assert!(offset + len <= self.len, "sub-buffer out of range");
        Buf {
            base: self.base + offset,
            len,
        }
    }
}

/// Simulated device global memory.
#[derive(Debug, Default)]
pub struct Gmem {
    words: Vec<u64>,
    /// Exact-size recycling bins: freed buffers keyed by length.
    free_lists: HashMap<usize, Vec<usize>>,
    transfers: TransferStats,
}

impl Gmem {
    /// Empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate `len` zeroed words, recycling an exact-size freed buffer
    /// when one is available (freshly bump-allocated otherwise).
    pub fn alloc(&mut self, len: usize) -> Buf {
        self.transfers.allocs += 1;
        if let Some(base) = self.free_lists.get_mut(&len).and_then(Vec::pop) {
            self.words[base..base + len].fill(0);
            return Buf { base, len };
        }
        let base = self.words.len();
        self.words.resize(base + len, 0);
        Buf { base, len }
    }

    /// Return a buffer to the free list for exact-size reuse. The handle
    /// must not be used afterwards (simulated use-after-free is not
    /// detected — handles are plain addresses, as on real hardware).
    pub fn free(&mut self, buf: Buf) {
        if buf.len == 0 {
            return;
        }
        self.transfers.frees += 1;
        self.free_lists.entry(buf.len).or_default().push(buf.base);
    }

    /// Allocate and initialize from host data (counted as one upload).
    pub fn alloc_from(&mut self, data: &[u64]) -> Buf {
        let buf = self.alloc(data.len());
        self.upload(buf, 0, data);
        buf
    }

    /// Host-side read of a whole buffer.
    pub fn slice(&self, buf: Buf) -> &[u64] {
        &self.words[buf.base..buf.base + buf.len]
    }

    /// Host-side write into a buffer at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the write exceeds the buffer.
    pub fn write(&mut self, buf: Buf, offset: usize, data: &[u64]) {
        assert!(offset + data.len() <= buf.len, "write out of bounds");
        self.words[buf.base + offset..buf.base + offset + data.len()].copy_from_slice(data);
    }

    /// Host→device copy: like [`Gmem::write`], but charged to the transfer
    /// ledger. All staging copies of a residency-aware backend go through
    /// here so the gates can count them.
    ///
    /// # Panics
    ///
    /// Panics if the copy exceeds the buffer.
    pub fn upload(&mut self, buf: Buf, offset: usize, data: &[u64]) {
        self.transfers.uploads += 1;
        self.transfers.upload_words += data.len() as u64;
        self.write(buf, offset, data);
    }

    /// Device→host copy of the leading `out.len()` words of `buf`,
    /// charged to the transfer ledger.
    ///
    /// # Panics
    ///
    /// Panics if `out` is longer than the buffer.
    pub fn download(&mut self, buf: Buf, out: &mut [u64]) {
        self.transfers.downloads += 1;
        self.transfers.download_words += out.len() as u64;
        out.copy_from_slice(self.slice(buf.sub(0, out.len())));
    }

    /// Device-to-device copy (`src` → `dst`, full `src` length). Never
    /// crosses the simulated bus, so only the `d2d_copies` counter moves.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is shorter than `src` or the regions are distinct
    /// but overlapping (the simulated `cudaMemcpyDeviceToDevice` contract).
    pub fn copy(&mut self, src: Buf, dst: Buf) {
        assert!(src.len <= dst.len, "device copy exceeds destination");
        self.transfers.d2d_copies += 1;
        if src.base == dst.base {
            return;
        }
        assert!(
            src.base + src.len <= dst.base || dst.base + src.len <= src.base,
            "overlapping device copy"
        );
        self.words
            .copy_within(src.base..src.base + src.len, dst.base);
    }

    /// The host↔device transfer ledger since construction or the last
    /// [`Gmem::reset_transfer_stats`].
    pub fn transfer_stats(&self) -> TransferStats {
        self.transfers
    }

    /// Zero the transfer ledger (steady-state measurement windows).
    pub fn reset_transfer_stats(&mut self) {
        self.transfers = TransferStats::default();
    }

    /// Total words allocated (high-water mark; recycled buffers do not
    /// shrink it).
    pub fn allocated_words(&self) -> usize {
        self.words.len()
    }

    /// Raw word access for the engine.
    #[inline]
    pub(crate) fn word(&self, addr: usize) -> u64 {
        self.words[addr]
    }

    /// Raw word store for the engine.
    #[inline]
    pub(crate) fn set_word(&mut self, addr: usize, v: u64) {
        self.words[addr] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_roundtrip() {
        let mut g = Gmem::new();
        let a = g.alloc(8);
        let b = g.alloc_from(&[1, 2, 3]);
        assert_eq!(a.len(), 8);
        assert_eq!(g.slice(a), &[0; 8]);
        assert_eq!(g.slice(b), &[1, 2, 3]);
        assert_eq!(b.base(), 8);
        assert_eq!(g.allocated_words(), 11);
    }

    #[test]
    fn write_and_word_addresses() {
        let mut g = Gmem::new();
        let a = g.alloc(4);
        g.write(a, 1, &[9, 9]);
        assert_eq!(g.slice(a), &[0, 9, 9, 0]);
        assert_eq!(a.word(2), a.base() + 2);
    }

    #[test]
    fn sub_buffer_addressing() {
        let mut g = Gmem::new();
        let a = g.alloc_from(&[10, 11, 12, 13, 14, 15]);
        let s = a.sub(2, 3);
        assert_eq!(g.slice(s), &[12, 13, 14]);
        assert_eq!(s.word(0), a.word(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sub_buffer_bounds_checked() {
        let mut g = Gmem::new();
        let a = g.alloc(4);
        a.sub(2, 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn write_bounds_checked() {
        let mut g = Gmem::new();
        let a = g.alloc(2);
        g.write(a, 1, &[1, 2]);
    }

    #[test]
    fn free_recycles_exact_size_and_zeroes() {
        let mut g = Gmem::new();
        let a = g.alloc_from(&[1, 2, 3, 4]);
        let high_water = g.allocated_words();
        g.free(a);
        let b = g.alloc(4);
        assert_eq!(b.base(), a.base(), "exact-size free buffer is recycled");
        assert_eq!(g.slice(b), &[0, 0, 0, 0], "recycled buffer is zeroed");
        assert_eq!(g.allocated_words(), high_water, "no address-space growth");
        // A different size cannot reuse the bin.
        g.free(b);
        let c = g.alloc(5);
        assert_eq!(c.base(), high_water);
    }

    #[test]
    fn transfer_ledger_counts_uploads_downloads_and_copies() {
        let mut g = Gmem::new();
        let a = g.alloc_from(&[7, 8, 9]); // 1 upload of 3 words
        let b = g.alloc(3);
        g.copy(a, b);
        let mut out = [0u64; 3];
        g.download(b, &mut out);
        assert_eq!(out, [7, 8, 9]);
        let t = g.transfer_stats();
        assert_eq!((t.uploads, t.upload_words), (1, 3));
        assert_eq!((t.downloads, t.download_words), (1, 3));
        assert_eq!(t.d2d_copies, 1);
        assert_eq!(t.allocs, 2);
        assert_eq!(t.host_transfers(), 2);
        let before = t;
        g.upload(a, 0, &[1]);
        assert_eq!(g.transfer_stats().since(&before).uploads, 1);
        g.reset_transfer_stats();
        assert_eq!(g.transfer_stats(), TransferStats::default());
    }

    #[test]
    #[should_panic(expected = "overlapping device copy")]
    fn overlapping_copy_rejected() {
        let mut g = Gmem::new();
        let a = g.alloc(8);
        g.copy(a.sub(0, 4), a.sub(2, 4));
    }
}
