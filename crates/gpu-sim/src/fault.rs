//! Deterministic fault injection for the simulated device.
//!
//! Real accelerator fleets fail in a handful of well-known ways: a flaky
//! PCIe link drops a transfer, a kernel launch aborts, an allocation runs
//! the device out of memory, or the device wedges entirely and every
//! subsequent command fails until it is reset. A [`FaultPlan`] reproduces
//! those failure classes *deterministically*: it is a seeded counter-based
//! schedule, so a given `(seed, rates, sticky_after)` triple always fails
//! the same operations in the same order — which is what makes chaos tests
//! replayable and CI-stable.
//!
//! The plan is armed on a [`Gpu`](crate::Gpu) via
//! [`Gpu::set_fault_plan`](crate::Gpu::set_fault_plan) and consulted by the
//! *fallible* backend entry points (`try_*` in `ntt-gpu`); the legacy
//! infallible paths never draw from it, so calibration runs and
//! figure-harness sweeps stay fault-free by construction. When a fault
//! fires, the `Gpu` charges a zero-word transfer (one PCIe latency) to the
//! active stream so the aborted command still occupies the modeled
//! timeline, like a real failed command occupies the hardware queue.
//!
//! # Environment knob
//!
//! [`FaultPlan::from_env`] parses `NTT_WARP_FAULTS`, a comma-separated
//! `key=value` list:
//!
//! ```text
//! NTT_WARP_FAULTS="seed=7,upload=20,launch=10,sticky_after=400,oom_words=1048576"
//! ```
//!
//! * `seed` — RNG seed (default 1).
//! * `upload` / `download` / `launch` / `alloc` — per-mille transient
//!   fault probability for that operation class (0–1000, default 0).
//! * `sticky_after` — after this many fallible operations the device
//!   wedges: every later draw fails sticky (unset = never).
//! * `oom_words` — device capacity in words; an allocation that would
//!   push the address space past it fails with an OOM fault.

/// The operation classes a [`FaultPlan`] can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// Host → device transfer.
    Upload,
    /// Device → host transfer.
    Download,
    /// Kernel launch.
    Launch,
    /// Device memory allocation.
    Alloc,
}

impl FaultOp {
    const ALL: [FaultOp; 4] = [
        FaultOp::Upload,
        FaultOp::Download,
        FaultOp::Launch,
        FaultOp::Alloc,
    ];

    fn index(self) -> usize {
        match self {
            FaultOp::Upload => 0,
            FaultOp::Download => 1,
            FaultOp::Launch => 2,
            FaultOp::Alloc => 3,
        }
    }

    fn env_key(self) -> &'static str {
        match self {
            FaultOp::Upload => "upload",
            FaultOp::Download => "download",
            FaultOp::Launch => "launch",
            FaultOp::Alloc => "alloc",
        }
    }
}

/// How an injected fault fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// One-shot: the operation failed but the device is healthy; the
    /// identical retry may succeed.
    Transient,
    /// The device is wedged: this and every later fallible operation
    /// fails until the device is reinitialized (plan disarmed).
    Sticky,
    /// Device memory exhausted.
    Oom,
}

/// A seeded, deterministic fault schedule for one simulated device.
///
/// Configure with the builder methods ([`rate`](FaultPlan::rate),
/// [`sticky_after`](FaultPlan::sticky_after),
/// [`oom_words`](FaultPlan::oom_words)) or from the `NTT_WARP_FAULTS`
/// environment variable ([`from_env`](FaultPlan::from_env)). Probabilities
/// are expressed in per-mille (integer ‰) so the schedule involves no
/// floating point and replays identically everywhere.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// xorshift64* state; never zero.
    state: u64,
    /// Per-mille transient fault rate per [`FaultOp`].
    rates: [u16; 4],
    /// Wedge the device after this many fallible operations.
    sticky_after: Option<u64>,
    /// Address-space capacity in words for OOM simulation.
    oom_words: Option<usize>,
    /// Fallible operations drawn so far.
    ops_seen: u64,
    /// The device has wedged (sticky fault active).
    sticky: bool,
    /// Faults injected so far, by kind: [transient, sticky, oom].
    injected: [u64; 3],
}

impl FaultPlan {
    /// A plan with the given seed and no faults configured — the
    /// "armed but silent" baseline used to measure hook overhead.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            state: seed | 1,
            rates: [0; 4],
            sticky_after: None,
            oom_words: None,
            ops_seen: 0,
            sticky: false,
            injected: [0; 3],
        }
    }

    /// Set the transient fault probability for `op`, in per-mille
    /// (clamped to 1000).
    pub fn rate(mut self, op: FaultOp, per_mille: u16) -> Self {
        self.rates[op.index()] = per_mille.min(1000);
        self
    }

    /// Wedge the device (every draw fails sticky) after `n` fallible
    /// operations have been issued.
    pub fn sticky_after(mut self, n: u64) -> Self {
        self.sticky_after = Some(n);
        self
    }

    /// Cap the device address space at `words`; allocations that would
    /// exceed it fail with [`FaultKind::Oom`].
    pub fn oom_words(mut self, words: usize) -> Self {
        self.oom_words = Some(words);
        self
    }

    /// Build a plan from the `NTT_WARP_FAULTS` environment variable, or
    /// `None` when it is unset or empty. See the module docs for the
    /// format.
    ///
    /// # Panics
    ///
    /// Panics on malformed entries — the variable is a test/ops knob and
    /// a silently ignored typo would un-arm a chaos run.
    pub fn from_env() -> Option<Self> {
        let spec = std::env::var("NTT_WARP_FAULTS").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        let mut plan = FaultPlan::seeded(1);
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once('=')
                .unwrap_or_else(|| panic!("NTT_WARP_FAULTS: `{entry}` is not key=value"));
            let parse = |what: &str| -> u64 {
                value
                    .parse()
                    .unwrap_or_else(|_| panic!("NTT_WARP_FAULTS: bad {what} value `{value}`"))
            };
            match key {
                "seed" => plan.state = parse("seed") | 1,
                "sticky_after" => plan.sticky_after = Some(parse("sticky_after")),
                "oom_words" => plan.oom_words = Some(parse("oom_words") as usize),
                op_key => {
                    let op = FaultOp::ALL
                        .into_iter()
                        .find(|op| op.env_key() == op_key)
                        .unwrap_or_else(|| panic!("NTT_WARP_FAULTS: unknown key `{op_key}`"));
                    plan = plan.rate(op, parse("rate").min(1000) as u16);
                }
            }
        }
        Some(plan)
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: tiny, seedable, good enough to decorrelate draws.
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Draw the schedule for one fallible operation of class `op`.
    ///
    /// Deterministic: the outcome depends only on the seed and the
    /// sequence of draws so far. Once the sticky threshold has passed,
    /// every draw fails [`FaultKind::Sticky`].
    pub fn check(&mut self, op: FaultOp) -> Result<(), FaultKind> {
        self.ops_seen += 1;
        if self.sticky || self.sticky_after.is_some_and(|n| self.ops_seen > n) {
            self.sticky = true;
            self.injected[1] += 1;
            return Err(FaultKind::Sticky);
        }
        let rate = self.rates[op.index()];
        if rate > 0 && self.next_u64() % 1000 < u64::from(rate) {
            self.injected[0] += 1;
            return Err(FaultKind::Transient);
        }
        Ok(())
    }

    /// Draw the schedule for an allocation that would bring the device
    /// address space to `projected_words`. Checks the OOM cap first,
    /// then the regular [`FaultOp::Alloc`] schedule.
    pub fn check_alloc(&mut self, projected_words: usize) -> Result<(), FaultKind> {
        if self.oom_words.is_some_and(|cap| projected_words > cap) {
            self.ops_seen += 1;
            self.injected[2] += 1;
            return Err(FaultKind::Oom);
        }
        self.check(FaultOp::Alloc)
    }

    /// Whether the sticky threshold has fired (the device is wedged).
    pub fn is_sticky(&self) -> bool {
        self.sticky
    }

    /// Fallible operations drawn so far.
    pub fn ops_seen(&self) -> u64 {
        self.ops_seen
    }

    /// Faults injected so far as `(transient, sticky, oom)`.
    pub fn injected(&self) -> (u64, u64, u64) {
        (self.injected[0], self.injected[1], self.injected[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_plan_never_faults() {
        let mut plan = FaultPlan::seeded(42);
        for _ in 0..10_000 {
            assert_eq!(plan.check(FaultOp::Launch), Ok(()));
        }
        assert_eq!(plan.injected(), (0, 0, 0));
    }

    #[test]
    fn schedule_is_deterministic() {
        let run = || {
            let mut plan = FaultPlan::seeded(7)
                .rate(FaultOp::Upload, 100)
                .rate(FaultOp::Launch, 50);
            (0..1000)
                .map(|i| {
                    let op = if i % 2 == 0 {
                        FaultOp::Upload
                    } else {
                        FaultOp::Launch
                    };
                    plan.check(op).is_err()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn transient_rate_is_roughly_honored() {
        let mut plan = FaultPlan::seeded(3).rate(FaultOp::Upload, 100); // 10%
        let faults = (0..10_000)
            .filter(|_| plan.check(FaultOp::Upload).is_err())
            .count();
        assert!(
            (500..1500).contains(&faults),
            "10% rate produced {faults}/10000 faults"
        );
    }

    #[test]
    fn sticky_threshold_wedges_the_device() {
        let mut plan = FaultPlan::seeded(1).sticky_after(5);
        for _ in 0..5 {
            assert_eq!(plan.check(FaultOp::Launch), Ok(()));
        }
        for _ in 0..10 {
            assert_eq!(plan.check(FaultOp::Launch), Err(FaultKind::Sticky));
        }
        assert!(plan.is_sticky());
    }

    #[test]
    fn oom_cap_fails_oversized_allocs_only() {
        let mut plan = FaultPlan::seeded(1).oom_words(1000);
        assert_eq!(plan.check_alloc(1000), Ok(()));
        assert_eq!(plan.check_alloc(1001), Err(FaultKind::Oom));
        assert_eq!(plan.check_alloc(500), Ok(()));
    }

    #[test]
    fn env_parsing_round_trips() {
        // from_env reads the process environment, which is shared across
        // test threads — parse via a local helper instead by setting and
        // clearing around a dedicated key is racy. Exercise the builder
        // equivalence of the documented example instead.
        let plan = FaultPlan::seeded(7)
            .rate(FaultOp::Upload, 20)
            .rate(FaultOp::Launch, 10)
            .sticky_after(400)
            .oom_words(1_048_576);
        assert_eq!(plan.rates, [20, 0, 10, 0]);
        assert_eq!(plan.sticky_after, Some(400));
        assert_eq!(plan.oom_words, Some(1_048_576));
    }
}
