//! A functional + performance model of a Titan-V-class GPU.
//!
//! This crate is the hardware substrate for the reproduction of
//! *"Accelerating NTT for Bootstrappable HE on GPUs"* (IISWC 2020). The
//! paper's experiments run CUDA kernels on an NVIDIA Titan V; this
//! environment has no GPU, so — per the reproduction's substitution rule —
//! we model one:
//!
//! * **Functional**: kernels are *warp programs* ([`WarpKernel`]) executed
//!   against simulated global/shared memory. Data really moves; the NTT
//!   results coming out of the simulator are checked bit-exact against the
//!   scalar reference in `ntt-core`.
//! * **Performance**: every warp-level load/store is classified into 32-byte
//!   DRAM transactions (memory coalescing, §II of the paper), read-only
//!   table loads go through a modeled L2/texture path, shared-memory
//!   traffic and block barriers are counted, and occupancy is derived from
//!   register/SMEM pressure ([`occupancy`]). A calibrated analytical model
//!   ([`perf`], [`calibrate`]) converts the counts into time.
//!
//! What this preserves from the paper: every effect the paper measures is a
//! *counted* quantity here (bytes, transactions, wasted lanes, spills,
//! occupancy), so the shapes of the paper's figures emerge from first
//! principles; only the count→seconds conversion is calibrated, against the
//! anchor points the paper discloses (86.7% saturated DRAM utilization,
//! 59.9% at radix-32's occupancy, spills from radix-64 up).
//!
//! # Example
//!
//! ```
//! use gpu_sim::{Gpu, GpuConfig, LaunchConfig, WarpKernel, WarpCtx};
//!
//! /// Doubles every element of a buffer.
//! struct DoubleKernel { buf: gpu_sim::Buf }
//! impl WarpKernel for DoubleKernel {
//!     fn phases(&self) -> usize { 1 }
//!     fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
//!         let lanes = ctx.lanes();
//!         let addrs: Vec<Option<usize>> = (0..lanes)
//!             .map(|l| Some(self.buf.word(ctx.global_thread(l))))
//!             .collect();
//!         let vals = ctx.gmem_load(&addrs);
//!         let writes: Vec<Option<(usize, u64)>> = (0..lanes)
//!             .map(|l| Some((self.buf.word(ctx.global_thread(l)), vals[l].unwrap() * 2)))
//!             .collect();
//!         ctx.gmem_store(&writes);
//!     }
//! }
//!
//! let mut gpu = Gpu::new(GpuConfig::titan_v());
//! let buf = gpu.gmem.alloc_from(&[1u64, 2, 3, 4]);
//! let cfg = LaunchConfig::new("double", 1, 4).regs_per_thread(16);
//! let record = gpu.launch(&DoubleKernel { buf }, &cfg);
//! assert_eq!(gpu.gmem.slice(buf), &[2, 4, 6, 8]);
//! assert!(record.timing.total_s > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod config;
pub mod engine;
pub mod fault;
pub mod mem;
pub mod occupancy;
pub mod perf;
pub mod stats;
pub mod stream;

pub use config::GpuConfig;
pub use engine::{LaunchConfig, LaunchRecord, WarpCtx, WarpKernel};
pub use fault::{FaultKind, FaultOp, FaultPlan};
pub use mem::{Buf, Gmem};
pub use occupancy::OccupancyInfo;
pub use perf::KernelTiming;
pub use stats::{KernelStats, OpClass, TransferStats};
pub use stream::{DeviceTimeline, Event, Stream, StreamScheduler, TimeSpan};

/// The simulated device: configuration, global memory, a trace of every
/// kernel launch with its statistics and modeled timing, and the stream
/// scheduler deciding how launches from different streams overlap in
/// modeled time.
#[derive(Debug)]
pub struct Gpu {
    /// Device configuration (Titan V by default).
    pub config: GpuConfig,
    /// Simulated global memory.
    pub gmem: Gmem,
    /// One record per launch, in launch order.
    pub trace: Vec<LaunchRecord>,
    /// The stream scheduler (overlapped-time accounting; see
    /// [`stream::StreamScheduler`]).
    pub streams: StreamScheduler,
    active_stream: Stream,
    fault: Option<FaultPlan>,
}

impl Gpu {
    /// A fresh device with empty memory.
    pub fn new(config: GpuConfig) -> Self {
        let streams = StreamScheduler::new(config.sm_count, config.pcie_bw);
        Self {
            config,
            gmem: Gmem::new(),
            trace: Vec::new(),
            streams,
            active_stream: Stream::DEFAULT,
            fault: None,
        }
    }

    /// Arm (or with `None`, disarm) a deterministic fault schedule. The
    /// plan is consulted only by the fallible `try_*` entry points of the
    /// execution backend via [`Gpu::fault_check`]; infallible paths —
    /// calibration, the figure harness — never draw from it. Disarming
    /// also "resets" a sticky-wedged device.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// The armed fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Draw the armed fault schedule for one fallible operation of class
    /// `op` (`Ok(())` when no plan is armed). A fired fault charges a
    /// zero-word transfer — one PCIe latency — to the active stream, so
    /// the aborted command still lands on the modeled timeline the way a
    /// failed command occupies a real hardware queue.
    pub fn fault_check(&mut self, op: FaultOp) -> Result<(), FaultKind> {
        let Some(plan) = self.fault.as_mut() else {
            return Ok(());
        };
        plan.check(op).inspect_err(|_| {
            self.streams.enqueue_transfer(self.active_stream, 0);
        })
    }

    /// Draw the armed fault schedule for an allocation that would bring
    /// the device address space to `projected_words` (OOM cap plus the
    /// regular [`FaultOp::Alloc`] schedule). Timeline charging as in
    /// [`Gpu::fault_check`].
    pub fn fault_check_alloc(&mut self, projected_words: usize) -> Result<(), FaultKind> {
        let Some(plan) = self.fault.as_mut() else {
            return Ok(());
        };
        plan.check_alloc(projected_words).inspect_err(|_| {
            self.streams.enqueue_transfer(self.active_stream, 0);
        })
    }

    /// Execute a kernel and record its statistics and modeled time. The
    /// launch is charged to the **active stream**: functionally it runs to
    /// completion right here (enqueue order is execution order), while its
    /// modeled time is scheduled against other streams' work subject to SM
    /// capacity ([`occupancy::sm_demand`]).
    ///
    /// Returns a clone of the recorded [`LaunchRecord`].
    pub fn launch<K: WarpKernel>(&mut self, kernel: &K, cfg: &LaunchConfig) -> LaunchRecord {
        let record = engine::run_kernel(&self.config, &mut self.gmem, kernel, cfg);
        let demand = occupancy::sm_demand(&self.config, cfg);
        self.streams
            .enqueue_kernel(self.active_stream, record.timing.total_s, demand);
        self.trace.push(record.clone());
        record
    }

    /// Create a new stream (an independent command queue for the
    /// overlapped-time model).
    pub fn create_stream(&mut self) -> Stream {
        self.streams.create_stream()
    }

    /// Destroy a stream created with [`Gpu::create_stream`].
    pub fn destroy_stream(&mut self, s: Stream) {
        self.streams.destroy_stream(s);
    }

    /// Select the stream subsequent launches and charged transfers run on.
    pub fn set_active_stream(&mut self, s: Stream) {
        self.active_stream = s;
    }

    /// The stream launches are currently charged to.
    pub fn active_stream(&self) -> Stream {
        self.active_stream
    }

    /// Record an event on `s` (a fence at the completion of all work
    /// enqueued on `s` so far).
    pub fn record_event(&mut self, s: Stream) -> Event {
        self.streams.record_event(s)
    }

    /// Make stream `s` wait for event `e` before running later commands.
    pub fn wait_event(&mut self, s: Stream, e: Event) {
        self.streams.wait_event(s, e);
    }

    /// Host→device copy charged to the active stream (ledger **and**
    /// modeled bus time; plain [`Gmem::upload`] only counts the ledger).
    ///
    /// # Panics
    ///
    /// Panics if the copy exceeds the buffer.
    pub fn stream_upload(&mut self, buf: Buf, offset: usize, data: &[u64]) {
        self.streams
            .enqueue_transfer(self.active_stream, data.len());
        self.gmem.upload(buf, offset, data);
    }

    /// Device→host copy charged to the active stream (see
    /// [`Gpu::stream_upload`]). The host blocks until the stream drains.
    ///
    /// # Panics
    ///
    /// Panics if `out` is longer than the buffer.
    pub fn stream_download(&mut self, buf: Buf, out: &mut [u64]) {
        self.streams.enqueue_transfer(self.active_stream, out.len());
        self.gmem.download(buf, out);
    }

    /// Charge one leg of an inter-device (peer-to-peer) copy of `words`
    /// 64-bit words to the active stream, using the configured
    /// [`GpuConfig::link_bw`] / [`GpuConfig::link_latency_s`]. The sharded
    /// backend calls this on **both** endpoints of a cross-shard move, so
    /// base-conversion all-gathers occupy every participating device's
    /// timeline. Data movement itself is done by the caller through raw
    /// [`Gmem`] access; this charges only the modeled time.
    pub fn link_stall(&mut self, words: usize) {
        let (bw, lat) = (self.config.link_bw, self.config.link_latency_s);
        self.streams
            .enqueue_link_transfer(self.active_stream, words, bw, lat);
    }

    /// Device-wide barrier in modeled time (see
    /// [`StreamScheduler::sync_all`]): later work on any stream starts at
    /// or after the current makespan. Call before opening a measurement
    /// window.
    pub fn sync_all(&mut self) {
        self.streams.sync_all();
    }

    /// The stream schedule's accounting: serialized vs overlapped modeled
    /// device time, launches, transfers.
    pub fn timeline(&self) -> DeviceTimeline {
        self.streams.timeline()
    }

    /// Total modeled time of all launches since the last reset.
    pub fn total_time_s(&self) -> f64 {
        self.trace.iter().map(|r| r.timing.total_s).sum()
    }

    /// Total DRAM bytes moved (reads + writes + spills) across the trace.
    pub fn total_dram_bytes(&self) -> u64 {
        self.trace
            .iter()
            .map(|r| r.stats.dram_bytes(&self.config) + r.timing.lmem_bytes)
            .sum()
    }

    /// Aggregate achieved DRAM bandwidth utilization (fraction of peak)
    /// over the whole trace.
    pub fn dram_utilization(&self) -> f64 {
        let t = self.total_time_s();
        if t == 0.0 {
            return 0.0;
        }
        self.total_dram_bytes() as f64 / t / self.config.peak_dram_bw
    }

    /// Clear the launch trace (keeps memory contents).
    pub fn reset_trace(&mut self) {
        self.trace.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Copy {
        src: Buf,
        dst: Buf,
    }

    impl WarpKernel for Copy {
        fn phases(&self) -> usize {
            1
        }
        fn run_warp(&self, ctx: &mut WarpCtx<'_>) {
            let lanes = ctx.lanes();
            let addrs: Vec<Option<usize>> = (0..lanes)
                .map(|l| Some(self.src.word(ctx.global_thread(l))))
                .collect();
            let vals = ctx.gmem_load(&addrs);
            let writes: Vec<Option<(usize, u64)>> = (0..lanes)
                .map(|l| Some((self.dst.word(ctx.global_thread(l)), vals[l].unwrap())))
                .collect();
            ctx.gmem_store(&writes);
        }
    }

    #[test]
    fn copy_kernel_moves_data_and_counts_traffic() {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let data: Vec<u64> = (0..1024).collect();
        let src = gpu.gmem.alloc_from(&data);
        let dst = gpu.gmem.alloc(1024);
        let cfg = LaunchConfig::new("copy", 4, 256).regs_per_thread(16);
        let rec = gpu.launch(&Copy { src, dst }, &cfg);
        assert_eq!(gpu.gmem.slice(dst), &data[..]);
        // Fully coalesced: 1024 words * 8 B / 32 B per transaction, each way.
        assert_eq!(rec.stats.dram_read_transactions, 256);
        assert_eq!(rec.stats.dram_write_transactions, 256);
        assert!(rec.timing.total_s > 0.0);
        assert_eq!(gpu.trace.len(), 1);
    }

    #[test]
    fn streams_overlap_small_launches() {
        // Two copy kernels that each fill a fraction of the device: on one
        // stream they serialize; on two streams the makespan shrinks.
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let data: Vec<u64> = (0..1024).collect();
        let (src, dst) = (gpu.gmem.alloc_from(&data), gpu.gmem.alloc(1024));
        let cfg = LaunchConfig::new("copy", 4, 256).regs_per_thread(16);
        let (s1, s2) = (gpu.create_stream(), gpu.create_stream());
        gpu.set_active_stream(s1);
        gpu.launch(&Copy { src, dst }, &cfg);
        gpu.set_active_stream(s2);
        gpu.launch(&Copy { src, dst }, &cfg);
        let t = gpu.timeline();
        assert_eq!(t.launches, 2);
        assert!(
            t.overlapped_s < t.serialized_s * 0.75,
            "expected overlap: {t}"
        );
        // Data still moved correctly (functional model unchanged).
        assert_eq!(gpu.gmem.slice(dst), &data[..]);
    }

    #[test]
    fn utilization_is_bounded() {
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let src = gpu.gmem.alloc_from(&vec![7u64; 1 << 16]);
        let dst = gpu.gmem.alloc(1 << 16);
        let cfg = LaunchConfig::new("copy", 64, 256).regs_per_thread(32);
        gpu.launch(&Copy { src, dst }, &cfg);
        let u = gpu.dram_utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u} out of range");
    }
}
