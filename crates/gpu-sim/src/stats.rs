//! Per-launch statistics: the quantities the paper's profiler reports.

use crate::config::GpuConfig;

/// Host↔device traffic counters, maintained by [`crate::mem::Gmem`].
///
/// The paper's headline wins come from keeping ciphertext data resident in
/// device memory; these counters are what make "resident" *measurable*.
/// Every host-initiated [`crate::mem::Gmem::upload`] /
/// [`crate::mem::Gmem::download`] is charged here (kernel-side traffic is
/// charged to [`KernelStats`] instead), so a pipeline that claims
/// zero steady-state transfers can be gated on
/// `delta.uploads + delta.downloads == 0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Host→device copies (calls).
    pub uploads: u64,
    /// Host→device words moved.
    pub upload_words: u64,
    /// Device→host copies (calls).
    pub downloads: u64,
    /// Device→host words moved.
    pub download_words: u64,
    /// Device-to-device copies (never cross the bus).
    pub d2d_copies: u64,
    /// Buffer allocations served (fresh or recycled).
    pub allocs: u64,
    /// Buffers returned to the free list.
    pub frees: u64,
}

impl TransferStats {
    /// Host↔device transfer count (uploads + downloads) — the quantity the
    /// residency gates assert to be zero in steady state.
    pub fn host_transfers(&self) -> u64 {
        self.uploads + self.downloads
    }

    /// Counter-wise difference `self - earlier` (for steady-state windows).
    pub fn since(&self, earlier: &TransferStats) -> TransferStats {
        TransferStats {
            uploads: self.uploads - earlier.uploads,
            upload_words: self.upload_words - earlier.upload_words,
            downloads: self.downloads - earlier.downloads,
            download_words: self.download_words - earlier.download_words,
            d2d_copies: self.d2d_copies - earlier.d2d_copies,
            allocs: self.allocs - earlier.allocs,
            frees: self.frees - earlier.frees,
        }
    }
}

impl std::fmt::Display for TransferStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "h2d {} ({} w), d2h {} ({} w), d2d {}, alloc {}, free {}",
            self.uploads,
            self.upload_words,
            self.downloads,
            self.download_words,
            self.d2d_copies,
            self.allocs,
            self.frees
        )
    }
}

/// Classes of arithmetic the timing model distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Shoup modular multiplication (2 wide multiplies + correction).
    ShoupMul,
    /// Native `%`-based modular multiplication (the paper's 68-instruction
    /// sequence).
    NativeModMul,
    /// 64-bit modular add/sub with conditional correction.
    ModAddSub,
    /// Complex single-precision butterfly arithmetic (DFT path).
    ComplexMul,
    /// Complex add/sub.
    ComplexAddSub,
    /// Miscellaneous integer/address work.
    Generic,
}

/// Number of [`OpClass`] variants (array-backed counters).
pub const OP_CLASSES: usize = 6;

impl OpClass {
    /// Dense index for counter arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            OpClass::ShoupMul => 0,
            OpClass::NativeModMul => 1,
            OpClass::ModAddSub => 2,
            OpClass::ComplexMul => 3,
            OpClass::ComplexAddSub => 4,
            OpClass::Generic => 5,
        }
    }

    /// All variants, in counter order.
    pub fn all() -> [OpClass; OP_CLASSES] {
        [
            OpClass::ShoupMul,
            OpClass::NativeModMul,
            OpClass::ModAddSub,
            OpClass::ComplexMul,
            OpClass::ComplexAddSub,
            OpClass::Generic,
        ]
    }
}

/// Counters gathered while a kernel executes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// 32-byte DRAM read transactions (coalescing-aware).
    pub dram_read_transactions: u64,
    /// 32-byte DRAM write transactions.
    pub dram_write_transactions: u64,
    /// Maximal runs of consecutive 32-byte segments across warp accesses —
    /// a proxy for DRAM row activations. Scattered accesses (e.g. strided
    /// column loads) create one run per segment; unit-stride warps create
    /// a single run. The timing model charges each run a fixed overhead.
    pub dram_row_activations: u64,
    /// Bytes the kernel actually requested on reads (≤ transactions × 32;
    /// the gap is coalescing waste, the paper's Fig. 6).
    pub useful_read_bytes: u64,
    /// Bytes requested on writes.
    pub useful_write_bytes: u64,
    /// Warp-level accesses served by the read-only (L2/TMEM) path.
    pub l2_read_transactions: u64,
    /// Shared-memory bytes read.
    pub smem_read_bytes: u64,
    /// Shared-memory bytes written.
    pub smem_write_bytes: u64,
    /// Arithmetic counts per [`OpClass`].
    pub ops: [u64; OP_CLASSES],
    /// Block-level barriers executed (summed over blocks).
    pub barriers: u64,
    /// Warp-level instructions issued (loads, stores, op bundles).
    pub warp_instructions: u64,
}

impl KernelStats {
    /// Record `n` operations of a class.
    #[inline]
    pub fn count_op(&mut self, op: OpClass, n: u64) {
        self.ops[op.index()] += n;
    }

    /// Operations of a class.
    #[inline]
    pub fn op(&self, op: OpClass) -> u64 {
        self.ops[op.index()]
    }

    /// DRAM bytes moved (transactions × 32 B), excluding register spills
    /// (which the timing model adds separately).
    pub fn dram_bytes(&self, cfg: &GpuConfig) -> u64 {
        (self.dram_read_transactions + self.dram_write_transactions) * cfg.transaction_bytes as u64
    }

    /// Fraction of read bytes wasted by uncoalesced access
    /// (`0.75` in the paper's Fig. 6(a) example).
    pub fn read_waste(&self, cfg: &GpuConfig) -> f64 {
        let moved = self.dram_read_transactions * cfg.transaction_bytes as u64;
        if moved == 0 {
            return 0.0;
        }
        1.0 - self.useful_read_bytes as f64 / moved as f64
    }

    /// Merge another launch's counters into this one (for multi-kernel
    /// pipelines).
    pub fn merge(&mut self, other: &KernelStats) {
        self.dram_read_transactions += other.dram_read_transactions;
        self.dram_write_transactions += other.dram_write_transactions;
        self.dram_row_activations += other.dram_row_activations;
        self.useful_read_bytes += other.useful_read_bytes;
        self.useful_write_bytes += other.useful_write_bytes;
        self.l2_read_transactions += other.l2_read_transactions;
        self.smem_read_bytes += other.smem_read_bytes;
        self.smem_write_bytes += other.smem_write_bytes;
        for i in 0..OP_CLASSES {
            self.ops[i] += other.ops[i];
        }
        self.barriers += other.barriers;
        self.warp_instructions += other.warp_instructions;
    }
}

impl std::fmt::Display for KernelStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rd {} wr {} txn, l2 {}, smem {}B, shoup {}, native {}, barriers {}",
            self.dram_read_transactions,
            self.dram_write_transactions,
            self.l2_read_transactions,
            self.smem_read_bytes + self.smem_write_bytes,
            self.op(OpClass::ShoupMul),
            self.op(OpClass::NativeModMul),
            self.barriers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_indices_are_dense_and_unique() {
        let mut seen = [false; OP_CLASSES];
        for op in OpClass::all() {
            assert!(!seen[op.index()], "duplicate index");
            seen[op.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dram_bytes_and_waste() {
        let cfg = GpuConfig::titan_v();
        let s = KernelStats {
            dram_read_transactions: 4,
            useful_read_bytes: 32, // 32 of 128 bytes useful: 75% wasted
            ..Default::default()
        };
        assert_eq!(s.dram_bytes(&cfg), 128);
        assert!((s.read_waste(&cfg) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn waste_zero_when_no_reads() {
        let cfg = GpuConfig::titan_v();
        assert_eq!(KernelStats::default().read_waste(&cfg), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = KernelStats::default();
        a.count_op(OpClass::ShoupMul, 10);
        a.barriers = 2;
        let mut b = KernelStats::default();
        b.count_op(OpClass::ShoupMul, 5);
        b.dram_write_transactions = 7;
        a.merge(&b);
        assert_eq!(a.op(OpClass::ShoupMul), 15);
        assert_eq!(a.dram_write_transactions, 7);
        assert_eq!(a.barriers, 2);
    }
}
