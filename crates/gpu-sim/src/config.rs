//! Device configuration.
//!
//! Defaults model the NVIDIA Titan V (Volta GV100) the paper evaluates on
//! (§II, Table I): 80 SMs × 64 cores, 32-thread warps, 256 KB register file
//! and ≤128 KB combined L1/shared memory per SM, 32-byte DRAM transactions.

/// Static parameters of the simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Marketing name, for reports.
    pub name: String,
    /// Streaming multiprocessors.
    pub sm_count: u32,
    /// Scalar cores per SM.
    pub cores_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// 32-bit register-file entries per SM (256 KB = 65536 words).
    pub regfile_words_per_sm: u32,
    /// Hardware cap on 32-bit registers per thread; demand beyond this
    /// spills to local memory (LMEM), which lives in DRAM.
    pub max_regs_per_thread: u32,
    /// Usable shared memory per SM in bytes (96 KB of the 128 KB combined
    /// L1/SMEM on Volta is configurable as scratchpad).
    pub smem_bytes_per_sm: u32,
    /// Maximum shared memory per block in bytes.
    pub max_smem_per_block: u32,
    /// DRAM transaction granularity in bytes (§II: 32 B).
    pub transaction_bytes: u32,
    /// Peak DRAM bandwidth in bytes/second. The paper reports 86.7% of
    /// peak = 564.4 GB/s, giving 651 GB/s peak (HBM2, 3 stacks).
    pub peak_dram_bw: f64,
    /// L2/texture-path bandwidth for read-only cached loads, bytes/second.
    pub l2_bw: f64,
    /// Shared-memory bytes per SM per cycle (128 B/clk on Volta).
    pub smem_bytes_per_cycle_per_sm: u32,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Host↔device (PCIe) bandwidth in bytes/second — the bus the stream
    /// scheduler charges uploads/downloads against.
    pub pcie_bw: f64,
    /// Inter-device link bandwidth in bytes/second — the peer-to-peer
    /// path a sharded multi-device backend charges base-conversion /
    /// all-gather traffic against (key-switch digit decomposition is the
    /// interesting consumer, per HEAAN Demystified). Titan V has no
    /// NVLink bridge, so the default models P2P over the PCIe switch.
    pub link_bw: f64,
    /// Fixed per-message latency of one inter-device transfer, seconds.
    pub link_latency_s: f64,
}

impl GpuConfig {
    /// The paper's evaluation platform: NVIDIA Titan V.
    pub fn titan_v() -> Self {
        Self {
            name: "NVIDIA Titan V (simulated)".to_string(),
            sm_count: 80,
            cores_per_sm: 64,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 32,
            regfile_words_per_sm: 65536,
            max_regs_per_thread: 255,
            smem_bytes_per_sm: 96 * 1024,
            max_smem_per_block: 96 * 1024,
            transaction_bytes: 32,
            peak_dram_bw: 651.0e9,
            l2_bw: 2.1e12,
            smem_bytes_per_cycle_per_sm: 128,
            clock_hz: 1.455e9,
            // Titan V: PCIe 3.0 x16, ~12 GB/s effective.
            pcie_bw: 12.0e9,
            // Device-to-device over the PCIe switch: no host bounce, so
            // a bit faster than host staging, plus switch latency.
            link_bw: 10.0e9,
            link_latency_s: 2.0e-6,
        }
    }

    /// Total scalar cores on the device.
    pub fn total_cores(&self) -> u32 {
        self.sm_count * self.cores_per_sm
    }

    /// Peak scalar-op throughput in ops/second (one op per core per clock).
    pub fn peak_ops_per_s(&self) -> f64 {
        self.total_cores() as f64 * self.clock_hz
    }

    /// Aggregate shared-memory bandwidth in bytes/second.
    pub fn smem_bw(&self) -> f64 {
        self.sm_count as f64 * self.smem_bytes_per_cycle_per_sm as f64 * self.clock_hz
    }

    /// Words (u64) per DRAM transaction.
    pub fn words_per_transaction(&self) -> usize {
        (self.transaction_bytes / 8) as usize
    }

    /// Stable 64-bit digest of every performance-relevant field (FNV-1a).
    ///
    /// Persisted calibration entries (hier A×B splits, pointwise verdicts)
    /// embed this so a result measured under one device model is never
    /// silently adopted after the config changes — a mismatch simply falls
    /// back to re-measurement. The marketing `name` is excluded: renaming
    /// a device does not change its performance.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for v in [
            self.sm_count,
            self.cores_per_sm,
            self.warp_size,
            self.max_threads_per_sm,
            self.max_threads_per_block,
            self.max_blocks_per_sm,
            self.regfile_words_per_sm,
            self.max_regs_per_thread,
            self.smem_bytes_per_sm,
            self.max_smem_per_block,
            self.transaction_bytes,
            self.smem_bytes_per_cycle_per_sm,
        ] {
            mix(&v.to_le_bytes());
        }
        for v in [
            self.peak_dram_bw,
            self.l2_bw,
            self.clock_hz,
            self.pcie_bw,
            self.link_bw,
            self.link_latency_s,
        ] {
            mix(&v.to_bits().to_le_bytes());
        }
        h
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::titan_v()
    }
}

impl std::fmt::Display for GpuConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} SMs x {} cores @ {:.2} GHz, {:.0} GB/s DRAM",
            self.name,
            self.sm_count,
            self.cores_per_sm,
            self.clock_hz / 1e9,
            self.peak_dram_bw / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_v_shape() {
        let c = GpuConfig::titan_v();
        assert_eq!(c.total_cores(), 5120);
        assert_eq!(c.words_per_transaction(), 4);
        // The paper's measured saturation point must be below peak.
        assert!(564.4e9 < c.peak_dram_bw);
        assert!((564.4e9 / c.peak_dram_bw - 0.867).abs() < 0.01);
    }

    #[test]
    fn derived_rates() {
        let c = GpuConfig::titan_v();
        assert!(c.peak_ops_per_s() > 7e12);
        assert!(c.smem_bw() > 1e13);
    }

    #[test]
    fn display_mentions_device() {
        assert!(GpuConfig::titan_v().to_string().contains("Titan V"));
    }

    #[test]
    fn fingerprint_tracks_perf_fields_not_name() {
        let base = GpuConfig::titan_v();
        let mut renamed = base.clone();
        renamed.name = "Titan V (relabeled)".to_string();
        assert_eq!(base.fingerprint(), renamed.fingerprint());

        let mut fewer_sms = base.clone();
        fewer_sms.sm_count = 40;
        assert_ne!(base.fingerprint(), fewer_sms.fingerprint());

        let mut slower_link = base.clone();
        slower_link.link_bw /= 2.0;
        assert_ne!(base.fingerprint(), slower_link.fingerprint());
    }
}
