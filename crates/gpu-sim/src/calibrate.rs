//! Calibration constants for the timing model.
//!
//! Every constant here is pinned to an anchor the paper (or the Volta
//! micro-architecture literature it cites, e.g. Jia et al. 2018) discloses.
//! Nothing else in the simulator is fitted: transaction counts, occupancy,
//! spills and operation mixes all come from first-principles bookkeeping.
//! `EXPERIMENTS.md` records how well each figure reproduces under this
//! single global calibration.

/// Peak fraction of DRAM bandwidth a saturating kernel achieves.
///
/// Anchor: §VI-A — "the evaluated GPU achieves 86.7% of its peak
/// main-memory bandwidth (564.4 GB/s)" once batching saturates it.
pub const MAX_BW_EFF: f64 = 0.867;

/// Occupancy at which DRAM bandwidth saturates; efficiency ramps linearly
/// below it (`eff = MAX_BW_EFF · min(1, occ / OCC_KNEE)`).
///
/// Anchor: the paper's radix-16 NTT (modeled occupancy ≈ 0.25) still
/// saturates bandwidth while radix-32 (occupancy ≈ 0.167) reaches only
/// 59.9% utilization (§VI-B): `0.867 · 0.167/0.25 = 0.58 ≈ 0.599`.
pub const OCC_KNEE: f64 = 0.25;

/// Effective issue-slot cost of one Shoup modular multiplication: two wide
/// 64-bit multiplies (4 × 32-bit ops each on Volta), a wrapping
/// multiply-subtract and a predicated correction, *including* the exposed
/// dependent-chain latency the butterfly cannot hide at NTT occupancies.
///
/// Anchor: together with the DRAM model this places the best SMEM NTT at
/// the paper's ~329 µs for (2^17, 21) and keeps OT's end-to-end gain near
/// the reported 9.3% while its traffic cut is ~25% (Fig. 12(b) vs (c)).
pub const SHOUP_MUL_SLOTS: f64 = 50.0;

/// Effective issue-slot cost of the native `%`-based modular
/// multiplication.
///
/// Anchor: §IV — "a 64b integer modulo a 32b integer is compiled to 68
/// machine instructions" with ~500-cycle latency. The 60-bit prime chain
/// needs the even longer 64÷64-bit sequence (iterative long division on
/// Volta); 7× the Shoup cost reproduces Fig. 1's 2.4× end-to-end gap at
/// (2^17, 45).
pub const NATIVE_MODMUL_SLOTS: f64 = 350.0;

/// Issue-slot cost of a 64-bit modular add or sub (add + compare + select).
pub const MOD_ADDSUB_SLOTS: f64 = 4.0;

/// Issue-slot cost of a complex (2×f32) multiply: 4 FMUL + 2 FADD.
pub const COMPLEX_MUL_SLOTS: f64 = 6.0;

/// Issue-slot cost of a complex add/sub: 2 FADD.
pub const COMPLEX_ADDSUB_SLOTS: f64 = 2.0;

/// Issue-slot cost of bookkeeping counted as `Generic`.
pub const GENERIC_SLOTS: f64 = 1.0;

/// Occupancy needed to hide arithmetic latency completely; below this the
/// compute pipeline derates linearly. Volta needs ~8 warps/SM of slack
/// (8·32/2048 = 0.125).
pub const COMPUTE_HIDE_KNEE: f64 = 0.125;

/// Fixed host-side cost per kernel launch, seconds.
///
/// Anchor: typical measured CUDA launch + driver overhead of ~5 µs; this is
/// what separates the 17-launch radix-2 baseline from fused kernels at
/// small N.
pub const LAUNCH_OVERHEAD_S: f64 = 5.0e-6;

/// Cycles a block-level barrier costs each resident block (pipeline drain
/// and refill around `__syncthreads()`).
///
/// Anchor: reproduces the paper's Fig. 11(a) finding that 2-point
/// per-thread NTTs (8 barriers per 512-point kernel) run ~30% slower than
/// 8-point ones (2 barriers), all other counts being equal.
pub const BARRIER_CYCLES: f64 = 300.0;

/// Equivalent extra DRAM bytes charged per row activation (a maximal run
/// of consecutive 32-byte segments in one warp access).
///
/// Unit-stride warps pay one activation per 256 B (+6%, absorbed in
/// `MAX_BW_EFF`); scattered warps — e.g. Kernel-1's strided column
/// gathers — pay one per 32 B transaction (+50%), modeling HBM2's reduced
/// efficiency on non-streaming 32-byte granules.
pub const ROW_ACTIVATION_BYTES: f64 = 16.0;

/// Each spilled 32-bit register generates this many DRAM round-trip bytes
/// per thread over a kernel (one store + one reload of 4 bytes each).
pub const SPILL_BYTES_PER_REG: f64 = 8.0;

/// Fixed latency per host↔device transfer, seconds (driver + DMA setup).
///
/// Anchor: small `cudaMemcpy` calls bottom out around ~10 µs end to end
/// on PCIe 3.0 regardless of payload; the stream scheduler charges this on
/// top of the bandwidth term so many tiny staging copies stay visibly
/// worse than one batched upload.
pub const PCIE_LATENCY_S: f64 = 10.0e-6;

/// Exponent of the power-mean used to combine memory and compute time.
///
/// Real kernels overlap memory and arithmetic imperfectly;
/// `t = (t_mem^k + t_comp^k)^(1/k)` with `k = 3` approaches `max()` while
/// letting a near-equal secondary bottleneck show through — matching the
/// paper's observation that OT lowers DRAM utilization by more (16.7%)
/// than it lowers time (9.3%).
pub const OVERLAP_NORM: f64 = 3.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix32_utilization_anchor() {
        // eff(occ = 0.167) should land on the paper's 59.9% ± a few points.
        let eff = MAX_BW_EFF * (0.167f64 / OCC_KNEE).min(1.0);
        assert!((eff - 0.599).abs() < 0.03, "eff = {eff}");
    }

    #[test]
    fn saturation_anchor() {
        let eff = MAX_BW_EFF * (0.5f64 / OCC_KNEE).min(1.0);
        assert!((eff - 0.867).abs() < 1e-12);
    }

    #[test]
    fn native_is_much_slower_than_shoup() {
        // Fig. 1's premise: the native path is far more expensive.
        let ratio = std::hint::black_box(NATIVE_MODMUL_SLOTS) / SHOUP_MUL_SLOTS;
        assert!(ratio > 5.0);
    }
}
