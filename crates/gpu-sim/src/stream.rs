//! Streams, events, and the overlapped-execution scheduler.
//!
//! Real CUDA devices execute kernels from *different* streams concurrently
//! whenever SM resources allow, while commands within one stream stay
//! ordered. HEAAN-style bootstrappable workloads (Jung et al., *HEAAN
//! Demystified*) win or lose on exactly this overlap: many small
//! per-ciphertext kernels that individually underfill the device.
//!
//! This module gives the simulator the same vocabulary:
//!
//! * [`Stream`] — an ordered command queue. Every kernel launch and
//!   host↔device transfer is charged to a stream; commands on one stream
//!   execute (in modeled time) back to back, commands on different streams
//!   may overlap.
//! * [`Event`] — a recorded point in a stream's timeline. Another stream
//!   can [`StreamScheduler::wait_event`] on it, which is how cross-stream
//!   data dependencies (producer on stream A, consumer on stream B) are
//!   expressed without serializing everything.
//! * [`StreamScheduler`] — admits kernels from all streams subject to
//!   modeled SM capacity: a launch occupying `w` SMs (derived from the
//!   [`crate::occupancy`] residency analysis) runs concurrently with other
//!   launches as long as the device's SMs are not oversubscribed; a launch
//!   whose full SM demand is not free waits for the earliest point it is
//!   (full-demand-or-wait, like the hardware's block-granular admission).
//!   Transfers contend for a single PCIe bus
//!   ([`crate::config::GpuConfig::pcie_bw`]).
//!
//! The *functional* execution model is unchanged — data still moves in
//! enqueue order under the device lock, so results are bit-identical to
//! the serialized schedule by construction (pinned by `tests/streams.rs`).
//! What streams change is the *performance* model: the scheduler tracks
//! both the serialized cost (the sum of every command's modeled duration —
//! what the old single-launch-lock model reported) and the overlapped
//! makespan, exposed as a [`DeviceTimeline`].
//!
//! # Example
//!
//! ```
//! use gpu_sim::{Gpu, GpuConfig};
//!
//! let mut gpu = Gpu::new(GpuConfig::titan_v());
//! let s1 = gpu.create_stream();
//! let s2 = gpu.create_stream();
//!
//! // Producer work on s1, then an event other streams can wait on.
//! gpu.set_active_stream(s1);
//! let buf = gpu.gmem.alloc(1024);
//! gpu.stream_upload(buf, 0, &vec![7u64; 1024]);
//! let ready = gpu.record_event(s1);
//!
//! // s2 must not start consuming before s1's upload has finished.
//! gpu.wait_event(s2, ready);
//! gpu.set_active_stream(s2);
//! let mut out = vec![0u64; 1024];
//! gpu.stream_download(buf, &mut out);
//! assert_eq!(out[0], 7);
//!
//! let t = gpu.timeline();
//! // The dependent schedule cannot beat the serialized one.
//! assert!(t.overlapped_s <= t.serialized_s + 1e-12);
//! ```

use std::collections::HashMap;

/// Handle to an ordered command queue on the simulated device.
///
/// Obtained from [`crate::Gpu::create_stream`]; [`Stream::DEFAULT`] always
/// exists (all legacy single-stream code runs on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Stream(pub(crate) u64);

impl Stream {
    /// The default stream: always present, used by all launches that never
    /// select a stream explicitly.
    pub const DEFAULT: Stream = Stream(0);

    /// Raw id (diagnostics).
    #[inline]
    pub fn id(&self) -> u64 {
        self.0
    }
}

/// A recorded point in a stream's modeled timeline (a fence another
/// stream can wait on).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Completion time (seconds on the device's virtual clock) of all
    /// work enqueued on the recording stream before the event.
    time_s: f64,
}

impl Event {
    /// An event that is already complete at device time zero (waiting on
    /// it never delays anything).
    pub const DONE: Event = Event { time_s: 0.0 };

    /// The modeled completion time this event fences on.
    #[inline]
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// The later of two events — for coalescing several dependencies into
    /// one fence (e.g. a kernel reading two buffers).
    pub fn max(self, other: Event) -> Event {
        Event {
            time_s: self.time_s.max(other.time_s),
        }
    }
}

/// Start/end of one admitted command in modeled device time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeSpan {
    /// Modeled start time, seconds.
    pub start_s: f64,
    /// Modeled completion time, seconds.
    pub end_s: f64,
}

/// Aggregate modeled-time accounting for everything enqueued since
/// construction (or a [`StreamScheduler::reset`]).
///
/// `serialized_s` is what the pre-stream model charged: every command's
/// duration summed, as if one launch lock serialized the device.
/// `overlapped_s` is the makespan of the stream schedule — the quantity
/// the `figures streams` line and the `bench_guard` overlap gate compare.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceTimeline {
    /// Sum of all command durations (the serialized schedule's cost).
    pub serialized_s: f64,
    /// Makespan: latest completion time across all streams.
    pub overlapped_s: f64,
    /// Kernel launches admitted.
    pub launches: u64,
    /// Host↔device transfers charged.
    pub transfers: u64,
}

impl DeviceTimeline {
    /// Ratio of serialized to overlapped time (> 1 means streams overlap;
    /// 1.0 when nothing ran or everything serialized).
    pub fn overlap(&self) -> f64 {
        if self.overlapped_s <= 0.0 {
            return 1.0;
        }
        self.serialized_s / self.overlapped_s
    }

    /// Counter-wise difference `self - earlier` for measurement windows.
    /// The overlapped component is the makespan *growth*, which is the
    /// window's schedule length provided the window starts from a drained
    /// device (the way the figures/bench harnesses use it).
    pub fn since(&self, earlier: &DeviceTimeline) -> DeviceTimeline {
        DeviceTimeline {
            serialized_s: self.serialized_s - earlier.serialized_s,
            overlapped_s: (self.overlapped_s - earlier.overlapped_s).max(0.0),
            launches: self.launches - earlier.launches,
            transfers: self.transfers - earlier.transfers,
        }
    }
}

impl std::fmt::Display for DeviceTimeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "serialized {:.1} us, overlapped {:.1} us ({:.2}x), {} launches, {} transfers",
            self.serialized_s * 1e6,
            self.overlapped_s * 1e6,
            self.overlap(),
            self.launches,
            self.transfers
        )
    }
}

/// One admitted kernel's SM reservation.
#[derive(Debug, Clone, Copy)]
struct Reservation {
    start_s: f64,
    end_s: f64,
    sms: u32,
}

/// Bound on retained reservations; beyond it the oldest-ending ones are
/// folded into the `floor` watermark (see [`StreamScheduler::gc`]).
const MAX_RESERVATIONS: usize = 512;

/// The stream scheduler: per-stream cursors, the SM reservation table,
/// and the shared PCIe bus cursor.
///
/// All times are on a single virtual device clock starting at zero.
#[derive(Debug)]
pub struct StreamScheduler {
    sm_count: u32,
    pcie_bw: f64,
    /// Per-stream completion time of the last enqueued command.
    cursors: HashMap<u64, f64>,
    /// Admitted kernels still relevant for capacity decisions.
    busy: Vec<Reservation>,
    /// PCIe bus FIFO: completion time of the last transfer.
    bus_free_s: f64,
    /// Times before this watermark are settled: evicted reservations and
    /// newly created streams may not schedule before it.
    floor_s: f64,
    next_stream: u64,
    timeline: DeviceTimeline,
}

impl StreamScheduler {
    /// Scheduler for a device with `sm_count` SMs and `pcie_bw` bytes/s of
    /// host↔device bandwidth.
    pub fn new(sm_count: u32, pcie_bw: f64) -> Self {
        let mut cursors = HashMap::new();
        cursors.insert(Stream::DEFAULT.0, 0.0);
        Self {
            sm_count: sm_count.max(1),
            pcie_bw: pcie_bw.max(1.0),
            cursors,
            busy: Vec::new(),
            bus_free_s: 0.0,
            floor_s: 0.0,
            next_stream: 0,
            timeline: DeviceTimeline::default(),
        }
    }

    /// A new stream. Its timeline starts at the settled-time watermark
    /// (work already completed device-wide cannot be raced by a stream
    /// created afterwards).
    pub fn create_stream(&mut self) -> Stream {
        self.next_stream += 1;
        self.cursors.insert(self.next_stream, self.floor_s);
        Stream(self.next_stream)
    }

    /// Destroy a stream (its already-enqueued work still counts; the
    /// default stream is never destroyed).
    pub fn destroy_stream(&mut self, s: Stream) {
        if s != Stream::DEFAULT {
            self.cursors.remove(&s.0);
        }
    }

    /// Completion time of everything enqueued on `s` so far.
    pub fn cursor(&self, s: Stream) -> f64 {
        self.cursors.get(&s.0).copied().unwrap_or(self.floor_s)
    }

    fn cursor_mut(&mut self, s: Stream) -> &mut f64 {
        let floor = self.floor_s;
        self.cursors.entry(s.0).or_insert(floor)
    }

    /// Record an event on `s`: a fence at the completion of all work
    /// enqueued on `s` so far.
    pub fn record_event(&mut self, s: Stream) -> Event {
        Event {
            time_s: self.cursor(s),
        }
    }

    /// Make `s` wait for `e`: later commands on `s` start no earlier than
    /// the event's completion time. Waits only ever push a cursor forward,
    /// so cross-stream waits cannot deadlock by construction.
    pub fn wait_event(&mut self, s: Stream, e: Event) {
        let c = self.cursor_mut(s);
        *c = c.max(e.time_s);
    }

    /// Minimum free SM capacity over `[from, to)`.
    fn min_free(&self, from: f64, to: f64) -> u32 {
        // Sweep reservation boundaries inside the window.
        let mut points: Vec<f64> = vec![from];
        for r in &self.busy {
            if r.start_s > from && r.start_s < to {
                points.push(r.start_s);
            }
        }
        let mut min_free = u32::MAX;
        for &t in &points {
            let used: u32 = self
                .busy
                .iter()
                .filter(|r| r.start_s <= t && t < r.end_s)
                .map(|r| r.sms)
                .sum();
            min_free = min_free.min(self.sm_count.saturating_sub(used));
        }
        min_free
    }

    /// Admit a kernel of modeled duration `duration_s` demanding
    /// `want_sms` SMs on stream `s`. The kernel starts at the earliest
    /// time ≥ the stream cursor at which its full SM demand is free for
    /// the whole duration (full-demand-or-wait, like the hardware's
    /// block-granular admission), and the stream cursor advances to its
    /// completion.
    ///
    /// Because every command starts no later than the current makespan
    /// (cursors, event fences, and capacity waits all point at completed
    /// work), the makespan grows by at most `duration_s` per command — so
    /// the overlapped schedule can never exceed the serialized one, an
    /// invariant `tests/streams.rs` pins.
    pub fn enqueue_kernel(&mut self, s: Stream, duration_s: f64, want_sms: u32) -> TimeSpan {
        let want = want_sms.clamp(1, self.sm_count);
        let ready = self.cursor(s).max(self.floor_s);
        self.timeline.launches += 1;
        self.timeline.serialized_s += duration_s;
        if duration_s <= 0.0 {
            return TimeSpan {
                start_s: ready,
                end_s: ready,
            };
        }

        // Candidate start times: the stream's ready time plus every
        // reservation boundary after it (free capacity only changes
        // there). The latest reservation end always admits (idle device),
        // so the search cannot fail.
        let mut cands: Vec<f64> = vec![ready];
        for r in &self.busy {
            if r.start_s > ready {
                cands.push(r.start_s);
            }
            if r.end_s > ready {
                cands.push(r.end_s);
            }
        }
        cands.sort_by(f64::total_cmp);
        cands.dedup();

        let start = cands
            .iter()
            .copied()
            .find(|&t| self.min_free(t, t + duration_s) >= want)
            .expect("idle device admits any kernel");
        let end = start + duration_s;
        self.busy.push(Reservation {
            start_s: start,
            end_s: end,
            sms: want,
        });
        *self.cursor_mut(s) = end;
        self.timeline.overlapped_s = self.timeline.overlapped_s.max(end);
        self.gc();
        TimeSpan {
            start_s: start,
            end_s: end,
        }
    }

    /// Charge a host↔device transfer of `words` 64-bit words to stream
    /// `s`. Transfers contend for the single PCIe bus (FIFO) and overlap
    /// with kernels on other streams — the window device-resident keygen
    /// exploits to hide the initial upload behind first encrypts.
    pub fn enqueue_transfer(&mut self, s: Stream, words: usize) -> TimeSpan {
        let duration = words as f64 * 8.0 / self.pcie_bw + crate::calibrate::PCIE_LATENCY_S;
        let start = self.cursor(s).max(self.bus_free_s).max(self.floor_s);
        let end = start + duration;
        self.bus_free_s = end;
        *self.cursor_mut(s) = end;
        self.timeline.transfers += 1;
        self.timeline.serialized_s += duration;
        self.timeline.overlapped_s = self.timeline.overlapped_s.max(end);
        TimeSpan {
            start_s: start,
            end_s: end,
        }
    }

    /// Charge an inter-device (peer-to-peer) transfer of `words` 64-bit
    /// words to stream `s`, over a link of `link_bw` bytes/s with a fixed
    /// `latency_s` per message. Unlike [`StreamScheduler::enqueue_transfer`]
    /// this does not contend for the host PCIe bus — peer traffic rides the
    /// device-to-device path — but it is ordered within the stream like any
    /// other command, so compute waiting on remote rows stalls behind it.
    /// Both endpoints of a sharded copy charge their own scheduler, which
    /// is how an all-gather occupies every participating device.
    pub fn enqueue_link_transfer(
        &mut self,
        s: Stream,
        words: usize,
        link_bw: f64,
        latency_s: f64,
    ) -> TimeSpan {
        let duration = words as f64 * 8.0 / link_bw.max(1.0) + latency_s.max(0.0);
        let start = self.cursor(s).max(self.floor_s);
        let end = start + duration;
        *self.cursor_mut(s) = end;
        self.timeline.transfers += 1;
        self.timeline.serialized_s += duration;
        self.timeline.overlapped_s = self.timeline.overlapped_s.max(end);
        TimeSpan {
            start_s: start,
            end_s: end,
        }
    }

    /// Device-wide barrier (the modeled `cudaDeviceSynchronize`): every
    /// stream's cursor and the bus advance to the current makespan, so
    /// work enqueued afterwards starts no earlier than everything already
    /// admitted. Measurement windows call this first — then the makespan
    /// growth [`DeviceTimeline::since`] reports *is* the window's
    /// schedule length, with no slack for new work to hide under the
    /// previous schedule's tail.
    pub fn sync_all(&mut self) {
        let t = self.timeline.overlapped_s;
        for c in self.cursors.values_mut() {
            *c = c.max(t);
        }
        self.bus_free_s = self.bus_free_s.max(t);
        self.floor_s = self.floor_s.max(t);
        self.busy.retain(|r| r.end_s > t);
    }

    /// Accounting since construction or the last [`StreamScheduler::reset`].
    pub fn timeline(&self) -> DeviceTimeline {
        self.timeline
    }

    /// Drop settled state and restart the virtual clock at zero.
    pub fn reset(&mut self) {
        self.busy.clear();
        self.bus_free_s = 0.0;
        self.floor_s = 0.0;
        for c in self.cursors.values_mut() {
            *c = 0.0;
        }
        self.timeline = DeviceTimeline::default();
    }

    /// Bound the reservation table: reservations that ended before every
    /// stream's cursor can no longer affect admission; beyond the hard cap
    /// the oldest-ending reservations are folded into the settled-time
    /// watermark (new work is simply not scheduled before it).
    fn gc(&mut self) {
        let settled = self
            .cursors
            .values()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min(self.bus_free_s);
        if settled.is_finite() {
            self.busy.retain(|r| r.end_s > settled);
        }
        if self.busy.len() > MAX_RESERVATIONS {
            self.busy.sort_by(|a, b| f64::total_cmp(&a.end_s, &b.end_s));
            let drop_n = self.busy.len() - MAX_RESERVATIONS;
            let new_floor = self.busy[drop_n - 1].end_s;
            self.busy.drain(..drop_n);
            self.floor_s = self.floor_s.max(new_floor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> StreamScheduler {
        StreamScheduler::new(4, 12.0e9)
    }

    #[test]
    fn same_stream_serializes() {
        let mut s = sched();
        let a = s.enqueue_kernel(Stream::DEFAULT, 1.0, 1);
        let b = s.enqueue_kernel(Stream::DEFAULT, 1.0, 1);
        assert_eq!(a.end_s, b.start_s);
        let t = s.timeline();
        assert!((t.serialized_s - 2.0).abs() < 1e-12);
        assert!((t.overlapped_s - 2.0).abs() < 1e-12);
        assert!((t.overlap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_streams_overlap_within_capacity() {
        let mut s = sched();
        let s1 = s.create_stream();
        let s2 = s.create_stream();
        let a = s.enqueue_kernel(s1, 1.0, 2);
        let b = s.enqueue_kernel(s2, 1.0, 2);
        assert_eq!(a.start_s, 0.0);
        assert_eq!(b.start_s, 0.0, "2+2 SMs fit on 4");
        let t = s.timeline();
        assert!((t.overlapped_s - 1.0).abs() < 1e-12);
        assert!((t.overlap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn oversubscription_stretches_or_delays() {
        let mut s = sched();
        let s1 = s.create_stream();
        let s2 = s.create_stream();
        s.enqueue_kernel(s1, 1.0, 4); // fills the device
        let b = s.enqueue_kernel(s2, 1.0, 4);
        assert!(b.start_s >= 1.0, "no capacity before the first finishes");
    }

    #[test]
    fn insufficient_capacity_delays_to_full_demand() {
        let mut s = sched();
        let s1 = s.create_stream();
        let s2 = s.create_stream();
        s.enqueue_kernel(s1, 10.0, 3); // leaves 1 SM free
        let b = s.enqueue_kernel(s2, 1.0, 2);
        // Full-demand-or-wait: 2 SMs are only free once the big kernel
        // ends; a 1-SM kernel would have slotted in at t = 0 instead.
        assert_eq!(b.start_s, 10.0);
        let s3 = s.create_stream();
        let c = s.enqueue_kernel(s3, 1.0, 1);
        assert_eq!(c.start_s, 0.0);
    }

    #[test]
    fn event_orders_across_streams() {
        let mut s = sched();
        let s1 = s.create_stream();
        let s2 = s.create_stream();
        s.enqueue_kernel(s1, 2.0, 1);
        let e = s.record_event(s1);
        assert_eq!(e.time_s(), 2.0);
        s.wait_event(s2, e);
        let b = s.enqueue_kernel(s2, 1.0, 1);
        assert!(b.start_s >= 2.0);
        // A second wait on an earlier event never moves the cursor back.
        s.wait_event(s2, Event::DONE);
        assert_eq!(s.cursor(s2), b.end_s);
    }

    #[test]
    fn transfers_share_one_bus() {
        let mut s = sched();
        let s1 = s.create_stream();
        let s2 = s.create_stream();
        let a = s.enqueue_transfer(s1, 1 << 20);
        let b = s.enqueue_transfer(s2, 1 << 20);
        assert_eq!(b.start_s, a.end_s, "bus is FIFO");
        // A kernel on a third stream overlaps the bus traffic.
        let s3 = s.create_stream();
        let k = s.enqueue_kernel(s3, 1.0, 1);
        assert_eq!(k.start_s, 0.0);
        assert_eq!(s.timeline().transfers, 2);
    }

    #[test]
    fn link_transfers_bypass_the_pcie_bus() {
        let mut s = sched();
        let s1 = s.create_stream();
        let s2 = s.create_stream();
        // Saturate the PCIe bus on s1…
        let host = s.enqueue_transfer(s1, 1 << 20);
        // …a peer-to-peer move on s2 starts immediately regardless.
        let link = s.enqueue_link_transfer(s2, 1 << 20, 10.0e9, 2.0e-6);
        assert_eq!(link.start_s, 0.0, "link path does not queue on PCIe");
        assert!(host.end_s > 0.0);
        // Duration = words*8/bw + latency.
        let expect = (1u64 << 20) as f64 * 8.0 / 10.0e9 + 2.0e-6;
        assert!((link.end_s - link.start_s - expect).abs() < 1e-12);
        // But within one stream the link move is ordered like any command.
        let k = s.enqueue_kernel(s2, 1.0, 1);
        assert!(k.start_s >= link.end_s);
        assert_eq!(s.timeline().transfers, 2);
    }

    #[test]
    fn overlapped_never_exceeds_serialized() {
        let mut s = sched();
        let streams: Vec<Stream> = (0..3).map(|_| s.create_stream()).collect();
        for i in 0..30 {
            let st = streams[i % 3];
            if i % 5 == 0 {
                s.enqueue_transfer(st, 4096);
            } else {
                s.enqueue_kernel(st, 0.1 * (1 + i % 4) as f64, 1 + (i % 4) as u32);
            }
        }
        let t = s.timeline();
        assert!(t.overlapped_s <= t.serialized_s + 1e-9);
        assert!(t.overlap() >= 1.0);
    }

    #[test]
    fn gc_bounds_reservations_and_keeps_monotone_time() {
        let mut s = sched();
        let s1 = s.create_stream();
        for _ in 0..(MAX_RESERVATIONS * 3) {
            s.enqueue_kernel(s1, 1e-6, 1);
        }
        assert!(s.busy.len() <= MAX_RESERVATIONS + 1);
        // A stream created after eviction starts at the watermark, not 0.
        let late = s.create_stream();
        assert!(s.cursor(late) >= 0.0);
        let before = s.timeline().overlapped_s;
        s.enqueue_kernel(late, 1e-6, 1);
        assert!(s.timeline().overlapped_s >= before);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = sched();
        let s1 = s.create_stream();
        s.enqueue_kernel(s1, 1.0, 1);
        s.enqueue_transfer(s1, 1024);
        s.reset();
        assert_eq!(s.timeline(), DeviceTimeline::default());
        assert_eq!(s.cursor(s1), 0.0);
    }

    #[test]
    fn destroyed_streams_are_forgotten() {
        let mut s = sched();
        let s1 = s.create_stream();
        s.enqueue_kernel(s1, 1.0, 1);
        s.destroy_stream(s1);
        s.destroy_stream(Stream::DEFAULT); // no-op
        assert!(s.cursors.contains_key(&Stream::DEFAULT.0));
        assert!(!s.cursors.contains_key(&s1.0));
    }

    #[test]
    fn sync_all_drains_before_a_window() {
        let mut s = sched();
        let s1 = s.create_stream();
        let s2 = s.create_stream();
        s.enqueue_kernel(s1, 1.0, 1); // setup touches only s1
        s.sync_all();
        let t0 = s.timeline();
        // s2 was idle, but after the barrier it cannot start under the
        // setup schedule's tail…
        let k = s.enqueue_kernel(s2, 1.0, 1);
        assert!(k.start_s >= 1.0);
        // …so the window's makespan growth equals its schedule length.
        let d = s.timeline().since(&t0);
        assert!((d.overlapped_s - 1.0).abs() < 1e-12, "window {d:?}");
        // The bus is fenced too.
        let tr = s.enqueue_transfer(s1, 1);
        assert!(tr.start_s >= 1.0);
    }

    #[test]
    fn timeline_since_windows() {
        let mut s = sched();
        let s1 = s.create_stream();
        s.enqueue_kernel(s1, 1.0, 1);
        let t0 = s.timeline();
        s.enqueue_kernel(s1, 2.0, 1);
        let d = s.timeline().since(&t0);
        assert!((d.serialized_s - 2.0).abs() < 1e-12);
        assert!((d.overlapped_s - 2.0).abs() < 1e-12);
        assert_eq!(d.launches, 1);
    }
}
