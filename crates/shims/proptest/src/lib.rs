//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build container has no crates.io access, so this crate provides a
//! minimal deterministic property-testing harness with the same surface the
//! test suites rely on: the [`proptest!`] macro, [`Strategy`] over ranges /
//! tuples / [`Just`] / [`any`] / [`prop_oneof!`] / [`collection::vec`],
//! [`ProptestConfig::with_cases`], and `prop_assert*`.
//!
//! Differences from real proptest, by design: inputs are drawn from a
//! deterministic per-test stream (no persisted failure regressions — cases
//! are reproducible by construction), and there is no shrinking: a failing
//! case reports the case index and panics via `assert!`.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// The deterministic source strategies draw from.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A stream unique to (test name, case index), stable across runs.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case number.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(StdRng::seed_from_u64(
            h ^ (u64::from(case) << 32 | 0x5DEE_CE66),
        ))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn sample<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(&mut self.0)
    }
}

/// A generator of test-case values.
///
/// This is the shim's analogue of proptest's `Strategy`: `generate` draws
/// one value from the deterministic stream (no shrinking).
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.sample(self.clone())
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Strategy for any value of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// The canonical strategy for an unconstrained `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `arms`; panics if empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

/// Erase a strategy's concrete type (used by [`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.sample(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Strategy for vectors with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration: how many cases each property is checked on.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Define property tests: each argument is drawn from its strategy for
/// `cases` iterations and the body must hold on every draw.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        $crate::TestRng::for_case(stringify!($name), __case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __run = || -> () { $body };
                    __run();
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// `assert!` under a name the proptest-style suites expect.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` under a name the proptest-style suites expect.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` under a name the proptest-style suites expect.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($arm),)+])
    };
}

pub mod prelude {
    //! Everything a property-test file needs.
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (1u32..=4, prop_oneof![Just(10u32), Just(20)])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in pair(), c in 0usize..5, d in any::<bool>()) {
            prop_assert!((1..=4).contains(&a));
            prop_assert!(b == 10 || b == 20);
            prop_assert!(c < 5);
            let _ = d;
        }

        #[test]
        fn vec_strategy_respects_len(v in collection::vec(-1.0f64..1.0, 1..8)) {
            prop_assert!((1..8).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = (0u64..100).generate(&mut TestRng::for_case("t", 3));
        let b = (0u64..100).generate(&mut TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }
}
