//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal, deterministic implementation of the `rand` surface the code
//! depends on: [`Rng`] / [`RngExt`] / [`SeedableRng`], [`rngs::StdRng`],
//! `random::<T>()` and `random_range(..)` over integer ranges. The generator
//! is xoshiro256++ seeded through SplitMix64 — the same construction the
//! real `rand_chacha`-backed `StdRng` replaces, and more than adequate for
//! reproducible tests, examples and benchmarks. Not cryptographically
//! secure; `he-lite` documents demo-grade security already.

#![forbid(unsafe_code)]

/// Core random-source trait: everything is derived from `next_u64`.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from all bit patterns (the `Standard`
/// distribution in real `rand`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit: low bits of weak generators are the weakest.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`. Panics on an empty range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Draw uniformly from `[0, span)` without modulo bias (Lemire's method).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = (rng.next_u64() as u128) * (span as u128);
    if (m as u64) < span {
        // 2^64 mod span, computed without u128 division.
        let threshold = span.wrapping_neg() % span;
        while (m as u64) < threshold {
            m = (rng.next_u64() as u128) * (span as u128);
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = f64::sample(rng);
        let v = self.start + unit * (self.end - self.start);
        // Rounding can land exactly on the excluded endpoint when the
        // range magnitude dwarfs its width; keep the half-open contract.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniformly random value of `T` (all bit patterns equally likely).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded via SplitMix64 as its authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: core::array::from_fn(|_| splitmix64(&mut sm)),
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: u64 = r.random_range(0..97);
            assert!(x < 97);
            let y: i64 = r.random_range(-1..=1);
            assert!((-1..=1).contains(&y));
            let f: f64 = r.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn bool_sampling_is_roughly_balanced() {
        let mut r = StdRng::seed_from_u64(4);
        let trues = (0..10_000).filter(|_| r.random::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "{trues}");
    }
}
