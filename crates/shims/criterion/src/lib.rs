//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The build container has no crates.io access, so the benchmark targets
//! link against this minimal harness instead: it supports
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function` / `bench_with_input`, [`Bencher::iter`] and
//! [`Bencher::iter_batched`]. Each benchmark is warmed up once, then run
//! under a small wall-clock budget; the median-free mean ns/iter is printed
//! in a stable one-line format.
//!
//! Set `CRITERION_JSON=<path>` to additionally append one JSON object per
//! benchmark (`{"id": ..., "ns_per_iter": ..., "iters": ...}`) — the
//! repository's `BENCH_seed.json` baseline is recorded this way.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Wall-clock budget for the measurement phase of one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(60);

/// How a batched input's size relates to the measurement loop (accepted for
/// API compatibility; the shim times every batch individually either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many batches per sample.
    SmallInput,
    /// Large inputs: few batches per sample.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Identifier for a parameterized benchmark: rendered as `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-benchmark timing driver handed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Self {
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Time `routine` repeatedly until the measurement budget is spent.
    ///
    /// Calls are timed in geometrically growing batches (one clock-read
    /// pair per batch), so sub-microsecond routines are not swamped by
    /// `Instant::now` overhead.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup (untimed) — populates caches and page-faults buffers.
        std::hint::black_box(routine());
        let start = Instant::now();
        let mut batch = 1u64;
        while start.elapsed() < MEASURE_BUDGET {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            self.total += dt;
            self.iters += batch;
            // Grow until one batch costs ~1 ms, amortizing the clock reads.
            if dt < Duration::from_millis(1) {
                batch = (batch * 2).min(1 << 20);
            }
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    ///
    /// Inputs are pre-generated per batch so each timed section covers many
    /// calls with a single clock-read pair.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        let start = Instant::now();
        let mut batch = 1usize;
        while start.elapsed() < MEASURE_BUDGET {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let n = inputs.len() as u64;
            let t0 = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            let dt = t0.elapsed();
            self.total += dt;
            self.iters += n;
            if dt < Duration::from_millis(1) {
                batch = (batch * 2).min(1 << 16);
            }
        }
    }

    fn ns_per_iter(&self) -> f64 {
        if self.iters == 0 {
            return f64::NAN;
        }
        self.total.as_nanos() as f64 / self.iters as f64
    }
}

fn report(id: &str, b: &Bencher) {
    let ns = b.ns_per_iter();
    println!("bench: {id:<48} {ns:>14.1} ns/iter ({} iters)", b.iters);
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(
                f,
                "{{\"id\": \"{id}\", \"ns_per_iter\": {ns:.1}, \"iters\": {}}}",
                b.iters
            );
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's budget is wall-clock based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Run one benchmark that borrows a shared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// End the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// The top-level benchmark driver (shim of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher::new();
        f(&mut b);
        report(&id.to_string(), &b);
    }
}

/// Prevent the optimizer from deleting a value (re-export convenience).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new();
        b.iter(|| std::hint::black_box(1u64 + 2));
        assert!(b.iters > 0);
        assert!(b.ns_per_iter() > 0.0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new();
        b.iter_batched(
            || vec![1u64; 16],
            |v| v.iter().sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.iters > 0);
    }

    #[test]
    fn benchmark_id_renders_name_slash_param() {
        assert_eq!(BenchmarkId::new("ct", 10).to_string(), "ct/10");
    }
}
