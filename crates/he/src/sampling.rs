//! Randomness for keys, encryption and errors.
//!
//! All sampling is routed through a caller-provided RNG so tests and
//! examples are reproducible with seeded generators.

use ntt_core::poly::{Representation, RnsPoly, RnsRing};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// A seeded deterministic RNG for reproducible examples and tests.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform polynomial over the full RNS basis (independent residues).
pub fn uniform_poly<R: Rng + RngExt>(ring: &RnsRing, rng: &mut R) -> RnsPoly {
    let mut p = RnsPoly::zero(ring);
    for i in 0..ring.np() {
        let modulus = ring.basis().primes()[i];
        for v in p.row_mut(i) {
            *v = rng.random_range(0..modulus);
        }
    }
    p
}

/// Uniform polynomial sampled **directly in evaluation form**, at
/// `level` active limbs.
///
/// The NTT is a bijection on each residue row, so a uniform draw in the
/// evaluation domain has exactly the distribution of
/// `uniform_poly` followed by a forward transform. Key generation uses
/// this for the `a` halves of key-switch material: it skips both the
/// full-basis oversampling and the forward NTT per entry — the dominant
/// keygen cost at bootstrapping-scale rings (N = 2¹⁶, ~20 levels),
/// where the per-level entry grid otherwise pays `Θ(levels²·digits)`
/// large transforms.
pub fn uniform_eval_poly<R: Rng + RngExt>(ring: &RnsRing, level: usize, rng: &mut R) -> RnsPoly {
    let mut p = RnsPoly::zero_with_repr(ring, level, Representation::Evaluation);
    for i in 0..level {
        let modulus = ring.basis().primes()[i];
        for v in p.row_mut(i) {
            *v = rng.random_range(0..modulus);
        }
    }
    p
}

/// Ternary polynomial with i.i.d. coefficients in `{-1, 0, 1}`.
pub fn ternary_poly<R: Rng + RngExt>(ring: &RnsRing, rng: &mut R) -> RnsPoly {
    let n = ring.degree();
    let coeffs: Vec<i64> = (0..n).map(|_| rng.random_range(-1..=1)).collect();
    RnsPoly::from_i64_coeffs(ring, &coeffs)
}

/// Small error polynomial from a centered binomial distribution of width
/// `eta` (variance `eta / 2`), the standard lattice-crypto error shape.
pub fn error_poly<R: Rng + RngExt>(ring: &RnsRing, eta: u32, rng: &mut R) -> RnsPoly {
    let n = ring.degree();
    let coeffs: Vec<i64> = (0..n)
        .map(|_| {
            let mut s = 0i64;
            for _ in 0..eta {
                s += i64::from(rng.random::<bool>());
                s -= i64::from(rng.random::<bool>());
            }
            s
        })
        .collect();
    RnsPoly::from_i64_coeffs(ring, &coeffs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> RnsRing {
        RnsRing::new(64, ntt_math::ntt_primes(40, 128, 3)).unwrap()
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let r = ring();
        let a = uniform_poly(&r, &mut seeded_rng(1));
        let b = uniform_poly(&r, &mut seeded_rng(1));
        let c = uniform_poly(&r, &mut seeded_rng(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ternary_coefficients_in_range() {
        let r = ring();
        let t = ternary_poly(&r, &mut seeded_rng(3));
        for i in 0..r.degree() {
            let v = t.coefficient_centered(&r, i).unwrap();
            assert!((-1..=1).contains(&v), "coefficient {v}");
        }
    }

    #[test]
    fn error_is_small_and_centered() {
        let r = ring();
        let eta = 6;
        let e = error_poly(&r, eta, &mut seeded_rng(4));
        let mut sum = 0i128;
        for i in 0..r.degree() {
            let v = e.coefficient_centered(&r, i).unwrap();
            assert!(v.unsigned_abs() <= eta as u128, "error {v} too large");
            sum += v;
        }
        // Mean should be near zero (loose bound for 64 samples).
        assert!(sum.abs() < 64);
    }

    #[test]
    fn uniform_residues_differ_across_primes() {
        let r = ring();
        let u = uniform_poly(&r, &mut seeded_rng(5));
        assert_ne!(u.row(0), u.row(1));
    }
}
