//! The HE context: ring, gadget constants, and every scheme operation.
//!
//! Every operation that touches the NTT — encryption, key generation,
//! multiplication, relinearization, rescaling — runs through a
//! backend-generic [`Evaluator`], so the execution substrate (the fused
//! CPU engine, the simulated GPU warp kernels, …) is a one-line
//! constructor choice: [`HeContext::new`] picks the CPU backend,
//! [`HeContext::with_backend`] accepts any
//! [`ntt_core::backend::NttBackend`].
//!
//! Three properties of the execution model matter for throughput:
//!
//! * **Evaluator pool** — concurrent scheme operations on one shared
//!   context no longer serialize on a single evaluator lock: each
//!   operation checks an evaluator out of a pool (forking a new one from
//!   the backend when the pool runs dry), so `k` threads driving one
//!   context run on `k` evaluators sharing one [`ntt_core::RingPlan`]
//!   and one device memory.
//! * **Per-evaluator streams** — each pool member's backend fork owns a
//!   device stream, so on `SimBackend` the *modeled device time* of
//!   independent operations overlaps too (subject to SM occupancy; see
//!   `gpu_sim::stream`), not just the host-side work. Cross-evaluator
//!   data dependencies are fenced by per-buffer events, so any pool
//!   scheduling stays timing-consistent.
//! * **Device residency** — on backends with a real host↔device boundary
//!   ([`ntt_core::backend::NttBackend::prefers_residency`], e.g. the
//!   simulated GPU), key material and ciphertexts are uploaded once and
//!   every subsequent operation — including relinearization's digit
//!   decomposition and rescaling — runs on the device. After the initial
//!   upload, an encrypt → multiply → relinearize → rescale chain performs
//!   **zero** host↔device transfers (asserted by `tests/residency.rs`
//!   and gated in CI); data comes back only at explicit sync points
//!   (decrypt/decode, [`Ciphertext::sync`]).

use crate::ciphertext::{Ciphertext, Plaintext};
use crate::keys::{KeySet, PublicKey, RelinEntry, RelinKeys, RotationKeys, SecretKey};
use crate::params::HeLiteParams;
use crate::sampling;
use ntt_core::backend::{
    BackendError, CpuBackend, Evaluator, FaultClass, NttBackend, TransferStats,
};
use ntt_core::poly::{Representation, RingError, RnsPoly, RnsRing};
use rand::{Rng, RngExt};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Errors from context construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeError {
    /// The underlying ring could not be built.
    Ring(RingError),
}

impl std::fmt::Display for HeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeError::Ring(e) => write!(f, "ring construction: {e}"),
        }
    }
}

impl std::error::Error for HeError {}

impl From<RingError> for HeError {
    fn from(e: RingError) -> Self {
        HeError::Ring(e)
    }
}

/// One pooled execution state: an evaluator plus reusable scratch for the
/// host key-switch digit packing (each pool member owns its scratch, so
/// no extra synchronization).
#[derive(Debug)]
struct EvalState {
    ev: Evaluator,
    /// Grow-only buffer-of-digits scratch — steady-state key switches
    /// reuse it instead of allocating `level² · digits · N` words per
    /// call (mirrors the executor workspace discipline).
    ks_scratch: Vec<u64>,
}

/// The evaluator pool: idle evaluators plus the prototype backend new
/// members are forked from. Checkout holds the `idle` lock only for a
/// pop/push, so concurrent scheme operations overlap; forks share the
/// prototype's device memory and the ring's one cached plan.
struct EvalPool {
    /// Fork source (also answers identity queries: name, memory). Locked
    /// only briefly, never across an operation.
    proto: Mutex<Box<dyn NttBackend>>,
    idle: Mutex<Vec<EvalState>>,
    /// Evaluators ever created (pool high-water mark).
    created: AtomicUsize,
    /// Pool members dropped after a non-transient fault (each one is
    /// replaced by a fresh fork, so capacity survives the fault).
    quarantined: AtomicUsize,
}

impl std::fmt::Debug for EvalPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalPool")
            .field("created", &self.created.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Lock helper: the pool holds plain state, so poisoning is recovered
/// rather than cascaded.
fn lock<T: ?Sized>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The scheme context: parameters, the RNS ring, the precomputed
/// CRT-gadget residues `[g_j^{(level)}]_{p_i}` used by relinearization,
/// and a pool of backend-generic [`Evaluator`]s executing every NTT
/// workload.
#[derive(Debug)]
pub struct HeContext {
    params: HeLiteParams,
    ring: RnsRing,
    /// `gadget[level - 1][j][i] = [ (Q_l/p_j) · ((Q_l/p_j)^{-1} mod p_j) ]_{p_i}`.
    gadget: Vec<Vec<Vec<u64>>>,
    /// The evaluator pool (see [`EvalPool`]); scheme operations stay
    /// `&self` and scale across threads instead of serializing on one
    /// evaluator mutex.
    pool: EvalPool,
    /// Keep key material and ciphertexts device-resident (decided once
    /// from the backend's preference).
    resident: bool,
}

impl HeContext {
    /// Build a context on the default CPU backend (generates the
    /// NTT-friendly prime chain and all tables).
    ///
    /// # Errors
    ///
    /// Propagates ring-construction failures.
    ///
    /// # Panics
    ///
    /// Panics if `params` are internally inconsistent (see
    /// [`HeLiteParams::validate`]).
    pub fn new(params: HeLiteParams) -> Result<Self, HeError> {
        Self::with_backend(params, Box::new(CpuBackend::from_env()))
    }

    /// Build a context on an explicit execution backend — the one-line
    /// substrate swap: pass `Box::new(ntt_gpu::SimBackend::titan_v())` to
    /// run every scheme operation through the simulated GPU kernels.
    ///
    /// # Errors
    ///
    /// Propagates ring-construction failures.
    ///
    /// # Panics
    ///
    /// Panics if `params` are internally inconsistent (see
    /// [`HeLiteParams::validate`]).
    pub fn with_backend(
        params: HeLiteParams,
        backend: Box<dyn NttBackend>,
    ) -> Result<Self, HeError> {
        params.validate();
        let primes = ntt_math::ntt_primes(params.prime_bits, 2 * params.n() as u64, params.levels);
        let ring = RnsRing::new(params.n(), primes.clone())?;
        // Gadget residues per level.
        let mut gadget = Vec::with_capacity(params.levels);
        for level in 1..=params.levels {
            let active = &primes[..level];
            let mut per_j = Vec::with_capacity(level);
            for j in 0..level {
                // M_j = prod of active primes except p_j.
                let m_j = ntt_math::BigUint::product(
                    &active
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != j)
                        .map(|(_, &p)| p)
                        .collect::<Vec<_>>(),
                );
                let m_j_mod_pj = &m_j % active[j];
                let y_j = ntt_math::inv_mod(m_j_mod_pj, active[j]).expect("coprime");
                let residues: Vec<u64> = active
                    .iter()
                    .map(|&p| ntt_math::mul_mod(&m_j % p, y_j % p, p))
                    .collect();
                per_j.push(residues);
            }
            gadget.push(per_j);
        }
        let resident = backend.prefers_residency();
        let pool = EvalPool {
            proto: Mutex::new(backend),
            idle: Mutex::new(Vec::new()),
            created: AtomicUsize::new(0),
            quarantined: AtomicUsize::new(0),
        };
        Ok(Self {
            params,
            ring,
            gadget,
            pool,
            resident,
        })
    }

    /// Fork a fresh pool member from the prototype backend (shares device
    /// memory and the memoized ring plan).
    fn new_state(&self) -> EvalState {
        let backend = lock(&self.pool.proto).fork();
        self.pool.created.fetch_add(1, Ordering::Relaxed);
        EvalState {
            ev: Evaluator::with_backend(&self.ring, backend),
            ks_scratch: Vec::new(),
        }
    }

    /// Run `f` on a pooled execution state: pop an idle evaluator (or
    /// fork a new one), run, push it back. Locks are held only around the
    /// pop/push, so concurrent operations — and *nested* checkouts from
    /// the same thread — proceed instead of deadlocking on one evaluator
    /// mutex. A panic inside `f` drops that pool member (the pool shrinks
    /// by one; state cannot be corrupted).
    fn with_eval<R>(&self, f: impl FnOnce(&mut EvalState) -> R) -> R {
        let mut st = lock(&self.pool.idle)
            .pop()
            .unwrap_or_else(|| self.new_state());
        let r = f(&mut st);
        lock(&self.pool.idle).push(st);
        r
    }

    /// Run `f` with an evaluator checked out of the context's pool — the
    /// escape hatch for custom polynomial-level operations on the
    /// context's backend. Reentrant: calling scheme operations (or this
    /// method) from inside `f` checks out *another* evaluator instead of
    /// deadlocking.
    ///
    /// ```
    /// use he_lite::{HeContext, HeLiteParams};
    /// let ctx = HeContext::new(HeLiteParams {
    ///     log_n: 5, prime_bits: 50, levels: 2, scale_bits: 40,
    ///     gadget_bits: 10, error_eta: 4,
    /// })?;
    /// let deg = ctx.with_pooled_evaluator(|ev| ev.plan().degree());
    /// assert_eq!(deg, 32);
    /// # Ok::<(), he_lite::HeError>(())
    /// ```
    pub fn with_pooled_evaluator<R>(&self, f: impl FnOnce(&mut Evaluator) -> R) -> R {
        self.with_eval(|st| f(&mut st.ev))
    }

    /// Fallible [`HeContext::with_pooled_evaluator`] with pool health
    /// tracking: run `f` on a pooled evaluator and return its result.
    ///
    /// A healthy outcome — `Ok`, or an `Err` whose class leaves the
    /// executor usable ([transient](BackendError::is_transient) faults
    /// and deadline expiries) — returns the member to the pool. A
    /// fatal/OOM fault **quarantines** the member: it is dropped (its
    /// stream and device scratch are released) and a fresh fork of the
    /// prototype takes its place in the idle set, so pool capacity is
    /// unchanged and no later checkout inherits a wedged executor. The
    /// quarantine count is visible via
    /// [`HeContext::quarantined_count`].
    pub fn try_with_pooled_evaluator<R>(
        &self,
        f: impl FnOnce(&mut Evaluator) -> Result<R, BackendError>,
    ) -> Result<R, BackendError> {
        self.try_with_state(|st| f(&mut st.ev))
    }

    /// [`HeContext::try_with_pooled_evaluator`] over the full pool state
    /// (evaluator + key-switch scratch) — the internal shape fallible
    /// scheme operations like [`HeContext::try_rotate`] run on.
    fn try_with_state<R>(
        &self,
        f: impl FnOnce(&mut EvalState) -> Result<R, BackendError>,
    ) -> Result<R, BackendError> {
        let mut st = lock(&self.pool.idle)
            .pop()
            .unwrap_or_else(|| self.new_state());
        let r = f(&mut st);
        match &r {
            Err(e) if !e.is_transient() && e.class() != FaultClass::Deadline => {
                drop(st);
                self.pool.quarantined.fetch_add(1, Ordering::Relaxed);
                let fresh = self.new_state();
                lock(&self.pool.idle).push(fresh);
            }
            _ => lock(&self.pool.idle).push(st),
        }
        r
    }

    /// Evaluators created so far (the pool's high-water mark — grows with
    /// the maximum number of overlapping operations, plus one per
    /// quarantine replacement).
    pub fn evaluator_count(&self) -> usize {
        self.pool.created.load(Ordering::Relaxed)
    }

    /// Pool members quarantined (dropped and re-forked) after a
    /// non-transient fault — see
    /// [`HeContext::try_with_pooled_evaluator`].
    pub fn quarantined_count(&self) -> usize {
        self.pool.quarantined.load(Ordering::Relaxed)
    }

    /// Whether this context keeps polynomials device-resident.
    pub fn is_resident(&self) -> bool {
        self.resident
    }

    /// The backend's host↔device transfer ledger (shared by every pooled
    /// evaluator). The residency gates are written against this: reset,
    /// run a steady-state window, assert `host_transfers() == 0`.
    pub fn transfer_stats(&self) -> TransferStats {
        let mem = lock(&self.pool.proto).memory();
        let stats = mem
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .stats();
        stats
    }

    /// The label of the execution backend in use.
    pub fn backend_name(&self) -> &'static str {
        lock(&self.pool.proto).name()
    }

    /// The parameters.
    pub fn params(&self) -> &HeLiteParams {
        &self.params
    }

    /// The underlying RNS ring (exposes the NTT machinery).
    pub fn ring(&self) -> &RnsRing {
        &self.ring
    }

    /// Generate a full key set. Key material is computed host-side, then
    /// — on residency-preferring backends — uploaded once so that every
    /// later operation finds it on the device (part of a chain's "initial
    /// upload").
    ///
    /// The uploads are enqueued on the keygen evaluator's own stream (a
    /// *setup stream* in the backend's overlapped-time model): on
    /// `SimBackend`, concurrent encrypts running on other pool members'
    /// streams overlap the key upload instead of waiting behind it — the
    /// modeled window that shrinks a chain's initial-upload cost.
    pub fn keygen<R: Rng + RngExt>(&self, rng: &mut R) -> KeySet {
        let mut keys = self.with_eval(|st| self.keygen_host(&mut st.ev, rng));
        self.upload_keys(&mut keys);
        keys
    }

    /// The residency half of [`HeContext::keygen`]: upload key material
    /// once on residency-preferring backends (no-op elsewhere).
    fn upload_keys(&self, keys: &mut KeySet) {
        if self.resident {
            self.with_eval(|st| {
                let ev = &mut st.ev;
                ev.make_resident(&mut keys.secret.s_eval);
                ev.make_resident(&mut keys.public.b);
                ev.make_resident(&mut keys.public.a);
                for per_level in &mut keys.relin.entries {
                    for per_j in per_level {
                        for entry in per_j {
                            ev.make_resident(&mut entry.b);
                            ev.make_resident(&mut entry.a);
                        }
                    }
                }
            });
        }
    }

    /// Adopt a key set generated on another context with the **same
    /// parameters**: clone the host-side key material and — on
    /// residency-preferring backends — perform the one-time device
    /// upload.
    ///
    /// Key math in [`HeContext::keygen`] is host-only and therefore
    /// backend-independent (identical bits on every substrate), so a
    /// cross-backend comparison can pay the `Θ(levels² · digits)` host
    /// generation once and adopt the result everywhere — at
    /// bootstrapping-scale rings (N = 2¹⁶, ~20 levels) that generation
    /// is minutes of host NTTs and ~14 GB of key material per run.
    pub fn adopt_keys(&self, keys: &KeySet) -> KeySet {
        let mut keys = keys.clone();
        self.upload_keys(&mut keys);
        keys
    }

    /// Adopt rotation keys generated on another context with the same
    /// parameters — the [`HeContext::adopt_keys`] counterpart for
    /// [`HeContext::keygen_rotation`] output.
    pub fn adopt_rotation_keys(&self, rtk: &RotationKeys) -> RotationKeys {
        let mut rtk = rtk.clone();
        if self.resident {
            self.with_eval(|st| {
                let ev = &mut st.ev;
                for per_level in rtk.by_g.values_mut() {
                    for per_j in per_level.values_mut() {
                        for per_d in per_j {
                            for entry in per_d {
                                ev.make_resident(&mut entry.b);
                                ev.make_resident(&mut entry.a);
                            }
                        }
                    }
                }
            });
        }
        rtk
    }

    /// The host-side key computation (all polynomials [`RnsPoly`]
    /// host-only, so every evaluator call takes the host path — identical
    /// bits on every backend).
    fn keygen_host<R: Rng + RngExt>(&self, ev: &mut Evaluator, rng: &mut R) -> KeySet {
        let ring = &self.ring;
        let eta = self.params.error_eta;
        // Secret.
        let mut s = sampling::ternary_poly(ring, rng);
        // Public key: b = -(a s) + e.
        let mut a = sampling::uniform_poly(ring, rng);
        let mut e = sampling::error_poly(ring, eta, rng);
        ev.forward_polys(&mut [&mut s, &mut a, &mut e]);
        let mut b = a.clone();
        ev.mul_pointwise(&mut b, &s);
        b.negate(ring);
        b.add_assign(&e, ring);

        // s^2 for relinearization.
        let mut s2 = s.clone();
        ev.mul_pointwise(&mut s2, &s);

        // Relin keys per level.
        let digits = self.params.gadget_digits();
        let w = self.params.gadget_bits;
        let mut entries = Vec::with_capacity(self.params.levels);
        for level in 1..=self.params.levels {
            let s_l = s.truncated(level);
            let s2_l = s2.truncated(level);
            let mut per_j = Vec::with_capacity(level);
            for j in 0..level {
                let mut per_d = Vec::with_capacity(digits);
                for d in 0..digits {
                    // g_{j,d} = B^d * g_j, as per-prime residues.
                    let residues: Vec<u64> = self.gadget[level - 1][j]
                        .iter()
                        .zip(&ring.basis().primes()[..level])
                        .map(|(&g, &p)| {
                            let b_pow = ntt_math::pow_mod(2, u64::from(w) * d as u64, p);
                            ntt_math::mul_mod(g % p, b_pow, p)
                        })
                        .collect();
                    // `a` drawn directly in evaluation form (uniform is
                    // uniform in either domain) — halves keygen NTTs.
                    let a_jd = sampling::uniform_eval_poly(ring, level, rng);
                    let mut e_jd = sampling::error_poly(ring, eta, rng).truncated(level);
                    ev.to_evaluation(&mut e_jd);
                    // b = -(a s) + e + g_{j,d} s^2.
                    let mut b_jd = a_jd.clone();
                    ev.mul_pointwise(&mut b_jd, &s_l);
                    b_jd.negate(ring);
                    b_jd.add_assign(&e_jd, ring);
                    let mut gs2 = s2_l.clone();
                    gs2.mul_scalar_residues(&residues, ring);
                    b_jd.add_assign(&gs2, ring);
                    per_d.push(RelinEntry { b: b_jd, a: a_jd });
                }
                per_j.push(per_d);
            }
            entries.push(per_j);
        }

        KeySet {
            secret: SecretKey { s_eval: s },
            public: PublicKey { b, a },
            relin: RelinKeys { entries },
        }
    }

    /// Generate rotation (Galois) keys for the elements `gs` at the
    /// requested `levels` — sparse on both axes, since a bootstrap
    /// pipeline only rotates at a couple of known levels. Each entry
    /// encrypts `B^d · g_j · τ_g(s)` under `s` with the same hoisting-
    /// friendly digit layout as relinearization, so
    /// [`HeContext::rotate`] reuses the key-switch machinery (including
    /// the device-resident fast path) unchanged.
    ///
    /// Like [`HeContext::keygen`], key material is computed host-side
    /// (identical bits on every backend) and then uploaded once on
    /// residency-preferring backends: rotation keys never cross the bus
    /// again, which is what makes repeated `bootstrap()` calls
    /// transfer-free in steady state.
    ///
    /// # Panics
    ///
    /// Panics if a `g` is even or a level is out of range.
    pub fn keygen_rotation<R: Rng + RngExt>(
        &self,
        sk: &SecretKey,
        gs: &[u64],
        levels: &[usize],
        rng: &mut R,
    ) -> RotationKeys {
        let two_n = 2 * self.params.n() as u64;
        let full = self.params.levels;
        let mut keys = self.with_eval(|st| {
            let ev = &mut st.ev;
            let ring = &self.ring;
            let eta = self.params.error_eta;
            let digits = self.params.gadget_digits();
            let w = self.params.gadget_bits;
            // Host-only copy of the secret (the device-resident original
            // stays untouched); all key math below runs host-side.
            let s = sk.s_eval.truncated(full);
            let mut by_g = std::collections::BTreeMap::new();
            for &g_raw in gs {
                let g = g_raw % two_n;
                assert_eq!(g % 2, 1, "Galois element must be odd");
                let mut s_g = s.clone();
                ev.to_coefficient(&mut s_g);
                ev.automorphism(&mut s_g, g);
                ev.to_evaluation(&mut s_g);
                let mut per_level = std::collections::BTreeMap::new();
                for &level in levels {
                    assert!(level >= 1 && level <= full, "level out of range");
                    let s_l = s.truncated(level);
                    let sg_l = s_g.truncated(level);
                    let mut per_j = Vec::with_capacity(level);
                    for j in 0..level {
                        let mut per_d = Vec::with_capacity(digits);
                        for d in 0..digits {
                            let residues: Vec<u64> = self.gadget[level - 1][j]
                                .iter()
                                .zip(&ring.basis().primes()[..level])
                                .map(|(&gc, &p)| {
                                    let b_pow = ntt_math::pow_mod(2, u64::from(w) * d as u64, p);
                                    ntt_math::mul_mod(gc % p, b_pow, p)
                                })
                                .collect();
                            let a_jd = sampling::uniform_eval_poly(ring, level, rng);
                            let mut e_jd = sampling::error_poly(ring, eta, rng).truncated(level);
                            ev.to_evaluation(&mut e_jd);
                            // b = -(a s) + e + g_{j,d} τ_g(s).
                            let mut b_jd = a_jd.clone();
                            ev.mul_pointwise(&mut b_jd, &s_l);
                            b_jd.negate(ring);
                            b_jd.add_assign(&e_jd, ring);
                            let mut gsg = sg_l.clone();
                            gsg.mul_scalar_residues(&residues, ring);
                            b_jd.add_assign(&gsg, ring);
                            per_d.push(RelinEntry { b: b_jd, a: a_jd });
                        }
                        per_j.push(per_d);
                    }
                    per_level.insert(level, per_j);
                }
                by_g.insert(g, per_level);
            }
            RotationKeys { by_g }
        });
        if self.resident {
            self.with_eval(|st| {
                let ev = &mut st.ev;
                for per_level in keys.by_g.values_mut() {
                    for per_j in per_level.values_mut() {
                        for per_d in per_j {
                            for entry in per_d {
                                ev.make_resident(&mut entry.b);
                                ev.make_resident(&mut entry.a);
                            }
                        }
                    }
                }
            });
        }
        keys
    }

    /// Apply the Galois automorphism `X → X^g` homomorphically: both
    /// components are permuted, then the `c1` half is key-switched from
    /// `τ_g(s)` back to `s` with the `(g, level)` rotation key. Scale and
    /// level are unchanged; on the canonical embedding this rotates the
    /// slot vector (and `g = 2N − 1` conjugates it).
    ///
    /// # Panics
    ///
    /// Panics if no rotation key was generated for `(g, level)`.
    pub fn rotate(&self, ct: &Ciphertext, g: u64, rtk: &RotationKeys) -> Ciphertext {
        let level = ct.level();
        let g = g % (2 * self.params.n() as u64);
        let entries = rtk
            .entries_for(g, level)
            .unwrap_or_else(|| panic!("no rotation key for (g={g}, level={level})"));
        self.with_eval(|st| {
            let mut c0 = ct.c0.clone();
            let mut c1 = ct.c1.clone();
            st.ev.to_coefficient(&mut c0);
            st.ev.to_coefficient(&mut c1);
            st.ev.automorphism(&mut c0, g);
            st.ev.automorphism(&mut c1, g);
            // key_switch_with takes its input in coefficient form (its
            // internal inverse transform is a no-op here).
            let (r0, r1) = self.key_switch_with(st, &c1, entries, level);
            st.ev.to_evaluation(&mut c0);
            st.ev.add_assign(&mut c0, &r0);
            Ciphertext {
                c0,
                c1: r1,
                scale: ct.scale,
            }
        })
    }

    /// Fallible [`HeContext::rotate`] with PR 7's typed-error contract:
    /// the fault-gated transform/automorphism steps run through `try_*`
    /// variants, errors classify into transient/fatal/OOM, and a
    /// non-transient fault quarantines the pool member (rotation keys are
    /// context-owned, so they survive quarantine + re-fork untouched).
    ///
    /// # Errors
    ///
    /// Any [`BackendError`] from the underlying evaluator ops.
    pub fn try_rotate(
        &self,
        ct: &Ciphertext,
        g: u64,
        rtk: &RotationKeys,
    ) -> Result<Ciphertext, BackendError> {
        let level = ct.level();
        let g = g % (2 * self.params.n() as u64);
        let entries = rtk
            .entries_for(g, level)
            .unwrap_or_else(|| panic!("no rotation key for (g={g}, level={level})"));
        self.try_with_state(|st| {
            let mut c0 = ct.c0.clone();
            let mut c1 = ct.c1.clone();
            st.ev.try_to_coefficient(&mut c0)?;
            st.ev.try_to_coefficient(&mut c1)?;
            st.ev.try_automorphism(&mut c0, g)?;
            st.ev.try_automorphism(&mut c1, g)?;
            let (r0, r1) = self.key_switch_with(st, &c1, entries, level);
            st.ev.try_to_evaluation(&mut c0)?;
            st.ev.add_assign(&mut c0, &r0);
            Ok(Ciphertext {
                c0,
                c1: r1,
                scale: ct.scale,
            })
        })
    }

    /// Mod-raise: re-embed a level-1 ciphertext into the first `to_level`
    /// primes by a centered lift mod `p₀` — the bootstrapping entry
    /// point. The plaintext underneath becomes `m + q₀·I` for a small
    /// integer polynomial `I`; the subsequent homomorphic mod-reduction
    /// (`EvalMod`) removes the `q₀·I` term. Scale is unchanged.
    ///
    /// # Panics
    ///
    /// Panics unless the ciphertext is at level 1 and `to_level` is in
    /// range.
    pub fn mod_raise(&self, ct: &Ciphertext, to_level: usize) -> Ciphertext {
        assert_eq!(ct.level(), 1, "mod_raise input must be at level 1");
        assert!(to_level <= self.params.levels, "level out of range");
        self.with_eval(|st| {
            let ev = &mut st.ev;
            let mut c0 = ct.c0.clone();
            let mut c1 = ct.c1.clone();
            ev.inverse_polys(&mut [&mut c0, &mut c1]);
            let mut r0 = ev.mod_raise(&mut c0, to_level);
            let mut r1 = ev.mod_raise(&mut c1, to_level);
            ev.forward_polys(&mut [&mut r0, &mut r1]);
            Ciphertext {
                c0: r0,
                c1: r1,
                scale: ct.scale,
            }
        })
    }

    /// Drop RNS moduli down to `target` level with no scale change (exact
    /// basis truncation) — aligns operand levels before an add/multiply.
    ///
    /// # Panics
    ///
    /// Panics if `target` is 0 or above the current level.
    pub fn drop_to_level(&self, ct: &Ciphertext, target: usize) -> Ciphertext {
        self.with_eval(|st| {
            let ev = &mut st.ev;
            let mut c0 = ct.c0.clone();
            let mut c1 = ct.c1.clone();
            ev.drop_level(&mut c0, target);
            ev.drop_level(&mut c1, target);
            Ciphertext {
                c0,
                c1,
                scale: ct.scale,
            }
        })
    }

    /// Encode real values at an explicit scale (instead of the parameter
    /// default) — scale bookkeeping for pipelines like `EvalMod` that
    /// add plaintext constants to ciphertexts at drifted scales.
    ///
    /// # Panics
    ///
    /// Panics if more than `N` values are supplied or any scaled value
    /// overflows the 63-bit signed range.
    pub fn encode_with_scale(&self, values: &[f64], scale: f64) -> Plaintext {
        assert!(values.len() <= self.params.n(), "too many values");
        let coeffs: Vec<i64> = values
            .iter()
            .map(|&v| {
                let scaled = (v * scale).round();
                assert!(
                    scaled.abs() < (1i64 << 62) as f64,
                    "encoded value overflows"
                );
                scaled as i64
            })
            .collect();
        Plaintext {
            m: RnsPoly::from_i64_coeffs(&self.ring, &coeffs),
            scale,
        }
    }

    /// Truncate a plaintext to `level`, upload it (on residency-preferring
    /// backends) and forward-transform it once — the cached-diagonal form
    /// the homomorphic DFT stages multiply by repeatedly. A prepared
    /// plaintext passed to [`HeContext::multiply_plain_raw`] or
    /// [`HeContext::add_plain`] at its level is used as-is: no per-call
    /// truncation, upload, or NTT.
    pub fn prepare_plaintext(&self, pt: &Plaintext, level: usize) -> Plaintext {
        let mut m = pt.m.truncated(level);
        self.with_eval(|st| {
            if self.resident {
                st.ev.make_resident(&mut m);
            }
            st.ev.to_evaluation(&mut m);
        });
        Plaintext { m, scale: pt.scale }
    }

    /// Plaintext multiplication **without** the trailing rescale: the
    /// product keeps the ciphertext's level and multiplies the scales.
    /// The baby-step/giant-step DFT stages sum many of these at one scale
    /// and rescale once — one level per stage instead of one per term.
    pub fn multiply_plain_raw(&self, ct: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let level = ct.level();
        self.with_eval(|st| {
            let ev = &mut st.ev;
            let prepared;
            let m: &RnsPoly = if pt.m.level() == level && pt.m.repr() == Representation::Evaluation
            {
                &pt.m
            } else {
                let mut m = pt.m.truncated(level);
                if self.resident {
                    ev.make_resident(&mut m);
                }
                ev.to_evaluation(&mut m);
                prepared = m;
                &prepared
            };
            let mut c0 = ct.c0.clone();
            ev.mul_pointwise(&mut c0, m);
            let mut c1 = ct.c1.clone();
            ev.mul_pointwise(&mut c1, m);
            Ciphertext {
                c0,
                c1,
                scale: ct.scale * pt.scale,
            }
        })
    }

    /// Add a plaintext to a ciphertext (only the `c0` component moves).
    ///
    /// # Panics
    ///
    /// Panics if the scales are incompatible (encode the constant at
    /// exactly `ct.scale()` — see [`HeContext::encode_with_scale`]).
    pub fn add_plain(&self, ct: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        assert!(
            (ct.scale / pt.scale - 1.0).abs() < 1e-9,
            "scale mismatch: {} vs {}",
            ct.scale,
            pt.scale
        );
        let level = ct.level();
        self.with_eval(|st| {
            let ev = &mut st.ev;
            let prepared;
            let m: &RnsPoly = if pt.m.level() == level && pt.m.repr() == Representation::Evaluation
            {
                &pt.m
            } else {
                let mut m = pt.m.truncated(level);
                if self.resident {
                    ev.make_resident(&mut m);
                }
                ev.to_evaluation(&mut m);
                prepared = m;
                &prepared
            };
            let mut c0 = ct.c0.clone();
            ev.add_assign(&mut c0, m);
            Ciphertext {
                c0,
                c1: ct.c1.clone(),
                scale: ct.scale,
            }
        })
    }

    /// Add the real constant `v` to every slot (encoded at exactly the
    /// ciphertext's scale, so no scale adjustment is needed).
    pub fn add_const(&self, ct: &Ciphertext, v: f64) -> Ciphertext {
        self.add_plain(ct, &self.encode_with_scale(&[v], ct.scale))
    }

    /// Homomorphic negation.
    pub fn negate(&self, ct: &Ciphertext) -> Ciphertext {
        self.with_eval(|st| {
            let ev = &mut st.ev;
            let mut c0 = ct.c0.clone();
            ev.negate(&mut c0);
            let mut c1 = ct.c1.clone();
            ev.negate(&mut c1);
            Ciphertext {
                c0,
                c1,
                scale: ct.scale,
            }
        })
    }

    /// Rescale in place: divide by the last active prime and drop it —
    /// the public form of the rescale every `multiply` already performs,
    /// for pipelines that defer it across a sum of raw plain-products.
    ///
    /// # Panics
    ///
    /// Panics at level 1 (no prime left to drop).
    pub fn rescale(&self, ct: &mut Ciphertext) {
        assert!(ct.level() >= 2, "no prime left to rescale into");
        self.with_eval(|st| self.rescale_in_place(&mut st.ev, ct));
    }

    /// Encode real values as scaled integer coefficients
    /// (*coefficient* encoding — see the crate docs for semantics).
    ///
    /// # Panics
    ///
    /// Panics if more than `N` values are supplied or any scaled value
    /// overflows the 63-bit signed range.
    pub fn encode(&self, values: &[f64]) -> Plaintext {
        assert!(values.len() <= self.params.n(), "too many values");
        let scale = self.params.scale();
        let coeffs: Vec<i64> = values
            .iter()
            .map(|&v| {
                let scaled = (v * scale).round();
                assert!(
                    scaled.abs() < (1i64 << 62) as f64,
                    "encoded value overflows"
                );
                scaled as i64
            })
            .collect();
        Plaintext {
            m: RnsPoly::from_i64_coeffs(&self.ring, &coeffs),
            scale,
        }
    }

    /// Decode the first `k` coefficients back to reals (`k` = number of
    /// coefficients that were encoded; here we return all of them). An
    /// explicit sync point: device-resident plaintexts are downloaded
    /// here.
    pub fn decode(&self, pt: &Plaintext) -> Vec<f64> {
        let mut m = pt.m.clone();
        self.with_eval(|st| st.ev.to_coefficient(&mut m));
        m.sync();
        (0..self.params.n())
            .map(|i| {
                let v = m
                    .coefficient_centered(&self.ring, i)
                    .expect("plaintext coefficients fit i128");
                v as f64 / pt.scale
            })
            .collect()
    }

    /// Encrypt under the public key. On a residency-preferring backend
    /// the fresh samples are uploaded (the chain's initial upload) and
    /// the resulting ciphertext lives on the device.
    pub fn encrypt<R: Rng + RngExt>(
        &self,
        pt: &Plaintext,
        pk: &PublicKey,
        rng: &mut R,
    ) -> Ciphertext {
        let ring = &self.ring;
        let eta = self.params.error_eta;
        let mut u = sampling::ternary_poly(ring, rng);
        let mut e0 = sampling::error_poly(ring, eta, rng);
        let mut e1 = sampling::error_poly(ring, eta, rng);
        let mut m = pt.m.clone();
        self.with_eval(|st| {
            let ev = &mut st.ev;
            if self.resident {
                ev.make_resident(&mut u);
                ev.make_resident(&mut e0);
                ev.make_resident(&mut e1);
                ev.make_resident(&mut m);
            }
            // All four forward transforms batched through the backend.
            ev.forward_polys(&mut [&mut u, &mut e0, &mut e1, &mut m]);

            let mut c0 = pk.b.clone();
            ev.mul_pointwise(&mut c0, &u);
            ev.add_assign(&mut c0, &e0);
            ev.add_assign(&mut c0, &m);
            let mut c1 = pk.a.clone();
            ev.mul_pointwise(&mut c1, &u);
            ev.add_assign(&mut c1, &e1);
            Ciphertext {
                c0,
                c1,
                scale: pt.scale,
            }
        })
    }

    /// Decrypt with the secret key. An explicit sync point: the returned
    /// plaintext is host-fresh regardless of where the ciphertext lived.
    pub fn decrypt(&self, ct: &Ciphertext, sk: &SecretKey) -> Plaintext {
        let level = ct.level();
        self.with_eval(|st| {
            let ev = &mut st.ev;
            let mut s = sk.s_eval.truncated(level);
            if self.resident {
                ev.make_resident(&mut s);
            }
            let mut m = ct.c1.clone();
            ev.mul_pointwise(&mut m, &s);
            ev.add_assign(&mut m, &ct.c0);
            ev.to_coefficient(&mut m);
            m.sync();
            Plaintext { m, scale: ct.scale }
        })
    }

    /// Homomorphic addition (device-side for resident ciphertexts).
    ///
    /// # Panics
    ///
    /// Panics on level mismatch or incompatible scales.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        assert_eq!(a.level(), b.level(), "level mismatch");
        assert!(
            (a.scale / b.scale - 1.0).abs() < 1e-9,
            "scale mismatch: {} vs {}",
            a.scale,
            b.scale
        );
        self.with_eval(|st| {
            let ev = &mut st.ev;
            let mut c0 = a.c0.clone();
            ev.add_assign(&mut c0, &b.c0);
            let mut c1 = a.c1.clone();
            ev.add_assign(&mut c1, &b.c1);
            Ciphertext {
                c0,
                c1,
                scale: a.scale,
            }
        })
    }

    /// Homomorphic subtraction.
    ///
    /// # Panics
    ///
    /// Panics on level mismatch or incompatible scales.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        assert_eq!(a.level(), b.level(), "level mismatch");
        assert!((a.scale / b.scale - 1.0).abs() < 1e-9, "scale mismatch");
        self.with_eval(|st| {
            let ev = &mut st.ev;
            let mut c0 = a.c0.clone();
            ev.sub_assign(&mut c0, &b.c0);
            let mut c1 = a.c1.clone();
            ev.sub_assign(&mut c1, &b.c1);
            Ciphertext {
                c0,
                c1,
                scale: a.scale,
            }
        })
    }

    /// Plaintext multiplication (no relinearization needed); rescales.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is at level 1 (nothing left to rescale).
    pub fn multiply_plain(&self, ct: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let level = ct.level();
        assert!(level >= 2, "no prime left to rescale into");
        self.with_eval(|st| {
            let ev = &mut st.ev;
            let mut m = pt.m.truncated(level);
            if self.resident {
                ev.make_resident(&mut m);
            }
            ev.to_evaluation(&mut m);
            let mut c0 = ct.c0.clone();
            ev.mul_pointwise(&mut c0, &m);
            let mut c1 = ct.c1.clone();
            ev.mul_pointwise(&mut c1, &m);
            let mut out = Ciphertext {
                c0,
                c1,
                scale: ct.scale * pt.scale,
            };
            self.rescale_in_place(ev, &mut out);
            debug_assert_eq!(out.level(), level - 1);
            out
        })
    }

    /// Homomorphic multiplication: tensor, relinearize, rescale. For
    /// device-resident ciphertexts the whole chain — including the gadget
    /// digit decomposition and every digit NTT — runs on the device with
    /// zero host↔device transfers.
    ///
    /// # Panics
    ///
    /// Panics on level mismatch or at level 1 (no prime to rescale into).
    pub fn multiply(&self, a: &Ciphertext, b: &Ciphertext, rk: &RelinKeys) -> Ciphertext {
        let level = a.level();
        assert_eq!(level, b.level(), "level mismatch");
        assert!(level >= 2, "no prime left to rescale into");
        self.with_eval(|st| {
            // Tensor product (evaluation form).
            let mut e0 = a.c0.clone();
            st.ev.mul_pointwise(&mut e0, &b.c0);
            let mut e1a = a.c0.clone();
            st.ev.mul_pointwise(&mut e1a, &b.c1);
            let mut e1b = a.c1.clone();
            st.ev.mul_pointwise(&mut e1b, &b.c0);
            st.ev.add_assign(&mut e1a, &e1b);
            let mut e2 = a.c1.clone();
            st.ev.mul_pointwise(&mut e2, &b.c1);

            // Relinearize e2 -> (r0, r1) using the hybrid gadget.
            let (r0, r1) = self.key_switch(st, &e2, rk, level);
            st.ev.add_assign(&mut e0, &r0);
            st.ev.add_assign(&mut e1a, &r1);

            let mut out = Ciphertext {
                c0: e0,
                c1: e1a,
                scale: a.scale * b.scale,
            };
            self.rescale_in_place(&mut st.ev, &mut out);
            out
        })
    }

    /// Gadget key switch of `e2` (evaluation form, `level` primes):
    /// returns the pair to add to `(c0, c1)`.
    ///
    /// Digit decomposition uses a contiguous **buffer-of-digits** layout:
    /// every non-zero digit polynomial (its `level` replicated rows) is
    /// packed back to back and all `level × digits` digit NTTs are
    /// submitted as **one** batched [`Evaluator::forward_flat`] call — the
    /// backend sees a single `rows × N` batch instead of one polynomial at
    /// a time, which is exactly the `np`-amortization the paper applies to
    /// kernel launches.
    fn key_switch(
        &self,
        st: &mut EvalState,
        e2: &RnsPoly,
        rk: &RelinKeys,
        level: usize,
    ) -> (RnsPoly, RnsPoly) {
        self.key_switch_with(st, e2, &rk.entries[level - 1], level)
    }

    /// The generic gadget key switch: same digit decomposition and
    /// accumulation as relinearization, but over an arbitrary `entries[j][d]`
    /// key set — relinearization passes `B^d·g_j·s²` encryptions, rotation
    /// passes `B^d·g_j·τ_g(s)` encryptions ([`crate::keys::RotationKeys`]).
    fn key_switch_with(
        &self,
        st: &mut EvalState,
        e2: &RnsPoly,
        entries: &[Vec<RelinEntry>],
        level: usize,
    ) -> (RnsPoly, RnsPoly) {
        let ring = &self.ring;
        let digits = self.params.gadget_digits();
        let w = self.params.gadget_bits;
        let mask = (1u64 << w) - 1;
        let n = self.params.n();
        let EvalState {
            ev,
            ks_scratch: buf,
        } = st;
        let mut e2c = e2.clone();
        // On a residency-preferring backend the key entries live on the
        // device, so a host-submitted operand must be uploaded first: the
        // packed host path below would otherwise mix a device-side
        // `mul_pointwise` (the resident key wins the dispatch) with raw
        // host accumulation on the same polynomial.
        if ev.prefers_residency() {
            ev.make_resident(&mut e2c);
        }
        ev.to_coefficient(&mut e2c);

        // Device-resident fast path: decompose on the device, forward-NTT
        // all `level × digits` digit polynomials in one batched call, and
        // accumulate with fused multiply-adds — nothing crosses the bus.
        // Unlike the packed host path below, zero digits are processed
        // too (they transform to zero and accumulate nothing), so the
        // results stay bit-identical.
        if let Some(digit_buf) = ev.decompose_resident(&e2c, digits, w) {
            let mut acc0 = ev.zero_resident(level, Representation::Evaluation);
            let mut acc1 = ev.zero_resident(level, Representation::Evaluation);
            for (j, row) in entries.iter().enumerate().take(level) {
                for (d, entry) in row.iter().enumerate().take(digits) {
                    let k = j * digits + d;
                    let digit = digit_buf.sub(k * level * n, level * n);
                    ev.fma_resident(&mut acc0, digit, &entry.b);
                    ev.fma_resident(&mut acc1, digit, &entry.a);
                }
            }
            return (acc0, acc1);
        }

        // Pack the digit polynomials into the reusable scratch: for each
        // (prime j, digit d) with a non-zero digit, `level` identical rows
        // (small coefficients are the same residue mod every active
        // prime). Grow-only, like the executor workspace — steady-state
        // key switches allocate nothing here.
        buf.clear();
        buf.reserve(level * digits * level * n);
        let mut kept: Vec<(usize, usize)> = Vec::new();
        for j in 0..level {
            for d in 0..digits {
                let shift = w * d as u32;
                let start = buf.len();
                buf.extend(e2c.row(j).iter().map(|&src| (src >> shift) & mask));
                if buf[start..].iter().all(|&v| v == 0) {
                    buf.truncate(start);
                    continue;
                }
                for _ in 1..level {
                    buf.extend_from_within(start..start + n);
                }
                kept.push((j, d));
            }
        }

        // Accumulators start as zero *in the NTT domain* — zero is zero in
        // either representation, so no transform is spent on them.
        let mut acc0 = RnsPoly::zero_with_repr(ring, level, Representation::Evaluation);
        let mut acc1 = acc0.clone();
        if kept.is_empty() {
            return (acc0, acc1);
        }

        // All digit NTTs at this level in one batched backend call.
        ev.forward_flat(level, buf);

        // One product buffer reused across every kept digit.
        let mut prod = RnsPoly::zero_with_repr(ring, level, Representation::Evaluation);
        for (k, &(j, d)) in kept.iter().enumerate() {
            let rows = &buf[k * level * n..(k + 1) * level * n];
            let entry = &entries[j][d];
            prod.flat_mut().copy_from_slice(rows);
            ev.mul_pointwise(&mut prod, &entry.b);
            acc0.add_assign(&prod, ring);
            prod.flat_mut().copy_from_slice(rows);
            ev.mul_pointwise(&mut prod, &entry.a);
            acc1.add_assign(&prod, ring);
        }
        (acc0, acc1)
    }

    /// Exact RNS rescale: divide by the last active prime and drop it.
    /// Both components cross domains together, batching the transforms;
    /// resident ciphertexts rescale on the device.
    fn rescale_in_place(&self, ev: &mut Evaluator, ct: &mut Ciphertext) {
        let level = ct.level();
        let dropped = self.ring.basis().primes()[level - 1] as f64;
        ev.inverse_polys(&mut [&mut ct.c0, &mut ct.c1]);
        ev.rescale(&mut ct.c0);
        ev.rescale(&mut ct.c1);
        ev.forward_polys(&mut [&mut ct.c0, &mut ct.c1]);
        ct.scale /= dropped;
    }

    /// Rough upper bound on the coefficient magnitude a level can hold:
    /// `log2(Q_level / 2)`. Useful for noise-budget style diagnostics.
    pub fn capacity_bits(&self, level: usize) -> f64 {
        let q = ntt_math::BigUint::product(&self.ring.basis().primes()[..level]);
        q.log2() - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::seeded_rng;

    fn ctx() -> (HeContext, KeySet) {
        let params = HeLiteParams {
            log_n: 8,
            prime_bits: 50,
            levels: 3,
            scale_bits: 46,
            gadget_bits: 10,
            error_eta: 4,
        };
        let ctx = HeContext::new(params).unwrap();
        let keys = ctx.keygen(&mut seeded_rng(42));
        (ctx, keys)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (ctx, keys) = ctx();
        let mut rng = seeded_rng(1);
        let values = [1.25, -2.5, 3.75, 0.0, 100.0];
        let pt = ctx.encode(&values);
        let ct = ctx.encrypt(&pt, &keys.public, &mut rng);
        let out = ctx.decode(&ctx.decrypt(&ct, &keys.secret));
        for (i, &v) in values.iter().enumerate() {
            assert!((out[i] - v).abs() < 1e-6, "slot {i}: {} vs {v}", out[i]);
        }
    }

    #[test]
    fn homomorphic_addition() {
        let (ctx, keys) = ctx();
        let mut rng = seeded_rng(2);
        let a = ctx.encrypt(&ctx.encode(&[1.5, 2.0]), &keys.public, &mut rng);
        let b = ctx.encrypt(&ctx.encode(&[0.25, -1.0]), &keys.public, &mut rng);
        let sum = ctx.add(&a, &b);
        let out = ctx.decode(&ctx.decrypt(&sum, &keys.secret));
        assert!((out[0] - 1.75).abs() < 1e-6);
        assert!((out[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn homomorphic_subtraction() {
        let (ctx, keys) = ctx();
        let mut rng = seeded_rng(3);
        let a = ctx.encrypt(&ctx.encode(&[5.0]), &keys.public, &mut rng);
        let b = ctx.encrypt(&ctx.encode(&[1.5]), &keys.public, &mut rng);
        let out = ctx.decode(&ctx.decrypt(&ctx.sub(&a, &b), &keys.secret));
        assert!((out[0] - 3.5).abs() < 1e-6);
    }

    #[test]
    fn homomorphic_multiplication_constants() {
        let (ctx, keys) = ctx();
        let mut rng = seeded_rng(4);
        let a = ctx.encrypt(&ctx.encode(&[3.0]), &keys.public, &mut rng);
        let b = ctx.encrypt(&ctx.encode(&[-4.0]), &keys.public, &mut rng);
        let prod = ctx.multiply(&a, &b, &keys.relin);
        assert_eq!(prod.level(), 2);
        let out = ctx.decode(&ctx.decrypt(&prod, &keys.secret));
        assert!((out[0] + 12.0).abs() < 1e-2, "got {}", out[0]);
    }

    #[test]
    fn multiplication_is_negacyclic_convolution() {
        // Coefficient encoding: (1 + 2x) * (3 + x) = 3 + 7x + 2x^2.
        let (ctx, keys) = ctx();
        let mut rng = seeded_rng(5);
        let a = ctx.encrypt(&ctx.encode(&[1.0, 2.0]), &keys.public, &mut rng);
        let b = ctx.encrypt(&ctx.encode(&[3.0, 1.0]), &keys.public, &mut rng);
        let prod = ctx.multiply(&a, &b, &keys.relin);
        let out = ctx.decode(&ctx.decrypt(&prod, &keys.secret));
        assert!((out[0] - 3.0).abs() < 1e-2);
        assert!((out[1] - 7.0).abs() < 1e-2);
        assert!((out[2] - 2.0).abs() < 1e-2);
    }

    #[test]
    fn multiply_plain_rescales() {
        let (ctx, keys) = ctx();
        let mut rng = seeded_rng(6);
        let ct = ctx.encrypt(&ctx.encode(&[2.0]), &keys.public, &mut rng);
        let out_ct = ctx.multiply_plain(&ct, &ctx.encode(&[5.0]));
        assert_eq!(out_ct.level(), ct.level() - 1);
        let out = ctx.decode(&ctx.decrypt(&out_ct, &keys.secret));
        assert!((out[0] - 10.0).abs() < 1e-2, "got {}", out[0]);
    }

    #[test]
    fn two_chained_multiplications() {
        let (ctx, keys) = ctx();
        let mut rng = seeded_rng(7);
        let a = ctx.encrypt(&ctx.encode(&[2.0]), &keys.public, &mut rng);
        let b = ctx.encrypt(&ctx.encode(&[3.0]), &keys.public, &mut rng);
        let ab = ctx.multiply(&a, &b, &keys.relin); // level 2
        let c = ctx.encrypt(&ctx.encode(&[1.0]), &keys.public, &mut rng);
        // Bring c to ab's level by plain-multiplying with 1.0.
        let c_dropped = ctx.multiply_plain(&c, &ctx.encode(&[1.0]));
        assert_eq!(c_dropped.level(), ab.level());
        let abc = ctx.multiply(&ab, &c_dropped, &keys.relin);
        assert_eq!(abc.level(), 1);
        let out = ctx.decode(&ctx.decrypt(&abc, &keys.secret));
        assert!((out[0] - 6.0).abs() < 0.1, "got {}", out[0]);
    }

    #[test]
    fn rotation_applies_automorphism_to_plaintext() {
        let (ctx, keys) = ctx();
        let mut rng = seeded_rng(8);
        let values = [1.0, 2.0, 3.0, 4.0];
        let ct = ctx.encrypt(&ctx.encode(&values), &keys.public, &mut rng);
        let n = ctx.params().n();
        for g in [5u64, 25, 2 * n as u64 - 1] {
            let rtk = ctx.keygen_rotation(&keys.secret, &[g], &[ct.level()], &mut rng);
            let rot = ctx.rotate(&ct, g, &rtk);
            assert_eq!(rot.level(), ct.level());
            let out = ctx.decode(&ctx.decrypt(&rot, &keys.secret));
            // Oracle: apply X → X^g to the encoded coefficients directly.
            let mut expected = vec![0.0; n];
            for (i, &v) in values.iter().enumerate() {
                let idx = ((i as u64 * g) % (2 * n as u64)) as usize;
                if idx < n {
                    expected[idx] += v;
                } else {
                    expected[idx - n] -= v;
                }
            }
            for (i, &e) in expected.iter().enumerate() {
                assert!(
                    (out[i] - e).abs() < 1e-2,
                    "g={g} coeff {i}: {} vs {e}",
                    out[i]
                );
            }
        }
    }

    #[test]
    fn mod_raise_preserves_message_mod_q0() {
        let (ctx, keys) = ctx();
        let mut rng = seeded_rng(9);
        let values = [0.5, -1.25, 2.0];
        let ct = ctx.encrypt(&ctx.encode(&values), &keys.public, &mut rng);
        let low = ctx.drop_to_level(&ct, 1);
        let raised = ctx.mod_raise(&low, ctx.params().levels);
        assert_eq!(raised.level(), ctx.params().levels);
        // Decrypting the raised ciphertext gives m + q0·I; the small
        // coefficients we encoded carry no I term, so they come back
        // exactly (the q0·I part only shows up when coefficients are
        // near q0/2 — i.e. the secret-key wrap terms EvalMod removes).
        let out = ctx.decode(&ctx.decrypt(&raised, &keys.secret));
        for (i, &v) in values.iter().enumerate() {
            let dist = (out[i] - v).abs();
            let q0 = ctx.ring().basis().primes()[0] as f64 / ctx.params().scale();
            let wrapped = (dist % q0).min(q0 - dist % q0);
            assert!(wrapped < 1e-2, "coeff {i}: {} vs {v}", out[i]);
        }
    }

    #[test]
    fn capacity_decreases_with_level() {
        let (ctx, _) = ctx();
        assert!(ctx.capacity_bits(3) > ctx.capacity_bits(2));
        assert!(ctx.capacity_bits(2) > ctx.capacity_bits(1));
    }
}
