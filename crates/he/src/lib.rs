//! `he-lite`: a small RNS homomorphic-encryption layer (CKKS-style).
//!
//! The paper motivates NTT acceleration with the structure of RNS-based HE
//! schemes (§I, §III-B): ciphertexts are pairs of degree-N polynomials over
//! `Z_Q`, `Q = Π p_i`, and every homomorphic multiplication is dominated by
//! batches of N-point NTTs — 34–50% of runtime in the systems the paper
//! cites. This crate implements that workload end to end so the examples
//! and benchmarks can measure exactly where NTT time goes:
//!
//! * ternary secrets, public-key (Ring-LWE) encryption with small errors;
//! * homomorphic add / subtract / multiply;
//! * relinearization with hybrid RNS ⊗ digit gadget decomposition;
//! * CKKS-style rescaling (drop the last prime, divide the scale);
//! * fixed-point *coefficient* encoding of real vectors;
//! * Galois rotations ([`HeContext::rotate`], backed by
//!   [`keys::RotationKeys`]) and mod-raise — the primitives the
//!   `he-boot` crate composes into the full bootstrapping pipeline
//!   (CoeffToSlot → EvalMod → SlotToCoeff).
//!
//! Scope notes (documented simplifications vs a production CKKS):
//! encoding is per-coefficient (no canonical-embedding slots baked into
//! encode/decode — the slot view lives in `he-boot`'s homomorphic DFT,
//! where multiplication *is* element-wise), and security parameters are
//! demo-sized. Bootstrapping exists as a separate crate (`he-boot`)
//! built entirely from this crate's public surface. The arithmetic and
//! the NTT workload shape are the real thing.
//!
//! # Example
//!
//! ```
//! use he_lite::{HeLiteParams, HeContext};
//!
//! let params = HeLiteParams::demo();
//! let ctx = HeContext::new(params)?;
//! let mut rng = he_lite::sampling::seeded_rng(7);
//! let keys = ctx.keygen(&mut rng);
//!
//! // Encrypt 2.5 and 3.0 (as constant polynomials), multiply, decrypt.
//! let a = ctx.encrypt(&ctx.encode(&[2.5]), &keys.public, &mut rng);
//! let b = ctx.encrypt(&ctx.encode(&[3.0]), &keys.public, &mut rng);
//! let prod = ctx.multiply(&a, &b, &keys.relin);
//! let out = ctx.decode(&ctx.decrypt(&prod, &keys.secret));
//! assert!((out[0] - 7.5).abs() < 1e-3, "got {}", out[0]);
//! # Ok::<(), he_lite::HeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ciphertext;
pub mod context;
pub mod keys;
pub mod params;
pub mod sampling;

pub use ciphertext::{Ciphertext, Plaintext};
pub use context::{HeContext, HeError};
pub use keys::{KeySet, PublicKey, RelinKeys, RotationKeys, SecretKey};
pub use params::HeLiteParams;
