//! Plaintexts and ciphertexts.

use ntt_core::poly::RnsPoly;

/// An encoded (but not encrypted) message: scaled integer coefficients in
/// RNS coefficient form, tagged with the fixed-point scale.
#[derive(Debug, Clone)]
pub struct Plaintext {
    pub(crate) m: RnsPoly,
    pub(crate) scale: f64,
}

impl Plaintext {
    /// The fixed-point scale this plaintext was encoded with.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Active prime count.
    pub fn level(&self) -> usize {
        self.m.level()
    }

    /// Borrow the underlying RNS polynomial.
    pub fn poly(&self) -> &RnsPoly {
        &self.m
    }
}

/// A CKKS-style ciphertext: the pair `(c0, c1)` in evaluation form, such
/// that `c0 + c1·s ≈ scale · message (mod Q_level)`.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    pub(crate) c0: RnsPoly,
    pub(crate) c1: RnsPoly,
    pub(crate) scale: f64,
}

impl Ciphertext {
    /// Active prime count (decreases by one per rescale).
    pub fn level(&self) -> usize {
        self.c0.level()
    }

    /// Current fixed-point scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Borrow the ciphertext components (evaluation form).
    pub fn components(&self) -> (&RnsPoly, &RnsPoly) {
        (&self.c0, &self.c1)
    }
}
