//! Plaintexts and ciphertexts.
//!
//! On residency-preferring backends (see
//! [`crate::HeContext::is_resident`]) ciphertext polynomials live in
//! device memory between operations; the host copies are stale until an
//! explicit sync point. [`Ciphertext::sync`] / [`Plaintext::sync`] are
//! those sync points for direct component access — decrypt/decode sync
//! implicitly.

use ntt_core::poly::{Residency, RnsPoly};

/// An encoded (but not encrypted) message: scaled integer coefficients in
/// RNS coefficient form, tagged with the fixed-point scale.
#[derive(Debug, Clone)]
pub struct Plaintext {
    pub(crate) m: RnsPoly,
    pub(crate) scale: f64,
}

impl Plaintext {
    /// The fixed-point scale this plaintext was encoded with.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Active prime count.
    pub fn level(&self) -> usize {
        self.m.level()
    }

    /// Borrow the underlying RNS polynomial.
    pub fn poly(&self) -> &RnsPoly {
        &self.m
    }

    /// Download the polynomial if its fresh copy is on the device (no-op
    /// otherwise), so [`Plaintext::poly`] reads see current values.
    pub fn sync(&mut self) {
        self.m.sync();
    }
}

/// A CKKS-style ciphertext: the pair `(c0, c1)` in evaluation form, such
/// that `c0 + c1·s ≈ scale · message (mod Q_level)`.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    pub(crate) c0: RnsPoly,
    pub(crate) c1: RnsPoly,
    pub(crate) scale: f64,
}

impl Ciphertext {
    /// Active prime count (decreases by one per rescale).
    pub fn level(&self) -> usize {
        self.c0.level()
    }

    /// Current fixed-point scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Borrow the ciphertext components (evaluation form).
    ///
    /// For device-resident ciphertexts, call [`Ciphertext::sync`] first —
    /// host reads of stale components panic.
    pub fn components(&self) -> (&RnsPoly, &RnsPoly) {
        (&self.c0, &self.c1)
    }

    /// Explicit sync point: download both components if their fresh
    /// copies live on the device (two counted transfers; no-op for
    /// host-resident ciphertexts).
    pub fn sync(&mut self) {
        self.c0.sync();
        self.c1.sync();
    }

    /// Where the ciphertext currently lives (the components always move
    /// together, so `c0`'s residency is the ciphertext's).
    pub fn residency(&self) -> Residency {
        self.c0.residency()
    }
}
