//! Plaintexts and ciphertexts.
//!
//! On residency-preferring backends (see
//! [`crate::HeContext::is_resident`]) ciphertext polynomials live in
//! device memory between operations; the host copies are stale until an
//! explicit sync point. [`Ciphertext::sync`] / [`Plaintext::sync`] are
//! those sync points for direct component access — decrypt/decode sync
//! implicitly.

use ntt_core::backend::BackendError;
use ntt_core::poly::{Residency, RnsPoly};

/// An encoded (but not encrypted) message: scaled integer coefficients in
/// RNS coefficient form, tagged with the fixed-point scale.
#[derive(Debug, Clone)]
pub struct Plaintext {
    pub(crate) m: RnsPoly,
    pub(crate) scale: f64,
}

impl Plaintext {
    /// The fixed-point scale this plaintext was encoded with.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Active prime count.
    pub fn level(&self) -> usize {
        self.m.level()
    }

    /// Borrow the underlying RNS polynomial.
    pub fn poly(&self) -> &RnsPoly {
        &self.m
    }

    /// Download the polynomial if its fresh copy is on the device (no-op
    /// otherwise), so [`Plaintext::poly`] reads see current values.
    pub fn sync(&mut self) {
        self.m.sync();
    }
}

/// A CKKS-style ciphertext: the pair `(c0, c1)` in evaluation form, such
/// that `c0 + c1·s ≈ scale · message (mod Q_level)`.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    pub(crate) c0: RnsPoly,
    pub(crate) c1: RnsPoly,
    pub(crate) scale: f64,
}

impl Ciphertext {
    /// Assemble a ciphertext from raw components — the constructor layers
    /// above the scheme (request batchers, serialization) use after
    /// producing `(c0, c1)` through their own batched dispatch.
    ///
    /// Both polynomials must be in evaluation form at the same level, and
    /// satisfy `c0 + c1·s ≈ scale · message (mod Q_level)`; nothing here
    /// can check the last invariant, so a bad pair simply decrypts to
    /// noise.
    ///
    /// # Panics
    ///
    /// Panics on level or representation mismatch between the halves.
    pub fn from_parts(c0: RnsPoly, c1: RnsPoly, scale: f64) -> Self {
        assert_eq!(c0.level(), c1.level(), "component level mismatch");
        assert_eq!(c0.repr(), c1.repr(), "component representation mismatch");
        Ciphertext { c0, c1, scale }
    }

    /// Active prime count (decreases by one per rescale).
    pub fn level(&self) -> usize {
        self.c0.level()
    }

    /// Current fixed-point scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Borrow the ciphertext components (evaluation form).
    ///
    /// For device-resident ciphertexts, call [`Ciphertext::sync`] first —
    /// host reads of stale components panic.
    pub fn components(&self) -> (&RnsPoly, &RnsPoly) {
        (&self.c0, &self.c1)
    }

    /// Explicit sync point: download both components if their fresh
    /// copies live on the device (two counted transfers; no-op for
    /// host-resident ciphertexts).
    pub fn sync(&mut self) {
        self.c0.sync();
        self.c1.sync();
    }

    /// Fallible [`Ciphertext::sync`]: a download fault on either
    /// component comes back as a classified [`BackendError`] instead of
    /// panicking. On `Err` the components keep their device-fresh state,
    /// so the call can simply be retried.
    pub fn try_sync(&mut self) -> Result<(), BackendError> {
        self.c0.try_sync()?;
        self.c1.try_sync()
    }

    /// Where the ciphertext currently lives (the components always move
    /// together, so `c0`'s residency is the ciphertext's).
    pub fn residency(&self) -> Residency {
        self.c0.residency()
    }
}
