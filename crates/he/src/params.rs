//! Parameters for the lite HE scheme.

/// Scheme parameters.
///
/// `levels` is the RNS prime count `np`; one prime is consumed per
/// multiplication (rescale), so a fresh ciphertext supports
/// `levels - 1` multiplications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HeLiteParams {
    /// `log2 N` — ring degree exponent.
    pub log_n: u32,
    /// Bits per RNS prime (the paper's 60-bit chain by default).
    pub prime_bits: u32,
    /// Number of RNS primes (`np`).
    pub levels: usize,
    /// Fixed-point encoding scale exponent (`delta = 2^scale_bits`).
    pub scale_bits: u32,
    /// Gadget digit width in bits for relinearization.
    pub gadget_bits: u32,
    /// Width parameter of the centered-binomial error sampler
    /// (variance = `error_eta / 2`).
    pub error_eta: u32,
}

impl HeLiteParams {
    /// Small interactive parameters: `N = 2^12`, 3 primes of 59 bits.
    pub fn demo() -> Self {
        Self {
            log_n: 12,
            prime_bits: 59,
            levels: 3,
            scale_bits: 55,
            gadget_bits: 10,
            error_eta: 6,
        }
    }

    /// A bootstrappable-scale parameter point from the paper
    /// (`N = 2^14`, `np = 21`) — heavy; used by benches, not tests.
    pub fn paper_scale() -> Self {
        Self {
            log_n: 14,
            prime_bits: 60,
            levels: 21,
            scale_bits: 50,
            gadget_bits: 12,
            error_eta: 6,
        }
    }

    /// Ring degree `N`.
    pub fn n(&self) -> usize {
        1 << self.log_n
    }

    /// Encoding scale `delta`.
    pub fn scale(&self) -> f64 {
        (self.scale_bits as f64).exp2()
    }

    /// Gadget digits per prime: `ceil(prime_bits / gadget_bits)`.
    pub fn gadget_digits(&self) -> usize {
        self.prime_bits.div_ceil(self.gadget_bits) as usize
    }

    /// Validate internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range fields (degree, prime size, scale).
    pub fn validate(&self) {
        assert!((4..=17).contains(&self.log_n), "log_n out of range");
        assert!(
            (30..=62).contains(&self.prime_bits),
            "prime_bits out of range"
        );
        assert!(self.levels >= 1, "need at least one prime");
        assert!(
            self.scale_bits < self.prime_bits,
            "scale must fit below one prime"
        );
        assert!(
            (1..=30).contains(&self.gadget_bits),
            "gadget_bits out of range"
        );
        assert!(self.error_eta >= 1, "error_eta must be positive");
    }
}

impl std::fmt::Display for HeLiteParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "N=2^{}, {} x {}-bit primes, delta=2^{}",
            self.log_n, self.levels, self.prime_bits, self.scale_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_params_are_valid() {
        HeLiteParams::demo().validate();
        HeLiteParams::paper_scale().validate();
    }

    #[test]
    fn derived_quantities() {
        let p = HeLiteParams::demo();
        assert_eq!(p.n(), 4096);
        assert_eq!(p.gadget_digits(), 6);
        assert_eq!(p.scale(), (1u64 << 55) as f64);
    }

    #[test]
    #[should_panic(expected = "scale must fit")]
    fn oversized_scale_rejected() {
        let mut p = HeLiteParams::demo();
        p.scale_bits = 62;
        p.validate();
    }
}
