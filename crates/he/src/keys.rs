//! Key material: secret, public and relinearization keys.
//!
//! On residency-preferring backends, keygen uploads every key polynomial
//! once (part of the chain's initial upload); relinearization then reads
//! the key halves directly from device memory — key material never
//! crosses the bus again.

use ntt_core::poly::RnsPoly;
use std::collections::BTreeMap;

/// The ternary secret `s`, kept in evaluation form at full level (with a
/// coefficient-form copy for diagnostics).
#[derive(Debug, Clone)]
pub struct SecretKey {
    /// `s` in evaluation (NTT) form, full level.
    pub(crate) s_eval: RnsPoly,
}

impl SecretKey {
    /// `s` in evaluation form at full level. This *is* the secret —
    /// exposed so decrypting layers above the scheme (request batchers)
    /// can pack `c1·s` products into flat backend calls; anything holding
    /// `&SecretKey` can already decrypt, so no capability is added.
    pub fn eval_poly(&self) -> &RnsPoly {
        &self.s_eval
    }
}

/// Ring-LWE public key `(b, a)` with `b = -(a·s) + e`, evaluation form.
#[derive(Debug, Clone)]
pub struct PublicKey {
    /// `b = -(a·s) + e`.
    pub(crate) b: RnsPoly,
    /// Uniform `a`.
    pub(crate) a: RnsPoly,
}

impl PublicKey {
    /// The `(b, a)` halves in evaluation form — public material, exposed
    /// so encrypting layers above the scheme can pack `b·u` / `a·u`
    /// products into flat backend calls.
    pub fn halves(&self) -> (&RnsPoly, &RnsPoly) {
        (&self.b, &self.a)
    }
}

/// One relinearization key entry: an encryption of `B^d · g_j · s²`.
#[derive(Debug, Clone)]
pub struct RelinEntry {
    pub(crate) b: RnsPoly,
    pub(crate) a: RnsPoly,
}

/// Relinearization keys for every level: `relin[level][j][digit]`.
///
/// The hybrid gadget is the RNS decomposition (index `j` over active
/// primes) tensored with a base-`2^w` digit decomposition (index `d`),
/// which keeps key-switching noise at `O(np · digits · 2^w)` — far below
/// the encoding scale.
#[derive(Debug, Clone)]
pub struct RelinKeys {
    /// `entries[level - 1][j][d]` relinearizes at that level.
    pub(crate) entries: Vec<Vec<Vec<RelinEntry>>>,
}

impl RelinKeys {
    /// Number of levels covered.
    pub fn levels(&self) -> usize {
        self.entries.len()
    }

    /// Total key-material entries (each is a pair of RNS polynomials).
    pub fn entry_count(&self) -> usize {
        self.entries
            .iter()
            .map(|l| l.iter().map(Vec::len).sum::<usize>())
            .sum()
    }
}

/// Rotation (Galois) keys: for each Galois element `g`, key-switch
/// material turning a `τ_g(s)`-ciphertext back into an `s`-ciphertext.
///
/// Storage is sparse on both axes: only the requested `g` values and only
/// the requested levels are generated (a bootstrap pipeline rotates at two
/// or three known levels, not all of them), so rotation-key memory is
/// `O(|gs| · |levels| · digits)` instead of `O(|gs| · levels²· digits)`.
/// Each per-level entry set has the same `entries[j][d]` hoisting-friendly
/// digit layout as [`RelinKeys`] — an encryption of `B^d · g_j · τ_g(s)`
/// — so rotations reuse the relinearization key-switch path (including
/// the device-resident decompose + FMA fast path) unchanged.
#[derive(Debug, Clone, Default)]
pub struct RotationKeys {
    /// `by_g[g][level][j][d]`; `g` stored reduced mod `2N`.
    pub(crate) by_g: BTreeMap<u64, BTreeMap<usize, Vec<Vec<RelinEntry>>>>,
}

impl RotationKeys {
    /// The Galois elements covered (reduced mod `2N`, sorted).
    pub fn galois_elements(&self) -> Vec<u64> {
        self.by_g.keys().copied().collect()
    }

    /// Whether key material exists for `(g, level)`.
    pub fn contains(&self, g: u64, level: usize) -> bool {
        self.by_g.get(&g).is_some_and(|m| m.contains_key(&level))
    }

    /// Total key-material entries (each is a pair of RNS polynomials).
    pub fn entry_count(&self) -> usize {
        self.by_g
            .values()
            .flat_map(BTreeMap::values)
            .map(|per_j| per_j.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// The `entries[j][d]` set for `(g, level)`, if generated.
    pub(crate) fn entries_for(&self, g: u64, level: usize) -> Option<&Vec<Vec<RelinEntry>>> {
        self.by_g.get(&g)?.get(&level)
    }
}

/// All keys produced by key generation.
#[derive(Debug, Clone)]
pub struct KeySet {
    /// The secret key (keep private).
    pub secret: SecretKey,
    /// The public encryption key.
    pub public: PublicKey,
    /// Relinearization keys for homomorphic multiplication.
    pub relin: RelinKeys,
}
