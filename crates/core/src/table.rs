//! Precomputed twiddle-factor tables.
//!
//! The table layout follows the paper (and SEAL/NFLlib): for an N-point
//! negacyclic NTT mod `p` with primitive 2N-th root `psi`,
//!
//! ```text
//! psi_rev[i]  = psi^{bit_reverse(i, log2 N)}          (forward twiddles)
//! ipsi_rev[i] = psi^{-bit_reverse(i, log2 N)}         (inverse twiddles)
//! ```
//!
//! and every entry carries its Shoup companion word, **doubling** the table
//! bytes — the effect at the heart of the paper's bandwidth analysis. The
//! per-stage accounting methods reproduce Figure 8.

use crate::bitrev::bit_reverse;
use ntt_math::root::{inverse_root, primitive_root_of_unity, RootError};
use ntt_math::shoup::precompute;
use ntt_math::{inv_mod, mul_mod, ShoupMul};

/// Twiddle-factor table for one `(N, p)` pair.
///
/// Stored as parallel `Vec<u64>`s (value + Shoup companion) so GPU kernels
/// can treat them as raw device arrays.
///
/// # Example
///
/// ```
/// use ntt_core::NttTable;
/// let t = NttTable::new_with_bits(1024, 60)?;
/// assert_eq!(t.n(), 1024);
/// // Forward table bytes: N entries * (8B value + 8B companion).
/// assert_eq!(t.forward_table_bytes(), 1024 * 16);
/// # Ok::<(), ntt_math::root::RootError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NttTable {
    n: usize,
    log_n: u32,
    p: u64,
    psi: u64,
    /// `psi^{bitrev(i)}`, i in `0..n`.
    psi_rev: Vec<u64>,
    /// Shoup companions of `psi_rev`.
    psi_rev_shoup: Vec<u64>,
    /// `psi^{-bitrev(i)}`, i in `0..n`.
    ipsi_rev: Vec<u64>,
    /// Shoup companions of `ipsi_rev`.
    ipsi_rev_shoup: Vec<u64>,
    /// `N^{-1} mod p` with companion, merged into the last inverse stage.
    n_inv: ShoupMul,
}

impl NttTable {
    /// Build the table for a given prime `p ≡ 1 (mod 2N)`.
    ///
    /// # Errors
    ///
    /// Propagates [`RootError`] when `p` is not prime or lacks a 2N-th root.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two ≥ 2.
    pub fn new(n: usize, p: u64) -> Result<Self, RootError> {
        assert!(
            n.is_power_of_two() && n >= 2,
            "N must be a power of two >= 2"
        );
        let psi = primitive_root_of_unity(2 * n as u64, p)?;
        Ok(Self::with_root(n, p, psi))
    }

    /// Build the table, choosing the largest NTT-friendly prime of the given
    /// bit size automatically.
    ///
    /// # Errors
    ///
    /// Returns [`RootError::NotPrime`] if no prime of that size exists
    /// (practically impossible for the supported ranges).
    pub fn new_with_bits(n: usize, prime_bits: u32) -> Result<Self, RootError> {
        let p =
            ntt_math::ntt_prime(prime_bits, 2 * n as u64).ok_or(RootError::NotPrime { p: 0 })?;
        Self::new(n, p)
    }

    /// Build from an explicit primitive 2N-th root (must be valid; checked
    /// in debug builds only).
    pub fn with_root(n: usize, p: u64, psi: u64) -> Self {
        debug_assert_eq!(ntt_math::pow_mod(psi, 2 * n as u64, p), 1);
        debug_assert_eq!(ntt_math::pow_mod(psi, n as u64, p), p - 1);
        let log_n = n.trailing_zeros();
        let psi_inv = inverse_root(psi, p).expect("root is invertible");

        // Powers in natural order first, then scatter to bit-reversed slots.
        let mut pow_f = vec![0u64; n];
        let mut pow_i = vec![0u64; n];
        let mut acc_f = 1u64;
        let mut acc_i = 1u64;
        for i in 0..n {
            pow_f[i] = acc_f;
            pow_i[i] = acc_i;
            acc_f = mul_mod(acc_f, psi, p);
            acc_i = mul_mod(acc_i, psi_inv, p);
        }
        let mut psi_rev = vec![0u64; n];
        let mut ipsi_rev = vec![0u64; n];
        for i in 0..n {
            let r = bit_reverse(i, log_n);
            psi_rev[i] = pow_f[r];
            ipsi_rev[i] = pow_i[r];
        }
        let psi_rev_shoup = psi_rev.iter().map(|&w| precompute(w, p)).collect();
        let ipsi_rev_shoup = ipsi_rev.iter().map(|&w| precompute(w, p)).collect();
        let n_inv = ShoupMul::new(inv_mod(n as u64 % p, p).expect("N invertible"), p);
        Self {
            n,
            log_n,
            p,
            psi,
            psi_rev,
            psi_rev_shoup,
            ipsi_rev,
            ipsi_rev_shoup,
            n_inv,
        }
    }

    /// Transform size `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// `log2 N`.
    #[inline]
    pub fn log_n(&self) -> u32 {
        self.log_n
    }

    /// The prime modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// The primitive 2N-th root of unity used for the merged twiddles.
    #[inline]
    pub fn psi(&self) -> u64 {
        self.psi
    }

    /// Forward twiddle `psi^{bitrev(i)}` as a ready-to-use multiplier.
    #[inline]
    pub fn forward(&self, i: usize) -> ShoupMul {
        ShoupMul::from_parts(self.psi_rev[i], self.psi_rev_shoup[i], self.p)
    }

    /// Inverse twiddle `psi^{-bitrev(i)}` as a ready-to-use multiplier.
    #[inline]
    pub fn inverse(&self, i: usize) -> ShoupMul {
        ShoupMul::from_parts(self.ipsi_rev[i], self.ipsi_rev_shoup[i], self.p)
    }

    /// `N^{-1} mod p`, merged into the final inverse-NTT stage.
    #[inline]
    pub fn n_inv(&self) -> ShoupMul {
        self.n_inv
    }

    /// Raw forward twiddle values (bit-reversed order) — device-array view.
    #[inline]
    pub fn forward_values(&self) -> &[u64] {
        &self.psi_rev
    }

    /// Raw forward Shoup companions — device-array view.
    #[inline]
    pub fn forward_companions(&self) -> &[u64] {
        &self.psi_rev_shoup
    }

    /// Raw inverse twiddle values (bit-reversed order).
    #[inline]
    pub fn inverse_values(&self) -> &[u64] {
        &self.ipsi_rev
    }

    /// Raw inverse Shoup companions.
    #[inline]
    pub fn inverse_companions(&self) -> &[u64] {
        &self.ipsi_rev_shoup
    }

    /// Bytes of the forward table: `N * (8 + 8)` — value plus Shoup
    /// companion. This is the per-prime table the paper's §IV sizes.
    pub fn forward_table_bytes(&self) -> usize {
        self.n * 16
    }

    /// Bytes of forward + inverse tables.
    pub fn total_table_bytes(&self) -> usize {
        2 * self.forward_table_bytes()
    }

    /// Number of *distinct* twiddles consumed by radix-2 stage `s`
    /// (1-based): `2^{s-1}`. Stage counts sum to `N - 1`.
    pub fn stage_twiddle_count(&self, stage: u32) -> usize {
        assert!(stage >= 1 && stage <= self.log_n, "stage out of range");
        1usize << (stage - 1)
    }

    /// Per-stage data sizes relative to the input array (paper Fig. 8):
    /// returns `(stage, twiddle_bytes / input_bytes)` for every stage.
    /// The input term is constant 1.0; twiddles (with companions) grow to
    /// 1.0 at the final stage.
    pub fn relative_stage_sizes(&self) -> Vec<(u32, f64)> {
        let input_bytes = (self.n * 8) as f64;
        (1..=self.log_n)
            .map(|s| {
                let tw_bytes = (self.stage_twiddle_count(s) * 16) as f64;
                (s, tw_bytes / input_bytes)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_entries_match_definition() {
        let n = 16usize;
        let t = NttTable::new_with_bits(n, 59).unwrap();
        let p = t.modulus();
        for i in 0..n {
            let e = bit_reverse(i, t.log_n()) as u64;
            assert_eq!(t.forward(i).value(), ntt_math::pow_mod(t.psi(), e, p));
            let inv_psi = ntt_math::inv_mod(t.psi(), p).unwrap();
            assert_eq!(t.inverse(i).value(), ntt_math::pow_mod(inv_psi, e, p));
        }
    }

    #[test]
    fn first_entry_is_one() {
        let t = NttTable::new_with_bits(64, 60).unwrap();
        assert_eq!(t.forward(0).value(), 1);
        assert_eq!(t.inverse(0).value(), 1);
    }

    #[test]
    fn n_inv_is_inverse_of_n() {
        let t = NttTable::new_with_bits(256, 60).unwrap();
        assert_eq!(
            ntt_math::mul_mod(t.n_inv().value(), 256 % t.modulus(), t.modulus()),
            1
        );
    }

    #[test]
    fn byte_accounting() {
        let t = NttTable::new_with_bits(1 << 14, 60).unwrap();
        assert_eq!(t.forward_table_bytes(), (1 << 14) * 16);
        assert_eq!(t.total_table_bytes(), (1 << 14) * 32);
    }

    #[test]
    fn stage_twiddles_sum_to_n_minus_one() {
        let t = NttTable::new_with_bits(1 << 10, 60).unwrap();
        let total: usize = (1..=10).map(|s| t.stage_twiddle_count(s)).sum();
        assert_eq!(total, (1 << 10) - 1);
    }

    #[test]
    fn relative_sizes_reach_parity_at_last_stage() {
        // Paper Fig. 8: at the final stage the twiddle bytes (value +
        // companion) equal the input bytes.
        let t = NttTable::new_with_bits(1 << 12, 60).unwrap();
        let sizes = t.relative_stage_sizes();
        let (last_stage, last_ratio) = *sizes.last().unwrap();
        assert_eq!(last_stage, 12);
        assert!((last_ratio - 1.0).abs() < 1e-12);
        // Early stages are tiny — this is why preloading them into shared
        // memory (Fig. 9) is feasible.
        assert!(sizes[0].1 < 0.001);
    }

    #[test]
    fn companions_match_fresh_precompute() {
        let t = NttTable::new_with_bits(32, 59).unwrap();
        for i in 0..32 {
            assert_eq!(
                t.forward_companions()[i],
                ntt_math::shoup::precompute(t.forward_values()[i], t.modulus())
            );
        }
    }
}
