//! Block (high-radix) decomposition of the Cooley–Tukey NTT.
//!
//! The GPU implementations in the paper never run the monolithic CT loop:
//! they split the `log2 N` stages into *passes* (register-based high radix,
//! §V) or into *two kernels* (SMEM implementation, §VI-C), and further split
//! each kernel into *per-thread NTTs* (Fig. 2 / Fig. 10). All of those are
//! instances of one identity, derived from the in-place CT index algebra:
//!
//! > Running global stages `m0, 2·m0, …, m0·R/2` restricted to the strided
//! > element set `S = { i0·(N/m0) + k + s·σ : s ∈ [0,R) }` (with
//! > `σ = N/(m0·R)`, segment `i0 ∈ [0,m0)`, offset `k ∈ [0,σ)`) is exactly
//! > an R-point CT NTT on the gathered values whose stage-`m'`/group-`i'`
//! > twiddle is the global entry `Ψ[m'·(m0 + i0) + i']`.
//!
//! So every block NTT is parameterized by one integer `tw_base = m0 + i0`,
//! and the parameterization is closed under recursive splitting:
//! a sub-block at local `(m0', i0')` gets `tw_base' = m0'·tw_base + i0'`.
//! The functions here implement the block NTT and the pass/kernel loops on
//! the CPU; `ntt-gpu` reuses the same algebra inside simulated kernels.

use crate::table::NttTable;
use ntt_math::modops::{add_mod, sub_mod};

/// R-point Cooley–Tukey NTT on a gathered block, strict reduction.
///
/// `tw_base` selects which global twiddles this block consumes (see the
/// module docs). `tw_base = 1` with `block.len() = N` reproduces the full
/// [`crate::ct::ntt`].
///
/// # Panics
///
/// Panics if the block length is not a power of two or if a required
/// twiddle index falls outside the table.
pub fn block_ntt(block: &mut [u64], table: &NttTable, tw_base: usize) {
    let r = block.len();
    assert!(r.is_power_of_two(), "block length must be a power of two");
    let p = table.modulus();
    let mut m_loc = 1;
    let mut t_loc = r / 2;
    while m_loc < r {
        for i_loc in 0..m_loc {
            let w = table.forward(m_loc * tw_base + i_loc);
            let j1 = 2 * i_loc * t_loc;
            for j in j1..j1 + t_loc {
                let u = block[j];
                let v = w.mul(block[j + t_loc]);
                block[j] = add_mod(u, v, p);
                block[j + t_loc] = sub_mod(u, v, p);
            }
        }
        m_loc *= 2;
        t_loc /= 2;
    }
}

/// R-point block NTT with Harvey lazy reduction (values in `[0, 4p)`).
///
/// Mirrors [`block_ntt`]; used by the simulated GPU kernels, which keep
/// data lazy between stages exactly as the paper's Algorithm 2 does.
pub fn block_ntt_lazy(block: &mut [u64], table: &NttTable, tw_base: usize) {
    let r = block.len();
    assert!(r.is_power_of_two(), "block length must be a power of two");
    let p = table.modulus();
    let two_p = 2 * p;
    let mut m_loc = 1;
    let mut t_loc = r / 2;
    while m_loc < r {
        for i_loc in 0..m_loc {
            let w = table.forward(m_loc * tw_base + i_loc);
            let j1 = 2 * i_loc * t_loc;
            for j in j1..j1 + t_loc {
                let mut u = block[j];
                if u >= two_p {
                    u -= two_p;
                }
                let v = w.mul_lazy(block[j + t_loc]);
                block[j] = u + v;
                block[j + t_loc] = u + two_p - v;
            }
        }
        m_loc *= 2;
        t_loc /= 2;
    }
}

/// Gather a strided block: `out[s] = a[base + s·stride]`.
pub fn gather(a: &[u64], base: usize, stride: usize, r: usize) -> Vec<u64> {
    (0..r).map(|s| a[base + s * stride]).collect()
}

/// Scatter a block back: `a[base + s·stride] = block[s]`.
pub fn scatter(a: &mut [u64], base: usize, stride: usize, block: &[u64]) {
    for (s, &v) in block.iter().enumerate() {
        a[base + s * stride] = v;
    }
}

/// One high-radix *pass*: runs global stages `m0 · {1, 2, …, r/2}` over the
/// whole array by gathering every strided block, running [`block_ntt`], and
/// scattering back.
///
/// `m0` must be a power of two and `m0 · r` must divide `a.len()`.
pub fn radix_pass(a: &mut [u64], table: &NttTable, m0: usize, r: usize) {
    let n = a.len();
    assert!(m0.is_power_of_two() && r.is_power_of_two());
    assert!(m0 * r <= n, "pass exceeds transform size");
    let sigma = n / (m0 * r);
    let seg_len = n / m0;
    for i0 in 0..m0 {
        for k in 0..sigma {
            let base = i0 * seg_len + k;
            let mut block = gather(a, base, sigma, r);
            block_ntt(&mut block, table, m0 + i0);
            scatter(a, base, sigma, &block);
        }
    }
}

/// Full NTT as a sequence of radix-`r` passes (the paper's register-based
/// high-radix implementation, CPU reference). The final pass shrinks when
/// `log2 r` does not divide `log2 N`.
///
/// Output is bit-reversed, identical to [`crate::ct::ntt`].
pub fn high_radix_ntt(a: &mut [u64], table: &NttTable, r: usize) {
    let n = a.len();
    assert_eq!(n, table.n(), "input length must equal table N");
    assert!(
        r.is_power_of_two() && r >= 2,
        "radix must be a power of two >= 2"
    );
    let mut m0 = 1usize;
    while m0 < n {
        let r_pass = r.min(n / m0);
        radix_pass(a, table, m0, r_pass);
        m0 *= r_pass;
    }
}

/// Full NTT as the two-kernel split of the SMEM implementation (§VI-C):
/// Kernel-1 performs `N2` strided `N1`-point NTTs, Kernel-2 performs `N1`
/// contiguous `N2`-point NTTs, `N = N1 · N2`.
///
/// Output is bit-reversed, identical to [`crate::ct::ntt`].
///
/// # Panics
///
/// Panics if `n1` does not divide `a.len()` or either factor is < 2.
pub fn two_kernel_ntt(a: &mut [u64], table: &NttTable, n1: usize) {
    let n = a.len();
    assert_eq!(n, table.n(), "input length must equal table N");
    assert!(n1.is_power_of_two() && n1 >= 2 && n1 < n, "invalid N1");
    let n2 = n / n1;
    // Kernel-1: columns, shared twiddles (tw_base = 1 for every column).
    radix_pass(a, table, 1, n1);
    // Kernel-2: rows, per-row twiddles (tw_base = n1 + row).
    for row in 0..n1 {
        let block = &mut a[row * n2..(row + 1) * n2];
        block_ntt(block, table, n1 + row);
    }
}

/// Number of passes the high-radix implementation needs:
/// `ceil(log2 N / log2 r)`. Each pass reads and writes the whole array
/// once — the DRAM-traffic driver in the paper's Fig. 4.
pub fn pass_count(n: usize, r: usize) -> u32 {
    let log_n = n.trailing_zeros();
    let log_r = r.trailing_zeros();
    log_n.div_ceil(log_r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ct;

    fn table(n: usize) -> NttTable {
        NttTable::new_with_bits(n, 60).unwrap()
    }

    fn sample(n: usize, p: u64) -> Vec<u64> {
        (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E3779B9) % p)
            .collect()
    }

    #[test]
    fn block_ntt_with_base_one_is_full_ntt() {
        let n = 64;
        let t = table(n);
        let a = sample(n, t.modulus());
        let mut blocked = a.clone();
        block_ntt(&mut blocked, &t, 1);
        let mut reference = a;
        ct::ntt(&mut reference, &t);
        assert_eq!(blocked, reference);
    }

    #[test]
    fn high_radix_matches_ct_all_radices() {
        let n = 256;
        let t = table(n);
        let a = sample(n, t.modulus());
        let mut reference = a.clone();
        ct::ntt(&mut reference, &t);
        for r in [2usize, 4, 8, 16, 32, 64, 128, 256] {
            let mut x = a.clone();
            high_radix_ntt(&mut x, &t, r);
            assert_eq!(x, reference, "radix {r}");
        }
    }

    #[test]
    fn high_radix_with_non_dividing_log() {
        // log2 N = 9, radix 16 (log 4): passes 16,16,2.
        let n = 512;
        let t = table(n);
        let a = sample(n, t.modulus());
        let mut reference = a.clone();
        ct::ntt(&mut reference, &t);
        let mut x = a;
        high_radix_ntt(&mut x, &t, 16);
        assert_eq!(x, reference);
    }

    #[test]
    fn two_kernel_matches_ct_all_splits() {
        let n = 1024;
        let t = table(n);
        let a = sample(n, t.modulus());
        let mut reference = a.clone();
        ct::ntt(&mut reference, &t);
        for log_n1 in 1..10 {
            let mut x = a.clone();
            two_kernel_ntt(&mut x, &t, 1 << log_n1);
            assert_eq!(x, reference, "N1 = 2^{log_n1}");
        }
    }

    #[test]
    fn recursive_split_composes_tw_base() {
        // Split an R-point block into r1 x r2 sub-blocks with the composed
        // tw_base rule and check against the direct block NTT.
        let n = 256;
        let t = table(n);
        let (r1, r2) = (8usize, 8usize);
        let r = r1 * r2;
        let a = sample(r, t.modulus());
        let tw_base = 1usize; // e.g. Kernel-1's first column

        let mut direct = a.clone();
        block_ntt(&mut direct, &t, tw_base);

        let mut split = a;
        // Level 1: r2 strided r1-point NTTs (m0' = 1, i0' = 0).
        for k in 0..r2 {
            let mut b = gather(&split, k, r2, r1);
            block_ntt(&mut b, &t, tw_base);
            scatter(&mut split, k, r2, &b);
        }
        // Level 2: r1 contiguous r2-point NTTs (m0' = r1, i0' = row).
        for row in 0..r1 {
            let b = &mut split[row * r2..(row + 1) * r2];
            block_ntt(b, &t, r1 * tw_base + row);
        }
        assert_eq!(split, direct);
    }

    #[test]
    fn lazy_block_matches_strict() {
        let n = 128;
        let t = table(n);
        let p = t.modulus();
        let a = sample(n, p);
        let mut strict = a.clone();
        block_ntt(&mut strict, &t, 1);
        let mut lazy = a;
        block_ntt_lazy(&mut lazy, &t, 1);
        ct::reduce_from_lazy(&mut lazy, p);
        assert_eq!(strict, lazy);
    }

    #[test]
    fn pass_counts() {
        assert_eq!(pass_count(1 << 17, 2), 17);
        assert_eq!(pass_count(1 << 17, 16), 5);
        assert_eq!(pass_count(1 << 17, 32), 4);
        assert_eq!(pass_count(1 << 16, 16), 4);
        assert_eq!(pass_count(1 << 17, 128), 3);
    }
}
