//! Residue number system (RNS) over an NTT-friendly prime basis.
//!
//! HE schemes avoid big-integer coefficient arithmetic by CRT-decomposing
//! `Z_Q` (with `Q = Π p_i`) into `np` word-sized rings `Z_{p_i}` (§III-B).
//! This module provides the basis bookkeeping, forward decomposition, and
//! CRT reconstruction `x = Σ_i (x_i · ŷ_i mod p_i) · M_i mod M` used to
//! read results back out.

use ntt_math::{inv_mod, BigUint};

/// An RNS basis: distinct primes and the precomputed CRT constants.
///
/// # Example
///
/// ```
/// use ntt_core::RnsBasis;
/// let basis = RnsBasis::new(ntt_math::ntt_primes(60, 1 << 15, 3))?;
/// let x = 123_456_789_u64;
/// let residues = basis.decompose_u64(x);
/// assert_eq!(basis.reconstruct(&residues).to_u64(), Some(x));
/// # Ok::<(), ntt_core::rns::RnsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RnsBasis {
    primes: Vec<u64>,
    /// `M = Π p_i` — the composite modulus `Q`.
    modulus: BigUint,
    /// `M_i = M / p_i`.
    m_i: Vec<BigUint>,
    /// `ŷ_i = (M_i)^{-1} mod p_i`.
    y_i: Vec<u64>,
}

impl RnsBasis {
    /// Build a basis from distinct primes.
    ///
    /// # Errors
    ///
    /// * [`RnsError::Empty`] for an empty prime list.
    /// * [`RnsError::NotPrime`] if any modulus fails the primality test.
    /// * [`RnsError::Duplicate`] if two primes coincide (CRT needs
    ///   pairwise-coprime moduli).
    pub fn new(primes: Vec<u64>) -> Result<Self, RnsError> {
        if primes.is_empty() {
            return Err(RnsError::Empty);
        }
        let mut seen = std::collections::HashSet::new();
        for &p in &primes {
            if !ntt_math::is_prime(p) {
                return Err(RnsError::NotPrime { p });
            }
            if !seen.insert(p) {
                return Err(RnsError::Duplicate { p });
            }
        }
        let modulus = BigUint::product(&primes);
        let mut m_i = Vec::with_capacity(primes.len());
        let mut y_i = Vec::with_capacity(primes.len());
        for &p in &primes {
            let (mi, rem) = modulus.div_rem_u64(p);
            debug_assert_eq!(rem, 0);
            let mi_mod_p = &mi % p;
            let y = inv_mod(mi_mod_p, p).expect("M_i coprime to p_i");
            m_i.push(mi);
            y_i.push(y);
        }
        Ok(Self {
            primes,
            modulus,
            m_i,
            y_i,
        })
    }

    /// The primes `p_1, …, p_np`.
    #[inline]
    pub fn primes(&self) -> &[u64] {
        &self.primes
    }

    /// Number of primes `np` (the paper's batch dimension).
    #[inline]
    pub fn len(&self) -> usize {
        self.primes.len()
    }

    /// `true` iff the basis is empty (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.primes.is_empty()
    }

    /// The composite modulus `Q = Π p_i`.
    #[inline]
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// `log2 Q`, the paper's headline parameter.
    pub fn log_q(&self) -> f64 {
        self.modulus.log2()
    }

    /// Decompose an unsigned word: `x mod p_i` for each `i`.
    pub fn decompose_u64(&self, x: u64) -> Vec<u64> {
        self.primes.iter().map(|&p| x % p).collect()
    }

    /// Decompose a signed value (centered representative).
    pub fn decompose_i64(&self, x: i64) -> Vec<u64> {
        self.primes
            .iter()
            .map(|&p| {
                if x >= 0 {
                    (x as u64) % p
                } else {
                    let m = ((-(x as i128)) as u64) % p;
                    if m == 0 {
                        0
                    } else {
                        p - m
                    }
                }
            })
            .collect()
    }

    /// Decompose a big integer already reduced mod `Q`.
    pub fn decompose(&self, x: &BigUint) -> Vec<u64> {
        self.primes.iter().map(|&p| x % p).collect()
    }

    /// CRT reconstruction into `[0, Q)`.
    ///
    /// # Panics
    ///
    /// Panics if `residues.len() != self.len()`.
    pub fn reconstruct(&self, residues: &[u64]) -> BigUint {
        assert_eq!(residues.len(), self.len(), "residue count mismatch");
        let mut acc = BigUint::zero();
        for (i, &r) in residues.iter().enumerate() {
            let c = ntt_math::mul_mod(r % self.primes[i], self.y_i[i], self.primes[i]);
            acc = acc.add(&self.m_i[i].mul_u64(c));
        }
        acc.rem(&self.modulus)
    }

    /// CRT reconstruction followed by a centered lift to `i128`
    /// (for reading small signed results out of HE pipelines).
    ///
    /// Returns `None` when the centered value does not fit `i128`.
    pub fn reconstruct_centered(&self, residues: &[u64]) -> Option<i128> {
        self.reconstruct(residues).to_i128_centered(&self.modulus)
    }
}

/// Errors from RNS basis construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RnsError {
    /// No primes supplied.
    Empty,
    /// A modulus is not prime.
    NotPrime {
        /// The offending modulus.
        p: u64,
    },
    /// A prime appears twice.
    Duplicate {
        /// The repeated prime.
        p: u64,
    },
}

impl std::fmt::Display for RnsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RnsError::Empty => write!(f, "RNS basis needs at least one prime"),
            RnsError::NotPrime { p } => write!(f, "{p} is not prime"),
            RnsError::Duplicate { p } => write!(f, "prime {p} appears more than once"),
        }
    }
}

impl std::error::Error for RnsError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn basis(np: usize) -> RnsBasis {
        RnsBasis::new(ntt_math::ntt_primes(59, 1 << 12, np)).unwrap()
    }

    #[test]
    fn roundtrip_u64() {
        let b = basis(3);
        for x in [0u64, 1, 42, u64::MAX] {
            assert_eq!(b.reconstruct(&b.decompose_u64(x)).to_u64(), Some(x));
        }
    }

    #[test]
    fn roundtrip_signed() {
        let b = basis(4);
        for x in [0i64, 1, -1, 123456, -987654321, i64::MIN + 1] {
            assert_eq!(b.reconstruct_centered(&b.decompose_i64(x)), Some(x as i128));
        }
    }

    #[test]
    fn roundtrip_big() {
        let b = basis(5);
        // A value needing more than two words: Q - 12345.
        let big = b.modulus().sub(&BigUint::from_u64(12345));
        let rec = b.reconstruct(&b.decompose(&big));
        assert_eq!(rec, big);
        // And centered: Q - 12345 ≡ -12345.
        assert_eq!(rec.to_i128_centered(b.modulus()), Some(-12345i128));
    }

    #[test]
    fn additive_homomorphism() {
        let b = basis(3);
        let (x, y) = (998877665544u64, 112233445566u64);
        let rx = b.decompose_u64(x);
        let ry = b.decompose_u64(y);
        let sum: Vec<u64> = rx
            .iter()
            .zip(&ry)
            .zip(b.primes())
            .map(|((&a, &c), &p)| ntt_math::add_mod(a, c, p))
            .collect();
        assert_eq!(b.reconstruct(&sum).to_u64(), Some(x + y));
    }

    #[test]
    fn multiplicative_homomorphism() {
        let b = basis(3);
        let (x, y) = (0xDEAD_BEEFu64, 0xCAFE_BABEu64);
        let rx = b.decompose_u64(x);
        let ry = b.decompose_u64(y);
        let prod: Vec<u64> = rx
            .iter()
            .zip(&ry)
            .zip(b.primes())
            .map(|((&a, &c), &p)| ntt_math::mul_mod(a, c, p))
            .collect();
        assert_eq!(b.reconstruct(&prod).to_u128(), Some(x as u128 * y as u128));
    }

    #[test]
    fn log_q_scales_with_np() {
        let b1 = basis(2);
        let b2 = basis(4);
        assert!((b1.log_q() - 118.0).abs() < 1.5); // 2 x 59-bit
        assert!((b2.log_q() - 236.0).abs() < 2.0);
    }

    #[test]
    fn rejects_bad_bases() {
        assert_eq!(RnsBasis::new(vec![]).unwrap_err(), RnsError::Empty);
        assert_eq!(
            RnsBasis::new(vec![15]).unwrap_err(),
            RnsError::NotPrime { p: 15 }
        );
        let p = ntt_math::ntt_prime(59, 1 << 12).unwrap();
        assert_eq!(
            RnsBasis::new(vec![p, p]).unwrap_err(),
            RnsError::Duplicate { p }
        );
    }
}
