//! Bit-reversal permutation.
//!
//! The Cooley–Tukey algorithm produces output in bit-reversed order; HE
//! pipelines avoid ever materializing the permutation (element-wise products
//! commute with it), but the reference code and the Stockham cross-checks
//! need it explicitly.

/// Reverse the lowest `bits` bits of `i`.
///
/// # Example
///
/// ```
/// assert_eq!(ntt_core::bitrev::bit_reverse(0b001, 3), 0b100);
/// assert_eq!(ntt_core::bitrev::bit_reverse(0b110, 3), 0b011);
/// ```
#[inline]
pub fn bit_reverse(i: usize, bits: u32) -> usize {
    if bits == 0 {
        0
    } else {
        i.reverse_bits() >> (usize::BITS - bits)
    }
}

/// Apply the bit-reversal permutation to `data` in place.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn bit_reverse_permute<T>(data: &mut [T]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "length must be a power of two");
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = bit_reverse(i, bits);
        if i < j {
            data.swap(i, j);
        }
    }
}

/// Return a new vector with elements in bit-reversed positions.
pub fn bit_reversed<T: Clone>(data: &[T]) -> Vec<T> {
    let mut out = data.to_vec();
    bit_reverse_permute(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_is_involution() {
        for bits in 1..16 {
            for i in 0..(1usize << bits).min(256) {
                assert_eq!(bit_reverse(bit_reverse(i, bits), bits), i);
            }
        }
    }

    #[test]
    fn reverse_zero_bits() {
        assert_eq!(bit_reverse(0, 0), 0);
    }

    #[test]
    fn permute_known_order() {
        let mut v: Vec<usize> = (0..8).collect();
        bit_reverse_permute(&mut v);
        assert_eq!(v, vec![0, 4, 2, 6, 1, 5, 3, 7]);
    }

    #[test]
    fn permute_twice_is_identity() {
        let orig: Vec<u32> = (0..64).map(|x| x * 3 + 1).collect();
        let mut v = orig.clone();
        bit_reverse_permute(&mut v);
        bit_reverse_permute(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut v = vec![1, 2, 3];
        bit_reverse_permute(&mut v);
    }
}
