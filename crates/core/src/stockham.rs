//! Out-of-place self-sorting Stockham NTT (paper Algorithm 3).
//!
//! The Stockham algorithm folds the permutation into each stage's store
//! pattern: natural-order input, natural-order output, **no** bit-reversal
//! pass — at the cost of ping-ponging between two buffers (out-of-place).
//! The paper chooses Cooley–Tukey instead because HE never needs sorted
//! outputs and the doubled working set hurts cache behaviour (§IV); we
//! implement Stockham to reproduce that comparison.
//!
//! This is a decimation-in-frequency Stockham over the cyclic transform
//! with the negacyclic `psi^n` pre-twist merged into the first stage's
//! loads, so it computes exactly the same function as
//! [`crate::ct::ntt`] followed by a bit-reversal.

use crate::table::NttTable;
use ntt_math::modops::{add_mod, mul_mod, sub_mod};

/// Forward negacyclic NTT, natural-order input **and** output.
///
/// Returns a fresh vector (Stockham is inherently out-of-place).
///
/// # Panics
///
/// Panics if `a.len() != table.n()`.
///
/// # Example
///
/// ```
/// use ntt_core::{ct, stockham, NttTable, bitrev};
/// let t = NttTable::new_with_bits(64, 60)?;
/// let a: Vec<u64> = (0..64).collect();
/// let sorted = stockham::stockham_ntt(&a, &t);
/// let mut ct_out = a.clone();
/// ct::ntt(&mut ct_out, &t);
/// assert_eq!(sorted, bitrev::bit_reversed(&ct_out));
/// # Ok::<(), ntt_math::root::RootError>(())
/// ```
pub fn stockham_ntt(a: &[u64], table: &NttTable) -> Vec<u64> {
    assert_eq!(a.len(), table.n(), "input length must equal table N");
    let n = a.len();
    let p = table.modulus();
    let psi = table.psi();
    let omega = mul_mod(psi, psi, p); // primitive N-th root for the cyclic part

    // Pre-twist: x[n] <- a[n] * psi^n merges the negacyclic factor.
    let mut src: Vec<u64> = {
        let mut acc = 1u64;
        a.iter()
            .map(|&x| {
                let v = mul_mod(x % p, acc, p);
                acc = mul_mod(acc, psi, p);
                v
            })
            .collect()
    };
    let mut dst = vec![0u64; n];

    // DIF Stockham: `l` sub-blocks halve, `m` strides double each stage.
    let mut l = n / 2;
    let mut m = 1usize;
    while l >= 1 {
        for j in 0..l {
            // Twiddle for this block: omega^(j*m).
            let w = ntt_math::pow_mod(omega, (j * m) as u64, p);
            for k in 0..m {
                let c0 = src[k + j * m];
                let c1 = src[k + j * m + l * m];
                dst[k + 2 * j * m] = add_mod(c0, c1, p);
                dst[k + 2 * j * m + m] = mul_mod(sub_mod(c0, c1, p), w, p);
            }
        }
        std::mem::swap(&mut src, &mut dst);
        l /= 2;
        m *= 2;
    }
    src
}

/// Count of butterfly operations a Stockham N-point NTT performs
/// (identical to Cooley–Tukey: `N/2 · log2 N`).
pub fn butterfly_count(n: usize) -> usize {
    n / 2 * n.trailing_zeros() as usize
}

/// Working-set bytes: Stockham needs both ping and pong buffers
/// (`2 · N · 8`), the out-of-place cost the paper cites against it.
pub fn working_set_bytes(n: usize) -> usize {
    2 * n * 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrev::bit_reversed;
    use crate::ct;
    use crate::naive::naive_ntt;

    fn table(n: usize) -> NttTable {
        NttTable::new_with_bits(n, 60).unwrap()
    }

    #[test]
    fn matches_naive_in_natural_order() {
        for n in [2usize, 4, 16, 64, 256] {
            let t = table(n);
            let a: Vec<u64> = (0..n as u64).map(|i| i * 5 + 2).collect();
            let got = stockham_ntt(&a, &t);
            let want = naive_ntt(&a, t.psi(), t.modulus());
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn equals_ct_up_to_bit_reversal() {
        let n = 1024;
        let t = table(n);
        let a: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(2654435761) % t.modulus())
            .collect();
        let sorted = stockham_ntt(&a, &t);
        let mut ct_out = a.clone();
        ct::ntt(&mut ct_out, &t);
        assert_eq!(sorted, bit_reversed(&ct_out));
    }

    #[test]
    fn counters() {
        assert_eq!(butterfly_count(8), 12);
        assert_eq!(butterfly_count(1 << 17), (1 << 16) * 17);
        assert_eq!(working_set_bytes(1 << 17), 2 << 20);
    }
}
