//! Bootstrappable HE parameter presets from the paper.
//!
//! The paper's evaluation spans `N = 2^14 … 2^17` with `np = 21` 60-bit
//! primes as the main configuration (§VI, Table II), `np` up to 45 for the
//! batching studies (Fig. 1, Fig. 13), and a `Q = 2^1200` word-size
//! ablation (40 × 30-bit vs 20 × 60-bit primes, §IV).

use crate::rns::{RnsBasis, RnsError};

/// An HE parameter set: polynomial degree, prime size, and prime count.
///
/// # Example
///
/// ```
/// use ntt_core::HeParams;
/// let params = HeParams::paper_default(17); // N = 2^17, np = 21, 60-bit
/// assert_eq!(params.n(), 1 << 17);
/// assert_eq!(params.np(), 21);
/// let basis = params.basis()?;
/// assert!((basis.log_q() - 21.0 * 60.0).abs() < 25.0);
/// # Ok::<(), ntt_core::rns::RnsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HeParams {
    log_n: u32,
    prime_bits: u32,
    np: usize,
}

impl HeParams {
    /// Arbitrary parameter set.
    ///
    /// # Panics
    ///
    /// Panics if `log_n` is not in `1..=20`, `prime_bits` not in `20..=62`,
    /// or `np == 0`.
    pub fn new(log_n: u32, prime_bits: u32, np: usize) -> Self {
        assert!((1..=20).contains(&log_n), "log_n out of supported range");
        assert!(
            (20..=62).contains(&prime_bits),
            "prime_bits out of supported range"
        );
        assert!(np > 0, "need at least one prime");
        Self {
            log_n,
            prime_bits,
            np,
        }
    }

    /// The paper's main configuration for a given `log N ∈ 14..=17`:
    /// `np = 21` primes of 60 bits (`log Q ≈ 1260`, bootstrappable scale).
    pub fn paper_default(log_n: u32) -> Self {
        Self::new(log_n, 60, 21)
    }

    /// The Fig. 1 configuration: `N = 2^17`, `np = 45`.
    pub fn fig1() -> Self {
        Self::new(17, 60, 45)
    }

    /// A batching sweep point (Fig. 3 / Fig. 13): `N = 2^17`, variable `np`.
    pub fn with_np(np: usize) -> Self {
        Self::new(17, 60, np)
    }

    /// Word-size ablation (§IV): `Q ≈ 2^1200` from 30-bit primes (np = 40).
    pub fn wordsize_30bit() -> Self {
        Self::new(17, 30, 40)
    }

    /// Word-size ablation (§IV): `Q ≈ 2^1200` from 60-bit primes (np = 20).
    pub fn wordsize_60bit() -> Self {
        Self::new(17, 60, 20)
    }

    /// Polynomial degree `N`.
    #[inline]
    pub fn n(&self) -> usize {
        1 << self.log_n
    }

    /// `log2 N`.
    #[inline]
    pub fn log_n(&self) -> u32 {
        self.log_n
    }

    /// Prime word size in bits.
    #[inline]
    pub fn prime_bits(&self) -> u32 {
        self.prime_bits
    }

    /// Number of RNS primes `np`.
    #[inline]
    pub fn np(&self) -> usize {
        self.np
    }

    /// Nominal `log2 Q = np · prime_bits` (exact value via [`Self::basis`]).
    pub fn nominal_log_q(&self) -> u32 {
        self.np as u32 * self.prime_bits
    }

    /// Generate the RNS prime chain (largest suitable primes, descending).
    ///
    /// # Errors
    ///
    /// Propagates [`RnsError`] — practically impossible for supported
    /// ranges, but kept fallible for API honesty.
    pub fn basis(&self) -> Result<RnsBasis, RnsError> {
        RnsBasis::new(ntt_math::ntt_primes(
            self.prime_bits,
            2 * self.n() as u64,
            self.np,
        ))
    }

    /// Bytes of one RNS polynomial (`np · N` 8-byte residues) — the
    /// "dozens of megabytes" working set of §III-B.
    pub fn polynomial_bytes(&self) -> usize {
        self.np * self.n() * 8
    }

    /// Bytes of all forward twiddle tables with Shoup companions
    /// (`2 · N · np` words) — the table pressure of §IV.
    pub fn twiddle_table_bytes(&self) -> usize {
        self.np * self.n() * 16
    }
}

impl std::fmt::Display for HeParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "N=2^{}, np={}, {}-bit primes (logQ≈{})",
            self.log_n,
            self.np,
            self.prime_bits,
            self.nominal_log_q()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let p = HeParams::paper_default(14);
        assert_eq!(p.n(), 1 << 14);
        assert_eq!(p.np(), 21);
        assert_eq!(p.prime_bits(), 60);
        assert_eq!(p.nominal_log_q(), 1260);
    }

    #[test]
    fn working_set_reaches_dozens_of_megabytes() {
        // §III-B: "the size of a polynomial reaches dozens of megabytes".
        let p = HeParams::paper_default(17);
        let mb = p.polynomial_bytes() as f64 / (1 << 20) as f64;
        assert!(mb > 20.0, "expected dozens of MB, got {mb}");
    }

    #[test]
    fn twiddle_tables_exceed_on_chip_memory() {
        // §I: tables "surpass several dozens of megabytes" and cannot fit
        // in on-chip memory (Titan V: 256 KB regs + 128 KB SMEM per SM).
        let p = HeParams::paper_default(17);
        assert!(p.twiddle_table_bytes() > 40 << 20);
    }

    #[test]
    fn wordsize_ablation_matches_q() {
        let p30 = HeParams::wordsize_30bit();
        let p60 = HeParams::wordsize_60bit();
        assert_eq!(p30.nominal_log_q(), p60.nominal_log_q());
        // 30-bit path has twice the transforms (the paper's §IV trade-off).
        assert_eq!(p30.np(), 2 * p60.np());
    }

    #[test]
    fn basis_generation_exact_log_q() {
        let p = HeParams::new(12, 59, 4);
        let b = p.basis().unwrap();
        assert_eq!(b.len(), 4);
        assert!((b.log_q() - 4.0 * 59.0).abs() < 1.0);
    }

    #[test]
    fn display_is_informative() {
        let s = HeParams::paper_default(17).to_string();
        assert!(s.contains("N=2^17") && s.contains("np=21"));
    }

    #[test]
    #[should_panic(expected = "log_n out of supported range")]
    fn rejects_huge_n() {
        HeParams::new(25, 60, 1);
    }
}
