//! Fused lazy-reduction execution engine for batched (RNS) NTTs.
//!
//! The transforms in [`crate::ct`] are single-shot: every public entry
//! re-reduces after each stage and the ring-level multiply used to clone
//! both operands and allocate per call. This module supplies the missing
//! execution layer the paper's GPU pipeline implies (§IV–§V):
//!
//! * [`NttExecutor`] — runs polynomial multiplication as **one fused lazy
//!   pipeline**: `ntt_lazy → lazy pointwise (< 2p) → intt_lazy`, with
//!   exactly one final reduction (folded into the `N⁻¹` stage of the
//!   inverse transform) instead of a reduction per stage.
//! * [`Workspace`] — grow-only scratch buffers, so the steady-state
//!   multiply path performs **zero heap allocation** (verified by the
//!   [`Workspace::reallocs`] counter).
//! * Batched entry points ([`NttExecutor::forward_rows`],
//!   [`NttExecutor::forward_polys`], …) that transform all RNS limbs of
//!   one or several polynomials in a single call, amortizing dispatch the
//!   way the paper amortizes kernel launches over the `np` batch.
//! * [`ThreadPolicy`] — residue-parallel execution across RNS limbs with
//!   `std::thread::scope`, tunable via the `NTT_WARP_THREADS` environment
//!   variable. Limbs are arithmetically independent (each is reduced mod
//!   its own prime), so the output is **bit-identical for every thread
//!   count**.
//!
//! Lazy-domain invariants maintained end to end (`p < 2^62`):
//!
//! ```text
//! input (canonical, < p)
//!   → ntt_lazy        : operands < 4p, outputs < 4p   (Harvey CT butterfly)
//!   → lazy pointwise  : operands folded < 2p, Barrett product < 2p
//!   → intt_lazy       : GS butterfly keeps < 2p, final N⁻¹ Shoup
//!                       multiplication reduces fully  (< p)
//! ```
//!
//! Moduli at or above the `2^62` lazy bound fall back to the strict path
//! transparently.
//!
//! # Example
//!
//! ```
//! use ntt_core::engine::{NttExecutor, ThreadPolicy};
//! use ntt_core::{NegacyclicRing, Polynomial};
//!
//! let ring = NegacyclicRing::new_with_bits(8, 60)?;
//! let mut ex = NttExecutor::new(ThreadPolicy::Single);
//! let a = Polynomial::from_coeffs(vec![1, 1], 8);
//! let c = ex.negacyclic_multiply(&ring, &a, &a);
//! assert_eq!(&c.coeffs()[..3], &[1, 2, 1]); // (1 + x)^2
//! # Ok::<(), ntt_core::RingError>(())
//! ```

use crate::backend::PointwiseStrategy;
use crate::ct;
use crate::poly::{NegacyclicRing, Polynomial, Representation, RnsPoly, RnsRing};
use crate::table::NttTable;
use ntt_math::shoup::MAX_LAZY_MODULUS;

/// How many OS threads an executor may use for residue-parallel batches.
///
/// Resolution happens per call ([`ThreadPolicy::resolve`]) and is capped by
/// the number of independent jobs, so small batches never pay spawn
/// overhead for idle threads. Output never depends on the resolved count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThreadPolicy {
    /// Everything on the calling thread (no spawns at all).
    Single,
    /// At most this many threads (values 0/1 behave like `Auto`/`Single`).
    Fixed(usize),
    /// Use [`std::thread::available_parallelism`].
    #[default]
    Auto,
}

impl ThreadPolicy {
    /// Policy from the `NTT_WARP_THREADS` environment variable:
    /// unset / empty / `auto` / `0` → [`ThreadPolicy::Auto`], `1` →
    /// [`ThreadPolicy::Single`], `k` → [`ThreadPolicy::Fixed`]`(k)`.
    /// Unparsable values fall back to `Auto`.
    pub fn from_env() -> Self {
        match std::env::var("NTT_WARP_THREADS") {
            Ok(s) => Self::parse(&s),
            Err(_) => ThreadPolicy::Auto,
        }
    }

    /// Parse the `NTT_WARP_THREADS` syntax (see [`ThreadPolicy::from_env`]).
    pub fn parse(s: &str) -> Self {
        let s = s.trim();
        if s.is_empty() || s.eq_ignore_ascii_case("auto") {
            return ThreadPolicy::Auto;
        }
        match s.parse::<usize>() {
            Ok(0) | Err(_) => ThreadPolicy::Auto,
            Ok(1) => ThreadPolicy::Single,
            Ok(k) => ThreadPolicy::Fixed(k),
        }
    }

    /// The thread count to use for `jobs` independent jobs (always ≥ 1,
    /// never more than `jobs`).
    pub fn resolve(&self, jobs: usize) -> usize {
        let auto = || {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let cap = match self {
            ThreadPolicy::Single => 1,
            ThreadPolicy::Fixed(0) => auto(),
            ThreadPolicy::Fixed(k) => *k,
            ThreadPolicy::Auto => auto(),
        };
        cap.min(jobs).max(1)
    }
}

/// Minimum 64-bit words of work per spawned thread. Spawning and joining
/// an OS thread costs tens of microseconds — comparable to a full 2^11
/// -point lazy NTT — so batches smaller than this per thread run serially
/// even under `Auto`/`Fixed` policies (output is identical either way).
const MIN_WORDS_PER_THREAD: usize = 1 << 14;

/// Threads to actually use: the policy's resolution, further capped so
/// each spawned thread gets at least [`MIN_WORDS_PER_THREAD`] of work.
fn effective_threads(policy: ThreadPolicy, jobs: usize, total_words: usize) -> usize {
    policy
        .resolve(jobs)
        .min((total_words / MIN_WORDS_PER_THREAD).max(1))
}

/// Grow-only scratch buffers backing an executor.
///
/// Buffers are sized to the largest `level × N` seen and then reused; the
/// [`Workspace::reallocs`] counter exposes every growth event so tests can
/// assert the steady-state multiply path allocates nothing.
#[derive(Debug, Default)]
pub struct Workspace {
    a: Vec<u64>,
    b: Vec<u64>,
    reallocs: usize,
}

impl Workspace {
    /// Two disjoint scratch slices of `words` elements each.
    fn pair(&mut self, words: usize) -> (&mut [u64], &mut [u64]) {
        if self.a.len() < words {
            self.a.resize(words, 0);
            self.reallocs += 1;
        }
        if self.b.len() < words {
            self.b.resize(words, 0);
            self.reallocs += 1;
        }
        (&mut self.a[..words], &mut self.b[..words])
    }

    /// Number of buffer growth events since construction. Stable across
    /// calls once the workspace has warmed up to the largest shape.
    #[inline]
    pub fn reallocs(&self) -> usize {
        self.reallocs
    }

    /// Current scratch capacity in 64-bit words (both buffers).
    #[inline]
    pub fn capacity_words(&self) -> usize {
        self.a.len() + self.b.len()
    }
}

/// Run `work(row_index, row)` over every `n`-word row of `data`, split
/// into contiguous per-thread chunks. Allocation-free: threads receive
/// disjoint sub-slices straight from `chunks_mut`. Rows must be
/// independent; the result is deterministic regardless of the split.
fn run_rows(threads: usize, n: usize, data: &mut [u64], work: impl Fn(usize, &mut [u64]) + Sync) {
    let rows = data.len() / n;
    if threads <= 1 || rows <= 1 {
        for (i, row) in data.chunks_exact_mut(n).enumerate() {
            work(i, row);
        }
        return;
    }
    let per = rows.div_ceil(threads);
    std::thread::scope(|s| {
        for (c, chunk) in data.chunks_mut(per * n).enumerate() {
            let work = &work;
            s.spawn(move || {
                for (k, row) in chunk.chunks_exact_mut(n).enumerate() {
                    work(c * per + k, row);
                }
            });
        }
    });
}

/// One limb of a fused negacyclic multiply: copy the canonical operand
/// rows into scratch, transform lazily, lazy-pointwise into `out`, and
/// inverse-transform — a single full reduction at the very end.
///
/// `strategy` selects the pointwise reduction (plan-time choice); `None`
/// uses the default Barrett lazy product. Every strategy yields the same
/// canonical result — the product mod p is exact — so the choice is purely
/// a performance knob.
fn fused_limb(
    ring: &NegacyclicRing,
    strategy: Option<&PointwiseStrategy>,
    a: &[u64],
    b: &[u64],
    wa: &mut [u64],
    wb: &mut [u64],
    out: &mut [u64],
) {
    let table = ring.table();
    let p = table.modulus();
    wa.copy_from_slice(a);
    wb.copy_from_slice(b);
    if let Some(h) = ring.hier() {
        // Bootstrapping-scale limb: the 4-step plan keeps every sub-pass
        // cache-resident. Operands stay canonical end to end (the plan is
        // canonical-in/canonical-out), so the pointwise product runs strict.
        h.forward(wa);
        h.forward(wb);
        match strategy {
            Some(PointwiseStrategy::Montgomery(m)) => {
                for (o, (&x, &y)) in out.iter_mut().zip(wa.iter().zip(wb.iter())) {
                    *o = m.mul_plain(x, y);
                }
            }
            _ => {
                out.copy_from_slice(wa);
                ct::pointwise_assign(out, wb, p);
            }
        }
        h.inverse(out);
    } else if p < MAX_LAZY_MODULUS {
        ct::ntt_lazy(wa, table); // < 4p
        ct::ntt_lazy(wb, table); // < 4p
        match strategy {
            Some(PointwiseStrategy::Montgomery(m)) => {
                // Fold the [0, 4p) lazy operands to [0, 2p), then reduce via
                // two REDC passes to a canonical product (< p < 2p, a valid
                // lazy-domain input for `intt_lazy`).
                let two_p = 2 * p;
                for (o, (&x, &y)) in out.iter_mut().zip(wa.iter().zip(wb.iter())) {
                    let u = if x >= two_p { x - two_p } else { x };
                    let v = if y >= two_p { y - two_p } else { y };
                    *o = m.mul_plain(u, v);
                }
            }
            _ => ct::pointwise_lazy_into(out, wa, wb, p), // < 2p
        }
        ct::intt_lazy(out, table); // < p (final N^-1 stage reduces)
    } else {
        // Strict fallback for moduli at/above the 2^62 lazy bound.
        ct::ntt(wa, table);
        ct::ntt(wb, table);
        out.copy_from_slice(wa);
        ct::pointwise_assign(out, wb, p);
        ct::intt(out, table);
    }
}

/// Forward-transform one canonical row in place (canonical out).
fn forward_row(table: &NttTable, row: &mut [u64]) {
    let p = table.modulus();
    if p < MAX_LAZY_MODULUS {
        ct::ntt_lazy(row, table);
        ct::reduce_from_lazy(row, p);
    } else {
        ct::ntt(row, table);
    }
}

/// Inverse-transform one canonical row in place (canonical out).
fn inverse_row(table: &NttTable, row: &mut [u64]) {
    if table.modulus() < MAX_LAZY_MODULUS {
        ct::intt_lazy(row, table); // already fully reduced
    } else {
        ct::intt(row, table);
    }
}

/// Forward-transform one row under a ring: bootstrapping-scale rings go
/// through the hierarchical 4-step plan, the rest through the flat lazy
/// kernel. Bit-identical either way (canonical in/out).
fn forward_ring_row(ring: &NegacyclicRing, row: &mut [u64]) {
    match ring.hier() {
        Some(h) => h.forward(row),
        None => forward_row(ring.table(), row),
    }
}

/// Inverse counterpart of [`forward_ring_row`].
fn inverse_ring_row(ring: &NegacyclicRing, row: &mut [u64]) {
    match ring.hier() {
        Some(h) => h.inverse(row),
        None => inverse_row(ring.table(), row),
    }
}

/// The fused-pipeline executor: a [`ThreadPolicy`] plus a reusable
/// [`Workspace`].
///
/// One executor per thread is the intended shape (they are cheap — scratch
/// grows on first use); module-level helpers route the ring APIs through a
/// thread-local default instance (see [`with_default_executor`]).
#[derive(Debug, Default)]
pub struct NttExecutor {
    policy: ThreadPolicy,
    ws: Workspace,
}

impl NttExecutor {
    /// Executor with an explicit thread policy.
    pub fn new(policy: ThreadPolicy) -> Self {
        Self {
            policy,
            ws: Workspace::default(),
        }
    }

    /// Executor configured from `NTT_WARP_THREADS` (see
    /// [`ThreadPolicy::from_env`]).
    pub fn from_env() -> Self {
        Self::new(ThreadPolicy::from_env())
    }

    /// The thread policy in force.
    #[inline]
    pub fn policy(&self) -> ThreadPolicy {
        self.policy
    }

    /// The scratch workspace (for allocation accounting).
    #[inline]
    pub fn workspace(&self) -> &Workspace {
        &self.ws
    }

    /// Fused single-prime negacyclic product into a caller-provided output
    /// slice. Zero allocation once the workspace is warm.
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from the ring degree.
    pub fn negacyclic_multiply_into(
        &mut self,
        ring: &NegacyclicRing,
        a: &[u64],
        b: &[u64],
        out: &mut [u64],
    ) {
        let n = ring.degree();
        assert_eq!(a.len(), n, "degree mismatch (lhs)");
        assert_eq!(b.len(), n, "degree mismatch (rhs)");
        assert_eq!(out.len(), n, "degree mismatch (out)");
        let (wa, wb) = self.ws.pair(n);
        fused_limb(ring, None, a, b, wa, wb, out);
    }

    /// Fused single-prime negacyclic product (allocates only the result).
    pub fn negacyclic_multiply(
        &mut self,
        ring: &NegacyclicRing,
        a: &Polynomial,
        b: &Polynomial,
    ) -> Polynomial {
        let mut out = Polynomial::zero(ring.degree());
        self.negacyclic_multiply_into(ring, a.coeffs(), b.coeffs(), out.coeffs_mut());
        out
    }

    /// Fused RNS negacyclic product into a caller-provided output
    /// polynomial: all limbs go through the lazy pipeline, residue-parallel
    /// under the thread policy. Zero allocation once the workspace is warm.
    ///
    /// Inputs must be in coefficient form; the output is written in
    /// coefficient form at the operands' level.
    ///
    /// # Panics
    ///
    /// Panics on level/representation/shape mismatches.
    pub fn rns_multiply_into(
        &mut self,
        ring: &RnsRing,
        a: &RnsPoly,
        b: &RnsPoly,
        out: &mut RnsPoly,
    ) {
        let n = ring.degree();
        let level = a.level();
        assert_eq!(level, b.level(), "level mismatch");
        assert_eq!(
            a.repr(),
            Representation::Coefficient,
            "lhs must be coefficients"
        );
        assert_eq!(
            b.repr(),
            Representation::Coefficient,
            "rhs must be coefficients"
        );
        assert_eq!(out.degree(), n, "output degree mismatch");
        assert_eq!(out.level(), level, "output level mismatch");
        self.multiply_rows_of(ring, level, a.flat(), b.flat(), out.flat_mut(), None);
        out.set_repr(Representation::Coefficient);
    }

    /// Fused negacyclic products over flat `rows × N` buffers, where row
    /// `r` is reduced mod prime `r % level` — the batched backend entry
    /// point: a single [`crate::backend::LimbBatch`]-shaped buffer may hold
    /// several stacked polynomials (e.g. a key-switch buffer of digits).
    /// Residue-parallel under the thread policy; zero allocation once the
    /// workspace is warm.
    ///
    /// `strategies` optionally supplies the plan's per-prime pointwise
    /// reduction choice (indexed by prime); `None` means Barrett.
    ///
    /// # Panics
    ///
    /// Panics if the buffers disagree in length, are not whole rows, or if
    /// `level` exceeds the ring's prime count.
    pub fn multiply_rows_of(
        &mut self,
        ring: &RnsRing,
        level: usize,
        a: &[u64],
        b: &[u64],
        out: &mut [u64],
        strategies: Option<&[PointwiseStrategy]>,
    ) {
        let n = ring.degree();
        assert_eq!(a.len(), out.len(), "operand/output length mismatch");
        assert_eq!(b.len(), out.len(), "operand/output length mismatch");
        assert_eq!(out.len() % n, 0, "flat buffer must be rows × N");
        assert!(level >= 1 && level <= ring.np(), "invalid level");
        let rows = out.len() / n;
        let strat = |i: usize| strategies.map(|s| &s[i % level]);

        // Each limb touches ~5N words (two operand copies, two transforms,
        // one output); weigh the spawn cutoff by the scratch volume.
        let threads = effective_threads(self.policy, rows, 3 * rows * n);
        let (wa, wb) = self.ws.pair(rows * n);
        if threads <= 1 {
            let limbs = out
                .chunks_exact_mut(n)
                .zip(wa.chunks_exact_mut(n))
                .zip(wb.chunks_exact_mut(n));
            for (i, ((o, sa), sb)) in limbs.enumerate() {
                let limb_ring = ring.ring(i % level);
                let (ar, br) = (&a[i * n..(i + 1) * n], &b[i * n..(i + 1) * n]);
                fused_limb(limb_ring, strat(i), ar, br, sa, sb, o);
            }
        } else {
            // Contiguous per-thread spans over the three flat buffers —
            // no job list is materialized, the steady state stays
            // allocation-free (spawned threads are the only OS cost).
            let per = rows.div_ceil(threads);
            let span = per * n;
            std::thread::scope(|s| {
                let spans = out
                    .chunks_mut(span)
                    .zip(wa.chunks_mut(span))
                    .zip(wb.chunks_mut(span));
                for (c, ((oc, ac), bc)) in spans.enumerate() {
                    let strat = &strat;
                    s.spawn(move || {
                        let limbs = oc
                            .chunks_exact_mut(n)
                            .zip(ac.chunks_exact_mut(n))
                            .zip(bc.chunks_exact_mut(n));
                        for (k, ((o, sa), sb)) in limbs.enumerate() {
                            let i = c * per + k;
                            let limb_ring = ring.ring(i % level);
                            let (ar, br) = (&a[i * n..(i + 1) * n], &b[i * n..(i + 1) * n]);
                            fused_limb(limb_ring, strat(i), ar, br, sa, sb, o);
                        }
                    });
                }
            });
        }
    }

    /// Fused RNS negacyclic product (allocates only the result).
    pub fn rns_multiply(&mut self, ring: &RnsRing, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        let mut out = RnsPoly::zero_at_level(ring, a.level());
        self.rns_multiply_into(ring, a, b, &mut out);
        out
    }

    /// Forward-NTT `rows` contiguous limbs held in a flat `rows × N`
    /// buffer, limb `i` under prime `i` of `ring` — the batched entry point
    /// ([`RnsPoly`] stores its residues exactly like this). Canonical in,
    /// canonical out; residue-parallel under the thread policy.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a whole number of rows or has more rows than
    /// the ring has primes.
    pub fn forward_rows(&mut self, ring: &RnsRing, data: &mut [u64]) {
        let rows = data.len() / ring.degree();
        assert!(rows <= ring.np(), "more rows than primes");
        self.transform_rows_of(ring, rows.max(1), data, true);
    }

    /// Inverse counterpart of [`NttExecutor::forward_rows`].
    pub fn inverse_rows(&mut self, ring: &RnsRing, data: &mut [u64]) {
        let rows = data.len() / ring.degree();
        assert!(rows <= ring.np(), "more rows than primes");
        self.transform_rows_of(ring, rows.max(1), data, false);
    }

    /// Transform a flat `rows × N` buffer where row `r` is reduced mod
    /// prime `r % level` — several polynomials of `level` limbs stacked
    /// back to back (the key-switch buffer-of-digits layout). Canonical in,
    /// canonical out; residue-parallel under the thread policy.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a whole number of rows, the row count is not
    /// a multiple of `level`, or `level` exceeds the ring's prime count.
    pub fn transform_rows_of(
        &mut self,
        ring: &RnsRing,
        level: usize,
        data: &mut [u64],
        forward: bool,
    ) {
        let n = ring.degree();
        assert_eq!(data.len() % n, 0, "flat buffer must be rows × N");
        assert!(level >= 1 && level <= ring.np(), "invalid level");
        let rows = data.len() / n;
        assert_eq!(rows % level, 0, "rows must be whole polynomials");
        let threads = effective_threads(self.policy, rows, data.len());
        run_rows(threads, n, data, |i, row| {
            let limb_ring = ring.ring(i % level);
            if forward {
                forward_ring_row(limb_ring, row);
            } else {
                inverse_ring_row(limb_ring, row);
            }
        });
    }

    /// Transform **several polynomials** to evaluation form in one batched,
    /// residue-parallel call (polynomials already in evaluation form are
    /// left untouched). This is the multi-polynomial entry point: all limbs
    /// of all polynomials form a single job pool.
    pub fn forward_polys(&mut self, ring: &RnsRing, polys: &mut [&mut RnsPoly]) {
        self.transform_polys(ring, polys, true);
    }

    /// Inverse counterpart of [`NttExecutor::forward_polys`] (to
    /// coefficient form).
    pub fn inverse_polys(&mut self, ring: &RnsRing, polys: &mut [&mut RnsPoly]) {
        self.transform_polys(ring, polys, false);
    }

    fn transform_polys(&mut self, ring: &RnsRing, polys: &mut [&mut RnsPoly], forward: bool) {
        let n = ring.degree();
        let skip = if forward {
            Representation::Evaluation
        } else {
            Representation::Coefficient
        };
        // Rows span several polynomials, so this batcher materializes one
        // (index, row-reference) entry per limb — a pointer-sized list,
        // the only allocation in the call.
        let mut rows: Vec<(usize, &mut [u64])> = Vec::new();
        for poly in polys.iter_mut() {
            if poly.repr() == skip {
                continue;
            }
            rows.extend(poly.flat_mut().chunks_mut(n).enumerate());
        }
        let threads = effective_threads(self.policy, rows.len(), rows.len() * n);
        let work = |i: usize, row: &mut [u64]| {
            let limb_ring = ring.ring(i);
            if forward {
                forward_ring_row(limb_ring, row);
            } else {
                inverse_ring_row(limb_ring, row);
            }
        };
        if threads <= 1 {
            for (i, row) in rows {
                work(i, row);
            }
        } else {
            let per = rows.len().div_ceil(threads);
            std::thread::scope(|s| {
                for chunk in rows.chunks_mut(per) {
                    let work = &work;
                    s.spawn(move || {
                        for (i, row) in chunk.iter_mut() {
                            work(*i, row);
                        }
                    });
                }
            });
        }
        let done = if forward {
            Representation::Evaluation
        } else {
            Representation::Coefficient
        };
        for poly in polys.iter_mut() {
            poly.set_repr(done);
        }
    }
}

/// Run `f` with this thread's default executor (policy from
/// `NTT_WARP_THREADS`, workspace persisted across calls). The executor is
/// the one inside the thread-local default [`crate::backend::CpuBackend`]
/// (see [`crate::backend::with_default_backend`]), so ring-level APIs and
/// backend calls share a single workspace per thread.
///
/// `f` must not itself call `with_default_executor` or
/// [`crate::backend::with_default_backend`] (the backend is held in a
/// `RefCell`); engine internals only call the stateless kernels in
/// [`crate::ct`], so routing ring APIs through here is re-entrancy-safe.
pub fn with_default_executor<R>(f: impl FnOnce(&mut NttExecutor) -> R) -> R {
    crate::backend::with_default_backend(|be| f(be.executor_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::negacyclic_convolution;

    fn rns_ring(n: usize, bits: u32, np: usize) -> RnsRing {
        RnsRing::new(n, ntt_math::ntt_primes(bits, 2 * n as u64, np)).unwrap()
    }

    fn random_poly(ring: &RnsRing, seed: u64) -> RnsPoly {
        let mut x = RnsPoly::zero(ring);
        for i in 0..ring.np() {
            let p = ring.basis().primes()[i];
            for (j, v) in x.row_mut(i).iter_mut().enumerate() {
                *v = (seed ^ ((i as u64) << 32))
                    .wrapping_mul(0x2545_F491_4F6C_DD1D)
                    .wrapping_add((j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    % p;
            }
        }
        x
    }

    /// The pre-engine strict path, kept as the test oracle.
    fn strict_rns_multiply(ring: &RnsRing, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        let mut out = RnsPoly::zero_at_level(ring, a.level());
        for i in 0..a.level() {
            let t = ring.ring(i).table();
            let mut na = a.row(i).to_vec();
            let mut nb = b.row(i).to_vec();
            ct::ntt(&mut na, t);
            ct::ntt(&mut nb, t);
            let mut prod: Vec<u64> = na
                .iter()
                .zip(&nb)
                .map(|(&x, &y)| ntt_math::mul_mod(x, y, t.modulus()))
                .collect();
            ct::intt(&mut prod, t);
            out.row_mut(i).copy_from_slice(&prod);
        }
        out
    }

    #[test]
    fn fused_single_prime_matches_naive() {
        let ring = NegacyclicRing::new_with_bits(32, 60).unwrap();
        let p = ring.modulus();
        let a = Polynomial::from_coeffs((1..=32).collect(), 32);
        let b = Polynomial::from_coeffs((0..32).map(|i| i * 3 + 1).collect(), 32);
        let mut ex = NttExecutor::new(ThreadPolicy::Single);
        let c = ex.negacyclic_multiply(&ring, &a, &b);
        assert_eq!(
            c.coeffs(),
            &negacyclic_convolution(a.coeffs(), b.coeffs(), p)[..]
        );
    }

    #[test]
    fn fused_rns_multiply_matches_strict_path() {
        let ring = rns_ring(64, 59, 4);
        let a = random_poly(&ring, 0xA5A5);
        let b = random_poly(&ring, 0x5A5A);
        let strict = strict_rns_multiply(&ring, &a, &b);
        for policy in [
            ThreadPolicy::Single,
            ThreadPolicy::Fixed(3),
            ThreadPolicy::Auto,
        ] {
            let mut ex = NttExecutor::new(policy);
            let fused = ex.rns_multiply(&ring, &a, &b);
            assert_eq!(fused, strict, "policy {policy:?}");
        }
    }

    #[test]
    fn workspace_is_reused_after_warmup() {
        let ring = rns_ring(32, 59, 3);
        let a = random_poly(&ring, 1);
        let b = random_poly(&ring, 2);
        let mut ex = NttExecutor::new(ThreadPolicy::Single);
        let mut out = RnsPoly::zero(&ring);
        ex.rns_multiply_into(&ring, &a, &b, &mut out);
        let warm = ex.workspace().reallocs();
        for _ in 0..10 {
            ex.rns_multiply_into(&ring, &a, &b, &mut out);
        }
        assert_eq!(
            ex.workspace().reallocs(),
            warm,
            "steady-state multiply must not grow the workspace"
        );
    }

    #[test]
    fn batched_rows_match_per_row_transforms() {
        let ring = rns_ring(32, 59, 3);
        let a = random_poly(&ring, 7);
        let mut batched = a.clone();
        let mut ex = NttExecutor::new(ThreadPolicy::Fixed(2));
        ex.forward_rows(&ring, batched.flat_mut());
        let mut per_row = a.clone();
        for i in 0..ring.np() {
            ct::ntt(per_row.row_mut(i), ring.ring(i).table());
        }
        assert_eq!(batched.flat(), per_row.flat());
        ex.inverse_rows(&ring, batched.flat_mut());
        assert_eq!(batched.flat(), a.flat());
    }

    #[test]
    fn forward_polys_transforms_many_and_skips_eval() {
        let ring = rns_ring(16, 59, 2);
        let a = random_poly(&ring, 11);
        let b = random_poly(&ring, 13);
        let mut ea = a.clone();
        let mut eb = b.clone();
        ea.to_evaluation(&ring);
        let mut ex = NttExecutor::new(ThreadPolicy::Single);
        let mut ma = ea.clone(); // already evaluation: must be skipped
        let mut mb = b.clone();
        ex.forward_polys(&ring, &mut [&mut ma, &mut mb]);
        eb.to_evaluation(&ring);
        assert_eq!(ma, ea);
        assert_eq!(mb, eb);
        ex.inverse_polys(&ring, &mut [&mut ma, &mut mb]);
        assert_eq!(ma.flat(), a.flat());
        assert_eq!(mb.flat(), b.flat());
    }

    #[test]
    fn thread_policy_parsing_and_resolution() {
        assert_eq!(ThreadPolicy::parse(""), ThreadPolicy::Auto);
        assert_eq!(ThreadPolicy::parse("auto"), ThreadPolicy::Auto);
        assert_eq!(ThreadPolicy::parse("0"), ThreadPolicy::Auto);
        assert_eq!(ThreadPolicy::parse("1"), ThreadPolicy::Single);
        assert_eq!(ThreadPolicy::parse("6"), ThreadPolicy::Fixed(6));
        assert_eq!(ThreadPolicy::parse("bogus"), ThreadPolicy::Auto);
        assert_eq!(ThreadPolicy::Single.resolve(8), 1);
        assert_eq!(ThreadPolicy::Fixed(4).resolve(8), 4);
        assert_eq!(ThreadPolicy::Fixed(4).resolve(2), 2);
        // Fixed(0) behaves like Auto (documented on the variant).
        assert_eq!(
            ThreadPolicy::Fixed(0).resolve(64),
            ThreadPolicy::Auto.resolve(64)
        );
        assert_eq!(ThreadPolicy::Fixed(0).resolve(0), 1);
        assert!(ThreadPolicy::Auto.resolve(64) >= 1);
    }

    #[test]
    fn spawn_cutoff_keeps_small_batches_serial() {
        // Below MIN_WORDS_PER_THREAD of total work, even greedy policies
        // resolve to one thread; large batches scale with the policy.
        assert_eq!(effective_threads(ThreadPolicy::Fixed(8), 4, 1 << 10), 1);
        assert_eq!(
            effective_threads(ThreadPolicy::Fixed(8), 8, 8 * MIN_WORDS_PER_THREAD),
            8
        );
        assert_eq!(effective_threads(ThreadPolicy::Single, 8, 1 << 30), 1);
    }

    #[test]
    fn large_modulus_falls_back_to_strict() {
        // A 63-bit NTT prime (1 mod 32) is above the 2^62 lazy bound; the
        // engine must still produce the correct product through the strict
        // fallback. (`ntt_math::ntt_prime` tops out at 62 bits, so the
        // prime is pinned.)
        let p = 0x7FFF_FFFF_FFFF_FD21u64;
        assert!(ntt_math::is_prime(p) && p % 32 == 1 && p >= MAX_LAZY_MODULUS);
        let ring = NegacyclicRing::new(16, p).unwrap();
        let a = Polynomial::from_coeffs(vec![1, 2, 3], 16);
        let b = Polynomial::from_coeffs(vec![4, 5], 16);
        let mut ex = NttExecutor::new(ThreadPolicy::Single);
        let c = ex.negacyclic_multiply(&ring, &a, &b);
        assert_eq!(
            c.coeffs(),
            &negacyclic_convolution(a.coeffs(), b.coeffs(), p)[..]
        );
    }
}
