//! Persisted per-host calibration, so plan-time choices are reproducible.
//!
//! The [`crate::backend::RingPlan`] picks a pointwise reduction strategy
//! per prime-size class from a micro-benchmark
//! ([`crate::backend::calibrate_pointwise`]). A timing race measured once
//! per *process* makes plan choices reproducible within a run but not
//! **across** runs: a noisy measurement on one invocation can flip the
//! strategy and with it every downstream perf number. This module pins
//! the verdicts to a small per-host calibration file:
//!
//! * first run: measure, then write the verdicts;
//! * later runs: read the verdicts back, skipping the measurement.
//!
//! The file lives under the user cache directory by default, keyed by
//! hostname (`calibration-<host>.v1.txt`); set `NTT_WARP_CALIB_FILE` to
//! an explicit path, or to `off` / `none` to disable persistence (every
//! run then re-measures, the pre-existing behavior). Strategy overrides
//! via `NTT_WARP_POINTWISE` bypass calibration entirely, file or not.
//!
//! The format is a trivial `key value` text file:
//!
//! ```text
//! # ntt-warp calibration v1 host=examplehost
//! pointwise_class_0_1fe0a3b4c5d6e7f8 montgomery
//! pointwise_class_1_1fe0a3b4c5d6e7f8 barrett
//! ```
//!
//! Every entry key carries a *measurement fingerprint* — a digest of the
//! configuration the value was measured under (the probe parameters for
//! CPU-side verdicts, `GpuConfig::fingerprint()` for device-model sweeps).
//! A value recorded under one configuration is invisible under any other,
//! so changing the device model (SM count, bandwidths, inter-device link
//! parameters) falls back to re-measurement instead of silently adopting
//! a stale entry keyed by hostname alone.
//!
//! Corrupt or wrong-version files are ignored (and rewritten on the next
//! measurement); all I/O failures degrade silently to re-measuring —
//! calibration is an optimization, never a correctness dependency.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Format marker; bump when the schema changes.
const VERSION_HEADER: &str = "# ntt-warp calibration v1";

/// A loaded (or in-construction) calibration table: flat string key →
/// value pairs.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Calibration {
    entries: BTreeMap<String, String>,
}

impl Calibration {
    /// Parse a calibration file. `None` if it does not exist, has the
    /// wrong version header, or cannot be read.
    pub fn load(path: &Path) -> Option<Self> {
        let text = std::fs::read_to_string(path).ok()?;
        let mut lines = text.lines();
        if !lines.next()?.starts_with(VERSION_HEADER) {
            return None;
        }
        let mut entries = BTreeMap::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (k, v) = line.split_once(char::is_whitespace)?;
            entries.insert(k.to_string(), v.trim().to_string());
        }
        Some(Self { entries })
    }

    /// Write the table atomically (unique temp file + rename). Errors are
    /// returned for tests but callers in the hot path ignore them.
    ///
    /// The temp name is unique per process *and* per call: concurrent
    /// writers (threads of one process, or several processes sharing one
    /// `NTT_WARP_CALIB_FILE`) each stage their own complete image and the
    /// rename is atomic, so a reader can never observe a torn file — the
    /// final contents are simply whichever complete write landed last.
    /// (A shared `.tmp` name would let two writers interleave into one
    /// staging file and publish garbage.)
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn store(&self, path: &Path) -> std::io::Result<()> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let mut text = format!("{VERSION_HEADER} host={}\n", hostname());
        for (k, v) in &self.entries {
            text.push_str(k);
            text.push(' ');
            text.push_str(v);
            text.push('\n');
        }
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, text)?;
        let renamed = std::fs::rename(&tmp, path);
        if renamed.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        renamed
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Insert or replace a key.
    pub fn set(&mut self, key: &str, value: &str) {
        self.entries.insert(key.to_string(), value.to_string());
    }
}

/// Best-effort hostname (env, then `/etc/hostname`), for the default file
/// name and the informational header.
fn hostname() -> String {
    if let Ok(h) = std::env::var("HOSTNAME") {
        if !h.trim().is_empty() {
            return h.trim().to_string();
        }
    }
    if let Ok(h) = std::fs::read_to_string("/etc/hostname") {
        if !h.trim().is_empty() {
            return h.trim().to_string();
        }
    }
    "unknown-host".to_string()
}

/// The calibration file path: `NTT_WARP_CALIB_FILE` if set (`off`/`none`/
/// empty disables persistence → `None`), else
/// `<cache dir>/ntt-warp/calibration-<host>.v1.txt`.
pub fn calibration_path() -> Option<PathBuf> {
    let var = std::env::var("NTT_WARP_CALIB_FILE").ok();
    let cache_root = std::env::var_os("XDG_CACHE_HOME")
        .map(PathBuf::from)
        .or_else(|| std::env::var_os("HOME").map(|h| PathBuf::from(h).join(".cache")))
        .unwrap_or_else(std::env::temp_dir);
    resolve_calibration_path(var.as_deref(), &cache_root, &hostname())
}

/// The pure resolution behind [`calibration_path`] — the override
/// precedence, testable without touching process environment:
///
/// 1. an explicit override set to `off` / `none` / `0` / empty disables
///    persistence entirely (`None`);
/// 2. any other override value is used verbatim as the path;
/// 3. no override → `<cache_root>/ntt-warp/calibration-<host>.v1.txt`.
pub fn resolve_calibration_path(
    override_var: Option<&str>,
    cache_root: &Path,
    host: &str,
) -> Option<PathBuf> {
    if let Some(p) = override_var {
        let p = p.trim().to_string();
        return match p.to_ascii_lowercase().as_str() {
            "" | "off" | "none" | "0" => None,
            _ => Some(PathBuf::from(p)),
        };
    }
    Some(
        cache_root
            .join("ntt-warp")
            .join(format!("calibration-{host}.v1.txt")),
    )
}

/// Fold a sequence of measurement parameters into a stable 64-bit
/// fingerprint (FNV-1a). CPU-side probes (the pointwise micro-benchmark)
/// use this over their probe parameters; device-model consumers fold
/// `GpuConfig::fingerprint()` in directly. Entries persisted under one
/// fingerprint are invisible under any other, so a changed configuration
/// falls back to re-measurement instead of adopting a stale verdict.
pub fn measurement_fingerprint(parts: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// The stored key for one pointwise prime-size class under one
/// measurement fingerprint.
fn pointwise_key(class: usize, fp: u64) -> String {
    format!("pointwise_class_{class}_{fp:016x}")
}

/// Read the persisted Montgomery-vs-Barrett verdict for a size class
/// measured under fingerprint `fp` from `path` (`true` = Montgomery
/// wins). `None` on any miss — including a verdict recorded under a
/// different fingerprint (pre-fingerprint entries key as
/// `pointwise_class_{class}` and simply never match again).
pub fn load_pointwise_verdict(path: &Path, class: usize, fp: u64) -> Option<bool> {
    match Calibration::load(path)?.get(&pointwise_key(class, fp))? {
        "montgomery" => Some(true),
        "barrett" => Some(false),
        _ => None,
    }
}

/// Persist a measured verdict into `path`, preserving other entries.
/// Failures are ignored — the verdict still applies for this process.
pub fn store_pointwise_verdict(path: &Path, class: usize, fp: u64, montgomery: bool) {
    let mut cal = Calibration::load(path).unwrap_or_default();
    cal.set(
        &pointwise_key(class, fp),
        if montgomery { "montgomery" } else { "barrett" },
    );
    let _ = cal.store(path);
}

/// The stored key for the hierarchical NTT split of one transform size
/// under one device-model fingerprint.
fn hier_split_key(n: usize, fp: u64) -> String {
    format!("hier_split_{n}_{fp:016x}")
}

/// Read the persisted hierarchical `N1×N2` split for size `n` swept under
/// device-model fingerprint `fp` from `path`. `None` on any miss: absent
/// file or key, a split recorded under a different fingerprint (a changed
/// `GpuConfig` must re-sweep, not inherit), a value that does not parse
/// as a power-of-two split, or factors whose product is not `n`.
pub fn load_hier_split(path: &Path, n: usize, fp: u64) -> Option<(usize, usize)> {
    let cal = Calibration::load(path)?;
    let (a, b) = crate::hier::parse_split(cal.get(&hier_split_key(n, fp))?)?;
    (a * b == n).then_some((a, b))
}

/// Persist a calibrated hierarchical split (`AxB` format, the same syntax
/// `NTT_WARP_SPLIT` accepts) under device-model fingerprint `fp`,
/// preserving other entries. Failures are ignored — the split still
/// applies for this process.
pub fn store_hier_split(path: &Path, n: usize, fp: u64, split: (usize, usize)) {
    let mut cal = Calibration::load(path).unwrap_or_default();
    cal.set(&hier_split_key(n, fp), &format!("{}x{}", split.0, split.1));
    let _ = cal.store(path);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ntt-warp-calib-test-{tag}-{}.txt",
            std::process::id()
        ))
    }

    /// Fixed fingerprint for tests that don't exercise mismatch handling.
    const FP: u64 = 0x00c0_ffee_0a11_beef;

    #[test]
    fn roundtrip_preserves_entries() {
        let path = temp_path("roundtrip");
        let mut cal = Calibration::default();
        cal.set(&pointwise_key(0, FP), "montgomery");
        cal.set(&pointwise_key(1, FP), "barrett");
        cal.store(&path).unwrap();
        let loaded = Calibration::load(&path).expect("file parses");
        assert_eq!(loaded, cal);
        assert_eq!(load_pointwise_verdict(&path, 0, FP), Some(true));
        assert_eq!(load_pointwise_verdict(&path, 1, FP), Some(false));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn store_verdict_preserves_other_keys() {
        let path = temp_path("preserve");
        let mut cal = Calibration::default();
        cal.set("unrelated", "value");
        cal.store(&path).unwrap();
        store_pointwise_verdict(&path, 1, FP, true);
        let loaded = Calibration::load(&path).unwrap();
        assert_eq!(loaded.get("unrelated"), Some("value"));
        assert_eq!(load_pointwise_verdict(&path, 1, FP), Some(true));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_and_corrupt_files_are_ignored() {
        let path = temp_path("corrupt");
        assert_eq!(Calibration::load(&path), None, "missing file");
        std::fs::write(&path, "not a calibration file\n").unwrap();
        assert_eq!(Calibration::load(&path), None, "wrong header");
        std::fs::write(&path, format!("{VERSION_HEADER}\ngarbage-value-x\n")).unwrap();
        assert_eq!(Calibration::load(&path), None, "unsplittable line");
        std::fs::write(
            &path,
            format!(
                "{VERSION_HEADER} host=x\n{} nonsense\n",
                pointwise_key(0, FP)
            ),
        )
        .unwrap();
        assert_eq!(
            load_pointwise_verdict(&path, 0, FP),
            None,
            "bad verdict value"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hier_split_roundtrip_and_fallbacks() {
        let path = temp_path("hier-split");
        // Absent file → None.
        assert_eq!(load_hier_split(&path, 1 << 16, FP), None);
        // Roundtrip, preserving unrelated keys.
        store_pointwise_verdict(&path, 0, FP, true);
        store_hier_split(&path, 1 << 16, FP, (256, 256));
        store_hier_split(&path, 1 << 13, FP, (64, 128));
        assert_eq!(load_hier_split(&path, 1 << 16, FP), Some((256, 256)));
        assert_eq!(load_hier_split(&path, 1 << 13, FP), Some((64, 128)));
        assert_eq!(load_pointwise_verdict(&path, 0, FP), Some(true));
        // Absent key for another size → None.
        assert_eq!(load_hier_split(&path, 1 << 14, FP), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_hier_split_entries_fall_back() {
        let path = temp_path("hier-corrupt");
        // Unparseable value → None.
        std::fs::write(
            &path,
            format!(
                "{VERSION_HEADER} host=x\n{} banana\n",
                hier_split_key(1 << 16, FP)
            ),
        )
        .unwrap();
        assert_eq!(load_hier_split(&path, 1 << 16, FP), None, "non-split value");
        // Parseable but wrong product (stale entry) → None.
        std::fs::write(
            &path,
            format!(
                "{VERSION_HEADER} host=x\n{} 128x128\n",
                hier_split_key(1 << 16, FP)
            ),
        )
        .unwrap();
        assert_eq!(load_hier_split(&path, 1 << 16, FP), None, "wrong product");
        // Non-power-of-two factors → None (parse_split rejects them).
        std::fs::write(
            &path,
            format!(
                "{VERSION_HEADER} host=x\n{} 100x655\n",
                hier_split_key(1 << 16, FP)
            ),
        )
        .unwrap();
        assert_eq!(
            load_hier_split(&path, 1 << 16, FP),
            None,
            "non-pow2 factors"
        );
        // Recovery: the next store overwrites cleanly.
        store_hier_split(&path, 1 << 16, FP, (512, 128));
        assert_eq!(load_hier_split(&path, 1 << 16, FP), Some((512, 128)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_mismatch_falls_back_to_remeasurement() {
        // The regression this PR pins: entries used to be keyed by
        // hostname alone, so a hier split or pointwise verdict recorded
        // under one GpuConfig was silently adopted after the config
        // changed. With fingerprinted keys, a value stored under one
        // configuration must be invisible under any other.
        let path = temp_path("fp-mismatch");
        let fp_a = measurement_fingerprint(&[80, 651, 12]);
        let fp_b = measurement_fingerprint(&[40, 651, 12]);
        assert_ne!(fp_a, fp_b);
        store_hier_split(&path, 1 << 16, fp_a, (256, 256));
        store_pointwise_verdict(&path, 1, fp_a, true);
        // Same config → hit.
        assert_eq!(load_hier_split(&path, 1 << 16, fp_a), Some((256, 256)));
        assert_eq!(load_pointwise_verdict(&path, 1, fp_a), Some(true));
        // Changed config → miss (caller re-measures).
        assert_eq!(load_hier_split(&path, 1 << 16, fp_b), None);
        assert_eq!(load_pointwise_verdict(&path, 1, fp_b), None);
        // Both configs' entries coexist in one file.
        store_hier_split(&path, 1 << 16, fp_b, (512, 128));
        assert_eq!(load_hier_split(&path, 1 << 16, fp_a), Some((256, 256)));
        assert_eq!(load_hier_split(&path, 1 << 16, fp_b), Some((512, 128)));
        // Legacy un-fingerprinted entries never match a fingerprinted key.
        std::fs::write(
            &path,
            format!("{VERSION_HEADER} host=x\nhier_split_65536 256x256\n"),
        )
        .unwrap();
        assert_eq!(load_hier_split(&path, 1 << 16, fp_a), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn default_path_is_stable_and_overridable() {
        // The default path derives from environment state; just pin shape.
        if let Some(p) = calibration_path() {
            assert!(p.to_string_lossy().contains("calibration-"));
        }
    }

    #[test]
    fn env_override_precedence() {
        let root = Path::new("/cache");
        // 1. Disabling values win outright (case-insensitive, trimmed).
        for off in ["off", "none", "0", "", "  OFF  ", " None "] {
            assert_eq!(
                resolve_calibration_path(Some(off), root, "h"),
                None,
                "override {off:?} must disable persistence"
            );
        }
        // 2. Any other override is used verbatim, beating the default.
        assert_eq!(
            resolve_calibration_path(Some("/tmp/my-calib.txt"), root, "h"),
            Some(PathBuf::from("/tmp/my-calib.txt"))
        );
        // A path that merely *contains* "off" is not a disable keyword.
        assert_eq!(
            resolve_calibration_path(Some("/data/offline.txt"), root, "h"),
            Some(PathBuf::from("/data/offline.txt"))
        );
        // 3. No override: per-host file under the cache root.
        assert_eq!(
            resolve_calibration_path(None, root, "myhost"),
            Some(PathBuf::from("/cache/ntt-warp/calibration-myhost.v1.txt"))
        );
    }

    #[test]
    fn truncated_and_partially_written_files_recover() {
        let path = temp_path("truncated");
        // Mid-line truncation (writer died before the newline): the pair
        // still splits, the unrecognized value yields no verdict, and a
        // re-measure rewrites the file cleanly.
        std::fs::write(
            &path,
            format!("{VERSION_HEADER} host=x\n{} montg", pointwise_key(0, FP)),
        )
        .unwrap();
        assert_eq!(load_pointwise_verdict(&path, 0, FP), None, "torn value");
        // Truncation inside the key (no separator at all) drops the file.
        std::fs::write(&path, format!("{VERSION_HEADER} host=x\npointwise_cl")).unwrap();
        assert_eq!(Calibration::load(&path), None, "unsplittable tail line");
        // A zero-byte file (open() landed, write didn't) is ignored too.
        std::fs::write(&path, "").unwrap();
        assert_eq!(Calibration::load(&path), None, "empty file");
        // Recovery: the next store produces a fully valid file.
        store_pointwise_verdict(&path, 0, FP, true);
        assert_eq!(load_pointwise_verdict(&path, 0, FP), Some(true));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_writers_never_publish_a_torn_file() {
        // N threads hammer one calibration file with conflicting verdicts
        // while a reader polls. Unique temp names + atomic rename mean
        // every observed file is a complete image from exactly one writer
        // (the old shared-".tmp" scheme could interleave two writers into
        // one staging file and rename garbage into place).
        let path = temp_path("race");
        let _ = std::fs::remove_file(&path);
        const WRITERS: usize = 8;
        const ROUNDS: usize = 20;
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let path = path.clone();
                s.spawn(move || {
                    for r in 0..ROUNDS {
                        store_pointwise_verdict(&path, w % 2, FP, (w + r) % 2 == 0);
                    }
                });
            }
            // Reader thread: every successfully loaded snapshot must be a
            // valid, complete calibration file.
            let rpath = path.clone();
            s.spawn(move || {
                for _ in 0..200 {
                    if let Some(cal) = Calibration::load(&rpath) {
                        for class in 0..2 {
                            if let Some(v) = cal.get(&pointwise_key(class, FP)) {
                                assert!(
                                    v == "montgomery" || v == "barrett",
                                    "torn value observed: {v:?}"
                                );
                            }
                        }
                    }
                    std::hint::spin_loop();
                }
            });
        });
        // Final state: parseable and complete. Which classes survive is
        // last-writer-wins (read-modify-write races can drop the other
        // class's key), but every value present must be valid.
        let cal = Calibration::load(&path).expect("file survives the race");
        let valid: Vec<&str> = (0..2)
            .filter_map(|class| cal.get(&pointwise_key(class, FP)))
            .collect();
        assert!(!valid.is_empty(), "at least one verdict survives");
        for v in valid {
            assert!(v == "montgomery" || v == "barrett");
        }
        // No staging litter left behind.
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().to_string();
        let leftovers: Vec<String> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(&stem.replace(".txt", "")) && n.contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "staging files leaked: {leftovers:?}");
        std::fs::remove_file(&path).ok();
    }
}
