//! Persisted per-host calibration, so plan-time choices are reproducible.
//!
//! The [`crate::backend::RingPlan`] picks a pointwise reduction strategy
//! per prime-size class from a micro-benchmark
//! ([`crate::backend::calibrate_pointwise`]). A timing race measured once
//! per *process* makes plan choices reproducible within a run but not
//! **across** runs: a noisy measurement on one invocation can flip the
//! strategy and with it every downstream perf number. This module pins
//! the verdicts to a small per-host calibration file:
//!
//! * first run: measure, then write the verdicts;
//! * later runs: read the verdicts back, skipping the measurement.
//!
//! The file lives under the user cache directory by default, keyed by
//! hostname (`calibration-<host>.v1.txt`); set `NTT_WARP_CALIB_FILE` to
//! an explicit path, or to `off` / `none` to disable persistence (every
//! run then re-measures, the pre-existing behavior). Strategy overrides
//! via `NTT_WARP_POINTWISE` bypass calibration entirely, file or not.
//!
//! The format is a trivial `key value` text file:
//!
//! ```text
//! # ntt-warp calibration v1 host=examplehost
//! pointwise_class_0 montgomery
//! pointwise_class_1 barrett
//! ```
//!
//! Corrupt or wrong-version files are ignored (and rewritten on the next
//! measurement); all I/O failures degrade silently to re-measuring —
//! calibration is an optimization, never a correctness dependency.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Format marker; bump when the schema changes.
const VERSION_HEADER: &str = "# ntt-warp calibration v1";

/// A loaded (or in-construction) calibration table: flat string key →
/// value pairs.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Calibration {
    entries: BTreeMap<String, String>,
}

impl Calibration {
    /// Parse a calibration file. `None` if it does not exist, has the
    /// wrong version header, or cannot be read.
    pub fn load(path: &Path) -> Option<Self> {
        let text = std::fs::read_to_string(path).ok()?;
        let mut lines = text.lines();
        if !lines.next()?.starts_with(VERSION_HEADER) {
            return None;
        }
        let mut entries = BTreeMap::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (k, v) = line.split_once(char::is_whitespace)?;
            entries.insert(k.to_string(), v.trim().to_string());
        }
        Some(Self { entries })
    }

    /// Write the table atomically (temp file + rename). Errors are
    /// returned for tests but callers in the hot path ignore them.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn store(&self, path: &Path) -> std::io::Result<()> {
        let mut text = format!("{VERSION_HEADER} host={}\n", hostname());
        for (k, v) in &self.entries {
            text.push_str(k);
            text.push(' ');
            text.push_str(v);
            text.push('\n');
        }
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Insert or replace a key.
    pub fn set(&mut self, key: &str, value: &str) {
        self.entries.insert(key.to_string(), value.to_string());
    }
}

/// Best-effort hostname (env, then `/etc/hostname`), for the default file
/// name and the informational header.
fn hostname() -> String {
    if let Ok(h) = std::env::var("HOSTNAME") {
        if !h.trim().is_empty() {
            return h.trim().to_string();
        }
    }
    if let Ok(h) = std::fs::read_to_string("/etc/hostname") {
        if !h.trim().is_empty() {
            return h.trim().to_string();
        }
    }
    "unknown-host".to_string()
}

/// The calibration file path: `NTT_WARP_CALIB_FILE` if set (`off`/`none`/
/// empty disables persistence → `None`), else
/// `<cache dir>/ntt-warp/calibration-<host>.v1.txt`.
pub fn calibration_path() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("NTT_WARP_CALIB_FILE") {
        let p = p.trim().to_string();
        return match p.to_ascii_lowercase().as_str() {
            "" | "off" | "none" | "0" => None,
            _ => Some(PathBuf::from(p)),
        };
    }
    let cache_root = std::env::var_os("XDG_CACHE_HOME")
        .map(PathBuf::from)
        .or_else(|| std::env::var_os("HOME").map(|h| PathBuf::from(h).join(".cache")))
        .unwrap_or_else(std::env::temp_dir);
    Some(
        cache_root
            .join("ntt-warp")
            .join(format!("calibration-{}.v1.txt", hostname())),
    )
}

/// The stored key for one pointwise prime-size class.
fn pointwise_key(class: usize) -> String {
    format!("pointwise_class_{class}")
}

/// Read the persisted Montgomery-vs-Barrett verdict for a size class from
/// `path` (`true` = Montgomery wins). `None` on any miss.
pub fn load_pointwise_verdict(path: &Path, class: usize) -> Option<bool> {
    match Calibration::load(path)?.get(&pointwise_key(class))? {
        "montgomery" => Some(true),
        "barrett" => Some(false),
        _ => None,
    }
}

/// Persist a measured verdict into `path`, preserving other entries.
/// Failures are ignored — the verdict still applies for this process.
pub fn store_pointwise_verdict(path: &Path, class: usize, montgomery: bool) {
    let mut cal = Calibration::load(path).unwrap_or_default();
    cal.set(
        &pointwise_key(class),
        if montgomery { "montgomery" } else { "barrett" },
    );
    let _ = cal.store(path);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ntt-warp-calib-test-{tag}-{}.txt",
            std::process::id()
        ))
    }

    #[test]
    fn roundtrip_preserves_entries() {
        let path = temp_path("roundtrip");
        let mut cal = Calibration::default();
        cal.set("pointwise_class_0", "montgomery");
        cal.set("pointwise_class_1", "barrett");
        cal.store(&path).unwrap();
        let loaded = Calibration::load(&path).expect("file parses");
        assert_eq!(loaded, cal);
        assert_eq!(load_pointwise_verdict(&path, 0), Some(true));
        assert_eq!(load_pointwise_verdict(&path, 1), Some(false));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn store_verdict_preserves_other_keys() {
        let path = temp_path("preserve");
        let mut cal = Calibration::default();
        cal.set("unrelated", "value");
        cal.store(&path).unwrap();
        store_pointwise_verdict(&path, 1, true);
        let loaded = Calibration::load(&path).unwrap();
        assert_eq!(loaded.get("unrelated"), Some("value"));
        assert_eq!(load_pointwise_verdict(&path, 1), Some(true));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_and_corrupt_files_are_ignored() {
        let path = temp_path("corrupt");
        assert_eq!(Calibration::load(&path), None, "missing file");
        std::fs::write(&path, "not a calibration file\n").unwrap();
        assert_eq!(Calibration::load(&path), None, "wrong header");
        std::fs::write(&path, format!("{VERSION_HEADER}\ngarbage-value-x\n")).unwrap();
        assert_eq!(Calibration::load(&path), None, "unsplittable line");
        std::fs::write(
            &path,
            format!("{VERSION_HEADER} host=x\npointwise_class_0 nonsense\n"),
        )
        .unwrap();
        assert_eq!(load_pointwise_verdict(&path, 0), None, "bad verdict value");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn default_path_is_stable_and_overridable() {
        // The default path derives from environment state; just pin shape.
        if let Some(p) = calibration_path() {
            assert!(p.to_string_lossy().contains("calibration-"));
        }
    }
}
