//! Hierarchical (4-step) Cooley–Tukey NTT for bootstrapping-scale rings.
//!
//! The monolithic CT loop in [`crate::ct`] walks the whole array once per
//! stage; at bootstrapping-class sizes (N = 2^15 … 2^17) every pass misses
//! cache and, on the simulated GPU, no single SMEM-resident kernel fits the
//! ring. This module decomposes an N-point negacyclic NTT into an
//! `N = N1 × N2` hierarchy of *contiguous, cache-sized* sub-transforms with
//! a twiddle correction in between — the classic 4-step / Bailey
//! factorization, specialized to the negacyclic (ψ-twisted) transform:
//!
//! ```text
//! 1. transpose  N1×N2 → N2×N1            (blocked tiles)
//! 2. N2 column NTTs of size N1           (compact table, root ψ^(N/N1))
//! 3. transpose back                      (blocked tiles)
//! 4. twist row u, element s by δ_u^s,    δ_u = ψ^(2·bitrev(u, log N1)+1−N1)
//! 5. N1 row NTTs of size N2              (compact table, root ψ^(N/N2))
//! ```
//!
//! Correctness falls out of the `tw_base` block algebra in [`crate::radix`]:
//! steps 1–3 are exactly `radix_pass(a, T, 1, N1)` and steps 4–5 equal the
//! per-row `block_ntt(row, T, N1 + u)`, with the global twiddles
//! `Ψ[m·(N1+u) + i]` rewritten as (compact sub-table of root ψ^(N/N2)) ×
//! (geometric twist δ_u^s). The output is therefore **bit-identical** to
//! [`crate::ct::ntt`] — same map, exact arithmetic — and the inverse simply
//! runs the five steps backwards (the sub-tables' own `N⁻¹` stages compose
//! to the full `N⁻¹`, so no extra scaling pass exists).
//!
//! Following the goldilocks `cooley_tukey.rs` exemplar, the two inner
//! transforms are *strategy objects* ([`InnerNtt`]): small sizes run the
//! existing radix-2 kernel directly, larger ones recurse into a nested
//! [`HierPlan`]; the inter-block twist is precomputed for small rings and
//! generated on the fly (one `pow_mod` + a running product per row) for
//! large ones, where a full δ-table would rival the data itself.
//!
//! [`crate::poly::NegacyclicRing`] builds a plan lazily for rings with
//! `N ≥ `[`HIER_MIN_N`] and the engine ([`crate::engine`]) dispatches every
//! forward/inverse row through it, so `RingPlan`-driven backends use the
//! hierarchy transparently. The `NTT_WARP_SPLIT=AxB` environment variable
//! overrides the split for the matching size (see [`parse_split`]).

use std::cell::RefCell;

use crate::bitrev::bit_reverse;
use crate::ct;
use crate::table::NttTable;
use ntt_math::shoup::MAX_LAZY_MODULUS;
use ntt_math::{mul_mod, pow_mod, ShoupMul};

/// Smallest ring degree for which [`HierPlan::auto`] builds a plan. Below
/// this the flat lazy CT kernel still wins (it fits L2 and pays no
/// transpose traffic), matching the paper's observation that the two-kernel
/// split only strains above 2^14.
pub const HIER_MIN_N: usize = 1 << 15;

/// Default ceiling for precomputing the inter-block twist table (both
/// directions, `N` Shoup pairs each). Mirrors the goldilocks exemplar's
/// `1 << 15` threshold: above it the δ-table would rival the data array
/// itself, so rows switch to on-the-fly generation.
pub const PRECOMP_MAX_N: usize = 1 << 15;

/// Default ceiling for running an inner transform directly on the radix-2
/// kernel instead of recursing into a nested plan. Every auto-chosen split
/// of N ≤ 2^17 stays below this, so recursion is an opt-in
/// ([`HierConfig::direct_max`]) — exercised by tests and available for
/// experiments at 2^18+.
pub const DIRECT_MAX_N: usize = 1 << 12;

/// Transpose tile edge: 32×32 u64 tiles (8 KiB source + 8 KiB destination)
/// sit comfortably in L1 while amortizing the strided side of the copy.
const TILE: usize = 32;

/// Tuning knobs for [`HierPlan`] construction (builder-style).
#[derive(Debug, Clone)]
pub struct HierConfig {
    /// Forced `(N1, N2)` split; `None` consults `NTT_WARP_SPLIT` and then
    /// falls back to the balanced split `N1 = 2^(log N / 2)`.
    pub split: Option<(usize, usize)>,
    /// Inner sizes at or below this run the flat kernel; larger ones
    /// recurse.
    pub direct_max: usize,
    /// Plans of size ≤ this precompute the twist table; larger ones
    /// generate rows on the fly.
    pub precompute_max_n: usize,
}

impl Default for HierConfig {
    fn default() -> Self {
        Self {
            split: None,
            direct_max: DIRECT_MAX_N,
            precompute_max_n: PRECOMP_MAX_N,
        }
    }
}

impl HierConfig {
    /// Force the top-level split to `N1 × N2`.
    #[must_use]
    pub fn split(mut self, n1: usize, n2: usize) -> Self {
        self.split = Some((n1, n2));
        self
    }

    /// Set the direct-vs-recurse ceiling for inner transforms.
    #[must_use]
    pub fn direct_max(mut self, max: usize) -> Self {
        self.direct_max = max;
        self
    }

    /// Set the precomputed-twist ceiling.
    #[must_use]
    pub fn precompute_max_n(mut self, max: usize) -> Self {
        self.precompute_max_n = max;
        self
    }
}

/// Parse an `AxB` split string (`256x256`, `512X128`, `256*256`).
///
/// Returns `None` unless both factors parse as powers of two ≥ 2.
pub fn parse_split(s: &str) -> Option<(usize, usize)> {
    let s = s.trim();
    let (a, b) = s
        .split_once(['x', 'X', '*'])
        .map(|(a, b)| (a.trim(), b.trim()))?;
    let (a, b) = (a.parse::<usize>().ok()?, b.parse::<usize>().ok()?);
    (a.is_power_of_two() && a >= 2 && b.is_power_of_two() && b >= 2).then_some((a, b))
}

/// The `NTT_WARP_SPLIT` override, if set and well-formed. Read fresh on
/// every call (plan construction is once-per-ring, so this is off the hot
/// path) so tests and calibration can toggle it.
pub fn env_split() -> Option<(usize, usize)> {
    std::env::var("NTT_WARP_SPLIT")
        .ok()
        .and_then(|s| parse_split(&s))
}

/// Pick the `(N1, N2)` factorization for an `n`-point plan: forced config
/// split, else a matching `NTT_WARP_SPLIT`, else the balanced
/// `N1 = 2^(log n / 2)`.
fn choose_split(n: usize, cfg: &HierConfig) -> (usize, usize) {
    if let Some((a, b)) = cfg.split {
        assert_eq!(a * b, n, "configured split {a}x{b} does not factor {n}");
        assert!(a >= 2 && b >= 2, "split factors must be >= 2");
        return (a, b);
    }
    if let Some((a, b)) = env_split() {
        if a * b == n {
            return (a, b);
        }
    }
    let n1 = 1usize << (n.trailing_zeros() / 2);
    (n1, n / n1)
}

/// Inner-transform strategy: run the flat radix-2 kernel on a compact
/// sub-table, or recurse into a nested hierarchical plan (the goldilocks
/// `cooley_tukey.rs` idiom).
#[derive(Debug, Clone)]
enum InnerNtt {
    Direct(NttTable),
    Recurse(Box<HierPlan>),
}

impl InnerNtt {
    fn build(r: usize, p: u64, psi_r: u64, cfg: &HierConfig) -> Self {
        if r <= cfg.direct_max || r < 4 {
            InnerNtt::Direct(NttTable::with_root(r, p, psi_r))
        } else {
            // A forced top-level split does not factor the inner size;
            // nested levels fall back to env/balanced selection.
            let sub_cfg = HierConfig {
                split: None,
                ..cfg.clone()
            };
            InnerNtt::Recurse(Box::new(HierPlan::with_root(r, p, psi_r, &sub_cfg)))
        }
    }

    fn forward(&self, row: &mut [u64]) {
        match self {
            InnerNtt::Direct(t) => {
                if t.modulus() < MAX_LAZY_MODULUS {
                    ct::ntt_lazy(row, t);
                    ct::reduce_from_lazy(row, t.modulus());
                } else {
                    ct::ntt(row, t);
                }
            }
            InnerNtt::Recurse(plan) => plan.forward(row),
        }
    }

    fn inverse(&self, row: &mut [u64]) {
        match self {
            InnerNtt::Direct(t) => {
                if t.modulus() < MAX_LAZY_MODULUS {
                    ct::intt_lazy(row, t); // final N⁻¹ stage reduces fully
                } else {
                    ct::intt(row, t);
                }
            }
            InnerNtt::Recurse(plan) => plan.inverse(row),
        }
    }

    fn depth(&self) -> usize {
        match self {
            InnerNtt::Direct(_) => 0,
            InnerNtt::Recurse(plan) => plan.depth(),
        }
    }
}

/// Inter-block twist strategy (step 4): row `u` scales element `s` by
/// `δ_u^s`. Small plans precompute both directions as Shoup pairs; large
/// plans generate each row with one `pow_mod` and a running product.
#[derive(Debug, Clone)]
enum Twist {
    OnTheFly,
    Precomputed {
        fwd: Vec<ShoupMul>,
        inv: Vec<ShoupMul>,
    },
}

/// A hierarchical 4-step NTT plan for one `(N, p, ψ)` ring.
///
/// Construction is `O(N)` (sub-tables + optional twist table); the plan is
/// immutable and shareable across threads, with per-thread transpose
/// scratch drawn from a thread-local pool.
///
/// # Examples
///
/// Bit-exact against the flat kernel, at any forced split:
///
/// ```
/// use ntt_core::hier::{HierConfig, HierPlan};
/// use ntt_core::NttTable;
///
/// let table = NttTable::new_with_bits(1 << 12, 60).unwrap();
/// let plan = HierPlan::from_table(&table, &HierConfig::default().split(64, 64));
/// let mut x: Vec<u64> = (0..1u64 << 12).collect();
/// let mut reference = x.clone();
/// plan.forward(&mut x);
/// ntt_core::ntt(&mut reference, &table);
/// assert_eq!(x, reference);
/// plan.inverse(&mut x);
/// assert_eq!(x, (0..1u64 << 12).collect::<Vec<_>>());
/// ```
///
/// Recursion kicks in when an inner size exceeds
/// [`HierConfig::direct_max`]:
///
/// ```
/// use ntt_core::hier::{HierConfig, HierPlan};
/// use ntt_core::NttTable;
///
/// let table = NttTable::new_with_bits(1 << 12, 60).unwrap();
/// let cfg = HierConfig::default().split(64, 64).direct_max(16);
/// let plan = HierPlan::from_table(&table, &cfg);
/// assert_eq!(plan.depth(), 2); // 4096 → 64×64 → 8×8
/// ```
#[derive(Debug, Clone)]
pub struct HierPlan {
    n: usize,
    n1: usize,
    n2: usize,
    p: u64,
    psi: u64,
    /// Forward twist exponents `e_u` of `δ_u = ψ^(e_u)`, reduced mod 2N.
    exps: Vec<u64>,
    inner1: InnerNtt,
    inner2: InnerNtt,
    twist: Twist,
}

impl HierPlan {
    /// Plan for a ring table, if the ring is large enough to profit:
    /// `None` below [`HIER_MIN_N`]. This is the entry the engine uses.
    pub fn auto(table: &NttTable) -> Option<Self> {
        (table.n() >= HIER_MIN_N).then(|| Self::from_table(table, &HierConfig::default()))
    }

    /// Plan for an existing ring table with explicit tuning.
    ///
    /// # Panics
    ///
    /// Panics if the (configured) split does not factor `N` into powers of
    /// two ≥ 2.
    pub fn from_table(table: &NttTable, cfg: &HierConfig) -> Self {
        Self::with_root(table.n(), table.modulus(), table.psi(), cfg)
    }

    /// Plan from raw `(N, p, ψ)` parameters (ψ a primitive 2N-th root of
    /// unity mod p). Used for recursion: a sub-plan of size `r` receives
    /// `ψ^(N/r)`.
    pub fn with_root(n: usize, p: u64, psi: u64, cfg: &HierConfig) -> Self {
        assert!(
            n.is_power_of_two() && n >= 4,
            "plan size must be a power of two >= 4"
        );
        let (n1, n2) = choose_split(n, cfg);
        let two_n = 2 * n as u64;
        let log_n1 = n1.trailing_zeros();
        // δ_u = ψ^(2·bitrev(u, log N1) + 1 − N1): the per-row residue of the
        // global twiddle base `tw_base = N1 + u` after the compact sub-table
        // absorbs the ψ^(N/N2)-powered part.
        let exps: Vec<u64> = (0..n1)
            .map(|u| {
                let br = 2 * bit_reverse(u, log_n1) as u64 + 1;
                (br + two_n - n1 as u64) % two_n
            })
            .collect();
        let twist = if n <= cfg.precompute_max_n {
            let mut fwd = Vec::with_capacity(n);
            let mut inv = Vec::with_capacity(n);
            for &e in &exps {
                let q = pow_mod(psi, e, p);
                let qi = pow_mod(psi, (two_n - e) % two_n, p);
                let (mut w, mut wi) = (1u64, 1u64);
                for _ in 0..n2 {
                    fwd.push(ShoupMul::new(w, p));
                    inv.push(ShoupMul::new(wi, p));
                    w = mul_mod(w, q, p);
                    wi = mul_mod(wi, qi, p);
                }
            }
            Twist::Precomputed { fwd, inv }
        } else {
            Twist::OnTheFly
        };
        Self {
            n,
            n1,
            n2,
            p,
            psi,
            exps,
            inner1: InnerNtt::build(n1, p, pow_mod(psi, (n / n1) as u64, p), cfg),
            inner2: InnerNtt::build(n2, p, pow_mod(psi, (n / n2) as u64, p), cfg),
            twist,
        }
    }

    /// Transform size `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The `(N1, N2)` split in force.
    #[inline]
    pub fn split(&self) -> (usize, usize) {
        (self.n1, self.n2)
    }

    /// Recursion depth: 1 for a flat 4-step plan, +1 per nested level.
    pub fn depth(&self) -> usize {
        1 + self.inner1.depth().max(self.inner2.depth())
    }

    /// Whether the inter-block twist is precomputed (vs on-the-fly).
    pub fn precomputed_twist(&self) -> bool {
        matches!(self.twist, Twist::Precomputed { .. })
    }

    /// Forward negacyclic NTT in place — natural order in, bit-reversed
    /// evaluation order out, **bit-identical** to [`crate::ct::ntt`] on the
    /// same ring. Canonical (`< p`) in and out.
    pub fn forward(&self, x: &mut [u64]) {
        assert_eq!(x.len(), self.n, "input length must equal plan N");
        let (n1, n2) = (self.n1, self.n2);
        with_scratch(self.n, |s| {
            // Steps 1–3: N2 column transforms via two blocked transposes, so
            // each inner NTT runs on a contiguous row.
            transpose_blocked(x, s, n1, n2);
            for col in s.chunks_exact_mut(n1) {
                self.inner1.forward(col);
            }
            transpose_blocked(s, x, n2, n1);
        });
        // Steps 4–5: twist then transform each row while it is cache-hot.
        for (u, row) in x.chunks_exact_mut(n2).enumerate() {
            self.twist_row(u, row, true);
            self.inner2.forward(row);
        }
    }

    /// Inverse of [`HierPlan::forward`] — the five steps exactly reversed;
    /// the sub-tables' `N1⁻¹ · N2⁻¹` folds compose to the full `N⁻¹`.
    /// Canonical in and out, bit-identical to [`crate::ct::intt`].
    pub fn inverse(&self, x: &mut [u64]) {
        assert_eq!(x.len(), self.n, "input length must equal plan N");
        let (n1, n2) = (self.n1, self.n2);
        for (u, row) in x.chunks_exact_mut(n2).enumerate() {
            self.inner2.inverse(row);
            self.twist_row(u, row, false);
        }
        with_scratch(self.n, |s| {
            transpose_blocked(x, s, n1, n2);
            for col in s.chunks_exact_mut(n1) {
                self.inner1.inverse(col);
            }
            transpose_blocked(s, x, n2, n1);
        });
    }

    /// Apply the inter-block twist to row `u` (element `s` scaled by
    /// `δ_u^(±s)`). Element 0 is always unscaled (`δ_u^0 = 1`).
    fn twist_row(&self, u: usize, row: &mut [u64], forward: bool) {
        let p = self.p;
        match &self.twist {
            Twist::Precomputed { fwd, inv } => {
                let tw = if forward { fwd } else { inv };
                let base = u * self.n2;
                for (s, v) in row.iter_mut().enumerate().skip(1) {
                    *v = tw[base + s].mul(*v);
                }
            }
            Twist::OnTheFly => {
                let two_n = 2 * self.n as u64;
                let e = if forward {
                    self.exps[u]
                } else {
                    (two_n - self.exps[u]) % two_n
                };
                let q = pow_mod(self.psi, e, p);
                let mut w = q;
                for v in row.iter_mut().skip(1) {
                    *v = mul_mod(*v, w, p);
                    w = mul_mod(w, q, p);
                }
            }
        }
    }
}

thread_local! {
    /// Pool of transpose scratch buffers, one per live recursion level.
    /// Pop-or-create / push-back keeps the `RefCell` borrow confined to the
    /// pool operations themselves, so nested plans re-enter safely.
    static SCRATCH_POOL: RefCell<Vec<Vec<u64>>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with a `words`-sized scratch slice from the thread-local pool
/// (grow-only; steady state allocates nothing).
fn with_scratch<R>(words: usize, f: impl FnOnce(&mut [u64]) -> R) -> R {
    let mut buf = SCRATCH_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_default();
    if buf.len() < words {
        buf.resize(words, 0);
    }
    let r = f(&mut buf[..words]);
    SCRATCH_POOL.with(|p| p.borrow_mut().push(buf));
    r
}

/// Blocked matrix transpose: `dst[c·rows + r] = src[r·cols + c]` in
/// [`TILE`]²-element tiles, so both the gather and the scatter side stay
/// within a few cache lines per tile.
fn transpose_blocked(src: &[u64], dst: &mut [u64], rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    for r0 in (0..rows).step_by(TILE) {
        let r1 = (r0 + TILE).min(rows);
        for c0 in (0..cols).step_by(TILE) {
            let c1 = (c0 + TILE).min(cols);
            for r in r0..r1 {
                for c in c0..c1 {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize) -> NttTable {
        NttTable::new_with_bits(n, 60).unwrap()
    }

    fn sample(n: usize, p: u64) -> Vec<u64> {
        (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % p)
            .collect()
    }

    #[test]
    fn four_step_matches_ct_all_splits() {
        let n = 1 << 12;
        let t = table(n);
        let a = sample(n, t.modulus());
        let mut reference = a.clone();
        ct::ntt(&mut reference, &t);
        for log_n1 in 1..12 {
            let n1 = 1 << log_n1;
            let plan = HierPlan::from_table(&t, &HierConfig::default().split(n1, n / n1));
            let mut x = a.clone();
            plan.forward(&mut x);
            assert_eq!(x, reference, "split {n1}x{}", n / n1);
            plan.inverse(&mut x);
            assert_eq!(x, a, "roundtrip {n1}x{}", n / n1);
        }
    }

    #[test]
    fn on_the_fly_matches_precomputed() {
        let n = 1 << 10;
        let t = table(n);
        let a = sample(n, t.modulus());
        let pre = HierPlan::from_table(&t, &HierConfig::default().split(32, 32));
        let otf =
            HierPlan::from_table(&t, &HierConfig::default().split(32, 32).precompute_max_n(0));
        assert!(pre.precomputed_twist() && !otf.precomputed_twist());
        let (mut x, mut y) = (a.clone(), a.clone());
        pre.forward(&mut x);
        otf.forward(&mut y);
        assert_eq!(x, y);
        pre.inverse(&mut x);
        otf.inverse(&mut y);
        assert_eq!(x, a);
        assert_eq!(y, a);
    }

    #[test]
    fn recursion_matches_flat_plan() {
        let n = 1 << 12;
        let t = table(n);
        let a = sample(n, t.modulus());
        let mut reference = a.clone();
        ct::ntt(&mut reference, &t);
        // 4096 → 64×64, inners 64 → 8×8: two nested levels.
        let cfg = HierConfig::default().split(64, 64).direct_max(16);
        let plan = HierPlan::from_table(&t, &cfg);
        assert_eq!(plan.depth(), 2);
        let mut x = a.clone();
        plan.forward(&mut x);
        assert_eq!(x, reference);
        plan.inverse(&mut x);
        assert_eq!(x, a);
    }

    #[test]
    fn unbalanced_env_style_splits_work() {
        let n = 1 << 11; // odd log: balanced split is 32x64
        let t = table(n);
        let plan = HierPlan::from_table(&t, &HierConfig::default());
        assert_eq!(plan.split(), (32, 64));
        let a = sample(n, t.modulus());
        let mut reference = a.clone();
        ct::ntt(&mut reference, &t);
        let mut x = a;
        plan.forward(&mut x);
        assert_eq!(x, reference);
    }

    #[test]
    fn auto_respects_threshold() {
        assert!(HierPlan::auto(&table(1 << 12)).is_none());
        let plan = HierPlan::auto(&table(HIER_MIN_N)).expect("2^15 builds a plan");
        assert_eq!(plan.split(), (128, 256));
        // 2^15 is at the precompute ceiling; its twist table is resident.
        assert!(plan.precomputed_twist());
    }

    #[test]
    fn split_parsing() {
        assert_eq!(parse_split("256x256"), Some((256, 256)));
        assert_eq!(parse_split(" 512X128 "), Some((512, 128)));
        assert_eq!(parse_split("64*32"), Some((64, 32)));
        assert_eq!(parse_split("256"), None);
        assert_eq!(parse_split("0x256"), None);
        assert_eq!(parse_split("3x256"), None);
        assert_eq!(parse_split("x"), None);
        assert_eq!(parse_split(""), None);
    }

    #[test]
    fn large_plan_is_bit_exact_and_on_the_fly() {
        let n = 1 << 16;
        let t = table(n);
        let plan = HierPlan::auto(&t).expect("2^16 builds a plan");
        assert_eq!(plan.split(), (256, 256));
        assert!(!plan.precomputed_twist(), "2^16 twists on the fly");
        let a = sample(n, t.modulus());
        let mut reference = a.clone();
        ct::ntt(&mut reference, &t);
        let mut x = a.clone();
        plan.forward(&mut x);
        assert_eq!(x, reference);
        plan.inverse(&mut x);
        assert_eq!(x, a);
    }
}
